// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md
// for paper-vs-measured numbers).
//
// The figure benchmarks run full simulation sweeps: expensive, so each
// sweep is computed once per process and shared among the benchmarks that
// read different metrics from it (e.g. Fig. 7a and 7b come from the same
// runs, as in the paper). Environment knobs:
//
//	IC_RUNS=N     runs per data point (default 3; the paper uses 50)
//	IC_FULL=1     full-resolution sweeps (every malicious count, all levels)
//	IC_WORKERS=N  parallel sweep workers (default: one per CPU core;
//	              replicas fan out across cores, tables stay byte-identical)
//
// Typical usage:
//
//	go test -bench=Fig -benchtime=1x
//	IC_RUNS=10 IC_FULL=1 go test -bench=. -benchtime=1x -timeout=4h
//	IC_WORKERS=1 go test -bench=Fig -benchtime=1x   # serial reference run
package innercircle_test

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	ic "innercircle"
)

func benchRuns() int {
	if s := os.Getenv("IC_RUNS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 3
}

func fullSweeps() bool { return os.Getenv("IC_FULL") == "1" }

// ---- Fig. 7: black-hole attack -------------------------------------------

var (
	fig7Once       sync.Once
	fig7Throughput *ic.Table
	fig7Energy     *ic.Table
	fig7Err        error
)

func fig7Tables() (*ic.Table, *ic.Table, error) {
	fig7Once.Do(func() {
		base := ic.PaperBlackholeConfig()
		base.Seed = 1
		counts := []int{0, 2, 4, 6, 8, 10}
		levels := []int{1, 2}
		if fullSweeps() {
			counts = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
		}
		fig7Throughput, fig7Energy, fig7Err = ic.BlackholeSweep(base, counts, levels, benchRuns(), nil)
		if fig7Err == nil {
			fmt.Println(fig7Throughput)
			fmt.Println(fig7Energy)
		}
	})
	return fig7Throughput, fig7Energy, fig7Err
}

// BenchmarkFig7aThroughput regenerates Fig. 7(a): network throughput vs
// number of malicious nodes for {No IC, IC L=1, IC L=2}.
func BenchmarkFig7aThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		thr, _, err := fig7Tables()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(thr.Mean("No IC", "0"), "noIC_thr0_%")
		b.ReportMetric(thr.Mean("No IC", "10"), "noIC_thr10_%")
		b.ReportMetric(thr.Mean("IC, L=1", "10"), "icL1_thr10_%")
	}
}

// BenchmarkFig7bEnergy regenerates Fig. 7(b): per-node energy consumption
// for the same sweep.
func BenchmarkFig7bEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, eng, err := fig7Tables()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(eng.Mean("No IC", "0"), "noIC_J0")
		b.ReportMetric(eng.Mean("No IC", "10"), "noIC_J10")
		b.ReportMetric(eng.Mean("IC, L=1", "10"), "icL1_J10")
	}
}

// ---- Fig. 8: faulty sensor network ----------------------------------------

var (
	fig8Once   sync.Once
	fig8Tables map[string]*ic.Table
	fig8Err    error
)

func sensorTables() (map[string]*ic.Table, error) {
	fig8Once.Do(func() {
		base := ic.PaperSensorConfig()
		base.Seed = 1
		levels := []int{2, 4, 6}
		faults := ic.AllFaultKinds()
		if fullSweeps() {
			levels = []int{2, 3, 4, 5, 6, 7}
		}
		fig8Tables, fig8Err = ic.SensorSweep(base, levels, faults, benchRuns(), nil)
		if fig8Err == nil {
			for _, key := range []string{"miss", "false", "energyT", "energyNT", "latency", "locerr"} {
				fmt.Println(fig8Tables[key])
			}
		}
	})
	return fig8Tables, fig8Err
}

func sensorFigBench(b *testing.B, key, rowA, rowB, col, unit string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := sensorTables()
		if err != nil {
			b.Fatal(err)
		}
		tb := tables[key]
		if v := tb.Mean(rowA, col); !math.IsNaN(v) {
			b.ReportMetric(v, "noIC_"+unit)
		}
		if v := tb.Mean(rowB, col); !math.IsNaN(v) {
			b.ReportMetric(v, "icL4_"+unit)
		}
	}
}

// BenchmarkFig8aMissAlarm regenerates Fig. 8(a): miss-alarm probability
// per fault model and configuration.
func BenchmarkFig8aMissAlarm(b *testing.B) {
	sensorFigBench(b, "miss", "No IC", "IC, L=4", "none", "miss_%")
}

// BenchmarkFig8bFalseAlarm regenerates Fig. 8(b): false-alarm probability.
func BenchmarkFig8bFalseAlarm(b *testing.B) {
	sensorFigBench(b, "false", "No IC", "IC, L=4", "interference", "false_%")
}

// BenchmarkFig8cEnergyTarget regenerates Fig. 8(c): energy with a target.
func BenchmarkFig8cEnergyTarget(b *testing.B) {
	sensorFigBench(b, "energyT", "No IC", "IC, L=4", "interference", "J")
}

// BenchmarkFig8dEnergyNoTarget regenerates Fig. 8(d): energy without a
// target.
func BenchmarkFig8dEnergyNoTarget(b *testing.B) {
	sensorFigBench(b, "energyNT", "No IC", "IC, L=4", "interference", "J")
}

// BenchmarkFig8eLatency regenerates Fig. 8(e): target detection latency.
func BenchmarkFig8eLatency(b *testing.B) {
	sensorFigBench(b, "latency", "No IC", "IC, L=4", "none", "s")
}

// BenchmarkFig8fLocalization regenerates Fig. 8(f): target localization
// error.
func BenchmarkFig8fLocalization(b *testing.B) {
	sensorFigBench(b, "locerr", "No IC", "IC, L=4", "position", "m")
}

// BenchmarkFig8WeakSignal regenerates the §5.2 weak-signal variant
// (K·T = 10000): the miss-alarm probability rises to a few percent for
// inner circles over five nodes, worst under the stuck-at-zero and
// interference faults. The deployment is uniform-random (rather than the
// gridded main sweep): the miss-alarm knee depends on having thin patches
// in the sensor field, and a regular grid at this density has none —
// see EXPERIMENTS.md.
func BenchmarkFig8WeakSignal(b *testing.B) {
	var once sync.Once
	var tbl *ic.Table
	var tblErr error
	for i := 0; i < b.N; i++ {
		once.Do(func() {
			base := ic.PaperSensorConfig()
			base.Seed = 1
			base.Model.KT = 10000
			base.UniformPlacement = true
			faults := []ic.FaultKind{ic.FaultNone, ic.FaultInterference, ic.FaultStuckAtZero}
			runs := benchRuns() * 3 // miss events are rare; oversample
			tables, err := ic.SensorSweep(base, []int{3, 5, 6, 7}, faults, runs, nil)
			if err != nil {
				tblErr = err
				return
			}
			tbl = tables["miss"]
			tbl.Title = "§5.2 weak signal (K·T=10000, uniform placement): miss alarm probability [%]"
			fmt.Println(tbl)
		})
		if tblErr != nil {
			b.Fatal(tblErr)
		}
		b.ReportMetric(tbl.Mean("IC, L=7", "stuck-at-zero"), "icL7_miss_%")
	}
}

// BenchmarkGrayHole measures the §5.1 attack variation the paper says
// network-wide detectors cannot handle: attackers that misbehave only half
// the time. The inner circle contains them identically (reported metrics:
// throughput with and without the defense).
func BenchmarkGrayHole(b *testing.B) {
	var once sync.Once
	var noIC, withIC float64
	var benchErr error
	for i := 0; i < b.N; i++ {
		once.Do(func() {
			base := ic.PaperBlackholeConfig()
			base.Seed = 21
			base.SimTime = 120
			base.Malicious = 5
			base.GrayProb = 0.5
			res, err := ic.RunBlackhole(base)
			if err != nil {
				benchErr = err
				return
			}
			noIC = res.Throughput
			base.IC = true
			base.L = 1
			res, err = ic.RunBlackhole(base)
			if err != nil {
				benchErr = err
				return
			}
			withIC = res.Throughput
			fmt.Printf("## Gray-hole attack (p=0.5, 5 attackers): No IC %.1f%%, IC L=1 %.1f%%\n\n", noIC, withIC)
		})
		if benchErr != nil {
			b.Fatal(benchErr)
		}
		b.ReportMetric(noIC, "noIC_thr_%")
		b.ReportMetric(withIC, "icL1_thr_%")
	}
}

// ---- A3: FT-cluster vs FT-mean ablation -----------------------------------

// BenchmarkAblationFusion quantifies the design choice behind §4.3: the
// FT-cluster algorithm versus the classic fault-tolerant mean, across
// fault counts, on synthetic observations (N = 10, σ = 1, faulty values
// offset by 50σ). Reported metrics are mean absolute estimation errors.
func BenchmarkAblationFusion(b *testing.B) {
	rng := ic.NewRNG(42)
	const n, trials = 10, 500
	for i := 0; i < b.N; i++ {
		for _, f := range []int{0, 1, 2, 3} {
			var errCluster, errMean float64
			for trial := 0; trial < trials; trial++ {
				points := make([]ic.Vec, n)
				for j := 0; j < n-f; j++ {
					points[j] = ic.Vec{5 + rng.NormFloat64()}
				}
				for j := n - f; j < n; j++ {
					points[j] = ic.Vec{5 + 50 + rng.NormFloat64()}
				}
				res, err := ic.FTCluster(points, 4)
				if err != nil {
					b.Fatal(err)
				}
				errCluster += math.Abs(res.Estimate[0] - 5)
				m, err := ic.FTMean(points, 3)
				if err != nil {
					b.Fatal(err)
				}
				errMean += math.Abs(m[0] - 5)
			}
			b.ReportMetric(errCluster/trials, fmt.Sprintf("cluster_f%d_err", f))
			b.ReportMetric(errMean/trials, fmt.Sprintf("ftmean_f%d_err", f))
		}
	}
}

// ---- A4: threshold-signature cost -----------------------------------------

// BenchmarkThresholdRSASign measures Shoup-style partial signing with
// 1024-bit keys (the ad hoc scenario's key length).
func BenchmarkThresholdRSASign(b *testing.B) {
	gk, signers := dealOnce(b, ic.NewRSADealer(1024))
	_ = gk
	msg := []byte("benchmark message")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := signers[0].PartialSign(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThresholdRSACombine measures signature combination (Lagrange
// exponents + extended-Euclid completion + final verification).
func BenchmarkThresholdRSACombine(b *testing.B) {
	gk, signers := dealOnce(b, ic.NewRSADealer(1024))
	msg := []byte("benchmark message")
	partials := make([]ic.Partial, 3)
	for i := range partials {
		p, err := signers[i].PartialSign(msg)
		if err != nil {
			b.Fatal(err)
		}
		partials[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gk.Combine(msg, partials); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThresholdRSAVerify measures remote-recipient verification —
// the only cryptographic cost a node outside the inner circle pays.
func BenchmarkThresholdRSAVerify(b *testing.B) {
	gk, signers := dealOnce(b, ic.NewRSADealer(1024))
	msg := []byte("benchmark message")
	partials := make([]ic.Partial, 3)
	for i := range partials {
		p, err := signers[i].PartialSign(msg)
		if err != nil {
			b.Fatal(err)
		}
		partials[i] = p
	}
	sig, err := gk.Combine(msg, partials)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := gk.Verify(msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThresholdSimSign measures the sweep-scale stand-in scheme, for
// comparison with the faithful RSA numbers (ablation A4).
func BenchmarkThresholdSimSign(b *testing.B) {
	_, signers := dealOnce(b, ic.NewSimDealer([]byte("bench"), 128))
	msg := []byte("benchmark message")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := signers[0].PartialSign(msg); err != nil {
			b.Fatal(err)
		}
	}
}

var dealCache sync.Map

func dealOnce(b *testing.B, dealer ic.Dealer) (ic.GroupKey, []ic.Signer) {
	b.Helper()
	key := fmt.Sprintf("%T", dealer)
	if v, ok := dealCache.Load(key); ok {
		pair := v.([2]any)
		gk, _ := pair[0].(ic.GroupKey)
		signers, _ := pair[1].([]ic.Signer)
		return gk, signers
	}
	gk, signers, err := dealer.Deal(2, 5)
	if err != nil {
		b.Fatal(err)
	}
	dealCache.Store(key, [2]any{gk, signers})
	return gk, signers
}

// ---- parallel replica engine -----------------------------------------------

// sweepReplicasPerSec runs a fixed small Fig. 7 sweep (2 configurations ×
// 2 malicious counts × 4 runs = 16 replicas) with the given worker count
// and returns the replica throughput. The sweep output is identical at
// every worker count; only wall-clock changes.
func sweepReplicasPerSec(b *testing.B, workers int) float64 {
	b.Helper()
	b.Setenv("IC_WORKERS", strconv.Itoa(workers))
	base := ic.PaperBlackholeConfig()
	base.Nodes = 30
	base.SimTime = 30
	base.Seed = 17
	counts := []int{0, 2}
	levels := []int{1}
	const runs = 4
	replicas := len(counts) * (1 + len(levels)) * runs
	start := time.Now()
	if _, _, err := ic.BlackholeSweep(base, counts, levels, runs, nil); err != nil {
		b.Fatal(err)
	}
	return float64(replicas) / time.Since(start).Seconds()
}

// BenchmarkSweepSerial is the one-worker baseline for the replica engine:
// the sequential execution the sweeps used before parallelization.
func BenchmarkSweepSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(sweepReplicasPerSec(b, 1), "replicas/s")
	}
}

// BenchmarkSweepParallel measures replica throughput of the worker-pool
// engine at 1, 2, and NumCPU workers (compare against BenchmarkSweepSerial;
// the speedup table is recorded in BENCH_parallel.json). Replicas are
// independent single-threaded simulations, so throughput should scale
// nearly linearly with cores until memory bandwidth intervenes.
func BenchmarkSweepParallel(b *testing.B) {
	workerCounts := []int{1, 2, runtime.NumCPU()}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(sweepReplicasPerSec(b, w), "replicas/s")
			}
		})
	}
}

// ---- substrate microbenchmarks ---------------------------------------------

// BenchmarkFTCluster measures the fusion algorithm at inner-circle scale
// (the paper notes circles of 10-15 members).
func BenchmarkFTCluster(b *testing.B) {
	rng := ic.NewRNG(7)
	points := make([]ic.Vec, 15)
	for i := range points {
		points[i] = ic.Vec{rng.NormFloat64(), rng.NormFloat64()}
	}
	points[14] = ic.Vec{50, 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ic.FTCluster(points, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorEvents measures raw discrete-event throughput: one
// 60-second, 25-node AODV scenario per iteration.
func BenchmarkSimulatorEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := ic.PaperBlackholeConfig()
		cfg.Nodes = 25
		cfg.SimTime = 60
		cfg.Seed = int64(i)
		if _, err := ic.RunBlackhole(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTwoHop quantifies the §3 trade-off of widening inner
// circles to two hops: wire bytes per completed voting round at L=1
// (one-hop) vs L=2 (possible only with the two-hop extension) on a sparse
// line topology.
func BenchmarkAblationTwoHop(b *testing.B) {
	round := func(twoHop bool, level int) (float64, error) {
		positions := []ic.Point{{X: 0}, {X: 200}, {X: 400}, {X: 600}}
		tr := ic.NewTracer(0)
		stsCfg := ic.DefaultSTS()
		stsCfg.Handshake = false
		agreed := 0
		cfg := ic.NetworkConfig{
			N:      len(positions),
			Seed:   5,
			Radio:  ic.Default80211Radio(),
			MAC:    ic.DefaultMAC(),
			Energy: ic.NS2Energy(),
			Mobility: func(i int, _ *ic.RNG) ic.MobilityModel {
				return ic.Static(positions[i])
			},
			IC:     true,
			STS:    stsCfg,
			Vote:   ic.VoteConfig{Mode: ic.Deterministic, L: level, RoundTimeout: 0.3, Retries: 2, TwoHop: twoHop},
			Tracer: tr,
			Callbacks: func(n *ic.Node) ic.VoteCallbacks {
				return ic.VoteCallbacks{
					Check:    func(ic.NodeID, []byte) bool { return true },
					OnAgreed: func(ic.AgreedMsg) { agreed++ },
				}
			},
		}
		net, err := ic.BuildNetwork(cfg)
		if err != nil {
			return 0, err
		}
		net.StartSTS()
		if err := net.Run(4); err != nil {
			return 0, err
		}
		before := voteBytes(tr)
		if err := net.Nodes[0].Vote.Propose([]byte("ablation")); err != nil {
			return 0, err
		}
		if err := net.Run(8); err != nil {
			return 0, err
		}
		if agreed == 0 {
			return 0, fmt.Errorf("round did not complete (twoHop=%v L=%d)", twoHop, level)
		}
		return voteBytes(tr) - before, nil
	}
	for i := 0; i < b.N; i++ {
		oneHop, err := round(false, 1)
		if err != nil {
			b.Fatal(err)
		}
		twoHop, err := round(true, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(oneHop, "onehop_L1_B_per_round")
		b.ReportMetric(twoHop, "twohop_L2_B_per_round")
	}
}

// voteBytes sums the tracer's transmitted bytes for voting message types.
func voteBytes(tr *ic.Tracer) float64 {
	var total float64
	for name, n := range tr.Bytes() {
		if len(name) >= 5 && name[:5] == "vote." {
			total += float64(n)
		}
	}
	return total
}

// BenchmarkAblationCryptoProcessor quantifies the rationale for the
// paper's Crypto-Processor hardware module: per-round latency and crypto
// energy of the voting protocol when threshold-RSA operations run in
// software on an embedded CPU versus on the dedicated processor.
func BenchmarkAblationCryptoProcessor(b *testing.B) {
	run := func(profile ic.CryptoProfile) (latency, joules float64, err error) {
		positions := []ic.Point{
			{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 0, Y: 200}, {X: 150, Y: 150},
		}
		stsCfg := ic.DefaultSTS()
		stsCfg.Handshake = false
		done := ic.Time(0)
		cfg := ic.NetworkConfig{
			N:      len(positions),
			Seed:   9,
			Radio:  ic.Default80211Radio(),
			MAC:    ic.DefaultMAC(),
			Energy: ic.NS2Energy(),
			Mobility: func(i int, _ *ic.RNG) ic.MobilityModel {
				return ic.Static(positions[i])
			},
			IC:     true,
			STS:    stsCfg,
			Vote:   ic.VoteConfig{Mode: ic.Deterministic, L: 2, RoundTimeout: 1, Retries: 2},
			Crypto: profile,
		}
		var net *ic.Network
		cfg.Callbacks = func(n *ic.Node) ic.VoteCallbacks {
			return ic.VoteCallbacks{
				Check: func(ic.NodeID, []byte) bool { return true },
				OnAgreed: func(ic.AgreedMsg) {
					if done == 0 {
						done = net.K.Now()
					}
				},
			}
		}
		net, err = ic.BuildNetwork(cfg)
		if err != nil {
			return 0, 0, err
		}
		net.StartSTS()
		if err := net.Run(4); err != nil {
			return 0, 0, err
		}
		idleBaseline := net.TotalEnergy()
		start := net.K.Now()
		if err := net.Nodes[0].Vote.Propose([]byte("crypto ablation")); err != nil {
			return 0, 0, err
		}
		if err := net.Run(8); err != nil {
			return 0, 0, err
		}
		if done == 0 {
			return 0, 0, fmt.Errorf("round did not complete")
		}
		return float64(done - start), net.TotalEnergy() - idleBaseline, nil
	}
	for i := 0; i < b.N; i++ {
		swLat, swJ, err := run(ic.SoftwareCrypto())
		if err != nil {
			b.Fatal(err)
		}
		hwLat, hwJ, err := run(ic.HardwareCrypto())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(swLat*1000, "sw_round_ms")
		b.ReportMetric(hwLat*1000, "hw_round_ms")
		b.ReportMetric(swJ*1000, "sw_round_mJ")
		b.ReportMetric(hwJ*1000, "hw_round_mJ")
	}
}

// BenchmarkAblationFusionInSitu runs the A3 ablation inside the live
// sensor pipeline: localization error of the full inner-circle system
// (L=5, interference fault) when the statistical fusion is the paper's
// FT-cluster algorithm, the fault-tolerant mean, or a naive average.
func BenchmarkAblationFusionInSitu(b *testing.B) {
	run := func(alg ic.FusionAlg) (float64, error) {
		cfg := ic.PaperSensorConfig()
		cfg.Seed = 13
		cfg.IC = true
		cfg.L = 5
		cfg.Fault = ic.FaultInterference
		cfg.Fusion = alg
		res, err := ic.RunSensor(cfg)
		if err != nil {
			return 0, err
		}
		return res.LocalizationErr, nil
	}
	for i := 0; i < b.N; i++ {
		cluster, err := run(ic.FusionCluster)
		if err != nil {
			b.Fatal(err)
		}
		mean, err := run(ic.FusionMean)
		if err != nil {
			b.Fatal(err)
		}
		naive, err := run(ic.FusionNaive)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cluster, "ftcluster_m")
		b.ReportMetric(mean, "ftmean_m")
		b.ReportMetric(naive, "naive_m")
	}
}

// BenchmarkReplicaHotpath measures one full 100-node, 30-second ad hoc
// replica (waypoint mobility, CBR traffic, no attack) — the single-replica
// wall-clock the spatial radio index and the kernel allocation diet target.
func BenchmarkReplicaHotpath(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := ic.PaperBlackholeConfig()
		cfg.Nodes = 100
		cfg.SimTime = 30
		cfg.Seed = 42
		if _, err := ic.RunBlackhole(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
