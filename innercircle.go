// Package innercircle is a Go implementation of inner-circle consistency
// for wireless ad hoc networks, reproducing "Neutralization of Errors and
// Attacks in Wireless Ad Hoc Networks" (Basile, Kalbarczyk, Iyer — DSN
// 2005).
//
// Inner-circle consistency neutralizes errors and attacks at their source:
// before a node's value propagates into the network, the node's one-hop
// neighbours (its inner circle) validate it — with an application-aware
// check (deterministic voting) or by statistically fusing it with their own
// observations (statistical voting) — and co-sign the result with an
// (L+1)-threshold signature. Remote recipients verify the signature to
// confirm that L+1 nodes vouched for the value.
//
// The package exposes four layers:
//
//   - the fault-tolerant fusion algorithms of §4.3 (FTCluster, FTMean,
//     Trilaterate) — pure functions usable on their own;
//   - the threshold-signature schemes of §2 (NewRSADealer, NewSimDealer,
//     DealRing);
//   - the simulated wireless network substrate and the inner-circle
//     framework node stack (BuildNetwork), for constructing custom
//     scenarios; and
//   - the paper's two evaluation scenarios, runnable directly
//     (RunBlackhole, RunSensor and their sweep drivers).
//
// The examples/ directory demonstrates each layer; bench_test.go
// regenerates every figure of the paper's evaluation.
package innercircle

import (
	"io"

	"innercircle/internal/crypto/thresh"
	"innercircle/internal/experiment"
	"innercircle/internal/faults"
	"innercircle/internal/fusion"
	"innercircle/internal/geo"
	"innercircle/internal/node"
	"innercircle/internal/scenario"
	"innercircle/internal/sensor"
	"innercircle/internal/stats"
	"innercircle/internal/vote"
)

// ---- Fault-tolerant fusion (§4.3) ---------------------------------------

// Vec is an n-dimensional observation for the fusion algorithms.
type Vec = fusion.Vec

// FTClusterResult reports the outcome of the fault-tolerant cluster
// algorithm: the estimate, the surviving observation indices, and the
// removal order of excluded ones.
type FTClusterResult = fusion.FTClusterResult

// Point is a 2-D position in metres.
type Point = geo.Point

// FTCluster runs the paper's Fault-Tolerant Cluster algorithm (Fig. 4):
// repeatedly exclude the observation whose leave-one-out distance from the
// rest is largest and exceeds eta, then estimate by the centroid of the
// surviving cluster. Unlike the fault-tolerant mean, it discards nothing
// when all observations are consistent.
func FTCluster(points []Vec, eta float64) (FTClusterResult, error) {
	return fusion.FTCluster(points, eta)
}

// FTMean is the classic fault-tolerant mean baseline (Dolev et al.):
// per coordinate, drop the f smallest and f largest observations and
// average the rest.
func FTMean(points []Vec, f int) (Vec, error) { return fusion.FTMean(points, f) }

// Trilaterate estimates a target position from three anchors and measured
// distances.
func Trilaterate(a1, a2, a3 Point, d1, d2, d3 float64) (Point, error) {
	return fusion.Trilaterate(a1, a2, a3, d1, d2, d3)
}

// TrilaterateAll enumerates anchor triples (up to maxTriples; 0 = all) and
// returns every non-degenerate estimate — the candidate set the sensor
// scenario filters with FTCluster.
func TrilaterateAll(anchors []Point, dists []float64, maxTriples int) []Point {
	return fusion.TrilaterateAll(anchors, dists, maxTriples)
}

// WorstCaseError returns E*, the worst-case estimation error F colluding
// observations (of N total) can add to the FT-cluster estimate when the
// correct observations span deltaC (§4.3, result 2).
func WorstCaseError(f, n int, deltaC float64) float64 {
	return fusion.WorstCaseError(f, n, deltaC)
}

// ---- Threshold signatures (§2) ------------------------------------------

// Threshold-signature types (see internal/crypto/thresh).
type (
	// Dealer creates group keys with threshold shares.
	Dealer = thresh.Dealer
	// GroupKey is the public side of a dealt key: combine and verify.
	GroupKey = thresh.GroupKey
	// Signer is one node's share: it produces partial signatures.
	Signer = thresh.Signer
	// Partial is one share's contribution to a signature.
	Partial = thresh.Partial
	// Signature is a combined threshold signature.
	Signature = thresh.Signature
)

// NewRSADealer returns the faithful Shoup-style threshold RSA dealer with
// the given modulus size (the paper uses 1024- and 512-bit keys).
func NewRSADealer(bits int) Dealer { return &thresh.RSADealer{Bits: bits} }

// NewSimDealer returns the keyed-MAC stand-in dealer used for large
// parameter sweeps; signatures report wireBytes as their transport size.
func NewSimDealer(seed []byte, wireBytes int) Dealer {
	return thresh.NewSimDealer(seed, wireBytes)
}

// Refresher is the proactive-share-refresh capability (§2's deferred
// extension): shares re-randomize so captures from different epochs do
// not combine. Both dealers implement it.
type Refresher = thresh.Refresher

// Resharer moves a group key to a new (k, n) share layout without
// changing the public key — the membership-epoch transition primitive.
// Both dealers implement it.
type Resharer = thresh.Resharer

// Epoched is implemented by every group key and signer: Epoch() counts
// the reshare/refresh generations a key has lived through, and keys it
// into the signature memo so verdicts never cross an epoch boundary.
type Epoched = thresh.Epoched

// Dealerless key generation (VSS with complaint/blame rounds).
type (
	// KeyGenerator is the dealerless-keygen capability both dealers
	// implement: DKG runs the qualification protocol and deals only among
	// the qualified participants.
	KeyGenerator = thresh.KeyGenerator
	// DKGConfig parameterizes one dealerless key generation.
	DKGConfig = thresh.DKGConfig
	// DKGResult reports the generated key plus the qualification outcome:
	// who was blamed with proof, who stayed silent, who qualified.
	DKGResult = thresh.DKGResult
	// DKGFault scripts one participant's misbehaviour during keygen.
	DKGFault = thresh.DKGFault
)

// DKG participant behaviours.
const (
	// DKGHonest follows the protocol.
	DKGHonest = thresh.DKGHonest
	// DKGCheatThenReveal deals a contradictory sub-share but opens it when
	// challenged; the complaint resolves and the dealer survives.
	DKGCheatThenReveal = thresh.DKGCheatThenReveal
	// DKGCheatStubborn deals a contradictory sub-share and refuses to open
	// it; the participant is blamed with proof and excluded.
	DKGCheatStubborn = thresh.DKGCheatStubborn
	// DKGSilent never deals; the participant is excluded without proof.
	DKGSilent = thresh.DKGSilent
)

// PublicRing maps dependability level L to its group key.
type PublicRing = vote.PublicRing

// NodeKeys maps dependability level L to one node's signer.
type NodeKeys = vote.NodeKeys

// DealRing deals one group key per dependability level 1..maxL among n
// nodes — the trusted-dealer initialization of §2.
func DealRing(dealer Dealer, maxL, n int) (PublicRing, []NodeKeys, error) {
	return vote.DealRing(dealer, maxL, n)
}

// DKGRing generates one group key per dependability level 1..maxL among n
// nodes with dealerless keygen, scripted faults optional. It returns the
// ring, per-node signers (empty for excluded participants), and the
// 0-based indices blamed with proof and excluded for silence.
func DKGRing(gen KeyGenerator, maxL, n int, dkgFaults map[int]DKGFault) (PublicRing, []NodeKeys, []int, []int, error) {
	return vote.DKGRing(gen, maxL, n, dkgFaults)
}

// LevelFor computes the §4.2 dependability level L = N − F − 1 for an
// inner circle of n nodes under a failure budget of fb Byzantine nodes,
// fc crashes and fl broken links.
func LevelFor(n, fb, fc, fl int) (int, error) { return vote.LevelFor(n, fb, fc, fl) }

// ByzantineLevel returns the level realizing the standard Byzantine-
// agreement special case (L+1 = ⌈2N/3⌉) for an n-node inner circle.
func ByzantineLevel(n int) (int, error) { return vote.ByzantineLevel(n) }

// ---- Network substrate ---------------------------------------------------

// Network-construction types (see internal/node).
type (
	// NetworkConfig describes a simulated deployment.
	NetworkConfig = node.Config
	// Network is a built deployment: kernel, channel, nodes, keys.
	Network = node.Network
	// Node is one assembled protocol stack (Fig. 1).
	Node = node.Node
)

// BuildNetwork assembles a simulated wireless network per the
// configuration; see examples/quickstart for a complete walkthrough.
func BuildNetwork(cfg NetworkConfig) (*Network, error) { return node.Build(cfg) }

// Membership drives inner-circle membership-epoch transitions on a built
// network: Leave/Crash/Join plus Reshare and Refresh, draining in-flight
// votes and re-announcing via STS at each epoch. Obtain one with
// (*Network).Membership().
type Membership = node.Membership

// MembershipStats counts a Membership manager's lifecycle activity.
type MembershipStats = node.MembershipStats

// ---- Paper experiments ----------------------------------------------------

// Experiment configuration and result types (see internal/experiment).
type (
	// BlackholeConfig parameterizes the §5.1 AODV black-hole scenario.
	BlackholeConfig = experiment.BlackholeConfig
	// BlackholeResult is one run's outcome.
	BlackholeResult = experiment.BlackholeResult
	// SensorConfig parameterizes the §5.2 sensor scenario.
	SensorConfig = experiment.SensorConfig
	// SensorResult is one run's outcome.
	SensorResult = experiment.SensorResult
	// FaultKind enumerates the §5.2 sensor fault models.
	FaultKind = sensor.FaultKind
	// FusionAlg selects the statistical fusion algorithm for the sensor
	// scenario (ablation A3 in situ).
	FusionAlg = experiment.FusionAlg
	// Table accumulates a figure's rows across runs.
	Table = stats.Table
	// Churn declares a membership-churn schedule for a scenario: crash-
	// and-rejoin cycles, permanent leaves, and the reshare/refresh policy.
	Churn = scenario.Churn
)

// Reshare policies for Churn.Reshare.
const (
	// ReshareOnEvent reshares after every membership event (the default).
	ReshareOnEvent = scenario.ReshareOnEvent
	// ReshareEvery reshares on a fixed interval.
	ReshareEvery = scenario.ReshareEvery
	// ReshareOff never reshares (departed members keep verifying shares).
	ReshareOff = scenario.ReshareOff
)

// Sensor fault models (§5.2).
const (
	FaultNone         = sensor.FaultNone
	FaultStuckAtZero  = sensor.FaultStuckAtZero
	FaultCalibration  = sensor.FaultCalibration
	FaultInterference = sensor.FaultInterference
	FaultPosition     = sensor.FaultPosition
)

// Fusion algorithms for SensorConfig.Fusion.
const (
	FusionCluster = experiment.FusionCluster
	FusionMean    = experiment.FusionMean
	FusionNaive   = experiment.FusionNaive
)

// PaperBlackholeConfig returns the Fig. 7 simulation-parameter box.
func PaperBlackholeConfig() BlackholeConfig { return experiment.PaperBlackholeConfig() }

// PaperSensorConfig returns the Fig. 8 simulation-parameter box.
func PaperSensorConfig() SensorConfig { return experiment.PaperSensorConfig() }

// RunBlackhole executes one Fig. 7 run.
func RunBlackhole(cfg BlackholeConfig) (BlackholeResult, error) {
	return experiment.RunBlackhole(cfg)
}

// RunSensor executes one Fig. 8 run.
func RunSensor(cfg SensorConfig) (SensorResult, error) {
	return experiment.RunSensor(cfg)
}

// BlackholeSweep regenerates Fig. 7(a) and 7(b): throughput and energy
// tables across malicious-node counts for No-IC and the given
// dependability levels.
func BlackholeSweep(base BlackholeConfig, maliciousCounts []int, levels []int, runs int, progress io.Writer) (throughput, energy *Table, err error) {
	return experiment.BlackholeSweep(base, maliciousCounts, levels, runs, progress)
}

// SensorSweep regenerates Fig. 8(a)–(f) across fault models and
// dependability levels; the returned map is keyed by "miss", "false",
// "energyT", "energyNT", "latency", "locerr".
func SensorSweep(base SensorConfig, levels []int, faults []FaultKind, runs int, progress io.Writer) (map[string]*Table, error) {
	return experiment.SensorSweep(base, levels, faults, runs, progress)
}

// AllFaultKinds lists the Fig. 8 fault sweep order.
func AllFaultKinds() []FaultKind { return sensor.AllFaultKinds() }

// ---- Fault-injection campaigns (internal/faults) --------------------------

// Fault-campaign types; see internal/faults for the fault catalogue and
// README for the JSON schema.
type (
	// Campaign is a named, declarative fault/attack scenario.
	Campaign = faults.Campaign
	// CampaignEntry is one (fault, params, targets, schedule) line.
	CampaignEntry = faults.Entry
	// CampaignTables bundles a campaign sweep's output tables.
	CampaignTables = experiment.CampaignTables
	// ChurnTables bundles a churn sweep's output tables.
	ChurnTables = experiment.ChurnTables
)

// LoadCampaign reads and validates a campaign JSON file.
func LoadCampaign(path string) (Campaign, error) { return faults.Load(path) }

// ParseCampaign decodes and validates campaign JSON.
func ParseCampaign(data []byte) (Campaign, error) { return faults.Parse(data) }

// ParsePreset builds a preset campaign from a shorthand spec such as
// "blackhole:3", "grayhole:3:0.5" or "churn:3:30:10".
func ParsePreset(spec string) (Campaign, error) { return faults.ParsePreset(spec) }

// CampaignSweep fans campaigns across {No IC} ∪ {IC, L=l} configurations
// on the parallel worker pool, returning throughput, energy, and the
// injected/suppressed/leaked neutralization-coverage tables. Same seed
// and campaigns yield byte-identical tables at any IC_WORKERS count.
func CampaignSweep(base BlackholeConfig, campaigns []Campaign, levels []int, runs int, progress io.Writer) (*CampaignTables, error) {
	return experiment.CampaignSweep(base, campaigns, levels, runs, progress)
}

// ChurnSweep fans {IC, L=l} sensor configurations across crash-and-rejoin
// rates on the parallel worker pool, returning the detection and energy
// costs of churn plus the membership-lifecycle accounting (transitions,
// reshares, aborted rounds, final epoch). Same seed and axes yield
// byte-identical tables at any IC_WORKERS and IC_SHARDS setting.
func ChurnSweep(base SensorConfig, levels, churns []int, runs int, progress io.Writer) (*ChurnTables, error) {
	return experiment.ChurnSweep(base, levels, churns, runs, progress)
}
