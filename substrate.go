package innercircle

import (
	"innercircle/internal/energy"
	"innercircle/internal/geo"
	"innercircle/internal/link"
	"innercircle/internal/mac"
	"innercircle/internal/mobility"
	"innercircle/internal/radio"
	"innercircle/internal/sensor"
	"innercircle/internal/sim"
	"innercircle/internal/sts"
	"innercircle/internal/trace"
	"innercircle/internal/vote"
)

// Substrate types, aliased so NetworkConfig is fully constructible from
// this package alone.
type (
	// NodeID identifies a node; correct nodes keep theirs for life.
	NodeID = link.NodeID
	// Message is anything a protocol sends across one hop.
	Message = link.Message
	// Env is a received message with its single-hop addressing.
	Env = link.Env
	// Time is virtual simulation time in seconds.
	Time = sim.Time
	// Duration is a span of virtual time in seconds.
	Duration = sim.Duration
	// RNG is a deterministic, splittable random stream.
	RNG = sim.RNG
	// RadioParams configure the physical layer.
	RadioParams = radio.Params
	// MACParams configure the CSMA/CA layer.
	MACParams = mac.Params
	// EnergyParams are the radio power draws in watts.
	EnergyParams = energy.Params
	// STSConfig configures the Secure Topology Service (§4.1).
	STSConfig = sts.Config
	// VoteConfig configures the Inner-circle Voting Service (§4.2).
	VoteConfig = vote.Config
	// VoteCallbacks are the application-provided Inner-circle Callbacks.
	VoteCallbacks = vote.Callbacks
	// CryptoProfile models signing/verification latency and energy (the
	// paper's Crypto-Processor rationale).
	CryptoProfile = vote.CryptoProfile
	// AgreedMsg is the self-checking output of a completed voting round.
	AgreedMsg = vote.AgreedMsg
	// MobilityModel yields a node's position over time.
	MobilityModel = mobility.Model
	// Rect is an axis-aligned deployment region.
	Rect = geo.Rect
	// SignalModel is the sensing energy-decay law of Eqn. 4.
	SignalModel = sensor.SignalModel
)

// Voting modes (Fig. 3).
const (
	// Deterministic voting validates a proposed value as-is.
	Deterministic = vote.Deterministic
	// Statistical voting fuses the inner circle's own observations.
	Statistical = vote.Statistical
)

// BroadcastID is the single-hop broadcast destination.
const BroadcastID = link.BroadcastID

// Default80211Radio returns the ad hoc scenario's physical layer: 250 m
// range at 2 Mb/s.
func Default80211Radio() RadioParams { return radio.Default80211() }

// DefaultMAC returns DCF-like CSMA/CA parameters.
func DefaultMAC() MACParams { return mac.Default80211() }

// NS2Energy returns the paper's energy model: Tx 660 mW, Rx 395 mW,
// Idle 35 mW.
func NS2Energy() EnergyParams { return energy.NS2Default() }

// DefaultSTS returns the ad hoc scenario's topology-service configuration
// (∆STS = 2 s, authenticated beacons, NSL link handshake).
func DefaultSTS() STSConfig { return sts.DefaultConfig() }

// Square returns the deployment region [0, side] × [0, side].
func Square(side float64) Rect { return geo.Square(side) }

// Static returns a mobility model that never moves.
func Static(p Point) MobilityModel { return mobility.Static(p) }

// RandomWaypoint returns the random waypoint mobility model used by the
// ad hoc experiment: uniform destinations in region, fixed speed, given
// pause time.
func RandomWaypoint(region Rect, speed float64, pause Duration, start Point, rng *RNG) MobilityModel {
	return mobility.NewWaypoint(mobility.WaypointConfig{
		Region:   region,
		MinSpeed: speed,
		MaxSpeed: speed,
		Pause:    pause,
	}, start, rng)
}

// UniformPlacement draws n positions uniformly from region.
func UniformPlacement(region Rect, n int, rng *RNG) []Point {
	return mobility.UniformPlacement(region, n, rng)
}

// GridPlacement places n positions on a jittered grid over region.
func GridPlacement(region Rect, n int, jitter float64, rng *RNG) []Point {
	return mobility.GridPlacement(region, n, jitter, rng)
}

// NewRNG returns a deterministic random stream for the given seed.
func NewRNG(seed int64) *RNG { return sim.NewRNG(seed) }

// Tracer records wire-level traffic; pass one in NetworkConfig.Tracer and
// print its summary after a run.
type Tracer = trace.Tracer

// NewTracer returns a tracer retaining at most capacity events (0 keeps
// only per-type counters).
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }

// SoftwareCrypto returns the embedded-CPU crypto cost profile.
func SoftwareCrypto() CryptoProfile { return vote.SoftwareCrypto() }

// HardwareCrypto returns the paper's Crypto-Processor cost profile
// (roughly 10x faster and 100x more energy-efficient than software).
func HardwareCrypto() CryptoProfile { return vote.HardwareCrypto() }

// PaperSignalModel returns the Fig. 8 sensing parameters (K·T = 20000,
// k = 2, σ_N = 1).
func PaperSignalModel() SignalModel { return sensor.Paper() }

// NeymanPearsonLambda is the detection threshold λ = 6.635 giving a 1%
// per-sample false-alarm probability under χ²₁ noise.
const NeymanPearsonLambda = sensor.NeymanPearsonLambda
