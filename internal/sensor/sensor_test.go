package sensor

import (
	"math"
	"testing"
	"testing/quick"

	"innercircle/internal/geo"
	"innercircle/internal/sim"
)

func TestSignalDecayLaw(t *testing.T) {
	m := Paper()
	if got := m.SignalAt(0.5); got != 20000 {
		t.Fatalf("SignalAt(<d0) = %v, want KT", got)
	}
	if got := m.SignalAt(10); math.Abs(got-200) > 1e-9 {
		t.Fatalf("SignalAt(10) = %v, want 20000/100 = 200", got)
	}
	if got := m.SignalAt(100); math.Abs(got-2) > 1e-9 {
		t.Fatalf("SignalAt(100) = %v, want 2", got)
	}
}

func TestDistanceForInvertsSignal(t *testing.T) {
	m := Paper()
	f := func(dRaw uint8) bool {
		d := 1 + float64(dRaw)
		e := m.SignalAt(d)
		got, err := m.DistanceFor(e)
		if err != nil {
			return false
		}
		return math.Abs(got-d) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DistanceFor(0); err == nil {
		t.Fatal("zero energy accepted")
	}
	if d, err := m.DistanceFor(1e9); err != nil || d != m.D0 {
		t.Fatalf("above-plateau energy: %v/%v", d, err)
	}
}

func TestFalseAlarmRateMatchesAlpha(t *testing.T) {
	// With no target, P{E > 6.635} must be ~1% (chi-square, 1 dof).
	d := NewDevice(Paper(), geo.Point{}, NeymanPearsonLambda, sim.NewRNG(5))
	const n = 200000
	alarms := 0
	for i := 0; i < n; i++ {
		if d.Sample(nil).Detected {
			alarms++
		}
	}
	rate := float64(alarms) / n
	if rate < 0.007 || rate > 0.013 {
		t.Fatalf("false alarm rate = %.4f, want ~0.01", rate)
	}
}

func TestNearbyTargetAlwaysDetected(t *testing.T) {
	d := NewDevice(Paper(), geo.Point{X: 10}, NeymanPearsonLambda, sim.NewRNG(6))
	target := geo.Point{X: 20} // 10 m away: S = 200 >> λ
	for i := 0; i < 1000; i++ {
		if !d.Sample(&target).Detected {
			t.Fatal("strong target missed")
		}
	}
}

func TestFarTargetRarelyDetected(t *testing.T) {
	d := NewDevice(Paper(), geo.Point{}, NeymanPearsonLambda, sim.NewRNG(7))
	target := geo.Point{X: 200} // S = 0.5, well under λ
	detections := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if d.Sample(&target).Detected {
			detections++
		}
	}
	if rate := float64(detections) / n; rate > 0.05 {
		t.Fatalf("far-target detection rate = %.4f, want small", rate)
	}
}

func TestStuckAtZero(t *testing.T) {
	d := NewDevice(Paper(), geo.Point{}, NeymanPearsonLambda, sim.NewRNG(8))
	d.InjectFault(FaultStuckAtZero, PaperFaults(), geo.Square(200))
	target := geo.Point{X: 1}
	for i := 0; i < 100; i++ {
		r := d.Sample(&target)
		if r.Energy != 0 || r.Detected {
			t.Fatalf("stuck-at-zero sensor reported %+v", r)
		}
	}
}

func TestCalibrationFaultScalesEnergy(t *testing.T) {
	rng := sim.NewRNG(9)
	healthy := NewDevice(Paper(), geo.Point{}, NeymanPearsonLambda, rng.Split("h"))
	faulty := NewDevice(Paper(), geo.Point{}, NeymanPearsonLambda, rng.Split("f"))
	faulty.InjectFault(FaultCalibration, PaperFaults(), geo.Square(200))
	target := geo.Point{X: 10} // S = 200
	var sumH, sumF float64
	const n = 5000
	for i := 0; i < n; i++ {
		sumH += healthy.Sample(&target).Energy
		sumF += faulty.Sample(&target).Energy
	}
	ratio := sumF / sumH
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("calibration ratio = %.3f, want ~2", ratio)
	}
}

func TestInterferenceRaisesFalseAlarms(t *testing.T) {
	d := NewDevice(Paper(), geo.Point{}, NeymanPearsonLambda, sim.NewRNG(10))
	d.InjectFault(FaultInterference, PaperFaults(), geo.Square(200))
	const n = 20000
	alarms := 0
	for i := 0; i < n; i++ {
		if d.Sample(nil).Detected {
			alarms++
		}
	}
	rate := float64(alarms) / n
	// With noise scaled ×10, P{10·N² > 6.635} = P{|N| > 0.815} ≈ 0.415.
	if rate < 0.3 {
		t.Fatalf("interference false-alarm rate = %.4f, want >> 1%%", rate)
	}
}

func TestPositionFaultOnlyAffectsReportedPos(t *testing.T) {
	d := NewDevice(Paper(), geo.Point{X: 100, Y: 100}, NeymanPearsonLambda, sim.NewRNG(11))
	d.InjectFault(FaultPosition, PaperFaults(), geo.Square(200))
	if d.TruePos() != (geo.Point{X: 100, Y: 100}) {
		t.Fatal("true position changed")
	}
	if d.ReportedPos() == d.TruePos() {
		t.Fatal("reported position did not change (astronomically unlikely)")
	}
	if !geo.Square(200).Contains(d.ReportedPos()) {
		t.Fatal("bogus position outside region")
	}
	// Readings remain healthy.
	target := geo.Point{X: 100, Y: 110}
	if !d.Sample(&target).Detected {
		t.Fatal("position-faulty sensor should still sense correctly")
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	in := Notification{Time: 123.456, Energy: 78.9, Pos: geo.Point{X: 1.5, Y: -2.5}}
	out, err := DecodeNotification(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if _, err := DecodeNotification([]byte{1}); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestTargetActivity(t *testing.T) {
	tg := Target{Pos: geo.Point{X: 1}, Start: 100, End: 125}
	cases := []struct {
		at   sim.Time
		want bool
	}{
		{99, false}, {100, true}, {124.9, true}, {125, false},
	}
	for _, c := range cases {
		if got := tg.ActiveAt(c.at); got != c.want {
			t.Errorf("ActiveAt(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestFaultKindStrings(t *testing.T) {
	if len(AllFaultKinds()) != 5 {
		t.Fatal("AllFaultKinds should list 5 models (incl. none)")
	}
	for _, k := range AllFaultKinds() {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if FaultKind(99).String() != "unknown" {
		t.Fatal("out-of-range kind should be unknown")
	}
}
