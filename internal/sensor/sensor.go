// Package sensor implements the target detection/localization model of
// §5.2: the polynomial energy-decay law (Eqn. 4), Gaussian measurement
// noise, the Neyman–Pearson energy detector, the target-distance inverse,
// and the four sensor fault models the paper injects (stuck-at-zero,
// calibration error, signal interference, positioning error).
package sensor

import (
	"encoding/binary"
	"fmt"
	"math"

	"innercircle/internal/geo"
	"innercircle/internal/sim"
)

// SignalModel is the emitted-energy decay law of Eqn. 4:
//
//	S_i(u) = K·T                    if d < d0
//	         K·T / (d/d0)^k         otherwise
type SignalModel struct {
	// KT is the product K·T: power at the target times sampling duration.
	KT float64 `json:"kt"`
	// K is the decay exponent k (the paper uses 2).
	K float64 `json:"k"`
	// D0 is the reference distance d0.
	D0 float64 `json:"d0"`
	// SigmaN is the noise standard deviation σ_N; measured energy is
	// E = S + N² with N ~ N(0, σ_N).
	SigmaN float64 `json:"sigma_n"`
}

// Paper returns the Fig. 8 parameter box: K·T = 20000, k = 2, σ_N = 1,
// d0 = 1 m.
func Paper() SignalModel {
	return SignalModel{KT: 20000, K: 2, D0: 1, SigmaN: 1}
}

// SignalAt returns S(d), the noiseless received signal energy at distance
// d from the target.
func (m SignalModel) SignalAt(d float64) float64 {
	if d < m.D0 {
		return m.KT
	}
	return m.KT / math.Pow(d/m.D0, m.K)
}

// DistanceFor inverts SignalAt: the distance at which the signal equals e.
// Values above the close-range plateau map to d0.
func (m SignalModel) DistanceFor(e float64) (float64, error) {
	if e <= 0 {
		return 0, fmt.Errorf("sensor: non-positive energy %v", e)
	}
	if e >= m.KT {
		return m.D0, nil
	}
	return m.D0 * math.Pow(m.KT/e, 1/m.K), nil
}

// NeymanPearsonLambda is the paper's detection threshold λ = 6.635: with
// E = N² and N ~ N(0,1), E is χ²₁-distributed and P{χ²₁ > 6.635} = 0.01,
// giving a per-sample false-alarm probability α = 1%.
const NeymanPearsonLambda = 6.635

// FaultKind enumerates the §5.2 sensor fault models.
type FaultKind int

// Fault models.
const (
	FaultNone FaultKind = iota
	// FaultStuckAtZero: the sensor constantly reports E = 0.
	FaultStuckAtZero
	// FaultCalibration: readings carry a multiplicative error ε_clbr.
	FaultCalibration
	// FaultInterference: the noise term is amplified by ε_intf >> 1.
	FaultInterference
	// FaultPosition: the node misestimates its own position (uniform over
	// the deployment region).
	FaultPosition
)

// String implements fmt.Stringer.
func (f FaultKind) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultStuckAtZero:
		return "stuck-at-zero"
	case FaultCalibration:
		return "calibration"
	case FaultInterference:
		return "interference"
	case FaultPosition:
		return "position"
	default:
		return "unknown"
	}
}

// ParseFaultKind inverts String: the name of a fault model (as used in
// flags and the experiment service's JSON grids) back to its kind.
func ParseFaultKind(s string) (FaultKind, error) {
	for _, f := range AllFaultKinds() {
		if f.String() == s {
			return f, nil
		}
	}
	return FaultNone, fmt.Errorf("sensor: unknown fault kind %q", s)
}

// MarshalText implements encoding.TextMarshaler: fault kinds travel as
// their names in JSON (grids and manifests stay human-auditable).
func (f FaultKind) MarshalText() ([]byte, error) {
	if f < FaultNone || f > FaultPosition {
		return nil, fmt.Errorf("sensor: unknown fault kind %d", int(f))
	}
	return []byte(f.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (f *FaultKind) UnmarshalText(b []byte) error {
	k, err := ParseFaultKind(string(b))
	if err != nil {
		return err
	}
	*f = k
	return nil
}

// AllFaultKinds lists the sweep order used by Fig. 8 (no-fault first).
func AllFaultKinds() []FaultKind {
	return []FaultKind{FaultNone, FaultInterference, FaultCalibration, FaultStuckAtZero, FaultPosition}
}

// FaultParams are the fault-model magnitudes from the Fig. 8 box.
type FaultParams struct {
	Eclbr float64 `json:"eclbr"` // calibration multiplier (paper: 2)
	Eintf float64 `json:"eintf"` // interference noise multiplier (paper: 10)
}

// PaperFaults returns ε_clbr = 2, ε_intf = 10.
func PaperFaults() FaultParams { return FaultParams{Eclbr: 2, Eintf: 10} }

// Device is one node's sensor. Not safe for concurrent use.
type Device struct {
	model   SignalModel
	truePos geo.Point
	// reportedPos is what the node believes its position is (differs from
	// truePos under FaultPosition).
	reportedPos geo.Point
	fault       FaultKind
	params      FaultParams
	lambda      float64
	rng         *sim.RNG
}

// NewDevice creates a healthy sensor at pos.
func NewDevice(model SignalModel, pos geo.Point, lambda float64, rng *sim.RNG) *Device {
	return &Device{
		model:       model,
		truePos:     pos,
		reportedPos: pos,
		lambda:      lambda,
		rng:         rng,
	}
}

// InjectFault switches the device into a fault mode. For FaultPosition the
// bogus self-position is drawn uniformly from region.
func (d *Device) InjectFault(kind FaultKind, params FaultParams, region geo.Rect) {
	d.fault = kind
	d.params = params
	if kind == FaultPosition {
		d.reportedPos = geo.Point{
			X: d.rng.Uniform(region.MinX, region.MaxX),
			Y: d.rng.Uniform(region.MinY, region.MaxY),
		}
	}
}

// Fault returns the injected fault kind.
func (d *Device) Fault() FaultKind { return d.fault }

// ReportedPos returns the node's own position estimate (bogus under the
// positioning fault).
func (d *Device) ReportedPos() geo.Point { return d.reportedPos }

// TruePos returns the physical position.
func (d *Device) TruePos() geo.Point { return d.truePos }

// Reading is one sensing sample.
type Reading struct {
	Energy   float64
	Detected bool
}

// Sample senses the environment. target is nil when no target is present.
func (d *Device) Sample(target *geo.Point) Reading {
	var signal float64
	if target != nil {
		signal = d.model.SignalAt(d.truePos.Dist(*target))
	}
	n := d.rng.Normal(0, d.model.SigmaN)
	noise := n * n
	var e float64
	switch d.fault {
	case FaultStuckAtZero:
		e = 0
	case FaultCalibration:
		e = d.params.Eclbr * (signal + noise)
	case FaultInterference:
		e = signal + d.params.Eintf*noise
	default: // FaultNone, FaultPosition: the reading itself is healthy
		e = signal + noise
	}
	return Reading{Energy: e, Detected: e > d.lambda}
}

// Notification is the target report a sensor sends toward the base
// station: detection time t_i, sensed energy E_i, and estimated target
// position u_i (§5.2 uses the sensor's own position as the local
// estimate).
type Notification struct {
	Time   sim.Time
	Energy float64
	Pos    geo.Point
}

// Encode serializes a notification for voting/transport (32 bytes).
func (n Notification) Encode() []byte {
	buf := make([]byte, 32)
	binary.BigEndian.PutUint64(buf[0:], math.Float64bits(float64(n.Time)))
	binary.BigEndian.PutUint64(buf[8:], math.Float64bits(n.Energy))
	binary.BigEndian.PutUint64(buf[16:], math.Float64bits(n.Pos.X))
	binary.BigEndian.PutUint64(buf[24:], math.Float64bits(n.Pos.Y))
	return buf
}

// DecodeNotification reverses Encode.
func DecodeNotification(b []byte) (Notification, error) {
	if len(b) != 32 {
		return Notification{}, fmt.Errorf("sensor: bad notification length %d", len(b))
	}
	return Notification{
		Time:   sim.Time(math.Float64frombits(binary.BigEndian.Uint64(b[0:]))),
		Energy: math.Float64frombits(binary.BigEndian.Uint64(b[8:])),
		Pos: geo.Point{
			X: math.Float64frombits(binary.BigEndian.Uint64(b[16:])),
			Y: math.Float64frombits(binary.BigEndian.Uint64(b[24:])),
		},
	}, nil
}

// Target is an event of interest that emits energy during [Start, End].
type Target struct {
	Pos   geo.Point
	Start sim.Time
	End   sim.Time
}

// ActiveAt reports whether the target is emitting at time t.
func (t Target) ActiveAt(at sim.Time) bool { return at >= t.Start && at < t.End }
