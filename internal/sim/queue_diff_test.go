package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// The differential test drives the heap and wheel kernels with an identical
// scripted stream of schedule/cancel/fire operations and asserts the fire
// orders and kernel stats match exactly. The script is pure data so both
// kernels replay precisely the same calls; any divergence is a determinism
// bug in one of the queues.

type diffOpKind int

const (
	opSchedule     diffOpKind = iota // MustSchedule, remembers the EventID
	opFire                           // ScheduleFire
	opFireArg                        // ScheduleFireArg
	opFireHandle                     // ScheduleFireHandle, remembers the handle
	opCancelID                       // Cancel a previously issued EventID (possibly already fired)
	opCancelHandle                   // CancelHandle on a previous handle (possibly already fired)
	opRun                            // Run(now + horizon)
)

type diffOp struct {
	kind    diffOpKind
	delay   Duration // schedule delay, or Run horizon
	target  int      // index into issued ids/handles for the cancel ops
	repeats int      // same-tick tie burst: schedule this many at one timestamp
}

// diffScript builds a deterministic operation stream exercising the corner
// cases the queues disagree on first if anything is wrong: same-tick ties,
// zero-delay events, sub-quantum separations, far-future overflow timers,
// cancels of already-fired ids and handles, and Run horizons that park the
// clock between events.
func diffScript(seed int64, n int) []diffOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]diffOp, 0, n)
	delays := []Duration{
		0, 0, 1e-9, 5e-6, 1e-5, 5e-5, 2e-4, 1e-3, 0.02, 0.5, 3, 600, 1e7,
	}
	for i := 0; i < n; i++ {
		switch r := rng.Intn(10); {
		case r < 3:
			ops = append(ops, diffOp{kind: opSchedule, delay: delays[rng.Intn(len(delays))]})
		case r < 5:
			ops = append(ops, diffOp{kind: opFire, delay: delays[rng.Intn(len(delays))], repeats: 1 + rng.Intn(4)})
		case r < 6:
			ops = append(ops, diffOp{kind: opFireArg, delay: delays[rng.Intn(len(delays))]})
		case r < 7:
			ops = append(ops, diffOp{kind: opFireHandle, delay: delays[rng.Intn(len(delays))]})
		case r < 8:
			ops = append(ops, diffOp{kind: opCancelID, target: rng.Intn(1 + i)})
		case r < 9:
			ops = append(ops, diffOp{kind: opCancelHandle, target: rng.Intn(1 + i)})
		default:
			ops = append(ops, diffOp{kind: opRun, delay: delays[rng.Intn(len(delays))]})
		}
	}
	return ops
}

// diffReplay applies the script to a fresh kernel of the given kind and
// returns the observed fire trace plus final stats. Every scheduled
// callback logs a label unique to its issuing op, so identical traces mean
// identical fire order, not merely identical counts.
func diffReplay(t *testing.T, kind QueueKind, ops []diffOp) (trace []string, processed uint64, pending int) {
	t.Helper()
	k := NewKernelQueue(kind)
	var ids []EventID
	var handles []TimerHandle
	logf := func(label string) func() {
		return func() { trace = append(trace, fmt.Sprintf("%s@%v", label, k.Now())) }
	}
	logArg := func(a any) { trace = append(trace, fmt.Sprintf("%s@%v", a.(string), k.Now())) }
	for i, op := range ops {
		switch op.kind {
		case opSchedule:
			ids = append(ids, k.MustSchedule(op.delay, logf(fmt.Sprintf("sched%d", i))))
		case opFire:
			for r := 0; r < op.repeats; r++ {
				k.ScheduleFire(op.delay, logf(fmt.Sprintf("fire%d.%d", i, r)))
			}
		case opFireArg:
			k.ScheduleFireArg(op.delay, logArg, fmt.Sprintf("arg%d", i))
		case opFireHandle:
			handles = append(handles, k.ScheduleFireHandle(op.delay, logf(fmt.Sprintf("hfire%d", i))))
		case opCancelID:
			if len(ids) > 0 {
				id := ids[op.target%len(ids)]
				trace = append(trace, fmt.Sprintf("cancel%d=%t", i, k.Cancel(id)))
			}
		case opCancelHandle:
			if len(handles) > 0 {
				h := handles[op.target%len(handles)]
				trace = append(trace, fmt.Sprintf("hcancel%d=%t", i, k.CancelHandle(h)))
			}
		case opRun:
			if err := k.Run(k.Now() + op.delay); err != nil {
				t.Fatalf("Run: %v", err)
			}
			trace = append(trace, fmt.Sprintf("run%d@%v", i, k.Now()))
		}
	}
	if err := k.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	return trace, k.Processed(), k.Pending()
}

// TestQueueDifferentialRandom replays many seeded scripts against both
// queue implementations and requires byte-identical traces and stats.
func TestQueueDifferentialRandom(t *testing.T) {
	seeds := 30
	opsPerSeed := 400
	if testing.Short() {
		seeds, opsPerSeed = 8, 150
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		ops := diffScript(seed, opsPerSeed)
		hTrace, hProc, hPend := diffReplay(t, QueueHeap, ops)
		wTrace, wProc, wPend := diffReplay(t, QueueWheel, ops)
		if hProc != wProc || hPend != wPend {
			t.Fatalf("seed %d: stats diverge: heap processed=%d pending=%d, wheel processed=%d pending=%d",
				seed, hProc, hPend, wProc, wPend)
		}
		if len(hTrace) != len(wTrace) {
			t.Fatalf("seed %d: trace lengths diverge: heap %d, wheel %d", seed, len(hTrace), len(wTrace))
		}
		for i := range hTrace {
			if hTrace[i] != wTrace[i] {
				t.Fatalf("seed %d: traces diverge at %d: heap %q, wheel %q", seed, i, hTrace[i], wTrace[i])
			}
		}
	}
}
