package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestShardSetDeterministicAcrossGroups pins the grouped executor to the
// determinism contract: any slot count between fully sequential and
// goroutine-per-shard must produce the sequential transcript.
func TestShardSetDeterministicAcrossGroups(t *testing.T) {
	const until = Millisecond
	run := func(exec, groups string) string {
		t.Setenv("IC_SHARD_EXEC", exec)
		t.Setenv("IC_SHARD_GROUPS", groups)
		cs := newChainSpec(4)
		if err := cs.set.Run(until); err != nil {
			t.Fatalf("Run(exec=%q groups=%q): %v", exec, groups, err)
		}
		return cs.transcript()
	}
	seq := run("seq", "")
	if !strings.Contains(seq, "rx s1<-s0") {
		t.Fatalf("sequential transcript did not exercise cross-shard posts:\n%s", seq)
	}
	for _, groups := range []string{"1", "2", "3", "4", "9"} {
		if got := run("", groups); got != seq {
			t.Fatalf("groups=%s diverged from sequential run:\nseq:\n%s\ngot:\n%s", groups, seq, got)
		}
	}
}

// TestShardSetDeterministicWithMsgLookahead: raising the message lookahead
// only changes how fast horizons propagate, never what executes — the
// transcript must match the base-lookahead run under every executor.
func TestShardSetDeterministicWithMsgLookahead(t *testing.T) {
	const until = Millisecond
	run := func(exec string, msgLA Duration) string {
		t.Setenv("IC_SHARD_EXEC", exec)
		cs := newChainSpec(3)
		if msgLA > 0 {
			cs.set.SetMsgLookahead(msgLA)
		}
		if err := cs.set.Run(until); err != nil {
			t.Fatalf("Run(%s, msgLA=%v): %v", exec, msgLA, err)
		}
		return cs.transcript()
	}
	want := run("seq", 0)
	for _, exec := range []string{"seq", "par"} {
		for _, msgLA := range []Duration{5 * testLookahead, 100 * testLookahead} {
			if got := run(exec, msgLA); got != want {
				t.Fatalf("exec=%s msgLA=%v diverged:\nwant:\n%s\ngot:\n%s", exec, msgLA, want, got)
			}
		}
	}
}

// TestSetMsgLookaheadValidation: the message lookahead is a promise at
// least as strong as the base lookahead; weakening it must fail loud.
func TestSetMsgLookaheadValidation(t *testing.T) {
	set := NewShardSet(2, testLookahead)
	if got := set.MsgLookahead(); got != testLookahead {
		t.Fatalf("default MsgLookahead = %v, want the base lookahead %v", got, testLookahead)
	}
	set.SetMsgLookahead(3 * testLookahead)
	if got := set.MsgLookahead(); got != 3*testLookahead {
		t.Fatalf("MsgLookahead = %v after SetMsgLookahead(3L), want %v", got, 3*testLookahead)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("SetMsgLookahead below the base lookahead did not panic")
		}
	}()
	set.SetMsgLookahead(testLookahead / 2)
}

// TestMsgLookaheadContractSpotCheck: a border transmission scheduled
// directly from a message callback below the promised message lookahead
// violates horizons already published on the strength of that promise, so
// the kernel must panic rather than corrupt the run.
func TestMsgLookaheadContractSpotCheck(t *testing.T) {
	t.Setenv("IC_SHARD_EXEC", "seq")
	set := NewShardSet(2, testLookahead)
	set.SetMsgLookahead(4 * testLookahead)
	k0, k1 := set.Kernel(0), set.Kernel(1)
	k0.ScheduleFireTx(2*testLookahead, func() {
		set.Post(k0, 1, k0.Now()+testLookahead/2, func(any) {
			// Base lookahead alone is not enough once msgLookahead is 4L.
			k1.ScheduleFireTx(testLookahead, func() {}, true)
		}, nil)
	}, true)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("border ScheduleFireTx below the message lookahead did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "SetMsgLookahead contract") {
			t.Fatalf("panic = %v, want a SetMsgLookahead contract violation", r)
		}
	}()
	_ = set.Run(Millisecond)
}

// TestShardUtilization: per-shard utilization must account every executed
// event, and the threaded executor must record its synchronization work.
func TestShardUtilization(t *testing.T) {
	for _, exec := range []string{"seq", "par"} {
		t.Run(exec, func(t *testing.T) {
			t.Setenv("IC_SHARD_EXEC", exec)
			cs := newChainSpec(3)
			if err := cs.set.Run(Millisecond); err != nil {
				t.Fatalf("Run: %v", err)
			}
			util := cs.set.Utilization()
			if len(util) != 3 {
				t.Fatalf("Utilization returned %d records, want 3", len(util))
			}
			var events uint64
			for _, u := range util {
				events += u.Events
			}
			if events == 0 || events != cs.set.Processed() {
				t.Fatalf("utilization accounts %d events, Processed() = %d", events, cs.set.Processed())
			}
		})
	}
}

// TestCoreBudget: the token account must clamp at the budget, never go
// negative, and drain back to zero after release.
func TestCoreBudget(t *testing.T) {
	t.Setenv("IC_CORE_BUDGET", "3")
	if used := coreUsed.Load(); used != 0 {
		t.Fatalf("core tokens leaked from a previous test: %d in use", used)
	}
	if got := AcquireCores(2); got != 2 {
		t.Fatalf("AcquireCores(2) on an empty budget of 3 = %d, want 2", got)
	}
	if got := AcquireCores(5); got != 1 {
		t.Fatalf("AcquireCores(5) with 1 spare = %d, want 1", got)
	}
	if got := AcquireCores(1); got != 0 {
		t.Fatalf("AcquireCores(1) on an exhausted budget = %d, want 0", got)
	}
	if got := AcquireCores(0); got != 0 {
		t.Fatalf("AcquireCores(0) = %d, want 0", got)
	}
	ReleaseCores(3)
	ReleaseCores(0)
	if used := coreUsed.Load(); used != 0 {
		t.Fatalf("coreUsed = %d after releasing everything, want 0", used)
	}
}

// TestShardSetRunReleasesCoreTokens: the budgeted executor path must return
// every token it took, including the surplus released up front when
// GOMAXPROCS caps the slot count below the grant.
func TestShardSetRunReleasesCoreTokens(t *testing.T) {
	t.Setenv("IC_SHARD_EXEC", "")
	t.Setenv("IC_SHARD_GROUPS", "")
	t.Setenv("IC_CORE_BUDGET", "8")
	if used := coreUsed.Load(); used != 0 {
		t.Fatalf("core tokens leaked from a previous test: %d in use", used)
	}
	cs := newChainSpec(4)
	if err := cs.set.Run(Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if used := coreUsed.Load(); used != 0 {
		t.Fatalf("coreUsed = %d after Run, want 0", used)
	}
}
