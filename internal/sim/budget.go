package sim

// Core-token budget: a process-wide account of how many simulation-driving
// goroutines are worth keeping runnable at once. Without it, a sweep of W
// workers each running an S-shard replica spawns W×S runnable goroutines
// and thrashes the scheduler; with it, the experiment pool charges one
// token per in-flight replica and ShardSet.Run sizes its executor to the
// tokens actually left over, so concurrent sharded replicas cooperatively
// divide the machine instead of fighting over it.
//
// The budget is advisory, never blocking: AcquireCores grants at most what
// is spare and possibly nothing, and callers proceed either way (a pool
// worker that gets no token still runs its replica; a shard set that gets
// no extra tokens runs its shards on the caller's goroutine). That keeps
// the token layer invisible to correctness — results are pinned
// byte-identical at every (workers, shards) combination by the kernel's
// determinism contract, and the budget only shapes wall-clock behavior.

import (
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
)

// coreUsed counts tokens currently held across the process.
var coreUsed atomic.Int64

// coreBudget returns the total token pool: IC_CORE_BUDGET when set to a
// positive integer, else GOMAXPROCS. It is re-read on every acquire so a
// benchmark varying GOMAXPROCS mid-process sees the new ceiling.
func coreBudget() int64 {
	if s := os.Getenv("IC_CORE_BUDGET"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return int64(v)
		}
	}
	return int64(runtime.GOMAXPROCS(0))
}

// AcquireCores takes up to max spare core tokens and returns how many were
// granted (possibly zero — it never blocks). The caller must pass the
// granted count to ReleaseCores when the work completes.
func AcquireCores(max int) int {
	if max <= 0 {
		return 0
	}
	for {
		used := coreUsed.Load()
		spare := coreBudget() - used
		if spare <= 0 {
			return 0
		}
		n := int64(max)
		if n > spare {
			n = spare
		}
		if coreUsed.CompareAndSwap(used, used+n) {
			return int(n)
		}
	}
}

// ReleaseCores returns n tokens taken by AcquireCores to the pool.
func ReleaseCores(n int) {
	if n > 0 {
		coreUsed.Add(-int64(n))
	}
}

// CoresInUse returns the number of core tokens currently held across the
// process. Diagnostic: leak tests assert it returns to zero after a
// cancelled sweep.
func CoresInUse() int { return int(coreUsed.Load()) }
