package sim

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

const testLookahead Duration = 10 * Microsecond

// chainSpec drives a deterministic cross-shard workload: each shard runs a
// chain of tx-flagged events; every firing appends a record to the shard's
// log and posts a message to the peer shard, whose execution also logs.
type chainSpec struct {
	set  *ShardSet
	logs [][]string // one per shard; only appended to by that shard's kernel
}

func newChainSpec(n int) *chainSpec {
	cs := &chainSpec{set: NewShardSet(n, testLookahead), logs: make([][]string, n)}
	// Distinct per-shard periods keep transmission timestamps from ever
	// colliding across shards: bit-identical cross-shard timestamps are the
	// ambiguous-tie case and trip ErrShardTie by design (tested separately).
	periods := []Duration{1.31 * testLookahead, 1.73 * testLookahead, 2.39 * testLookahead, 3.11 * testLookahead}
	for i := 0; i < n; i++ {
		i := i
		k := cs.set.Kernel(i)
		// Post only to an adjacent shard: horizons bind neighbors, matching
		// the stripe partition where cross-shard radio traffic is always ±1.
		peer := i + 1
		if peer == n {
			peer = n - 2
		}
		period := periods[i%len(periods)]
		var fire func()
		fire = func() {
			now := k.Now()
			cs.logs[i] = append(cs.logs[i], fmt.Sprintf("tx s%d %v", i, now))
			cs.set.Post(k, peer, now, func(arg any) {
				cs.logs[peer] = append(cs.logs[peer], fmt.Sprintf("rx s%d<-s%d %v", peer, i, cs.set.Kernel(peer).Now()))
			}, nil)
			k.ScheduleFireTx(period, fire, true)
		}
		k.ScheduleFireTx(period, fire, true)
	}
	return cs
}

func (cs *chainSpec) transcript() string {
	var b strings.Builder
	for i, log := range cs.logs {
		fmt.Fprintf(&b, "shard %d:\n", i)
		for _, line := range log {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestShardSetDeterministicAcrossExecutors pins the determinism contract:
// the threaded and sequential executors, and repeated threaded runs, must
// interleave cross-shard messages identically.
func TestShardSetDeterministicAcrossExecutors(t *testing.T) {
	// 1 ms keeps the run short of the first rational coincidence of the
	// chain periods (173·1.31L = 131·1.73L ≈ 2.27 ms), where timestamps
	// would legitimately collide and trip the tie detector.
	const until = Millisecond
	run := func(exec string) string {
		t.Setenv("IC_SHARD_EXEC", exec)
		cs := newChainSpec(3)
		if err := cs.set.Run(until); err != nil {
			t.Fatalf("Run(%s): %v", exec, err)
		}
		for i := 0; i < cs.set.Shards(); i++ {
			if got := cs.set.Kernel(i).Now(); got != until {
				t.Fatalf("shard %d clock = %v, want %v", i, got, until)
			}
		}
		return cs.transcript()
	}
	seq := run("seq")
	if seq == "" || !strings.Contains(seq, "rx s1<-s2") {
		t.Fatalf("sequential transcript did not exercise cross-shard posts:\n%s", seq)
	}
	for i := 0; i < 3; i++ {
		if par := run("par"); par != seq {
			t.Fatalf("threaded run %d diverged from sequential run:\nseq:\n%s\npar:\n%s", i, seq, par)
		}
	}
}

// TestScheduleFireTxLookaheadContract: a border transmission scheduled
// below the lookahead bound must fail loud, because horizons already
// promised to neighbor shards assumed it could not exist.
func TestScheduleFireTxLookaheadContract(t *testing.T) {
	set := NewShardSet(2, testLookahead)
	k := set.Kernel(0)

	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("ScheduleFireTx below lookahead on a border node did not panic")
			}
		}()
		k.ScheduleFireTx(testLookahead/2, func() {}, true)
	}()

	// A non-border node never emits cross-shard traffic, so the bound does
	// not apply to it.
	k.ScheduleFireTx(testLookahead/2, func() {}, false)

	// Posting outside a tx-flagged event breaks the same contract.
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("Post outside a transmission event did not panic")
			}
		}()
		set.Post(k, 1, 0, func(any) {}, nil)
	}()
}

// TestShardSetAggregateEventLimit: the aggregate limit must abort all
// shards cleanly — an error from Run, and no shard goroutine left behind.
func TestShardSetAggregateEventLimit(t *testing.T) {
	for _, exec := range []string{"seq", "par"} {
		t.Run(exec, func(t *testing.T) {
			t.Setenv("IC_SHARD_EXEC", exec)
			before := runtime.NumGoroutine()
			cs := newChainSpec(4)
			cs.set.SetEventLimit(500)
			err := cs.set.Run(Never)
			if err == nil || !strings.Contains(err.Error(), "aggregate event limit") {
				t.Fatalf("Run with aggregate limit: err = %v, want aggregate limit error", err)
			}
			if got := cs.set.Processed(); got < 500 {
				t.Fatalf("Processed() = %d, want >= limit 500", got)
			}
			waitGoroutines(t, before)
		})
	}
}

// TestShardSetPerKernelEventLimit: Kernel.SetEventLimit stays per-shard
// accounting; one shard tripping its own limit aborts the whole set.
func TestShardSetPerKernelEventLimit(t *testing.T) {
	cs := newChainSpec(2)
	cs.set.Kernel(1).SetEventLimit(100)
	err := cs.set.Run(Never)
	if err == nil || !strings.Contains(err.Error(), "(shard 1)") {
		t.Fatalf("Run with per-kernel limit: err = %v, want shard 1 limit error", err)
	}
	if p := cs.set.Kernel(1).Processed(); p < 100 {
		t.Fatalf("shard 1 processed %d events, want >= 100", p)
	}
}

// TestShardSetStop: Kernel.Stop from inside an event stops every shard (a
// lone halted region would deadlock its neighbors), Run returns nil, and no
// goroutines leak.
func TestShardSetStop(t *testing.T) {
	for _, exec := range []string{"seq", "par"} {
		t.Run(exec, func(t *testing.T) {
			t.Setenv("IC_SHARD_EXEC", exec)
			before := runtime.NumGoroutine()
			cs := newChainSpec(4)
			var stopped atomic.Bool
			cs.set.Kernel(2).ScheduleFire(Millisecond, func() {
				stopped.Store(true)
				cs.set.Kernel(2).Stop()
			})
			if err := cs.set.Run(Never); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !stopped.Load() {
				t.Fatal("stop event never ran")
			}
			waitGoroutines(t, before)
		})
	}
}

// TestShardTieTripsLoud: a cross-shard message landing on the exact
// timestamp of a local transmission event is ambiguous against the
// sequential order; the run must fail with ErrShardTie rather than pick an
// order silently.
func TestShardTieTripsLoud(t *testing.T) {
	for _, exec := range []string{"seq", "par"} {
		t.Run(exec, func(t *testing.T) {
			t.Setenv("IC_SHARD_EXEC", exec)
			set := NewShardSet(2, testLookahead)
			k0, k1 := set.Kernel(0), set.Kernel(1)
			// Shard 0 transmits at t=2L and posts a message timestamped at
			// its own clock; shard 1 independently transmits at the same
			// bit-identical timestamp.
			k0.ScheduleFireTx(2*testLookahead, func() {
				set.Post(k0, 1, k0.Now(), func(any) {}, nil)
			}, true)
			k1.ScheduleFireTx(2*testLookahead, func() {}, true)
			// Keep shard 0 alive past the tie so its horizon keeps moving.
			if err := set.Run(Millisecond); !errors.Is(err, ErrShardTie) {
				t.Fatalf("Run: err = %v, want ErrShardTie", err)
			}
		})
	}
}

// TestSingleShardSetIsSequentialKernel: a one-shard set must leave its
// kernel on the plain sequential path (no shard hooks, Stop works as on a
// bare kernel).
func TestSingleShardSetIsSequentialKernel(t *testing.T) {
	set := NewShardSet(1, 0)
	k := set.Kernel(0)
	if k.shard != nil {
		t.Fatal("single-shard set attached shard state to its kernel")
	}
	ran := 0
	k.ScheduleFireTx(0, func() { ran++ }, true) // no lookahead bound at S=1
	k.ScheduleFire(Millisecond, func() { k.Stop() })
	k.ScheduleFire(2*Millisecond, func() { ran++ })
	if err := set.Run(Never); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d events, want 1 (Stop must halt the kernel)", ran)
	}
}

// TestEventPoolCap: the free list must not grow past maxEventPool no matter
// how large a burst of simultaneous events resolves.
func TestEventPoolCap(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 3*maxEventPool; i++ {
		k.ScheduleFire(Microsecond, func() {})
	}
	if err := k.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(k.pool) > maxEventPool {
		t.Fatalf("event pool grew to %d entries, cap is %d", len(k.pool), maxEventPool)
	}
	if len(k.pool) != maxEventPool {
		t.Fatalf("event pool holds %d entries after a %d-event burst, want full cap %d",
			len(k.pool), 3*maxEventPool, maxEventPool)
	}
}

// waitGoroutines polls until the goroutine count returns to (at most) its
// pre-run baseline, failing the test if shard goroutines leak.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}
