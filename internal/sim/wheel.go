package sim

// Hierarchical timer wheel (Varghese & Lauck), the kernel's default event
// queue. The binary heap pays O(log n) per schedule and per pop against
// the whole pending set; at 100k-node scale that set holds tens of
// thousands of recurring near-future timers (MAC SIFS/DIFS/backoff, STS
// beacons, traffic epochs), so the heap's pointer-chasing sift dominated
// single-kernel profiles. The wheel makes schedule and fire amortized O(1)
// by hashing events into time buckets:
//
//   - the tick quantum is 2^-wheelTickBits seconds ≈ 7.6 µs, a power of
//     two sized just under the MAC timing quantum min(SIFS, DIFS) = 10 µs
//     at the default 802.11-style parameters — two events separated by a
//     full MAC turnaround land in different buckets, so buckets stay small
//     under MAC-driven load;
//   - level 0 has 256 slots of one tick (≈ 1.95 ms coverage): backoffs,
//     interframe spaces, ACK timeouts;
//   - level 1 has 64 slots of 256 ticks (≈ 125 ms coverage): route
//     timeouts, voting deadlines; its slots cascade into level 0 as the
//     wheel reaches them;
//   - an overflow heap (the plain eventHeap comparator) holds everything
//     farther out: beacon periods, traffic epochs, fault windows. A far
//     event pays one O(log f) overflow insert and one pop when its level-1
//     page is pulled across — once per lifetime, not per queue operation.
//
// Determinism contract. The pop order must be byte-identical to the binary
// heap's, i.e. the exact (time, seq) total order — shard border merge,
// ErrShardTie detection, and every equivalence test depend on it. Bucketing
// by tick preserves time order between buckets (tickOf is monotone: the
// multiply by a power of two is exact, so no rounding can reorder two
// times), and within a bucket the events drain through `run`, a small
// eventHeap ordered by the very same comparator. `run` holds every event
// at tick <= the wheel's current position; because an event at tick t has
// at < (t+1)·quantum and every event still in the wheel has a strictly
// larger tick, run's maximum never overlaps the wheel's minimum and the
// merged order is exact.
//
// Cancellation is lazy everywhere: a cancelled event keeps its bucket and
// is retired when it reaches the front (Kernel.peekLive/Step), exactly as
// the heap kernel does, so the wheel needs no removal operation.

import "math/bits"

const (
	// wheelTickBits sets the tick quantum to 2^-wheelTickBits seconds.
	wheelTickBits = 17
	// wheelBits0/wheelBits1 size the two wheel levels.
	wheelBits0  = 8
	wheelBits1  = 6
	wheelSlots0 = 1 << wheelBits0
	wheelSlots1 = 1 << wheelBits1
	// wheelMaxTick caps the tick index so converting enormous timestamps
	// (up to Never) to uint64 stays defined. Events clamped here all route
	// to the overflow heap — or, should the wheel position itself ever
	// reach the cap, into run, where the exact comparator still orders
	// them correctly.
	wheelMaxTick = uint64(1) << 62
)

// wheelInv converts seconds to ticks; multiplying by a power of two only
// adjusts the float's exponent, so the conversion is exact and monotone.
const wheelInv = float64(uint64(1) << wheelTickBits)

// wheelTickOf maps a timestamp to its tick index.
func wheelTickOf(at Time) uint64 {
	f := float64(at) * wheelInv
	if f >= float64(wheelMaxTick) {
		return wheelMaxTick
	}
	return uint64(f)
}

// wheelQueue is the hierarchical timer wheel. The zero value is not
// usable; use newWheelQueue.
type wheelQueue struct {
	// tick is the wheel position: every event at a tick at or below it
	// lives in run, every later event in the wheels or the overflow heap.
	tick uint64
	// run drains the current bucket (and any event scheduled at or behind
	// the wheel position) in exact (time, seq) order.
	run eventHeap
	// Level 0: one-tick slots. occ0 is the occupancy bitmap; every
	// occupied slot index is strictly ahead of the wheel position within
	// the current 256-tick page, so the lowest set bit is always the next
	// slot to drain.
	slots0 [wheelSlots0][]*event
	occ0   [wheelSlots0 / 64]uint64
	// Level 1: 256-tick slots covering the current 16384-tick page.
	slots1 [wheelSlots1][]*event
	occ1   uint64
	// overflow holds events beyond the level-1 page, in heap order.
	overflow eventHeap
	// size counts queued events across run, both levels, and overflow.
	size int
}

func newWheelQueue() *wheelQueue { return &wheelQueue{} }

func (w *wheelQueue) len() int { return w.size }

// place routes ev to run, a wheel slot, or the overflow heap, relative to
// the current wheel position. It does not touch size (push does), so the
// cascade paths can reuse it.
func (w *wheelQueue) place(ev *event) {
	t := wheelTickOf(ev.at)
	if t <= w.tick {
		w.run.push(ev)
		return
	}
	if t>>wheelBits0 == w.tick>>wheelBits0 {
		i := t & (wheelSlots0 - 1)
		w.slots0[i] = append(w.slots0[i], ev)
		w.occ0[i>>6] |= 1 << (i & 63)
		return
	}
	if t>>(wheelBits0+wheelBits1) == w.tick>>(wheelBits0+wheelBits1) {
		j := (t >> wheelBits0) & (wheelSlots1 - 1)
		w.slots1[j] = append(w.slots1[j], ev)
		w.occ1 |= 1 << j
		return
	}
	w.overflow.push(ev)
}

// push enqueues ev.
func (w *wheelQueue) push(ev *event) {
	w.size++
	w.place(ev)
}

// peek returns the minimum event without removing it, or nil when empty.
func (w *wheelQueue) peek() *event {
	if len(w.run) > 0 {
		return w.run[0]
	}
	if w.size == 0 {
		return nil
	}
	w.advance()
	return w.run[0]
}

// pop removes and returns the minimum event. The queue must be non-empty.
func (w *wheelQueue) pop() *event {
	if len(w.run) == 0 {
		w.advance()
	}
	w.size--
	return w.run.pop()
}

// advance moves the wheel position to the tick of the earliest queued
// event and fills run with that bucket. It must only be called with run
// empty and size > 0, and guarantees run is non-empty on return.
//
// Moving the position forward during a peek is safe: the kernel clock can
// only reach the returned event's timestamp, so nothing can later be
// scheduled behind the new position — and even an event scheduled at a
// tick the position already passed (a Run(until) horizon stopping short of
// the next event) lands in run, whose comparator orders it exactly.
func (w *wheelQueue) advance() {
	for {
		// Level 0: the lowest occupied slot is the next bucket.
		for wi, word := range w.occ0 {
			if word == 0 {
				continue
			}
			i := uint64(wi<<6 | bits.TrailingZeros64(word))
			w.tick = w.tick&^uint64(wheelSlots0-1) | i
			w.occ0[wi] = word & (word - 1)
			evs := w.slots0[i]
			w.slots0[i] = evs[:0]
			for n, ev := range evs {
				w.run.push(ev)
				evs[n] = nil // release the reference: fired closures must not linger in the slot's backing array
			}
			return
		}
		// Level 0 exhausted: cascade the next level-1 slot into it. Every
		// event in that slot re-routes within the slot's own 256-tick page
		// (to run when it sits exactly on the page start).
		if w.occ1 != 0 {
			j := uint64(bits.TrailingZeros64(w.occ1))
			w.occ1 &= w.occ1 - 1
			w.tick = w.tick&^uint64(wheelSlots0*wheelSlots1-1) | j<<wheelBits0
			evs := w.slots1[j]
			w.slots1[j] = evs[:0]
			for n, ev := range evs {
				w.place(ev)
				evs[n] = nil
			}
			if len(w.run) > 0 {
				return
			}
			continue
		}
		// Both levels empty: jump to the overflow minimum's level-1 page
		// and pull everything on that page across. The minimum itself
		// lands in run (its tick equals the new position), so the loop
		// terminates; later overflow events stay behind until their page
		// is reached.
		w.tick = wheelTickOf(w.overflow[0].at)
		page := w.tick >> (wheelBits0 + wheelBits1)
		for len(w.overflow) > 0 && wheelTickOf(w.overflow[0].at)>>(wheelBits0+wheelBits1) == page {
			w.place(w.overflow.pop())
		}
		if len(w.run) > 0 {
			return
		}
	}
}
