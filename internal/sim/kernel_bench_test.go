package sim

import (
	"fmt"
	"testing"
)

// benchQueues names the two queue implementations for sub-benchmarks.
var benchQueues = []struct {
	name string
	kind QueueKind
}{{"heap", QueueHeap}, {"wheel", QueueWheel}}

// BenchmarkKernelSchedule measures one schedule+dispatch cycle through the
// event queue — the kernel's innermost loop — for both queue
// implementations. Run with -benchmem: the free-list pool and the
// ScheduleFire fast path exist to drive allocs/op toward zero (the seed
// spent 1 alloc and ~103 ns per cycle on the cancellable path; see
// BENCH_hotpath.json).
func BenchmarkKernelSchedule(b *testing.B) {
	for _, q := range benchQueues {
		b.Run("schedule/"+q.name, func(b *testing.B) {
			k := NewKernelQueue(q.kind)
			fn := func() {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.MustSchedule(1, fn)
				k.Step()
			}
		})
		b.Run("fire/"+q.name, func(b *testing.B) {
			k := NewKernelQueue(q.kind)
			fn := func() {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.ScheduleFire(1, fn)
				k.Step()
			}
		})
		b.Run("firearg/"+q.name, func(b *testing.B) {
			k := NewKernelQueue(q.kind)
			fn := func(any) {}
			arg := &struct{}{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.ScheduleFireArg(1, fn, arg)
				k.Step()
			}
		})
		b.Run("timer/"+q.name, func(b *testing.B) {
			// Timer Reset/fire cycle — the handle fast path protocol
			// timeouts ride (MAC ACK, vote rounds, route expiry).
			k := NewKernelQueue(q.kind)
			tm := NewTimer(k, func() {})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tm.Reset(1)
				k.Step()
			}
		})
	}
}

// BenchmarkKernelQueueChurn measures a schedule+dispatch cycle against a
// standing population of pending timers — the regime a 100k-node field
// puts the kernel in, where every node holds beacons, backoffs, and epoch
// timers. The heap pays O(log n) per operation against the whole standing
// set; the wheel pays amortized O(1), so the gap widens with n.
func BenchmarkKernelQueueChurn(b *testing.B) {
	for _, standing := range []int{1000, 10000, 100000} {
		for _, q := range benchQueues {
			b.Run(fmt.Sprintf("standing=%d/%s", standing, q.name), func(b *testing.B) {
				k := NewKernelQueue(q.kind)
				fn := func() {}
				// The standing population: far-future timers that never
				// fire during the measurement window.
				for i := 0; i < standing; i++ {
					k.ScheduleFire(1e6+Duration(i), fn)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k.ScheduleFire(1e-5, fn)
					k.Step()
				}
			})
		}
	}
}
