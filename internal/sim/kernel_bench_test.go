package sim

import "testing"

// BenchmarkKernelSchedule measures one schedule+dispatch cycle through the
// event queue — the kernel's innermost loop. Run with -benchmem: the
// free-list pool and the ScheduleFire fast path exist to drive allocs/op
// toward zero (the seed spent 1 alloc and ~103 ns per cycle on the
// cancellable path; see BENCH_hotpath.json).
func BenchmarkKernelSchedule(b *testing.B) {
	b.Run("schedule", func(b *testing.B) {
		k := NewKernel()
		fn := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.MustSchedule(1, fn)
			k.Step()
		}
	})
	b.Run("fire", func(b *testing.B) {
		k := NewKernel()
		fn := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.ScheduleFire(1, fn)
			k.Step()
		}
	})
	b.Run("firearg", func(b *testing.B) {
		k := NewKernel()
		fn := func(any) {}
		arg := &struct{}{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.ScheduleFireArg(1, fn, arg)
			k.Step()
		}
	})
}
