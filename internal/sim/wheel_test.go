package sim

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"
)

// drain pops every event from w and returns the (at, seq) order observed.
func drainWheel(w *wheelQueue) []*event {
	var out []*event
	for w.len() > 0 {
		out = append(out, w.pop())
	}
	return out
}

// TestWheelPopsInExactOrder pushes events spanning every routing tier —
// same-tick ties in run, level-0 slots, level-1 slots, and the overflow
// heap — and checks the pop order is the exact (at, seq) total order.
func TestWheelPopsInExactOrder(t *testing.T) {
	w := newWheelQueue()
	quantum := Time(1) / Time(wheelInv)
	var evs []*event
	var seq uint64
	add := func(at Time) {
		seq++
		ev := &event{at: at, seq: seq}
		evs = append(evs, ev)
		w.push(ev)
	}
	// Same-tick ties (sub-quantum separation) — must break by seq.
	add(quantum / 4)
	add(quantum / 2)
	add(quantum / 4)
	// Level 0: within the first 256 ticks.
	for i := 0; i < 50; i++ {
		add(Time(50-i) * quantum * 3)
	}
	// Level 1: within the first 16384 ticks but past level 0.
	for i := 0; i < 20; i++ {
		add(Time(i%7)*quantum*700 + quantum*300)
	}
	// Overflow: several level-1 pages out, plus genuinely far timers.
	add(quantum * 20000)
	add(quantum * 1e7)
	add(3600)
	add(7200)

	want := append([]*event(nil), evs...)
	sort.SliceStable(want, func(i, j int) bool { return want[i].before(want[j]) })
	got := drainWheel(w)
	if len(got) != len(want) {
		t.Fatalf("drained %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop[%d] = (at=%v seq=%d), want (at=%v seq=%d)",
				i, got[i].at, got[i].seq, want[i].at, want[i].seq)
		}
	}
}

// TestWheelInterleavedPushPop interleaves pushes and pops the way a live
// kernel does (each pop may enqueue new near-future events) and checks the
// running minimum never regresses.
func TestWheelInterleavedPushPop(t *testing.T) {
	w := newWheelQueue()
	rng := rand.New(rand.NewSource(7))
	var seq uint64
	now := Time(0)
	push := func(at Time) {
		seq++
		w.push(&event{at: at, seq: seq})
	}
	for i := 0; i < 100; i++ {
		push(Time(rng.Float64()) * 10)
	}
	last := &event{at: -1}
	for w.len() > 0 {
		ev := w.pop()
		if ev.before(last) {
			t.Fatalf("pop order regressed: (at=%v seq=%d) after (at=%v seq=%d)",
				ev.at, ev.seq, last.at, last.seq)
		}
		last = ev
		now = ev.at
		if seq < 5000 {
			// Mimic protocol behavior: reschedule near and far from "now".
			push(now + Time(rng.Float64())*1e-4)
			if rng.Intn(4) == 0 {
				push(now + Time(rng.Float64())*100)
			}
		}
	}
}

// TestWheelScheduleBehindPosition covers the Run(until) horizon case: a
// peek advances the wheel position to a far event's tick, the clock stops
// short at the horizon, and a later schedule lands at a tick the position
// has already passed. Such events must still fire in exact time order.
func TestWheelScheduleBehindPosition(t *testing.T) {
	k := NewKernelQueue(QueueWheel)
	var order []int
	k.ScheduleFire(100, func() { order = append(order, 100) })
	// Run to a horizon far short of the only event: peekLive advances the
	// wheel position to tick(100), then the clock parks at 50.
	if err := k.Run(50); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 50 {
		t.Fatalf("Now() = %v, want 50", k.Now())
	}
	// This lands behind the wheel position but ahead of the clock.
	k.ScheduleFire(10, func() { order = append(order, 60) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 60 || order[1] != 100 {
		t.Fatalf("fire order = %v, want [60 100]", order)
	}
}

// TestWheelFarFutureClamp exercises the wheelMaxTick clamp: timestamps too
// large for a uint64 tick index must still be queued and ordered.
func TestWheelFarFutureClamp(t *testing.T) {
	k := NewKernelQueue(QueueWheel)
	var order []int
	k.ScheduleFire(Duration(1e30), func() { order = append(order, 1) })
	k.ScheduleFire(Duration(2e30), func() { order = append(order, 2) })
	k.ScheduleFire(1, func() { order = append(order, 0) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("fire order = %v, want [0 1 2]", order)
	}
}

func TestWheelTickOfMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prev := Time(0)
	for i := 0; i < 10000; i++ {
		next := prev + Time(rng.Float64())*Time(rng.Intn(1000))/997
		if wheelTickOf(next) < wheelTickOf(prev) {
			t.Fatalf("tickOf not monotone: tickOf(%v)=%d < tickOf(%v)=%d",
				next, wheelTickOf(next), prev, wheelTickOf(prev))
		}
		prev = next
	}
	if wheelTickOf(Never) != wheelMaxTick {
		t.Fatalf("tickOf(Never) = %d, want clamp %d", wheelTickOf(Never), wheelMaxTick)
	}
}

func TestQueueFromEnv(t *testing.T) {
	t.Setenv(QueueEnvVar, "")
	if got := QueueFromEnv(); got != QueueWheel {
		t.Fatalf("QueueFromEnv() with empty env = %v, want QueueWheel", got)
	}
	t.Setenv(QueueEnvVar, "heap")
	if got := QueueFromEnv(); got != QueueHeap {
		t.Fatalf("QueueFromEnv() = %v, want QueueHeap", got)
	}
	t.Setenv(QueueEnvVar, "wheel")
	if got := QueueFromEnv(); got != QueueWheel {
		t.Fatalf("QueueFromEnv() = %v, want QueueWheel", got)
	}
	if NewKernelQueue(QueueHeap).Queue() != QueueHeap {
		t.Fatal("NewKernelQueue(QueueHeap) did not pin the heap")
	}
	if NewKernelQueue(QueueWheel).Queue() != QueueWheel {
		t.Fatal("NewKernelQueue(QueueWheel) did not pin the wheel")
	}
}

// TestCancelHandleStaleAfterRecycle checks that a handle kept past its
// event's firing can never cancel an unrelated event that recycled the
// same struct from the free-list pool.
func TestCancelHandleStaleAfterRecycle(t *testing.T) {
	for _, q := range []QueueKind{QueueHeap, QueueWheel} {
		k := NewKernelQueue(q)
		h := k.ScheduleFireHandle(1, func() {})
		if !k.Step() {
			t.Fatal("no event to step")
		}
		// The struct h references is now in the pool; this schedule recycles it.
		fired := false
		k.ScheduleFire(1, func() { fired = true })
		if k.CancelHandle(h) {
			t.Fatal("stale handle reported a successful cancel")
		}
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
		if !fired {
			t.Fatal("stale handle cancelled an unrelated recycled event")
		}
	}
}

func TestCancelHandleDoubleCancel(t *testing.T) {
	k := NewKernel()
	h := k.ScheduleFireHandle(1, func() { t.Error("cancelled event fired") })
	if !k.CancelHandle(h) {
		t.Fatal("first CancelHandle reported false")
	}
	if k.CancelHandle(h) {
		t.Fatal("second CancelHandle reported true")
	}
	if k.CancelHandle(TimerHandle{}) {
		t.Fatal("zero handle cancelled something")
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainedQueueReleasesReferences is the GC-retention check: after a
// large queue fully drains, the fired closures' captures must be
// collectible — neither the heap's backing array, the wheel's slot
// arrays, nor the free-list pool may pin them.
func TestDrainedQueueReleasesReferences(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind QueueKind
	}{{"heap", QueueHeap}, {"wheel", QueueWheel}} {
		t.Run(tc.name, func(t *testing.T) {
			k := NewKernelQueue(tc.kind)
			const n = 4096
			collected := make(chan struct{}, n)
			total := 0
			for i := 0; i < n; i++ {
				payload := &[64]byte{byte(i)}
				runtime.SetFinalizer(payload, func(*[64]byte) { collected <- struct{}{} })
				// Spread across run/level-0/level-1/overflow tiers. The sum
				// forces a real capture of payload in the closure.
				k.ScheduleFire(Duration(i%977)*3e-5, func() { total += int(payload[0]) })
			}
			if err := k.RunAll(); err != nil {
				t.Fatal(err)
			}
			if total == 0 {
				t.Fatal("no payload bytes summed; closures did not run")
			}
			got := 0
			deadline := time.Now().Add(10 * time.Second)
			for got < n && time.Now().Before(deadline) {
				runtime.GC()
				for {
					select {
					case <-collected:
						got++
						continue
					default:
					}
					break
				}
			}
			if got < n {
				t.Fatalf("only %d/%d captures collected after drain: queue retains fired closures", got, n)
			}
		})
	}
}
