package sim

import (
	"hash/fnv"
	"math/rand"
)

// RNG is a deterministic random-number stream. Every node and every
// simulation subsystem gets its own stream, split from the experiment seed
// by label, so that adding a random draw in one component does not perturb
// the sequence seen by another (a classic source of irreproducible
// simulations).
type RNG struct {
	seed int64
	r    *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(seed))}
}

// Seed returns the seed this stream was created with.
func (g *RNG) Seed() int64 { return g.seed }

// Split derives an independent child stream identified by label. Splitting
// is deterministic: the same parent seed and label always yield the same
// child stream, regardless of how many draws the parent has made.
func (g *RNG) Split(label string) *RNG {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(g.seed) >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(label))
	return NewRNG(int64(h.Sum64()))
}

// SplitN derives a child stream identified by label and an index, for
// per-node streams.
func (g *RNG) SplitN(label string, n int) *RNG {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(g.seed) >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(label))
	var nbuf [8]byte
	for i := 0; i < 8; i++ {
		nbuf[i] = byte(uint64(n) >> (8 * i))
	}
	_, _ = h.Write(nbuf[:])
	return NewRNG(int64(h.Sum64()))
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform draw in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// Intn returns a uniform draw in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative 63-bit integer draw.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal draw.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Normal returns a normal draw with the given mean and standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// ExpFloat64 returns an exponential draw with rate 1.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Jitter returns a uniform draw in [0, max), used to desynchronize periodic
// protocol timers across nodes.
func (g *RNG) Jitter(max Duration) Duration {
	return Duration(g.Uniform(0, float64(max)))
}
