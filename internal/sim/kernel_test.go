package sim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestKernelStartsAtZero(t *testing.T) {
	k := NewKernel()
	if got := k.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestScheduleRunsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	if _, err := k.Schedule(3, func() { order = append(order, 3) }); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Schedule(1, func() { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Schedule(2, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTiesBreakInSchedulingOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := k.Schedule(5, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("tie order = %v, want ascending", order)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	k := NewKernel()
	var at Time
	if _, err := k.Schedule(2.5, func() { at = k.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if at != 2.5 {
		t.Fatalf("event saw Now() = %v, want 2.5", at)
	}
}

func TestSchedulePastFails(t *testing.T) {
	k := NewKernel()
	if _, err := k.Schedule(1, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ScheduleAt(0.5, func() {}); !errors.Is(err, ErrPastEvent) {
		t.Fatalf("ScheduleAt(past) err = %v, want ErrPastEvent", err)
	}
	if _, err := k.Schedule(-1, func() {}); !errors.Is(err, ErrPastEvent) {
		t.Fatalf("Schedule(-1) err = %v, want ErrPastEvent", err)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	k := NewKernel()
	fired := false
	id, err := k.Schedule(1, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if !k.Cancel(id) {
		t.Fatal("Cancel reported no pending event")
	}
	if k.Cancel(id) {
		t.Fatal("second Cancel should report false")
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, d := range []Duration{1, 2, 3, 4} {
		d := d
		if _, err := k.Schedule(d, func() { fired = append(fired, d) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(2.5); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v events before horizon, want 2", fired)
	}
	if k.Now() != 2.5 {
		t.Fatalf("Now() = %v after Run(2.5), want 2.5", k.Now())
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all 4 after RunAll", fired)
	}
}

func TestRunAdvancesClockToHorizonWhenIdle(t *testing.T) {
	k := NewKernel()
	if err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", k.Now())
	}
}

func TestStopAbortsRun(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 0; i < 10; i++ {
		if _, err := k.Schedule(Duration(i+1), func() {
			count++
			if count == 3 {
				k.Stop()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("executed %d events, want 3 (stopped)", count)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	k := NewKernel()
	var times []Time
	if _, err := k.Schedule(1, func() {
		times = append(times, k.Now())
		k.MustSchedule(1, func() { times = append(times, k.Now()) })
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("times = %v, want [1 2]", times)
	}
}

func TestEventLimitBackstop(t *testing.T) {
	k := NewKernel()
	k.SetEventLimit(100)
	var loop func()
	loop = func() { k.MustSchedule(1, loop) }
	k.MustSchedule(1, loop)
	if err := k.RunAll(); err == nil {
		t.Fatal("RunAll with runaway loop returned nil, want limit error")
	}
}

func TestPendingCount(t *testing.T) {
	k := NewKernel()
	id1, _ := k.Schedule(1, func() {})
	if _, err := k.Schedule(2, func() {}); err != nil {
		t.Fatal(err)
	}
	if got := k.Pending(); got != 2 {
		t.Fatalf("Pending() = %d, want 2", got)
	}
	k.Cancel(id1)
	if got := k.Pending(); got != 1 {
		t.Fatalf("Pending() after cancel = %d, want 1", got)
	}
}

// Property: for any set of non-negative delays, events fire in nondecreasing
// time order and the clock never moves backwards.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(raw []uint16) bool {
		k := NewKernel()
		last := Time(-1)
		ok := true
		for _, r := range raw {
			d := Duration(r) / 100
			k.MustSchedule(d, func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		if err := k.RunAll(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerResetAndStop(t *testing.T) {
	k := NewKernel()
	fired := 0
	tm := NewTimer(k, func() { fired++ })
	tm.Reset(5)
	tm.Reset(10) // supersedes the first arming
	if !tm.Active() {
		t.Fatal("timer should be active")
	}
	if err := k.Run(7); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("timer fired at old deadline; fired=%d", fired)
	}
	if err := k.Run(11); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	tm.Reset(5)
	if !tm.Stop() {
		t.Fatal("Stop should report a pending firing")
	}
	if err := k.Run(30); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("stopped timer fired; fired=%d", fired)
	}
}

func TestTickerPeriodAndStop(t *testing.T) {
	k := NewKernel()
	var ticks []Time
	tk := NewTicker(k, 2, nil, func() { ticks = append(ticks, k.Now()) })
	if err := k.Run(7); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v, want 3 ticks at 2,4,6", ticks)
	}
	tk.Stop()
	if err := k.Run(20); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 3 {
		t.Fatalf("ticker ticked after Stop: %v", ticks)
	}
}

func TestTickerJitter(t *testing.T) {
	k := NewKernel()
	g := NewRNG(1)
	var ticks []Time
	NewTicker(k, 1, func() Duration { return g.Jitter(0.5) }, func() {
		ticks = append(ticks, k.Now())
	})
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(ticks) < 6 || len(ticks) > 10 {
		t.Fatalf("jittered ticker produced %d ticks in 10s with period 1+U(0,0.5), want 6..10", len(ticks))
	}
	for i := 1; i < len(ticks); i++ {
		gap := ticks[i] - ticks[i-1]
		if gap < 1 || gap > 1.5+1e-9 {
			t.Fatalf("tick gap %v outside [1, 1.5]", gap)
		}
	}
}

func TestTimerStopOnInactive(t *testing.T) {
	k := NewKernel()
	tm := NewTimer(k, func() {})
	if tm.Stop() {
		t.Fatal("Stop on never-armed timer reported pending")
	}
	if tm.Active() {
		t.Fatal("never-armed timer is active")
	}
}

func TestNeverIsLaterThanAnything(t *testing.T) {
	if !(Never > Time(math.MaxFloat32)) {
		t.Fatal("Never is not large")
	}
}

func TestMustSchedulePanicsOnPastEvent(t *testing.T) {
	// A silently dropped event corrupts the simulation; MustSchedule must
	// crash loudly instead of returning the EventID(0) "no event" sentinel.
	k := NewKernel()
	k.MustSchedule(1, func() {})
	if !k.Step() {
		t.Fatal("no event to step")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchedule with negative delay did not panic")
		}
	}()
	k.MustSchedule(-1, func() {})
}

func TestScheduleFireRunsInOrder(t *testing.T) {
	// Fire-and-forget events share the sequence space with cancellable
	// ones: ties still break in overall scheduling order.
	k := NewKernel()
	var order []int
	k.MustSchedule(1, func() { order = append(order, 0) })
	k.ScheduleFire(1, func() { order = append(order, 1) })
	k.MustSchedule(1, func() { order = append(order, 2) })
	k.ScheduleFire(0.5, func() { order = append(order, 3) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{3, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestScheduleFireSkipsCancellationIndex(t *testing.T) {
	k := NewKernel()
	k.ScheduleFire(1, func() {})
	if got := k.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after ScheduleFire, want 0 (not cancellable)", got)
	}
	fired := false
	k.ScheduleFire(2, func() { fired = true })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("fire-and-forget event did not fire")
	}
}

func TestScheduleFirePanicsOnNegativeDelay(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleFire(-1) did not panic")
		}
	}()
	k.ScheduleFire(-1, func() {})
}

func TestScheduleFireArgPassesArgument(t *testing.T) {
	k := NewKernel()
	type payload struct{ n int }
	var got []int
	fn := func(x any) { got = append(got, x.(*payload).n) }
	k.ScheduleFireArg(2, fn, &payload{n: 2})
	k.ScheduleFireArg(1, fn, &payload{n: 1})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

func TestEventPoolRecyclesSafely(t *testing.T) {
	// Events recycled on pop must not leak state into later schedules,
	// including when a callback schedules new events (which may reuse the
	// struct popped for the callback itself), cancels events, or mixes the
	// cancellable and fire-and-forget paths.
	k := NewKernel()
	var fired []int
	var chain func(depth int) func()
	chain = func(depth int) func() {
		return func() {
			fired = append(fired, depth)
			if depth < 50 {
				k.ScheduleFire(1, chain(depth+1))
				id := k.MustSchedule(0.5, func() { t.Error("cancelled event fired") })
				k.Cancel(id)
			}
		}
	}
	k.MustSchedule(1, chain(0))
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 51 {
		t.Fatalf("fired %d events, want 51", len(fired))
	}
	for i, d := range fired {
		if d != i {
			t.Fatalf("fired = %v, want ascending depths", fired)
		}
	}
}
