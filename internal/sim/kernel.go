// Package sim provides the discrete-event simulation kernel that underlies
// the wireless network substrate. It plays the role ns-2's event scheduler
// played in the paper's evaluation: a virtual clock, a priority queue of
// timestamped events, and deterministic tie-breaking so that two runs with
// the same seed produce identical traces.
package sim

import (
	"errors"
	"fmt"
	"math"
	"os"
)

// Time is a point in virtual simulation time, measured in seconds since the
// start of the run. Virtual time is unrelated to wall-clock time; a custom
// float type (rather than time.Time) keeps the radio/geometry math direct.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Common durations, in seconds.
const (
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
)

// Never is a sentinel time later than any event a simulation can schedule.
const Never Time = Time(math.MaxFloat64)

// String formats the time with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", float64(t)) }

// EventID identifies a scheduled event so it can be cancelled.
// The zero EventID is never issued and is safe to use as "no event".
type EventID uint64

// event is a scheduled callback. Exactly one of fn and fnArg is set; fnArg
// carries its argument in arg so hot paths can schedule a long-lived
// method value instead of allocating a fresh closure per event.
type event struct {
	at     Time
	seq    uint64  // scheduling order, breaks ties deterministically
	id     EventID // 0 for fire-and-forget events (ScheduleFire)
	fn     func()
	fnArg  func(any)
	arg    any
	cancel bool
	// tx marks a transmission-capable event of a border node on a sharded
	// kernel (ScheduleFireTx): its timestamp participates in the shard's
	// horizon and its callback is the only place cross-shard messages may be
	// posted from. Never set on unsharded kernels.
	tx bool
}

// eventHeap orders events by (time, sequence). It is a hand-rolled
// binary heap rather than container/heap: the comparison is on the
// kernel's hottest path, and going through container/heap's interface
// costs an uninlinable Less/Swap call per level. (at, seq) is a strict
// total order — seq is unique — so the pop sequence is identical to any
// correct heap's; only the constant factor changes. The same type also
// serves as the wheel queue's same-bucket run and overflow store, where
// the identical comparator keeps the merged pop order byte-identical to
// the pure-heap kernel's.
type eventHeap []*event

// before reports whether a sorts strictly before b.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev, sifting it up with a hole instead of pairwise swaps.
func (h *eventHeap) push(ev *event) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		p := q[parent]
		if p.before(ev) {
			break
		}
		q[i] = p
		i = parent
	}
	q[i] = ev
	*h = q
}

// pop removes and returns the minimum event. The vacated tail slot is
// nilled so a fired event's closure and captures never linger in the
// heap's backing array until the next growth.
func (h *eventHeap) pop() *event {
	q := *h
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	q = q[:n]
	*h = q
	if n == 0 {
		return top
	}
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		child := q[c]
		if r := c + 1; r < n && q[r].before(child) {
			c, child = r, q[r]
		}
		if last.before(child) {
			break
		}
		q[i] = child
		i = c
	}
	q[i] = last
	return top
}

// ErrPastEvent is returned when an event is scheduled before the current
// virtual time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Kernel is a discrete-event scheduler. The zero value is not usable; use
// NewKernel. Kernel is not safe for concurrent use: a simulation is a
// single-threaded interleaving of events, which is what makes runs
// reproducible.
type Kernel struct {
	now Time
	// Exactly one queue implementation is active, chosen at construction
	// (IC_KERNEL_QUEUE): heap is the classic binary heap, wheel the
	// hierarchical timer wheel (wheel.go). Both pop in the identical
	// (time, seq) total order; only schedule/pop cost differs.
	heap    eventHeap
	wheel   *wheelQueue
	nextSeq uint64
	nextID  EventID
	byID    map[EventID]*event
	stopped bool

	// processed counts events executed, for diagnostics and run limits.
	processed uint64
	// limit, when non-zero, aborts Run after this many events as a
	// runaway-loop backstop.
	limit uint64

	// pool is a free list of event structs recycled on pop. A simulation
	// schedules millions of short-lived events; recycling them keeps the
	// event loop allocation-free at steady state. It is capped at
	// maxEventPool entries so one burst (a flood wave in a 100k-node field)
	// does not pin peak event memory for the rest of the run.
	pool []*event

	// shard is non-nil when this kernel is one region of a ShardSet; see
	// shard.go. Unsharded kernels leave every shard-related field untouched,
	// keeping the single-kernel path byte-identical to the pre-shard code.
	shard *Shard
	// inTx is true while a tx-flagged event's callback is executing; it is
	// the lookahead-contract gate for ShardSet.Post.
	inTx bool
	// inMsg is true while a cross-shard message event's callback is
	// executing, and inMsgAt is that message's timestamp. Together they
	// spot-check the message-lookahead promise (ShardSet.SetMsgLookahead):
	// a border transmission scheduled directly from a message callback
	// below the promised bound panics. Chains deeper than one event are
	// outside the kernel's sight and remain the caller's proof obligation.
	inMsg   bool
	inMsgAt Time
	// lastLocalAt is the timestamp of the most recent locally scheduled
	// (non-message) event executed. A cross-shard message landing on the
	// same timestamp is an ambiguous tie — the sequential kernel would order
	// the two by global sequence numbers a parallel run cannot reconstruct —
	// so the executors trip ErrShardTie on it (see shard.go).
	lastLocalAt Time
}

// maxEventPool bounds the event free list. 1<<14 structs (~1.5 MB at 96 B
// each) comfortably covers steady-state churn of the densest sweeps while
// letting burst allocations be reclaimed by the collector.
const maxEventPool = 1 << 14

// getEvent returns a zeroed event from the free list (or a fresh one) with
// its timestamp and sequence number assigned.
func (k *Kernel) getEvent(at Time) *event {
	var ev *event
	if n := len(k.pool); n > 0 {
		ev = k.pool[n-1]
		k.pool[n-1] = nil
		k.pool = k.pool[:n-1]
	} else {
		ev = &event{}
	}
	k.nextSeq++
	ev.at = at
	ev.seq = k.nextSeq
	return ev
}

// putEvent clears ev and returns it to the free list, unless the list is
// already at capacity. The clear is unconditional — even an event the pool
// will not keep must drop its closure and argument (so a fired callback's
// captures become collectible immediately) and its sequence number (so a
// stale TimerHandle to a retired event can never match it again).
func (k *Kernel) putEvent(ev *event) {
	*ev = event{}
	if len(k.pool) >= maxEventPool {
		return
	}
	k.pool = append(k.pool, ev)
}

// QueueKind selects the kernel's event-queue implementation.
type QueueKind int

const (
	// QueueWheel is the hierarchical timer wheel backed by an overflow
	// heap (wheel.go): amortized O(1) schedule and fire. The default.
	QueueWheel QueueKind = iota
	// QueueHeap is the binary heap: O(log n) schedule and fire. Retained
	// as the A/B reference; results are byte-identical either way.
	QueueHeap
)

// QueueEnvVar is the environment knob pinning the queue implementation.
const QueueEnvVar = "IC_KERNEL_QUEUE"

// QueueFromEnv maps IC_KERNEL_QUEUE onto a QueueKind: "heap" pins the
// binary heap, anything else (including unset and "wheel") selects the
// timer wheel.
func QueueFromEnv() QueueKind {
	if os.Getenv(QueueEnvVar) == "heap" {
		return QueueHeap
	}
	return QueueWheel
}

// NewKernel returns a kernel with the clock at time zero, using the queue
// implementation IC_KERNEL_QUEUE selects.
func NewKernel() *Kernel {
	return NewKernelQueue(QueueFromEnv())
}

// NewKernelQueue returns a kernel with the clock at time zero and the
// given queue implementation, regardless of IC_KERNEL_QUEUE.
func NewKernelQueue(q QueueKind) *Kernel {
	k := &Kernel{byID: make(map[EventID]*event), lastLocalAt: -1}
	if q == QueueWheel {
		k.wheel = newWheelQueue()
	}
	return k
}

// Queue reports which queue implementation this kernel runs on.
func (k *Kernel) Queue() QueueKind {
	if k.wheel != nil {
		return QueueWheel
	}
	return QueueHeap
}

// qpush, qpop, qpeek and qlen are the kernel's only queue access points;
// each branches to the active implementation. A branch (rather than an
// interface) keeps the heap path free of dynamic dispatch on the hottest
// loop in the simulator.

func (k *Kernel) qpush(ev *event) {
	if k.wheel != nil {
		k.wheel.push(ev)
		return
	}
	k.heap.push(ev)
}

func (k *Kernel) qpop() *event {
	if k.wheel != nil {
		return k.wheel.pop()
	}
	return k.heap.pop()
}

func (k *Kernel) qpeek() *event {
	if k.wheel != nil {
		return k.wheel.peek()
	}
	if len(k.heap) == 0 {
		return nil
	}
	return k.heap[0]
}

func (k *Kernel) qlen() int {
	if k.wheel != nil {
		return k.wheel.len()
	}
	return len(k.heap)
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Processed reports the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// SetEventLimit sets a backstop: Run returns an error after n events.
// n == 0 disables the limit.
func (k *Kernel) SetEventLimit(n uint64) { k.limit = n }

// Schedule runs fn after delay. A negative delay is an error.
func (k *Kernel) Schedule(delay Duration, fn func()) (EventID, error) {
	return k.ScheduleAt(k.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at.
func (k *Kernel) ScheduleAt(at Time, fn func()) (EventID, error) {
	if at < k.now {
		return 0, fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, k.now)
	}
	ev := k.getEvent(at)
	k.nextID++
	ev.id = k.nextID
	ev.fn = fn
	k.qpush(ev)
	k.byID[ev.id] = ev
	return ev.id, nil
}

// ScheduleFire runs fn after delay, like MustSchedule, but for events that
// are never cancelled (radio delivery resolution, MAC backoff expiry): the
// event is not registered in the cancellation index, so the fast path costs
// no map insert/delete and such events do not appear in Pending. It panics
// on a negative delay.
func (k *Kernel) ScheduleFire(delay Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleFire: %v: delay=%v now=%v", ErrPastEvent, delay, k.now))
	}
	ev := k.getEvent(k.now + delay)
	ev.fn = fn
	k.qpush(ev)
}

// ScheduleFireArg is ScheduleFire for callbacks taking one argument. Hot
// paths use it with a method value built once at setup time, so scheduling
// an event allocates no per-event closure (boxing a pointer-shaped arg is
// allocation-free).
func (k *Kernel) ScheduleFireArg(delay Duration, fn func(any), arg any) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleFireArg: %v: delay=%v now=%v", ErrPastEvent, delay, k.now))
	}
	ev := k.getEvent(k.now + delay)
	ev.fnArg = fn
	ev.arg = arg
	k.qpush(ev)
}

// TimerHandle is a direct reference to a scheduled event — the O(1)
// cancellation path Timer and Ticker use. Cancelling through a handle
// tombstones the event in place (it is retired when it reaches the front
// of the queue), so neither scheduling nor firing a handled event touches
// the byID cancellation map. The zero TimerHandle references nothing.
//
// A handle stays valid until its event fires; the embedded sequence number
// (unique across a kernel's lifetime, and cleared when the event struct is
// retired) makes cancellation through a stale handle a safe no-op even
// after the free-list pool has recycled the struct for a new event.
type TimerHandle struct {
	ev  *event
	seq uint64
}

// Active reports whether the handle references an event (which may have
// fired or been cancelled since; Kernel.CancelHandle gives the exact
// answer).
func (h TimerHandle) Active() bool { return h.ev != nil }

// ScheduleFireHandle runs fn after delay, like ScheduleFire, and returns a
// handle for O(1) cancellation. It panics on a negative delay.
func (k *Kernel) ScheduleFireHandle(delay Duration, fn func()) TimerHandle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleFireHandle: %v: delay=%v now=%v", ErrPastEvent, delay, k.now))
	}
	ev := k.getEvent(k.now + delay)
	ev.fn = fn
	k.qpush(ev)
	return TimerHandle{ev: ev, seq: ev.seq}
}

// CancelHandle tombstones the event h references. It reports false — and
// does nothing — when h is the zero handle, the event already fired, or it
// was already cancelled.
func (k *Kernel) CancelHandle(h TimerHandle) bool {
	if h.ev == nil || h.ev.seq != h.seq || h.ev.cancel {
		return false
	}
	h.ev.cancel = true
	return true
}

// ScheduleFireTx is ScheduleFire for transmission-capable events — the MAC
// uses it for every event whose callback may hand a frame to the radio. On
// an unsharded kernel, or for a node that is not on a shard border, it is
// exactly ScheduleFire. For a border node on a sharded kernel it additionally
// enters the event's timestamp into the shard's border horizon (the earliest
// time this shard could emit cross-shard traffic) and enforces the lookahead
// contract: scheduling a transmission closer than the shard set's lookahead
// would invalidate horizons already promised to neighbor shards, so it
// panics loudly instead of corrupting the parallel run.
func (k *Kernel) ScheduleFireTx(delay Duration, fn func(), border bool) {
	if k.shard == nil || !border {
		k.ScheduleFire(delay, fn)
		return
	}
	if delay < k.shard.set.lookahead {
		panic(fmt.Sprintf("sim: ScheduleFireTx: transmission scheduled %v ahead of %v, below the lookahead bound %v (lookahead contract)",
			delay, k.now, k.shard.set.lookahead))
	}
	if k.inMsg {
		if min := k.inMsgAt + k.shard.set.msgLookahead; k.now+delay < min {
			panic(fmt.Sprintf("sim: ScheduleFireTx: transmission at %v scheduled from a message callback (message at %v), below the promised message lookahead %v (SetMsgLookahead contract)",
				k.now+delay, k.inMsgAt, k.shard.set.msgLookahead))
		}
	}
	ev := k.getEvent(k.now + delay)
	ev.fn = fn
	ev.tx = true
	k.qpush(ev)
	k.shard.pushBorder(ev.at)
}

// scheduleMsg enqueues a cross-shard message as an event with an
// externally supplied sequence number (msgSeqBit | source shard | source
// sequence, see shard.go). The high bit makes message events order after
// every locally scheduled event with the same timestamp, and the source
// fields make the merge order independent of goroutine scheduling.
func (k *Kernel) scheduleMsg(at Time, seq uint64, fn func(any), arg any) {
	if at < k.now {
		// The conservative bound guarantees a shard never advances past a
		// message it has yet to receive; arriving here means the lookahead
		// contract was violated upstream.
		panic(fmt.Sprintf("sim: cross-shard message at %v arrived behind the shard clock %v", at, k.now))
	}
	ev := k.getEvent(at)
	ev.seq = seq
	ev.fnArg = fn
	ev.arg = arg
	k.qpush(ev)
}

// peekLive returns the next non-cancelled event without executing it, or nil
// when the queue is empty. Cancelled events encountered on top are retired.
func (k *Kernel) peekLive() *event {
	for {
		ev := k.qpeek()
		if ev == nil || !ev.cancel {
			return ev
		}
		k.putEvent(k.qpop())
	}
}

// MustSchedule is Schedule for callers that control delay and know it is
// non-negative; it panics when scheduling fails. A silently dropped event
// corrupts the simulation (timers stop firing, frames never resolve), and
// the old EventID(0) return aliased the "no event" sentinel — so a failure
// here is a programming error worth crashing on.
func (k *Kernel) MustSchedule(delay Duration, fn func()) EventID {
	id, err := k.Schedule(delay, fn)
	if err != nil {
		panic(fmt.Sprintf("sim: MustSchedule: %v", err))
	}
	return id
}

// Cancel removes a pending event. Cancelling an already-fired or unknown
// event is a no-op and reports false.
func (k *Kernel) Cancel(id EventID) bool {
	ev, ok := k.byID[id]
	if !ok {
		return false
	}
	ev.cancel = true
	delete(k.byID, id)
	return true
}

// Pending reports the number of cancellable events still queued.
// Fire-and-forget events (ScheduleFire) are not counted: they never enter
// the cancellation index.
func (k *Kernel) Pending() int { return len(k.byID) }

// Stop makes Run return after the currently executing event. On a sharded
// kernel it stops the whole shard set: one region halting while its
// neighbors keep exchanging horizon promises would deadlock them, so Stop
// is an all-or-nothing operation under sharding (see ShardSet.Stop).
func (k *Kernel) Stop() {
	if k.shard != nil {
		k.shard.set.Stop()
		return
	}
	k.stopped = true
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	for k.qlen() > 0 {
		ev := k.qpop()
		if ev.cancel {
			k.putEvent(ev)
			continue
		}
		if ev.id != 0 {
			delete(k.byID, ev.id)
		}
		k.now = ev.at
		k.processed++
		// Copy the callback out before recycling: the callback itself may
		// schedule new events and reuse this struct.
		fn, fnArg, arg, tx := ev.fn, ev.fnArg, ev.arg, ev.tx
		isMsg := ev.seq >= msgSeqBit
		if !isMsg {
			k.lastLocalAt = k.now
		} else if k.shard != nil {
			k.inMsg = true
			k.inMsgAt = k.now
		}
		k.putEvent(ev)
		if tx {
			// A border transmission fires: retire its horizon entry and open
			// the cross-shard posting window for the callback.
			k.shard.popBorder(k.now)
			k.inTx = true
		}
		if fnArg != nil {
			fnArg(arg)
		} else {
			fn()
		}
		if tx {
			k.inTx = false
		}
		if isMsg {
			k.inMsg = false
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty, the clock passes until, or
// Stop is called. The clock is left at min(until, last event time); if the
// queue drains before until, the clock advances to until so that callers
// measuring elapsed time (e.g. idle energy) see the full window.
func (k *Kernel) Run(until Time) error {
	k.stopped = false
	for !k.stopped {
		if k.limit > 0 && k.processed >= k.limit {
			return fmt.Errorf("sim: event limit %d reached at %v", k.limit, k.now)
		}
		next := k.peekLive()
		if next == nil || next.at > until {
			break
		}
		k.Step()
	}
	if k.now < until && until != Never && !k.stopped {
		k.now = until
	}
	return nil
}

// RunAll executes events until the queue is fully drained or Stop is called.
func (k *Kernel) RunAll() error { return k.Run(Never) }
