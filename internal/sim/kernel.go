// Package sim provides the discrete-event simulation kernel that underlies
// the wireless network substrate. It plays the role ns-2's event scheduler
// played in the paper's evaluation: a virtual clock, a priority queue of
// timestamped events, and deterministic tie-breaking so that two runs with
// the same seed produce identical traces.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is a point in virtual simulation time, measured in seconds since the
// start of the run. Virtual time is unrelated to wall-clock time; a custom
// float type (rather than time.Time) keeps the radio/geometry math direct.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Common durations, in seconds.
const (
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
)

// Never is a sentinel time later than any event a simulation can schedule.
const Never Time = Time(math.MaxFloat64)

// String formats the time with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", float64(t)) }

// EventID identifies a scheduled event so it can be cancelled.
// The zero EventID is never issued and is safe to use as "no event".
type EventID uint64

// event is a scheduled callback. Exactly one of fn and fnArg is set; fnArg
// carries its argument in arg so hot paths can schedule a long-lived
// method value instead of allocating a fresh closure per event.
type event struct {
	at     Time
	seq    uint64 // scheduling order, breaks ties deterministically
	id     EventID // 0 for fire-and-forget events (ScheduleFire)
	fn     func()
	fnArg  func(any)
	arg    any
	index  int // heap index
	cancel bool
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	// Unchecked assertion: only the kernel pushes here, and pushing a
	// non-*event is a programming error worth crashing on (fail-loud, like
	// MustSchedule) rather than silently dropping the event.
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// ErrPastEvent is returned when an event is scheduled before the current
// virtual time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Kernel is a discrete-event scheduler. The zero value is not usable; use
// NewKernel. Kernel is not safe for concurrent use: a simulation is a
// single-threaded interleaving of events, which is what makes runs
// reproducible.
type Kernel struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	nextID  EventID
	byID    map[EventID]*event
	stopped bool

	// processed counts events executed, for diagnostics and run limits.
	processed uint64
	// limit, when non-zero, aborts Run after this many events as a
	// runaway-loop backstop.
	limit uint64

	// pool is a free list of event structs recycled on pop. A simulation
	// schedules millions of short-lived events; recycling them keeps the
	// event loop allocation-free at steady state.
	pool []*event
}

// getEvent returns a zeroed event from the free list (or a fresh one) with
// its timestamp and sequence number assigned.
func (k *Kernel) getEvent(at Time) *event {
	var ev *event
	if n := len(k.pool); n > 0 {
		ev = k.pool[n-1]
		k.pool[n-1] = nil
		k.pool = k.pool[:n-1]
	} else {
		ev = &event{}
	}
	k.nextSeq++
	ev.at = at
	ev.seq = k.nextSeq
	return ev
}

// putEvent clears ev (so recycled events retain no closures or arguments)
// and returns it to the free list.
func (k *Kernel) putEvent(ev *event) {
	*ev = event{}
	k.pool = append(k.pool, ev)
}

// NewKernel returns a kernel with the clock at time zero.
func NewKernel() *Kernel {
	return &Kernel{byID: make(map[EventID]*event)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Processed reports the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// SetEventLimit sets a backstop: Run returns an error after n events.
// n == 0 disables the limit.
func (k *Kernel) SetEventLimit(n uint64) { k.limit = n }

// Schedule runs fn after delay. A negative delay is an error.
func (k *Kernel) Schedule(delay Duration, fn func()) (EventID, error) {
	return k.ScheduleAt(k.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at.
func (k *Kernel) ScheduleAt(at Time, fn func()) (EventID, error) {
	if at < k.now {
		return 0, fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, k.now)
	}
	ev := k.getEvent(at)
	k.nextID++
	ev.id = k.nextID
	ev.fn = fn
	heap.Push(&k.queue, ev)
	k.byID[ev.id] = ev
	return ev.id, nil
}

// ScheduleFire runs fn after delay, like MustSchedule, but for events that
// are never cancelled (radio delivery resolution, MAC backoff expiry): the
// event is not registered in the cancellation index, so the fast path costs
// no map insert/delete and such events do not appear in Pending. It panics
// on a negative delay.
func (k *Kernel) ScheduleFire(delay Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleFire: %v: delay=%v now=%v", ErrPastEvent, delay, k.now))
	}
	ev := k.getEvent(k.now + delay)
	ev.fn = fn
	heap.Push(&k.queue, ev)
}

// ScheduleFireArg is ScheduleFire for callbacks taking one argument. Hot
// paths use it with a method value built once at setup time, so scheduling
// an event allocates no per-event closure (boxing a pointer-shaped arg is
// allocation-free).
func (k *Kernel) ScheduleFireArg(delay Duration, fn func(any), arg any) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleFireArg: %v: delay=%v now=%v", ErrPastEvent, delay, k.now))
	}
	ev := k.getEvent(k.now + delay)
	ev.fnArg = fn
	ev.arg = arg
	heap.Push(&k.queue, ev)
}

// MustSchedule is Schedule for callers that control delay and know it is
// non-negative; it panics when scheduling fails. A silently dropped event
// corrupts the simulation (timers stop firing, frames never resolve), and
// the old EventID(0) return aliased the "no event" sentinel — so a failure
// here is a programming error worth crashing on.
func (k *Kernel) MustSchedule(delay Duration, fn func()) EventID {
	id, err := k.Schedule(delay, fn)
	if err != nil {
		panic(fmt.Sprintf("sim: MustSchedule: %v", err))
	}
	return id
}

// Cancel removes a pending event. Cancelling an already-fired or unknown
// event is a no-op and reports false.
func (k *Kernel) Cancel(id EventID) bool {
	ev, ok := k.byID[id]
	if !ok {
		return false
	}
	ev.cancel = true
	delete(k.byID, id)
	return true
}

// Pending reports the number of cancellable events still queued.
// Fire-and-forget events (ScheduleFire) are not counted: they never enter
// the cancellation index.
func (k *Kernel) Pending() int { return len(k.byID) }

// Stop makes Run return after the currently executing event.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		// Unchecked assertion: the heap holds only *event values, so a
		// mismatch is a programmer error that must crash, not silently end
		// the run (matching MustSchedule's fail-loud policy).
		ev := heap.Pop(&k.queue).(*event)
		if ev.cancel {
			k.putEvent(ev)
			continue
		}
		if ev.id != 0 {
			delete(k.byID, ev.id)
		}
		k.now = ev.at
		k.processed++
		// Copy the callback out before recycling: the callback itself may
		// schedule new events and reuse this struct.
		fn, fnArg, arg := ev.fn, ev.fnArg, ev.arg
		k.putEvent(ev)
		if fnArg != nil {
			fnArg(arg)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run executes events until the queue is empty, the clock passes until, or
// Stop is called. The clock is left at min(until, last event time); if the
// queue drains before until, the clock advances to until so that callers
// measuring elapsed time (e.g. idle energy) see the full window.
func (k *Kernel) Run(until Time) error {
	k.stopped = false
	for !k.stopped {
		if k.limit > 0 && k.processed >= k.limit {
			return fmt.Errorf("sim: event limit %d reached at %v", k.limit, k.now)
		}
		for len(k.queue) > 0 && k.queue[0].cancel {
			k.putEvent(heap.Pop(&k.queue).(*event))
		}
		if len(k.queue) == 0 {
			break
		}
		next := k.queue[0]
		if next.at > until {
			break
		}
		k.Step()
	}
	if k.now < until && until != Never && !k.stopped {
		k.now = until
	}
	return nil
}

// RunAll executes events until the queue is fully drained or Stop is called.
func (k *Kernel) RunAll() error { return k.Run(Never) }
