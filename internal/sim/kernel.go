// Package sim provides the discrete-event simulation kernel that underlies
// the wireless network substrate. It plays the role ns-2's event scheduler
// played in the paper's evaluation: a virtual clock, a priority queue of
// timestamped events, and deterministic tie-breaking so that two runs with
// the same seed produce identical traces.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is a point in virtual simulation time, measured in seconds since the
// start of the run. Virtual time is unrelated to wall-clock time; a custom
// float type (rather than time.Time) keeps the radio/geometry math direct.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = Time

// Common durations, in seconds.
const (
	Microsecond Duration = 1e-6
	Millisecond Duration = 1e-3
	Second      Duration = 1
)

// Never is a sentinel time later than any event a simulation can schedule.
const Never Time = Time(math.MaxFloat64)

// String formats the time with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", float64(t)) }

// EventID identifies a scheduled event so it can be cancelled.
// The zero EventID is never issued and is safe to use as "no event".
type EventID uint64

// event is a scheduled callback.
type event struct {
	at     Time
	seq    uint64 // scheduling order, breaks ties deterministically
	id     EventID
	fn     func()
	index  int // heap index
	cancel bool
}

// eventHeap orders events by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// ErrPastEvent is returned when an event is scheduled before the current
// virtual time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Kernel is a discrete-event scheduler. The zero value is not usable; use
// NewKernel. Kernel is not safe for concurrent use: a simulation is a
// single-threaded interleaving of events, which is what makes runs
// reproducible.
type Kernel struct {
	now     Time
	queue   eventHeap
	nextSeq uint64
	nextID  EventID
	byID    map[EventID]*event
	stopped bool

	// processed counts events executed, for diagnostics and run limits.
	processed uint64
	// limit, when non-zero, aborts Run after this many events as a
	// runaway-loop backstop.
	limit uint64
}

// NewKernel returns a kernel with the clock at time zero.
func NewKernel() *Kernel {
	return &Kernel{byID: make(map[EventID]*event)}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Processed reports the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// SetEventLimit sets a backstop: Run returns an error after n events.
// n == 0 disables the limit.
func (k *Kernel) SetEventLimit(n uint64) { k.limit = n }

// Schedule runs fn after delay. A negative delay is an error.
func (k *Kernel) Schedule(delay Duration, fn func()) (EventID, error) {
	return k.ScheduleAt(k.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at.
func (k *Kernel) ScheduleAt(at Time, fn func()) (EventID, error) {
	if at < k.now {
		return 0, fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, k.now)
	}
	k.nextSeq++
	k.nextID++
	ev := &event{at: at, seq: k.nextSeq, id: k.nextID, fn: fn}
	heap.Push(&k.queue, ev)
	k.byID[ev.id] = ev
	return ev.id, nil
}

// MustSchedule is Schedule for callers that control delay and know it is
// non-negative; it panics when scheduling fails. A silently dropped event
// corrupts the simulation (timers stop firing, frames never resolve), and
// the old EventID(0) return aliased the "no event" sentinel — so a failure
// here is a programming error worth crashing on.
func (k *Kernel) MustSchedule(delay Duration, fn func()) EventID {
	id, err := k.Schedule(delay, fn)
	if err != nil {
		panic(fmt.Sprintf("sim: MustSchedule: %v", err))
	}
	return id
}

// Cancel removes a pending event. Cancelling an already-fired or unknown
// event is a no-op and reports false.
func (k *Kernel) Cancel(id EventID) bool {
	ev, ok := k.byID[id]
	if !ok {
		return false
	}
	ev.cancel = true
	delete(k.byID, id)
	return true
}

// Pending reports the number of events still queued (including events
// cancelled but not yet drained).
func (k *Kernel) Pending() int { return len(k.byID) }

// Stop makes Run return after the currently executing event.
func (k *Kernel) Stop() { k.stopped = true }

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		ev, ok := heap.Pop(&k.queue).(*event)
		if !ok {
			return false
		}
		if ev.cancel {
			continue
		}
		delete(k.byID, ev.id)
		k.now = ev.at
		k.processed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty, the clock passes until, or
// Stop is called. The clock is left at min(until, last event time); if the
// queue drains before until, the clock advances to until so that callers
// measuring elapsed time (e.g. idle energy) see the full window.
func (k *Kernel) Run(until Time) error {
	k.stopped = false
	for !k.stopped {
		if k.limit > 0 && k.processed >= k.limit {
			return fmt.Errorf("sim: event limit %d reached at %v", k.limit, k.now)
		}
		for len(k.queue) > 0 && k.queue[0].cancel {
			heap.Pop(&k.queue)
		}
		if len(k.queue) == 0 {
			break
		}
		next := k.queue[0]
		if next.at > until {
			break
		}
		k.Step()
	}
	if k.now < until && until != Never && !k.stopped {
		k.now = until
	}
	return nil
}

// RunAll executes events until the queue is fully drained or Stop is called.
func (k *Kernel) RunAll() error { return k.Run(Never) }
