package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSplitIsIndependentOfParentDraws(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	// Drain some draws from a only; children must still match.
	for i := 0; i < 10; i++ {
		a.Float64()
	}
	ca := a.Split("mac")
	cb := b.Split("mac")
	for i := 0; i < 50; i++ {
		if ca.Float64() != cb.Float64() {
			t.Fatalf("split streams diverged at draw %d", i)
		}
	}
}

func TestSplitLabelsDiffer(t *testing.T) {
	g := NewRNG(7)
	x := g.Split("radio").Float64()
	y := g.Split("mobility").Float64()
	if x == y {
		t.Fatal("different labels produced identical first draws (suspicious)")
	}
}

func TestSplitNDiffersByIndex(t *testing.T) {
	g := NewRNG(7)
	seen := make(map[int64]bool)
	for i := 0; i < 100; i++ {
		s := g.SplitN("node", i).Seed()
		if seen[s] {
			t.Fatalf("SplitN seed collision at index %d", i)
		}
		seen[s] = true
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(3)
	f := func(a, b uint8) bool {
		lo, hi := float64(a), float64(a)+float64(b)+1
		v := g.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := g.Normal(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("mean = %v, want ~5", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("variance = %v, want ~4", variance)
	}
}

func TestJitterBounds(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 1000; i++ {
		j := g.Jitter(0.25)
		if j < 0 || j >= 0.25 {
			t.Fatalf("jitter %v outside [0, 0.25)", j)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(5)
	p := g.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}
