package sim

// Conservative parallel simulation: the world is partitioned into S regions
// (shards), each with its own Kernel, synchronized Chandy–Misra–Bryant
// style. A shard may only execute events strictly earlier than the minimum
// horizon its neighbor shards have promised; horizons are derived from the
// physical lookahead of the radio model — a transmission can only be
// scheduled at least `lookahead` (the minimum MAC turnaround, min(SIFS,
// DIFS)) after the event that decides to send it. Cross-shard transmissions
// become timestamped messages posted into the receiving shard's inbox, and
// horizon updates double as null messages: a shard with nothing to send
// still publishes how far its clock could possibly produce traffic, which
// is what keeps the ring of shards deadlock-free.
//
// Determinism contract. Results must be identical at any shard count, so
// every source of nondeterminism is pinned:
//
//   - Message events carry the sequence key msgSeqBit | srcShard<<48 |
//     srcSeq. The existing (time, seq) heap comparator then orders them
//     after all locally scheduled events at the same timestamp, and between
//     themselves by (source shard, source posting order) — both independent
//     of goroutine scheduling.
//   - A shard never executes a message event at a timestamp at which it has
//     itself executed a transmission event: under the sequential kernel the
//     relative order of those two would be decided by global sequence
//     numbers that a parallel run cannot reconstruct, so the run fails with
//     ErrShardTie and the caller re-runs the replica on a single kernel.
//     Ties of this kind need two border nodes to schedule transmissions at
//     bit-identical float timestamps, which jittered protocol timers make
//     rare; the tripwire makes them safe instead of silently divergent.
//   - Per-node RNG streams are split by name from the experiment seed
//     (rng.SplitN), so a node draws the same sequence regardless of which
//     kernel hosts it.
//
// Two executors drive the same shard structures. The threaded executor runs
// one goroutine per shard with atomic horizon publication and a shared
// condition variable for blocking — that is the scaling path on multi-core
// hosts. The sequential executor interleaves all shards on one goroutine in
// global (time, shard) order; it exists because conservative synchronization
// buys nothing at GOMAXPROCS=1, while the sharded radio's per-region
// candidate iteration still does (see radio.sendSharded). Both executors
// produce identical results; IC_SHARD_EXEC=seq|par pins the choice for
// tests and race checks.

import (
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ErrShardTie reports an ambiguous cross-shard timestamp tie: a message
// event and a local transmission event landed on the same timestamp in the
// same shard, so the parallel run cannot reproduce the sequential event
// order. The caller should re-run the replica with a single shard; the
// decision is deterministic, so the same seed and shard count always either
// trip or complete.
var ErrShardTie = errors.New("sim: ambiguous cross-shard timestamp tie")

// msgSeqBit distinguishes cross-shard message events from locally scheduled
// ones in the sequence key; see the package comment above.
const msgSeqBit uint64 = 1 << 63

// msgSrcShift positions the source shard index in the sequence key, leaving
// 48 bits for the per-sender posting sequence.
const msgSrcShift = 48

// xmsg is one cross-shard message waiting in a shard's inbox.
type xmsg struct {
	at  Time
	src uint16
	seq uint64
	fn  func(any)
	arg any
}

// Shard is one region's kernel plus its synchronization state.
type Shard struct {
	set *ShardSet
	idx int
	k   *Kernel

	// inbox holds posted messages until the shard drains them into its event
	// queue; mail flags a non-empty inbox so the hot loop can skip the lock.
	inMu    sync.Mutex
	inbox   []xmsg
	scratch []xmsg
	mail    atomic.Bool
	postSeq uint64

	// horizon is the published promise (as float64 bits): this shard will
	// not post any message with a timestamp below it. Monotone by
	// construction.
	horizon atomic.Uint64

	// borderQ is a min-heap of the timestamps of pending tx-flagged events —
	// the exact times at which this shard could emit cross-shard traffic.
	borderQ []Time

	// snap holds the neighbor-horizon snapshot for the current iteration;
	// taking it before draining the inbox is what makes the published
	// horizon safe (see publish).
	snap []Time

	neighbors []*Shard
}

// Kernel returns the shard's event kernel.
func (sh *Shard) Kernel() *Kernel { return sh.k }

// Index returns the shard's index within its set.
func (sh *Shard) Index() int { return sh.idx }

func (sh *Shard) pushBorder(at Time) {
	q := append(sh.borderQ, at)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q[p] <= q[i] {
			break
		}
		q[p], q[i] = q[i], q[p]
		i = p
	}
	sh.borderQ = q
}

// popBorder retires the earliest border timestamp, which must be the one
// firing now: events execute in non-decreasing time order, so a tx event
// reaching the front of the event queue is also at the front of borderQ.
func (sh *Shard) popBorder(at Time) {
	q := sh.borderQ
	if len(q) == 0 || q[0] != at {
		panic(fmt.Sprintf("sim: border horizon out of step: firing %v, queue head %v", at, q))
	}
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && q[l] < q[m] {
			m = l
		}
		if r < n && q[r] < q[m] {
			m = r
		}
		if m == i {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	sh.borderQ = q
}

func (sh *Shard) loadHorizon() Time {
	return Time(math.Float64frombits(sh.horizon.Load()))
}

func (sh *Shard) storeHorizon(t Time) {
	sh.horizon.Store(math.Float64bits(float64(t)))
}

// drain moves inbox messages into the event queue. Encoded sequence keys
// make the resulting heap order independent of the real-time order in which
// senders appended to the inbox.
func (sh *Shard) drain() {
	if !sh.mail.Load() {
		return
	}
	sh.inMu.Lock()
	msgs := sh.inbox
	sh.inbox = sh.scratch[:0]
	sh.mail.Store(false)
	sh.inMu.Unlock()
	for i := range msgs {
		m := &msgs[i]
		sh.k.scheduleMsg(m.at, msgSeqBit|uint64(m.src)<<msgSrcShift|m.seq, m.fn, m.arg)
		msgs[i] = xmsg{}
	}
	sh.scratch = msgs
}

// snapshot records each neighbor's published horizon. It must run before
// drain: a message posted after the snapshot provably carries a timestamp
// no earlier than the snapshotted horizon of its sender (a sender's horizon
// never exceeds its next possible transmission time), which is exactly the
// bound publish folds in.
func (sh *Shard) snapshot() {
	for i, nb := range sh.neighbors {
		sh.snap[i] = nb.loadHorizon()
	}
}

// bound returns the minimum snapshotted neighbor horizon: the time up to
// which it is safe to execute local events (exclusive for message events).
func (sh *Shard) bound() Time {
	b := Never
	for _, t := range sh.snap {
		if t < b {
			b = t
		}
	}
	return b
}

// publish recomputes and publishes this shard's horizon:
//
//	h = min(earliest pending tx event,
//	        next local event + lookahead,
//	        min snapshotted neighbor horizon + lookahead)
//
// The first term is exact. The second covers transmissions that pending
// events may yet schedule (always at least lookahead ahead of the event
// that schedules them). The third covers transmissions caused by messages
// this shard has not received yet: any future message arrives no earlier
// than its sender's snapshotted horizon, and can only cause transmissions
// at least lookahead later. The result is monotone, so the stored horizon
// never retreats.
func (sh *Shard) publish() {
	h := Never
	if len(sh.borderQ) > 0 {
		h = sh.borderQ[0]
	}
	la := sh.set.lookahead
	if ev := sh.k.peekLive(); ev != nil {
		if t := ev.at + la; t < h {
			h = t
		}
	}
	for _, t := range sh.snap {
		if t+la < h {
			h = t + la
		}
	}
	if h > sh.loadHorizon() {
		sh.storeHorizon(h)
		sh.set.notify()
	}
}

// ShardSet is a partition of one simulation across S kernels. Build the
// set, pin every node's events to its home shard's kernel, then Run.
type ShardSet struct {
	shards    []*Shard
	lookahead Duration

	mu      sync.Mutex
	cond    *sync.Cond
	waiters atomic.Int32
	gen     atomic.Uint64

	stopped atomic.Bool
	errMu   sync.Mutex
	err     error

	// limit, when non-zero, aborts Run after this many events summed across
	// all shards; processed is the shared counter it is checked against.
	// Per-kernel Processed/SetEventLimit remain per-shard accounting.
	limit     uint64
	processed atomic.Uint64

	// mailGen changes whenever any shard is posted a message; the sequential
	// executor uses it to skip inbox scans between posts.
	mailGen atomic.Uint64
}

// NewShardSet returns n shards with fresh kernels. lookahead is the minimum
// delay between an event executing and the earliest transmission it can
// schedule — for the 802.11-style MAC, min(SIFS, DIFS). It must be positive
// when n > 1: with zero lookahead no shard could ever promise its neighbors
// a horizon ahead of its own clock, and the set would deadlock.
func NewShardSet(n int, lookahead Duration) *ShardSet {
	if n < 1 {
		panic(fmt.Sprintf("sim: NewShardSet: need at least one shard, got %d", n))
	}
	if n > 1 && lookahead <= 0 {
		panic(fmt.Sprintf("sim: NewShardSet: lookahead must be positive with %d shards, got %v", n, lookahead))
	}
	s := &ShardSet{lookahead: lookahead}
	s.cond = sync.NewCond(&s.mu)
	s.shards = make([]*Shard, n)
	for i := range s.shards {
		k := NewKernel()
		sh := &Shard{set: s, idx: i, k: k}
		if n > 1 {
			// A single-shard set is a thin wrapper over one sequential
			// kernel; leaving the kernel unsharded keeps ScheduleFireTx,
			// Stop, and Run on the exact pre-shard code path.
			k.shard = sh
		}
		s.shards[i] = sh
	}
	// Stripe partitions only border their immediate neighbors, but the
	// horizon algebra is topology-agnostic: declare adjacency as i±1.
	for i, sh := range s.shards {
		if i > 0 {
			sh.neighbors = append(sh.neighbors, s.shards[i-1])
		}
		if i < n-1 {
			sh.neighbors = append(sh.neighbors, s.shards[i+1])
		}
		sh.snap = make([]Time, len(sh.neighbors))
	}
	return s
}

// Shards returns the number of shards in the set.
func (s *ShardSet) Shards() int { return len(s.shards) }

// Kernel returns shard i's kernel.
func (s *ShardSet) Kernel(i int) *Kernel { return s.shards[i].k }

// Lookahead returns the set's lookahead bound.
func (s *ShardSet) Lookahead() Duration { return s.lookahead }

// SetEventLimit sets an aggregate backstop: Run fails after n events summed
// across all shards. n == 0 disables the limit. Per-kernel limits
// (Kernel.SetEventLimit) stay per-shard and are honored too.
func (s *ShardSet) SetEventLimit(n uint64) { s.limit = n }

// Processed reports the total number of events executed across all shards.
func (s *ShardSet) Processed() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.k.processed
	}
	return n
}

// Stop makes Run return after the events currently executing. Like
// Kernel.Stop it is not an error: Run returns nil.
func (s *ShardSet) Stop() {
	if len(s.shards) == 1 {
		s.shards[0].k.stopped = true
		return
	}
	s.stopped.Store(true)
	s.notify()
}

// Post delivers a cross-shard message: fn(arg) will execute on shard dst's
// kernel at virtual time at, ordered deterministically against everything
// else that shard executes. Post may only be called from inside a
// tx-flagged event (ScheduleFireTx) on a kernel of this set — the lookahead
// contract under which the horizon promises hold — and panics otherwise.
func (s *ShardSet) Post(from *Kernel, dst int, at Time, fn func(any), arg any) {
	sh := from.shard
	if sh == nil || sh.set != s {
		panic("sim: Post from a kernel outside this shard set")
	}
	if !from.inTx {
		panic("sim: cross-shard message posted outside a transmission event (lookahead contract)")
	}
	if at < from.now {
		panic(fmt.Sprintf("sim: cross-shard message at %v posted behind the clock %v", at, from.now))
	}
	if d := dst - sh.idx; d != 1 && d != -1 {
		// Horizons only bind adjacent shards; a post skipping a stripe would
		// arrive unsynchronized. The stripe partition makes this impossible
		// (stripe width >= radio range), so reaching here is a partition bug.
		panic(fmt.Sprintf("sim: cross-shard message from shard %d to non-adjacent shard %d", sh.idx, dst))
	}
	sh.postSeq++
	d := s.shards[dst]
	d.inMu.Lock()
	d.inbox = append(d.inbox, xmsg{at: at, src: uint16(sh.idx), seq: sh.postSeq, fn: fn, arg: arg})
	d.inMu.Unlock()
	d.mail.Store(true)
	s.mailGen.Add(1)
	s.notify()
}

// notify wakes blocked shards after any state they may be waiting on
// (horizons, inboxes, stop) has changed.
func (s *ShardSet) notify() {
	s.gen.Add(1)
	if s.waiters.Load() > 0 {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// sleep blocks until notify is called after genSeen was read. The generation
// check closes the lost-wakeup window between deciding to sleep and
// acquiring the lock.
func (s *ShardSet) sleep(genSeen uint64) {
	s.mu.Lock()
	s.waiters.Add(1)
	if s.gen.Load() == genSeen && !s.stopped.Load() {
		s.cond.Wait()
	}
	s.waiters.Add(-1)
	s.mu.Unlock()
}

// fail records the first error, stops every shard, and wakes them.
func (s *ShardSet) fail(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
	s.stopped.Store(true)
	s.notify()
}

func (s *ShardSet) failure() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// countEvent applies the per-kernel and aggregate event limits after one
// event executed on sh; it reports whether the run should continue.
func (s *ShardSet) countEvent(sh *Shard) bool {
	k := sh.k
	if k.limit > 0 && k.processed >= k.limit {
		s.fail(fmt.Errorf("sim: event limit %d reached at %v (shard %d)", k.limit, k.now, sh.idx))
		return false
	}
	if s.limit > 0 && s.processed.Add(1) >= s.limit {
		s.fail(fmt.Errorf("sim: aggregate event limit %d reached at %v (shard %d)", s.limit, k.now, sh.idx))
		return false
	}
	return true
}

// Run executes all shards until each has drained its events up to until (the
// clocks are then advanced to until, mirroring Kernel.Run), Stop is called,
// a limit trips, or an ambiguous timestamp tie is detected (ErrShardTie).
// With one shard it is exactly Kernel.Run. The executor is chosen by
// IC_SHARD_EXEC (seq|par); unset, it is threaded when GOMAXPROCS > 1 and
// sequential otherwise, where the parallel protocol's synchronization buys
// nothing.
func (s *ShardSet) Run(until Time) error {
	s.stopped.Store(false)
	s.errMu.Lock()
	s.err = nil
	s.errMu.Unlock()
	if len(s.shards) == 1 {
		return s.shards[0].k.Run(until)
	}
	par := runtime.GOMAXPROCS(0) > 1
	switch os.Getenv("IC_SHARD_EXEC") {
	case "seq":
		par = false
	case "par":
		par = true
	}
	if !par {
		return s.runSeq(until)
	}
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					s.fail(fmt.Errorf("sim: shard %d panicked: %v\n%s", sh.idx, r, debug.Stack()))
				}
			}()
			sh.runPar(until)
		}(sh)
	}
	wg.Wait()
	return s.failure()
}

// runPar is the threaded executor's per-shard loop.
func (sh *Shard) runPar(until Time) {
	s := sh.set
	k := sh.k
	spins := 0
	for {
		if s.stopped.Load() {
			return
		}
		genSeen := s.gen.Load()
		sh.snapshot()
		sh.drain()
		bound := sh.bound()
		progressed := false
		for n := 0; n < 1024; n++ {
			ev := k.peekLive()
			if ev == nil || ev.at > until {
				break
			}
			isMsg := ev.seq >= msgSeqBit
			if ev.at > bound || (ev.at == bound && isMsg) {
				break
			}
			if isMsg && ev.at == k.lastLocalAt {
				s.fail(ErrShardTie)
				return
			}
			k.Step()
			progressed = true
			if !s.countEvent(sh) {
				return
			}
			sh.publish()
		}
		sh.publish()
		if progressed {
			spins = 0
			continue
		}
		if ev := k.peekLive(); (ev == nil || ev.at > until) && !sh.mail.Load() && bound > until {
			// Done: no local work at or before until, and every neighbor has
			// promised not to send any. Publishing Never releases them.
			if k.now < until && until != Never {
				k.now = until
			}
			sh.storeHorizon(Never)
			s.notify()
			return
		}
		// Blocked on a neighbor. Spin briefly — on saturated hosts the
		// neighbor's horizon usually advances within a few scheduler slices —
		// then park on the condition variable.
		if spins < 128 {
			spins++
			runtime.Gosched()
			continue
		}
		s.sleep(genSeen)
		spins = 0
	}
}

// runSeq is the sequential executor: one goroutine interleaves all shards
// in global (event time, shard index) order. Executing the globally
// earliest event is always safe — any message it posts is timestamped at
// the poster's current clock, which is no earlier than every other shard's
// next event — so no horizon bookkeeping is needed. The per-kernel merge
// rules (message sequence keys, the tie tripwire) are the same as the
// threaded executor's, so both produce identical results.
func (s *ShardSet) runSeq(until Time) error {
	mailSeen := s.mailGen.Load() - 1 // force the first drain
	for !s.stopped.Load() {
		if g := s.mailGen.Load(); g != mailSeen {
			mailSeen = g
			for _, sh := range s.shards {
				sh.drain()
			}
		}
		best := -1
		bt := Never
		var second Time = Never
		for i, sh := range s.shards {
			ev := sh.k.peekLive()
			if ev == nil {
				continue
			}
			if best < 0 || ev.at < bt {
				second = bt
				best, bt = i, ev.at
			} else if ev.at < second {
				second = ev.at
			}
		}
		if best < 0 || bt > until {
			break
		}
		sh := s.shards[best]
		// Step this shard while it stays strictly ahead of every other
		// shard and posts no mail, amortizing the min-scan across bursts.
		for {
			ev := sh.k.peekLive()
			if ev == nil || ev.at > until {
				break
			}
			if ev.seq >= msgSeqBit && ev.at == sh.k.lastLocalAt {
				return ErrShardTie
			}
			sh.k.Step()
			if !s.countEvent(sh) {
				return s.failure()
			}
			if s.stopped.Load() || s.mailGen.Load() != mailSeen {
				break
			}
			if next := sh.k.peekLive(); next == nil || next.at >= second {
				break
			}
		}
	}
	if err := s.failure(); err != nil {
		return err
	}
	if !s.stopped.Load() && until != Never {
		for _, sh := range s.shards {
			if sh.k.now < until {
				sh.k.now = until
			}
		}
	}
	return nil
}
