package sim

// Conservative parallel simulation: the world is partitioned into S regions
// (shards), each with its own Kernel, synchronized Chandy–Misra–Bryant
// style. A shard may only execute events strictly earlier than the minimum
// horizon its neighbor shards have promised; horizons are derived from the
// physical lookahead of the radio model — a transmission can only be
// scheduled at least `lookahead` (the minimum MAC turnaround, min(SIFS,
// DIFS)) after the event that decides to send it. Cross-shard transmissions
// become timestamped messages posted into the receiving shard's inbox, and
// horizon updates double as null messages: a shard with nothing to send
// still publishes how far its clock could possibly produce traffic, which
// is what keeps the ring of shards deadlock-free.
//
// Two lookaheads drive the horizon algebra:
//
//   - lookahead bounds transmissions caused by locally pending events: any
//     event's callback may schedule a transmission, but never closer than
//     lookahead (ScheduleFireTx enforces it).
//   - msgLookahead (>= lookahead) bounds transmissions caused by messages
//     not yet received. The caller asserts it via SetMsgLookahead: a
//     message's callback chain schedules no transmission earlier than
//     msgLookahead after the message timestamp. For the radio model a
//     message is a frame registration whose only event chain starts when
//     the frame's airtime elapses, so node.Build asserts lookahead +
//     TxDuration(smallest frame). The larger the message lookahead, the
//     fewer null-message rounds it takes an idle cascade of shards to
//     advance each other past a gap.
//
// Determinism contract. Results must be identical at any shard count, so
// every source of nondeterminism is pinned:
//
//   - Message events carry the sequence key msgSeqBit | srcShard<<48 |
//     srcSeq. The existing (time, seq) heap comparator then orders them
//     after all locally scheduled events at the same timestamp, and between
//     themselves by (source shard, source posting order) — both independent
//     of goroutine scheduling.
//   - A shard never executes a message event at a timestamp at which it has
//     itself executed a transmission event: under the sequential kernel the
//     relative order of those two would be decided by global sequence
//     numbers that a parallel run cannot reconstruct, so the run fails with
//     ErrShardTie and the caller re-runs the replica on a single kernel.
//     Ties of this kind need two border nodes to schedule transmissions at
//     bit-identical float timestamps, which jittered protocol timers make
//     rare; the tripwire makes them safe instead of silently divergent.
//   - Per-node RNG streams are split by name from the experiment seed
//     (rng.SplitN), so a node draws the same sequence regardless of which
//     kernel hosts it.
//
// Executors. The sequential executor interleaves all shards on one
// goroutine in global (time, shard) order with zero synchronization; it
// exists because conservative synchronization buys nothing at one core,
// while the sharded radio's per-region candidate iteration still does (see
// radio.sendSharded). The threaded executor runs the shards on G slot
// goroutines (1 < G <= S), each slot round-robining a contiguous group of
// shards; G = S is classic goroutine-per-shard. Unless IC_SHARD_EXEC pins
// an executor, Run sizes G to the core tokens actually spare (see
// budget.go) so concurrent sharded replicas divide GOMAXPROCS instead of
// oversubscribing it — with no spare tokens the replica degrades to the
// sequential executor. All executors produce identical results;
// IC_SHARD_EXEC=seq|par pins the choice for tests and race checks, and
// IC_SHARD_GROUPS=N pins the slot count.

import (
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ErrShardTie reports an ambiguous cross-shard timestamp tie: a message
// event and a local transmission event landed on the same timestamp in the
// same shard, so the parallel run cannot reproduce the sequential event
// order. The caller should re-run the replica with a single shard; the
// decision is deterministic, so the same seed and shard count always either
// trip or complete.
var ErrShardTie = errors.New("sim: ambiguous cross-shard timestamp tie")

// msgSeqBit distinguishes cross-shard message events from locally scheduled
// ones in the sequence key; see the package comment above.
const msgSeqBit uint64 = 1 << 63

// msgSrcShift positions the source shard index in the sequence key, leaving
// 48 bits for the per-sender posting sequence.
const msgSrcShift = 48

// pumpBatch bounds how many events a shard executes between horizon
// republishes to its neighbors.
const pumpBatch = 1024

// xmsg is one cross-shard message waiting in a shard's inbox.
type xmsg struct {
	at  Time
	src uint16
	seq uint64
	fn  func(any)
	arg any
}

// ShardUtil is one shard's utilization record for the last Run: how much
// work it executed and how much synchronization it paid. Events and
// NullRepublishes are properties of the partition; Parks and BlockedNs are
// wall-clock diagnostics of the executor and vary run to run. None of them
// feed any simulation result.
type ShardUtil struct {
	// Events counts events executed on this shard's kernel.
	Events uint64
	// NullRepublishes counts horizon publishes from passes that executed
	// no event — the protocol's null messages.
	NullRepublishes uint64
	// Parks counts times the executor slot driving this shard parked on
	// the condition variable waiting for a neighbor. Attributed to the
	// slot's earliest live shard; exact when slots are singletons.
	Parks uint64
	// BlockedNs is wall-clock nanoseconds the slot spent spinning or
	// parked while this shard was its earliest live member.
	BlockedNs int64
}

// Shard is one region's kernel plus its synchronization state.
type Shard struct {
	set *ShardSet
	idx int
	k   *Kernel

	// inbox holds posted messages until the shard drains them into its event
	// queue; mail flags a non-empty inbox so the hot loop can skip the lock.
	inMu    sync.Mutex
	inbox   []xmsg
	scratch []xmsg
	mail    atomic.Bool
	postSeq uint64

	// horizon is the published promise (as float64 bits): this shard will
	// not post any message with a timestamp below it. Monotone by
	// construction.
	horizon atomic.Uint64

	// borderQ is a min-heap of the timestamps of pending tx-flagged events —
	// the exact times at which this shard could emit cross-shard traffic.
	borderQ []Time

	// snap holds the neighbor-horizon snapshot for the current iteration;
	// taking it before draining the inbox is what makes the published
	// horizon safe (see publish).
	snap []Time

	neighbors []*Shard

	// done marks the shard finished for the current Run: no local work at
	// or before the run bound and every neighbor promised past it. Only
	// the threaded executor uses it; done never reverts within a Run.
	done bool

	// util is this shard's utilization record, reset by Run.
	util ShardUtil
}

// Kernel returns the shard's event kernel.
func (sh *Shard) Kernel() *Kernel { return sh.k }

// Index returns the shard's index within its set.
func (sh *Shard) Index() int { return sh.idx }

func (sh *Shard) pushBorder(at Time) {
	q := append(sh.borderQ, at)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q[p] <= q[i] {
			break
		}
		q[p], q[i] = q[i], q[p]
		i = p
	}
	sh.borderQ = q
}

// popBorder retires the earliest border timestamp, which must be the one
// firing now: events execute in non-decreasing time order, so a tx event
// reaching the front of the event queue is also at the front of borderQ.
func (sh *Shard) popBorder(at Time) {
	q := sh.borderQ
	if len(q) == 0 || q[0] != at {
		panic(fmt.Sprintf("sim: border horizon out of step: firing %v, queue head %v", at, q))
	}
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && q[l] < q[m] {
			m = l
		}
		if r < n && q[r] < q[m] {
			m = r
		}
		if m == i {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	sh.borderQ = q
}

func (sh *Shard) loadHorizon() Time {
	return Time(math.Float64frombits(sh.horizon.Load()))
}

func (sh *Shard) storeHorizon(t Time) {
	sh.horizon.Store(math.Float64bits(float64(t)))
}

// drain moves inbox messages into the event queue. Encoded sequence keys
// make the resulting heap order independent of the real-time order in which
// senders appended to the inbox.
func (sh *Shard) drain() {
	if !sh.mail.Load() {
		return
	}
	sh.inMu.Lock()
	msgs := sh.inbox
	sh.inbox = sh.scratch[:0]
	sh.mail.Store(false)
	sh.inMu.Unlock()
	for i := range msgs {
		m := &msgs[i]
		sh.k.scheduleMsg(m.at, msgSeqBit|uint64(m.src)<<msgSrcShift|m.seq, m.fn, m.arg)
		msgs[i] = xmsg{}
	}
	sh.scratch = msgs
}

// snapshot records each neighbor's published horizon. It must run before
// drain: a message posted after the snapshot provably carries a timestamp
// no earlier than the snapshotted horizon of its sender (a sender's horizon
// never exceeds its next possible transmission time), which is exactly the
// bound publish folds in.
func (sh *Shard) snapshot() {
	for i, nb := range sh.neighbors {
		sh.snap[i] = nb.loadHorizon()
	}
}

// bound returns the minimum snapshotted neighbor horizon: the time up to
// which it is safe to execute local events (exclusive for message events).
func (sh *Shard) bound() Time {
	b := Never
	for _, t := range sh.snap {
		if t < b {
			b = t
		}
	}
	return b
}

// publish recomputes and publishes this shard's horizon:
//
//	h = min(earliest pending tx event,
//	        next local event + lookahead,
//	        min snapshotted neighbor horizon + msgLookahead)
//
// The first term is exact. The second covers transmissions that pending
// events may yet schedule (always at least lookahead ahead of the event
// that schedules them). The third covers transmissions caused by messages
// this shard has not received yet: any future message arrives no earlier
// than its sender's snapshotted horizon, and by the message-lookahead
// contract its callback chain cannot fire a transmission sooner than
// msgLookahead after its own timestamp. The result is monotone, so the
// stored horizon never retreats.
func (sh *Shard) publish() bool {
	h := Never
	if len(sh.borderQ) > 0 {
		h = sh.borderQ[0]
	}
	la := sh.set.lookahead
	if ev := sh.k.peekLive(); ev != nil {
		if t := ev.at + la; t < h {
			h = t
		}
	}
	mla := sh.set.msgLookahead
	for _, t := range sh.snap {
		if t+mla < h {
			h = t + mla
		}
	}
	if h > sh.loadHorizon() {
		sh.storeHorizon(h)
		sh.set.notify()
		return true
	}
	return false
}

// ShardSet is a partition of one simulation across S kernels. Build the
// set, pin every node's events to its home shard's kernel, then Run.
type ShardSet struct {
	shards       []*Shard
	lookahead    Duration
	msgLookahead Duration

	mu      sync.Mutex
	cond    *sync.Cond
	waiters atomic.Int32
	gen     atomic.Uint64

	stopped atomic.Bool
	errMu   sync.Mutex
	err     error

	// limit, when non-zero, aborts Run after this many events summed across
	// all shards; processed is the shared counter it is checked against.
	// Per-kernel Processed/SetEventLimit remain per-shard accounting.
	limit     uint64
	processed atomic.Uint64

	// mailGen changes whenever any shard is posted a message; the sequential
	// executor uses it to skip inbox scans between posts.
	mailGen atomic.Uint64
}

// NewShardSet returns n shards with fresh kernels. lookahead is the minimum
// delay between an event executing and the earliest transmission it can
// schedule — for the 802.11-style MAC, min(SIFS, DIFS). It must be positive
// when n > 1: with zero lookahead no shard could ever promise its neighbors
// a horizon ahead of its own clock, and the set would deadlock. The message
// lookahead starts equal to lookahead (always sound); see SetMsgLookahead.
func NewShardSet(n int, lookahead Duration) *ShardSet {
	if n < 1 {
		panic(fmt.Sprintf("sim: NewShardSet: need at least one shard, got %d", n))
	}
	if n > 1 && lookahead <= 0 {
		panic(fmt.Sprintf("sim: NewShardSet: lookahead must be positive with %d shards, got %v", n, lookahead))
	}
	s := &ShardSet{lookahead: lookahead, msgLookahead: lookahead}
	s.cond = sync.NewCond(&s.mu)
	s.shards = make([]*Shard, n)
	for i := range s.shards {
		k := NewKernel()
		sh := &Shard{set: s, idx: i, k: k}
		if n > 1 {
			// A single-shard set is a thin wrapper over one sequential
			// kernel; leaving the kernel unsharded keeps ScheduleFireTx,
			// Stop, and Run on the exact pre-shard code path.
			k.shard = sh
		}
		s.shards[i] = sh
	}
	// Stripe partitions only border their immediate neighbors, but the
	// horizon algebra is topology-agnostic: declare adjacency as i±1.
	for i, sh := range s.shards {
		if i > 0 {
			sh.neighbors = append(sh.neighbors, s.shards[i-1])
		}
		if i < n-1 {
			sh.neighbors = append(sh.neighbors, s.shards[i+1])
		}
		sh.snap = make([]Time, len(sh.neighbors))
	}
	return s
}

// SetMsgLookahead raises the message lookahead: the caller's promise that a
// cross-shard message's callback chain schedules no transmission earlier
// than d after the message's own timestamp. It must be at least the base
// lookahead. The kernel spot-checks the promise where it can — a border
// transmission scheduled directly from a message callback below the bound
// panics — but deeper chains are the caller's proof obligation (for the
// radio model: a message is a frame registration whose event chain starts
// only after the frame's airtime, see node.Build).
func (s *ShardSet) SetMsgLookahead(d Duration) {
	if d < s.lookahead {
		panic(fmt.Sprintf("sim: SetMsgLookahead: %v is below the base lookahead %v", d, s.lookahead))
	}
	s.msgLookahead = d
}

// MsgLookahead returns the message lookahead bound.
func (s *ShardSet) MsgLookahead() Duration { return s.msgLookahead }

// Shards returns the number of shards in the set.
func (s *ShardSet) Shards() int { return len(s.shards) }

// Kernel returns shard i's kernel.
func (s *ShardSet) Kernel(i int) *Kernel { return s.shards[i].k }

// Lookahead returns the set's lookahead bound.
func (s *ShardSet) Lookahead() Duration { return s.lookahead }

// SetEventLimit sets an aggregate backstop: Run fails after n events summed
// across all shards. n == 0 disables the limit. Per-kernel limits
// (Kernel.SetEventLimit) stay per-shard and are honored too.
func (s *ShardSet) SetEventLimit(n uint64) { s.limit = n }

// Processed reports the total number of events executed across all shards.
func (s *ShardSet) Processed() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.k.processed
	}
	return n
}

// Utilization returns each shard's utilization record for the last Run:
// events executed, null-message republishes, executor parks, and blocked
// wall-clock time. It must not be called while Run is in flight.
func (s *ShardSet) Utilization() []ShardUtil {
	out := make([]ShardUtil, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.util
		out[i].Events = sh.k.processed
	}
	return out
}

// Stop makes Run return after the events currently executing. Like
// Kernel.Stop it is not an error: Run returns nil.
func (s *ShardSet) Stop() {
	if len(s.shards) == 1 {
		s.shards[0].k.stopped = true
		return
	}
	s.stopped.Store(true)
	s.notify()
}

// Post delivers a cross-shard message: fn(arg) will execute on shard dst's
// kernel at virtual time at, ordered deterministically against everything
// else that shard executes. Post may only be called from inside a
// tx-flagged event (ScheduleFireTx) on a kernel of this set — the lookahead
// contract under which the horizon promises hold — and panics otherwise.
func (s *ShardSet) Post(from *Kernel, dst int, at Time, fn func(any), arg any) {
	sh := from.shard
	if sh == nil || sh.set != s {
		panic("sim: Post from a kernel outside this shard set")
	}
	if !from.inTx {
		panic("sim: cross-shard message posted outside a transmission event (lookahead contract)")
	}
	if at < from.now {
		panic(fmt.Sprintf("sim: cross-shard message at %v posted behind the clock %v", at, from.now))
	}
	if d := dst - sh.idx; d != 1 && d != -1 {
		// Horizons only bind adjacent shards; a post skipping a stripe would
		// arrive unsynchronized. The stripe partition makes this impossible
		// (stripe width >= radio range), so reaching here is a partition bug.
		panic(fmt.Sprintf("sim: cross-shard message from shard %d to non-adjacent shard %d", sh.idx, dst))
	}
	sh.postSeq++
	d := s.shards[dst]
	d.inMu.Lock()
	d.inbox = append(d.inbox, xmsg{at: at, src: uint16(sh.idx), seq: sh.postSeq, fn: fn, arg: arg})
	d.inMu.Unlock()
	d.mail.Store(true)
	s.mailGen.Add(1)
	s.notify()
}

// notify wakes blocked shards after any state they may be waiting on
// (horizons, inboxes, stop) has changed.
func (s *ShardSet) notify() {
	s.gen.Add(1)
	if s.waiters.Load() > 0 {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// sleep blocks until notify is called after genSeen was read. The generation
// check closes the lost-wakeup window between deciding to sleep and
// acquiring the lock.
func (s *ShardSet) sleep(genSeen uint64) {
	s.mu.Lock()
	s.waiters.Add(1)
	if s.gen.Load() == genSeen && !s.stopped.Load() {
		s.cond.Wait()
	}
	s.waiters.Add(-1)
	s.mu.Unlock()
}

// fail records the first error, stops every shard, and wakes them.
func (s *ShardSet) fail(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
	s.stopped.Store(true)
	s.notify()
}

func (s *ShardSet) failure() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// countEvent applies the per-kernel and aggregate event limits after one
// event executed on sh; it reports whether the run should continue.
func (s *ShardSet) countEvent(sh *Shard) bool {
	k := sh.k
	if k.limit > 0 && k.processed >= k.limit {
		s.fail(fmt.Errorf("sim: event limit %d reached at %v (shard %d)", k.limit, k.now, sh.idx))
		return false
	}
	if s.limit > 0 && s.processed.Add(1) >= s.limit {
		s.fail(fmt.Errorf("sim: aggregate event limit %d reached at %v (shard %d)", s.limit, k.now, sh.idx))
		return false
	}
	return true
}

// Run executes all shards until each has drained its events up to until (the
// clocks are then advanced to until, mirroring Kernel.Run), Stop is called,
// a limit trips, or an ambiguous timestamp tie is detected (ErrShardTie).
// With one shard it is exactly Kernel.Run.
//
// Executor selection: IC_SHARD_EXEC=seq pins the sequential executor,
// IC_SHARD_EXEC=par pins one slot goroutine per shard, and
// IC_SHARD_GROUPS=N pins N slots. Unset, Run asks the core-token budget
// for extra slots beyond the calling goroutine's and sizes the executor to
// what is spare, capped at GOMAXPROCS — so a lone replica on an idle
// multi-core host parallelizes fully, while replicas racing a saturated
// worker pool degrade to the sequential executor instead of thrashing.
func (s *ShardSet) Run(until Time) error {
	s.stopped.Store(false)
	s.errMu.Lock()
	s.err = nil
	s.errMu.Unlock()
	for _, sh := range s.shards {
		sh.done = false
		sh.util = ShardUtil{}
	}
	if len(s.shards) == 1 {
		return s.shards[0].k.Run(until)
	}
	groups := 0
	release := 0
	switch os.Getenv("IC_SHARD_EXEC") {
	case "seq":
		groups = 1
	case "par":
		groups = len(s.shards)
	default:
		if v := os.Getenv("IC_SHARD_GROUPS"); v != "" {
			if parsed, err := strconv.Atoi(v); err == nil && parsed > 0 {
				groups = parsed
			}
		}
		if groups == 0 {
			// Budgeted: the calling goroutine is one slot; take spare core
			// tokens for the rest and return what the GOMAXPROCS cap or the
			// shard count leaves unused.
			extra := AcquireCores(len(s.shards) - 1)
			groups = 1 + extra
			if procs := runtime.GOMAXPROCS(0); groups > procs {
				groups = procs
			}
			if groups > len(s.shards) {
				groups = len(s.shards)
			}
			release = 1 + extra - groups
			if release > 0 {
				ReleaseCores(release)
			}
			defer ReleaseCores(groups - 1)
		}
		if groups > len(s.shards) {
			groups = len(s.shards)
		}
	}
	if groups <= 1 {
		return s.runSeq(until)
	}
	return s.runGroups(until, groups)
}

// runGroups is the threaded executor: the shards are split into groups
// contiguous runs of shards, one slot goroutine per run. Contiguity means
// most neighbor horizons are published by the same slot, so oversubscribed
// hosts pay less cross-goroutine waiting.
func (s *ShardSet) runGroups(until Time, groups int) error {
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		lo := g * len(s.shards) / groups
		hi := (g + 1) * len(s.shards) / groups
		wg.Add(1)
		go func(slot []*Shard) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					s.fail(fmt.Errorf("sim: shard slot %v panicked: %v\n%s", shardIndices(slot), r, debug.Stack()))
				}
			}()
			s.slotLoop(until, slot)
		}(s.shards[lo:hi])
	}
	wg.Wait()
	return s.failure()
}

func shardIndices(slot []*Shard) []int {
	out := make([]int, len(slot))
	for i, sh := range slot {
		out[i] = sh.idx
	}
	return out
}

// slotLoop drives one executor slot: round-robin pumps over the slot's
// live shards until all are done. When a full pass makes no progress the
// slot is blocked on another slot's shards; it spins briefly only when
// spare cores make a concurrent horizon advance plausible (never at
// GOMAXPROCS=1, where yielding the timeslice cannot run the neighbor
// mid-spin), then parks on the condition variable keyed to the horizon
// generation it last observed — any horizon publish, post, or stop bumps
// the generation and wakes it.
func (s *ShardSet) slotLoop(until Time, slot []*Shard) {
	spinBudget := 0
	if runtime.GOMAXPROCS(0) > 1 {
		spinBudget = 32
	}
	spins := 0
	for {
		if s.stopped.Load() {
			return
		}
		genSeen := s.gen.Load()
		progressed := false
		var waiting *Shard
		for _, sh := range slot {
			if sh.done {
				continue
			}
			if waiting == nil {
				waiting = sh
			}
			if sh.pump(until) {
				progressed = true
			}
			if s.stopped.Load() {
				return
			}
		}
		if waiting == nil {
			return // every shard in the slot is done
		}
		if progressed {
			spins = 0
			continue
		}
		if s.gen.Load() != genSeen {
			continue // something already moved; re-scan without waiting
		}
		start := time.Now()
		if spins < spinBudget {
			spins++
			runtime.Gosched()
		} else {
			waiting.util.Parks++
			s.sleep(genSeen)
			spins = 0
		}
		waiting.util.BlockedNs += time.Since(start).Nanoseconds()
	}
}

// pump snapshots neighbor horizons, drains the inbox, executes up to
// pumpBatch safe events, and republishes the horizon. It reports whether
// any event executed, and marks the shard done when no work at or before
// until can ever reach it again.
func (sh *Shard) pump(until Time) bool {
	s := sh.set
	k := sh.k
	sh.snapshot()
	sh.drain()
	bound := sh.bound()
	progressed := false
	for n := 0; n < pumpBatch; n++ {
		ev := k.peekLive()
		if ev == nil || ev.at > until {
			break
		}
		isMsg := ev.seq >= msgSeqBit
		if ev.at > bound || (ev.at == bound && isMsg) {
			break
		}
		if isMsg && ev.at == k.lastLocalAt {
			s.fail(ErrShardTie)
			return progressed
		}
		k.Step()
		progressed = true
		if !s.countEvent(sh) {
			return progressed
		}
		sh.publish()
	}
	if advanced := sh.publish(); !progressed {
		if advanced {
			sh.util.NullRepublishes++
		}
		if ev := k.peekLive(); (ev == nil || ev.at > until) && !sh.mail.Load() && bound > until {
			// Done: no local work at or before until, and every neighbor has
			// promised not to send any. Publishing Never releases them.
			if k.now < until && until != Never {
				k.now = until
			}
			sh.storeHorizon(Never)
			sh.done = true
			s.notify()
		}
	}
	return progressed
}

// runSeq is the sequential executor: one goroutine interleaves all shards
// in global (event time, shard index) order. Executing the globally
// earliest event is always safe — any message it posts is timestamped at
// the poster's current clock, which is no earlier than every other shard's
// next event — so no horizon bookkeeping is needed. The per-kernel merge
// rules (message sequence keys, the tie tripwire) are the same as the
// threaded executor's, so both produce identical results.
func (s *ShardSet) runSeq(until Time) error {
	mailSeen := s.mailGen.Load() - 1 // force the first drain
	for !s.stopped.Load() {
		if g := s.mailGen.Load(); g != mailSeen {
			mailSeen = g
			for _, sh := range s.shards {
				sh.drain()
			}
		}
		best := -1
		bt := Never
		var second Time = Never
		for i, sh := range s.shards {
			ev := sh.k.peekLive()
			if ev == nil {
				continue
			}
			if best < 0 || ev.at < bt {
				second = bt
				best, bt = i, ev.at
			} else if ev.at < second {
				second = ev.at
			}
		}
		if best < 0 || bt > until {
			break
		}
		sh := s.shards[best]
		// Step this shard while it stays strictly ahead of every other
		// shard and posts no mail, amortizing the min-scan across bursts.
		for {
			ev := sh.k.peekLive()
			if ev == nil || ev.at > until {
				break
			}
			if ev.seq >= msgSeqBit && ev.at == sh.k.lastLocalAt {
				return ErrShardTie
			}
			sh.k.Step()
			if !s.countEvent(sh) {
				return s.failure()
			}
			if s.stopped.Load() || s.mailGen.Load() != mailSeen {
				break
			}
			if next := sh.k.peekLive(); next == nil || next.at >= second {
				break
			}
		}
	}
	if err := s.failure(); err != nil {
		return err
	}
	if !s.stopped.Load() && until != Never {
		for _, sh := range s.shards {
			if sh.k.now < until {
				sh.k.now = until
			}
		}
	}
	return nil
}
