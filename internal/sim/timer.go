package sim

// Timer is a resettable one-shot timer on the simulation clock, the building
// block for protocol timeouts (route expiry, voting-round deadlines, beacon
// periods). The zero value is not usable; use NewTimer.
//
// Timers ride the TimerHandle fast path: arming costs one queue push and
// Stop tombstones the pending event in place, so the kernel's byID
// cancellation map is never touched — timer events consequently do not
// appear in Kernel.Pending.
type Timer struct {
	k    *Kernel
	fn   func()
	wrap func() // built once; Reset would otherwise allocate a closure per arming
	h    TimerHandle
	at   Time
}

// NewTimer returns a stopped timer that runs fn on the kernel when it fires.
func NewTimer(k *Kernel, fn func()) *Timer {
	t := &Timer{k: k, fn: fn}
	t.wrap = func() {
		t.h = TimerHandle{}
		t.fn()
	}
	return t
}

// Reset (re)arms the timer to fire after delay, cancelling any pending
// firing.
func (t *Timer) Reset(delay Duration) {
	t.Stop()
	t.at = t.k.Now() + delay
	t.h = t.k.ScheduleFireHandle(delay, t.wrap)
}

// Stop cancels a pending firing. It reports whether a firing was pending.
func (t *Timer) Stop() bool {
	ok := t.k.CancelHandle(t.h)
	t.h = TimerHandle{}
	return ok
}

// Active reports whether a firing is pending.
func (t *Timer) Active() bool { return t.h.Active() }

// Deadline returns the time of the pending firing; meaningful only while
// Active.
func (t *Timer) Deadline() Time { return t.at }

// Ticker invokes fn every period until stopped. Periods may be jittered per
// tick via the optional jitter function, which returns an extra delay to add
// to the nominal period (protocols use this to avoid synchronized beacon
// collisions). Like Timer, tickers schedule on the handle fast path.
type Ticker struct {
	k       *Kernel
	fn      func()
	period  Duration
	jitter  func() Duration
	h       TimerHandle
	stopped bool
}

// NewTicker returns a started ticker; the first tick fires after an initial
// delay of period (plus jitter).
func NewTicker(k *Kernel, period Duration, jitter func() Duration, fn func()) *Ticker {
	t := &Ticker{k: k, fn: fn, period: period, jitter: jitter}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	d := t.period
	if t.jitter != nil {
		d += t.jitter()
	}
	t.h = t.k.ScheduleFireHandle(d, t.tick)
}

func (t *Ticker) tick() {
	t.h = TimerHandle{}
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.arm()
	}
}

// Stop halts future ticks. A tick currently executing completes.
func (t *Ticker) Stop() {
	t.stopped = true
	t.k.CancelHandle(t.h)
	t.h = TimerHandle{}
}
