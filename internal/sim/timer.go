package sim

// Timer is a resettable one-shot timer on the simulation clock, the building
// block for protocol timeouts (route expiry, voting-round deadlines, beacon
// periods). The zero value is not usable; use NewTimer.
type Timer struct {
	k    *Kernel
	fn   func()
	wrap func() // built once; Reset would otherwise allocate a closure per arming
	id   EventID
	at   Time
}

// NewTimer returns a stopped timer that runs fn on the kernel when it fires.
func NewTimer(k *Kernel, fn func()) *Timer {
	t := &Timer{k: k, fn: fn}
	t.wrap = func() {
		t.id = 0
		t.fn()
	}
	return t
}

// Reset (re)arms the timer to fire after delay, cancelling any pending
// firing.
func (t *Timer) Reset(delay Duration) {
	t.Stop()
	t.at = t.k.Now() + delay
	t.id = t.k.MustSchedule(delay, t.wrap)
}

// Stop cancels a pending firing. It reports whether a firing was pending.
func (t *Timer) Stop() bool {
	if t.id == 0 {
		return false
	}
	ok := t.k.Cancel(t.id)
	t.id = 0
	return ok
}

// Active reports whether a firing is pending.
func (t *Timer) Active() bool { return t.id != 0 }

// Deadline returns the time of the pending firing; meaningful only while
// Active.
func (t *Timer) Deadline() Time { return t.at }

// Ticker invokes fn every period until stopped. Periods may be jittered per
// tick via the optional jitter function, which returns an extra delay to add
// to the nominal period (protocols use this to avoid synchronized beacon
// collisions).
type Ticker struct {
	k       *Kernel
	fn      func()
	period  Duration
	jitter  func() Duration
	id      EventID
	stopped bool
}

// NewTicker returns a started ticker; the first tick fires after an initial
// delay of period (plus jitter).
func NewTicker(k *Kernel, period Duration, jitter func() Duration, fn func()) *Ticker {
	t := &Ticker{k: k, fn: fn, period: period, jitter: jitter}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	d := t.period
	if t.jitter != nil {
		d += t.jitter()
	}
	t.id = t.k.MustSchedule(d, t.tick)
}

func (t *Ticker) tick() {
	t.id = 0
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.arm()
	}
}

// Stop halts future ticks. A tick currently executing completes.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.id != 0 {
		t.k.Cancel(t.id)
		t.id = 0
	}
}
