package radio

// Sharded channel operation: the transceiver population is partitioned into
// vertical stripes of grid-cell columns, each owned by one shard of a
// sim.ShardSet. All state a transmission touches lives with the shard that
// owns the transceiver it belongs to:
//
//   - Sender-side state (txUntil, the sender's own arrivals, tx energy,
//     FramesSent) is touched on the sender's kernel, inside the MAC's
//     tx-flagged event.
//   - Receiver-side state (the receiver's arrival list, collision marks, rx
//     energy, delivery counters) is touched on the receiver's kernel — for
//     same-shard receivers directly during the send, for cross-shard
//     receivers by a message posted at the send instant. Registering remote
//     arrivals at the send instant (not first-bit arrival) matters: carrier
//     sense must see a neighbor's transmission from the moment it starts,
//     exactly as the sequential channel does.
//
// Because the grid's cell edge equals the transmission range, a stripe is
// at least one range wide, so cross-shard traffic only ever targets the two
// adjacent stripes — matching the ShardSet's neighbor topology — and every
// node that can hear across a boundary is within one range of it (a border
// node). Only border nodes' MAC events are tx-flagged, so interior nodes
// pay nothing for sharding.
//
// The sequential full-scan and mark-scan paths cost O(N) per send; at 10k+
// nodes that scan dominates the run. The sharded path instead collects the
// 3×3 cell neighborhood's members and sorts them (O(K log K) for K
// candidates), visiting receivers in the same ascending-ID order as the
// sequential paths — which is what keeps per-receiver event sequences, and
// therefore results, identical.

import (
	"fmt"
	"math"
	"slices"

	"innercircle/internal/geo"
	"innercircle/internal/sim"
)

// chanShard is one shard's slice of the channel: its kernel, its counters,
// its arrival free list, and its callback closures (built once, so the hot
// path allocates no per-event closures).
type chanShard struct {
	k          *sim.Kernel
	idx        int
	stats      Stats
	arrPool    []*arrival
	finishFn   func(any)
	registerFn func(any)
	cand       []int32
}

// remoteArrival carries one cross-shard transmission registration. It is
// immutable after posting: the sender fills it, the receiving shard reads
// it.
type remoteArrival struct {
	frame Frame
	from  ID
	to    *Transceiver
	start sim.Time
	end   sim.Time
	air   sim.Duration
}

// NewChannelSharded returns a channel whose transceivers are partitioned
// across the kernels of set. ownerOf maps a (static) position to its home
// shard index and whether it lies within one transmission range of a stripe
// boundary. The spatial index is pinned on (no adaptive probe: the sharded
// send path is built around cell-neighborhood iteration); IC_RADIO_INDEX=off
// still forces the full-scan cross-check path.
func NewChannelSharded(set *sim.ShardSet, params Params, ownerOf func(geo.Point) (shard int, border bool)) *Channel {
	if params.Range <= 0 {
		panic("radio: NewChannelSharded requires a positive transmission range")
	}
	c := NewChannel(set.Kernel(0), params)
	c.adaptive = false
	c.set = set
	c.ownerOf = ownerOf
	c.shardCtx = make([]*chanShard, set.Shards())
	for i := range c.shardCtx {
		sc := &chanShard{k: set.Kernel(i), idx: i}
		sc.finishFn = func(x any) {
			arr := x.(*arrival)
			c.finishSharded(sc, arr.to, arr)
		}
		sc.registerFn = func(x any) {
			c.register(sc, x.(*remoteArrival))
		}
		c.shardCtx[i] = sc
	}
	return c
}

// Sharded reports whether the channel runs partitioned across a shard set.
func (c *Channel) Sharded() bool { return c.shardCtx != nil }

// Border reports whether the transceiver sits within one transmission range
// of a stripe boundary on a sharded channel. Border nodes are the only ones
// whose transmissions can cross shards, so their MAC events must be
// tx-flagged (mac.MarkBorder).
func (t *Transceiver) Border() bool { return t.border }

// kernelFor returns the kernel that owns tr's events: its home shard's on a
// sharded channel, the channel's single kernel otherwise.
func (c *Channel) kernelFor(tr *Transceiver) *sim.Kernel {
	if c.shardCtx != nil {
		return c.shardCtx[tr.owner].k
	}
	return c.k
}

// attachSharded pins a new transceiver to its home shard. Sharding requires
// static placements: a mobile model's position evolves internal state that
// cannot be read across shards (and a node migrating between stripes would
// need ownership handoff), so mobile topologies run unsharded.
func (c *Channel) attachSharded(tr *Transceiver) {
	if !tr.static {
		panic(fmt.Sprintf("radio: transceiver %d is mobile; sharded channels require static placements", tr.id))
	}
	shard, border := c.ownerOf(tr.cachedPos)
	if shard < 0 || shard >= len(c.shardCtx) {
		panic(fmt.Sprintf("radio: transceiver %d mapped to shard %d of %d", tr.id, shard, len(c.shardCtx)))
	}
	tr.owner = int32(shard)
	tr.border = border
}

// candidates collects the members of the 3×3 cell neighborhood around src
// in ascending transceiver ID — the sequential paths' visit order. The
// grid's cells are immutable during a sharded run (every transceiver is
// static and binned at Attach), so concurrent reads from all shards are
// safe. The returned slice is the shard's scratch buffer.
func (sc *chanShard) candidates(g *gridIndex, src geo.Point) []int32 {
	out := sc.cand[:0]
	cx := int32(math.Floor(src.X * g.inv))
	cy := int32(math.Floor(src.Y * g.inv))
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			out = append(out, g.cells[g.keyAt(cx+dx, cy+dy)]...)
		}
	}
	slices.Sort(out)
	sc.cand = out
	return out
}

// sendSharded is Send on a sharded channel: sender-side bookkeeping on the
// sender's shard, then per-receiver registration — direct for same-shard
// receivers, posted at the send instant for cross-shard ones.
func (c *Channel) sendSharded(tr *Transceiver, f Frame) error {
	sc := c.shardCtx[tr.owner]
	now := sc.k.Now()
	if tr.down {
		return nil // a dead radio silently drops
	}
	if tr.txUntil > now {
		return ErrTxBusy
	}
	sc.stats.FramesSent++
	d := c.TxDuration(f.Bytes)
	tr.txUntil = now + d
	if tr.meter != nil {
		tr.meter.AddTx(d)
	}
	// Half-duplex: anything arriving at the sender is lost.
	for _, a := range tr.arrivals {
		if a.end > now {
			a.collided = true
		}
	}
	src := tr.cachedPos
	if c.useIndex {
		for _, i := range sc.candidates(c.grid, src) {
			c.propagateSharded(sc, c.trs[i], tr, f, src, now, d)
		}
	} else {
		for _, r := range c.trs {
			c.propagateSharded(sc, r, tr, f, src, now, d)
		}
	}
	return nil
}

// propagateSharded registers frame f (sent by tr from src) at receiver r.
// The in-range check runs sender-side on immutable positions; everything
// the registration mutates belongs to the receiver's shard.
func (c *Channel) propagateSharded(sc *chanShard, r, tr *Transceiver, f Frame, src geo.Point, now sim.Time, d sim.Duration) {
	if r == tr {
		return
	}
	dist := r.cachedPos.Dist(src)
	if dist > c.params.Range {
		return
	}
	prop := sim.Duration(0)
	if c.params.PropSpeed > 0 {
		prop = sim.Duration(dist / c.params.PropSpeed)
	}
	if r.owner == tr.owner {
		if r.down {
			return
		}
		arr := sc.newArrival()
		arr.frame, arr.from, arr.to = f, tr.id, r
		arr.start, arr.end = now+prop, now+prop+d
		c.registerArrival(sc, r, arr, d)
		return
	}
	// Cross-shard: the receiving shard applies the registration at the send
	// instant. Posting is only legal inside a tx-flagged event, which the
	// border geometry guarantees this is (a sender in range of another
	// stripe is in range of the boundary, hence border-marked).
	rc := c.shardCtx[r.owner]
	c.set.Post(sc.k, int(r.owner), now, rc.registerFn, &remoteArrival{
		frame: f, from: tr.id, to: r,
		start: now + prop, end: now + prop + d, air: d,
	})
}

// register applies a cross-shard registration on the receiver's shard.
func (c *Channel) register(rc *chanShard, m *remoteArrival) {
	r := m.to
	if r.down {
		return
	}
	arr := rc.newArrival()
	arr.frame, arr.from, arr.to = m.frame, m.from, r
	arr.start, arr.end = m.start, m.end
	c.registerArrival(rc, r, arr, m.air)
}

// registerArrival is the receiver-side half of a transmission, identical in
// effect to the sequential propagate: collision marking, the in-flight
// list, rx energy, and the resolution event, all on r's home shard.
func (c *Channel) registerArrival(rc *chanShard, r *Transceiver, arr *arrival, air sim.Duration) {
	applyHalfDuplex(r, arr)
	for _, other := range r.arrivals {
		if other.end > arr.start && other.start < arr.end {
			other.collided = true
			arr.collided = true
		}
	}
	r.arrivals = append(r.arrivals, arr)
	if r.meter != nil {
		r.meter.AddRx(air)
	}
	rc.k.ScheduleFireArg(arr.end-rc.k.Now(), rc.finishFn, arr)
}

// newArrival returns a zeroed arrival from the shard's free list.
func (sc *chanShard) newArrival() *arrival {
	if n := len(sc.arrPool); n > 0 {
		arr := sc.arrPool[n-1]
		sc.arrPool[n-1] = nil
		sc.arrPool = sc.arrPool[:n-1]
		return arr
	}
	return &arrival{}
}

// finishSharded resolves one arrival at receiver r on r's home shard;
// the sharded counterpart of finish.
func (c *Channel) finishSharded(sc *chanShard, r *Transceiver, arr *arrival) {
	for i, a := range r.arrivals {
		if a == arr {
			last := len(r.arrivals) - 1
			r.arrivals[i] = r.arrivals[last]
			r.arrivals[last] = nil
			r.arrivals = r.arrivals[:last]
			break
		}
	}
	applyHalfDuplex(r, arr)
	frame, from, collided := arr.frame, arr.from, arr.collided
	*arr = arrival{}
	sc.arrPool = append(sc.arrPool, arr)
	if collided {
		sc.stats.FramesCollided++
		return
	}
	if r.down {
		return
	}
	sc.stats.FramesDelivered++
	if r.recv != nil {
		r.recv(frame, from)
	}
}

// MergeShardStats folds the per-shard counters into Channel.Stats. Call it
// after the shard set has finished running (it reads state owned by every
// shard); harvest code then sees whole-channel totals exactly as in a
// sequential run.
func (c *Channel) MergeShardStats() {
	if c.shardCtx == nil {
		return
	}
	total := Stats{}
	for _, sc := range c.shardCtx {
		total.FramesSent += sc.stats.FramesSent
		total.FramesDelivered += sc.stats.FramesDelivered
		total.FramesCollided += sc.stats.FramesCollided
	}
	c.Stats = total
}
