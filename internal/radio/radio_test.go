package radio

import (
	"errors"
	"testing"

	"innercircle/internal/energy"
	"innercircle/internal/geo"
	"innercircle/internal/mobility"
	"innercircle/internal/sim"
)

// testNet builds a channel with transceivers at fixed positions; received
// payloads are appended per node.
func testNet(k *sim.Kernel, params Params, positions []geo.Point) (*Channel, []*Transceiver, [][]any) {
	ch := NewChannel(k, params)
	trs := make([]*Transceiver, len(positions))
	got := make([][]any, len(positions))
	for i, p := range positions {
		i := i
		trs[i] = ch.Attach(mobility.Static(p), nil, func(f Frame, _ ID) {
			got[i] = append(got[i], f.Payload)
		})
	}
	return ch, trs, got
}

func TestDeliveryWithinRange(t *testing.T) {
	k := sim.NewKernel()
	ch, trs, got := testNet(k, Default80211(), []geo.Point{{X: 0}, {X: 100}, {X: 400}})
	if err := ch.Send(trs[0], Frame{Bytes: 512, Payload: "hello"}); err != nil {
		t.Fatal(err)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got[1]) != 1 || got[1][0] != "hello" {
		t.Fatalf("in-range node got %v, want [hello]", got[1])
	}
	if len(got[2]) != 0 {
		t.Fatalf("out-of-range node got %v, want nothing", got[2])
	}
	if len(got[0]) != 0 {
		t.Fatal("sender received its own frame")
	}
}

func TestTxDuration(t *testing.T) {
	k := sim.NewKernel()
	ch := NewChannel(k, Params{Range: 250, Bitrate: 2e6, PropSpeed: 0})
	// 512 bytes at 2 Mb/s = 4096 bits / 2e6 = 2.048 ms.
	want := sim.Duration(2.048e-3)
	if got := ch.TxDuration(512); got != want {
		t.Fatalf("TxDuration(512) = %v, want %v", got, want)
	}
}

func TestCollisionAtCommonReceiver(t *testing.T) {
	k := sim.NewKernel()
	// A and C both in range of B; A and C transmit simultaneously.
	ch, trs, got := testNet(k, Default80211(), []geo.Point{{X: 0}, {X: 200}, {X: 400}})
	k.MustSchedule(1, func() {
		if err := ch.Send(trs[0], Frame{Bytes: 512, Payload: "fromA"}); err != nil {
			t.Error(err)
		}
		if err := ch.Send(trs[2], Frame{Bytes: 512, Payload: "fromC"}); err != nil {
			t.Error(err)
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got[1]) != 0 {
		t.Fatalf("B decoded %v despite collision", got[1])
	}
	if ch.Stats.FramesCollided == 0 {
		t.Fatal("no collisions recorded")
	}
	// A is out of range of C, so A still hears nothing but also no delivery.
	if len(got[0]) != 0 || len(got[2]) != 0 {
		t.Fatalf("A/C got %v/%v, want nothing (out of mutual range)", got[0], got[2])
	}
}

func TestNoCollisionWhenSeparated(t *testing.T) {
	k := sim.NewKernel()
	// Two disjoint pairs far apart transmit simultaneously.
	ch, trs, got := testNet(k, Default80211(),
		[]geo.Point{{X: 0}, {X: 100}, {X: 5000}, {X: 5100}})
	k.MustSchedule(1, func() {
		_ = ch.Send(trs[0], Frame{Bytes: 512, Payload: "p1"})
		_ = ch.Send(trs[2], Frame{Bytes: 512, Payload: "p2"})
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got[1]) != 1 || len(got[3]) != 1 {
		t.Fatalf("spatially separated transmissions interfered: %v %v", got[1], got[3])
	}
}

func TestHalfDuplexSenderMissesArrivals(t *testing.T) {
	k := sim.NewKernel()
	ch, trs, got := testNet(k, Default80211(), []geo.Point{{X: 0}, {X: 100}})
	// Both transmit at the same instant: neither can decode the other.
	k.MustSchedule(1, func() {
		_ = ch.Send(trs[0], Frame{Bytes: 512, Payload: "a"})
		_ = ch.Send(trs[1], Frame{Bytes: 512, Payload: "b"})
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != 0 || len(got[1]) != 0 {
		t.Fatalf("half-duplex violated: %v %v", got[0], got[1])
	}
}

func TestTxBusyError(t *testing.T) {
	k := sim.NewKernel()
	ch, trs, _ := testNet(k, Default80211(), []geo.Point{{X: 0}, {X: 100}})
	if err := ch.Send(trs[0], Frame{Bytes: 512}); err != nil {
		t.Fatal(err)
	}
	if err := ch.Send(trs[0], Frame{Bytes: 512}); !errors.Is(err, ErrTxBusy) {
		t.Fatalf("second Send err = %v, want ErrTxBusy", err)
	}
}

func TestBusyCarrierSense(t *testing.T) {
	k := sim.NewKernel()
	ch, trs, _ := testNet(k, Default80211(), []geo.Point{{X: 0}, {X: 100}, {X: 400}})
	if ch.Busy(trs[1]) {
		t.Fatal("idle channel sensed busy")
	}
	if err := ch.Send(trs[0], Frame{Bytes: 512}); err != nil {
		t.Fatal(err)
	}
	// Immediately after send: node 1 (in range) senses busy; node 2 does not.
	k.MustSchedule(0.001, func() {
		if !ch.Busy(trs[0]) {
			t.Error("transmitting node should sense busy")
		}
		if !ch.Busy(trs[1]) {
			t.Error("in-range node should sense busy during transmission")
		}
		if ch.Busy(trs[2]) {
			t.Error("out-of-range node should sense idle")
		}
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if ch.Busy(trs[1]) {
		t.Fatal("channel still busy after transmission ended")
	}
}

func TestEnergyAccounting(t *testing.T) {
	k := sim.NewKernel()
	ch := NewChannel(k, Default80211())
	mTx := energy.NewMeter(energy.NS2Default())
	mRx := energy.NewMeter(energy.NS2Default())
	a := ch.Attach(mobility.Static(geo.Point{X: 0}), mTx, nil)
	ch.Attach(mobility.Static(geo.Point{X: 100}), mRx, nil)
	if err := ch.Send(a, Frame{Bytes: 512}); err != nil {
		t.Fatal(err)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	d := ch.TxDuration(512)
	if mTx.TxTime() != d {
		t.Fatalf("sender tx time = %v, want %v", mTx.TxTime(), d)
	}
	if mRx.RxTime() != d {
		t.Fatalf("receiver rx time = %v, want %v", mRx.RxTime(), d)
	}
}

func TestDownRadio(t *testing.T) {
	k := sim.NewKernel()
	ch, trs, got := testNet(k, Default80211(), []geo.Point{{X: 0}, {X: 100}})
	trs[1].SetDown(true)
	_ = ch.Send(trs[0], Frame{Bytes: 512, Payload: "x"})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got[1]) != 0 {
		t.Fatal("down radio received a frame")
	}
	trs[1].SetDown(false)
	trs[0].SetDown(true)
	if err := ch.Send(trs[0], Frame{Bytes: 512, Payload: "y"}); err != nil {
		t.Fatal(err)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got[1]) != 0 {
		t.Fatal("down radio transmitted a frame")
	}
}

func TestSequentialFramesBothDelivered(t *testing.T) {
	k := sim.NewKernel()
	ch, trs, got := testNet(k, Default80211(), []geo.Point{{X: 0}, {X: 100}})
	_ = ch.Send(trs[0], Frame{Bytes: 512, Payload: 1})
	k.MustSchedule(0.01, func() {
		_ = ch.Send(trs[0], Frame{Bytes: 512, Payload: 2})
	})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got[1]) != 2 {
		t.Fatalf("got %v, want two frames", got[1])
	}
}

func TestStatsCounters(t *testing.T) {
	k := sim.NewKernel()
	ch, trs, _ := testNet(k, Default80211(), []geo.Point{{X: 0}, {X: 100}})
	_ = ch.Send(trs[0], Frame{Bytes: 512})
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if ch.Stats.FramesSent != 1 || ch.Stats.FramesDelivered != 1 {
		t.Fatalf("stats = %+v, want 1 sent 1 delivered", ch.Stats)
	}
}

func TestMovingNodeLeavesRange(t *testing.T) {
	k := sim.NewKernel()
	ch := NewChannel(k, Default80211())
	var got int
	// Node b moves away at 100 m/s along x starting at 200 m.
	bPos := &linear{start: geo.Point{X: 200}, vx: 100}
	a := ch.Attach(mobility.Static(geo.Point{X: 0}), nil, nil)
	ch.Attach(bPos, nil, func(Frame, ID) { got++ })
	// At t=0 b is in range (200 < 250); at t=2 it is at 400, out of range.
	_ = ch.Send(a, Frame{Bytes: 512})
	k.MustSchedule(2, func() { _ = ch.Send(a, Frame{Bytes: 512}) })
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("moving node received %d frames, want 1", got)
	}
}

// linear is a constant-velocity mobility model for tests.
type linear struct {
	start geo.Point
	vx    float64
}

func (l *linear) Pos(t sim.Time) geo.Point {
	return geo.Point{X: l.start.X + l.vx*float64(t), Y: l.start.Y}
}
