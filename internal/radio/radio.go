// Package radio models the wireless physical layer: unit-disk propagation
// with a fixed transmission range, transmission timing derived from frame
// size and bitrate, half-duplex transceivers, and collisions when
// transmissions overlap at a receiver. It corresponds to the 802.11
// physical layer configuration of the paper's ns-2 experiments (250 m range
// for the ad hoc scenario, 40 m for the sensor scenario, 2 Mb/s).
package radio

import (
	"errors"
	"os"

	"innercircle/internal/energy"
	"innercircle/internal/geo"
	"innercircle/internal/mobility"
	"innercircle/internal/sim"
)

// Params configure the physical layer.
type Params struct {
	// Range is the transmission (and carrier-sense) radius in metres.
	Range float64 `json:"range"`
	// Bitrate is the channel rate in bits per second.
	Bitrate float64 `json:"bitrate"`
	// PropSpeed is the signal propagation speed in m/s.
	PropSpeed float64 `json:"prop_speed"`
}

// Default80211 returns the parameters used by the paper's ad hoc experiment.
func Default80211() Params {
	return Params{Range: 250, Bitrate: 2e6, PropSpeed: 3e8}
}

// Frame is the unit of transmission on the channel. Bytes drives airtime;
// Payload is opaque to the physical layer.
type Frame struct {
	Bytes   int
	Payload any
}

// ErrTxBusy is returned when a transceiver is asked to transmit while a
// previous transmission is still on the air.
var ErrTxBusy = errors.New("radio: transceiver already transmitting")

// ID identifies a transceiver on its channel.
type ID int

// arrival is a signal in flight toward one receiver. Arrivals are recycled
// through the channel's free list when they resolve; to points back at the
// receiver so the resolution callback needs no per-arrival closure.
type arrival struct {
	frame    Frame
	from     ID
	to       *Transceiver
	start    sim.Time
	end      sim.Time
	collided bool
}

// Transceiver is one radio attached to a Channel.
type Transceiver struct {
	id       ID
	pos      mobility.Model
	meter    *energy.Meter
	recv     func(Frame, ID)
	txUntil  sim.Time
	arrivals []*arrival
	down     bool

	// Position cache: static transceivers hold their fixed position in
	// cachedPos forever; mobile ones cache the last Pos evaluation so every
	// query at the same virtual time reuses it.
	static    bool
	cachedPos geo.Point
	cachedAt  sim.Time
	hasCache  bool

	// Spatial-index bin (see grid.go).
	binKey cellKey
	inGrid bool

	// Sharded-channel placement (see shard.go): the index of the shard that
	// owns this transceiver's events, and whether it sits within one
	// transmission range of a stripe boundary.
	owner  int32
	border bool
}

// ID returns the transceiver's channel-local identifier.
func (t *Transceiver) ID() ID { return t.id }

// SetDown disables (true) or enables (false) the radio. A down radio
// neither transmits nor receives; used to model crashed nodes.
func (t *Transceiver) SetDown(down bool) { t.down = down }

// Channel is the shared medium connecting a set of transceivers. It is
// driven by the simulation kernel and is not safe for concurrent use.
type Channel struct {
	k      *sim.Kernel
	params Params
	trs    []*Transceiver

	// grid is the spatial neighbor index (nil when Range <= 0); useIndex
	// gates queries so the linear scan stays available as a cross-check
	// (IC_RADIO_INDEX=off, or SetIndexEnabled).
	grid     *gridIndex
	useIndex bool

	// The index pays off only when it prunes more distance checks than the
	// per-epoch mobile re-bin costs. Both paths are behaviorally identical,
	// so the channel is free to pick whichever is cheaper: while adaptive,
	// the first probeSends indexed sends sample the candidate count, and the
	// index is dropped for the rest of the run if the observed pruning
	// (scanned − candidates) does not exceed the mobile population it has to
	// re-bin each epoch. IC_RADIO_INDEX=on|off and SetIndexEnabled pin the
	// choice and skip the probe.
	adaptive  bool
	probes    int
	probeCand uint64
	probeScan uint64

	// finishFn is the arrival-resolution callback, built once so scheduling
	// a delivery allocates no per-frame closure.
	finishFn func(any)
	// arrPool recycles resolved arrival structs.
	arrPool []*arrival

	// Sharded operation (see shard.go): when shardCtx is non-nil the channel
	// is partitioned across the kernels of set, ownerOf maps a static
	// position to its home shard, and Send takes the sharded path.
	set      *sim.ShardSet
	ownerOf  func(geo.Point) (shard int, border bool)
	shardCtx []*chanShard

	// Stats counts physical-layer activity for the whole channel.
	Stats Stats
}

// Stats aggregates channel counters.
type Stats struct {
	FramesSent      uint64
	FramesDelivered uint64
	FramesCollided  uint64
}

// probeSends is the number of indexed sends an adaptive channel samples
// before deciding whether the index prunes enough to keep.
const probeSends = 128

// NewChannel returns an empty channel on kernel k. The spatial neighbor
// index is on by default in adaptive mode (it is behaviorally invisible,
// and the channel falls back to the linear scan if the deployment geometry
// defeats pruning). The environment knob IC_RADIO_INDEX=off forces the
// full-scan path for cross-checking; IC_RADIO_INDEX=on pins the index on.
func NewChannel(k *sim.Kernel, params Params) *Channel {
	c := &Channel{k: k, params: params}
	if params.Range > 0 {
		c.grid = newGridIndex(params.Range)
		switch os.Getenv("IC_RADIO_INDEX") {
		case "off":
			c.useIndex = false
		case "on":
			c.useIndex = true
		default:
			c.useIndex = true
			c.adaptive = true
		}
	}
	c.finishFn = func(x any) {
		arr := x.(*arrival)
		c.finish(arr.to, arr)
	}
	return c
}

// SetIndexEnabled turns the spatial neighbor index on or off, pinning the
// choice (no adaptive fallback). The index is maintained either way, so
// toggling is valid at any point; equivalence tests use this to compare
// indexed and full-scan runs in-process.
func (c *Channel) SetIndexEnabled(on bool) {
	c.useIndex = on && c.grid != nil
	c.adaptive = false
}

// Attach adds a transceiver whose position follows pos, whose energy is
// accounted to meter (may be nil), and whose successfully received frames
// are delivered to recv along with the sender's ID.
func (c *Channel) Attach(pos mobility.Model, meter *energy.Meter, recv func(Frame, ID)) *Transceiver {
	tr := &Transceiver{
		id:       ID(len(c.trs)),
		pos:      pos,
		meter:    meter,
		recv:     recv,
		arrivals: make([]*arrival, 0, 8),
	}
	if s, ok := pos.(mobility.Static); ok {
		tr.static = true
		tr.cachedPos = geo.Point(s)
	}
	c.trs = append(c.trs, tr)
	if c.grid != nil {
		c.grid.add(tr)
	}
	if c.shardCtx != nil {
		c.attachSharded(tr)
	}
	return tr
}

// posAt returns tr's position at now, consulting the per-transceiver cache.
// Virtual time never decreases, so an exact-timestamp match is safe.
func (c *Channel) posAt(tr *Transceiver, now sim.Time) geo.Point {
	if tr.static {
		return tr.cachedPos
	}
	if tr.hasCache && tr.cachedAt == now {
		return tr.cachedPos
	}
	p := tr.pos.Pos(now)
	tr.cachedPos = p
	tr.cachedAt = now
	tr.hasCache = true
	return p
}

// TxDuration returns the airtime of a frame of the given size.
func (c *Channel) TxDuration(bytes int) sim.Duration {
	return sim.Duration(float64(bytes*8) / c.params.Bitrate)
}

// Busy reports whether tr senses the channel busy: it is transmitting, or a
// signal from a node in range is currently arriving.
func (c *Channel) Busy(tr *Transceiver) bool {
	now := c.kernelFor(tr).Now()
	if tr.txUntil > now {
		return true
	}
	for _, a := range tr.arrivals {
		if a.end > now {
			return true
		}
	}
	return false
}

// Send starts transmitting frame from tr. Delivery (or collision) at each
// in-range receiver resolves when the frame's airtime ends. Send does not
// carrier-sense; that is the MAC's job.
func (c *Channel) Send(tr *Transceiver, f Frame) error {
	if c.shardCtx != nil {
		return c.sendSharded(tr, f)
	}
	now := c.k.Now()
	if tr.down {
		return nil // a dead radio silently drops
	}
	if tr.txUntil > now {
		return ErrTxBusy
	}
	c.Stats.FramesSent++
	d := c.TxDuration(f.Bytes)
	tr.txUntil = now + d
	if tr.meter != nil {
		tr.meter.AddTx(d)
	}
	// Half-duplex: anything arriving at the sender is lost.
	for _, a := range tr.arrivals {
		if a.end > now {
			a.collided = true
		}
	}
	src := c.posAt(tr, now)
	if c.useIndex {
		// Spatial index: only the 3×3 cell neighborhood can hold in-range
		// receivers. Candidates are stamped and then visited in c.trs
		// order — the full-scan visit order — so the two paths schedule
		// identical event sequences.
		cand := c.grid.markNeighbors(c, src, now)
		for i, r := range c.trs {
			if c.grid.marked(int32(i)) {
				c.propagate(r, tr, f, src, now, d)
			}
		}
		if c.adaptive {
			c.probeDecide(cand)
		}
	} else {
		for _, r := range c.trs {
			c.propagate(r, tr, f, src, now, d)
		}
	}
	return nil
}

// probeDecide accumulates one indexed send's candidate count and, once
// probeSends sends have been sampled, commits to the index or the full scan
// for the rest of the run. The index earns its keep when the distance
// checks it prunes (scanned − candidates) outnumber the mobile transceivers
// it must re-bin every virtual-time epoch; otherwise the full scan is
// cheaper. The decision depends only on deterministic simulation state, so
// replays stay reproducible.
func (c *Channel) probeDecide(cand int) {
	c.probes++
	c.probeCand += uint64(cand)
	c.probeScan += uint64(len(c.trs))
	if c.probes < probeSends {
		return
	}
	c.adaptive = false
	pruned := c.probeScan - c.probeCand
	if pruned <= uint64(c.probes*len(c.grid.mobile)) {
		c.useIndex = false
	}
}

// r is the sender, down, or out of range) and schedules its resolution.
func (c *Channel) propagate(r, tr *Transceiver, f Frame, src geo.Point, now sim.Time, d sim.Duration) {
	if r == tr || r.down {
		return
	}
	dist := c.posAt(r, now).Dist(src)
	if dist > c.params.Range {
		return
	}
	prop := sim.Duration(0)
	if c.params.PropSpeed > 0 {
		prop = sim.Duration(dist / c.params.PropSpeed)
	}
	arr := c.newArrival()
	arr.frame, arr.from, arr.to = f, tr.id, r
	arr.start, arr.end = now+prop, now+prop+d
	// Receiver transmitting when the arrival starts corrupts it.
	applyHalfDuplex(r, arr)
	// Overlap with any other in-flight arrival corrupts both.
	for _, other := range r.arrivals {
		if other.end > arr.start && other.start < arr.end {
			other.collided = true
			arr.collided = true
		}
	}
	r.arrivals = append(r.arrivals, arr)
	if r.meter != nil {
		r.meter.AddRx(d)
	}
	c.k.ScheduleFireArg(arr.end-now, c.finishFn, arr)
}

// applyHalfDuplex marks arr collided when its receiver's own transmission
// overlaps the arrival's start — the half-duplex rule. Send applies it for
// transmissions already underway when the arrival begins; finish re-applies
// it for ones that began mid-arrival. One rule, two sampling points.
func applyHalfDuplex(r *Transceiver, arr *arrival) {
	if r.txUntil > arr.start {
		arr.collided = true
	}
}

// newArrival returns a zeroed arrival from the free list (or a fresh one).
func (c *Channel) newArrival() *arrival {
	if n := len(c.arrPool); n > 0 {
		arr := c.arrPool[n-1]
		c.arrPool[n-1] = nil
		c.arrPool = c.arrPool[:n-1]
		return arr
	}
	return &arrival{}
}

// finish resolves one arrival at receiver r.
func (c *Channel) finish(r *Transceiver, arr *arrival) {
	// Remove arr from r's in-flight list. Swap-remove: list order carries
	// no meaning (overlap checks are symmetric), and under MAC contention
	// the list can grow long enough for the O(n) splice to show up in
	// sweep profiles.
	for i, a := range r.arrivals {
		if a == arr {
			last := len(r.arrivals) - 1
			r.arrivals[i] = r.arrivals[last]
			r.arrivals[last] = nil
			r.arrivals = r.arrivals[:last]
			break
		}
	}
	// The receiver may have started transmitting mid-arrival.
	applyHalfDuplex(r, arr)
	frame, from, collided := arr.frame, arr.from, arr.collided
	*arr = arrival{}
	c.arrPool = append(c.arrPool, arr)
	if collided {
		c.Stats.FramesCollided++
		return
	}
	if r.down {
		return
	}
	c.Stats.FramesDelivered++
	if r.recv != nil {
		r.recv(frame, from)
	}
}

// InRange reports whether transceivers a and b are currently within
// transmission range; used by topology-oracle test helpers.
func (c *Channel) InRange(a, b *Transceiver) bool {
	now := c.kernelFor(a).Now()
	return c.posAt(a, now).Dist(c.posAt(b, now)) <= c.params.Range
}

// Pos returns tr's current position.
func (c *Channel) Pos(tr *Transceiver) geo.Point { return c.posAt(tr, c.kernelFor(tr).Now()) }

// Params returns the channel's physical-layer parameters.
func (c *Channel) Params() Params { return c.params }
