// Package radio models the wireless physical layer: unit-disk propagation
// with a fixed transmission range, transmission timing derived from frame
// size and bitrate, half-duplex transceivers, and collisions when
// transmissions overlap at a receiver. It corresponds to the 802.11
// physical layer configuration of the paper's ns-2 experiments (250 m range
// for the ad hoc scenario, 40 m for the sensor scenario, 2 Mb/s).
package radio

import (
	"errors"

	"innercircle/internal/energy"
	"innercircle/internal/geo"
	"innercircle/internal/mobility"
	"innercircle/internal/sim"
)

// Params configure the physical layer.
type Params struct {
	// Range is the transmission (and carrier-sense) radius in metres.
	Range float64
	// Bitrate is the channel rate in bits per second.
	Bitrate float64
	// PropSpeed is the signal propagation speed in m/s.
	PropSpeed float64
}

// Default80211 returns the parameters used by the paper's ad hoc experiment.
func Default80211() Params {
	return Params{Range: 250, Bitrate: 2e6, PropSpeed: 3e8}
}

// Frame is the unit of transmission on the channel. Bytes drives airtime;
// Payload is opaque to the physical layer.
type Frame struct {
	Bytes   int
	Payload any
}

// ErrTxBusy is returned when a transceiver is asked to transmit while a
// previous transmission is still on the air.
var ErrTxBusy = errors.New("radio: transceiver already transmitting")

// ID identifies a transceiver on its channel.
type ID int

// arrival is a signal in flight toward one receiver.
type arrival struct {
	frame    Frame
	from     ID
	start    sim.Time
	end      sim.Time
	collided bool
}

// Transceiver is one radio attached to a Channel.
type Transceiver struct {
	id       ID
	pos      mobility.Model
	meter    *energy.Meter
	recv     func(Frame, ID)
	txUntil  sim.Time
	arrivals []*arrival
	down     bool
}

// ID returns the transceiver's channel-local identifier.
func (t *Transceiver) ID() ID { return t.id }

// SetDown disables (true) or enables (false) the radio. A down radio
// neither transmits nor receives; used to model crashed nodes.
func (t *Transceiver) SetDown(down bool) { t.down = down }

// Channel is the shared medium connecting a set of transceivers. It is
// driven by the simulation kernel and is not safe for concurrent use.
type Channel struct {
	k      *sim.Kernel
	params Params
	trs    []*Transceiver

	// Stats counts physical-layer activity for the whole channel.
	Stats Stats
}

// Stats aggregates channel counters.
type Stats struct {
	FramesSent      uint64
	FramesDelivered uint64
	FramesCollided  uint64
}

// NewChannel returns an empty channel on kernel k.
func NewChannel(k *sim.Kernel, params Params) *Channel {
	return &Channel{k: k, params: params}
}

// Attach adds a transceiver whose position follows pos, whose energy is
// accounted to meter (may be nil), and whose successfully received frames
// are delivered to recv along with the sender's ID.
func (c *Channel) Attach(pos mobility.Model, meter *energy.Meter, recv func(Frame, ID)) *Transceiver {
	tr := &Transceiver{
		id:    ID(len(c.trs)),
		pos:   pos,
		meter: meter,
		recv:  recv,
	}
	c.trs = append(c.trs, tr)
	return tr
}

// TxDuration returns the airtime of a frame of the given size.
func (c *Channel) TxDuration(bytes int) sim.Duration {
	return sim.Duration(float64(bytes*8) / c.params.Bitrate)
}

// Busy reports whether tr senses the channel busy: it is transmitting, or a
// signal from a node in range is currently arriving.
func (c *Channel) Busy(tr *Transceiver) bool {
	now := c.k.Now()
	if tr.txUntil > now {
		return true
	}
	for _, a := range tr.arrivals {
		if a.end > now {
			return true
		}
	}
	return false
}

// Send starts transmitting frame from tr. Delivery (or collision) at each
// in-range receiver resolves when the frame's airtime ends. Send does not
// carrier-sense; that is the MAC's job.
func (c *Channel) Send(tr *Transceiver, f Frame) error {
	now := c.k.Now()
	if tr.down {
		return nil // a dead radio silently drops
	}
	if tr.txUntil > now {
		return ErrTxBusy
	}
	c.Stats.FramesSent++
	d := c.TxDuration(f.Bytes)
	tr.txUntil = now + d
	if tr.meter != nil {
		tr.meter.AddTx(d)
	}
	// Half-duplex: anything arriving at the sender is lost.
	for _, a := range tr.arrivals {
		if a.end > now {
			a.collided = true
		}
	}
	src := tr.pos.Pos(now)
	for _, r := range c.trs {
		if r == tr || r.down {
			continue
		}
		dist := r.pos.Pos(now).Dist(src)
		if dist > c.params.Range {
			continue
		}
		prop := sim.Duration(0)
		if c.params.PropSpeed > 0 {
			prop = sim.Duration(dist / c.params.PropSpeed)
		}
		arr := &arrival{frame: f, from: tr.id, start: now + prop, end: now + prop + d}
		// Receiver transmitting during the arrival corrupts it.
		if r.txUntil > arr.start {
			arr.collided = true
		}
		// Overlap with any other in-flight arrival corrupts both.
		for _, other := range r.arrivals {
			if other.end > arr.start && other.start < arr.end {
				other.collided = true
				arr.collided = true
			}
		}
		r.arrivals = append(r.arrivals, arr)
		if r.meter != nil {
			r.meter.AddRx(d)
		}
		rr := r
		c.k.MustSchedule(arr.end-now, func() { c.finish(rr, arr) })
	}
	return nil
}

// finish resolves one arrival at receiver r.
func (c *Channel) finish(r *Transceiver, arr *arrival) {
	// Remove arr from r's in-flight list. Swap-remove: list order carries
	// no meaning (overlap checks are symmetric), and under MAC contention
	// the list can grow long enough for the O(n) splice to show up in
	// sweep profiles.
	for i, a := range r.arrivals {
		if a == arr {
			last := len(r.arrivals) - 1
			r.arrivals[i] = r.arrivals[last]
			r.arrivals[last] = nil
			r.arrivals = r.arrivals[:last]
			break
		}
	}
	// The receiver may have started transmitting mid-arrival.
	if r.txUntil > arr.start && !arr.collided {
		arr.collided = true
	}
	if arr.collided {
		c.Stats.FramesCollided++
		return
	}
	if r.down {
		return
	}
	c.Stats.FramesDelivered++
	if r.recv != nil {
		r.recv(arr.frame, arr.from)
	}
}

// InRange reports whether transceivers a and b are currently within
// transmission range; used by topology-oracle test helpers.
func (c *Channel) InRange(a, b *Transceiver) bool {
	now := c.k.Now()
	return a.pos.Pos(now).Dist(b.pos.Pos(now)) <= c.params.Range
}

// Pos returns tr's current position.
func (c *Channel) Pos(tr *Transceiver) geo.Point { return tr.pos.Pos(c.k.Now()) }

// Params returns the channel's physical-layer parameters.
func (c *Channel) Params() Params { return c.params }
