package radio

import (
	"math"

	"innercircle/internal/geo"
	"innercircle/internal/sim"
)

// gridIndex is a uniform spatial hash over transceiver positions with cell
// edge equal to the transmission range. Because the cell edge equals the
// range, every transceiver within range of a sender is guaranteed to sit in
// the 3×3 cell neighborhood around the sender's cell, so Send only visits
// that neighborhood instead of scanning all N transceivers.
//
// Static transceivers are binned once at Attach. Mobile ones are re-binned
// lazily: the first query of each virtual-time epoch (a distinct kernel
// timestamp) refreshes their cells, so the index is exact at query time and
// waypoint-mobility nodes are never missed. The index is behaviorally
// invisible — candidates are returned in ascending transceiver ID, the same
// relative order as the full scan, so event sequence numbers, delivered and
// collided frame sets, and energy totals stay byte-identical with the index
// on or off.
type gridIndex struct {
	inv   float64 // 1 / cell edge
	cells map[cellKey][]int32

	// mobile lists the indices of transceivers whose position can change;
	// static ones keep their Attach-time cell forever.
	mobile  []int32
	binTime sim.Time
	binned  bool
	dirty   bool // a transceiver attached since the last re-bin

	// mark[i] == gen iff transceiver i is in the current query's 3×3
	// neighborhood. Generation stamping makes candidate membership an O(1)
	// check with no per-query clearing, so Send can visit c.trs in its
	// natural ascending order and skip non-candidates — no sort needed to
	// preserve the full-scan visit order.
	mark []uint64
	gen  uint64

	scratch []int32 // candidate buffer for the neighbors test helper
}

// cellKey packs a cell's integer coordinates into one map key.
type cellKey int64

func newGridIndex(cellEdge float64) *gridIndex {
	return &gridIndex{inv: 1 / cellEdge, cells: map[cellKey][]int32{}}
}

func (g *gridIndex) keyAt(cx, cy int32) cellKey {
	return cellKey(int64(cx)<<32 | int64(uint32(cy)))
}

func (g *gridIndex) keyFor(p geo.Point) cellKey {
	return g.keyAt(int32(math.Floor(p.X*g.inv)), int32(math.Floor(p.Y*g.inv)))
}

// add registers a newly attached transceiver. Static transceivers go
// straight into their cell; mobile ones are picked up by the next re-bin.
func (g *gridIndex) add(tr *Transceiver) {
	i := int32(tr.id)
	for int(i) >= len(g.mark) {
		g.mark = append(g.mark, 0)
	}
	if tr.static {
		key := g.keyFor(tr.cachedPos)
		g.cells[key] = append(g.cells[key], i)
		tr.binKey = key
		tr.inGrid = true
		return
	}
	g.mobile = append(g.mobile, i)
	g.dirty = true
}

// rebin refreshes every mobile transceiver's cell for the current epoch,
// caching its position for the queries that follow at the same timestamp.
func (g *gridIndex) rebin(c *Channel, now sim.Time) {
	for _, i := range g.mobile {
		tr := c.trs[i]
		key := g.keyFor(c.posAt(tr, now))
		if tr.inGrid && key == tr.binKey {
			continue
		}
		if tr.inGrid {
			g.removeFromCell(i, tr.binKey)
		}
		g.cells[key] = append(g.cells[key], i)
		tr.binKey = key
		tr.inGrid = true
	}
	g.binTime = now
	g.binned = true
	g.dirty = false
}

// removeFromCell swap-removes index i from its cell; cell order carries no
// meaning (queries visit candidates in c.trs order, not cell order).
func (g *gridIndex) removeFromCell(i int32, key cellKey) {
	s := g.cells[key]
	for j, v := range s {
		if v == i {
			last := len(s) - 1
			s[j] = s[last]
			g.cells[key] = s[:last]
			return
		}
	}
}

// markNeighbors stamps every transceiver binned in the 3×3 cell
// neighborhood of src — a superset of all transceivers within one cell edge
// of src — with a fresh generation. Callers then walk c.trs in ascending
// order testing marked(i), which preserves the full-scan visit order
// without sorting.
// It returns the number of candidates stamped so the channel can gauge how
// much the index actually prunes.
func (g *gridIndex) markNeighbors(c *Channel, src geo.Point, now sim.Time) int {
	if g.dirty || !g.binned || g.binTime != now {
		g.rebin(c, now)
	}
	g.gen++
	cx := int32(math.Floor(src.X * g.inv))
	cy := int32(math.Floor(src.Y * g.inv))
	n := 0
	for dx := int32(-1); dx <= 1; dx++ {
		for dy := int32(-1); dy <= 1; dy++ {
			cell := g.cells[g.keyAt(cx+dx, cy+dy)]
			for _, i := range cell {
				g.mark[i] = g.gen
			}
			n += len(cell)
		}
	}
	return n
}

// marked reports whether transceiver i was stamped by the latest
// markNeighbors call.
func (g *gridIndex) marked(i int32) bool { return g.mark[i] == g.gen }

// neighbors returns the candidate indices for src in ascending order. Test
// helper: exercises the same markNeighbors/marked path Send uses. The
// returned slice is owned by the index and valid until the next call.
func (g *gridIndex) neighbors(c *Channel, src geo.Point, now sim.Time) []int32 {
	g.markNeighbors(c, src, now)
	out := g.scratch[:0]
	for i := range c.trs {
		if g.marked(int32(i)) {
			out = append(out, int32(i))
		}
	}
	g.scratch = out
	return out
}
