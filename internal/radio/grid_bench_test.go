package radio

import (
	"testing"

	"innercircle/internal/geo"
	"innercircle/internal/mobility"
	"innercircle/internal/sim"
)

// benchSend measures one frame transmission plus its delivery resolution on
// a 100-node field, with the spatial index on or off.
func benchSend(b *testing.B, models []mobility.Model, indexOn bool) {
	b.Helper()
	k := sim.NewKernel()
	ch := NewChannel(k, Params{Range: 40, Bitrate: 2e6, PropSpeed: 3e8})
	ch.SetIndexEnabled(indexOn)
	trs := make([]*Transceiver, len(models))
	for i, m := range models {
		trs[i] = ch.Attach(m, nil, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ch.Send(trs[i%len(trs)], Frame{Bytes: 512}); err != nil {
			b.Fatal(err)
		}
		if err := k.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func staticField(n int) []mobility.Model {
	rng := sim.NewRNG(1)
	models := make([]mobility.Model, n)
	for i := range models {
		models[i] = mobility.Static(geo.Point{X: rng.Uniform(0, 200), Y: rng.Uniform(0, 200)})
	}
	return models
}

func waypointField(n int) []mobility.Model {
	region := geo.Square(200)
	rng := sim.NewRNG(1)
	models := make([]mobility.Model, n)
	for i := range models {
		start := geo.Point{X: rng.Uniform(0, 200), Y: rng.Uniform(0, 200)}
		models[i] = mobility.NewWaypoint(mobility.WaypointConfig{
			Region: region, MinSpeed: 10, MaxSpeed: 10,
		}, start, sim.NewRNG(int64(i)))
	}
	return models
}

// BenchmarkRadioSend measures frame transmission at sensor-scenario density
// (100 nodes, 200 m square, 40 m range): the static field with the index on
// is the production configuration; fullscan is the seed's O(N)-scan
// behavior; waypoint adds the per-epoch mobile re-bin cost.
func BenchmarkRadioSend(b *testing.B) {
	b.Run("static", func(b *testing.B) { benchSend(b, staticField(100), true) })
	b.Run("static-fullscan", func(b *testing.B) { benchSend(b, staticField(100), false) })
	b.Run("waypoint", func(b *testing.B) { benchSend(b, waypointField(100), true) })
	b.Run("waypoint-fullscan", func(b *testing.B) { benchSend(b, waypointField(100), false) })
}
