package radio

import (
	"reflect"
	"testing"

	"innercircle/internal/geo"
	"innercircle/internal/mobility"
	"innercircle/internal/sim"
)

const shardLookahead sim.Duration = 10 * sim.Microsecond

// shardTestPositions is a line of nodes straddling the stripe boundary at
// x = Range (250 m): 0↔1, 1↔2, 2↔3 and the 160 m diagonals are in range,
// 0↔3 (300 m) is not. Every node is within one range of the boundary, so
// all are border nodes.
var shardTestPositions = []geo.Point{
	{X: 100, Y: 100}, {X: 240, Y: 100}, {X: 260, Y: 100}, {X: 400, Y: 100},
}

// shardTestSends staggers transmissions so the first pair overlaps in the
// air (collisions at common receivers) and later ones deliver cleanly. All
// timestamps are distinct, so no cross-shard message can tie with a local
// event.
var shardTestSends = []struct {
	node int
	at   sim.Duration
	pay  string
}{
	{0, 1 * sim.Millisecond, "a0"},
	{1, 1500 * sim.Microsecond, "b0"}, // overlaps a0: both collide at node 2
	{2, 5 * sim.Millisecond, "c0"},
	{3, 8 * sim.Millisecond, "d0"},
	{0, 11 * sim.Millisecond, "a1"},
	{2, 14 * sim.Millisecond, "e0"},
}

// runShardReference plays the send schedule on a plain sequential channel
// and returns per-node received payloads and the channel stats.
func runShardReference(t *testing.T) ([][]any, Stats) {
	t.Helper()
	k := sim.NewKernel()
	ch, trs, got := testNet(k, Default80211(), shardTestPositions)
	for _, s := range shardTestSends {
		s := s
		k.ScheduleFire(s.at, func() {
			if err := ch.Send(trs[s.node], Frame{Bytes: 512, Payload: s.pay}); err != nil {
				t.Errorf("send %s: %v", s.pay, err)
			}
		})
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	return got, ch.Stats
}

// TestShardedChannelMatchesSequential: the same send schedule on a
// two-shard channel must deliver the same payloads to the same nodes and
// produce the same channel totals as the sequential path, under both
// executors.
func TestShardedChannelMatchesSequential(t *testing.T) {
	wantGot, wantStats := runShardReference(t)
	for _, exec := range []string{"seq", "par"} {
		t.Run(exec, func(t *testing.T) {
			t.Setenv("IC_SHARD_EXEC", exec)
			set := sim.NewShardSet(2, shardLookahead)
			ownerOf := func(p geo.Point) (int, bool) {
				shard := 0
				if p.X >= 250 {
					shard = 1
				}
				return shard, p.X >= 0 && p.X <= 500 // all within one range of x=250
			}
			ch := NewChannelSharded(set, Default80211(), ownerOf)
			trs := make([]*Transceiver, len(shardTestPositions))
			got := make([][]any, len(shardTestPositions))
			for i, p := range shardTestPositions {
				i := i
				trs[i] = ch.Attach(mobility.Static(p), nil, func(f Frame, _ ID) {
					got[i] = append(got[i], f.Payload)
				})
				if !trs[i].Border() {
					t.Fatalf("node %d not border-marked", i)
				}
			}
			if want := int32(0); trs[1].owner != want || trs[0].owner != want {
				t.Fatalf("left nodes owned by shards %d/%d, want 0", trs[0].owner, trs[1].owner)
			}
			if trs[2].owner != 1 || trs[3].owner != 1 {
				t.Fatalf("right nodes owned by shards %d/%d, want 1", trs[2].owner, trs[3].owner)
			}
			for _, s := range shardTestSends {
				s := s
				k := set.Kernel(int(trs[s.node].owner))
				k.ScheduleFireTx(s.at, func() {
					if err := ch.Send(trs[s.node], Frame{Bytes: 512, Payload: s.pay}); err != nil {
						t.Errorf("send %s: %v", s.pay, err)
					}
				}, trs[s.node].Border())
			}
			if err := set.Run(20 * sim.Millisecond); err != nil {
				t.Fatalf("Run: %v", err)
			}
			ch.MergeShardStats()
			if !reflect.DeepEqual(got, wantGot) {
				t.Fatalf("sharded deliveries diverged:\ngot  %v\nwant %v", got, wantGot)
			}
			if ch.Stats != wantStats {
				t.Fatalf("sharded stats = %+v, want %+v", ch.Stats, wantStats)
			}
		})
	}
}

// TestShardedChannelFullScanPath: IC_RADIO_INDEX=off must route sharded
// sends through the all-transceivers scan and still match the reference.
func TestShardedChannelFullScanPath(t *testing.T) {
	wantGot, wantStats := runShardReference(t)
	t.Setenv("IC_RADIO_INDEX", "off")
	t.Setenv("IC_SHARD_EXEC", "seq")
	set := sim.NewShardSet(2, shardLookahead)
	ch := NewChannelSharded(set, Default80211(), func(p geo.Point) (int, bool) {
		if p.X >= 250 {
			return 1, true
		}
		return 0, true
	})
	if ch.useIndex {
		t.Fatal("IC_RADIO_INDEX=off did not disable the index")
	}
	trs := make([]*Transceiver, len(shardTestPositions))
	got := make([][]any, len(shardTestPositions))
	for i, p := range shardTestPositions {
		i := i
		trs[i] = ch.Attach(mobility.Static(p), nil, func(f Frame, _ ID) {
			got[i] = append(got[i], f.Payload)
		})
	}
	for _, s := range shardTestSends {
		s := s
		set.Kernel(int(trs[s.node].owner)).ScheduleFireTx(s.at, func() {
			_ = ch.Send(trs[s.node], Frame{Bytes: 512, Payload: s.pay})
		}, true)
	}
	if err := set.Run(20 * sim.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ch.MergeShardStats()
	if !reflect.DeepEqual(got, wantGot) {
		t.Fatalf("full-scan sharded deliveries diverged:\ngot  %v\nwant %v", got, wantGot)
	}
	if ch.Stats != wantStats {
		t.Fatalf("full-scan sharded stats = %+v, want %+v", ch.Stats, wantStats)
	}
}

// TestShardedChannelRejectsMobile: sharding requires static placements.
func TestShardedChannelRejectsMobile(t *testing.T) {
	set := sim.NewShardSet(2, shardLookahead)
	ch := NewChannelSharded(set, Default80211(), func(geo.Point) (int, bool) { return 0, false })
	defer func() {
		if recover() == nil {
			t.Fatal("attaching a mobile transceiver to a sharded channel did not panic")
		}
	}()
	ch.Attach(&mobility.Waypoint{}, nil, nil)
}
