package radio

import (
	"fmt"
	"testing"

	"innercircle/internal/energy"
	"innercircle/internal/geo"
	"innercircle/internal/mobility"
	"innercircle/internal/sim"
)

// runTrafficScenario builds a channel over the given mobility models, blasts
// a deterministic traffic pattern through it (staggered unicast-style sends
// from every node, dense enough to force collisions), and returns the
// channel stats, each meter's consumed energy, and the full delivery trace.
// The scenario is identical for every call; only indexOn varies.
func runTrafficScenario(t *testing.T, params Params, models []mobility.Model, indexOn bool) (Stats, []float64, []string) {
	t.Helper()
	k := sim.NewKernel()
	ch := NewChannel(k, params)
	ch.SetIndexEnabled(indexOn)
	var trace []string
	trs := make([]*Transceiver, len(models))
	meters := make([]*energy.Meter, len(models))
	for i, mdl := range models {
		i := i
		meters[i] = energy.NewMeter(energy.NS2Default())
		trs[i] = ch.Attach(mdl, meters[i], func(f Frame, from ID) {
			trace = append(trace, fmt.Sprintf("%v: %d<-%d %v", k.Now(), i, from, f.Payload))
		})
	}
	rng := sim.NewRNG(99)
	for round := 0; round < 40; round++ {
		for i := range trs {
			tr := trs[i]
			payload := fmt.Sprintf("r%d-n%d", round, i)
			at := sim.Time(round)*0.25 + rng.Jitter(0.2)
			k.MustSchedule(at, func() {
				_ = ch.Send(tr, Frame{Bytes: 256 + 64*(round%3), Payload: payload})
			})
		}
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	consumed := make([]float64, len(meters))
	for i, m := range meters {
		consumed[i] = m.Consumed(k.Now())
	}
	return ch.Stats, consumed, trace
}

// assertScenarioEquivalent runs the scenario with the index on and off and
// requires identical stats, energy totals, and delivery traces.
func assertScenarioEquivalent(t *testing.T, params Params, build func() []mobility.Model) {
	t.Helper()
	statsOn, energyOn, traceOn := runTrafficScenario(t, params, build(), true)
	statsOff, energyOff, traceOff := runTrafficScenario(t, params, build(), false)
	if statsOn != statsOff {
		t.Fatalf("stats diverge: index on %+v, off %+v", statsOn, statsOff)
	}
	if len(traceOn) != len(traceOff) {
		t.Fatalf("trace lengths diverge: index on %d, off %d", len(traceOn), len(traceOff))
	}
	for i := range traceOn {
		if traceOn[i] != traceOff[i] {
			t.Fatalf("trace[%d] diverges:\n  on:  %s\n  off: %s", i, traceOn[i], traceOff[i])
		}
	}
	for i := range energyOn {
		if energyOn[i] != energyOff[i] {
			t.Fatalf("node %d energy diverges: on %v, off %v", i, energyOn[i], energyOff[i])
		}
	}
	if statsOn.FramesDelivered == 0 {
		t.Fatal("scenario delivered nothing; equivalence check is vacuous")
	}
	if statsOn.FramesCollided == 0 {
		t.Fatal("scenario produced no collisions; equivalence check misses the collision path")
	}
}

// TestIndexEquivalenceStaticGrid cross-checks the spatial index on the
// sensor-scenario shape: a static jittered grid at 40 m range.
func TestIndexEquivalenceStaticGrid(t *testing.T) {
	params := Params{Range: 40, Bitrate: 2e6, PropSpeed: 3e8}
	assertScenarioEquivalent(t, params, func() []mobility.Model {
		pts := mobility.GridPlacement(geo.Square(200), 60, 4, sim.NewRNG(11))
		models := make([]mobility.Model, len(pts))
		for i, p := range pts {
			models[i] = mobility.Static(p)
		}
		return models
	})
}

// TestIndexEquivalenceWaypoint cross-checks the index under random-waypoint
// mobility, where nodes cross cell boundaries mid-run and the lazy per-epoch
// re-bin must keep the candidate sets exact.
func TestIndexEquivalenceWaypoint(t *testing.T) {
	params := Params{Range: 100, Bitrate: 2e6, PropSpeed: 3e8}
	assertScenarioEquivalent(t, params, func() []mobility.Model {
		region := geo.Square(400)
		place := sim.NewRNG(12)
		pts := mobility.UniformPlacement(region, 40, place)
		models := make([]mobility.Model, len(pts))
		for i, p := range pts {
			models[i] = mobility.NewWaypoint(mobility.WaypointConfig{
				Region:   region,
				MinSpeed: 20, // fast: many cell crossings within the run
				MaxSpeed: 40,
				Pause:    0,
			}, p, sim.NewRNG(int64(1000+i)))
		}
		return models
	})
}

// TestIndexNeighborsCoverInRange is the index's safety property: for any
// sender, every in-range transceiver (oracle: exhaustive distance check)
// must appear in the indexed candidate set, at several query times.
func TestIndexNeighborsCoverInRange(t *testing.T) {
	k := sim.NewKernel()
	params := Params{Range: 75, Bitrate: 2e6, PropSpeed: 3e8}
	ch := NewChannel(k, params)
	region := geo.Square(500)
	rng := sim.NewRNG(31)
	var trs []*Transceiver
	for i, p := range mobility.UniformPlacement(region, 25, rng) {
		var m mobility.Model
		if i%2 == 0 {
			m = mobility.Static(p)
		} else {
			m = mobility.NewWaypoint(mobility.WaypointConfig{
				Region: region, MinSpeed: 30, MaxSpeed: 30,
			}, p, sim.NewRNG(int64(i)))
		}
		trs = append(trs, ch.Attach(m, nil, nil))
	}
	for _, at := range []sim.Time{0, 1.5, 3, 3, 10} {
		at := at
		k.MustSchedule(at-k.Now(), func() {})
		if !k.Step() && at > 0 {
			t.Fatal("no event to advance clock")
		}
		now := k.Now()
		for _, tr := range trs {
			src := ch.posAt(tr, now)
			cands := map[int32]bool{}
			for _, ri := range ch.grid.neighbors(ch, src, now) {
				cands[ri] = true
			}
			for _, r := range trs {
				if r == tr {
					continue
				}
				if ch.posAt(r, now).Dist(src) <= params.Range && !cands[int32(r.id)] {
					t.Fatalf("t=%v: node %d in range of %d but missing from index candidates", now, r.id, tr.id)
				}
			}
		}
	}
}

// TestIndexCandidatesSortedAndLateAttach verifies the two properties the
// equivalence argument rests on: candidates come back in ascending ID (the
// full-scan visit order), and transceivers attached after the index has
// been queried still show up (the dirty re-bin path).
func TestIndexCandidatesSortedAndLateAttach(t *testing.T) {
	k := sim.NewKernel()
	ch := NewChannel(k, Params{Range: 50, Bitrate: 2e6, PropSpeed: 3e8})
	var got []any
	for i := 0; i < 10; i++ {
		ch.Attach(mobility.Static(geo.Point{X: float64(i)}), nil, nil)
	}
	// Query once so the index considers itself built.
	_ = ch.grid.neighbors(ch, geo.Point{}, k.Now())
	// Late attaches: one static, one mobile, both co-located with the pack.
	ch.Attach(mobility.Static(geo.Point{X: 5, Y: 5}), nil, func(f Frame, _ ID) { got = append(got, f.Payload) })
	ch.Attach(&linear{start: geo.Point{X: 5, Y: -5}}, nil, func(f Frame, _ ID) { got = append(got, f.Payload) })
	cands := ch.grid.neighbors(ch, geo.Point{}, k.Now())
	for i := 1; i < len(cands); i++ {
		if cands[i-1] >= cands[i] {
			t.Fatalf("candidates not ascending: %v", cands)
		}
	}
	if err := ch.Send(ch.trs[0], Frame{Bytes: 64, Payload: "late"}); err != nil {
		t.Fatal(err)
	}
	if err := k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("late-attached transceivers received %d frames, want 2", len(got))
	}
}

// TestIndexDisabledByEnv checks the IC_RADIO_INDEX=off cross-check knob.
func TestIndexDisabledByEnv(t *testing.T) {
	t.Setenv("IC_RADIO_INDEX", "off")
	k := sim.NewKernel()
	ch := NewChannel(k, Default80211())
	if ch.useIndex {
		t.Fatal("IC_RADIO_INDEX=off did not disable the index")
	}
	if ch.adaptive {
		t.Fatal("IC_RADIO_INDEX=off should pin the choice, not leave it adaptive")
	}
	// The grid is still maintained, so re-enabling works.
	ch.SetIndexEnabled(true)
	if !ch.useIndex {
		t.Fatal("SetIndexEnabled(true) did not re-enable the index")
	}
}

// probeChannel drives probeSends+1 sends through a fresh adaptive channel
// over the given models and reports whether the index survived the probe.
func probeChannel(t *testing.T, params Params, models []mobility.Model) bool {
	t.Helper()
	k := sim.NewKernel()
	ch := NewChannel(k, params)
	if !ch.adaptive || !ch.useIndex {
		t.Fatal("fresh channel should start adaptive with the index on")
	}
	trs := make([]*Transceiver, len(models))
	for i, m := range models {
		trs[i] = ch.Attach(m, nil, nil)
	}
	for i := 0; i <= probeSends; i++ {
		tr := trs[i%len(trs)]
		k.MustSchedule(0, func() { _ = ch.Send(tr, Frame{Bytes: 64}) })
		if err := k.RunAll(); err != nil {
			t.Fatal(err)
		}
	}
	if ch.adaptive {
		t.Fatalf("probe did not conclude after %d sends", probeSends+1)
	}
	return ch.useIndex
}

// TestIndexAdaptiveFallback checks the probe: a static field whose range is
// a small fraction of the deployment keeps the index, while an all-mobile
// field whose range covers the whole deployment (the index can prune
// nothing but still pays the per-epoch re-bin) falls back to the full scan.
func TestIndexAdaptiveFallback(t *testing.T) {
	staticModels := staticField(100) // 200 m square, 40 m range: prunes hard
	if !probeChannel(t, Params{Range: 40, Bitrate: 2e6, PropSpeed: 3e8}, staticModels) {
		t.Fatal("dense static field should keep the spatial index")
	}
	mobileModels := waypointField(50) // 200 m square, 300 m range: prunes nothing
	if probeChannel(t, Params{Range: 300, Bitrate: 2e6, PropSpeed: 3e8}, mobileModels) {
		t.Fatal("all-mobile field with whole-field range should fall back to the full scan")
	}
}
