package diffusion

import (
	"testing"

	"innercircle/internal/geo"
	"innercircle/internal/link"
	"innercircle/internal/mac"
	"innercircle/internal/mobility"
	"innercircle/internal/radio"
	"innercircle/internal/sim"
)

// buildFlood assembles a flood-mode network; node 0 is the sink.
func buildFlood(t *testing.T, positions []geo.Point) *diffNet {
	t.Helper()
	k := sim.NewKernel()
	params := radio.Params{Range: 40, Bitrate: 2e6, PropSpeed: 3e8}
	ch := radio.NewChannel(k, params)
	rng := sim.NewRNG(1)
	net := &diffNet{k: k}
	cfg := DefaultConfig()
	cfg.Unreliable = true
	cfg.FloodData = true
	for i, p := range positions {
		m := mac.New(k, ch, mobility.Static(p), nil, rng.SplitN("mac", i), mac.Default80211())
		l := link.NewService(m)
		svc, err := New(cfg, Deps{ID: l.ID(), K: k, Link: l, RNG: rng.SplitN("diff", i)})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			svc.SetSink(true)
			svc.OnDeliver(func(src link.NodeID, hops int, msg link.Message) {
				net.got = append(net.got, struct {
					src  link.NodeID
					hops int
					msg  link.Message
				}{src, hops, msg})
			})
		}
		s := svc
		l.OnRecv(func(e link.Env) { s.HandleEnv(e) })
		net.svcs = append(net.svcs, svc)
	}
	net.svcs[0].Start()
	return net
}

func TestFloodReachesSinkWithoutGradient(t *testing.T) {
	// Flood mode delivers even before any interest establishes gradients:
	// dissemination is gradient-free.
	net := buildFlood(t, chain(5))
	if err := net.svcs[4].Send(payload{tag: "flooded", size: 48}); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(net.got) != 1 {
		t.Fatalf("sink received %d, want 1", len(net.got))
	}
	if p, ok := net.got[0].msg.(payload); !ok || p.tag != "flooded" {
		t.Fatalf("payload = %v", net.got[0].msg)
	}
}

func TestFloodNeverDeliversDuplicates(t *testing.T) {
	// In a diamond, two copies of every flood converge on the sink; dedup
	// must deliver each message at most once (unreliable broadcasts may
	// lose some entirely — that is flood mode's documented nature).
	pts := []geo.Point{
		{X: 0, Y: 0},    // sink
		{X: 30, Y: 15},  // relay A
		{X: 30, Y: -15}, // relay B
		{X: 60, Y: 0},   // source
	}
	net := buildFlood(t, pts)
	const sends = 10
	for i := 0; i < sends; i++ {
		at := sim.Time(i+1) * 0.3
		net.k.MustSchedule(at, func() {
			_ = net.svcs[3].Send(payload{tag: "d", size: 32})
		})
	}
	if err := net.k.Run(6); err != nil {
		t.Fatal(err)
	}
	if len(net.got) > sends {
		t.Fatalf("sink delivered %d > %d sends: duplicate delivery", len(net.got), sends)
	}
	if len(net.got) < sends/2 {
		t.Fatalf("sink delivered only %d/%d: flood unexpectedly lossy", len(net.got), sends)
	}
}

func TestFloodRebroadcastsOnce(t *testing.T) {
	net := buildFlood(t, chain(4))
	if err := net.svcs[3].Send(payload{tag: "x", size: 32}); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(2); err != nil {
		t.Fatal(err)
	}
	// Nodes 1 and 2 each forward exactly once.
	for _, i := range []int{1, 2} {
		if got := net.svcs[i].Stats.DataForwarded; got != 1 {
			t.Fatalf("node %d forwarded %d times, want 1", i, got)
		}
	}
	// The source does not re-forward echoes of its own message.
	if net.svcs[3].Stats.DataForwarded != 0 {
		t.Fatal("source re-forwarded its own flood")
	}
}

func TestFloodDistinctMessagesAllDelivered(t *testing.T) {
	net := buildFlood(t, chain(3))
	for i := 0; i < 5; i++ {
		if err := net.svcs[2].Send(payload{tag: "m", size: 16}); err != nil {
			t.Fatal(err)
		}
		if err := net.k.Run(sim.Time(i+1) * 0.2); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.k.Run(3); err != nil {
		t.Fatal(err)
	}
	// Unreliable broadcasts may lose an occasional message to a collision;
	// most must arrive and none twice.
	if len(net.got) < 4 || len(net.got) > 5 {
		t.Fatalf("sink delivered %d, want 4..5 of 5 distinct messages", len(net.got))
	}
}
