// Package diffusion implements the directed-diffusion subset the paper's
// sensor scenario (§5.2) runs on: the sink (base station) periodically
// floods an interest, nodes establish gradients toward the sink (the
// lowest-hop-count neighbour the interest arrived from), and data messages
// are unicast hop by hop down the gradient. The reinforcement machinery of
// full directed diffusion is omitted — Fig. 8's metrics depend on
// multi-hop delivery cost and latency, which the gradient subset captures
// (see DESIGN.md's substitution table).
package diffusion

import (
	"fmt"

	"innercircle/internal/link"
	"innercircle/internal/sim"
)

// InterestMsg is the sink's periodic flooded interest.
type InterestMsg struct {
	Sink link.NodeID
	Seq  uint64
	Hops int
}

// Size implements link.Message.
func (InterestMsg) Size() int { return 16 }

// DataMsg carries an application message toward the sink. Via names the
// intended next hop when the message travels as an unreliable broadcast
// (see Config.Unreliable); other receivers ignore it.
type DataMsg struct {
	Src     link.NodeID
	Sink    link.NodeID
	Via     link.NodeID
	Seq     uint64
	Payload link.Message
	Hops    int
}

// Size implements link.Message.
func (d DataMsg) Size() int { return 16 + d.Payload.Size() }

// Config parameterizes the service.
type Config struct {
	// InterestPeriod is how often a sink refloods its interest.
	InterestPeriod sim.Duration
	// GradientTimeout invalidates gradients that have not been refreshed.
	GradientTimeout sim.Duration
	// Unreliable sends data hops as MAC broadcasts (no acknowledgement or
	// retransmission), matching classic directed diffusion over a
	// broadcast MAC. Collisions then silently lose data — the behaviour
	// behind the paper's Fig. 8(e) latency results.
	Unreliable bool
	// FloodData disseminates data as exploratory floods (every node
	// rebroadcasts each distinct (src, seq) once), the first phase of
	// classic directed diffusion. Message volume then scales with the
	// number of reporting sources — the congestion the inner-circle
	// approach suppresses.
	FloodData bool
}

// DefaultConfig matches the sensor experiment scale (200 s runs).
func DefaultConfig() Config {
	return Config{InterestPeriod: 20, GradientTimeout: 50}
}

// Deps wires the service into a node.
type Deps struct {
	ID   link.NodeID
	K    *sim.Kernel
	Link *link.Service
	RNG  *sim.RNG
}

// Stats counts diffusion activity.
type Stats struct {
	InterestsSent      uint64
	InterestsForwarded uint64
	DataSent           uint64
	DataForwarded      uint64
	DataDelivered      uint64
	DataDropped        uint64
}

// Service is one node's diffusion entity.
type Service struct {
	cfg  Config
	deps Deps

	sink        bool
	interestSeq uint64
	ticker      *sim.Ticker

	// gradient state
	parent      link.NodeID
	hops        int
	gradientAt  sim.Time
	gradientSeq uint64
	gradientOK  bool
	sinkID      link.NodeID

	dataSeq   uint64
	seenData  map[dataKey]bool // keys packed by packDataKey
	onDeliver func(src link.NodeID, hops int, payload link.Message)

	// Stats exposes counters to the experiment harness.
	Stats Stats
}

// New returns a stopped service.
func New(cfg Config, deps Deps) (*Service, error) {
	if cfg.InterestPeriod <= 0 || cfg.GradientTimeout <= 0 {
		return nil, fmt.Errorf("diffusion: periods must be positive")
	}
	return &Service{cfg: cfg, deps: deps, seenData: make(map[dataKey]bool)}, nil
}

// SetSink marks this node as a sink (base station).
func (s *Service) SetSink(v bool) { s.sink = v }

// Sink reports whether this node is a sink.
func (s *Service) Sink() bool { return s.sink }

// OnDeliver registers the sink-side delivery upcall.
func (s *Service) OnDeliver(fn func(src link.NodeID, hops int, payload link.Message)) {
	s.onDeliver = fn
}

// Start begins interest flooding (sinks only; a non-sink Start is a no-op
// until SetSink).
func (s *Service) Start() {
	s.sendInterest()
	s.ticker = sim.NewTicker(s.deps.K, s.cfg.InterestPeriod, func() sim.Duration {
		return s.deps.RNG.Jitter(s.cfg.InterestPeriod / 20)
	}, s.sendInterest)
}

// Stop halts interest flooding.
func (s *Service) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
	}
}

func (s *Service) sendInterest() {
	if !s.sink {
		return
	}
	s.interestSeq++
	s.Stats.InterestsSent++
	_ = s.deps.Link.SendRaw(link.BroadcastID, InterestMsg{Sink: s.deps.ID, Seq: s.interestSeq})
}

// HopsToSink returns the current gradient depth, if one exists.
func (s *Service) HopsToSink() (int, bool) {
	if s.sink {
		return 0, true
	}
	if !s.gradientOK || s.deps.K.Now()-s.gradientAt > s.cfg.GradientTimeout {
		return 0, false
	}
	return s.hops, true
}

// Send routes payload toward the sink. It fails (counted, not returned)
// when no gradient is established.
func (s *Service) Send(payload link.Message) error {
	if s.sink {
		// Local delivery.
		s.Stats.DataDelivered++
		if s.onDeliver != nil {
			s.onDeliver(s.deps.ID, 0, payload)
		}
		return nil
	}
	if !s.cfg.FloodData {
		if _, ok := s.HopsToSink(); !ok {
			s.Stats.DataDropped++
			return fmt.Errorf("diffusion: no gradient toward a sink")
		}
	}
	s.dataSeq++
	s.Stats.DataSent++
	// Hops counts radio transmissions; the originating send is the first.
	m := DataMsg{
		Src: s.deps.ID, Sink: s.sinkID, Via: s.parent, Seq: s.dataSeq, Payload: payload, Hops: 1,
	}
	// Never re-forward copies of our own flood echoed back by neighbours.
	s.seenData[packDataKey(s.deps.ID, s.dataSeq)] = true
	return s.transmit(m)
}

// transmit sends a data message to its Via next hop, reliably (unicast
// with MAC ARQ) or unreliably (broadcast) per configuration.
func (s *Service) transmit(m DataMsg) error {
	if s.cfg.FloodData || s.cfg.Unreliable {
		return s.deps.Link.SendRaw(link.BroadcastID, m)
	}
	return s.deps.Link.SendRaw(m.Via, m)
}

// dataKey identifies a data message for flood deduplication. It packs
// (source, sequence) into one word so the per-reception seen-map lookup
// hashes and compares 8 bytes instead of 16 — this map is probed on
// every flooded data frame every node hears, one of the hottest lines of
// a large replica. 24 bits of source and 40 bits of sequence are loudly
// enforced; no modeled deployment approaches either bound.
type dataKey uint64

func packDataKey(src link.NodeID, seq uint64) dataKey {
	if uint64(src) >= 1<<24 || seq >= 1<<40 {
		panic("diffusion: data key out of packing range")
	}
	return dataKey(uint64(src)<<40 | seq)
}

// HandleEnv processes diffusion traffic; it reports whether the envelope
// was consumed.
func (s *Service) HandleEnv(e link.Env) bool {
	switch m := e.Msg.(type) {
	case InterestMsg:
		s.onInterest(e.From, m)
		return true
	case DataMsg:
		s.onData(e.From, m)
		return true
	default:
		return false
	}
}

func (s *Service) onInterest(from link.NodeID, m InterestMsg) {
	if s.sink {
		return
	}
	now := s.deps.K.Now()
	fresh := m.Seq > s.gradientSeq
	better := m.Seq == s.gradientSeq && m.Hops+1 < s.hops
	if !fresh && !better {
		return
	}
	s.parent = from
	s.hops = m.Hops + 1
	s.gradientAt = now
	s.gradientSeq = m.Seq
	s.gradientOK = true
	s.sinkID = m.Sink
	if fresh {
		// Re-flood once per sequence.
		m.Hops++
		s.Stats.InterestsForwarded++
		_ = s.deps.Link.SendRaw(link.BroadcastID, m)
	}
}

func (s *Service) onData(_ link.NodeID, m DataMsg) {
	if s.cfg.FloodData {
		s.onFloodData(m)
		return
	}
	if m.Via != s.deps.ID {
		return // overheard broadcast intended for another forwarder
	}
	if s.sink && m.Sink == s.deps.ID {
		s.Stats.DataDelivered++
		if s.onDeliver != nil {
			s.onDeliver(m.Src, m.Hops, m.Payload)
		}
		return
	}
	if _, ok := s.HopsToSink(); !ok {
		s.Stats.DataDropped++
		return
	}
	m.Hops++
	m.Via = s.parent
	s.Stats.DataForwarded++
	_ = s.transmit(m)
}

// onFloodData handles exploratory-flood dissemination: deliver at the
// sink, rebroadcast exactly once elsewhere.
func (s *Service) onFloodData(m DataMsg) {
	key := packDataKey(m.Src, m.Seq)
	if s.seenData[key] {
		return
	}
	s.seenData[key] = true
	if s.sink {
		s.Stats.DataDelivered++
		if s.onDeliver != nil {
			s.onDeliver(m.Src, m.Hops, m.Payload)
		}
		return
	}
	m.Hops++
	s.Stats.DataForwarded++
	_ = s.transmit(m)
}
