package diffusion

import (
	"testing"

	"innercircle/internal/geo"
	"innercircle/internal/link"
	"innercircle/internal/mac"
	"innercircle/internal/mobility"
	"innercircle/internal/radio"
	"innercircle/internal/sim"
)

type payload struct {
	tag  string
	size int
}

func (p payload) Size() int { return p.size }

type diffNet struct {
	k    *sim.Kernel
	svcs []*Service
	got  []struct {
		src  link.NodeID
		hops int
		msg  link.Message
	}
}

// buildDiff assembles nodes; node 0 is the sink. Radio range 40 m (the
// sensor scenario's).
func buildDiff(t *testing.T, positions []geo.Point) *diffNet {
	t.Helper()
	k := sim.NewKernel()
	params := radio.Params{Range: 40, Bitrate: 2e6, PropSpeed: 3e8}
	ch := radio.NewChannel(k, params)
	rng := sim.NewRNG(1)
	net := &diffNet{k: k}
	for i, p := range positions {
		m := mac.New(k, ch, mobility.Static(p), nil, rng.SplitN("mac", i), mac.Default80211())
		l := link.NewService(m)
		svc, err := New(DefaultConfig(), Deps{ID: l.ID(), K: k, Link: l, RNG: rng.SplitN("diff", i)})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			svc.SetSink(true)
			svc.OnDeliver(func(src link.NodeID, hops int, msg link.Message) {
				net.got = append(net.got, struct {
					src  link.NodeID
					hops int
					msg  link.Message
				}{src, hops, msg})
			})
		}
		s := svc
		l.OnRecv(func(e link.Env) { s.HandleEnv(e) })
		net.svcs = append(net.svcs, svc)
	}
	net.svcs[0].Start()
	return net
}

// chain returns positions 30 m apart (range 40 m): a line to the sink.
func chain(n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * 30}
	}
	return pts
}

func TestGradientEstablished(t *testing.T) {
	net := buildDiff(t, chain(4))
	if err := net.k.Run(2); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		hops, ok := net.svcs[i].HopsToSink()
		if !ok {
			t.Fatalf("node %d has no gradient", i)
		}
		if hops != i {
			t.Fatalf("node %d gradient depth = %d, want %d", i, hops, i)
		}
	}
	if h, ok := net.svcs[0].HopsToSink(); !ok || h != 0 {
		t.Fatalf("sink depth = %d/%v, want 0/true", h, ok)
	}
}

func TestDataReachesSink(t *testing.T) {
	net := buildDiff(t, chain(5))
	if err := net.k.Run(2); err != nil {
		t.Fatal(err)
	}
	if err := net.svcs[4].Send(payload{tag: "hello", size: 64}); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(4); err != nil {
		t.Fatal(err)
	}
	if len(net.got) != 1 {
		t.Fatalf("sink received %d messages, want 1", len(net.got))
	}
	if net.got[0].src != 4 {
		t.Fatalf("src = %v, want 4", net.got[0].src)
	}
	if p, ok := net.got[0].msg.(payload); !ok || p.tag != "hello" {
		t.Fatalf("payload = %v", net.got[0].msg)
	}
	if net.got[0].hops != 4 {
		t.Fatalf("hops = %d, want 4", net.got[0].hops)
	}
}

func TestSendWithoutGradientFails(t *testing.T) {
	net := buildDiff(t, []geo.Point{{X: 0}, {X: 1000}}) // node 1 isolated
	if err := net.k.Run(3); err != nil {
		t.Fatal(err)
	}
	if err := net.svcs[1].Send(payload{size: 10}); err == nil {
		t.Fatal("send without gradient succeeded")
	}
	if net.svcs[1].Stats.DataDropped != 1 {
		t.Fatalf("stats = %+v", net.svcs[1].Stats)
	}
}

func TestSinkLocalDelivery(t *testing.T) {
	net := buildDiff(t, chain(2))
	if err := net.k.Run(1); err != nil {
		t.Fatal(err)
	}
	if err := net.svcs[0].Send(payload{tag: "self", size: 8}); err != nil {
		t.Fatal(err)
	}
	if len(net.got) != 1 || net.got[0].hops != 0 {
		t.Fatalf("sink local delivery got %v", net.got)
	}
}

func TestGradientPrefersShorterPath(t *testing.T) {
	// Diamond: sink(0) - {1, 2} - 3, where 2 also hears the sink but 3
	// only hears 1 and 2. Node 3 should pick a 2-hop gradient.
	pts := []geo.Point{
		{X: 0, Y: 0},    // sink
		{X: 30, Y: 10},  // relay A
		{X: 30, Y: -10}, // relay B
		{X: 60, Y: 0},   // leaf
	}
	net := buildDiff(t, pts)
	if err := net.k.Run(2); err != nil {
		t.Fatal(err)
	}
	hops, ok := net.svcs[3].HopsToSink()
	if !ok || hops != 2 {
		t.Fatalf("leaf depth = %d/%v, want 2", hops, ok)
	}
}

func TestGradientExpires(t *testing.T) {
	net := buildDiff(t, chain(2))
	if err := net.k.Run(2); err != nil {
		t.Fatal(err)
	}
	if _, ok := net.svcs[1].HopsToSink(); !ok {
		t.Fatal("no gradient")
	}
	// Stop the sink's interests; after GradientTimeout the gradient dies.
	net.svcs[0].Stop()
	if err := net.k.Run(2 + DefaultConfig().GradientTimeout + 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := net.svcs[1].HopsToSink(); ok {
		t.Fatal("gradient survived past timeout without refresh")
	}
}

func TestPeriodicRefloodRefreshesGradient(t *testing.T) {
	net := buildDiff(t, chain(3))
	horizon := DefaultConfig().GradientTimeout * 3
	if err := net.k.Run(horizon); err != nil {
		t.Fatal(err)
	}
	if _, ok := net.svcs[2].HopsToSink(); !ok {
		t.Fatal("gradient not kept alive by periodic interests")
	}
	if net.svcs[0].Stats.InterestsSent < 3 {
		t.Fatalf("interests sent = %d, want several", net.svcs[0].Stats.InterestsSent)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}, Deps{}); err == nil {
		t.Fatal("zero config accepted")
	}
}
