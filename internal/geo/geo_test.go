package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDistSymmetricAndPositive(t *testing.T) {
	f := func(ax, ay, bx, by int16) bool {
		p := Point{float64(ax), float64(ay)}
		q := Point{float64(bx), float64(by)}
		d1, d2 := p.Dist(q), q.Dist(p)
		return d1 == d2 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int8) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistKnownValues(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, 0}, Point{1, 0}, 2},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want) {
			t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	if got := Centroid(pts); !almostEqual(got.X, 1) || !almostEqual(got.Y, 1) {
		t.Fatalf("Centroid = %v, want (1,1)", got)
	}
	if got := Centroid(nil); got != (Point{}) {
		t.Fatalf("Centroid(nil) = %v, want zero", got)
	}
	single := []Point{{7, -3}}
	if got := Centroid(single); got != single[0] {
		t.Fatalf("Centroid of single = %v, want %v", got, single[0])
	}
}

func TestCentroidTranslationInvariance(t *testing.T) {
	f := func(coords []int8, dx, dy int8) bool {
		if len(coords) < 2 {
			return true
		}
		var pts, shifted []Point
		off := Point{float64(dx), float64(dy)}
		for i := 0; i+1 < len(coords); i += 2 {
			p := Point{float64(coords[i]), float64(coords[i+1])}
			pts = append(pts, p)
			shifted = append(shifted, p.Add(off))
		}
		c1 := Centroid(pts).Add(off)
		c2 := Centroid(shifted)
		return math.Abs(c1.X-c2.X) < 1e-9 && math.Abs(c1.Y-c2.Y) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRectContains(t *testing.T) {
	r := Square(100)
	tests := []struct {
		p    Point
		want bool
	}{
		{Point{50, 50}, true},
		{Point{0, 0}, true},
		{Point{100, 100}, true},
		{Point{-0.1, 50}, false},
		{Point{50, 100.1}, false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRectClampInsideRegion(t *testing.T) {
	r := Rect{10, 20, 110, 220}
	f := func(x, y int16) bool {
		c := r.Clamp(Point{float64(x), float64(y)})
		return r.Contains(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Clamp is identity for interior points.
	in := Point{50, 100}
	if got := r.Clamp(in); got != in {
		t.Fatalf("Clamp(%v) = %v, want identity", in, got)
	}
}

func TestRectDims(t *testing.T) {
	r := Rect{1, 2, 5, 10}
	if r.Width() != 4 || r.Height() != 8 {
		t.Fatalf("Width/Height = %v/%v, want 4/8", r.Width(), r.Height())
	}
	if c := r.Center(); !almostEqual(c.X, 3) || !almostEqual(c.Y, 6) {
		t.Fatalf("Center = %v, want (3,6)", c)
	}
}

func TestVectorOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := (Point{3, 4}).Norm(); !almostEqual(got, 5) {
		t.Fatalf("Norm = %v", got)
	}
}
