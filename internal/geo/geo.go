// Package geo provides the 2-D geometry used throughout the simulator:
// node positions, distances, bounding regions, and the centroid machinery
// shared with the fault-tolerant fusion algorithms.
package geo

import (
	"fmt"
	"math"
)

// Point is a position (or any 2-D observation) in metres.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// String formats the point with centimetre precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Centroid returns the arithmetic mean of the points. It returns the zero
// point for an empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var sum Point
	for _, p := range pts {
		sum = sum.Add(p)
	}
	return sum.Scale(1 / float64(len(pts)))
}

// Rect is an axis-aligned rectangle [MinX, MaxX] × [MinY, MaxY].
type Rect struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

// Square returns the square region [0, side] × [0, side], the deployment
// region shape used by both of the paper's experiments.
func Square(side float64) Rect { return Rect{0, 0, side, side} }

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Clamp returns the point in r nearest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, r.MinX), r.MaxX),
		Y: math.Min(math.Max(p.Y, r.MinY), r.MaxY),
	}
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}
