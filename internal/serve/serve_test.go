package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"innercircle/internal/experiment"
)

// quickGrid returns a 4-replica blackhole grid small enough for tests.
func quickGrid(name string, seed int64) *experiment.GridRequest {
	cfg := experiment.PaperBlackholeConfig()
	cfg.Nodes = 30
	cfg.SimTime = 20
	cfg.Seed = seed
	return &experiment.GridRequest{
		Name:      name,
		Kind:      experiment.GridBlackhole,
		Blackhole: &cfg,
		Malicious: []int{0, 2},
		Levels:    []int{1},
		Runs:      1,
	}
}

// startServer spins up a Server plus its HTTP front on a temp dir and
// returns a client; everything stops at test cleanup.
func startServer(t *testing.T, dir string, parallel int) (*Server, *Client) {
	t.Helper()
	srv, err := New(Options{Dir: dir, Parallel: parallel, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Run(ctx)
	}()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		cancel()
		<-done
	})
	return srv, &Client{Base: hs.URL}
}

// TestServiceDedup pins the tentpole acceptance criterion: submitting the
// identical grid twice produces identical artifact digests and tables,
// and the second job is served entirely from the store — zero recompute.
func TestServiceDedup(t *testing.T) {
	srv, c := startServer(t, t.TempDir(), 1)
	ctx := context.Background()

	grid := quickGrid("dedup", 11)
	j1, err := c.Submit(ctx, grid)
	if err != nil {
		t.Fatal(err)
	}
	var firstEvents []Event
	j1, err = c.Wait(ctx, j1.ID, func(e Event) { firstEvents = append(firstEvents, e) })
	if err != nil {
		t.Fatal(err)
	}
	if j1.State != JobDone {
		t.Fatalf("first job state %q: %s", j1.State, j1.Error)
	}
	if j1.Computed != 4 || j1.Cached != 0 {
		t.Fatalf("first job computed=%d cached=%d, want 4/0", j1.Computed, j1.Cached)
	}

	// The rendered tables must be byte-identical to the in-process sweep
	// the CLI runs (store round-trip changes nothing).
	thr, eng, err := experiment.BlackholeSweep(*grid.Blackhole, grid.Malicious, grid.Levels, grid.Runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantTables := thr.StringWithCI() + "\n" + eng.StringWithCI() + "\n"
	gotTables, err := c.Tables(ctx, j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if gotTables != wantTables {
		t.Fatalf("service tables differ from CLI sweep:\n--- sweep ---\n%s--- service ---\n%s", wantTables, gotTables)
	}
	if csv, err := c.TablesCSV(ctx, j1.ID); err != nil || !strings.HasPrefix(csv, "# Fig. 7(a)") {
		t.Fatalf("csv fetch: %q err %v", csv, err)
	}

	// Second identical submission: all cache hits, same digests, same
	// tables hash, no replica recomputed.
	j2, err := c.Submit(ctx, quickGrid("dedup", 11))
	if err != nil {
		t.Fatal(err)
	}
	var secondEvents []Event
	j2, err = c.Wait(ctx, j2.ID, func(e Event) { secondEvents = append(secondEvents, e) })
	if err != nil {
		t.Fatal(err)
	}
	if j2.State != JobDone || j2.Computed != 0 || j2.Cached != 4 {
		t.Fatalf("second job state=%q computed=%d cached=%d, want done/0/4", j2.State, j2.Computed, j2.Cached)
	}
	if j1.TablesSHA256 == "" || j1.TablesSHA256 != j2.TablesSHA256 {
		t.Fatalf("tables hashes differ: %q vs %q", j1.TablesSHA256, j2.TablesSHA256)
	}
	digests := func(evs []Event) map[string]string {
		m := map[string]string{}
		for _, e := range evs {
			if e.Type == "point" {
				m[e.SpecSHA] = e.ResultSHA
			}
		}
		return m
	}
	d1, d2 := digests(firstEvents), digests(secondEvents)
	if len(d1) != 4 || len(d2) != 4 {
		t.Fatalf("point event counts: %d and %d, want 4 and 4", len(d1), len(d2))
	}
	for spec, res := range d1 {
		if d2[spec] != res {
			t.Fatalf("spec %s: result digest changed %s → %s", spec, res, d2[spec])
		}
	}
	for _, e := range secondEvents {
		if e.Type == "point" && !e.FromCache {
			t.Fatalf("second submission recomputed point %q", e.Label)
		}
	}

	// Artifacts are servable by digest and hash-verified end to end.
	for _, res := range d1 {
		b, err := c.Artifact(ctx, res)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := experiment.DecodeReplicaResult(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Store().Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceConcurrentClientsBudget pins the second acceptance
// criterion: two clients submitting concurrently both complete with
// correct tables, while the replica fan-out respects the core-token
// budget — peak concurrent replicas never exceed budget + parallel (each
// running job keeps one un-budgeted worker so it always progresses).
func TestServiceConcurrentClientsBudget(t *testing.T) {
	const budget = 2
	const parallel = 2
	t.Setenv("IC_CORE_BUDGET", "2")
	_, c := startServer(t, t.TempDir(), parallel)
	experiment.ResetPeakInFlight()

	grids := []*experiment.GridRequest{quickGrid("client-a", 21), quickGrid("client-b", 22)}
	var wg sync.WaitGroup
	infos := make([]JobInfo, len(grids))
	errs := make([]error, len(grids))
	for i, g := range grids {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			j, err := c.Submit(ctx, g)
			if err == nil {
				j, err = c.Wait(ctx, j.ID, nil)
			}
			infos[i], errs[i] = j, err
		}()
	}
	wg.Wait()
	for i := range grids {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if infos[i].State != JobDone {
			t.Fatalf("client %d job state %q: %s", i, infos[i].State, infos[i].Error)
		}
		thr, eng, err := experiment.BlackholeSweep(*grids[i].Blackhole, grids[i].Malicious, grids[i].Levels, grids[i].Runs, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := thr.StringWithCI() + "\n" + eng.StringWithCI() + "\n"
		got, err := c.Tables(context.Background(), infos[i].ID)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("client %d tables differ from CLI sweep", i)
		}
	}
	if peak := experiment.PeakInFlightReplicas(); peak > budget+parallel {
		t.Fatalf("peak in-flight replicas %d exceeds budget %d + parallel %d", peak, budget, parallel)
	}
}

// TestServiceDrainResume pins the crash-recovery contract: a service
// stopped mid-grid (drain, then a simulated hard kill leaving the job
// marked running) resumes on restart, never recomputes replicas already
// in the store, and the store stays Verify-clean throughout.
func TestServiceDrainResume(t *testing.T) {
	dir := t.TempDir()
	srv1, err := New(Options{Dir: dir, Parallel: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	run1 := make(chan struct{})
	go func() {
		defer close(run1)
		srv1.Run(ctx1)
	}()

	grid := quickGrid("resume", 31)
	job, err := srv1.Submit(grid)
	if err != nil {
		t.Fatal(err)
	}
	// Interrupt once at least one replica has landed in the store.
	deadline := time.Now().Add(60 * time.Second)
	for {
		ms, err := srv1.Store().Manifests()
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no replica landed within 60s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel1()
	<-run1
	landed, err := srv1.Store().Manifests()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.Store().Verify(); err != nil {
		t.Fatalf("store corrupt after drain: %v", err)
	}

	// The drained job must be queued (or already done if all replicas beat
	// the cancel). Simulate a hard kill on top: a crashed process leaves
	// the record saying "running"; restart must requeue it all the same.
	j, ok := srv1.Job(job.ID)
	if !ok {
		t.Fatal("job record lost")
	}
	if j.State == JobQueued {
		j.State = JobRunning
		b, _ := json.Marshal(j)
		if err := os.WriteFile(filepath.Join(dir, "jobs", job.ID+".json"), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	srv2, c2 := startServer(t, dir, 1)
	final, err := c2.Wait(context.Background(), job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone {
		t.Fatalf("resumed job state %q: %s", final.State, final.Error)
	}
	if final.Computed+final.Cached != 4 {
		t.Fatalf("resumed job computed=%d cached=%d, want 4 total", final.Computed, final.Cached)
	}
	if final.Cached < len(landed) {
		t.Fatalf("resumed job cached %d < %d replicas already in the store (recompute!)", final.Cached, len(landed))
	}
	if err := srv2.Store().Verify(); err != nil {
		t.Fatalf("store corrupt after resume: %v", err)
	}

	// The resumed job's tables must match a fresh in-process sweep.
	thr, eng, err := experiment.BlackholeSweep(*grid.Blackhole, grid.Malicious, grid.Levels, grid.Runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := thr.StringWithCI() + "\n" + eng.StringWithCI() + "\n"
	got, err := c2.Tables(context.Background(), job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("resumed tables differ from CLI sweep:\n--- sweep ---\n%s--- resumed ---\n%s", want, got)
	}
}

// TestSubmitRejectsBadGrids: the HTTP layer must reject malformed and
// unknown-field submissions before anything queues.
func TestSubmitRejectsBadGrids(t *testing.T) {
	_, c := startServer(t, t.TempDir(), 1)
	ctx := context.Background()
	bad := quickGrid("bad", 1)
	bad.Runs = 0
	if _, err := c.Submit(ctx, bad); err == nil {
		t.Fatal("zero-runs grid accepted")
	}
	resp, err := c.http().Post(c.Base+"/jobs", "application/json",
		strings.NewReader(`{"name":"x","kind":"blackhole","surprise":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("unknown-field submission got %d, want 400", resp.StatusCode)
	}
}
