// Client for the experiment service — the repro driver, the CI smoke and
// the integration tests all speak to icserved through it.
package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"innercircle/internal/experiment"
)

// Client talks to one icserved instance.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// decodeError surfaces the service's {"error": ...} body.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 64*1024)).Decode(&e) == nil && e.Error != "" {
		return fmt.Errorf("serve: %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("serve: %s", resp.Status)
}

// Submit posts a grid and returns the queued job.
func (c *Client) Submit(ctx context.Context, g *experiment.GridRequest) (JobInfo, error) {
	body, err := json.Marshal(g)
	if err != nil {
		return JobInfo{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return JobInfo{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return JobInfo{}, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return JobInfo{}, decodeError(resp)
	}
	defer resp.Body.Close()
	var j JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return JobInfo{}, err
	}
	return j, nil
}

// Job fetches one job's record.
func (c *Client) Job(ctx context.Context, id string) (JobInfo, error) {
	var j JobInfo
	err := c.getJSON(ctx, "/jobs/"+id, &j)
	return j, err
}

// Wait follows a job's event stream until its terminal line, invoking
// onEvent (when non-nil) per event, then returns the job's final record.
func (c *Client) Wait(ctx context.Context, id string, onEvent func(Event)) (JobInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/jobs/"+id+"/events", nil)
	if err != nil {
		return JobInfo{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return JobInfo{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return JobInfo{}, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	sawEnd := false
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			resp.Body.Close()
			return JobInfo{}, fmt.Errorf("serve: event line %q: %w", sc.Text(), err)
		}
		if onEvent != nil {
			onEvent(e)
		}
		if e.Type == "end" {
			sawEnd = true
			break
		}
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		return JobInfo{}, err
	}
	if !sawEnd {
		return JobInfo{}, fmt.Errorf("serve: job %s event stream ended without a terminal line", id)
	}
	return c.Job(ctx, id)
}

// Tables fetches a done job's rendered tables (CLI-identical text).
func (c *Client) Tables(ctx context.Context, id string) (string, error) {
	return c.getText(ctx, "/jobs/"+id+"/tables")
}

// TablesCSV fetches a done job's long-form CSV.
func (c *Client) TablesCSV(ctx context.Context, id string) (string, error) {
	return c.getText(ctx, "/jobs/"+id+"/tables.csv")
}

// Manifest fetches a done job's run manifest.
func (c *Client) Manifest(ctx context.Context, id string) ([]byte, error) {
	t, err := c.getText(ctx, "/jobs/"+id+"/manifest")
	return []byte(t), err
}

// Artifact fetches raw result bytes by digest.
func (c *Client) Artifact(ctx context.Context, digest string) ([]byte, error) {
	t, err := c.getText(ctx, "/artifacts/"+digest)
	return []byte(t), err
}

func (c *Client) getText(ctx context.Context, path string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
