// HTTP surface of the experiment service. Go 1.22 pattern routing; all
// bodies are JSON except the rendered-table and event-stream endpoints,
// which are text the CLIs and shell tools can consume directly.
package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"innercircle/internal/experiment"
)

// Handler returns the service's HTTP mux:
//
//	POST /jobs              submit a grid (experiment.GridRequest JSON) → JobInfo
//	GET  /jobs              list jobs
//	GET  /jobs/{id}         one job's record
//	GET  /jobs/{id}/events  JSONL progress; follows until the "end" line
//	                        (add ?follow=0 for a non-blocking snapshot)
//	GET  /jobs/{id}/tables  rendered figure tables (text, CLI-identical)
//	GET  /jobs/{id}/tables.csv  long-form CSV of the same tables
//	GET  /jobs/{id}/manifest    run manifest (artifact.RunManifest JSON)
//	GET  /artifacts/{digest}    raw result bytes from the store
//	GET  /healthz           liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, j)
	})
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/tables", s.handleJobFile(s.tablesPath, "text/plain; charset=utf-8"))
	mux.HandleFunc("GET /jobs/{id}/tables.csv", s.handleJobFile(s.csvPath, "text/csv; charset=utf-8"))
	mux.HandleFunc("GET /jobs/{id}/manifest", s.handleJobFile(s.manifestPath, "application/json"))
	mux.HandleFunc("GET /artifacts/{digest}", func(w http.ResponseWriter, r *http.Request) {
		b, err := s.store.GetResult(r.PathValue("digest"))
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var g experiment.GridRequest
	if err := dec.Decode(&g); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decoding grid request: %v", err))
		return
	}
	j, err := s.Submit(&g)
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "queue full") {
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, j)
}

// handleEvents serves a job's JSONL stream. By default it follows: lines
// are flushed as they land and the response ends when the terminal "end"
// line is written (or the client goes away). ?follow=0 returns whatever
// exists right now.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Job(id); !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	follow := r.URL.Query().Get("follow") != "0"
	flusher, _ := w.(http.Flusher)
	var offset int64
	for {
		n, terminal, err := s.copyEvents(w, id, offset)
		offset += n
		if n > 0 && flusher != nil {
			flusher.Flush()
		}
		if err != nil || terminal || !follow {
			return
		}
		// A queued/running job may simply not have produced its next line
		// yet; a failed/done job without a terminal line (legacy stream)
		// must not hang the client forever.
		if j, ok := s.Job(id); !ok || (j.State != JobQueued && j.State != JobRunning && n == 0) {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// copyEvents streams complete lines from the job's event file starting at
// offset, reporting how many bytes were consumed and whether the terminal
// "end" line passed through.
func (s *Server) copyEvents(w io.Writer, id string, offset int64) (n int64, terminal bool, err error) {
	f, err := os.Open(s.eventsPath(id))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return 0, false, err
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		n += int64(len(line)) + 1
		if _, err := w.Write(append(line, '\n')); err != nil {
			return n, false, err
		}
		if bytes.Contains(line, []byte(`"type":"end"`)) {
			return n, true, nil
		}
	}
	return n, false, sc.Err()
}

// handleJobFile serves one of a job's result files, 404 until it exists.
func (s *Server) handleJobFile(path func(id string) string, contentType string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, ok := s.Job(id); !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		b, err := os.ReadFile(path(id))
		if os.IsNotExist(err) {
			httpError(w, http.StatusNotFound, "not available yet (job not done)")
			return
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", contentType)
		w.Write(b)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
