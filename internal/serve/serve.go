// Package serve is the long-running experiment service behind
// cmd/icserved: clients POST experiment grids (experiment.GridRequest),
// a bounded FIFO queue fans their replicas onto the worker pool under the
// core-token budget, every replica result lands in the content-addressed
// artifact store (internal/artifact), and the grid's figure tables are
// rebuilt from store bytes only — so a finished job's output is
// re-derivable, dedupable, and byte-identical to the corresponding CLI's.
//
// Durability model. Job records live at jobs/<id>.json (atomic writes)
// and replica results are persisted replica-by-replica as they finish, so
// a crash or SIGTERM loses at most the in-flight replicas' work: on
// restart, queued and running jobs re-enter the queue, and every replica
// already in the store is a manifest hit that is never recomputed. A
// job's JSONL event stream (jobs/<id>.events.jsonl) is rewritten on each
// attempt and terminates with an "end" line — the signal clients follow.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"innercircle/internal/artifact"
	"innercircle/internal/experiment"
	"innercircle/internal/sim"
)

// Job states.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobInfo is a job's public record — what GET /jobs/{id} returns and what
// jobs/<id>.json persists.
type JobInfo struct {
	ID        string                  `json:"id"`
	Name      string                  `json:"name"`
	State     string                  `json:"state"`
	CreatedAt string                  `json:"created_at"`
	Grid      *experiment.GridRequest `json:"grid"`
	// Total is the grid's replica count; Computed and Cached split it into
	// replicas this run executed versus artifact-store hits.
	Total    int `json:"total,omitempty"`
	Computed int `json:"computed,omitempty"`
	Cached   int `json:"cached,omitempty"`
	// TablesSHA256 digests the rendered tables of a done job.
	TablesSHA256 string `json:"tables_sha256,omitempty"`
	Error        string `json:"error,omitempty"`
}

// Event is one line of a job's JSONL progress stream. Type "point"
// reports a replica (computed or served from the store); type "end"
// terminates the stream with the job's final state.
type Event struct {
	Type string `json:"type"`
	// Point fields.
	Done      int    `json:"done,omitempty"`
	Total     int    `json:"total,omitempty"`
	Label     string `json:"label,omitempty"`
	SpecSHA   string `json:"spec_sha256,omitempty"`
	ResultSHA string `json:"result_sha256,omitempty"`
	FromCache bool   `json:"from_cache,omitempty"`
	// End fields.
	State        string `json:"state,omitempty"`
	Computed     int    `json:"computed,omitempty"`
	Cached       int    `json:"cached,omitempty"`
	TablesSHA256 string `json:"tables_sha256,omitempty"`
	Error        string `json:"error,omitempty"`
}

// Options configures a Server.
type Options struct {
	// Dir is the service's state root: Dir/store holds the artifact store,
	// Dir/jobs the job records, event streams and rendered tables.
	Dir string
	// Parallel is how many jobs run concurrently (default 1). Replicas
	// within a job always run on the worker pool; Parallel only overlaps
	// distinct jobs.
	Parallel int
	// QueueCap bounds the FIFO of queued jobs (default 64); Submit fails
	// when the queue is full rather than buffering without limit.
	QueueCap int
	// Logf, when set, receives service log lines.
	Logf func(format string, args ...any)
}

// Server owns the queue, the artifact store and the job records. Create
// with New, serve HTTP via Handler, and drive the queue with Run.
type Server struct {
	opts  Options
	store *artifact.Store

	mu   sync.Mutex
	jobs map[string]*JobInfo
	seq  int

	queue chan string
}

// New opens (creating if needed) the service state under opts.Dir and
// requeues any job a previous process left queued or running.
func New(opts Options) (*Server, error) {
	if opts.Parallel <= 0 {
		opts.Parallel = 1
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 64
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	store, err := artifact.Open(filepath.Join(opts.Dir, "store"))
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(jobsDir(opts.Dir), 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		opts:  opts,
		store: store,
		jobs:  make(map[string]*JobInfo),
		queue: make(chan string, opts.QueueCap),
	}
	if err := s.loadJobs(); err != nil {
		return nil, err
	}
	return s, nil
}

// Store returns the service's artifact store.
func (s *Server) Store() *artifact.Store { return s.store }

func jobsDir(root string) string { return filepath.Join(root, "jobs") }

func (s *Server) jobPath(id string) string {
	return filepath.Join(jobsDir(s.opts.Dir), id+".json")
}

func (s *Server) eventsPath(id string) string {
	return filepath.Join(jobsDir(s.opts.Dir), id+".events.jsonl")
}

func (s *Server) tablesPath(id string) string {
	return filepath.Join(jobsDir(s.opts.Dir), id+".tables.txt")
}

func (s *Server) csvPath(id string) string {
	return filepath.Join(jobsDir(s.opts.Dir), id+".tables.csv")
}

func (s *Server) manifestPath(id string) string {
	return filepath.Join(jobsDir(s.opts.Dir), id+".manifest.json")
}

// loadJobs restores job records from disk. Jobs found queued or running
// (the process died under them) re-enter the queue in ID order — IDs are
// sequence-numbered, so the order of their original submission holds.
func (s *Server) loadJobs() error {
	entries, err := os.ReadDir(jobsDir(s.opts.Dir))
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	var resume []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".manifest.json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(jobsDir(s.opts.Dir), name))
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		var j JobInfo
		if err := json.Unmarshal(b, &j); err != nil {
			return fmt.Errorf("serve: job record %s: %w", name, err)
		}
		s.jobs[j.ID] = &j
		if n, ok := seqOf(j.ID); ok && n >= s.seq {
			s.seq = n + 1
		}
		if j.State == JobQueued || j.State == JobRunning {
			resume = append(resume, j.ID)
		}
	}
	sort.Strings(resume)
	for _, id := range resume {
		j := s.jobs[id]
		j.State = JobQueued
		if err := s.persist(j); err != nil {
			return err
		}
		select {
		case s.queue <- id:
			s.opts.Logf("serve: resuming job %s (%s)", id, j.Name)
		default:
			return fmt.Errorf("serve: queue too small to resume %d jobs (cap %d)", len(resume), s.opts.QueueCap)
		}
	}
	return nil
}

func seqOf(id string) (int, bool) {
	if !strings.HasPrefix(id, "j") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(id, "j"))
	if err != nil {
		return 0, false
	}
	return n, true
}

// persist writes a job record atomically. Callers must hold s.mu or own
// the job exclusively.
func (s *Server) persist(j *JobInfo) error {
	b, err := json.Marshal(j)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return writeAtomic(s.jobPath(j.ID), b)
}

// Submit validates a grid, persists a queued job for it and enqueues it.
// It fails when the queue is full (bounded FIFO, no unbounded buffering).
func (s *Server) Submit(g *experiment.GridRequest) (JobInfo, error) {
	if err := g.Validate(); err != nil {
		return JobInfo{}, err
	}
	points, err := g.Points()
	if err != nil {
		return JobInfo{}, err
	}
	s.mu.Lock()
	id := fmt.Sprintf("j%06d", s.seq)
	s.seq++
	j := &JobInfo{
		ID:        id,
		Name:      g.Name,
		State:     JobQueued,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Grid:      g,
		Total:     len(points),
	}
	select {
	case s.queue <- id:
	default:
		s.seq-- // the job never existed
		s.mu.Unlock()
		return JobInfo{}, fmt.Errorf("serve: job queue full (%d queued)", s.opts.QueueCap)
	}
	s.jobs[id] = j
	err = s.persist(j)
	info := *j
	s.mu.Unlock()
	if err != nil {
		return JobInfo{}, err
	}
	s.opts.Logf("serve: queued job %s (%s, %d replicas)", id, g.Name, len(points))
	return info, nil
}

// Job returns a snapshot of one job's record.
func (s *Server) Job(id string) (JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return *j, true
}

// Jobs returns snapshots of every job, in ID (= submission) order.
func (s *Server) Jobs() []JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobInfo, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Run drives the job queue until ctx is cancelled, then drains: running
// jobs stop at the next replica boundary (in-flight replicas finish and
// their results persist), are re-marked queued for the next process, and
// Run returns. It is the blocking heart of icserved.
func (s *Server) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for i := 0; i < s.opts.Parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case id := <-s.queue:
					s.runJob(ctx, id)
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// setState transitions a job and persists the record.
func (s *Server) setState(id, state string, mut func(*JobInfo)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	j.State = state
	if mut != nil {
		mut(j)
	}
	if err := s.persist(j); err != nil {
		s.opts.Logf("serve: persisting job %s: %v", id, err)
	}
}

// runJob executes one job: resolve every replica against the store, run
// the misses on the worker pool (sized by the spare core-token budget),
// then rebuild the grid's tables from store bytes only.
func (s *Server) runJob(ctx context.Context, id string) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.State != JobQueued {
		s.mu.Unlock()
		return
	}
	grid := j.Grid
	s.mu.Unlock()
	s.setState(id, JobRunning, nil)
	start := time.Now()

	ev, err := newEventLog(s.eventsPath(id))
	if err != nil {
		s.fail(id, ev, err)
		return
	}
	defer ev.Close()

	points, err := grid.Points()
	if err != nil {
		s.fail(id, ev, err)
		return
	}

	// Resolve each point against the store: a manifest whose result object
	// exists is a cache hit and is never recomputed.
	type resolved struct {
		spec      []byte
		specSHA   string
		resultSHA string
		cached    bool
	}
	rs := make([]resolved, len(points))
	var misses []int
	for i, p := range points {
		spec, err := p.Spec.Canonical()
		if err != nil {
			s.fail(id, ev, err)
			return
		}
		rs[i] = resolved{spec: spec, specSHA: artifact.Sum(spec)}
		if m, ok, err := s.store.GetManifest(rs[i].specSHA); err != nil {
			s.fail(id, ev, err)
			return
		} else if ok && s.store.HasResult(m.ResultSHA256) {
			rs[i].resultSHA = m.ResultSHA256
			rs[i].cached = true
		} else {
			misses = append(misses, i)
		}
	}
	done := 0
	for i, p := range points {
		if rs[i].cached {
			done++
			ev.Emit(Event{Type: "point", Done: done, Total: len(points), Label: p.Label,
				SpecSHA: rs[i].specSHA, ResultSHA: rs[i].resultSHA, FromCache: true})
		}
	}

	// Run the misses. Each replica persists its own result + manifest the
	// moment it finishes — the unit of crash-recovery granularity.
	if len(misses) > 0 {
		maxW := experiment.Workers()
		extra := sim.AcquireCores(maxW - 1)
		workers := 1 + extra
		jobs := make([]experiment.Job, len(misses))
		for k, i := range misses {
			i := i
			p := points[i]
			jobs[k] = experiment.Job{
				Index: k,
				Label: p.Label,
				Run: func() (any, error) {
					t0 := time.Now()
					res, shards, err := p.Spec.Run()
					if err != nil {
						return nil, err
					}
					resultSHA, err := s.store.PutResult(res)
					if err != nil {
						return nil, err
					}
					err = s.store.PutManifest(artifact.Manifest{
						SpecSHA256:   rs[i].specSHA,
						ResultSHA256: resultSHA,
						Seed:         p.Spec.Seed(),
						GitRev:       artifact.GitRev(),
						Knobs:        artifact.KnobSnapshot(),
						Shards:       shards,
						WallMs:       float64(time.Since(t0)) / float64(time.Millisecond),
						CreatedAt:    artifact.Now(),
					})
					if err != nil {
						return nil, err
					}
					return resultSHA, nil
				},
			}
		}
		_, err := experiment.RunJobsCtx(ctx, jobs, workers, func(nDone, _ int, jb experiment.Job, result any) {
			i := misses[jb.Index]
			rs[i].resultSHA = result.(string)
			done++
			ev.Emit(Event{Type: "point", Done: done, Total: len(points), Label: jb.Label,
				SpecSHA: rs[i].specSHA, ResultSHA: rs[i].resultSHA})
		})
		sim.ReleaseCores(extra)
		if ctx.Err() != nil {
			// Drain: finished replicas are already in the store; hand the
			// job back to the queue for the next process.
			s.setState(id, JobQueued, nil)
			s.opts.Logf("serve: job %s interrupted, requeued", id)
			return
		}
		if err != nil {
			s.fail(id, ev, err)
			return
		}
	}

	// Rebuild the tables from the store only: every result byte folded
	// below was read back by digest, cached and computed alike.
	results := make([][]byte, len(points))
	for i := range points {
		b, err := s.store.GetResult(rs[i].resultSHA)
		if err != nil {
			s.fail(id, ev, err)
			return
		}
		results[i] = b
	}
	tables, err := grid.Tables(results)
	if err != nil {
		s.fail(id, ev, err)
		return
	}
	rendered := grid.Render(tables)
	tablesSHA := artifact.Sum([]byte(rendered))
	if err := writeAtomic(s.tablesPath(id), []byte(rendered)); err != nil {
		s.fail(id, ev, err)
		return
	}
	if err := writeAtomic(s.csvPath(id), []byte(grid.CSV(tables))); err != nil {
		s.fail(id, ev, err)
		return
	}
	gridSpec, err := artifact.Canonical(grid)
	if err != nil {
		s.fail(id, ev, err)
		return
	}
	manifest := artifact.RunManifest{
		Name:         grid.Name,
		SpecSHA256:   artifact.Sum(gridSpec),
		TablesSHA256: tablesSHA,
		Seed:         grid.BaseSeed(),
		GitRev:       artifact.GitRev(),
		Knobs:        artifact.KnobSnapshot(),
		WallMs:       float64(time.Since(start)) / float64(time.Millisecond),
		CreatedAt:    artifact.Now(),
	}
	mb, err := json.Marshal(manifest)
	if err != nil {
		s.fail(id, ev, err)
		return
	}
	if err := writeAtomic(s.manifestPath(id), mb); err != nil {
		s.fail(id, ev, err)
		return
	}
	computed := len(misses)
	cached := len(points) - computed
	s.setState(id, JobDone, func(j *JobInfo) {
		j.Computed = computed
		j.Cached = cached
		j.TablesSHA256 = tablesSHA
		j.Error = ""
	})
	ev.Emit(Event{Type: "end", State: JobDone, Computed: computed, Cached: cached, TablesSHA256: tablesSHA})
	s.opts.Logf("serve: job %s done (%d computed, %d cached, tables %s)", id, computed, cached, tablesSHA[:12])
}

// fail marks a job failed and terminates its event stream.
func (s *Server) fail(id string, ev *eventLog, err error) {
	s.opts.Logf("serve: job %s failed: %v", id, err)
	s.setState(id, JobFailed, func(j *JobInfo) { j.Error = err.Error() })
	if ev != nil {
		ev.Emit(Event{Type: "end", State: JobFailed, Error: err.Error()})
	}
}

// eventLog appends JSONL events to a job's stream file. Emit is
// serialized by the pool's progress contract plus the cached-prefix loop
// running before the pool starts; a mutex keeps it safe regardless.
type eventLog struct {
	mu sync.Mutex
	f  *os.File
}

// newEventLog truncates and reopens a job's event stream — each run
// attempt rewrites the stream from its own cache-resolution state.
func newEventLog(path string) (*eventLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return &eventLog{f: f}, nil
}

// Emit appends one event line and syncs it to disk.
func (l *eventLog) Emit(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	if _, err := l.f.Write(append(b, '\n')); err == nil {
		l.f.Sync()
	}
}

// Close closes the stream file.
func (l *eventLog) Close() { l.f.Close() }

// writeAtomic writes b to path via tmp+fsync+rename.
func writeAtomic(path string, b []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("serve: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("serve: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("serve: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}
