package faults

import (
	"strings"
	"testing"

	"innercircle/internal/sim"
)

func TestWindowActive(t *testing.T) {
	cases := []struct {
		w    Window
		now  sim.Time
		want bool
	}{
		{Window{}, 0, true},
		{Window{}, 1e6, true},
		{Window{From: 10}, 9.99, false},
		{Window{From: 10}, 10, true},
		{Window{To: 10}, 9.99, true},
		{Window{To: 10}, 10, false},
		{Window{From: 5, To: 10}, 7, true},
		{Window{Every: 10, For: 3}, 0, true},
		{Window{Every: 10, For: 3}, 2.99, true},
		{Window{Every: 10, For: 3}, 3, false},
		{Window{Every: 10, For: 3}, 9.99, false},
		{Window{Every: 10, For: 3}, 10, true},
		{Window{Every: 10, For: 3}, 12.5, true},
		{Window{From: 100, Every: 10, For: 3}, 5, false},
		{Window{From: 100, Every: 10, For: 3}, 101, true},
		{Window{From: 100, Every: 10, For: 3}, 105, false},
	}
	for _, c := range cases {
		if got := c.w.active(c.now); got != c.want {
			t.Errorf("%+v active(%v) = %v, want %v", c.w, c.now, got, c.want)
		}
	}
}

func TestSelectorResolve(t *testing.T) {
	order := []int{7, 3, 5}
	got, err := Selector{Count: 2}.resolve(10, order)
	if err != nil || len(got) != 2 || got[0] != 7 || got[1] != 3 {
		t.Fatalf("count selector = %v, %v", got, err)
	}
	if _, err := (Selector{Count: 4}).resolve(10, order); err == nil {
		t.Fatal("count beyond order should fail")
	}
	got, err = Selector{All: true}.resolve(3, nil)
	if err != nil || len(got) != 3 {
		t.Fatalf("all selector = %v, %v", got, err)
	}
	got, err = Selector{Nodes: []int{2, 0, 2}}.resolve(3, nil)
	if err != nil || len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Fatalf("nodes selector should dedup preserving order, got %v, %v", got, err)
	}
	if _, err := (Selector{Nodes: []int{3}}).resolve(3, nil); err == nil {
		t.Fatal("out-of-range node should fail")
	}
	got, err = Selector{Pred: func(i int) bool { return i%2 == 0 }}.resolve(5, nil)
	if err != nil || len(got) != 3 {
		t.Fatalf("pred selector = %v, %v", got, err)
	}
	if _, err := (Selector{}).resolve(3, nil); err == nil {
		t.Fatal("empty selector should fail")
	}
}

func TestValidateRejectsBadEntries(t *testing.T) {
	bad := []Campaign{
		{Entries: []Entry{{Fault: "gremlin", Targets: Selector{All: true}}}},
		{Entries: []Entry{{Fault: Drop, Targets: Selector{All: true}}}},                                           // missing p
		{Entries: []Entry{{Fault: Drop, Params: Params{P: 1.5}, Targets: Selector{All: true}}}},                   // p > 1
		{Entries: []Entry{{Fault: Delay, Targets: Selector{All: true}}}},                                          // missing max_delay
		{Entries: []Entry{{Fault: Delay, Params: Params{MinDelay: 2, MaxDelay: 1}, Targets: Selector{All: true}}}},
		{Entries: []Entry{{Fault: Drop, Params: Params{P: 0.5}, Dir: "sideways", Targets: Selector{All: true}}}},
		{Entries: []Entry{{Fault: Blackhole, Dir: DirOut, Targets: Selector{All: true}}}},                         // dir on non-wire fault
		{Entries: []Entry{{Fault: Reorder, Dir: DirBoth, Targets: Selector{All: true}}}},
		{Entries: []Entry{{Fault: Spoof, Dir: DirIn, Targets: Selector{All: true}}}},
		{Entries: []Entry{{Fault: Blackhole, Targets: Selector{All: true, Count: 2}}}},                            // two selector fields
		{Entries: []Entry{{Fault: Blackhole, Targets: Selector{All: true}, Schedule: Window{From: 5, To: 3}}}},
		{Entries: []Entry{{Fault: Blackhole, Targets: Selector{All: true}, Schedule: Window{Every: 5, For: 6}}}},
		{Entries: []Entry{{Fault: Blackhole, Targets: Selector{All: true}, Schedule: Window{For: 6}}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("campaign %d should fail validation: %+v", i, c.Entries[0])
		}
	}
}

func TestParseJSON(t *testing.T) {
	c, err := Parse([]byte(`{
		"name": "mixed",
		"entries": [
			{"fault": "grayhole", "params": {"p": 0.5}, "targets": {"count": 3}},
			{"fault": "corrupt", "dir": "out", "params": {"p": 0.2}, "targets": {"nodes": [4, 7]},
			 "schedule": {"from": 60, "to": 240}},
			{"fault": "crash", "targets": {"nodes": [1]}, "schedule": {"every": 30, "for": 10}},
			{"fault": "spoof", "params": {"as": 0}, "targets": {"nodes": [2]}}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "mixed" || len(c.Entries) != 4 {
		t.Fatalf("parsed %+v", c)
	}
	if c.Entries[0].Fault != Grayhole || c.Entries[0].Params.P != 0.5 || c.Entries[0].Targets.Count != 3 {
		t.Fatalf("entry 0 = %+v", c.Entries[0])
	}
	if c.Entries[3].Params.As == nil || *c.Entries[3].Params.As != 0 {
		t.Fatalf("spoof victim not parsed: %+v", c.Entries[3].Params)
	}
	if _, err := Parse([]byte(`{"entries": [{"fault": "drop", "probability": 1}]}`)); err == nil {
		t.Fatal("unknown fields should be rejected")
	}
	if _, err := Parse([]byte(`{"entries": [{"fault": "drop", "params": {"p": 2}, "targets": {"all": true}}]}`)); err == nil {
		t.Fatal("invalid campaigns should be rejected at parse time")
	}
}

func TestParsePreset(t *testing.T) {
	for spec, wantEntries := range map[string]int{
		"clean":          0,
		"blackhole:3":    1,
		"grayhole:2:0.5": 1,
		"drop:2:0.3":     1,
		"corrupt:1:0.5":  1,
		"spoof:2":        1,
		"byzantine:2":    1,
		"churn:4:60:20":  1,
	} {
		c, err := ParsePreset(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if len(c.Entries) != wantEntries {
			t.Fatalf("%s: %d entries, want %d", spec, len(c.Entries), wantEntries)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: preset should validate: %v", spec, err)
		}
	}
	for _, spec := range []string{"", "gremlin:1", "blackhole", "blackhole:x", "grayhole:1", "churn:1:10"} {
		if _, err := ParsePreset(spec); err == nil {
			t.Fatalf("%q should fail", spec)
		}
	}
}

func TestPresetNamesAreStable(t *testing.T) {
	// CampaignSweep uses the name as the table column label.
	if c := BlackholePreset(3); c.Name != "blackhole-3" {
		t.Fatalf("name = %q", c.Name)
	}
	if c := GrayholePreset(2, 0.5); !strings.HasPrefix(c.Name, "grayhole-2") {
		t.Fatalf("name = %q", c.Name)
	}
	if c := BlackholePreset(0); len(c.Entries) != 0 {
		t.Fatal("zero attackers should produce a clean campaign")
	}
}
