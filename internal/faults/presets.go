package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// BlackholePreset reproduces the repo's classic black-hole adversary
// (Fig. 7): n always-on black holes picked from the fabric's attacker
// order. n = 0 yields a clean campaign.
func BlackholePreset(n int) Campaign {
	c := Campaign{Name: fmt.Sprintf("blackhole-%d", n)}
	if n > 0 {
		c.Entries = []Entry{{Fault: Blackhole, Targets: Selector{Count: n}}}
	}
	return c
}

// GrayholePreset reproduces the gray-hole adversary formerly hardcoded in
// the AODV tests: n nodes that misbehave with probability p per
// opportunity.
func GrayholePreset(n int, p float64) Campaign {
	c := Campaign{Name: fmt.Sprintf("grayhole-%d-p%g", n, p)}
	if n > 0 {
		c.Entries = []Entry{{Fault: Grayhole, Params: Params{P: p}, Targets: Selector{Count: n}}}
	}
	return c
}

// ChurnPreset crashes n nodes periodically: down for the first dn seconds
// of every cycle seconds, forever.
func ChurnPreset(n int, cycle, dn float64) Campaign {
	return Campaign{
		Name: fmt.Sprintf("churn-%d", n),
		Entries: []Entry{{
			Fault:    Crash,
			Targets:  Selector{Count: n},
			Schedule: Window{Every: cycle, For: dn},
		}},
	}
}

// CorruptPreset makes n nodes flip one bit in a fraction p of their
// outgoing signature-bearing messages (and, via the fabric's Mutate hook,
// application payloads).
func CorruptPreset(n int, p float64) Campaign {
	return Campaign{
		Name: fmt.Sprintf("corrupt-%d-p%g", n, p),
		Entries: []Entry{{
			Fault:   Corrupt,
			Params:  Params{P: p},
			Targets: Selector{Count: n},
		}},
	}
}

// SpoofPreset makes n nodes forge STS beacons impersonating random
// victims.
func SpoofPreset(n int) Campaign {
	return Campaign{
		Name:    fmt.Sprintf("spoof-%d", n),
		Entries: []Entry{{Fault: Spoof, Targets: Selector{Count: n}}},
	}
}

// ByzantinePreset makes n nodes corrupt the partial signatures in their
// voting acks.
func ByzantinePreset(n int) Campaign {
	return Campaign{
		Name:    fmt.Sprintf("byzantine-%d", n),
		Entries: []Entry{{Fault: Byzantine, Targets: Selector{Count: n}}},
	}
}

// DropPreset makes n nodes lose a fraction p of their outgoing messages.
func DropPreset(n int, p float64) Campaign {
	return Campaign{
		Name:    fmt.Sprintf("drop-%d-p%g", n, p),
		Entries: []Entry{{Fault: Drop, Params: Params{P: p}, Targets: Selector{Count: n}}},
	}
}

// ParsePreset builds a preset campaign from a colon-separated spec, the
// cmd/faultsweep shorthand:
//
//	clean
//	blackhole:N      grayhole:N:P    drop:N:P    corrupt:N:P
//	spoof:N          byzantine:N     churn:N:EVERY:FOR
func ParsePreset(spec string) (Campaign, error) {
	parts := strings.Split(spec, ":")
	bad := func() (Campaign, error) {
		return Campaign{}, fmt.Errorf("faults: bad preset spec %q", spec)
	}
	argN := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("faults: preset %q: missing argument %d", spec, i)
		}
		return strconv.Atoi(parts[i])
	}
	argF := func(i int) (float64, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("faults: preset %q: missing argument %d", spec, i)
		}
		return strconv.ParseFloat(parts[i], 64)
	}
	switch parts[0] {
	case "clean":
		if len(parts) != 1 {
			return bad()
		}
		return Campaign{Name: "clean"}, nil
	case "blackhole", "spoof", "byzantine":
		if len(parts) != 2 {
			return bad()
		}
		n, err := argN(1)
		if err != nil {
			return bad()
		}
		switch parts[0] {
		case "blackhole":
			return BlackholePreset(n), nil
		case "spoof":
			return SpoofPreset(n), nil
		default:
			return ByzantinePreset(n), nil
		}
	case "grayhole", "drop", "corrupt":
		if len(parts) != 3 {
			return bad()
		}
		n, err1 := argN(1)
		p, err2 := argF(2)
		if err1 != nil || err2 != nil {
			return bad()
		}
		switch parts[0] {
		case "grayhole":
			return GrayholePreset(n, p), nil
		case "drop":
			return DropPreset(n, p), nil
		default:
			return CorruptPreset(n, p), nil
		}
	case "churn":
		if len(parts) != 4 {
			return bad()
		}
		n, err1 := argN(1)
		cycle, err2 := argF(2)
		dn, err3 := argF(3)
		if err1 != nil || err2 != nil || err3 != nil {
			return bad()
		}
		return ChurnPreset(n, cycle, dn), nil
	}
	return bad()
}
