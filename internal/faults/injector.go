package faults

import (
	"innercircle/internal/link"
	"innercircle/internal/sim"
	"innercircle/internal/sts"
	"innercircle/internal/vote"
)

// stage is one wire-fault instance bound to one node. Each stage owns a
// private RNG stream split from the fabric seed by (entry, node), so
// adding or removing an entry never perturbs another entry's draws.
type stage struct {
	entry int // index into the campaign, for the injection counters
	kind  Kind
	p     Params
	win   Window
	rng   *sim.RNG

	// reorder state: the held envelope and a generation counter that
	// invalidates the pending flush when an overtaking message releases
	// the envelope first.
	held    *link.Env
	heldGen int

	// spoof state.
	spoofAs  int  // victim node; -1 draws one per beacon
	numNodes int  // for victim draws
	self     link.NodeID
}

// Injector is one node's fault pipeline, installed as its link tap.
// Outbound stages run in campaign-entry order as a message is handed to
// the MAC; inbound stages likewise before delivery. It is not safe for
// concurrent use — like every simulation component it lives on a single
// replica's thread.
type Injector struct {
	k        *sim.Kernel
	out      []*stage
	in       []*stage
	injected []uint64 // shared per-entry counters, owned by Applied
	mutate   func(e link.Env, rng *sim.RNG) (link.Env, bool)
}

var _ link.Tap = (*Injector)(nil)

// Outbound implements link.Tap.
func (inj *Injector) Outbound(e link.Env, emit func(link.Env)) {
	inj.run(inj.out, 0, e, emit)
}

// Inbound implements link.Tap.
func (inj *Injector) Inbound(e link.Env, emit func(link.Env)) {
	inj.run(inj.in, 0, e, emit)
}

// run threads e through stages[i:]. Each stage forwards by calling next
// zero or more times, immediately or from a later kernel event.
func (inj *Injector) run(stages []*stage, i int, e link.Env, emit func(link.Env)) {
	if i >= len(stages) {
		emit(e)
		return
	}
	st := stages[i]
	next := func(e2 link.Env) { inj.run(stages, i+1, e2, emit) }
	if !st.win.active(inj.k.Now()) {
		next(e)
		return
	}
	switch st.kind {
	case Crash:
		// The node is down: everything is swallowed, both directions.
		inj.injected[st.entry]++

	case Drop:
		if st.rng.Float64() < st.p.P {
			inj.injected[st.entry]++
			return
		}
		next(e)

	case Delay:
		if !st.hit() {
			next(e)
			return
		}
		inj.injected[st.entry]++
		d := sim.Duration(st.rng.Uniform(st.p.MinDelay, st.p.MaxDelay))
		inj.k.MustSchedule(d, func() { next(e) })

	case Duplicate:
		if !st.hit() {
			next(e)
			return
		}
		inj.injected[st.entry]++
		copies := st.p.Copies
		if copies == 0 {
			copies = 1
		}
		next(e)
		for c := 0; c < copies; c++ {
			next(e)
		}

	case Corrupt:
		if !st.hit() {
			next(e)
			return
		}
		if e2, ok := inj.corrupt(e, st.rng); ok {
			inj.injected[st.entry]++
			next(e2)
			return
		}
		next(e)

	case Reorder:
		if st.held != nil {
			// A later message overtakes the held one: emit it first, then
			// release.
			held := *st.held
			st.held = nil
			st.heldGen++
			next(e)
			next(held)
			return
		}
		if !st.hit() {
			next(e)
			return
		}
		inj.injected[st.entry]++
		held := e
		st.held = &held
		gen := st.heldGen
		hold := st.p.Hold
		if hold == 0 {
			hold = 0.1
		}
		inj.k.MustSchedule(sim.Duration(hold), func() {
			// Nothing overtook the held message: release it late.
			if st.heldGen != gen || st.held == nil {
				return
			}
			e2 := *st.held
			st.held = nil
			st.heldGen++
			next(e2)
		})

	case Spoof:
		b, ok := e.Msg.(sts.BeaconMsg)
		if !ok || e.From != st.self {
			next(e)
			return
		}
		victim := st.spoofAs
		if victim < 0 {
			// Any node but ourselves.
			victim = (int(st.self) + 1 + st.rng.Intn(st.numNodes-1)) % st.numNodes
		}
		inj.injected[st.entry]++
		// Impersonate the victim with a far-future sequence number (a
		// replay-counter attack): unauthenticated receivers adopt the
		// forged beacon and then reject the victim's genuine ones as
		// stale; authenticated receivers reject the forgery, whose stale
		// signature cannot verify under the victim's key.
		b.From = link.NodeID(victim)
		b.Seq += 1 << 32
		e.From = link.NodeID(victim)
		e.Msg = b
		next(e)

	default:
		next(e)
	}
}

// hit draws the stage's per-message probability (default 1).
func (st *stage) hit() bool {
	return st.p.P == 0 || st.rng.Float64() < st.p.P
}

// corrupt flips one bit in a signature-bearing field of the message,
// modelling the adversarial channel noise of Hoza & Schulman. The
// fabric's Mutate hook runs first, so experiments can extend corruption
// to message types this package must not know about (e.g. application
// payloads). Envelopes are corrupted copy-on-write: the original message
// and its byte slices are never modified, since other receivers of the
// same broadcast share them.
func (inj *Injector) corrupt(e link.Env, rng *sim.RNG) (link.Env, bool) {
	if inj.mutate != nil {
		if e2, ok := inj.mutate(e, rng); ok {
			return e2, true
		}
	}
	switch m := e.Msg.(type) {
	case vote.AgreedMsg:
		if len(m.Sig.Data) == 0 {
			return e, false
		}
		m.Sig.Data = flipBit(m.Sig.Data, rng)
		e.Msg = m
		return e, true
	case vote.AckMsg:
		if len(m.Partial.Data) == 0 {
			return e, false
		}
		m.Partial.Data = flipBit(m.Partial.Data, rng)
		e.Msg = m
		return e, true
	case vote.ValueMsg:
		if len(m.Value) == 0 {
			return e, false
		}
		m.Value = flipBit(m.Value, rng)
		e.Msg = m
		return e, true
	case sts.BeaconMsg:
		if len(m.Sig) == 0 {
			return e, false
		}
		m.Sig = flipBit(m.Sig, rng)
		e.Msg = m
		return e, true
	}
	return e, false
}

// flipBit returns a copy of data with one RNG-chosen bit inverted.
func flipBit(data []byte, rng *sim.RNG) []byte {
	out := append([]byte(nil), data...)
	bit := rng.Intn(len(out) * 8)
	out[bit/8] ^= 1 << (bit % 8)
	return out
}
