package faults

import (
	"bytes"
	"testing"

	"innercircle/internal/crypto/thresh"
	"innercircle/internal/geo"
	"innercircle/internal/link"
	"innercircle/internal/mac"
	"innercircle/internal/mobility"
	"innercircle/internal/radio"
	"innercircle/internal/sim"
	"innercircle/internal/sts"
	"innercircle/internal/vote"
)

type wireMsg struct {
	body string
	size int
}

func (m wireMsg) Size() int { return m.size }

// testNet is a small chain of link services plus a fabric for Apply.
type testNet struct {
	k    *sim.Kernel
	svcs []*link.Service
}

func buildNet(n int) *testNet {
	k := sim.NewKernel()
	ch := radio.NewChannel(k, radio.Default80211())
	rng := sim.NewRNG(1)
	svcs := make([]*link.Service, n)
	for i := 0; i < n; i++ {
		m := mac.New(k, ch, mobility.Static(geo.Point{X: float64(100 * i)}), nil, rng.SplitN("mac", i), mac.Default80211())
		svcs[i] = link.NewService(m)
	}
	return &testNet{k: k, svcs: svcs}
}

func (tn *testNet) fabric(seed int64) Fabric {
	return Fabric{
		K:    tn.k,
		RNG:  sim.NewRNG(seed),
		N:    len(tn.svcs),
		Link: func(i int) LinkPort { return tn.svcs[i] },
	}
}

func (tn *testNet) apply(t *testing.T, c Campaign) *Applied {
	t.Helper()
	a, err := Apply(tn.fabric(7), &c)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestApplyDropFault(t *testing.T) {
	tn := buildNet(2)
	got := 0
	tn.svcs[1].OnRecv(func(e link.Env) { got++ })
	a := tn.apply(t, Campaign{Entries: []Entry{
		{Fault: Drop, Params: Params{P: 1}, Targets: Selector{Nodes: []int{0}}},
	}})
	for i := 0; i < 5; i++ {
		if err := tn.svcs[0].Send(tn.svcs[1].ID(), wireMsg{"x", 50}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tn.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("drop p=1 delivered %d messages", got)
	}
	if inj := a.Report().Entries[0].Injected; inj != 5 {
		t.Fatalf("injected = %d, want 5", inj)
	}
}

func TestApplyDropInbound(t *testing.T) {
	// The same entry aimed at the receiver's inbound side: node 0 is clean,
	// node 1 discards everything arriving.
	tn := buildNet(2)
	got := 0
	tn.svcs[1].OnRecv(func(e link.Env) { got++ })
	tn.apply(t, Campaign{Entries: []Entry{
		{Fault: Drop, Dir: DirIn, Params: Params{P: 1}, Targets: Selector{Nodes: []int{1}}},
	}})
	if err := tn.svcs[0].Send(tn.svcs[1].ID(), wireMsg{"x", 50}); err != nil {
		t.Fatal(err)
	}
	if err := tn.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("inbound drop delivered %d messages", got)
	}
}

func TestApplyDelayFault(t *testing.T) {
	tn := buildNet(2)
	var at sim.Time
	tn.svcs[1].OnRecv(func(e link.Env) { at = tn.k.Now() })
	tn.apply(t, Campaign{Entries: []Entry{
		{Fault: Delay, Params: Params{MinDelay: 0.25, MaxDelay: 0.25}, Targets: Selector{Nodes: []int{0}}},
	}})
	if err := tn.svcs[0].Send(tn.svcs[1].ID(), wireMsg{"slow", 50}); err != nil {
		t.Fatal(err)
	}
	if err := tn.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if at < 0.25 {
		t.Fatalf("delivery at %v, want >= 0.25s", at)
	}
}

func TestApplyDuplicateFault(t *testing.T) {
	tn := buildNet(2)
	got := 0
	tn.svcs[1].OnRecv(func(e link.Env) { got++ })
	tn.apply(t, Campaign{Entries: []Entry{
		{Fault: Duplicate, Params: Params{Copies: 2}, Targets: Selector{Nodes: []int{0}}},
	}})
	if err := tn.svcs[0].Send(tn.svcs[1].ID(), wireMsg{"x", 50}); err != nil {
		t.Fatal(err)
	}
	if err := tn.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("duplicate copies=2 delivered %d messages, want 3", got)
	}
}

func TestApplyCorruptFault(t *testing.T) {
	tn := buildNet(2)
	orig := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	var got vote.AgreedMsg
	tn.svcs[1].OnRecv(func(e link.Env) { got = e.Msg.(vote.AgreedMsg) })
	a := tn.apply(t, Campaign{Entries: []Entry{
		{Fault: Corrupt, Targets: Selector{Nodes: []int{0}}},
	}})
	msg := vote.AgreedMsg{Sig: thresh.Signature{Data: orig}}
	if err := tn.svcs[0].Send(tn.svcs[1].ID(), msg); err != nil {
		t.Fatal(err)
	}
	if err := tn.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got.Sig.Data, orig) {
		t.Fatal("signature arrived uncorrupted")
	}
	if !bytes.Equal(msg.Sig.Data, []byte{0xAA, 0xBB, 0xCC, 0xDD}) {
		t.Fatal("corrupt fault modified the sender's message in place")
	}
	if inj := a.Report().Entries[0].Injected; inj != 1 {
		t.Fatalf("injected = %d, want 1", inj)
	}
}

func TestApplyCorruptSkipsUnknownTypes(t *testing.T) {
	// Without a Mutate hook, corrupt only touches signature-bearing
	// messages; plain payloads pass through untouched and uncounted.
	tn := buildNet(2)
	var got wireMsg
	tn.svcs[1].OnRecv(func(e link.Env) { got = e.Msg.(wireMsg) })
	a := tn.apply(t, Campaign{Entries: []Entry{
		{Fault: Corrupt, Targets: Selector{Nodes: []int{0}}},
	}})
	if err := tn.svcs[0].Send(tn.svcs[1].ID(), wireMsg{"plain", 50}); err != nil {
		t.Fatal(err)
	}
	if err := tn.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if got.body != "plain" {
		t.Fatalf("got %+v", got)
	}
	if inj := a.Report().Entries[0].Injected; inj != 0 {
		t.Fatalf("injected = %d, want 0", inj)
	}
}

func TestApplyReorderFault(t *testing.T) {
	tn := buildNet(2)
	var bodies []string
	tn.svcs[1].OnRecv(func(e link.Env) { bodies = append(bodies, e.Msg.(wireMsg).body) })
	tn.apply(t, Campaign{Entries: []Entry{
		{Fault: Reorder, Params: Params{P: 0.999}, Targets: Selector{Nodes: []int{0}}},
	}})
	// The first message is held; the second overtakes it.
	if err := tn.svcs[0].Send(tn.svcs[1].ID(), wireMsg{"first", 50}); err != nil {
		t.Fatal(err)
	}
	if err := tn.svcs[0].Send(tn.svcs[1].ID(), wireMsg{"second", 50}); err != nil {
		t.Fatal(err)
	}
	if err := tn.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(bodies) != 2 || bodies[0] != "second" || bodies[1] != "first" {
		t.Fatalf("delivery order %v, want [second first]", bodies)
	}
}

func TestApplyReorderHoldDeadline(t *testing.T) {
	// With nothing overtaking it, the held message is released after Hold.
	tn := buildNet(2)
	var at sim.Time
	tn.svcs[1].OnRecv(func(e link.Env) { at = tn.k.Now() })
	tn.apply(t, Campaign{Entries: []Entry{
		{Fault: Reorder, Params: Params{P: 0.999, Hold: 0.4}, Targets: Selector{Nodes: []int{0}}},
	}})
	if err := tn.svcs[0].Send(tn.svcs[1].ID(), wireMsg{"lone", 50}); err != nil {
		t.Fatal(err)
	}
	if err := tn.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if at < 0.4 {
		t.Fatalf("lone held message delivered at %v, want >= 0.4s", at)
	}
}

func TestApplyCrashWindow(t *testing.T) {
	tn := buildNet(2)
	got := 0
	tn.svcs[1].OnRecv(func(e link.Env) { got++ })
	a := tn.apply(t, Campaign{Entries: []Entry{
		{Fault: Crash, Targets: Selector{Nodes: []int{0}}, Schedule: Window{From: 1, To: 2}},
	}})
	send := func() {
		if err := tn.svcs[0].Send(tn.svcs[1].ID(), wireMsg{"x", 50}); err != nil {
			t.Error(err)
		}
	}
	tn.k.MustSchedule(sim.Duration(0.5), send) // before the crash
	tn.k.MustSchedule(sim.Duration(1.5), send) // node is down
	tn.k.MustSchedule(sim.Duration(2.5), send) // recovered
	if err := tn.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("delivered %d messages across the crash window, want 2", got)
	}
	if inj := a.Report().Entries[0].Injected; inj != 1 {
		t.Fatalf("injected = %d, want 1", inj)
	}
}

func TestApplySpoofFault(t *testing.T) {
	tn := buildNet(3)
	victim := 2
	var got sts.BeaconMsg
	var from link.NodeID
	tn.svcs[1].OnRecv(func(e link.Env) {
		got = e.Msg.(sts.BeaconMsg)
		from = e.From
	})
	a := tn.apply(t, Campaign{Entries: []Entry{
		{Fault: Spoof, Params: Params{As: &victim}, Targets: Selector{Nodes: []int{0}}},
	}})
	beacon := sts.BeaconMsg{From: tn.svcs[0].ID(), Seq: 5, Base: 28}
	if err := tn.svcs[0].Send(link.BroadcastID, beacon); err != nil {
		t.Fatal(err)
	}
	if err := tn.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if got.From != link.NodeID(victim) || from != link.NodeID(victim) {
		t.Fatalf("beacon From = %d, env From = %d; want victim %d", got.From, from, victim)
	}
	if got.Seq != 5+1<<32 {
		t.Fatalf("forged Seq = %d, want replay-counter bump", got.Seq)
	}
	if inj := a.Report().Entries[0].Injected; inj != 1 {
		t.Fatalf("injected = %d, want 1", inj)
	}
}

func TestApplyByzantineInertWithoutVote(t *testing.T) {
	// A byzantine entry on a node with no voting service must be inert, not
	// an error: one campaign sweeps both the IC and No-IC table rows.
	tn := buildNet(2)
	fab := tn.fabric(7)
	fab.Vote = func(int) VoteCtl { return nil }
	c := Campaign{Entries: []Entry{
		{Fault: Byzantine, Targets: Selector{Nodes: []int{0}}},
	}}
	if _, err := Apply(fab, &c); err != nil {
		t.Fatalf("byzantine on a vote-less node should be inert, got %v", err)
	}
}

// togglingRouter records black-hole on/off transitions with timestamps.
type togglingRouter struct {
	k     *sim.Kernel
	times []sim.Time
	on    []bool
}

func (r *togglingRouter) SetBlackHole(on bool) {
	r.times = append(r.times, r.k.Now())
	r.on = append(r.on, on)
}
func (r *togglingRouter) SetGrayHole(p float64, rng *sim.RNG) {}
func (r *togglingRouter) MisbehaviorCount() uint64            { return 0 }

func TestApplyRouterChurnWindow(t *testing.T) {
	k := sim.NewKernel()
	rtr := &togglingRouter{k: k}
	fab := Fabric{
		K:      k,
		RNG:    sim.NewRNG(7),
		N:      2,
		Router: func(int) RouterCtl { return rtr },
	}
	c := Campaign{Entries: []Entry{
		{Fault: Blackhole, Targets: Selector{Nodes: []int{0}}, Schedule: Window{Every: 10, For: 3, To: 25}},
	}}
	if _, err := Apply(fab, &c); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(40); err != nil {
		t.Fatal(err)
	}
	// Expected transitions: on@0 off@3 on@10 off@13 on@20 off@23, then the
	// To=25 bound stops the chain.
	wantOn := []bool{true, false, true, false, true, false}
	wantT := []sim.Time{0, 3, 10, 13, 20, 23}
	if len(rtr.on) != len(wantOn) {
		t.Fatalf("transitions %v @ %v", rtr.on, rtr.times)
	}
	for i := range wantOn {
		if rtr.on[i] != wantOn[i] || rtr.times[i] != wantT[i] {
			t.Fatalf("transition %d: %v@%v, want %v@%v", i, rtr.on[i], rtr.times[i], wantOn[i], wantT[i])
		}
	}
}

func TestApplySameSeedSameDraws(t *testing.T) {
	// Two identical networks under the same campaign and seed make
	// identical per-message decisions.
	run := func() (delivered int, injected uint64) {
		tn := buildNet(2)
		tn.svcs[1].OnRecv(func(e link.Env) { delivered++ })
		a := tn.apply(t, Campaign{Entries: []Entry{
			{Fault: Drop, Params: Params{P: 0.5}, Targets: Selector{Nodes: []int{0}}},
		}})
		for i := 0; i < 40; i++ {
			if err := tn.svcs[0].Send(tn.svcs[1].ID(), wireMsg{"x", 50}); err != nil {
				t.Fatal(err)
			}
		}
		if err := tn.k.Run(10); err != nil {
			t.Fatal(err)
		}
		return delivered, a.Report().Entries[0].Injected
	}
	d1, i1 := run()
	d2, i2 := run()
	if d1 != d2 || i1 != i2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", d1, i1, d2, i2)
	}
	if i1 == 0 || d1 == 0 {
		t.Fatalf("p=0.5 over 40 messages should both drop and deliver (delivered %d, dropped %d)", d1, i1)
	}
	if d1+int(i1) != 40 {
		t.Fatalf("delivered %d + dropped %d != 40", d1, i1)
	}
}
