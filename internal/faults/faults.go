// Package faults is the deterministic, composable fault/attack injection
// subsystem. It sits between the protocol stack and the link/MAC layers
// and realizes the error and attack classes of the paper's threat model
// (§2): transient channel faults (message drop, delay, duplication,
// payload corruption, reordering), crash/recovery churn, and malicious
// behaviour (black-hole and gray-hole forwarding, Byzantine voting lies,
// identity spoofing on STS beacons).
//
// A scenario is a Campaign: a named list of (fault, params, targets,
// schedule) entries, declarable in Go or loadable from JSON. Apply wires
// a campaign into a concrete replica through a Fabric (see apply.go).
// Everything is driven by seeded, split RNG streams, so the same seed and
// campaign reproduce the same run bit for bit — campaigns are safe to
// share, read-only, across the parallel sweep workers.
package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"innercircle/internal/sim"
)

// Kind names a fault type.
type Kind string

// The fault catalogue. The first seven are wire faults, injected into a
// node's link-layer tap; the rest subvert a protocol entity directly.
const (
	// Drop discards messages with probability P.
	Drop Kind = "drop"
	// Delay holds messages for a uniform draw in [MinDelay, MaxDelay]
	// seconds before forwarding them.
	Delay Kind = "delay"
	// Duplicate re-emits each message Copies extra times.
	Duplicate Kind = "duplicate"
	// Corrupt flips one random bit in a signature-bearing field (or
	// applies the fabric's Mutate hook, e.g. to application payloads).
	Corrupt Kind = "corrupt"
	// Reorder holds a message until the next one overtakes it (or the
	// Hold deadline expires).
	Reorder Kind = "reorder"
	// Crash silences the node entirely — nothing in, nothing out — while
	// the schedule window is active; outside it the node recovers.
	Crash Kind = "crash"
	// Spoof rewrites outgoing STS beacons to impersonate another node,
	// with a forged far-future sequence number (a replay-counter attack).
	Spoof Kind = "spoof"
	// Blackhole switches the node's router into black-hole mode: forged
	// route replies, all transit traffic absorbed (§5.1 of the paper).
	Blackhole Kind = "blackhole"
	// Grayhole is a black hole that misbehaves only with probability P
	// per opportunity.
	Grayhole Kind = "grayhole"
	// Byzantine makes the node's voting service lie: it corrupts the
	// partial signature in every ack it sends (vote.Byzantine).
	Byzantine Kind = "byzantine"
)

// wire reports whether the fault is injected at the link-layer tap.
func (k Kind) wire() bool {
	switch k {
	case Drop, Delay, Duplicate, Corrupt, Reorder, Crash, Spoof:
		return true
	}
	return false
}

func (k Kind) known() bool {
	switch k {
	case Drop, Delay, Duplicate, Corrupt, Reorder, Crash, Spoof, Blackhole, Grayhole, Byzantine:
		return true
	}
	return false
}

// Dir says which side of a node's link a wire fault attacks.
type Dir string

// Directions. The empty Dir defaults to DirOut (DirBoth for crash).
const (
	DirOut  Dir = "out"
	DirIn   Dir = "in"
	DirBoth Dir = "both"
)

// Params carries per-kind knobs; unused fields are ignored.
type Params struct {
	// P is the per-message (drop, delay, duplicate, corrupt, reorder) or
	// per-opportunity (grayhole) probability. Defaults to 1 where
	// optional; required for drop and grayhole.
	P float64 `json:"p,omitempty"`
	// MinDelay and MaxDelay bound the injected latency, in seconds.
	MinDelay float64 `json:"min_delay,omitempty"`
	MaxDelay float64 `json:"max_delay,omitempty"`
	// Copies is how many extra copies a duplicate fault emits (default 1).
	Copies int `json:"copies,omitempty"`
	// Hold caps how long a reorder fault waits for an overtaking message
	// before releasing the held one, in seconds (default 0.1).
	Hold float64 `json:"hold,omitempty"`
	// As is the node a spoof fault impersonates; nil draws a fresh victim
	// per beacon.
	As *int `json:"as,omitempty"`
}

// Window schedules a fault. The zero value is always active. From and To
// bound activity in seconds of virtual time (To = 0 means forever);
// Every/For add periodic churn: starting at From, the fault is active for
// the first For seconds of each Every-second cycle. Windowed router
// faults schedule kernel events indefinitely, so drive such runs with
// Kernel.Run(until) rather than draining the queue.
type Window struct {
	From  float64 `json:"from,omitempty"`
	To    float64 `json:"to,omitempty"`
	Every float64 `json:"every,omitempty"`
	For   float64 `json:"for,omitempty"`
}

// active reports whether the window covers virtual time now.
func (w Window) active(now sim.Time) bool {
	t := float64(now)
	if t < w.From {
		return false
	}
	if w.To > 0 && t >= w.To {
		return false
	}
	if w.Every > 0 {
		return math.Mod(t-w.From, w.Every) < w.For
	}
	return true
}

// immediate reports whether the window is "on from the start, no churn" —
// the case Apply activates synchronously, exactly like a hand-wired
// attacker.
func (w Window) immediate() bool { return w.From == 0 && w.Every == 0 }

// Selector picks the nodes an entry attacks. Exactly one field must be
// set.
type Selector struct {
	// All selects every node.
	All bool `json:"all,omitempty"`
	// Nodes lists explicit node indices.
	Nodes []int `json:"nodes,omitempty"`
	// Count selects the first Count nodes of the fabric's attacker order
	// (the experiment's placement permutation) — how the legacy
	// black-hole sweep picks its malicious nodes.
	Count int `json:"count,omitempty"`
	// Pred selects nodes programmatically; not serializable.
	Pred func(node int) bool `json:"-"`
}

func (s Selector) validate() error {
	set := 0
	if s.All {
		set++
	}
	if len(s.Nodes) > 0 {
		set++
	}
	if s.Count > 0 {
		set++
	}
	if s.Pred != nil {
		set++
	}
	if set != 1 {
		return fmt.Errorf("faults: selector must set exactly one of all/nodes/count/pred, got %d", set)
	}
	return nil
}

// resolve returns the selected node indices in deterministic order. order
// is the fabric's attacker order (nil means 0..n-1).
func (s Selector) resolve(n int, order []int) ([]int, error) {
	switch {
	case s.All:
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	case len(s.Nodes) > 0:
		seen := make(map[int]bool, len(s.Nodes))
		out := make([]int, 0, len(s.Nodes))
		for _, i := range s.Nodes {
			if i < 0 || i >= n {
				return nil, fmt.Errorf("faults: target node %d out of range [0,%d)", i, n)
			}
			if !seen[i] {
				seen[i] = true
				out = append(out, i)
			}
		}
		return out, nil
	case s.Count > 0:
		if order == nil {
			order = make([]int, n)
			for i := range order {
				order[i] = i
			}
		}
		if s.Count > len(order) {
			return nil, fmt.Errorf("faults: count %d exceeds the %d selectable nodes", s.Count, len(order))
		}
		return append([]int(nil), order[:s.Count]...), nil
	case s.Pred != nil:
		var out []int
		for i := 0; i < n; i++ {
			if s.Pred(i) {
				out = append(out, i)
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("faults: empty selector")
}

// Entry is one (fault, params, targets, schedule) line of a campaign.
type Entry struct {
	Fault    Kind     `json:"fault"`
	Dir      Dir      `json:"dir,omitempty"`
	Params   Params   `json:"params,omitempty"`
	Targets  Selector `json:"targets"`
	Schedule Window   `json:"schedule,omitempty"`
}

// dir returns the entry's effective direction.
func (e Entry) dir() Dir {
	if e.Fault == Crash {
		return DirBoth
	}
	if e.Dir == "" {
		return DirOut
	}
	return e.Dir
}

// Campaign is a named, declarative fault scenario. Campaigns are
// read-only once built: Apply never mutates one, so a single Campaign may
// be shared across parallel replicas.
type Campaign struct {
	Name    string  `json:"name"`
	Entries []Entry `json:"entries"`
}

// CountBudget returns the number of attacker-order nodes the campaign's
// Count selectors claim. Count entries all resolve from the head of the
// same order — they overlap rather than accumulate — so the claim is the
// maximum Count across entries. Apply fails exactly when this budget
// exceeds the order's length; callers can use CountBudget to reject such
// campaigns before building a replica.
func (c *Campaign) CountBudget() int {
	budget := 0
	for _, e := range c.Entries {
		if e.Targets.Count > budget {
			budget = e.Targets.Count
		}
	}
	return budget
}

// Validate checks every entry. It is called by Apply; campaigns built by
// hand can call it early for better error locality.
func (c *Campaign) Validate() error {
	for i, e := range c.Entries {
		if err := validateEntry(e); err != nil {
			return fmt.Errorf("faults: campaign %q entry %d (%s): %w", c.Name, i, e.Fault, err)
		}
	}
	return nil
}

func validateEntry(e Entry) error {
	if !e.Fault.known() {
		return fmt.Errorf("unknown fault kind %q", e.Fault)
	}
	if err := e.Targets.validate(); err != nil {
		return err
	}
	switch e.Dir {
	case "", DirOut, DirIn, DirBoth:
	default:
		return fmt.Errorf("invalid dir %q", e.Dir)
	}
	if !e.Fault.wire() && e.Dir != "" {
		return fmt.Errorf("dir applies only to wire faults")
	}
	p := e.Params
	switch e.Fault {
	case Drop, Grayhole:
		if p.P <= 0 || p.P > 1 {
			return fmt.Errorf("p must be in (0,1], got %g", p.P)
		}
	case Delay:
		if p.MaxDelay <= 0 || p.MinDelay < 0 || p.MinDelay > p.MaxDelay {
			return fmt.Errorf("need 0 <= min_delay <= max_delay, max_delay > 0 (got %g..%g)", p.MinDelay, p.MaxDelay)
		}
	case Reorder:
		if e.Dir == DirBoth {
			return fmt.Errorf("reorder holds per-direction state; use two entries instead of dir=both")
		}
	case Spoof:
		if e.Dir == DirIn || e.Dir == DirBoth {
			return fmt.Errorf("spoof is outbound-only")
		}
		if p.As != nil && *p.As < 0 {
			return fmt.Errorf("as must be a node index, got %d", *p.As)
		}
	}
	if p.P < 0 || p.P > 1 {
		return fmt.Errorf("p must be in [0,1], got %g", p.P)
	}
	if p.Copies < 0 {
		return fmt.Errorf("copies must be >= 0, got %d", p.Copies)
	}
	if p.Hold < 0 {
		return fmt.Errorf("hold must be >= 0, got %g", p.Hold)
	}
	w := e.Schedule
	if w.From < 0 || w.To < 0 || (w.To > 0 && w.To <= w.From) {
		return fmt.Errorf("schedule needs 0 <= from < to (got from=%g to=%g)", w.From, w.To)
	}
	if w.Every < 0 || w.For < 0 || (w.Every > 0 && (w.For <= 0 || w.For > w.Every)) {
		return fmt.Errorf("churn needs 0 < for <= every (got every=%g for=%g)", w.Every, w.For)
	}
	if w.Every == 0 && w.For > 0 {
		return fmt.Errorf("for without every")
	}
	return nil
}

// Parse decodes a campaign from JSON, rejecting unknown fields, and
// validates it.
func Parse(data []byte) (Campaign, error) {
	var c Campaign
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Campaign{}, fmt.Errorf("faults: parse campaign: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Campaign{}, err
	}
	return c, nil
}

// Load reads and parses a campaign JSON file.
func Load(path string) (Campaign, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Campaign{}, fmt.Errorf("faults: %w", err)
	}
	c, err := Parse(data)
	if err != nil {
		return Campaign{}, fmt.Errorf("faults: %s: %w", path, err)
	}
	return c, nil
}
