package faults

import (
	"fmt"

	"innercircle/internal/link"
	"innercircle/internal/sim"
	"innercircle/internal/stats"
	"innercircle/internal/vote"
)

// LinkPort is the slice of link.Service a campaign needs: somewhere to
// install the wire-fault tap.
type LinkPort interface {
	SetTap(link.Tap)
}

// RouterCtl is the routing-layer attack surface, satisfied by
// *aodv.Router (this package must not import aodv — the router's test
// files import faults).
type RouterCtl interface {
	SetBlackHole(on bool)
	SetGrayHole(p float64, rng *sim.RNG)
	// MisbehaviorCount reports attack actions taken so far (forged RREPs
	// plus malicious drops); it feeds the injection counters.
	MisbehaviorCount() uint64
}

// VoteCtl is the voting-layer attack surface, satisfied by
// *vote.Service.
type VoteCtl interface {
	SetByzantine(*vote.Byzantine)
}

// Fabric hands Apply the replica's moving parts. Link is required for
// wire faults, Router for blackhole/grayhole entries, Vote for byzantine
// entries; accessors may return nil for nodes lacking the layer, which is
// an error only if an entry targets such a node.
type Fabric struct {
	K   *sim.Kernel
	RNG *sim.RNG // the replica's seed stream; fault streams are split off it
	N   int      // network size

	// Order is the attacker-selection order Count selectors consume —
	// the experiment's placement permutation with connection endpoints
	// removed, in the legacy black-hole sweep. Nil means 0..N-1.
	Order []int

	Link   func(node int) LinkPort
	Router func(node int) RouterCtl
	Vote   func(node int) VoteCtl

	// Mutate, when non-nil, is tried first by corrupt faults, letting the
	// experiment corrupt message types this package must not know about
	// (e.g. AODV data payloads). It must copy-on-write, never modify the
	// original message, and report whether it mutated.
	Mutate func(e link.Env, rng *sim.RNG) (link.Env, bool)
}

// Applied is a campaign wired into one replica. It owns the injection
// counters.
type Applied struct {
	campaign *Campaign
	targets  []int    // per entry: how many nodes it attacks
	injected []uint64 // per entry: wire/byzantine injections
	routers  [][]RouterCtl
}

// Apply wires campaign c into the replica described by fab. It validates
// the campaign, resolves each entry's targets, installs per-node
// injectors for wire faults, switches routers into black/gray-hole mode
// (synchronously for immediate windows — exactly like a hand-wired
// attacker — and via kernel events for scheduled ones) and arms Byzantine
// voting. c is never mutated and may be shared across replicas.
func Apply(fab Fabric, c *Campaign) (*Applied, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if fab.K == nil || fab.RNG == nil || fab.N <= 0 {
		return nil, fmt.Errorf("faults: fabric needs K, RNG and N")
	}
	a := &Applied{
		campaign: c,
		targets:  make([]int, len(c.Entries)),
		injected: make([]uint64, len(c.Entries)),
		routers:  make([][]RouterCtl, len(c.Entries)),
	}
	base := fab.RNG.Split("faults")
	injectors := make(map[int]*Injector)
	grayIdx := 0 // global gray-stream ordinal, matching the legacy SplitN("gray", i)
	for ei, ent := range c.Entries {
		targets, err := ent.Targets.resolve(fab.N, fab.Order)
		if err != nil {
			return nil, fmt.Errorf("faults: campaign %q entry %d: %w", c.Name, ei, err)
		}
		a.targets[ei] = len(targets)
		switch {
		case ent.Fault.wire():
			if fab.Link == nil {
				return nil, fmt.Errorf("faults: campaign %q entry %d: wire fault needs fabric Link accessor", c.Name, ei)
			}
			if ent.Fault == Spoof && fab.N < 2 {
				return nil, fmt.Errorf("faults: spoof needs at least 2 nodes")
			}
			if ent.Fault == Spoof && ent.Params.As != nil && *ent.Params.As >= fab.N {
				return nil, fmt.Errorf("faults: spoof victim %d out of range [0,%d)", *ent.Params.As, fab.N)
			}
			for _, node := range targets {
				port := fab.Link(node)
				if port == nil {
					return nil, fmt.Errorf("faults: campaign %q entry %d: node %d has no link port", c.Name, ei, node)
				}
				inj, ok := injectors[node]
				if !ok {
					inj = &Injector{k: fab.K, injected: a.injected, mutate: fab.Mutate}
					injectors[node] = inj
					port.SetTap(inj)
				}
				st := &stage{
					entry:    ei,
					kind:     ent.Fault,
					p:        ent.Params,
					win:      ent.Schedule,
					rng:      base.SplitN(fmt.Sprintf("e%d/%s", ei, ent.Fault), node),
					spoofAs:  -1,
					numNodes: fab.N,
					self:     link.NodeID(node),
				}
				if ent.Params.As != nil {
					st.spoofAs = *ent.Params.As
				}
				switch ent.dir() {
				case DirOut:
					inj.out = append(inj.out, st)
				case DirIn:
					inj.in = append(inj.in, st)
				case DirBoth:
					// One stage, both chains: drop-style faults share the
					// window state; stateful kinds (reorder) are validated
					// to a single direction.
					inj.out = append(inj.out, st)
					inj.in = append(inj.in, st)
				}
			}

		case ent.Fault == Blackhole || ent.Fault == Grayhole:
			if fab.Router == nil {
				return nil, fmt.Errorf("faults: campaign %q entry %d: %s needs fabric Router accessor", c.Name, ei, ent.Fault)
			}
			for _, node := range targets {
				ctl := fab.Router(node)
				if ctl == nil {
					return nil, fmt.Errorf("faults: campaign %q entry %d: node %d has no router", c.Name, ei, node)
				}
				a.routers[ei] = append(a.routers[ei], ctl)
				var grayRNG *sim.RNG
				if ent.Fault == Grayhole {
					grayRNG = fab.RNG.SplitN("gray", grayIdx)
					grayIdx++
				}
				scheduleRouterFault(fab.K, ent, ctl, grayRNG)
			}

		case ent.Fault == Byzantine:
			if fab.Vote == nil {
				return nil, fmt.Errorf("faults: campaign %q entry %d: byzantine needs fabric Vote accessor", c.Name, ei)
			}
			for _, node := range targets {
				ctl := fab.Vote(node)
				if ctl == nil {
					// No voting service (e.g. the No-IC configuration):
					// there is nothing to lie to, so the entry is inert on
					// this node. Sweeping one campaign across IC and No-IC
					// rows depends on this.
					continue
				}
				ei := ei
				ctl.SetByzantine(&vote.Byzantine{
					CorruptAcks: true,
					RNG:         base.SplitN("byz", node),
					OnLie:       func() { a.injected[ei]++ },
				})
			}
		}
	}
	return a, nil
}

// scheduleRouterFault activates a router attack per the entry's window.
// Immediate windows activate synchronously; scheduled and churning ones
// toggle via kernel events.
func scheduleRouterFault(k *sim.Kernel, ent Entry, ctl RouterCtl, grayRNG *sim.RNG) {
	on := func() {
		if ent.Fault == Grayhole {
			ctl.SetGrayHole(ent.Params.P, grayRNG)
		} else {
			ctl.SetBlackHole(true)
		}
	}
	off := func() {
		if ent.Fault == Grayhole {
			ctl.SetGrayHole(0, nil)
		} else {
			ctl.SetBlackHole(false)
		}
	}
	w := ent.Schedule
	if w.immediate() {
		on()
		if w.To > 0 {
			k.MustSchedule(sim.Duration(w.To), off)
		}
		return
	}
	if w.Every == 0 {
		k.MustSchedule(sim.Duration(w.From), on)
		if w.To > 0 {
			k.MustSchedule(sim.Duration(w.To), off)
		}
		return
	}
	// Churn: the attack holds for the first For seconds of every
	// Every-second cycle. Each cycle schedules the next, so the chain
	// extends for as long as the kernel runs.
	var cycle func()
	cycle = func() {
		if w.To > 0 && float64(k.Now()) >= w.To {
			return
		}
		on()
		k.MustSchedule(sim.Duration(w.For), func() {
			off()
			k.MustSchedule(sim.Duration(w.Every-w.For), cycle)
		})
	}
	k.MustSchedule(sim.Duration(w.From), cycle)
}

// EntryReport is one campaign entry's injection tally.
type EntryReport struct {
	Fault   Kind
	Targets int
	// Injected counts fault actions actually taken: messages dropped,
	// delayed, duplicated, corrupted, held, forged or swallowed (wire
	// faults), lies told (byzantine), forged RREPs plus malicious drops
	// (black/gray holes).
	Injected uint64
}

// Report is a campaign's injection coverage.
type Report struct {
	Campaign string
	Entries  []EntryReport
}

// TotalInjected sums the per-entry injection counts.
func (r Report) TotalInjected() uint64 {
	var total uint64
	for _, e := range r.Entries {
		total += e.Injected
	}
	return total
}

// Counters exposes the report as named stats counters ("e0/drop" etc.),
// in entry order.
func (r Report) Counters() *stats.Counters {
	c := stats.NewCounters()
	for i, e := range r.Entries {
		c.Add(fmt.Sprintf("e%d/%s", i, e.Fault), e.Injected)
	}
	return c
}

// Report tallies the injections so far (normally read after the run).
func (a *Applied) Report() Report {
	r := Report{Campaign: a.campaign.Name, Entries: make([]EntryReport, len(a.campaign.Entries))}
	for i, ent := range a.campaign.Entries {
		er := EntryReport{Fault: ent.Fault, Targets: a.targets[i], Injected: a.injected[i]}
		for _, ctl := range a.routers[i] {
			er.Injected += ctl.MisbehaviorCount()
		}
		r.Entries[i] = er
	}
	return r
}
