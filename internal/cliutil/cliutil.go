// Package cliutil holds the flag/profile/progress plumbing shared by the
// cmd/ tools, so each main.go is only its own flags plus one library call.
package cliutil

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"innercircle/internal/artifact"
	"innercircle/internal/experiment"
	"innercircle/internal/sim"
)

// Main runs a tool body and turns its error into the conventional
// "name: err" + exit(1) epilogue every cmd/ tool shares.
func Main(name string, run func() error) {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, name+":", err)
		os.Exit(1)
	}
}

// StartCPUProfile begins a pprof CPU profile when path is non-empty and
// returns a stop function (a no-op for an empty path) to defer.
func StartCPUProfile(path string) (stop func(), err error) {
	p := Profile{CPU: path}
	return p.Start()
}

// Profile holds the destinations of the profiling flags every cmd/ tool
// shares: a CPU profile covering the run, a heap snapshot taken at stop
// time (after a GC, so live allocations — the sweep engine's steady state
// — dominate over garbage), and block/mutex contention profiles covering
// the run (for inspecting the sharded executors' synchronization and the
// event queue's claimed freedom from it).
type Profile struct {
	CPU   string
	Mem   string
	Block string
	Mutex string
}

// AddProfileFlags registers the shared profiling flags
// (-cpuprofile/-memprofile/-blockprofile/-mutexprofile) on fs and returns
// the Profile they fill in after fs is parsed.
func AddProfileFlags(fs *flag.FlagSet) *Profile {
	p := &Profile{}
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	fs.StringVar(&p.Mem, "memprofile", "", "write a pprof heap profile at exit to this file")
	fs.StringVar(&p.Block, "blockprofile", "", "write a pprof blocking profile of the run to this file")
	fs.StringVar(&p.Mutex, "mutexprofile", "", "write a pprof mutex-contention profile of the run to this file")
	return p
}

// Start begins the requested profiles and returns the stop function to
// defer: it ends the CPU profile, writes the heap snapshot, and writes
// (then disables) the contention profiles. Profile setup failures are
// returned; a failed profile write at stop time is reported on stderr
// (the run's results already exist — don't fail them).
func (p *Profile) Start() (stop func(), err error) {
	var cpuFile *os.File
	if p.CPU != "" {
		cpuFile, err = os.Create(p.CPU)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if p.Block != "" {
		runtime.SetBlockProfileRate(1)
	}
	if p.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	memPath, blockPath, mutexPath := p.Mem, p.Block, p.Mutex
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			if err := writeHeapProfile(memPath); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
		if blockPath != "" {
			if err := writeLookupProfile("block", blockPath); err != nil {
				fmt.Fprintln(os.Stderr, "blockprofile:", err)
			}
			runtime.SetBlockProfileRate(0)
		}
		if mutexPath != "" {
			if err := writeLookupProfile("mutex", mutexPath); err != nil {
				fmt.Fprintln(os.Stderr, "mutexprofile:", err)
			}
			runtime.SetMutexProfileFraction(0)
		}
	}, nil
}

// writeHeapProfile snapshots the heap into path.
func writeHeapProfile(path string) error {
	runtime.GC() // flush garbage so the snapshot shows live memory
	return writeLookupProfile("heap", path)
}

// writeLookupProfile writes the named runtime profile into path.
func writeLookupProfile(name, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// AddShardsFlag registers the shared -shards flag on fs and returns an
// apply function to call once fs is parsed, before any replica runs. The
// flag routes through the IC_SHARDS environment knob — the scenario
// runner's only configuration channel — so tools need no direct coupling
// to the sharded kernel: 0 (the default) leaves IC_SHARDS untouched,
// anything else overrides it for this process. Tools whose work never
// reaches the event kernel (ickeys) still accept the flag as a harmless
// no-op, keeping the cmd/ flag surface uniform.
func AddShardsFlag(fs *flag.FlagSet) (apply func() error) {
	n := fs.Int("shards", 0, "partition each replica across N event-kernel shards (0 = honor IC_SHARDS env)")
	return func() error {
		if *n < 0 {
			return fmt.Errorf("-shards %d: shard count cannot be negative", *n)
		}
		if *n == 0 {
			return nil
		}
		return os.Setenv("IC_SHARDS", strconv.Itoa(*n))
	}
}

// AddQueueFlag registers the shared -kernelqueue flag on fs and returns
// an apply function to call once fs is parsed. Like AddShardsFlag it
// routes through an environment knob (IC_KERNEL_QUEUE): empty (the
// default) leaves the knob untouched, "wheel" or "heap" pins that queue
// implementation for every kernel the process builds. The flag is an A/B
// switch only — results are byte-identical either way; solely
// schedule/pop cost differs (see DESIGN.md §14).
func AddQueueFlag(fs *flag.FlagSet) (apply func() error) {
	q := fs.String("kernelqueue", "", `event-queue implementation: "wheel" or "heap" (empty = honor IC_KERNEL_QUEUE env)`)
	return func() error {
		switch *q {
		case "":
			return nil
		case "wheel", "heap":
			return os.Setenv(sim.QueueEnvVar, *q)
		default:
			return fmt.Errorf("-kernelqueue %q: want wheel or heap", *q)
		}
	}
}

// AddShardStatsFlag registers the shared -shardstats flag on fs and
// returns an apply function to call once fs is parsed. Like AddShardsFlag
// it routes through an environment knob (IC_SHARD_STATS=1): sharded
// replicas then harvest their executor-synchronization gauges
// (null-message republishes, parks, blocked wall-clock) into the Result
// and print a per-shard utilization table to stderr after each replica.
// The flag is diagnostic only — sweep tables are byte-identical with it
// on or off.
func AddShardStatsFlag(fs *flag.FlagSet) (apply func() error) {
	on := fs.Bool("shardstats", false, "print per-shard utilization (events, null republishes, blocked time) after each sharded replica")
	return func() error {
		if !*on {
			return nil
		}
		return os.Setenv("IC_SHARD_STATS", "1")
	}
}

// SplitCSV splits a comma-separated flag value, trimming whitespace and
// dropping empty elements; an empty input yields nil.
func SplitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// ParseLevels parses a comma-separated list of dependability levels.
// Levels below 1 are rejected: L counts the extra confirming neighbors,
// so 0 would silently mean "whatever the base config says".
func ParseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range SplitCSV(s) {
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad level %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// Progress maps the shared -quiet flag onto the sweep progress writer:
// stderr normally, nil (no per-run lines) when quiet.
func Progress(quiet bool) io.Writer {
	if quiet {
		return nil
	}
	return os.Stderr
}

// AddManifestFlag registers the optional -manifest flag shared by the
// sweep drivers. The returned writer is a no-op unless the flag was set;
// called with the grid equivalent of the sweep just run and its rendered
// tables, it writes an artifact.RunManifest carrying the same provenance
// fields the experiment service records — so a CLI run and an icserved
// job of the same grid are directly comparable by spec_sha256 and
// tables_sha256.
func AddManifestFlag(fs *flag.FlagSet) func(grid *experiment.GridRequest, renderedTables string) error {
	path := fs.String("manifest", "", "write run provenance (artifact.RunManifest JSON) to this file")
	start := time.Now()
	return func(grid *experiment.GridRequest, renderedTables string) error {
		if *path == "" {
			return nil
		}
		if err := grid.Validate(); err != nil {
			return err
		}
		spec, err := artifact.Canonical(grid)
		if err != nil {
			return err
		}
		m := artifact.RunManifest{
			Name:         grid.Name,
			SpecSHA256:   artifact.Sum(spec),
			TablesSHA256: artifact.Sum([]byte(renderedTables)),
			Seed:         grid.BaseSeed(),
			GitRev:       artifact.GitRev(),
			Knobs:        artifact.KnobSnapshot(),
			WallMs:       float64(time.Since(start)) / float64(time.Millisecond),
			CreatedAt:    artifact.Now(),
		}
		b, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(*path, append(b, '\n'), 0o644)
	}
}
