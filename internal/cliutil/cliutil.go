// Package cliutil holds the flag/profile/progress plumbing shared by the
// cmd/ tools, so each main.go is only its own flags plus one library call.
package cliutil

import (
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
)

// Main runs a tool body and turns its error into the conventional
// "name: err" + exit(1) epilogue every cmd/ tool shares.
func Main(name string, run func() error) {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, name+":", err)
		os.Exit(1)
	}
}

// StartCPUProfile begins a pprof CPU profile when path is non-empty and
// returns a stop function (a no-op for an empty path) to defer.
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// SplitCSV splits a comma-separated flag value, trimming whitespace and
// dropping empty elements; an empty input yields nil.
func SplitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// ParseLevels parses a comma-separated list of dependability levels.
// Levels below 1 are rejected: L counts the extra confirming neighbors,
// so 0 would silently mean "whatever the base config says".
func ParseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range SplitCSV(s) {
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad level %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// Progress maps the shared -quiet flag onto the sweep progress writer:
// stderr normally, nil (no per-run lines) when quiet.
func Progress(quiet bool) io.Writer {
	if quiet {
		return nil
	}
	return os.Stderr
}
