package cliutil

import (
	"reflect"
	"testing"
)

func TestSplitCSV(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{" , ,", nil},
		{"a", []string{"a"}},
		{"a, b ,c", []string{"a", "b", "c"}},
		{",x,", []string{"x"}},
	}
	for _, tc := range cases {
		if got := SplitCSV(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitCSV(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseLevels(t *testing.T) {
	got, err := ParseLevels("1, 2,7")
	if err != nil {
		t.Fatalf("ParseLevels: %v", err)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 7}) {
		t.Fatalf("ParseLevels = %v", got)
	}
	for _, bad := range []string{"x", "0", "-1", "2,zero"} {
		if _, err := ParseLevels(bad); err == nil {
			t.Errorf("ParseLevels(%q) accepted", bad)
		}
	}
}
