package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestAddProfileFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := AddProfileFlags(fs)
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	block := filepath.Join(dir, "block.pprof")
	mutex := filepath.Join(dir, "mutex.pprof")
	if err := fs.Parse([]string{
		"-cpuprofile", cpu, "-memprofile", mem,
		"-blockprofile", block, "-mutexprofile", mutex,
	}); err != nil {
		t.Fatal(err)
	}
	if p.CPU != cpu || p.Mem != mem || p.Block != block || p.Mutex != mutex {
		t.Fatalf("flags not bound: %+v", p)
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	stop()
	for _, path := range []string{cpu, mem, block, mutex} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s not written: %v", path, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

func TestProfileStartNoop(t *testing.T) {
	var p Profile
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	stop() // must be a harmless no-op
	if _, err := (&Profile{CPU: filepath.Join(t.TempDir(), "no/such/dir/x")}).Start(); err == nil {
		t.Fatal("unwritable cpuprofile path accepted")
	}
	if _, err := (&Profile{Mem: "whatever"}).Start(); err != nil {
		t.Fatalf("mem-only profile must not fail at start: %v", err)
	}
}

func TestSplitCSV(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{" , ,", nil},
		{"a", []string{"a"}},
		{"a, b ,c", []string{"a", "b", "c"}},
		{",x,", []string{"x"}},
	}
	for _, tc := range cases {
		if got := SplitCSV(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitCSV(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseLevels(t *testing.T) {
	got, err := ParseLevels("1, 2,7")
	if err != nil {
		t.Fatalf("ParseLevels: %v", err)
	}
	if !reflect.DeepEqual(got, []int{1, 2, 7}) {
		t.Fatalf("ParseLevels = %v", got)
	}
	for _, bad := range []string{"x", "0", "-1", "2,zero"} {
		if _, err := ParseLevels(bad); err == nil {
			t.Errorf("ParseLevels(%q) accepted", bad)
		}
	}
}

func TestAddQueueFlag(t *testing.T) {
	t.Setenv("IC_KERNEL_QUEUE", "heap") // restore after; also pins the no-override case

	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	apply := AddQueueFlag(fs)
	if err := fs.Parse([]string{"-kernelqueue", "wheel"}); err != nil {
		t.Fatal(err)
	}
	if err := apply(); err != nil {
		t.Fatal(err)
	}
	if got := os.Getenv("IC_KERNEL_QUEUE"); got != "wheel" {
		t.Fatalf("IC_KERNEL_QUEUE = %q after -kernelqueue wheel", got)
	}

	t.Setenv("IC_KERNEL_QUEUE", "heap")
	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	apply = AddQueueFlag(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := apply(); err != nil {
		t.Fatal(err)
	}
	if got := os.Getenv("IC_KERNEL_QUEUE"); got != "heap" {
		t.Fatalf("default -kernelqueue clobbered IC_KERNEL_QUEUE: %q", got)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	apply = AddQueueFlag(fs)
	if err := fs.Parse([]string{"-kernelqueue", "fibheap"}); err != nil {
		t.Fatal(err)
	}
	if err := apply(); err == nil {
		t.Error("unknown queue kind accepted")
	}
}

func TestAddShardsFlag(t *testing.T) {
	t.Setenv("IC_SHARDS", "2") // restore after; also pins the no-override case

	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	apply := AddShardsFlag(fs)
	if err := fs.Parse([]string{"-shards", "8"}); err != nil {
		t.Fatal(err)
	}
	if err := apply(); err != nil {
		t.Fatal(err)
	}
	if got := os.Getenv("IC_SHARDS"); got != "8" {
		t.Fatalf("IC_SHARDS = %q after -shards 8", got)
	}

	t.Setenv("IC_SHARDS", "2")
	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	apply = AddShardsFlag(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := apply(); err != nil {
		t.Fatal(err)
	}
	if got := os.Getenv("IC_SHARDS"); got != "2" {
		t.Fatalf("default -shards clobbered IC_SHARDS: %q", got)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	apply = AddShardsFlag(fs)
	if err := fs.Parse([]string{"-shards=-1"}); err != nil {
		t.Fatal(err)
	}
	if err := apply(); err == nil {
		t.Error("negative shard count accepted")
	}
}
