package artifact

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	body := []byte(`{"kind":"blackhole","result":{"sent":100}}`)
	digest, err := s.PutResult(body)
	if err != nil {
		t.Fatal(err)
	}
	if digest != Sum(body) {
		t.Fatalf("digest %s != Sum %s", digest, Sum(body))
	}
	got, err := s.GetResult(digest)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(body) {
		t.Fatalf("round trip mismatch: %q", got)
	}
	// Write-once: same content again lands on the same object.
	again, err := s.PutResult(body)
	if err != nil || again != digest {
		t.Fatalf("re-put: %s, %v", again, err)
	}
	if !s.HasResult(digest) {
		t.Fatal("HasResult false for stored object")
	}
	if s.HasResult(Sum([]byte("other"))) {
		t.Fatal("HasResult true for absent object")
	}
}

func TestManifestWriteOnce(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := Sum([]byte("spec"))
	res, err := s.PutResult([]byte("result"))
	if err != nil {
		t.Fatal(err)
	}
	m := Manifest{SpecSHA256: spec, ResultSHA256: res, Seed: 7, GitRev: GitRev(), Shards: 1, CreatedAt: Now()}
	if err := s.PutManifest(m); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetManifest(spec)
	if err != nil || !ok {
		t.Fatalf("GetManifest: %v ok=%v", err, ok)
	}
	if got.ResultSHA256 != res || got.Seed != 7 {
		t.Fatalf("manifest mismatch: %+v", got)
	}
	// Identical re-put is a no-op.
	if err := s.PutManifest(m); err != nil {
		t.Fatalf("identical re-put: %v", err)
	}
	// A spec remapping to a different result is corruption, not an update.
	other, err := s.PutResult([]byte("different result"))
	if err != nil {
		t.Fatal(err)
	}
	m.ResultSHA256 = other
	if err := s.PutManifest(m); err == nil {
		t.Fatal("remapping a spec to a new result must fail")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	body := []byte("precious result bytes")
	digest, err := s.PutResult(body)
	if err != nil {
		t.Fatal(err)
	}
	spec := Sum([]byte("some spec"))
	if err := s.PutManifest(Manifest{SpecSHA256: spec, ResultSHA256: digest, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("clean store must verify: %v", err)
	}
	// Flip a byte in the object: Verify must notice.
	objPath := filepath.Join(dir, "objects", digest[:2], digest[2:])
	if err := os.WriteFile(objPath, []byte("tampered result bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("Verify missed tampering: %v", err)
	}
	// Restore, then break the manifest→object link.
	if err := os.WriteFile(objPath, body, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("restored store must verify: %v", err)
	}
	if err := os.Remove(objPath); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err == nil || !strings.Contains(err.Error(), "missing object") {
		t.Fatalf("Verify missed dangling manifest: %v", err)
	}
}

func TestManifestsSorted(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []string{"b", "a", "c"} {
		res, err := s.PutResult([]byte("result " + seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PutManifest(Manifest{SpecSHA256: Sum([]byte(seed)), ResultSHA256: res, Shards: 1}); err != nil {
			t.Fatal(err)
		}
	}
	ms, err := s.Manifests()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("want 3 manifests, got %d", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i-1].SpecSHA256 >= ms[i].SpecSHA256 {
			t.Fatal("manifests not sorted by spec hash")
		}
	}
}

func TestCanonicalDeterministic(t *testing.T) {
	type inner struct {
		B int `json:"b"`
		A int `json:"a"`
	}
	v := struct {
		M map[string]int `json:"m"`
		I inner          `json:"i"`
	}{M: map[string]int{"z": 1, "a": 2}, I: inner{B: 3, A: 4}}
	b1, err := Canonical(v)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Canonical(v)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("canonical form unstable: %s vs %s", b1, b2)
	}
	// Map keys sorted, struct fields in declaration order.
	want := `{"m":{"a":2,"z":1},"i":{"b":3,"a":4}}`
	if string(b1) != want {
		t.Fatalf("canonical form %s, want %s", b1, want)
	}
}

func TestKnobSnapshotFiltersPrefix(t *testing.T) {
	t.Setenv("IC_TEST_KNOB", "42")
	t.Setenv("NOT_A_KNOB", "x")
	snap := KnobSnapshot()
	if snap["IC_TEST_KNOB"] != "42" {
		t.Fatalf("snapshot missing IC_TEST_KNOB: %v", snap)
	}
	if _, ok := snap["NOT_A_KNOB"]; ok {
		t.Fatal("snapshot leaked a non-IC_ variable")
	}
}
