// Package artifact is the provenance layer of the experiment service: a
// content-addressed, write-once store of canonical-JSON replica results,
// plus the run manifests that make every stored table re-derivable —
// spec hash, seed, git revision, IC_* knob snapshot, the shard count the
// replica actually executed with, and wall-clock cost.
//
// Layout under the store root:
//
//	objects/ab/cdef…   result bytes, named by their own SHA-256
//	manifests/<spec-sha256>.json   one Manifest per replica spec
//	index.jsonl        append-only spec→result log (rebuildable cache)
//
// Objects and manifests are written tmp+fsync+rename, so a crash leaves
// either the complete file or nothing; Verify re-hashes the whole tree.
// Determinism (PRs 1–7) guarantees that the same spec and seed produce
// the same result bytes — the store is what makes that claim checkable:
// resubmitting a grid must land on the same digests, and a manifest that
// disagrees with an existing one for the same spec is reported as
// corruption instead of being overwritten.
package artifact

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"
)

// Manifest records the provenance of one stored replica result.
type Manifest struct {
	// SpecSHA256 is the digest of the canonical replica-spec JSON; the
	// manifest file is named after it.
	SpecSHA256 string `json:"spec_sha256"`
	// ResultSHA256 addresses the result object in objects/.
	ResultSHA256 string `json:"result_sha256"`
	Seed         int64  `json:"seed"`
	GitRev       string `json:"git_rev"`
	// Knobs snapshots the IC_* environment at run time.
	Knobs map[string]string `json:"knobs,omitempty"`
	// Shards is the shard count the replica actually executed with
	// (scenario.Result.Shards — 1 after a fallback or tie rerun).
	Shards int `json:"shards"`
	// WallMs is the replica's wall-clock cost; zero for a cache hit
	// recorded elsewhere. Diagnostic only — not part of any digest.
	WallMs    float64 `json:"wall_ms"`
	CreatedAt string  `json:"created_at"`
}

// RunManifest is the job-level provenance record shared by the service
// and the cmd/ drivers' -manifest flag: CLI and service runs of the same
// grid are comparable by SpecSHA256, and their rendered tables by
// TablesSHA256.
type RunManifest struct {
	Name string `json:"name"`
	// SpecSHA256 digests the canonical grid-request JSON.
	SpecSHA256 string `json:"spec_sha256"`
	// TablesSHA256 digests the rendered output tables.
	TablesSHA256 string `json:"tables_sha256,omitempty"`
	Seed         int64             `json:"seed"`
	GitRev       string            `json:"git_rev"`
	Knobs        map[string]string `json:"knobs,omitempty"`
	WallMs       float64           `json:"wall_ms"`
	CreatedAt    string            `json:"created_at"`
}

// indexEntry is one line of index.jsonl.
type indexEntry struct {
	Spec   string `json:"spec"`
	Result string `json:"result"`
}

// Store is a content-addressed result store rooted at a directory. Safe
// for concurrent use within one process; cross-process writers are safe
// for objects (identical content, atomic rename) but share no index lock.
type Store struct {
	root string

	mu sync.Mutex // guards index appends
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"objects", "manifests"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("artifact: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// Sum returns the store's content address for b: hex SHA-256.
func Sum(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// Canonical marshals v into the store's canonical JSON form. Struct
// fields keep declaration order and map keys are sorted by encoding/json,
// so equal values always produce equal bytes.
func Canonical(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("artifact: canonical marshal: %w", err)
	}
	return b, nil
}

func (s *Store) objectPath(digest string) string {
	return filepath.Join(s.root, "objects", digest[:2], digest[2:])
}

func (s *Store) manifestPath(specSHA string) string {
	return filepath.Join(s.root, "manifests", specSHA+".json")
}

// PutResult stores b under its own SHA-256 and returns the digest.
// Write-once: an existing object with the same digest is kept as is
// (identical content by construction).
func (s *Store) PutResult(b []byte) (string, error) {
	digest := Sum(b)
	path := s.objectPath(digest)
	if _, err := os.Stat(path); err == nil {
		return digest, nil
	}
	if err := writeAtomic(path, b); err != nil {
		return "", err
	}
	return digest, nil
}

// GetResult returns the object addressed by digest.
func (s *Store) GetResult(digest string) ([]byte, error) {
	if err := checkDigest(digest); err != nil {
		return nil, err
	}
	b, err := os.ReadFile(s.objectPath(digest))
	if err != nil {
		return nil, fmt.Errorf("artifact: object %s: %w", digest, err)
	}
	return b, nil
}

// HasResult reports whether the object addressed by digest exists.
func (s *Store) HasResult(digest string) bool {
	if checkDigest(digest) != nil {
		return false
	}
	_, err := os.Stat(s.objectPath(digest))
	return err == nil
}

// PutManifest records m under its spec hash and appends it to the index.
// Write-once: re-putting an identical (spec, result) pair is a no-op, and
// a pair that disagrees with the stored one is reported as corruption —
// the same spec must always reproduce the same result digest.
func (s *Store) PutManifest(m Manifest) error {
	if err := checkDigest(m.SpecSHA256); err != nil {
		return err
	}
	if err := checkDigest(m.ResultSHA256); err != nil {
		return err
	}
	if prev, ok, err := s.GetManifest(m.SpecSHA256); err != nil {
		return err
	} else if ok {
		if prev.ResultSHA256 != m.ResultSHA256 {
			return fmt.Errorf("artifact: spec %s already maps to result %s, refusing to remap to %s (determinism violation or store corruption)",
				m.SpecSHA256, prev.ResultSHA256, m.ResultSHA256)
		}
		return nil
	}
	b, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	if err := writeAtomic(s.manifestPath(m.SpecSHA256), b); err != nil {
		return err
	}
	return s.appendIndex(indexEntry{Spec: m.SpecSHA256, Result: m.ResultSHA256})
}

// GetManifest returns the manifest for a spec hash, if present.
func (s *Store) GetManifest(specSHA string) (Manifest, bool, error) {
	if err := checkDigest(specSHA); err != nil {
		return Manifest{}, false, err
	}
	b, err := os.ReadFile(s.manifestPath(specSHA))
	if os.IsNotExist(err) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, fmt.Errorf("artifact: manifest %s: %w", specSHA, err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("artifact: manifest %s: %w", specSHA, err)
	}
	return m, true, nil
}

// appendIndex appends one line to index.jsonl (fsync'd). The index is a
// cache over manifests/ — Verify treats manifests as the source of truth.
func (s *Store) appendIndex(e indexEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.OpenFile(filepath.Join(s.root, "index.jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("artifact: index: %w", err)
	}
	defer f.Close()
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("artifact: index: %w", err)
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("artifact: index: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("artifact: index: %w", err)
	}
	return nil
}

// Manifests returns every stored manifest, sorted by spec hash.
func (s *Store) Manifests() ([]Manifest, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "manifests"))
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	var out []Manifest
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		m, ok, err := s.GetManifest(strings.TrimSuffix(name, ".json"))
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SpecSHA256 < out[j].SpecSHA256 })
	return out, nil
}

// Verify re-hashes the whole tree: every object's content must match its
// address, every manifest must be named after its spec hash and point at
// an existing object, and every index line must agree with its manifest.
// It returns the first inconsistency found, or nil.
func (s *Store) Verify() error {
	objDir := filepath.Join(s.root, "objects")
	err := filepath.Walk(objDir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(objDir, path)
		if err != nil {
			return err
		}
		parts := strings.Split(filepath.ToSlash(rel), "/")
		if len(parts) != 2 {
			return fmt.Errorf("artifact: stray file %s in objects/", rel)
		}
		want := parts[0] + parts[1]
		b, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("artifact: %w", err)
		}
		if got := Sum(b); got != want {
			return fmt.Errorf("artifact: object %s hashes to %s (corrupt)", want, got)
		}
		return nil
	})
	if err != nil {
		return err
	}
	manifests, err := s.Manifests()
	if err != nil {
		return err
	}
	byName := make(map[string]string, len(manifests))
	for _, m := range manifests {
		if err := checkDigest(m.SpecSHA256); err != nil {
			return err
		}
		if !s.HasResult(m.ResultSHA256) {
			return fmt.Errorf("artifact: manifest %s points at missing object %s", m.SpecSHA256, m.ResultSHA256)
		}
		byName[m.SpecSHA256] = m.ResultSHA256
	}
	idx, err := os.ReadFile(filepath.Join(s.root, "index.jsonl"))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("artifact: index: %w", err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(idx)), "\n") {
		if line == "" {
			continue
		}
		var e indexEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return fmt.Errorf("artifact: index line %q: %w", line, err)
		}
		if res, ok := byName[e.Spec]; !ok || res != e.Result {
			return fmt.Errorf("artifact: index entry %s→%s disagrees with manifests", e.Spec, e.Result)
		}
	}
	return nil
}

// writeAtomic writes b to path via tmp+fsync+rename so a crash leaves
// either the complete file or nothing.
func writeAtomic(path string, b []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("artifact: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("artifact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("artifact: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("artifact: %w", err)
	}
	return nil
}

func checkDigest(d string) error {
	if len(d) != 64 {
		return fmt.Errorf("artifact: bad digest %q", d)
	}
	if _, err := hex.DecodeString(d); err != nil {
		return fmt.Errorf("artifact: bad digest %q", d)
	}
	return nil
}

// GitRev returns the VCS revision stamped into the binary by the Go
// toolchain ("(modified)" appended for a dirty tree), or "unknown" when
// no build info is embedded (go test, plain go run of a file).
func GitRev() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if dirty {
		rev += " (modified)"
	}
	return rev
}

// KnobSnapshot captures every IC_* environment knob, the determinism-
// relevant runtime configuration a manifest must record.
func KnobSnapshot() map[string]string {
	out := map[string]string{}
	for _, kv := range os.Environ() {
		if !strings.HasPrefix(kv, "IC_") {
			continue
		}
		if i := strings.IndexByte(kv, '='); i > 0 {
			out[kv[:i]] = kv[i+1:]
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Now returns the RFC3339 UTC timestamp manifests use.
func Now() string { return time.Now().UTC().Format(time.RFC3339) }
