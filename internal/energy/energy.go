// Package energy implements the ns-2 style per-node energy model used by
// both of the paper's experiments: a node draws idle power continuously and
// additional power while transmitting or receiving. The parameter boxes of
// Fig. 7 and Fig. 8 give Tx 660 mW, Rx 395 mW, Idle 35 mW.
package energy

import "innercircle/internal/sim"

// Params are the radio power draws, in watts.
type Params struct {
	TxPower   float64 `json:"tx_power"`
	RxPower   float64 `json:"rx_power"`
	IdlePower float64 `json:"idle_power"`
}

// NS2Default returns the power parameters from the paper's simulation boxes.
func NS2Default() Params {
	return Params{TxPower: 0.660, RxPower: 0.395, IdlePower: 0.035}
}

// Meter accumulates one node's energy consumption. Transmission and
// reception intervals are accounted as the *difference* between the active
// power and idle power, with idle power integrated over the whole run; this
// matches ns-2's accounting where the radio is never off.
type Meter struct {
	params Params
	txTime sim.Duration
	rxTime sim.Duration
	extra  float64 // processing energy (e.g. cryptography), joules
}

// NewMeter returns a meter with the given power parameters.
func NewMeter(p Params) *Meter { return &Meter{params: p} }

// AddTx records d seconds spent transmitting.
func (m *Meter) AddTx(d sim.Duration) {
	if d > 0 {
		m.txTime += d
	}
}

// AddRx records d seconds spent receiving.
func (m *Meter) AddRx(d sim.Duration) {
	if d > 0 {
		m.rxTime += d
	}
}

// AddEnergy records j joules of non-radio processing energy (the crypto
// cost model charges signing/verification here).
func (m *Meter) AddEnergy(j float64) {
	if j > 0 {
		m.extra += j
	}
}

// TxTime returns the cumulative transmission time in seconds.
func (m *Meter) TxTime() sim.Duration { return m.txTime }

// RxTime returns the cumulative reception time in seconds.
func (m *Meter) RxTime() sim.Duration { return m.rxTime }

// Consumed returns the energy in joules consumed by time elapsed (the total
// virtual time the node has existed).
func (m *Meter) Consumed(elapsed sim.Duration) float64 {
	if elapsed < 0 {
		elapsed = 0
	}
	idle := m.params.IdlePower * float64(elapsed)
	tx := (m.params.TxPower - m.params.IdlePower) * float64(m.txTime)
	rx := (m.params.RxPower - m.params.IdlePower) * float64(m.rxTime)
	return idle + tx + rx + m.extra
}
