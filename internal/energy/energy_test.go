package energy

import (
	"math"
	"testing"
	"testing/quick"

	"innercircle/internal/sim"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestIdleOnlyConsumption(t *testing.T) {
	m := NewMeter(NS2Default())
	// 300 s idle at 35 mW = 10.5 J.
	if got := m.Consumed(300); !almostEqual(got, 10.5) {
		t.Fatalf("Consumed(300) = %v, want 10.5", got)
	}
}

func TestTxRxAccounting(t *testing.T) {
	m := NewMeter(NS2Default())
	m.AddTx(10) // 10 s tx: (0.660-0.035)*10 = 6.25 J extra
	m.AddRx(20) // 20 s rx: (0.395-0.035)*20 = 7.2 J extra
	want := 0.035*100 + 6.25 + 7.2
	if got := m.Consumed(100); !almostEqual(got, want) {
		t.Fatalf("Consumed = %v, want %v", got, want)
	}
	if m.TxTime() != 10 || m.RxTime() != 20 {
		t.Fatalf("TxTime/RxTime = %v/%v, want 10/20", m.TxTime(), m.RxTime())
	}
}

func TestNegativeDurationsIgnored(t *testing.T) {
	m := NewMeter(NS2Default())
	m.AddTx(-5)
	m.AddRx(-5)
	if got := m.Consumed(-1); got != 0 {
		t.Fatalf("Consumed with negative inputs = %v, want 0", got)
	}
}

func TestConsumptionMonotoneInActivity(t *testing.T) {
	f := func(txA, txB, rx uint16) bool {
		a := NewMeter(NS2Default())
		b := NewMeter(NS2Default())
		a.AddTx(sim.Duration(txA))
		b.AddTx(sim.Duration(txA) + sim.Duration(txB))
		a.AddRx(sim.Duration(rx))
		b.AddRx(sim.Duration(rx))
		return b.Consumed(1e6) >= a.Consumed(1e6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTxCostsMoreThanRx(t *testing.T) {
	tx := NewMeter(NS2Default())
	rx := NewMeter(NS2Default())
	tx.AddTx(50)
	rx.AddRx(50)
	if tx.Consumed(100) <= rx.Consumed(100) {
		t.Fatal("transmitting should cost more than receiving for equal time")
	}
}
