package icnet

import (
	"innercircle/internal/link"
)

// Template matches application messages that require inner-circle checking.
// The architecture intercepts selectively: only registered templates are
// redirected (§4, "the architecture enables selective use of the
// inner-circle approach").
type Template func(link.Env) bool

// Verifier validates the signature of an incoming message that claims
// inner-circle agreement. Returning false suppresses the message.
type Verifier func(link.Env) (claims bool, valid bool)

// Interceptor is the Inner-circle Interceptor of Fig. 1, realized as a
// link.Filter. Outgoing messages matching a registered template are
// redirected into the voting service (and swallowed); incoming messages are
// suppressed when they originate from a suspected node or carry an invalid
// inner-circle signature.
type Interceptor struct {
	susp      *SuspicionManager
	templates []templateEntry
	verify    Verifier

	// Stats counts interceptor decisions.
	Stats InterceptStats
}

type templateEntry struct {
	match    Template
	redirect func(link.Env)
}

// InterceptStats counts interceptor activity.
type InterceptStats struct {
	Redirected        uint64
	SuppressedSuspect uint64
	SuppressedBadSig  uint64
}

var _ link.Filter = (*Interceptor)(nil)

// NewInterceptor returns an interceptor consulting susp for the suspected
// list. susp may be nil (no suspicion-based suppression).
func NewInterceptor(susp *SuspicionManager) *Interceptor {
	return &Interceptor{susp: susp}
}

// Register adds a message template; matching outgoing messages are passed
// to redirect instead of the radio.
func (ic *Interceptor) Register(match Template, redirect func(link.Env)) {
	ic.templates = append(ic.templates, templateEntry{match: match, redirect: redirect})
}

// SetVerifier installs the signature check applied to incoming messages
// (supplied by the voting service).
func (ic *Interceptor) SetVerifier(v Verifier) { ic.verify = v }

// Outbound implements link.Filter: redirect template matches to the
// inner-circle services.
func (ic *Interceptor) Outbound(e link.Env) bool {
	for _, t := range ic.templates {
		if t.match(e) {
			ic.Stats.Redirected++
			t.redirect(e)
			return false
		}
	}
	return true
}

// Inbound implements link.Filter. Per §4, suppression applies to the
// *template-matched* incoming messages (the application messages subject
// to inner-circle checking) and to messages claiming inner-circle
// agreement: those are dropped when the sender is suspected or the
// signature is invalid. Other traffic — beacons, voting protocol
// messages, data — passes through untouched.
func (ic *Interceptor) Inbound(e link.Env) bool {
	claims := false
	valid := false
	if ic.verify != nil {
		claims, valid = ic.verify(e)
	}
	matched := false
	for _, t := range ic.templates {
		if t.match(e) {
			matched = true
			break
		}
	}
	if !claims && !matched {
		return true
	}
	if ic.susp != nil && ic.susp.Suspected(e.From) {
		ic.Stats.SuppressedSuspect++
		return false
	}
	if claims && !valid {
		ic.Stats.SuppressedBadSig++
		if ic.susp != nil {
			// A message that required inner-circle protection but carries
			// no valid signature is provable evidence: correct nodes'
			// interceptors never emit one.
			ic.susp.SuspectPermanent(e.From, "invalid inner-circle signature")
		}
		return false
	}
	return true
}
