// Package icnet implements the two node-local inner-circle components of
// the paper's architecture (Fig. 1) that police traffic: the Suspicions
// Manager, which tracks misbehaving nodes, and the Inner-circle
// Interceptor, which redirects template-matched outgoing messages into the
// voting service and suppresses incoming messages from suspected nodes or
// with invalid signatures.
package icnet

import (
	"sort"

	"innercircle/internal/link"
	"innercircle/internal/sim"
)

// Evidence describes why a node was suspected, for diagnostics.
type Evidence struct {
	Node   link.NodeID
	Reason string
	At     sim.Time
}

// SuspicionManager maintains the suspected-node list. Per §4: a node p
// suspects q *permanently* only with provable evidence of misbehaviour
// (e.g. a properly signed message with an invalid field); otherwise the
// suspicion is temporary and expires.
type SuspicionManager struct {
	k        *sim.Kernel
	tempDur  sim.Duration
	perm     map[link.NodeID]Evidence
	tempEnds map[link.NodeID]sim.Time
	log      []Evidence
}

// NewSuspicionManager returns a manager whose temporary suspicions last
// tempDur (the paper suggests "a few minutes").
func NewSuspicionManager(k *sim.Kernel, tempDur sim.Duration) *SuspicionManager {
	return &SuspicionManager{
		k:        k,
		tempDur:  tempDur,
		perm:     make(map[link.NodeID]Evidence),
		tempEnds: make(map[link.NodeID]sim.Time),
	}
}

// SuspectPermanent records provable evidence against a node; the suspicion
// never expires.
func (s *SuspicionManager) SuspectPermanent(id link.NodeID, reason string) {
	ev := Evidence{Node: id, Reason: reason, At: s.k.Now()}
	if _, dup := s.perm[id]; !dup {
		s.perm[id] = ev
		s.log = append(s.log, ev)
	}
	delete(s.tempEnds, id)
}

// SuspectTemporary suspects a node until the temporary window elapses;
// repeated calls extend the window.
func (s *SuspicionManager) SuspectTemporary(id link.NodeID, reason string) {
	if _, isPerm := s.perm[id]; isPerm {
		return
	}
	s.tempEnds[id] = s.k.Now() + s.tempDur
	s.log = append(s.log, Evidence{Node: id, Reason: reason, At: s.k.Now()})
}

// Suspected reports whether id is currently suspected.
func (s *SuspicionManager) Suspected(id link.NodeID) bool {
	if _, ok := s.perm[id]; ok {
		return true
	}
	if end, ok := s.tempEnds[id]; ok {
		if s.k.Now() < end {
			return true
		}
		delete(s.tempEnds, id)
	}
	return false
}

// Snapshot returns the currently suspected node IDs, sorted.
func (s *SuspicionManager) Snapshot() []link.NodeID {
	var out []link.NodeID
	for id := range s.perm {
		out = append(out, id)
	}
	for id := range s.tempEnds {
		if s.Suspected(id) {
			if _, isPerm := s.perm[id]; !isPerm {
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Log returns all evidence recorded so far, in order.
func (s *SuspicionManager) Log() []Evidence {
	return append([]Evidence(nil), s.log...)
}
