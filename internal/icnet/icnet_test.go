package icnet

import (
	"testing"

	"innercircle/internal/link"
	"innercircle/internal/sim"
)

type msg struct {
	kind string
	size int
}

func (m msg) Size() int { return m.size }

func env(from link.NodeID, kind string) link.Env {
	return link.Env{From: from, To: 1, Msg: msg{kind: kind, size: 10}}
}

func TestTemporarySuspicionExpires(t *testing.T) {
	k := sim.NewKernel()
	s := NewSuspicionManager(k, 60)
	s.SuspectTemporary(5, "late ack")
	if !s.Suspected(5) {
		t.Fatal("node not suspected immediately after SuspectTemporary")
	}
	if err := k.Run(59); err != nil {
		t.Fatal(err)
	}
	if !s.Suspected(5) {
		t.Fatal("suspicion expired early")
	}
	if err := k.Run(61); err != nil {
		t.Fatal(err)
	}
	if s.Suspected(5) {
		t.Fatal("temporary suspicion did not expire")
	}
}

func TestPermanentSuspicionPersists(t *testing.T) {
	k := sim.NewKernel()
	s := NewSuspicionManager(k, 60)
	s.SuspectPermanent(3, "signed invalid RREP")
	if err := k.Run(1e6); err != nil {
		t.Fatal(err)
	}
	if !s.Suspected(3) {
		t.Fatal("permanent suspicion expired")
	}
}

func TestTemporaryExtension(t *testing.T) {
	k := sim.NewKernel()
	s := NewSuspicionManager(k, 60)
	s.SuspectTemporary(5, "first")
	if err := k.Run(50); err != nil {
		t.Fatal(err)
	}
	s.SuspectTemporary(5, "second")
	if err := k.Run(100); err != nil {
		t.Fatal(err)
	}
	if !s.Suspected(5) {
		t.Fatal("extension did not take effect (should last until 110)")
	}
	if err := k.Run(111); err != nil {
		t.Fatal(err)
	}
	if s.Suspected(5) {
		t.Fatal("extended suspicion did not expire")
	}
}

func TestPermanentOverridesTemporary(t *testing.T) {
	k := sim.NewKernel()
	s := NewSuspicionManager(k, 10)
	s.SuspectTemporary(7, "t")
	s.SuspectPermanent(7, "p")
	s.SuspectTemporary(7, "t again") // must not downgrade
	if err := k.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !s.Suspected(7) {
		t.Fatal("permanent suspicion was downgraded by a later temporary one")
	}
}

func TestSnapshotSorted(t *testing.T) {
	k := sim.NewKernel()
	s := NewSuspicionManager(k, 60)
	s.SuspectPermanent(9, "x")
	s.SuspectPermanent(2, "y")
	s.SuspectTemporary(5, "z")
	got := s.Snapshot()
	want := []link.NodeID{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("Snapshot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", got, want)
		}
	}
	if len(s.Log()) != 3 {
		t.Fatalf("Log has %d entries, want 3", len(s.Log()))
	}
}

func TestInterceptorRedirectsTemplateMatches(t *testing.T) {
	ic := NewInterceptor(nil)
	var redirected []link.Env
	ic.Register(func(e link.Env) bool {
		m, ok := e.Msg.(msg)
		return ok && m.kind == "rrep"
	}, func(e link.Env) { redirected = append(redirected, e) })

	if ic.Outbound(env(1, "rrep")) {
		t.Fatal("matching message was not swallowed")
	}
	if !ic.Outbound(env(1, "data")) {
		t.Fatal("non-matching message was swallowed")
	}
	if len(redirected) != 1 {
		t.Fatalf("redirected %d, want 1", len(redirected))
	}
	if ic.Stats.Redirected != 1 {
		t.Fatalf("stats.Redirected = %d", ic.Stats.Redirected)
	}
}

func TestInterceptorSuppressesSuspectedSenders(t *testing.T) {
	k := sim.NewKernel()
	susp := NewSuspicionManager(k, 60)
	ic := NewInterceptor(susp)
	// Suppression applies only to template-matched messages (the
	// application messages subject to inner-circle checking).
	ic.Register(func(e link.Env) bool {
		m, ok := e.Msg.(msg)
		return ok && m.kind == "rrep"
	}, func(link.Env) {})
	susp.SuspectPermanent(8, "evidence")
	if ic.Inbound(env(8, "rrep")) {
		t.Fatal("template-matched message from suspected node delivered")
	}
	if !ic.Inbound(env(8, "beacon")) {
		t.Fatal("non-matched message from suspected node suppressed (beacons must pass)")
	}
	if !ic.Inbound(env(9, "rrep")) {
		t.Fatal("template-matched message from clean node suppressed")
	}
	if ic.Stats.SuppressedSuspect != 1 {
		t.Fatalf("stats = %+v", ic.Stats)
	}
}

func TestInterceptorSignatureCheck(t *testing.T) {
	k := sim.NewKernel()
	susp := NewSuspicionManager(k, 60)
	ic := NewInterceptor(susp)
	// Messages of kind "agreed-bad" claim agreement but fail verification.
	ic.SetVerifier(func(e link.Env) (bool, bool) {
		m, ok := e.Msg.(msg)
		if !ok {
			return false, false
		}
		switch m.kind {
		case "agreed-good":
			return true, true
		case "agreed-bad":
			return true, false
		default:
			return false, false
		}
	})
	if !ic.Inbound(env(4, "agreed-good")) {
		t.Fatal("valid agreed message suppressed")
	}
	if ic.Inbound(env(4, "agreed-bad")) {
		t.Fatal("invalid agreed message delivered")
	}
	if !ic.Inbound(env(5, "data")) {
		t.Fatal("plain message suppressed")
	}
	// Sending a bad signature is provable evidence: node 4 is now suspect.
	if !susp.Suspected(4) {
		t.Fatal("bad-signature sender not suspected")
	}
	if ic.Stats.SuppressedBadSig != 1 {
		t.Fatalf("stats = %+v", ic.Stats)
	}
}
