package icnet

import (
	"testing"

	"innercircle/internal/sim"
)

// TestTemporarySuspicionExpiresExactlyAtDeadline pins the boundary: a
// temporary suspicion recorded at t lasts while now < t+tempDur, so at
// exactly the deadline the node is already clean again.
func TestTemporarySuspicionExpiresExactlyAtDeadline(t *testing.T) {
	k := sim.NewKernel()
	s := NewSuspicionManager(k, 60)
	s.SuspectTemporary(5, "late ack")
	if err := k.Run(60); err != nil {
		t.Fatal(err)
	}
	if got := float64(k.Now()); got != 60 {
		t.Fatalf("clock at %v, want exactly the deadline", got)
	}
	if s.Suspected(5) {
		t.Fatal("suspicion active at now == deadline; the window is half-open [t, t+dur)")
	}
	if snap := s.Snapshot(); len(snap) != 0 {
		t.Fatalf("Snapshot still lists expired node: %v", snap)
	}
}

// TestPermanentSuspicionSurvivesWouldBeExpiry upgrades a temporary
// suspicion to permanent and checks the node stays suspected at and past
// the instant the temporary window would have ended.
func TestPermanentSuspicionSurvivesWouldBeExpiry(t *testing.T) {
	k := sim.NewKernel()
	s := NewSuspicionManager(k, 60)
	s.SuspectTemporary(5, "late ack")
	s.SuspectPermanent(5, "signed invalid RREP")
	if err := k.Run(60); err != nil { // the temporary deadline
		t.Fatal(err)
	}
	if !s.Suspected(5) {
		t.Fatal("permanent suspicion vanished at the temporary deadline")
	}
	if err := k.Run(1e6); err != nil {
		t.Fatal(err)
	}
	if !s.Suspected(5) {
		t.Fatal("permanent suspicion expired")
	}
	if snap := s.Snapshot(); len(snap) != 1 || snap[0] != 5 {
		t.Fatalf("Snapshot = %v, want [5]", snap)
	}
}
