package mac

import (
	"errors"
	"testing"

	"innercircle/internal/geo"
	"innercircle/internal/mobility"
	"innercircle/internal/radio"
	"innercircle/internal/sim"
)

// build creates a channel plus one MAC per position; received packets are
// recorded per node.
func build(k *sim.Kernel, positions []geo.Point) ([]*MAC, [][]Packet) {
	ch := radio.NewChannel(k, radio.Default80211())
	rng := sim.NewRNG(1)
	macs := make([]*MAC, len(positions))
	got := make([][]Packet, len(positions))
	for i, p := range positions {
		i := i
		macs[i] = New(k, ch, mobility.Static(p), nil, rng.SplitN("mac", i), Default80211())
		macs[i].OnRecv(func(pkt Packet) { got[i] = append(got[i], pkt) })
	}
	return macs, got
}

func TestUnicastDelivery(t *testing.T) {
	k := sim.NewKernel()
	macs, got := build(k, []geo.Point{{X: 0}, {X: 100}})
	if err := macs[0].Send(macs[1].Addr(), "hi", 512); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(got[1]) != 1 || got[1][0].Payload != "hi" {
		t.Fatalf("receiver got %v, want one 'hi'", got[1])
	}
	if got[1][0].Src != macs[0].Addr() {
		t.Fatalf("src = %v, want %v", got[1][0].Src, macs[0].Addr())
	}
	if macs[0].Stats.DataDelivered != 1 {
		t.Fatalf("sender delivered count = %d, want 1", macs[0].Stats.DataDelivered)
	}
}

func TestUnicastNotDeliveredToThirdParty(t *testing.T) {
	k := sim.NewKernel()
	macs, got := build(k, []geo.Point{{X: 0}, {X: 100}, {X: 50}})
	if err := macs[0].Send(macs[1].Addr(), "private", 512); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(got[2]) != 0 {
		t.Fatalf("third party overheard unicast: %v", got[2])
	}
}

func TestBroadcastReachesAllInRange(t *testing.T) {
	k := sim.NewKernel()
	macs, got := build(k, []geo.Point{{X: 0}, {X: 100}, {X: 200}, {X: 600}})
	if err := macs[0].Send(Broadcast, "bcast", 64); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(got[1]) != 1 || len(got[2]) != 1 {
		t.Fatalf("in-range nodes got %d/%d broadcasts, want 1/1", len(got[1]), len(got[2]))
	}
	if len(got[3]) != 0 {
		t.Fatal("out-of-range node received broadcast")
	}
}

func TestRetryLimitAndFailureCallback(t *testing.T) {
	k := sim.NewKernel()
	macs, _ := build(k, []geo.Point{{X: 0}, {X: 1000}}) // out of range
	var failed []Packet
	macs[0].OnSendFailed(func(p Packet) { failed = append(failed, p) })
	if err := macs[0].Send(macs[1].Addr(), "lost", 512); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 {
		t.Fatalf("send-failed callbacks = %d, want 1", len(failed))
	}
	if macs[0].Stats.Retries != uint64(Default80211().RetryLimit)+1 {
		t.Fatalf("retries = %d, want %d", macs[0].Stats.Retries, Default80211().RetryLimit+1)
	}
	if macs[0].Stats.DataDropped != 1 {
		t.Fatalf("dropped = %d, want 1", macs[0].Stats.DataDropped)
	}
}

func TestQueueDrainsInOrder(t *testing.T) {
	k := sim.NewKernel()
	macs, got := build(k, []geo.Point{{X: 0}, {X: 100}})
	for i := 0; i < 10; i++ {
		if err := macs[0].Send(macs[1].Addr(), i, 256); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(got[1]) != 10 {
		t.Fatalf("delivered %d packets, want 10", len(got[1]))
	}
	for i, p := range got[1] {
		if p.Payload != i {
			t.Fatalf("out-of-order delivery: got %v at index %d", p.Payload, i)
		}
	}
}

func TestQueueOverflow(t *testing.T) {
	k := sim.NewKernel()
	macs, _ := build(k, []geo.Point{{X: 0}, {X: 100}})
	params := Default80211()
	var errFull error
	for i := 0; i < params.QueueLimit+5; i++ {
		if err := macs[0].Send(macs[1].Addr(), i, 256); err != nil {
			errFull = err
		}
	}
	if !errors.Is(errFull, ErrQueueFull) {
		t.Fatalf("overflow err = %v, want ErrQueueFull", errFull)
	}
}

func TestContentionManySendersAllDeliver(t *testing.T) {
	k := sim.NewKernel()
	// Five senders around one receiver, all within range of each other.
	positions := []geo.Point{{X: 0}, {X: 50}, {X: -50}, {X: 0, Y: 50}, {X: 0, Y: -50}, {X: 30, Y: 30}}
	macs, got := build(k, positions)
	for i := 1; i < len(macs); i++ {
		if err := macs[i].Send(macs[0].Addr(), i, 512); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != 5 {
		t.Fatalf("receiver got %d packets under contention, want 5 (CSMA/ARQ should recover)", len(got[0]))
	}
}

func TestDuplicateSuppression(t *testing.T) {
	k := sim.NewKernel()
	macs, got := build(k, []geo.Point{{X: 0}, {X: 100}})
	// Two distinct packets with the same payload are both delivered; MAC
	// dedup only suppresses retransmissions of the same sequence number.
	_ = macs[0].Send(macs[1].Addr(), "x", 128)
	_ = macs[0].Send(macs[1].Addr(), "x", 128)
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(got[1]) != 2 {
		t.Fatalf("got %d, want 2 distinct deliveries", len(got[1]))
	}
}

func TestAddrMatchesRadioID(t *testing.T) {
	k := sim.NewKernel()
	macs, _ := build(k, []geo.Point{{X: 0}, {X: 100}, {X: 200}})
	for i, m := range macs {
		if int(m.Addr()) != i {
			t.Fatalf("mac %d has addr %v", i, m.Addr())
		}
	}
}

func TestHiddenTerminalEventuallyDelivers(t *testing.T) {
	k := sim.NewKernel()
	// A and C cannot hear each other but both reach B: the classic hidden
	// terminal. ARQ must recover the collisions.
	macs, got := build(k, []geo.Point{{X: 0}, {X: 240}, {X: 480}})
	for i := 0; i < 5; i++ {
		_ = macs[0].Send(macs[1].Addr(), i, 512)
		_ = macs[2].Send(macs[1].Addr(), 100+i, 512)
	}
	if err := k.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(got[1]) < 8 {
		t.Fatalf("hidden-terminal scenario delivered only %d/10 packets", len(got[1]))
	}
}
