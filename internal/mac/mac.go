// Package mac implements a CSMA/CA medium-access layer in the style of the
// 802.11 distributed coordination function: carrier sense, binary
// exponential backoff, SIFS/DIFS interframe spacing, and unicast
// ACK/retransmission. Broadcast frames are sent once, unacknowledged, as in
// 802.11. This is the "MAC Layer" box of the paper's node architecture
// (Fig. 1); the figures it feeds depend on contention losses and per-packet
// airtime, which this model captures, not on bit-level 802.11 detail.
package mac

import (
	"errors"

	"innercircle/internal/energy"
	"innercircle/internal/mobility"
	"innercircle/internal/radio"
	"innercircle/internal/sim"
)

// Addr is a link-layer address. Every MAC on a channel has a unique Addr.
type Addr int

// Broadcast is the all-nodes destination address.
const Broadcast Addr = -1

// Packet is the MAC service-data unit exchanged with the layer above.
type Packet struct {
	Src     Addr
	Dst     Addr
	Payload any
	Bytes   int // payload size; the MAC adds HeaderBytes of overhead
}

// Params configure the MAC.
type Params struct {
	SlotTime    sim.Duration `json:"slot_time"`
	SIFS        sim.Duration `json:"sifs"`
	DIFS        sim.Duration `json:"difs"`
	CWMin       int          `json:"cw_min"` // initial contention window, in slots
	CWMax       int          `json:"cw_max"`
	RetryLimit  int          `json:"retry_limit"`  // unicast retransmissions before giving up
	HeaderBytes int          `json:"header_bytes"` // per-frame MAC+network header overhead
	AckBytes    int          `json:"ack_bytes"`
	QueueLimit  int          `json:"queue_limit"` // outgoing queue capacity
}

// Default80211 returns DCF-like parameters.
func Default80211() Params {
	return Params{
		SlotTime:    20 * sim.Microsecond,
		SIFS:        10 * sim.Microsecond,
		DIFS:        50 * sim.Microsecond,
		CWMin:       31,
		CWMax:       1023,
		RetryLimit:  7,
		HeaderBytes: 52,
		AckBytes:    14,
		QueueLimit:  64,
	}
}

// ErrQueueFull is returned by Send when the outgoing queue is at capacity.
var ErrQueueFull = errors.New("mac: transmit queue full")

type frameKind int

const (
	frameData frameKind = iota + 1
	frameAck
)

// frame is what actually crosses the radio channel.
type frame struct {
	kind    frameKind
	src     Addr
	dst     Addr
	seq     uint32
	payload any
	bytes   int
}

type txJob struct {
	pkt     Packet
	seq     uint32
	retries int
}

// Stats counts MAC-level activity.
type Stats struct {
	DataSent      uint64 // transmissions put on the air (including retries)
	DataQueued    uint64
	DataDelivered uint64 // unicast sends confirmed by ACK + broadcasts sent
	DataDropped   uint64 // retry limit exceeded or queue overflow
	AcksSent      uint64
	Retries       uint64
	Duplicates    uint64 // received duplicates suppressed
}

// MAC is one node's medium-access entity. It owns its radio transceiver.
// Not safe for concurrent use; all calls happen on the simulation thread.
type MAC struct {
	k      *sim.Kernel
	ch     *radio.Channel
	tr     *radio.Transceiver
	rng    *sim.RNG
	params Params
	addr   Addr

	// border marks a node within one transmission range of a shard-stripe
	// boundary on a sharded channel: its transmission events must be
	// tx-flagged so the shard's horizon accounts for them (see
	// sim.Kernel.ScheduleFireTx). Always false unsharded.
	border bool

	queue    []*txJob
	cur      *txJob
	cw       int
	sending  bool // currently contending or awaiting ack for cur
	nextSeq  uint32
	ackTimer *sim.Timer
	lastSeq  map[Addr]uint32

	// Hoisted callbacks for the kernel's fire-and-forget fast path: backoff
	// expiry and post-broadcast dequeue events are never cancelled, and
	// building their closures once keeps contention allocation-free.
	backoffExpired func()
	startNextFn    func()

	onRecv       func(Packet)
	onSendFailed func(Packet)

	// Stats exposes counters for the experiment harness.
	Stats Stats
}

// New attaches a new MAC to channel ch at the given position model. The
// MAC's address equals its radio ID.
func New(k *sim.Kernel, ch *radio.Channel, pos mobility.Model, meter *energy.Meter, rng *sim.RNG, params Params) *MAC {
	m := &MAC{
		k:       k,
		ch:      ch,
		rng:     rng,
		params:  params,
		cw:      params.CWMin,
		lastSeq: make(map[Addr]uint32),
	}
	m.tr = ch.Attach(pos, meter, m.radioRecv)
	m.addr = Addr(m.tr.ID())
	m.ackTimer = sim.NewTimer(k, m.ackTimeout)
	m.backoffExpired = func() {
		if m.cur == nil {
			return
		}
		if m.ch.Busy(m.tr) {
			m.growCW()
			m.contend()
			return
		}
		m.transmitCur()
	}
	m.startNextFn = m.startNext
	return m
}

// Addr returns this MAC's link-layer address.
func (m *MAC) Addr() Addr { return m.addr }

// Transceiver returns the underlying radio, for tests and for modelling
// node crashes.
func (m *MAC) Transceiver() *radio.Transceiver { return m.tr }

// MarkBorder declares this MAC a border node on a sharded channel. Every
// event that can put a frame on the air (backoff expiry, ACK turnaround)
// is then scheduled through the kernel's tx-flagged path, which feeds the
// shard's transmission horizon. The two delays involved — DIFS plus
// backoff, and SIFS — are both at least the shard lookahead min(SIFS, DIFS),
// which is what makes conservative synchronization sound.
func (m *MAC) MarkBorder() { m.border = true }

// OnRecv registers the upcall for received packets.
func (m *MAC) OnRecv(fn func(Packet)) { m.onRecv = fn }

// OnSendFailed registers the upcall invoked when a unicast packet exhausts
// its retries (the signal ad hoc routing uses to declare a broken link).
func (m *MAC) OnSendFailed(fn func(Packet)) { m.onSendFailed = fn }

// Send queues a packet for transmission.
func (m *MAC) Send(dst Addr, payload any, bytes int) error {
	return m.enqueue(Packet{Src: m.addr, Dst: dst, Payload: payload, Bytes: bytes})
}

// SendAs queues a packet whose link-layer source is forged as src. It is
// the identity-spoofing hook of the fault-injection subsystem
// (internal/faults); correct stacks never call it. Receivers acknowledge
// the claimed source, so a spoofed unicast never sees its ACK and burns
// its whole retry budget — spoofing is meant for broadcast frames (STS
// beacons).
func (m *MAC) SendAs(src, dst Addr, payload any, bytes int) error {
	return m.enqueue(Packet{Src: src, Dst: dst, Payload: payload, Bytes: bytes})
}

func (m *MAC) enqueue(pkt Packet) error {
	if len(m.queue) >= m.params.QueueLimit {
		m.Stats.DataDropped++
		return ErrQueueFull
	}
	m.nextSeq++
	m.Stats.DataQueued++
	m.queue = append(m.queue, &txJob{pkt: pkt, seq: m.nextSeq})
	if !m.sending {
		m.startNext()
	}
	return nil
}

// QueueLen returns the number of packets waiting (excluding the in-flight
// one).
func (m *MAC) QueueLen() int { return len(m.queue) }

func (m *MAC) startNext() {
	if len(m.queue) == 0 {
		m.cur = nil
		m.sending = false
		return
	}
	m.cur = m.queue[0]
	m.queue = m.queue[1:]
	m.sending = true
	m.cw = m.params.CWMin
	m.contend()
}

// contend waits DIFS plus a random backoff, then transmits if the channel
// is clear, otherwise backs off again with a doubled window.
func (m *MAC) contend() {
	backoff := m.params.DIFS + sim.Duration(m.rng.Intn(m.cw+1))*m.params.SlotTime
	m.k.ScheduleFireTx(backoff, m.backoffExpired, m.border)
}

func (m *MAC) growCW() {
	m.cw = m.cw*2 + 1
	if m.cw > m.params.CWMax {
		m.cw = m.params.CWMax
	}
}

func (m *MAC) transmitCur() {
	job := m.cur
	f := frame{
		kind:    frameData,
		src:     job.pkt.Src, // m.addr, unless forged via SendAs
		dst:     job.pkt.Dst,
		seq:     job.seq,
		payload: job.pkt.Payload,
		bytes:   job.pkt.Bytes,
	}
	air := job.pkt.Bytes + m.params.HeaderBytes
	if err := m.ch.Send(m.tr, radio.Frame{Bytes: air, Payload: f}); err != nil {
		// Radio busy (e.g. our own ACK in flight): retry shortly.
		m.growCW()
		m.contend()
		return
	}
	m.Stats.DataSent++
	d := m.ch.TxDuration(air)
	if job.pkt.Dst == Broadcast {
		m.Stats.DataDelivered++
		m.k.ScheduleFire(d, m.startNextFn)
		return
	}
	// Await ACK: airtime + SIFS + ACK airtime + scheduling margin.
	ackAir := m.ch.TxDuration(m.params.AckBytes + m.params.HeaderBytes)
	m.ackTimer.Reset(d + m.params.SIFS + ackAir + 4*m.params.SlotTime)
}

func (m *MAC) ackTimeout() {
	job := m.cur
	if job == nil {
		return
	}
	job.retries++
	m.Stats.Retries++
	if job.retries > m.params.RetryLimit {
		m.Stats.DataDropped++
		if m.onSendFailed != nil {
			m.onSendFailed(job.pkt)
		}
		m.startNext()
		return
	}
	m.growCW()
	m.contend()
}

// radioRecv handles every frame the physical layer decodes.
func (m *MAC) radioRecv(rf radio.Frame, _ radio.ID) {
	f, ok := rf.Payload.(frame)
	if !ok {
		return
	}
	switch f.kind {
	case frameAck:
		if m.cur != nil && f.dst == m.addr && f.src == m.cur.pkt.Dst && f.seq == m.cur.seq {
			m.ackTimer.Stop()
			m.Stats.DataDelivered++
			m.startNext()
		}
	case frameData:
		if f.dst != m.addr && f.dst != Broadcast {
			return
		}
		if f.dst == m.addr {
			m.sendAck(f)
			// Suppress duplicates caused by lost ACKs. Presence in the
			// map is the "have seen this sender" bit — one lookup on the
			// per-frame hot path.
			if last, ok := m.lastSeq[f.src]; ok && last == f.seq {
				m.Stats.Duplicates++
				return
			}
			m.lastSeq[f.src] = f.seq
		}
		if m.onRecv != nil {
			m.onRecv(Packet{Src: f.src, Dst: f.dst, Payload: f.payload, Bytes: f.bytes})
		}
	}
}

func (m *MAC) sendAck(f frame) {
	ack := frame{kind: frameAck, src: m.addr, dst: f.src, seq: f.seq}
	m.k.ScheduleFireTx(m.params.SIFS, func() {
		air := m.params.AckBytes + m.params.HeaderBytes
		if err := m.ch.Send(m.tr, radio.Frame{Bytes: air, Payload: ack}); err == nil {
			m.Stats.AcksSent++
		}
	}, m.border)
}
