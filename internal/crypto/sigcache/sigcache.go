// Package sigcache provides a bounded, deterministic memo for signature
// verification verdicts. Verifying a threshold or RSA signature is a
// modular exponentiation; inside one replica the same (key, message,
// signature) triple is verified many times — every node checks the same
// flooded agreed message, every vote round re-checks the same value
// signatures — and verification is a pure function of that triple, so the
// verdict can be reused. The cache is an LRU over an exact key that
// includes the verifying key's identity and proactive-refresh epoch, so a
// refreshed key can never serve a stale verdict.
//
// The cache memoizes the *verdict only*. Simulation-side accounting
// (energy, delay) is charged by the caller unconditionally, so enabling
// the memo never changes experiment tables — only wall-clock time. The
// IC_CRYPTO_MEMO environment knob (FromEnv) turns it off for A/B runs.
//
// A cache instance is not safe for concurrent use. Replicas are
// single-threaded event loops and each replica owns one cache, so the
// parallel sweep engine never shares an instance across goroutines.
package sigcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"os"
)

// Kind namespaces cache keys by verification flavor.
type Kind uint8

const (
	// KindNSL is an nsl.Verify verdict (plain RSA signature).
	KindNSL Kind = iota + 1
	// KindThresh is a thresh GroupKey.Verify verdict (combined signature).
	KindThresh
	// KindPartial is a thresh VerifyPartial verdict (one partial).
	KindPartial
)

// Key identifies one verification exactly. Scope holds a comparable
// identity for the verifying key — the GroupKey interface value or the
// nsl.PublicKey struct — and Epoch its proactive-refresh epoch, so
// refreshing a key invalidates all of its entries without a sweep.
type Key struct {
	Kind  Kind
	Scope any
	Epoch uint64
	Sum   [32]byte
}

// Entry is a memoized verdict: the exact error the verification returned
// (nil for success).
type Entry struct {
	Err error
}

// HashParts digests the variable-length inputs of a verification
// (message, signature bytes) into a fixed key component. Parts are
// length-prefixed, so concatenation ambiguity cannot alias two
// verifications to one key.
func HashParts(parts ...[]byte) [32]byte {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		_, _ = h.Write(n[:])
		_, _ = h.Write(p)
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// DefaultCap bounds the memo; at a few hundred bytes per entry the
// default stays well under a megabyte per replica.
const DefaultCap = 1024

// Cache is a bounded LRU of verification verdicts.
type Cache struct {
	cap int
	ll  *list.List
	m   map[Key]*list.Element
}

type lruItem struct {
	key   Key
	entry Entry
}

// New returns a cache bounded to capacity entries (DefaultCap if <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Cache{cap: capacity, ll: list.New(), m: make(map[Key]*list.Element)}
}

// EnvVar is the environment knob read by FromEnv.
const EnvVar = "IC_CRYPTO_MEMO"

// FromEnv returns a default-capacity cache, or nil (memo disabled) when
// IC_CRYPTO_MEMO is set to "off" or "0". The memo is on by default.
func FromEnv() *Cache {
	switch os.Getenv(EnvVar) {
	case "off", "0":
		return nil
	}
	return New(DefaultCap)
}

// Get returns the memoized verdict for k, marking it recently used.
func (c *Cache) Get(k Key) (Entry, bool) {
	el, ok := c.m[k]
	if !ok {
		return Entry{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).entry, true
}

// Put memoizes the verdict for k, evicting the least recently used entry
// when the cache is full.
func (c *Cache) Put(k Key, e Entry) {
	if el, ok := c.m[k]; ok {
		el.Value.(*lruItem).entry = e
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		back := c.ll.Back()
		if back != nil {
			c.ll.Remove(back)
			delete(c.m, back.Value.(*lruItem).key)
		}
	}
	c.m[k] = c.ll.PushFront(&lruItem{key: k, entry: e})
}

// Len reports the current entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	return c.ll.Len()
}
