package sigcache

import (
	"errors"
	"fmt"
	"testing"
)

func key(i int, epoch uint64) Key {
	return Key{Kind: KindNSL, Scope: "k", Epoch: epoch, Sum: HashParts([]byte(fmt.Sprintf("m%d", i)))}
}

func TestCacheHitMissAndVerdicts(t *testing.T) {
	c := New(4)
	if _, ok := c.Get(key(1, 0)); ok {
		t.Fatal("hit on empty cache")
	}
	errBad := errors.New("bad")
	c.Put(key(1, 0), Entry{})
	c.Put(key(2, 0), Entry{Err: errBad})
	if e, ok := c.Get(key(1, 0)); !ok || e.Err != nil {
		t.Fatalf("want ok verdict, got ok=%v err=%v", ok, e.Err)
	}
	if e, ok := c.Get(key(2, 0)); !ok || !errors.Is(e.Err, errBad) {
		t.Fatalf("want memoized error, got ok=%v err=%v", ok, e.Err)
	}
	// Same message under a bumped epoch is a different key.
	if _, ok := c.Get(key(1, 1)); ok {
		t.Fatal("epoch bump must invalidate")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(2)
	c.Put(key(1, 0), Entry{})
	c.Put(key(2, 0), Entry{})
	c.Get(key(1, 0)) // 1 is now most recent
	c.Put(key(3, 0), Entry{})
	if _, ok := c.Get(key(2, 0)); ok {
		t.Fatal("LRU entry 2 should have been evicted")
	}
	if _, ok := c.Get(key(1, 0)); !ok {
		t.Fatal("recently used entry 1 evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestHashPartsLengthPrefixed(t *testing.T) {
	a := HashParts([]byte("ab"), []byte("c"))
	b := HashParts([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("length prefixing failed: concatenation aliases collide")
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "off")
	if FromEnv() != nil {
		t.Fatal("IC_CRYPTO_MEMO=off must disable the memo")
	}
	t.Setenv(EnvVar, "")
	if FromEnv() == nil {
		t.Fatal("memo should default to on")
	}
	// nil receiver Len is safe (disabled-memo path).
	var nilCache *Cache
	if nilCache.Len() != 0 {
		t.Fatal("nil cache Len")
	}
}
