package nsl

import (
	"bytes"
	"fmt"
	"math/big"
	mrand "math/rand"
	"testing"
)

// TestCRTMatchesDirectExponentiation checks that the CRT private-key path
// produces bit-identical results to the direct c^d mod N form, for both
// signing and decryption, across modulus sizes.
func TestCRTMatchesDirectExponentiation(t *testing.T) {
	for _, bits := range []int{512, 1024} {
		kp, err := GenerateKeyPair(bits, mrand.New(mrand.NewSource(int64(bits))))
		if err != nil {
			t.Fatal(err)
		}
		if kp.crt == nil {
			t.Fatalf("bits=%d: CRT context not built", bits)
		}
		rng := mrand.New(mrand.NewSource(9))
		for i := 0; i < 20; i++ {
			c := new(big.Int).Rand(rng, kp.Pub.N)
			got := kp.privExp(c)
			want := new(big.Int).Exp(c, kp.d, kp.Pub.N)
			if got.Cmp(want) != 0 {
				t.Fatalf("bits=%d trial=%d: CRT exponentiation differs from direct", bits, i)
			}
		}
		for i := 0; i < 4; i++ {
			msg := []byte(fmt.Sprintf("crt-msg-%d", i))
			sig := kp.Sign(msg)
			h := hashToModulusN(msg, kp.Pub.N)
			want := new(big.Int).Exp(h, kp.d, kp.Pub.N).Bytes()
			if !bytes.Equal(sig, want) {
				t.Fatalf("bits=%d msg=%d: CRT signature differs from direct", bits, i)
			}
			if err := Verify(kp.Pub, msg, sig); err != nil {
				t.Fatal(err)
			}
		}
	}
}
