package nsl

import (
	"fmt"
	"testing"
)

func benchKey(b *testing.B, bits int) *KeyPair {
	b.Helper()
	kp, err := GenerateKeyPair(bits, nil)
	if err != nil {
		b.Fatal(err)
	}
	return kp
}

// BenchmarkNSLSign measures the private-key operation behind every signed
// sensor value and every authenticated STS beacon (512-bit keys, the
// paper's sensor parameter).
func BenchmarkNSLSign(b *testing.B) {
	for _, bits := range []int{512, 1024} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			kp := benchKey(b, bits)
			msgs := make([][]byte, 16)
			for r := range msgs {
				msgs[r] = []byte(fmt.Sprintf("nsl-bench-msg-%d", r))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sig := kp.Sign(msgs[i%len(msgs)]); len(sig) == 0 {
					b.Fatal("empty signature")
				}
			}
		})
	}
}

// BenchmarkNSLVerify measures the matching public-key check.
func BenchmarkNSLVerify(b *testing.B) {
	kp := benchKey(b, 512)
	msgs := make([][]byte, 16)
	sigs := make([][]byte, 16)
	for r := range msgs {
		msgs[r] = []byte(fmt.Sprintf("nsl-bench-msg-%d", r))
		sigs[r] = kp.Sign(msgs[r])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(kp.Pub, msgs[i%len(msgs)], sigs[i%len(msgs)]); err != nil {
			b.Fatal(err)
		}
	}
}
