package nsl

import (
	"errors"
	"testing"
)

func TestSignVerify(t *testing.T) {
	kp, err := GenerateKeyPair(512, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("beacon: neighbours of node 7")
	sig := kp.Sign(msg)
	if err := Verify(kp.Pub, msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	kp, err := GenerateKeyPair(512, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("original")
	sig := kp.Sign(msg)
	if err := Verify(kp.Pub, []byte("forged"), sig); !errors.Is(err, ErrBadSig) {
		t.Fatalf("modified message: err = %v, want ErrBadSig", err)
	}
	sig[0] ^= 1
	if err := Verify(kp.Pub, msg, sig); !errors.Is(err, ErrBadSig) {
		t.Fatalf("modified signature: err = %v, want ErrBadSig", err)
	}
	if err := Verify(kp.Pub, msg, nil); !errors.Is(err, ErrBadSig) {
		t.Fatalf("empty signature: err = %v, want ErrBadSig", err)
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	kp1, err := GenerateKeyPair(512, nil)
	if err != nil {
		t.Fatal(err)
	}
	kp2, err := GenerateKeyPair(512, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("msg")
	sig := kp1.Sign(msg)
	if err := Verify(kp2.Pub, msg, sig); !errors.Is(err, ErrBadSig) {
		t.Fatalf("wrong key: err = %v, want ErrBadSig", err)
	}
}

func TestSigBytes(t *testing.T) {
	kp, err := GenerateKeyPair(512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := SigBytes(kp.Pub); got != 64 {
		t.Fatalf("SigBytes = %d, want 64 for 512-bit key", got)
	}
}
