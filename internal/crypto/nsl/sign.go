package nsl

import (
	"crypto/sha256"
	"errors"
	"math/big"
)

// Sign produces an RSA signature over SHA-256(msg) with the party's private
// key (hash-then-exponentiate; the same simulation-grade caveat as the
// package's encryption applies). STS beacons are signed this way so any
// receiver holding the directory can authenticate them.
func (kp *KeyPair) Sign(msg []byte) []byte {
	h := hashToModulusN(msg, kp.Pub.N)
	return kp.privExp(h).Bytes()
}

// ErrBadSig is returned by Verify for invalid signatures.
var ErrBadSig = errors.New("nsl: bad signature")

// Verify checks an RSA signature produced by Sign.
func Verify(pub PublicKey, msg, sig []byte) error {
	if len(sig) == 0 {
		return ErrBadSig
	}
	s := new(big.Int).SetBytes(sig)
	if s.Cmp(pub.N) >= 0 {
		return ErrBadSig
	}
	h := hashToModulusN(msg, pub.N)
	if new(big.Int).Exp(s, pub.E, pub.N).Cmp(h) != 0 {
		return ErrBadSig
	}
	return nil
}

// SigBytes returns the signature size under pub, for wire accounting.
func SigBytes(pub PublicKey) int { return (pub.N.BitLen() + 7) / 8 }

// hashToModulusN maps msg into Z_N via counter-mode SHA-256 expansion.
func hashToModulusN(msg []byte, n *big.Int) *big.Int {
	need := (n.BitLen() + 7) / 8
	var out []byte
	var ctr uint8
	for len(out) < need {
		h := sha256.New()
		_, _ = h.Write([]byte{0x51, ctr})
		_, _ = h.Write(msg)
		out = h.Sum(out)
		ctr++
	}
	x := new(big.Int).SetBytes(out[:need])
	x.Mod(x, n)
	if x.Sign() == 0 {
		x.SetInt64(1)
	}
	return x
}
