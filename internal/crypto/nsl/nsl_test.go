package nsl

import (
	"errors"
	mrand "math/rand"
	"testing"
)

// setup creates three parties A, B, M (M is the adversary) sharing one
// directory. 512-bit keys keep the suite fast.
func setup(t *testing.T) (a, b, m *Party) {
	t.Helper()
	dir := DirectoryMap{}
	mk := func(id int64) *Party {
		kp, err := GenerateKeyPair(512, nil)
		if err != nil {
			t.Fatal(err)
		}
		dir[id] = kp.Pub
		return NewParty(id, kp, dir, nil)
	}
	return mk(1), mk(2), mk(3)
}

func TestHandshakeEstablishesSharedKey(t *testing.T) {
	a, b, _ := setup(t)
	m1, err := a.Initiate(b.ID())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := b.OnMsg1(m1)
	if err != nil {
		t.Fatal(err)
	}
	m3, keyA, err := a.OnMsg2(b.ID(), m2)
	if err != nil {
		t.Fatal(err)
	}
	keyB, err := b.OnMsg3(a.ID(), m3)
	if err != nil {
		t.Fatal(err)
	}
	if keyA != keyB {
		t.Fatal("parties derived different session keys")
	}
	if keyA == (SessionKey{}) {
		t.Fatal("session key is zero")
	}
}

func TestDistinctHandshakesDistinctKeys(t *testing.T) {
	a, b, _ := setup(t)
	run := func() SessionKey {
		m1, _ := a.Initiate(b.ID())
		m2, _ := b.OnMsg1(m1)
		m3, key, err := a.OnMsg2(b.ID(), m2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.OnMsg3(a.ID(), m3); err != nil {
			t.Fatal(err)
		}
		return key
	}
	if run() == run() {
		t.Fatal("two handshakes produced the same session key")
	}
}

func TestLoweAttackDetected(t *testing.T) {
	// The classic attack on the unfixed protocol: A initiates with M; M
	// decrypts {Na, A} and re-encrypts it for B, impersonating A. B's reply
	// {Na, Nb, B} is forwarded by M to A. In the *fixed* protocol A expects
	// the responder identity M inside the ciphertext but finds B, so A
	// aborts.
	a, b, m := setup(t)
	// A initiates with M (the adversary).
	m1, err := a.Initiate(m.ID())
	if err != nil {
		t.Fatal(err)
	}
	// M decrypts M1 and replays its content toward B as if from A: M
	// builds a fresh M1' for B using A's identity and nonce. We model M's
	// capability by having it process M1 legitimately and then re-initiate;
	// since M cannot forge A's nonce encryption for B without knowing Na,
	// the strongest move is re-encryption, which OnMsg1 permits (contents
	// are attacker-chosen). Here M knows Na because M1 was addressed to it.
	plain, err := m.kp.decrypt(m1.Cipher)
	if err != nil {
		t.Fatal(err)
	}
	forged, err := encrypt(b.kp.Pub, plain, m.randSrc)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := b.OnMsg1(Msg1{To: b.ID(), Cipher: forged})
	if err != nil {
		t.Fatal(err)
	}
	// M forwards B's M2 to A, claiming it came from M.
	if _, _, err := a.OnMsg2(m.ID(), m2); !errors.Is(err, ErrProtocol) {
		t.Fatalf("Lowe man-in-the-middle not detected: err = %v", err)
	}
}

func TestMsg2FromUnknownPeerRejected(t *testing.T) {
	a, b, _ := setup(t)
	m1, _ := a.Initiate(b.ID())
	m2, _ := b.OnMsg1(m1)
	// A never initiated with node 99.
	if _, _, err := a.OnMsg2(99, m2); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v, want ErrNoSession", err)
	}
}

func TestTamperedCiphertextRejected(t *testing.T) {
	a, b, _ := setup(t)
	m1, _ := a.Initiate(b.ID())
	m1.Cipher[0] ^= 0xFF
	if _, err := b.OnMsg1(m1); !errors.Is(err, ErrProtocol) {
		t.Fatalf("tampered M1 err = %v, want ErrProtocol", err)
	}
}

func TestWrongNonceInMsg3Rejected(t *testing.T) {
	a, b, _ := setup(t)
	m1, _ := a.Initiate(b.ID())
	m2, _ := b.OnMsg1(m1)
	if _, _, err := a.OnMsg2(b.ID(), m2); err != nil {
		t.Fatal(err)
	}
	// Forge an M3 with the wrong nonce.
	bad, err := encrypt(b.kp.Pub, make([]byte, NonceSize), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.OnMsg3(a.ID(), Msg3{To: b.ID(), Cipher: bad}); !errors.Is(err, ErrProtocol) {
		t.Fatalf("forged M3 err = %v, want ErrProtocol", err)
	}
}

func TestReplayMsg3AfterCompletionRejected(t *testing.T) {
	a, b, _ := setup(t)
	m1, _ := a.Initiate(b.ID())
	m2, _ := b.OnMsg1(m1)
	m3, _, err := a.OnMsg2(b.ID(), m2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.OnMsg3(a.ID(), m3); err != nil {
		t.Fatal(err)
	}
	if _, err := b.OnMsg3(a.ID(), m3); !errors.Is(err, ErrNoSession) {
		t.Fatalf("replayed M3 err = %v, want ErrNoSession", err)
	}
}

func TestUnknownDirectoryEntry(t *testing.T) {
	a, _, _ := setup(t)
	if _, err := a.Initiate(42); err == nil {
		t.Fatal("Initiate with unknown peer succeeded")
	}
}

func TestEncryptRoundTrip(t *testing.T) {
	kp, err := GenerateKeyPair(512, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("round trip payload")
	c, err := encrypt(kp.Pub, msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := kp.decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("decrypt = %q, want %q", got, msg)
	}
}

func TestEncryptTooLong(t *testing.T) {
	kp, err := GenerateKeyPair(256, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := encrypt(kp.Pub, make([]byte, 100), nil); err == nil {
		t.Fatal("oversized plaintext accepted")
	}
}

func TestGenerateKeyPairSeededDeterministic(t *testing.T) {
	// A seeded stream must reproduce the identical key pair — reproducible
	// sweeps depend on it (modulus bit lengths feed wire-size accounting).
	gen := func() *KeyPair {
		kp, err := GenerateKeyPair(512, mrand.New(mrand.NewSource(99)))
		if err != nil {
			t.Fatal(err)
		}
		return kp
	}
	a, b := gen(), gen()
	if a.Pub.N.Cmp(b.Pub.N) != 0 || a.d.Cmp(b.d) != 0 {
		t.Fatal("same-seeded streams produced different key pairs")
	}
	// The keys still work.
	msg := []byte("seeded key sanity")
	if err := Verify(a.Pub, msg, a.Sign(msg)); err != nil {
		t.Fatal(err)
	}
	c, err := GenerateKeyPair(512, mrand.New(mrand.NewSource(100)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Pub.N.Cmp(c.Pub.N) == 0 {
		t.Fatal("different seeds produced the same modulus (suspicious)")
	}
}
