// Package nsl implements the Needham–Schroeder–Lowe public-key
// authentication protocol (Lowe's fixed variant, TACAS 1996), which §4.1 of
// the paper uses to authenticate neighbour links inside the Secure Topology
// Service. The three-message exchange is
//
//	M1: A→B  {Na, A}_pkB
//	M2: B→A  {Na, Nb, B}_pkA        (Lowe's fix: B's identity included)
//	M3: A→B  {Nb}_pkB
//
// after which both parties share the session key H(Na ‖ Nb), used to MAC
// subsequent STS beacons.
//
// Encryption is textbook RSA over math/big with randomized padding — a
// faithful protocol model for the simulator, not hardened production
// cryptography (no OAEP; see DESIGN.md's substitution table).
package nsl

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// NonceSize is the nonce length in bytes.
const NonceSize = 16

// SessionKey is the key both parties derive from a completed handshake.
type SessionKey [sha256.Size]byte

// PublicKey is an RSA public key.
type PublicKey struct {
	N *big.Int
	E *big.Int
}

// KeyPair is a party's RSA key pair.
type KeyPair struct {
	Pub PublicKey
	d   *big.Int
	crt *crtKey // private-exponent CRT context, nil if unavailable
}

// crtKey holds the Chinese-remainder decomposition of the private
// exponent: two half-size exponentiations plus Garner recombination
// compute c^d mod N about four times faster than the direct form, with
// bit-identical results. Value signing and handshake decryption are the
// dominant replica-level crypto cost, so key generation precomputes this
// once per key.
type crtKey struct {
	p, q, dp, dq, qinv *big.Int
}

// privExp computes c^d mod N, via the CRT context when present.
func (kp *KeyPair) privExp(c *big.Int) *big.Int {
	k := kp.crt
	if k == nil {
		return new(big.Int).Exp(c, kp.d, kp.Pub.N)
	}
	m1 := new(big.Int).Exp(c, k.dp, k.p)
	m2 := new(big.Int).Exp(c, k.dq, k.q)
	h := m1.Sub(m1, m2) // Garner: m = m2 + q·(qinv·(m1 − m2) mod p)
	h.Mul(h, k.qinv)
	h.Mod(h, k.p)
	h.Mul(h, k.q)
	return h.Add(h, m2)
}

// GenerateKeyPair creates an RSA key pair of the given modulus size.
// randSrc nil means crypto/rand.Reader. A non-nil randSrc yields a key
// pair that is a pure function of the stream: seeded streams reproduce
// identical keys across processes (crypto/rand.Prime deliberately
// perturbs its stream consumption, so it cannot be used for this).
func GenerateKeyPair(bits int, randSrc io.Reader) (*KeyPair, error) {
	if bits < 256 {
		return nil, errors.New("nsl: modulus too small")
	}
	prime := func(bits int) (*big.Int, error) {
		if randSrc == nil {
			return rand.Prime(rand.Reader, bits)
		}
		return streamPrime(randSrc, bits)
	}
	one := big.NewInt(1)
	e := big.NewInt(65537)
	for {
		p, err := prime(bits / 2)
		if err != nil {
			return nil, fmt.Errorf("nsl: prime: %w", err)
		}
		q, err := prime(bits - bits/2)
		if err != nil {
			return nil, fmt.Errorf("nsl: prime: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		phi := new(big.Int).Mul(new(big.Int).Sub(p, one), new(big.Int).Sub(q, one))
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			continue
		}
		kp := &KeyPair{Pub: PublicKey{N: n, E: new(big.Int).Set(e)}, d: d}
		if qinv := new(big.Int).ModInverse(q, p); qinv != nil {
			kp.crt = &crtKey{
				p:    p,
				q:    q,
				dp:   new(big.Int).Mod(d, new(big.Int).Sub(p, one)),
				dq:   new(big.Int).Mod(d, new(big.Int).Sub(q, one)),
				qinv: qinv,
			}
		}
		return kp, nil
	}
}

// streamPrime returns a prime of exactly bits bits whose candidates are
// drawn verbatim from r: unlike crypto/rand.Prime it consumes the stream
// deterministically, and ProbablyPrime derives its Miller-Rabin bases from
// the candidate itself, so the result is reproducible for a seeded r.
func streamPrime(r io.Reader, bits int) (*big.Int, error) {
	if bits < 16 {
		return nil, errors.New("nsl: prime size too small")
	}
	buf := make([]byte, (bits+7)/8)
	p := new(big.Int)
	for {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		// Trim to exactly bits bits, force the top bit (exact length) and
		// the low bit (odd).
		buf[0] &= 0xFF >> (uint(len(buf)*8 - bits))
		p.SetBytes(buf)
		p.SetBit(p, bits-1, 1)
		p.SetBit(p, 0, 1)
		if p.ProbablyPrime(20) {
			return new(big.Int).Set(p), nil
		}
	}
}

// encrypt RSA-encrypts plain (must be shorter than the modulus minus the
// pad) with randomized padding 0x02 ‖ r[8] ‖ 0x00 ‖ plain.
func encrypt(pub PublicKey, plain []byte, randSrc io.Reader) ([]byte, error) {
	if randSrc == nil {
		randSrc = rand.Reader
	}
	max := (pub.N.BitLen()+7)/8 - 1
	if len(plain)+10 > max {
		return nil, fmt.Errorf("nsl: plaintext too long (%d bytes for %d-bit key)", len(plain), pub.N.BitLen())
	}
	padded := make([]byte, 10+len(plain))
	padded[0] = 0x02
	if _, err := io.ReadFull(randSrc, padded[1:9]); err != nil {
		return nil, fmt.Errorf("nsl: pad: %w", err)
	}
	padded[9] = 0x00
	copy(padded[10:], plain)
	m := new(big.Int).SetBytes(padded)
	c := new(big.Int).Exp(m, pub.E, pub.N)
	return c.Bytes(), nil
}

// decrypt reverses encrypt.
func (kp *KeyPair) decrypt(cipher []byte) ([]byte, error) {
	c := new(big.Int).SetBytes(cipher)
	if c.Cmp(kp.Pub.N) >= 0 {
		return nil, errors.New("nsl: ciphertext out of range")
	}
	m := kp.privExp(c)
	padded := m.Bytes()
	// Layout: [0x02, r8 (8 bytes), 0x00, plain]. The leading 0x02 survives
	// the big.Int round trip because it is non-zero.
	if len(padded) < 10 || padded[0] != 0x02 || padded[9] != 0x00 {
		return nil, errors.New("nsl: bad padding")
	}
	return padded[10:], nil
}

// Wire messages. Fields are exported for size accounting by the transport.
type (
	// Msg1 is {Na, A}_pkB.
	Msg1 struct {
		To     int64 // B, cleartext routing hint
		Cipher []byte
	}
	// Msg2 is {Na, Nb, B}_pkA.
	Msg2 struct {
		To     int64 // A
		Cipher []byte
	}
	// Msg3 is {Nb}_pkB.
	Msg3 struct {
		To     int64 // B
		Cipher []byte
	}
)

// Directory resolves a party's public key.
type Directory interface {
	PublicKey(id int64) (PublicKey, error)
}

// DirectoryMap is a static Directory.
type DirectoryMap map[int64]PublicKey

// PublicKey implements Directory.
func (d DirectoryMap) PublicKey(id int64) (PublicKey, error) {
	pk, ok := d[id]
	if !ok {
		return PublicKey{}, fmt.Errorf("nsl: unknown party %d", id)
	}
	return pk, nil
}

// Errors reported by handshake processing.
var (
	ErrProtocol  = errors.New("nsl: protocol violation")
	ErrNoSession = errors.New("nsl: no handshake in progress")
)

// Party is one protocol participant. Not safe for concurrent use.
type Party struct {
	id      int64
	kp      *KeyPair
	dir     Directory
	randSrc io.Reader

	// initiator state: peer -> Na
	pendingInit map[int64][]byte
	// responder state: peer -> (Na, Nb)
	pendingResp map[int64]*respState
}

// NewParty creates a protocol participant. randSrc nil means
// crypto/rand.Reader.
func NewParty(id int64, kp *KeyPair, dir Directory, randSrc io.Reader) *Party {
	if randSrc == nil {
		randSrc = rand.Reader
	}
	return &Party{
		id:          id,
		kp:          kp,
		dir:         dir,
		randSrc:     randSrc,
		pendingInit: make(map[int64][]byte),
		pendingResp: make(map[int64]*respState),
	}
}

// ID returns the party identifier.
func (p *Party) ID() int64 { return p.id }

func (p *Party) nonce() ([]byte, error) {
	n := make([]byte, NonceSize)
	if _, err := io.ReadFull(p.randSrc, n); err != nil {
		return nil, fmt.Errorf("nsl: nonce: %w", err)
	}
	return n, nil
}

func sessionKey(na, nb []byte) SessionKey {
	h := sha256.New()
	_, _ = h.Write(na)
	_, _ = h.Write(nb)
	var k SessionKey
	copy(k[:], h.Sum(nil))
	return k
}

func encodeID(id int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	return b[:]
}

// Initiate starts a handshake with peer and returns M1 to transmit.
func (p *Party) Initiate(peer int64) (Msg1, error) {
	pk, err := p.dir.PublicKey(peer)
	if err != nil {
		return Msg1{}, err
	}
	na, err := p.nonce()
	if err != nil {
		return Msg1{}, err
	}
	plain := append(append([]byte(nil), na...), encodeID(p.id)...)
	c, err := encrypt(pk, plain, p.randSrc)
	if err != nil {
		return Msg1{}, err
	}
	p.pendingInit[peer] = na
	return Msg1{To: peer, Cipher: c}, nil
}

// OnMsg1 processes M1 as responder and returns M2.
func (p *Party) OnMsg1(m Msg1) (Msg2, error) {
	plain, err := p.kp.decrypt(m.Cipher)
	if err != nil {
		return Msg2{}, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	if len(plain) != NonceSize+8 {
		return Msg2{}, fmt.Errorf("%w: bad M1 length", ErrProtocol)
	}
	na := plain[:NonceSize]
	peer := int64(binary.BigEndian.Uint64(plain[NonceSize:]))
	pk, err := p.dir.PublicKey(peer)
	if err != nil {
		return Msg2{}, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	nb, err := p.nonce()
	if err != nil {
		return Msg2{}, err
	}
	plain2 := append(append(append([]byte(nil), na...), nb...), encodeID(p.id)...)
	c, err := encrypt(pk, plain2, p.randSrc)
	if err != nil {
		return Msg2{}, err
	}
	p.pendingResp[peer] = &respState{na: na, nb: nb}
	return Msg2{To: peer, Cipher: c}, nil
}

// OnMsg2 processes M2 as initiator; on success it returns M3 and the
// session key. from is the claimed sender, checked against the identity
// inside the ciphertext (Lowe's fix — without it the classic
// man-in-the-middle attack works).
func (p *Party) OnMsg2(from int64, m Msg2) (Msg3, SessionKey, error) {
	na, ok := p.pendingInit[from]
	if !ok {
		return Msg3{}, SessionKey{}, fmt.Errorf("%w: peer %d", ErrNoSession, from)
	}
	plain, err := p.kp.decrypt(m.Cipher)
	if err != nil {
		return Msg3{}, SessionKey{}, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	if len(plain) != 2*NonceSize+8 {
		return Msg3{}, SessionKey{}, fmt.Errorf("%w: bad M2 length", ErrProtocol)
	}
	gotNa := plain[:NonceSize]
	nb := plain[NonceSize : 2*NonceSize]
	claimed := int64(binary.BigEndian.Uint64(plain[2*NonceSize:]))
	if !bytes.Equal(gotNa, na) {
		return Msg3{}, SessionKey{}, fmt.Errorf("%w: nonce Na mismatch", ErrProtocol)
	}
	if claimed != from {
		return Msg3{}, SessionKey{}, fmt.Errorf("%w: responder identity %d != %d (Lowe check)", ErrProtocol, claimed, from)
	}
	pk, err := p.dir.PublicKey(from)
	if err != nil {
		return Msg3{}, SessionKey{}, err
	}
	c, err := encrypt(pk, nb, p.randSrc)
	if err != nil {
		return Msg3{}, SessionKey{}, err
	}
	delete(p.pendingInit, from)
	return Msg3{To: from, Cipher: c}, sessionKey(na, nb), nil
}

// OnMsg3 processes M3 as responder; on success it returns the session key.
func (p *Party) OnMsg3(from int64, m Msg3) (SessionKey, error) {
	st, ok := p.pendingResp[from]
	if !ok {
		return SessionKey{}, fmt.Errorf("%w: peer %d", ErrNoSession, from)
	}
	plain, err := p.kp.decrypt(m.Cipher)
	if err != nil {
		return SessionKey{}, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	if !bytes.Equal(plain, st.nb) {
		return SessionKey{}, fmt.Errorf("%w: nonce Nb mismatch", ErrProtocol)
	}
	delete(p.pendingResp, from)
	return sessionKey(st.na, st.nb), nil
}

// respState is the responder's per-peer handshake memory.
type respState struct {
	na, nb []byte
}
