package shamir

import (
	"crypto/rand"
	"errors"
	"math/big"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

// prime257 is a small prime for fast tests.
var prime257 = big.NewInt(257)

// bigPrime is a 127-bit Mersenne prime.
var bigPrime = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 127), big.NewInt(1))

func TestSplitCombineRoundTrip(t *testing.T) {
	tests := []struct {
		k, n int
	}{
		{0, 1}, {1, 3}, {2, 5}, {3, 10}, {9, 10},
	}
	for _, tt := range tests {
		secret := big.NewInt(12345)
		shares, err := Split(secret, tt.k, tt.n, bigPrime, rand.Reader)
		if err != nil {
			t.Fatalf("Split(k=%d, n=%d): %v", tt.k, tt.n, err)
		}
		if len(shares) != tt.n {
			t.Fatalf("got %d shares, want %d", len(shares), tt.n)
		}
		got, err := Combine(shares, tt.k, bigPrime)
		if err != nil {
			t.Fatalf("Combine: %v", err)
		}
		if got.Cmp(secret) != 0 {
			t.Fatalf("k=%d n=%d: reconstructed %v, want %v", tt.k, tt.n, got, secret)
		}
	}
}

func TestAnySubsetOfThresholdSizeWorks(t *testing.T) {
	secret := big.NewInt(987654321)
	const k, n = 2, 6
	shares, err := Split(secret, k, n, bigPrime, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Try many random (k+1)-subsets.
	r := mrand.New(mrand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		perm := r.Perm(n)
		subset := make([]Share, k+1)
		for i := 0; i <= k; i++ {
			subset[i] = shares[perm[i]]
		}
		got, err := Combine(subset, k, bigPrime)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(secret) != 0 {
			t.Fatalf("subset %v reconstructed %v, want %v", perm[:k+1], got, secret)
		}
	}
}

func TestTooFewSharesFails(t *testing.T) {
	shares, err := Split(big.NewInt(42), 3, 5, bigPrime, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Combine(shares[:3], 3, bigPrime); !errors.Is(err, ErrTooFewShares) {
		t.Fatalf("Combine with k shares err = %v, want ErrTooFewShares", err)
	}
	// Duplicated shares do not count as distinct.
	dup := []Share{shares[0], shares[0], shares[0], shares[0]}
	if _, err := Combine(dup, 3, bigPrime); !errors.Is(err, ErrTooFewShares) {
		t.Fatalf("Combine with duplicates err = %v, want ErrTooFewShares", err)
	}
}

func TestKSharesRevealNothing(t *testing.T) {
	// With k shares the secret is information-theoretically hidden: for a
	// degree-k polynomial, any k points are consistent with EVERY possible
	// secret. We verify a weaker, testable corollary: combining k shares
	// plus a forged (k+1)-th share yields a wrong secret almost surely.
	secret := big.NewInt(777)
	const k, n = 2, 5
	shares, err := Split(secret, k, n, bigPrime, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	forged := []Share{shares[0], shares[1], {X: 5, Y: big.NewInt(123456)}}
	got, err := Combine(forged, k, bigPrime)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(secret) == 0 {
		t.Fatal("forged share reconstructed the true secret (astronomically unlikely)")
	}
}

func TestInvalidParams(t *testing.T) {
	cases := []struct{ k, n int }{
		{-1, 3}, {3, 3}, {5, 2}, {0, 0},
	}
	for _, c := range cases {
		if _, err := Split(big.NewInt(1), c.k, c.n, prime257, rand.Reader); !errors.Is(err, ErrThreshold) {
			t.Errorf("Split(k=%d, n=%d) err = %v, want ErrThreshold", c.k, c.n, err)
		}
	}
	if _, err := Split(big.NewInt(1), 1, 3, big.NewInt(0), rand.Reader); err == nil {
		t.Error("Split with zero modulus succeeded")
	}
}

func TestSecretReducedModulo(t *testing.T) {
	// Secrets >= mod are shared as secret mod mod.
	secret := big.NewInt(300) // > 257
	shares, err := Split(secret, 1, 3, prime257, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Combine(shares, 1, prime257)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Mod(secret, prime257)
	if got.Cmp(want) != 0 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// Property: round trip holds for arbitrary secrets and thresholds.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(secretSeed int64, kRaw, extra uint8) bool {
		k := int(kRaw % 5)
		n := k + 1 + int(extra%5)
		secret := new(big.Int).Mod(big.NewInt(secretSeed), bigPrime)
		if secret.Sign() < 0 {
			secret.Add(secret, bigPrime)
		}
		shares, err := Split(secret, k, n, bigPrime, rand.Reader)
		if err != nil {
			return false
		}
		got, err := Combine(shares, k, bigPrime)
		if err != nil {
			return false
		}
		return got.Cmp(secret) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShareIndicesStartAtOne(t *testing.T) {
	shares, err := Split(big.NewInt(5), 1, 4, prime257, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range shares {
		if s.X != i+1 {
			t.Fatalf("share %d has X=%d, want %d", i, s.X, i+1)
		}
	}
}
