// Package shamir implements Shamir secret sharing over the integers modulo
// a caller-supplied modulus. It is the substrate beneath the threshold
// signature scheme of §2 of the paper: the dealer splits each
// dependability-level signing key K_L into (L+1)-threshold shares, so L+1
// nodes must cooperate to sign.
package shamir

import (
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Share is one point (X, Y) on the dealer's secret polynomial. X is the
// share index, always >= 1.
type Share struct {
	X int
	Y *big.Int
}

var (
	// ErrThreshold is returned when parameters are inconsistent (need
	// 1 <= k+1 <= n).
	ErrThreshold = errors.New("shamir: invalid threshold parameters")
	// ErrTooFewShares is returned by Combine when fewer than k+1 distinct
	// shares are supplied.
	ErrTooFewShares = errors.New("shamir: not enough distinct shares")
)

// Split shares secret among n parties such that any k+1 of them can
// reconstruct it and any k learn nothing (information-theoretically, when
// mod is prime; computationally adequate for the composite moduli used by
// threshold RSA, where the polynomial coefficients are drawn uniformly).
// Randomness comes from rand.
func Split(secret *big.Int, k, n int, mod *big.Int, rand io.Reader) ([]Share, error) {
	if k < 0 || n < 1 || k+1 > n {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrThreshold, k, n)
	}
	if mod.Sign() <= 0 {
		return nil, errors.New("shamir: modulus must be positive")
	}
	// coeffs[0] = secret; coeffs[1..k] random.
	coeffs := make([]*big.Int, k+1)
	coeffs[0] = new(big.Int).Mod(secret, mod)
	for i := 1; i <= k; i++ {
		c, err := randInt(rand, mod)
		if err != nil {
			return nil, fmt.Errorf("shamir: draw coefficient: %w", err)
		}
		coeffs[i] = c
	}
	shares := make([]Share, n)
	for x := 1; x <= n; x++ {
		shares[x-1] = Share{X: x, Y: eval(coeffs, x, mod)}
	}
	return shares, nil
}

// eval computes the polynomial at x via Horner's rule, mod mod.
func eval(coeffs []*big.Int, x int, mod *big.Int) *big.Int {
	bx := big.NewInt(int64(x))
	acc := new(big.Int)
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc.Mul(acc, bx)
		acc.Add(acc, coeffs[i])
		acc.Mod(acc, mod)
	}
	return acc
}

// Combine reconstructs the secret from at least k+1 distinct shares using
// Lagrange interpolation at zero. The modulus must be prime for Combine
// (interpolation divides); threshold RSA avoids this requirement with the
// Δ = n! integer-coefficient trick and does not call Combine.
func Combine(shares []Share, k int, mod *big.Int) (*big.Int, error) {
	distinct := dedupe(shares)
	if len(distinct) < k+1 {
		return nil, fmt.Errorf("%w: have %d distinct, need %d", ErrTooFewShares, len(distinct), k+1)
	}
	use := distinct[:k+1]
	secret := new(big.Int)
	for i, si := range use {
		num := big.NewInt(1)
		den := big.NewInt(1)
		for j, sj := range use {
			if i == j {
				continue
			}
			num.Mul(num, big.NewInt(int64(-sj.X)))
			num.Mod(num, mod)
			den.Mul(den, big.NewInt(int64(si.X-sj.X)))
			den.Mod(den, mod)
		}
		inv := new(big.Int).ModInverse(den, mod)
		if inv == nil {
			return nil, fmt.Errorf("shamir: modulus not invertible at share pair (is it prime?)")
		}
		term := new(big.Int).Mul(si.Y, num)
		term.Mul(term, inv)
		secret.Add(secret, term)
		secret.Mod(secret, mod)
	}
	return secret, nil
}

// dedupe returns the shares with distinct X, keeping first occurrences.
func dedupe(shares []Share) []Share {
	seen := make(map[int]bool, len(shares))
	out := make([]Share, 0, len(shares))
	for _, s := range shares {
		if s.Y == nil || seen[s.X] {
			continue
		}
		seen[s.X] = true
		out = append(out, s)
	}
	return out
}

// randInt draws a uniform integer in [0, mod).
func randInt(rand io.Reader, mod *big.Int) (*big.Int, error) {
	bitLen := mod.BitLen()
	bytes := (bitLen + 7) / 8
	buf := make([]byte, bytes)
	for {
		if _, err := io.ReadFull(rand, buf); err != nil {
			return nil, err
		}
		// Mask excess high bits to reduce rejection rate.
		if excess := bytes*8 - bitLen; excess > 0 {
			buf[0] &= 0xFF >> excess
		}
		v := new(big.Int).SetBytes(buf)
		if v.Cmp(mod) < 0 {
			return v, nil
		}
	}
}
