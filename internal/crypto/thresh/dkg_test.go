package thresh

import (
	"bytes"
	"reflect"
	"testing"
)

// keygens returns both dealers in their KeyGenerator role.
func keygens() map[string]KeyGenerator {
	return map[string]KeyGenerator{
		"sim": NewSimDealer([]byte("dkg-test"), 128),
		"rsa": &RSADealer{Bits: 512},
	}
}

func signWith(t *testing.T, gk GroupKey, signers []Signer, idx []int, msg []byte) Signature {
	t.Helper()
	var partials []Partial
	for _, i := range idx {
		s := signers[i-1]
		if s == nil {
			t.Fatalf("participant %d has no signer", i)
		}
		p, err := s.PartialSign(msg)
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, p)
	}
	sig, err := gk.Combine(msg, partials)
	if err != nil {
		t.Fatalf("combine: %v", err)
	}
	if err := gk.Verify(msg, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return sig
}

func TestDKGPrimeIsPrime(t *testing.T) {
	if !dkgPrime.ProbablyPrime(64) {
		t.Fatal("dkgPrime is not prime")
	}
	if dkgPrime.BitLen() != 256 {
		t.Fatalf("dkgPrime is %d bits, want 256", dkgPrime.BitLen())
	}
}

// TestDKGHappyPath pins the acceptance criterion: a DKG-established key
// signs, combines, and verifies through exactly the same GroupKey path as
// a dealer-dealt key, with every participant qualified.
func TestDKGHappyPath(t *testing.T) {
	for name, g := range keygens() {
		t.Run(name, func(t *testing.T) {
			res, err := g.DKG(DKGConfig{K: 2, N: 5})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Blamed) != 0 || len(res.Silent) != 0 || res.Complaints != 0 {
				t.Fatalf("honest run produced blamed=%v silent=%v complaints=%d",
					res.Blamed, res.Silent, res.Complaints)
			}
			for i, s := range res.Signers {
				if s == nil {
					t.Fatalf("signer %d missing", i+1)
				}
				if s.Index() != i+1 {
					t.Fatalf("signer %d has index %d", i+1, s.Index())
				}
			}
			signWith(t, res.Key, res.Signers, []int{1, 3, 5}, []byte("dkg happy"))
			ep, ok := res.Key.(Epoched)
			if !ok {
				t.Fatal("DKG key does not implement Epoched")
			}
			if ep.Epoch() != 0 {
				t.Fatalf("fresh DKG key at epoch %d", ep.Epoch())
			}
		})
	}
}

// TestDKGStubbornCheaterBlamed: an opening that contradicts the
// commitment is proof, so the cheater lands in Blamed without a signer.
func TestDKGStubbornCheaterBlamed(t *testing.T) {
	for name, g := range keygens() {
		t.Run(name, func(t *testing.T) {
			res, err := g.DKG(DKGConfig{K: 1, N: 5, Faults: map[int]DKGFault{2: DKGCheatStubborn}})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Blamed, []int{2}) {
				t.Fatalf("blamed = %v, want [2]", res.Blamed)
			}
			if res.Signers[1] != nil {
				t.Fatal("blamed participant received a signer")
			}
			if res.Complaints == 0 {
				t.Fatal("cheating produced no complaints")
			}
			signWith(t, res.Key, res.Signers, []int{1, 4}, []byte("post blame"))
		})
	}
}

// TestDKGCheatThenRevealSurvives exercises the recovery branch: the
// complaint forces a public opening that matches the commitment, the
// receiver adopts it, and the dealer stays qualified.
func TestDKGCheatThenRevealSurvives(t *testing.T) {
	for name, g := range keygens() {
		t.Run(name, func(t *testing.T) {
			res, err := g.DKG(DKGConfig{K: 1, N: 4, Faults: map[int]DKGFault{3: DKGCheatThenReveal}})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Blamed) != 0 {
				t.Fatalf("recovering dealer was blamed: %v", res.Blamed)
			}
			if res.Complaints == 0 {
				t.Fatal("bad sub-share produced no complaint")
			}
			// The survivor's share must be usable.
			signWith(t, res.Key, res.Signers, []int{1, 3}, []byte("recovered"))
		})
	}
}

// TestDKGSilentExcluded: a participant that never deals is dropped
// without proof of malice.
func TestDKGSilentExcluded(t *testing.T) {
	for name, g := range keygens() {
		t.Run(name, func(t *testing.T) {
			res, err := g.DKG(DKGConfig{K: 1, N: 4, Faults: map[int]DKGFault{4: DKGSilent}})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Silent, []int{4}) {
				t.Fatalf("silent = %v, want [4]", res.Silent)
			}
			if len(res.Blamed) != 0 {
				t.Fatalf("silence was blamed with proof: %v", res.Blamed)
			}
			if res.Signers[3] != nil {
				t.Fatal("silent participant received a signer")
			}
			signWith(t, res.Key, res.Signers, []int{1, 2}, []byte("without 4"))
		})
	}
}

// TestDKGTooFewQualified: when cheating leaves fewer than k+1 qualified
// participants, the generation aborts rather than dealing an unusable key.
func TestDKGTooFewQualified(t *testing.T) {
	for name, g := range keygens() {
		t.Run(name, func(t *testing.T) {
			_, err := g.DKG(DKGConfig{K: 2, N: 4, Faults: map[int]DKGFault{
				1: DKGCheatStubborn,
				2: DKGCheatStubborn,
			}})
			if err == nil {
				t.Fatal("DKG succeeded with only 2 qualified participants for threshold 2")
			}
		})
	}
}

func TestDKGInvalidParams(t *testing.T) {
	for name, g := range keygens() {
		t.Run(name, func(t *testing.T) {
			if _, err := g.DKG(DKGConfig{K: 3, N: 3}); err == nil {
				t.Fatal("accepted k+1 > n")
			}
			if _, err := g.DKG(DKGConfig{K: -1, N: 3}); err == nil {
				t.Fatal("accepted negative k")
			}
		})
	}
}

// TestDKGKeySupportsRefreshAndReshare: the DKG records the same dealer
// secret state as Deal, so the full key lifecycle works on a dealerless
// key.
func TestDKGKeySupportsRefreshAndReshare(t *testing.T) {
	d := &RSADealer{Bits: 512}
	res, err := d.DKG(DKGConfig{K: 1, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("lifecycle")
	sig := signWith(t, res.Key, res.Signers, []int{1, 2}, msg)
	fresh, err := d.Refresh(res.Key, res.Signers)
	if err != nil {
		t.Fatalf("refresh of DKG key: %v", err)
	}
	signWith(t, res.Key, fresh, []int{2, 4}, msg)
	if _, err := d.Reshare(res.Key, 2, 5); err != nil {
		t.Fatalf("reshare of DKG key: %v", err)
	}
	if err := res.Key.Verify(msg, sig); err != nil {
		t.Fatalf("pre-reshare signature invalidated: %v", err)
	}
}

// TestDKGDeterministicSim: the sim scheme's DKG is a pure function of the
// dealer seed, which the scenario layer's determinism contract relies on.
func TestDKGDeterministicSim(t *testing.T) {
	mk := func() (*DKGResult, error) {
		return NewSimDealer([]byte("det"), 128).DKG(DKGConfig{K: 1, N: 4, Faults: map[int]DKGFault{2: DKGCheatStubborn}})
	}
	a, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("same partials")
	pa, _ := a.Signers[0].PartialSign(msg)
	pb, _ := b.Signers[0].PartialSign(msg)
	if !bytes.Equal(pa.Data, pb.Data) {
		t.Fatal("same-seed DKGs derived different shares")
	}
	if !reflect.DeepEqual(a.Blamed, b.Blamed) || a.Complaints != b.Complaints {
		t.Fatal("same-seed DKGs produced different transcripts")
	}
}
