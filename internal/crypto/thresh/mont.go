package thresh

import (
	"math/big"
	"math/bits"
)

// montCtx is a per-key Montgomery-arithmetic context for the combination
// and verification hot path. math/big's Exp rebuilds its Montgomery state
// (R² mod N and a 16-entry power table) on every call, which dominates the
// cost of the many small-exponent exponentiations in Shoup's combination
// step. Deal time pays that setup once; Combine/Verify then run interleaved
// square-and-multiply chains whose per-step cost is one CIOS multiply.
//
// All values handled by the context are fixed-width little-endian limb
// slices of length k (the modulus width); every value is kept reduced
// below N, so limb equality is value equality. The context itself is
// immutable after newMontCtx, so concurrent Combine/Verify calls share it.
type montCtx struct {
	mod   []big.Word // modulus N, length k
	n0inv big.Word   // -N⁻¹ mod 2^W
	r2    []big.Word // R² mod N, R = 2^(k·W)
	one   []big.Word // R mod N — the Montgomery representation of 1
	lit1  []big.Word // literal 1, the fromMont multiplier
	k     int
	nInt  *big.Int // the modulus as big.Int (for conversions)
}

// newMontCtx builds the context for an odd modulus n.
func newMontCtx(n *big.Int) *montCtx {
	words := n.Bits()
	k := len(words)
	c := &montCtx{
		mod:  append([]big.Word(nil), words...),
		k:    k,
		nInt: new(big.Int).Set(n),
	}
	// -N⁻¹ mod 2^W by Hensel lifting: the inverse of an odd number doubles
	// its correct low bits each iteration (3 bits to start: n0² ≡ 1 mod 8).
	n0 := uint(words[0])
	inv := n0
	for i := 0; i < 6; i++ {
		inv *= 2 - n0*inv
	}
	c.n0inv = big.Word(-inv)
	w := uint(bits.UintSize)
	r := new(big.Int).Lsh(big.NewInt(1), uint(k)*w)
	r.Mod(r, n)
	c.one = c.limbs(r)
	rr := new(big.Int).Lsh(big.NewInt(1), 2*uint(k)*w)
	rr.Mod(rr, n)
	c.r2 = c.limbs(rr)
	c.lit1 = make([]big.Word, k)
	c.lit1[0] = 1
	return c
}

// limbs converts v (already reduced mod N) to a fixed-width limb slice.
func (c *montCtx) limbs(v *big.Int) []big.Word {
	out := make([]big.Word, c.k)
	copy(out, v.Bits())
	return out
}

// toInt converts a limb slice back into dst. The limbs are copied — dst
// must never alias the scratch arena, because pooled scratch is zeroed and
// reused by later calls.
func (c *montCtx) toInt(dst *big.Int, x []big.Word) *big.Int {
	n := len(x)
	for n > 0 && x[n-1] == 0 {
		n--
	}
	buf := dst.Bits()
	if cap(buf) < n {
		buf = make([]big.Word, n)
	}
	buf = buf[:n]
	copy(buf, x[:n])
	return dst.SetBits(buf)
}

// mul computes z = x·y·R⁻¹ mod N (CIOS Montgomery multiplication with the
// multiply-accumulate and reduction passes fused into one sweep over the
// accumulator: per outer limb, t[j] is read once and t[j-1] written once,
// with two independent carry chains). Inputs must be reduced below N; the
// result is too. z must not alias x or y; t is scratch of length ≥ k+2.
//
// Carry-chain bound: each chain tracks the high word of a quantity of the
// form a·b + c + d with a, b, c, d < 2^W, which is at most 2^2W − 1, so
// the incremental carry adds cannot overflow.
func (c *montCtx) mul(z, x, y, t []big.Word) {
	k := c.k
	t = t[:k+1]
	for i := range t {
		t[i] = 0
	}
	n0 := uint(c.n0inv)
	for i := 0; i < k; i++ {
		xi := uint(x[i])
		// j = 0 peeled: the updated low limb determines m; after adding
		// m·N the low limb is zero by construction and is shifted out.
		hi, lo := bits.Mul(xi, uint(y[0]))
		lo, cc := bits.Add(lo, uint(t[0]), 0)
		c1 := hi + cc
		m := lo * n0
		hi2, lo2 := bits.Mul(m, uint(c.mod[0]))
		_, cc = bits.Add(lo2, lo, 0)
		c2 := hi2 + cc
		for j := 1; j < k; j++ {
			hi, lo = bits.Mul(xi, uint(y[j]))
			lo, cc = bits.Add(lo, uint(t[j]), 0)
			hi += cc
			lo, cc = bits.Add(lo, c1, 0)
			c1 = hi + cc
			hi2, lo2 = bits.Mul(m, uint(c.mod[j]))
			lo2, cc = bits.Add(lo2, lo, 0)
			hi2 += cc
			lo2, cc = bits.Add(lo2, c2, 0)
			c2 = hi2 + cc
			t[j-1] = big.Word(lo2)
		}
		s, cc1 := bits.Add(c1, c2, 0)
		s, cc2 := bits.Add(s, uint(t[k]), 0)
		t[k-1] = big.Word(s)
		t[k] = big.Word(cc1 + cc2)
	}
	copy(z, t[:k])
	if t[k] != 0 || !limbLess(z, c.mod) {
		limbSub(z, c.mod)
	}
}

// limbLess reports x < y for equal-length limb slices.
func limbLess(x, y []big.Word) bool {
	for i := len(x) - 1; i >= 0; i-- {
		if x[i] != y[i] {
			return x[i] < y[i]
		}
	}
	return false
}

// limbSub computes x -= y in place.
func limbSub(x, y []big.Word) {
	var borrow uint
	for i := range x {
		d, b := bits.Sub(uint(x[i]), uint(y[i]), borrow)
		x[i] = big.Word(d)
		borrow = b
	}
}

// limbEq reports x == y for equal-length limb slices.
func limbEq(x, y []big.Word) bool {
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// montScratch is the working set of one combination/verification: fixed-
// width limb buffers recycled via the combine scratch pool.
type montScratch struct {
	t        []big.Word // CIOS accumulator, k+2
	a, b     []big.Word // expChain ping-pong buffers
	baseMem  []big.Word // arena backing the alloc'd operand slots
	baseNext int
}

func (ms *montScratch) reset(k int) {
	if cap(ms.t) < k+2 {
		ms.t = make([]big.Word, k+2)
	}
	ms.t = ms.t[:k+2]
	if cap(ms.a) < k {
		ms.a = make([]big.Word, k)
	}
	if cap(ms.b) < k {
		ms.b = make([]big.Word, k)
	}
	ms.a, ms.b = ms.a[:k], ms.b[:k]
	ms.baseNext = 0
}

// alloc hands out one zeroed fixed-width slot from the scratch arena,
// growing it on demand. Growth leaves previously returned slots valid —
// they keep referencing the old backing array.
func (ms *montScratch) alloc(k int) []big.Word {
	if ms.baseNext+k > len(ms.baseMem) {
		n := 16 * k
		if n < 2*len(ms.baseMem) {
			n = 2 * len(ms.baseMem)
		}
		ms.baseMem = make([]big.Word, n)
		ms.baseNext = 0
	}
	buf := ms.baseMem[ms.baseNext : ms.baseNext+k]
	ms.baseNext += k
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// toMont converts v (reduced below N) into Montgomery form in a fresh
// arena slot.
func (c *montCtx) toMont(ms *montScratch, v *big.Int) []big.Word {
	out := ms.alloc(c.k)
	tmp := ms.alloc(c.k)
	copy(tmp, v.Bits())
	c.mul(out, tmp, c.r2, ms.t)
	return out
}

// fromMont converts x out of Montgomery form into dst (which aliases arena
// storage afterwards; see toInt).
func (c *montCtx) fromMont(ms *montScratch, dst *big.Int, x []big.Word) *big.Int {
	tmp := ms.alloc(c.k)
	c.mul(tmp, x, c.lit1, ms.t)
	return c.toInt(dst, tmp)
}

// expChain computes dst = Π bases[i]^exps[i] (Montgomery domain, exps
// non-negative) with one interleaved square-and-multiply chain: one
// squaring per bit position shared by every base, one multiply per set
// exponent bit. While the accumulator is still 1, squarings are skipped
// and the first multiplication becomes a copy, so the leading-bit work of
// every chain is free. dst must be an arena slot distinct from all bases.
func (c *montCtx) expChain(ms *montScratch, dst []big.Word, bases [][]big.Word, exps []*big.Int) {
	maxBits := 0
	for _, e := range exps {
		if e.BitLen() > maxBits {
			maxBits = e.BitLen()
		}
	}
	acc, spare := ms.a[:c.k], ms.b[:c.k]
	accOne := true
	for bit := maxBits - 1; bit >= 0; bit-- {
		if !accOne {
			c.mul(spare, acc, acc, ms.t)
			acc, spare = spare, acc
		}
		for i, e := range exps {
			if e.Bit(bit) == 1 {
				if accOne {
					copy(acc, bases[i])
					accOne = false
					continue
				}
				c.mul(spare, acc, bases[i], ms.t)
				acc, spare = spare, acc
			}
		}
	}
	if accOne {
		copy(acc, c.one)
	}
	copy(dst, acc)
	ms.a, ms.b = acc, spare
}
