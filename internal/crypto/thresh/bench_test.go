package thresh

import (
	"fmt"
	"testing"
)

// benchDeals caches dealt keys across benchmarks: 1024-bit key generation
// takes seconds and is irrelevant to the measured hot path. Benchmarks in
// one binary run sequentially, so a plain map is fine.
var benchDeals = map[string]struct {
	gk      GroupKey
	signers []Signer
}{}

func benchDeal(b *testing.B, bits, k, n int) (GroupKey, []Signer) {
	b.Helper()
	key := fmt.Sprintf("%d/%d/%d", bits, k, n)
	if d, ok := benchDeals[key]; ok {
		return d.gk, d.signers
	}
	gk, signers, err := (&RSADealer{Bits: bits}).Deal(k, n)
	if err != nil {
		b.Fatalf("deal: %v", err)
	}
	benchDeals[key] = struct {
		gk      GroupKey
		signers []Signer
	}{gk, signers}
	return gk, signers
}

// benchRounds is the number of distinct pre-generated messages the
// benchmarks cycle through. Messages vary per round in a real vote while
// the co-signer set recurs, so cycling keeps the hash/exponentiation
// inputs honest without letting per-round setup leak into the timing.
const benchRounds = 16

func benchMessages() [][]byte {
	msgs := make([][]byte, benchRounds)
	for r := range msgs {
		msgs[r] = []byte(fmt.Sprintf("thresh-bench-msg-%d", r))
	}
	return msgs
}

// BenchmarkPartialSign measures one share's x_i = H(m)^(2Δ·s_i) mod N on
// the paper's ad hoc parameters (1024-bit modulus, L=2 → threshold 2 of 5).
func BenchmarkPartialSign(b *testing.B) {
	_, signers := benchDeal(b, 1024, 2, 5)
	msgs := benchMessages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := signers[0].PartialSign(msgs[i%benchRounds]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCombine measures Shoup combination for a recurring co-signer
// set {1,2,3} — the steady-state shape of a vote round, where the same
// k+1 neighbours co-sign successive messages.
func BenchmarkCombine(b *testing.B) {
	gk, signers := benchDeal(b, 1024, 2, 5)
	msgs := benchMessages()
	parts := make([][]Partial, benchRounds)
	for r := range msgs {
		for _, s := range signers[:gk.Threshold()+1] {
			p, err := s.PartialSign(msgs[r])
			if err != nil {
				b.Fatal(err)
			}
			parts[r] = append(parts[r], p)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gk.Combine(msgs[i%benchRounds], parts[i%benchRounds]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThreshVerify measures plain RSA verification of a combined
// signature — what every remote recipient of an agreed message performs.
func BenchmarkThreshVerify(b *testing.B) {
	gk, signers := benchDeal(b, 1024, 2, 5)
	msgs := benchMessages()
	sigs := make([]Signature, benchRounds)
	for r := range msgs {
		var parts []Partial
		for _, s := range signers[:gk.Threshold()+1] {
			p, err := s.PartialSign(msgs[r])
			if err != nil {
				b.Fatal(err)
			}
			parts = append(parts, p)
		}
		sig, err := gk.Combine(msgs[r], parts)
		if err != nil {
			b.Fatal(err)
		}
		sigs[r] = sig
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := gk.Verify(msgs[i%benchRounds], sigs[i%benchRounds]); err != nil {
			b.Fatal(err)
		}
	}
}
