package thresh

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
)

// randomOddModulus returns an odd modulus of roughly the given bit size
// built from two primes, matching how dealt keys look.
func randomOddModulus(t *testing.T, bits int) *big.Int {
	t.Helper()
	p, err := rand.Prime(rand.Reader, bits/2)
	if err != nil {
		t.Fatal(err)
	}
	q, err := rand.Prime(rand.Reader, bits-bits/2)
	if err != nil {
		t.Fatal(err)
	}
	return new(big.Int).Mul(p, q)
}

// TestMontMulMatchesBigInt cross-checks CIOS multiplication against
// math/big on random reduced operands across modulus sizes.
func TestMontMulMatchesBigInt(t *testing.T) {
	rng := mrand.New(mrand.NewSource(41))
	for _, bits := range []int{128, 512, 1024, 1030} {
		n := randomOddModulus(t, bits)
		c := newMontCtx(n)
		ms := &montScratch{}
		ms.reset(c.k)
		for trial := 0; trial < 50; trial++ {
			x := new(big.Int).Rand(rng, n)
			y := new(big.Int).Rand(rng, n)
			ms.baseNext = 0
			xm := c.toMont(ms, x)
			ym := c.toMont(ms, y)
			zm := ms.alloc(c.k)
			c.mul(zm, xm, ym, ms.t)
			got := c.fromMont(ms, new(big.Int), zm)
			want := new(big.Int).Mul(x, y)
			want.Mod(want, n)
			if got.Cmp(want) != 0 {
				t.Fatalf("bits=%d trial=%d: mont mul mismatch\n got %v\nwant %v", bits, trial, got, want)
			}
		}
	}
}

// TestMontExpChainMatchesBigInt cross-checks the interleaved multi-base
// chain against the product of big.Int.Exp calls, including empty chains,
// zero exponents, and mixed exponent widths.
func TestMontExpChainMatchesBigInt(t *testing.T) {
	rng := mrand.New(mrand.NewSource(42))
	for _, bits := range []int{128, 512, 1024} {
		n := randomOddModulus(t, bits)
		c := newMontCtx(n)
		ms := &montScratch{}
		ms.reset(c.k)
		for trial := 0; trial < 30; trial++ {
			nbases := trial % 5 // 0..4 bases
			bases := make([][]big.Word, 0, nbases)
			exps := make([]*big.Int, 0, nbases)
			want := big.NewInt(1)
			ms.baseNext = 0
			for i := 0; i < nbases; i++ {
				base := new(big.Int).Rand(rng, n)
				var exp *big.Int
				switch i % 3 {
				case 0:
					exp = new(big.Int).Rand(rng, n) // wide exponent
				case 1:
					exp = big.NewInt(int64(rng.Intn(100))) // narrow, possibly 0
				default:
					exp = new(big.Int).Lsh(big.NewInt(1), uint(rng.Intn(64))) // single bit
				}
				bases = append(bases, c.toMont(ms, base))
				exps = append(exps, exp)
				want.Mul(want, new(big.Int).Exp(base, exp, n))
				want.Mod(want, n)
			}
			dst := ms.alloc(c.k)
			c.expChain(ms, dst, bases, exps)
			got := c.fromMont(ms, new(big.Int), dst)
			if got.Cmp(want) != 0 {
				t.Fatalf("bits=%d trial=%d nbases=%d: expChain mismatch\n got %v\nwant %v", bits, trial, nbases, got, want)
			}
		}
	}
}
