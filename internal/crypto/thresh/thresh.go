// Package thresh implements the threshold signatures of §2–§3 of the
// paper. A trusted dealer associates a signing key K_L with every
// dependability level L and hands each node an (L+1)-threshold share, so a
// valid signature under K_L proves that L+1 nodes cooperated.
//
// Two interchangeable schemes are provided:
//
//   - RSAScheme: a Shoup-style threshold RSA signature (practical threshold
//     signatures, EUROCRYPT 2000) built on math/big: partial signatures
//     x_i = H(m)^(2Δ·s_i) mod N with Δ = n!, combined with integer Lagrange
//     coefficients and finished with the extended-Euclid step, verified as
//     ordinary RSA. This is the faithful implementation. (Deviation from
//     Shoup: we omit the zero-knowledge proofs of partial-signature
//     correctness — a bad partial is detected because the combined
//     signature fails verification.)
//
//   - SimScheme: a keyed-MAC stand-in with the same interface and the same
//     wire sizes, used by default in the large parameter sweeps so that a
//     50-run × 11-point experiment does not spend its time in modular
//     exponentiation. Its "signature" is the set of L+1 partials, each a
//     MAC under a per-share key, so the combining/verification *protocol
//     semantics* (L+1 distinct cooperating shares required) are identical.
package thresh

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Partial is one node's contribution toward a threshold signature.
type Partial struct {
	Index int // share index, >= 1
	Data  []byte
}

// Signature is a combined threshold signature.
type Signature struct {
	Data []byte
}

// WireSize returns the byte count the signature occupies in a message.
func (s Signature) WireSize() int { return len(s.Data) }

// Signer is one node's share of one group key. PartialSign never depends on
// other nodes' shares, so a compromised node can produce only its own
// partial.
type Signer interface {
	// Index returns the share index.
	Index() int
	// PartialSign produces this share's contribution for msg.
	PartialSign(msg []byte) (Partial, error)
}

// GroupKey is the public side of one dealt key: any node can combine enough
// partials into a signature and verify signatures.
type GroupKey interface {
	// Threshold returns k: k+1 distinct valid partials are needed.
	Threshold() int
	// Players returns n, the number of dealt shares.
	Players() int
	// Combine assembles a signature from partials (at least k+1 distinct).
	Combine(msg []byte, partials []Partial) (Signature, error)
	// Verify checks a combined signature for msg.
	Verify(msg []byte, sig Signature) error
	// SigBytes returns the wire size of signatures under this key.
	SigBytes() int
}

// PartialVerifier is the optional GroupKey capability of checking one
// partial signature in isolation. The keyed-MAC SimScheme implements it;
// threshold RSA cannot without share-verification proofs, so its corrupt
// partials are only identified at combine time (the voting service's
// leave-one-out fallback).
type PartialVerifier interface {
	VerifyPartial(msg []byte, p Partial) bool
}

// Dealer deals group keys. The paper assumes shares are installed by a
// trusted dealer at system initialization (§2).
type Dealer interface {
	// Deal creates a key with threshold k among n players and returns the
	// public group key plus one Signer per player (index 1..n).
	Deal(k, n int) (GroupKey, []Signer, error)
}

// Errors shared by both schemes.
var (
	ErrTooFewPartials = errors.New("thresh: not enough distinct valid partials")
	ErrBadSignature   = errors.New("thresh: signature verification failed")
	ErrBadPartial     = errors.New("thresh: invalid partial signature")
)

// ---- SimScheme ----------------------------------------------------------

// SimDealer deals SimScheme keys. The zero value is unusable; use
// NewSimDealer.
type SimDealer struct {
	master  []byte
	sigSize int
	counter uint64
}

// NewSimDealer returns a dealer whose keys derive from seed and whose
// signatures report wireBytes as their size (so energy/airtime accounting
// matches the configured key length, e.g. 128 for "1024-bit keys").
func NewSimDealer(seed []byte, wireBytes int) *SimDealer {
	if wireBytes <= 0 {
		wireBytes = 128
	}
	return &SimDealer{master: append([]byte(nil), seed...), sigSize: wireBytes}
}

// Deal implements Dealer.
func (d *SimDealer) Deal(k, n int) (GroupKey, []Signer, error) {
	if k < 0 || n < 1 || k+1 > n {
		return nil, nil, fmt.Errorf("thresh: invalid threshold k=%d n=%d", k, n)
	}
	d.counter++
	keyID := d.counter
	// Index 0 is never a share index, so it doubles as the per-key root
	// from which reshares derive replacement share keys.
	gk := &simGroupKey{k: k, n: n, sigSize: d.sigSize, root: simDerive(d.master, keyID, 0)}
	gk.shareKeys = make([][]byte, n+1)
	signers := make([]Signer, n)
	for i := 1; i <= n; i++ {
		gk.shareKeys[i] = simDerive(d.master, keyID, i)
		signers[i-1] = &simSigner{index: i, key: gk.shareKeys[i]}
	}
	return gk, signers, nil
}

func simDerive(master []byte, keyID uint64, index int) []byte {
	mac := hmac.New(sha256.New, master)
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], keyID)
	binary.BigEndian.PutUint64(buf[8:], uint64(index))
	_, _ = mac.Write(buf[:])
	return mac.Sum(nil)
}

type simSigner struct {
	index int
	key   []byte
}

func (s *simSigner) Index() int { return s.index }

func (s *simSigner) PartialSign(msg []byte) (Partial, error) {
	mac := hmac.New(sha256.New, s.key)
	_, _ = mac.Write(msg)
	return Partial{Index: s.index, Data: mac.Sum(nil)}, nil
}

type simGroupKey struct {
	k, n      int
	sigSize   int
	epoch     uint64
	root      []byte   // per-key derivation root, feeds reshare re-keying
	shareKeys [][]byte // index 1..n
}

var _ GroupKey = (*simGroupKey)(nil)

func (g *simGroupKey) Threshold() int { return g.k }
func (g *simGroupKey) Players() int   { return g.n }
func (g *simGroupKey) SigBytes() int  { return g.sigSize }

// Epoch reports the proactive-refresh epoch (see Refresher). A refresh
// re-derives every share key in place, changing which partials verify, so
// verification memos must key on it.
func (g *simGroupKey) Epoch() uint64 { return g.epoch }

// Combine validates each partial against its share key and, given k+1
// distinct valid ones, emits a signature encoding those partials.
func (g *simGroupKey) Combine(msg []byte, partials []Partial) (Signature, error) {
	valid := make([]Partial, 0, len(partials))
	seen := make(map[int]bool)
	for _, p := range partials {
		if p.Index < 1 || p.Index > g.n || seen[p.Index] {
			continue
		}
		if !g.checkPartial(msg, p) {
			continue
		}
		seen[p.Index] = true
		valid = append(valid, p)
		if len(valid) == g.k+1 {
			break
		}
	}
	if len(valid) < g.k+1 {
		return Signature{}, fmt.Errorf("%w: have %d, need %d", ErrTooFewPartials, len(valid), g.k+1)
	}
	var buf bytes.Buffer
	for _, p := range valid {
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(p.Index))
		buf.Write(idx[:])
		buf.Write(p.Data)
	}
	return Signature{Data: buf.Bytes()}, nil
}

// VerifyPartial implements PartialVerifier: keyed-MAC partials are
// individually checkable, so a corrupt share is identified the moment it
// arrives rather than at combine time.
func (g *simGroupKey) VerifyPartial(msg []byte, p Partial) bool {
	return p.Index >= 1 && p.Index <= g.n && g.checkPartial(msg, p)
}

func (g *simGroupKey) checkPartial(msg []byte, p Partial) bool {
	mac := hmac.New(sha256.New, g.shareKeys[p.Index])
	_, _ = mac.Write(msg)
	return hmac.Equal(mac.Sum(nil), p.Data)
}

func (g *simGroupKey) Verify(msg []byte, sig Signature) error {
	const rec = 4 + sha256.Size
	if len(sig.Data)%rec != 0 {
		return ErrBadSignature
	}
	count := 0
	seen := make(map[int]bool)
	for off := 0; off+rec <= len(sig.Data); off += rec {
		idx := int(binary.BigEndian.Uint32(sig.Data[off : off+4]))
		if idx < 1 || idx > g.n || seen[idx] {
			return ErrBadSignature
		}
		p := Partial{Index: idx, Data: sig.Data[off+4 : off+rec]}
		if !g.checkPartial(msg, p) {
			return ErrBadSignature
		}
		seen[idx] = true
		count++
	}
	if count < g.k+1 {
		return fmt.Errorf("%w: %d co-signers, need %d", ErrBadSignature, count, g.k+1)
	}
	return nil
}
