package thresh

import (
	"bytes"
	"fmt"
	"math/big"
	"testing"
)

// referenceCombine is a straight big.Int transcription of Shoup's
// combination step — w = Π x_i^(2λ_{0,i}), sig = w^a · H(m)^b — with no
// Montgomery context, no scratch reuse, and no memoization. The fast path
// in Combine must produce byte-identical signatures (RSA signatures are
// unique: x ↦ x^e is a bijection mod N when gcd(e, λ(N)) = 1), so this is
// the oracle the optimized code is checked against.
func referenceCombine(g *rsaGroupKey, msg []byte, partials []Partial) (Signature, error) {
	seen := make(map[int]bool)
	var use []Partial
	for _, p := range partials {
		if p.Index < 1 || p.Index > g.n || seen[p.Index] || len(p.Data) == 0 {
			continue
		}
		seen[p.Index] = true
		use = append(use, p)
		if len(use) == g.k+1 {
			break
		}
	}
	if len(use) < g.k+1 {
		return Signature{}, fmt.Errorf("%w: have %d, need %d", ErrTooFewPartials, len(use), g.k+1)
	}
	set := make([]int, len(use))
	for i, p := range use {
		set[i] = p.Index
	}
	x := hashToModulus(msg, g.modulus)
	w := big.NewInt(1)
	for _, p := range use {
		lam := g.lagrangeNumerator(set, p.Index)
		lam.Lsh(lam, 1) // 2λ
		xi := new(big.Int).SetBytes(p.Data)
		term, err := powSigned(xi, lam, g.modulus)
		if err != nil {
			return Signature{}, err
		}
		w.Mul(w, term)
		w.Mod(w, g.modulus)
	}
	fourDeltaSq := new(big.Int).Mul(g.delta, g.delta)
	fourDeltaSq.Lsh(fourDeltaSq, 2)
	a := new(big.Int)
	b := new(big.Int)
	new(big.Int).GCD(a, b, fourDeltaSq, g.e)
	wa, err := powSigned(w, a, g.modulus)
	if err != nil {
		return Signature{}, err
	}
	xb, err := powSigned(x, b, g.modulus)
	if err != nil {
		return Signature{}, err
	}
	sig := wa.Mul(wa, xb)
	sig.Mod(sig, g.modulus)
	if new(big.Int).Exp(sig, g.e, g.modulus).Cmp(x) != 0 {
		return Signature{}, fmt.Errorf("%w: combined signature invalid", ErrBadPartial)
	}
	return Signature{Data: sig.Bytes()}, nil
}

// TestCombineMatchesReference checks the optimized Combine against the
// reference transcription for several key shapes, messages, and rotated
// co-signer sets: signatures must be byte-identical and verify.
func TestCombineMatchesReference(t *testing.T) {
	d := &RSADealer{Bits: 512}
	for _, kn := range [][2]int{{0, 1}, {1, 3}, {2, 5}, {3, 7}} {
		gk, signers, err := d.Deal(kn[0], kn[1])
		if err != nil {
			t.Fatal(err)
		}
		g := gk.(*rsaGroupKey)
		for m := 0; m < 4; m++ {
			msg := []byte(fmt.Sprintf("ref-msg-%d-%d", kn[0], m))
			var parts []Partial
			for i := 0; i <= kn[0]; i++ {
				s := signers[(i+m)%len(signers)]
				p, err := s.PartialSign(msg)
				if err != nil {
					t.Fatal(err)
				}
				// PartialSign must be H(m)^(2Δ·s_i) mod N exactly.
				rs := s.(*rsaSigner)
				exp := new(big.Int).Lsh(g.delta, 1)
				exp.Mul(exp, rs.share)
				x := hashToModulus(msg, g.modulus)
				want := x.Exp(x, exp, g.modulus).Bytes()
				if !bytes.Equal(p.Data, want) {
					t.Fatalf("k=%d m=%d signer %d: partial bytes differ from reference", kn[0], m, s.Index())
				}
				parts = append(parts, p)
			}
			got, err := gk.Combine(msg, parts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := referenceCombine(g, msg, parts)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Data, want.Data) {
				t.Fatalf("k=%d n=%d m=%d: combined signature differs from reference", kn[0], kn[1], m)
			}
			if err := gk.Verify(msg, got); err != nil {
				t.Fatal(err)
			}
		}
	}
}
