package thresh

import (
	"encoding/binary"
	"fmt"
	"math/big"

	"innercircle/internal/crypto/shamir"
)

// Refresher is the proactive-secret-sharing extension §2 of the paper
// defers to Herzberg et al.: shares are periodically re-randomized so that
// an adversary must compromise L+1 nodes within a single epoch — shares
// stolen across epochs do not combine. The group key (and all previously
// issued combined signatures) remain valid.
type Refresher interface {
	// Refresh re-randomizes the shares of a key this dealer dealt. Old
	// signers' partials stop combining with new ones. The returned slice
	// has one new signer per original share index.
	Refresh(gk GroupKey, old []Signer) ([]Signer, error)
}

var (
	_ Refresher = (*RSADealer)(nil)
	_ Refresher = (*SimDealer)(nil)
)

// Refresh implements Refresher for the threshold RSA scheme
// (dealer-assisted: the dealer, who retains λ(N), deals a random degree-k
// polynomial with constant term zero and each new share is
// s'_i = s_i + z_i mod λ(N); the shared exponent — and thus the public
// key — is unchanged).
func (d *RSADealer) Refresh(gk GroupKey, old []Signer) ([]Signer, error) {
	rk, ok := gk.(*rsaGroupKey)
	if !ok {
		return nil, fmt.Errorf("thresh: group key was not dealt by an RSA dealer")
	}
	lambda, ok := d.secrets[rk]
	if !ok {
		return nil, fmt.Errorf("thresh: this dealer did not deal the given key")
	}
	zeroShares, err := shamir.Split(big.NewInt(0), rk.k, rk.n, lambda, d.rand())
	if err != nil {
		return nil, fmt.Errorf("thresh: refresh polynomial: %w", err)
	}
	out := make([]Signer, len(old))
	for i, s := range old {
		rs, ok := s.(*rsaSigner)
		if !ok || rs.gk != rk {
			return nil, fmt.Errorf("thresh: signer %d does not belong to this key", i)
		}
		z := zeroShares[rs.index-1]
		sum := new(big.Int).Add(rs.share, z.Y)
		sum.Mod(sum, lambda)
		out[i] = newRSASigner(rk, rs.index, sum)
	}
	rk.epoch++
	return out, nil
}

// Refresh implements Refresher for the simulation scheme by re-deriving
// every share key under a bumped epoch. The group key object is updated in
// place (it is the shared verification oracle), so stale signers' partials
// stop verifying.
func (d *SimDealer) Refresh(gk GroupKey, old []Signer) ([]Signer, error) {
	sk, ok := gk.(*simGroupKey)
	if !ok {
		return nil, fmt.Errorf("thresh: group key was not dealt by a sim dealer")
	}
	sk.epoch++
	out := make([]Signer, len(old))
	for i, s := range old {
		ss, ok := s.(*simSigner)
		if !ok {
			return nil, fmt.Errorf("thresh: signer %d does not belong to this key", i)
		}
		key := simRefreshKey(sk.shareKeys[ss.index], sk.epoch)
		sk.shareKeys[ss.index] = key
		out[i] = &simSigner{index: ss.index, key: key}
	}
	return out, nil
}

func simRefreshKey(prev []byte, epoch uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], epoch)
	return simDerive(prev, epoch, 0)
}
