package thresh

import (
	"fmt"
	"math/big"

	"innercircle/internal/crypto/shamir"
)

// Resharer moves a dealt group key to a new (k, n) signer set without
// changing the public key. Where Refresher re-randomizes shares inside a
// fixed membership, Reshare is the membership-change primitive: the inner
// circle shrinks when nodes depart (or are expelled by the suspicion
// machinery) and grows when nodes join, and the signing quorum must follow.
//
// The group key object is mutated in place — it is the shared verification
// oracle held by every node's public ring — and its epoch is bumped, so
// verification memos keyed on Epoched roll over and partials produced by
// pre-reshare signers stop combining. Previously issued combined
// signatures remain valid under the threshold-RSA scheme (the modulus and
// public exponent are untouched); the keyed-MAC SimScheme re-derives its
// share keys, so its old "signatures" expire with the epoch, which is the
// honest analogue of its refresh semantics.
//
// Callers must quiesce signing and verification against the key for the
// duration of the call: the membership layer drains in-flight vote rounds
// before resharing (node.Membership), and scenario churn runs transitions
// on the single-threaded kernel loop.
type Resharer interface {
	// Reshare re-deals the key's secret with threshold newK among newN
	// players and returns the new signers (index 1..newN). Old signers'
	// partials no longer combine.
	Reshare(gk GroupKey, newK, newN int) ([]Signer, error)
}

var (
	_ Resharer = (*RSADealer)(nil)
	_ Resharer = (*SimDealer)(nil)
)

// Reshare implements Resharer for the threshold RSA scheme. The dealer
// retains λ(N) (never d itself); d = e⁻¹ mod λ is recomputed and Shamir-
// shared afresh with the new parameters. The key's Shoup precompute —
// Δ = n!, 4Δ², the extended-Euclid pair a·4Δ² + b·e = 1, and the per-set
// Lagrange memo — is rebuilt for the new (k, n); the Montgomery context
// survives untouched because the modulus does, which is exactly the
// "public key preserved" half of the contract.
func (d *RSADealer) Reshare(gk GroupKey, newK, newN int) ([]Signer, error) {
	rk, ok := gk.(*rsaGroupKey)
	if !ok {
		return nil, fmt.Errorf("thresh: group key was not dealt by an RSA dealer")
	}
	lambda, ok := d.secrets[rk]
	if !ok {
		return nil, fmt.Errorf("thresh: this dealer did not deal the given key")
	}
	if newK < 0 || newN < 1 || newK+1 > newN {
		return nil, fmt.Errorf("thresh: invalid threshold k=%d n=%d", newK, newN)
	}
	dExp := new(big.Int).ModInverse(rk.e, lambda)
	if dExp == nil {
		return nil, fmt.Errorf("thresh: e not invertible mod lambda")
	}
	shares, err := shamir.Split(dExp, newK, newN, lambda, d.rand())
	if err != nil {
		return nil, fmt.Errorf("thresh: reshare private exponent: %w", err)
	}
	if err := rk.reshare(newK, newN); err != nil {
		return nil, err
	}
	signers := make([]Signer, newN)
	for i, s := range shares {
		signers[i] = newRSASigner(rk, s.X, s.Y)
	}
	return signers, nil
}

// Reshare implements Resharer for the simulation scheme: the share keys
// are re-derived for the new player count from the key's deal-time root
// under the bumped epoch, so stale signers' partials stop verifying
// immediately.
func (d *SimDealer) Reshare(gk GroupKey, newK, newN int) ([]Signer, error) {
	sk, ok := gk.(*simGroupKey)
	if !ok {
		return nil, fmt.Errorf("thresh: group key was not dealt by a sim dealer")
	}
	if newK < 0 || newN < 1 || newK+1 > newN {
		return nil, fmt.Errorf("thresh: invalid threshold k=%d n=%d", newK, newN)
	}
	sk.epoch++
	sk.k, sk.n = newK, newN
	sk.shareKeys = make([][]byte, newN+1)
	signers := make([]Signer, newN)
	for i := 1; i <= newN; i++ {
		sk.shareKeys[i] = simDerive(sk.root, sk.epoch, i)
		signers[i-1] = &simSigner{index: i, key: sk.shareKeys[i]}
	}
	return signers, nil
}
