package thresh

// Epoched is the capability of reporting a key-material epoch. Every
// share-changing operation on a group key — proactive refresh (Refresher),
// resharing to a new (k, n) (Resharer) — bumps the epoch while leaving the
// public key intact, so the epoch is the one value verification memos must
// key on: a cached verdict from epoch E must never be served at epoch
// E+1, where a different share set (and, for the keyed-MAC SimScheme, a
// different set of share keys) is live.
//
// Both group-key implementations satisfy it; the voting layer type-asserts
// against this interface instead of duck-typing the method.
type Epoched interface {
	// Epoch returns the key-material epoch, starting at 0 when the key is
	// dealt and incremented by every refresh or reshare.
	Epoch() uint64
}

var (
	_ Epoched = (*simGroupKey)(nil)
	_ Epoched = (*rsaGroupKey)(nil)
)
