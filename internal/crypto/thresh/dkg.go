// Dealerless key generation: the n prospective share holders establish a
// group key among themselves with a verifiable-secret-sharing round —
// commitments, sub-share consistency checks, complaints, and blame — so
// the trusted dealer of §2 of the paper is no longer a single point of
// compromise, and cheaters are identified with proof (the "identifying
// abort" idiom of modern DKGs).
//
// Honesty about what is modeled: the genuinely hard parts of dealerless
// threshold RSA — generating a modulus no party can factor (Boneh &
// Franklin, "Efficient generation of shared RSA keys") and sharing the
// private exponent without anyone holding λ(N) (Damgård & Koprowski) —
// are played here by the dealer object acting as the ideal functionality,
// exactly as SimScheme models the signatures themselves. What runs for
// real is the protocol layer the rest of the system consumes: the
// qualification round's SHA-256 sub-share commitments, the consistency
// checks, the complaint/opening/blame rounds (over a public 256-bit
// prime, with real Shamir arithmetic), and the qualified-set rule. Blamed
// participants are excluded from the final signer set and surfaced to the
// caller, which feeds them to the vote-layer suspicion machinery — the
// same path that marks nodes permanently suspect for corrupt partials.
package thresh

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"

	"innercircle/internal/crypto/shamir"
)

// DKGFault scripts one participant's behaviour in the qualification
// round, so tests and fault campaigns can exercise every branch of the
// complaint protocol deterministically.
type DKGFault int

const (
	// DKGHonest follows the protocol.
	DKGHonest DKGFault = iota
	// DKGCheatThenReveal deals one receiver a sub-share inconsistent with
	// its commitment, then answers the complaint with the honest opening:
	// the receiver adopts the opened value and the dealer survives. This
	// is the recovery branch of the complaint round.
	DKGCheatThenReveal
	// DKGCheatStubborn deals a bad sub-share and re-asserts it when
	// challenged: the opening contradicts the commitment, which is a
	// transferable proof of misbehaviour — the participant is blamed and
	// excluded.
	DKGCheatStubborn
	// DKGSilent never deals: excluded from the qualified set, but with no
	// proof of malice (a crashed node looks the same), so it lands in
	// Silent rather than Blamed.
	DKGSilent
)

// DKGConfig parameterizes one dealerless key generation.
type DKGConfig struct {
	// K is the threshold: K+1 cooperating shares sign.
	K int
	// N is the number of participants (share indices 1..N).
	N int
	// Faults scripts misbehaviour by participant index (1-based); absent
	// participants are honest.
	Faults map[int]DKGFault
}

// DKGResult is the outcome of a dealerless key generation.
type DKGResult struct {
	// Key is the established group key; signatures under it verify through
	// exactly the same Combine/Verify path as a dealer-dealt key.
	Key GroupKey
	// Signers holds participant i's signer at index i-1, nil for
	// participants excluded during qualification.
	Signers []Signer
	// Blamed lists participants (ascending) disqualified with proof — an
	// opening contradicting a commitment. Callers map these to permanent
	// suspicion.
	Blamed []int
	// Silent lists participants (ascending) that never dealt —
	// indistinguishable from a crash, so worth temporary suspicion only.
	Silent []int
	// Complaints counts complaint messages exchanged (diagnostics).
	Complaints int
}

// KeyGenerator is the dealerless counterpart of Dealer: both schemes'
// dealers implement it, with the dealer object standing in for the ideal
// key-material functionality (see the package comment above).
type KeyGenerator interface {
	DKG(cfg DKGConfig) (*DKGResult, error)
}

var (
	_ KeyGenerator = (*RSADealer)(nil)
	_ KeyGenerator = (*SimDealer)(nil)
)

// dkgPrime is the fixed public 256-bit prime (2²⁵⁶ − 189) the
// qualification round's throwaway pad VSS runs over. Its value carries no
// secret; it only needs to be prime and public so the Shamir arithmetic
// and the commitment checks are honest.
var dkgPrime = new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 256), big.NewInt(189))

// dkgCommit is the sub-share commitment: H(tag ‖ dealer ‖ receiver ‖ value).
func dkgCommit(dealer, receiver int, v *big.Int) [sha256.Size]byte {
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[:8], uint64(dealer))
	binary.BigEndian.PutUint64(hdr[8:], uint64(receiver))
	h := sha256.New()
	_, _ = h.Write([]byte("ic-dkg-subshare"))
	_, _ = h.Write(hdr[:])
	_, _ = h.Write(v.Bytes())
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// dkgRandInt draws a uniform integer in [0, mod) by masked rejection.
func dkgRandInt(rnd io.Reader, mod *big.Int) (*big.Int, error) {
	bitLen := mod.BitLen()
	buf := make([]byte, (bitLen+7)/8)
	for {
		if _, err := io.ReadFull(rnd, buf); err != nil {
			return nil, err
		}
		if excess := len(buf)*8 - bitLen; excess > 0 {
			buf[0] &= 0xFF >> excess
		}
		v := new(big.Int).SetBytes(buf)
		if v.Cmp(mod) < 0 {
			return v, nil
		}
	}
}

// dkgTranscript is what the qualification round establishes: who is in,
// who is out and why, and each qualified participant's pad (the joint
// entropy contribution the later rounds consume).
type dkgTranscript struct {
	qual       []int // ascending qualified participants
	blamed     []int
	silent     []int
	pads       []*big.Int // 1..n; set for qualified participants only
	complaints int
}

// dkgQualify runs the qualification round for real: every live
// participant deals a Shamir sharing of a throwaway pad over dkgPrime,
// commits to each sub-share, receivers check received values against the
// commitments, mismatches trigger complaints, and the dealer's opening
// either repairs the share (it matches the commitment) or convicts the
// dealer (it does not). Scripted faults make every branch reachable.
func dkgQualify(k, n int, faults map[int]DKGFault, rnd io.Reader) (*dkgTranscript, error) {
	tr := &dkgTranscript{pads: make([]*big.Int, n+1)}
	type dealing struct {
		pad   *big.Int
		truth []*big.Int // f_i(j) as committed, 1-based receiver index
		sent  []*big.Int // f_i(j) as transmitted (cheaters corrupt one)
		com   [][sha256.Size]byte
	}
	deals := make([]*dealing, n+1)
	for i := 1; i <= n; i++ {
		if faults[i] == DKGSilent {
			tr.silent = append(tr.silent, i)
			continue
		}
		pad, err := dkgRandInt(rnd, dkgPrime)
		if err != nil {
			return nil, fmt.Errorf("thresh: dkg pad: %w", err)
		}
		shares, err := shamir.Split(pad, k, n, dkgPrime, rnd)
		if err != nil {
			return nil, fmt.Errorf("thresh: dkg pad sharing: %w", err)
		}
		dl := &dealing{
			pad:   pad,
			truth: make([]*big.Int, n+1),
			sent:  make([]*big.Int, n+1),
			com:   make([][sha256.Size]byte, n+1),
		}
		for _, s := range shares {
			dl.truth[s.X] = s.Y
			dl.sent[s.X] = s.Y
			dl.com[s.X] = dkgCommit(i, s.X, s.Y)
		}
		switch faults[i] {
		case DKGCheatThenReveal, DKGCheatStubborn:
			victim := 1
			if victim == i {
				victim = 2
			}
			bad := new(big.Int).Add(dl.truth[victim], big.NewInt(1))
			bad.Mod(bad, dkgPrime)
			dl.sent[victim] = bad
		}
		deals[i] = dl
	}
	// Complaint and blame rounds. Receivers check every dealing against
	// its commitments; each mismatch forces the dealer to open the
	// committed value in public.
	for i := 1; i <= n; i++ {
		dl := deals[i]
		if dl == nil {
			continue
		}
		blamed := false
		for j := 1; j <= n; j++ {
			if faults[j] == DKGSilent { // departed receivers cannot complain
				continue
			}
			if dkgCommit(i, j, dl.sent[j]) == dl.com[j] {
				continue
			}
			tr.complaints++
			reveal := dl.sent[j] // a stubborn cheater re-asserts the bad value
			if faults[i] == DKGCheatThenReveal {
				reveal = dl.truth[j]
			}
			if dkgCommit(i, j, reveal) == dl.com[j] {
				dl.sent[j] = reveal // receiver adopts the public opening
			} else {
				blamed = true // opening contradicts commitment: proof of cheating
			}
		}
		if blamed {
			tr.blamed = append(tr.blamed, i)
		} else {
			tr.qual = append(tr.qual, i)
			tr.pads[i] = dl.pad
		}
	}
	return tr, nil
}

// DKG implements KeyGenerator for threshold RSA. After the (real)
// qualification round fixes QUAL, the modulus and exponents come from the
// ideal functionality (see the package comment); each qualified
// participant then contributes an additive piece of the private exponent,
// Shamir-shares it mod λ, and participant j's final share is the sum of
// the sub-shares addressed to j — the Pedersen sum-of-dealings structure,
// with disqualified participants receiving nothing.
func (d *RSADealer) DKG(cfg DKGConfig) (*DKGResult, error) {
	k, n := cfg.K, cfg.N
	if k < 0 || n < 1 || k+1 > n {
		return nil, fmt.Errorf("thresh: invalid threshold k=%d n=%d", k, n)
	}
	tr, err := dkgQualify(k, n, cfg.Faults, d.rand())
	if err != nil {
		return nil, err
	}
	if len(tr.qual) < k+1 {
		return nil, fmt.Errorf("thresh: dkg left %d qualified participants, need at least %d", len(tr.qual), k+1)
	}
	N, e, lambda, err := d.keyMaterial(n)
	if err != nil {
		return nil, err
	}
	dExp := new(big.Int).ModInverse(e, lambda)
	if dExp == nil {
		return nil, fmt.Errorf("thresh: e not invertible mod lambda")
	}
	// Additive contributions over QUAL summing to d, each Shamir-shared;
	// final shares are the per-receiver sums of sub-shares.
	sum := new(big.Int)
	shareSum := make([]*big.Int, n+1)
	for j := 1; j <= n; j++ {
		shareSum[j] = new(big.Int)
	}
	for pos, i := range tr.qual {
		var contrib *big.Int
		if pos == len(tr.qual)-1 {
			contrib = new(big.Int).Sub(dExp, sum)
			contrib.Mod(contrib, lambda)
		} else {
			contrib, err = dkgRandInt(d.rand(), lambda)
			if err != nil {
				return nil, fmt.Errorf("thresh: dkg contribution: %w", err)
			}
		}
		sum.Add(sum, contrib)
		sum.Mod(sum, lambda)
		shares, err := shamir.Split(contrib, k, n, lambda, d.rand())
		if err != nil {
			return nil, fmt.Errorf("thresh: dkg sub-sharing by %d: %w", i, err)
		}
		for _, s := range shares {
			shareSum[s.X].Add(shareSum[s.X], s.Y)
			shareSum[s.X].Mod(shareSum[s.X], lambda)
		}
	}
	gk := &rsaGroupKey{k: k, n: n, modulus: N, e: e, delta: factorial(n)}
	if err := gk.precompute(); err != nil {
		return nil, err
	}
	if d.secrets == nil {
		d.secrets = make(map[*rsaGroupKey]*big.Int)
	}
	d.secrets[gk] = lambda // refresh and reshare work on DKG-dealt keys too
	res := &DKGResult{
		Key:        gk,
		Signers:    make([]Signer, n),
		Blamed:     tr.blamed,
		Silent:     tr.silent,
		Complaints: tr.complaints,
	}
	for _, i := range tr.qual {
		res.Signers[i-1] = newRSASigner(gk, i, shareSum[i])
	}
	return res, nil
}

// drbgReader is a deterministic HMAC-SHA256 expansion stream, letting the
// SimDealer run the qualification round's real arithmetic reproducibly
// from its master seed.
type drbgReader struct {
	key []byte
	ctr uint64
	buf []byte
}

func (r *drbgReader) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(r.buf) == 0 {
			r.ctr++
			r.buf = simDerive(r.key, r.ctr, 0)
		}
		c := copy(p[n:], r.buf)
		n += c
		r.buf = r.buf[c:]
	}
	return n, nil
}

// DKG implements KeyGenerator for the simulation scheme: the same real
// qualification round, then a joint per-key root hashed from the
// qualified participants' pads, from which the share keys derive —
// keeping the protocol semantics (who is in, who is blamed, what a share
// index means) identical to the RSA path at sweep-friendly cost.
func (d *SimDealer) DKG(cfg DKGConfig) (*DKGResult, error) {
	k, n := cfg.K, cfg.N
	if k < 0 || n < 1 || k+1 > n {
		return nil, fmt.Errorf("thresh: invalid threshold k=%d n=%d", k, n)
	}
	d.counter++
	keyID := d.counter
	rnd := &drbgReader{key: simDerive(d.master, keyID, 0)}
	tr, err := dkgQualify(k, n, cfg.Faults, rnd)
	if err != nil {
		return nil, err
	}
	if len(tr.qual) < k+1 {
		return nil, fmt.Errorf("thresh: dkg left %d qualified participants, need at least %d", len(tr.qual), k+1)
	}
	h := sha256.New()
	_, _ = h.Write([]byte("ic-dkg-root"))
	for _, i := range tr.qual {
		var idx [8]byte
		binary.BigEndian.PutUint64(idx[:], uint64(i))
		_, _ = h.Write(idx[:])
		_, _ = h.Write(tr.pads[i].Bytes())
	}
	gk := &simGroupKey{k: k, n: n, sigSize: d.sigSize, root: h.Sum(nil)}
	gk.shareKeys = make([][]byte, n+1)
	for i := 1; i <= n; i++ {
		gk.shareKeys[i] = simDerive(gk.root, 0, i)
	}
	res := &DKGResult{
		Key:        gk,
		Signers:    make([]Signer, n),
		Blamed:     tr.blamed,
		Silent:     tr.silent,
		Complaints: tr.complaints,
	}
	for _, i := range tr.qual {
		res.Signers[i-1] = &simSigner{index: i, key: gk.shareKeys[i]}
	}
	return res, nil
}
