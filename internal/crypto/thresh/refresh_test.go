package thresh

import (
	"testing"
)

// refreshers returns both dealers (they both implement Refresher).
func refreshers() map[string]interface {
	Dealer
	Refresher
} {
	return map[string]interface {
		Dealer
		Refresher
	}{
		"sim": NewSimDealer([]byte("refresh-test"), 128),
		"rsa": &RSADealer{Bits: 512},
	}
}

func TestRefreshPreservesGroupKey(t *testing.T) {
	for name, d := range refreshers() {
		t.Run(name, func(t *testing.T) {
			gk, old, err := d.Deal(2, 5)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("epoch test")
			// A signature combined before the refresh...
			var oldPartials []Partial
			for i := 0; i < 3; i++ {
				p, err := old[i].PartialSign(msg)
				if err != nil {
					t.Fatal(err)
				}
				oldPartials = append(oldPartials, p)
			}
			oldSig, err := gk.Combine(msg, oldPartials)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := d.Refresh(gk, old)
			if err != nil {
				t.Fatal(err)
			}
			// ...still verifies after the refresh (the public key did not
			// change)...
			if name == "rsa" {
				if err := gk.Verify(msg, oldSig); err != nil {
					t.Fatalf("pre-refresh signature invalidated: %v", err)
				}
			}
			// ...and fresh shares still produce valid signatures.
			var newPartials []Partial
			for i := 0; i < 3; i++ {
				p, err := fresh[i].PartialSign(msg)
				if err != nil {
					t.Fatal(err)
				}
				newPartials = append(newPartials, p)
			}
			sig, err := gk.Combine(msg, newPartials)
			if err != nil {
				t.Fatalf("post-refresh combine: %v", err)
			}
			if err := gk.Verify(msg, sig); err != nil {
				t.Fatalf("post-refresh verify: %v", err)
			}
		})
	}
}

func TestRefreshInvalidatesCrossEpochMixing(t *testing.T) {
	for name, d := range refreshers() {
		t.Run(name, func(t *testing.T) {
			gk, old, err := d.Deal(2, 5)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("mix")
			stale0, err := old[0].PartialSign(msg)
			if err != nil {
				t.Fatal(err)
			}
			stale1, err := old[1].PartialSign(msg)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := d.Refresh(gk, old)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := fresh[2].PartialSign(msg)
			if err != nil {
				t.Fatal(err)
			}
			// Two shares stolen before the refresh plus one fresh share
			// must NOT combine: the proactive property.
			if _, err := gk.Combine(msg, []Partial{stale0, stale1, p2}); err == nil {
				t.Fatal("stale shares combined across a refresh epoch")
			}
		})
	}
}

func TestRefreshForeignKeyRejected(t *testing.T) {
	rsa1 := &RSADealer{Bits: 512}
	rsa2 := &RSADealer{Bits: 512}
	gk, signers, err := rsa1.Deal(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rsa2.Refresh(gk, signers); err == nil {
		t.Fatal("dealer refreshed a key it did not deal")
	}
	sim := NewSimDealer([]byte("x"), 64)
	if _, err := sim.Refresh(gk, signers); err == nil {
		t.Fatal("sim dealer refreshed an RSA key")
	}
}

func TestRepeatedRefreshes(t *testing.T) {
	d := &RSADealer{Bits: 512}
	gk, shares, err := d.Deal(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("many epochs")
	for epoch := 0; epoch < 4; epoch++ {
		shares, err = d.Refresh(gk, shares)
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		p0, _ := shares[0].PartialSign(msg)
		p1, _ := shares[1].PartialSign(msg)
		sig, err := gk.Combine(msg, []Partial{p0, p1})
		if err != nil {
			t.Fatalf("epoch %d combine: %v", epoch, err)
		}
		if err := gk.Verify(msg, sig); err != nil {
			t.Fatalf("epoch %d verify: %v", epoch, err)
		}
	}
}
