package thresh

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
	"sync"

	"innercircle/internal/crypto/shamir"
)

// RSADealer deals Shoup-style threshold RSA keys. The dealer retains the
// secret modulus totient of every key it deals so it can later run the
// proactive share refresh (see Refresher).
type RSADealer struct {
	// Bits is the modulus size; the paper uses 1024 (ad hoc) and 512
	// (sensor) bit keys.
	Bits int
	// Rand is the entropy source; nil means crypto/rand.Reader.
	Rand io.Reader

	// secrets maps dealt keys to λ(N), needed for Refresh.
	secrets map[*rsaGroupKey]*big.Int
}

func (d *RSADealer) rand() io.Reader {
	if d.Rand != nil {
		return d.Rand
	}
	return rand.Reader
}

// Deal implements Dealer. It generates a fresh RSA modulus, shares the
// private exponent with a degree-k polynomial, and returns the group key
// and n signers.
func (d *RSADealer) Deal(k, n int) (GroupKey, []Signer, error) {
	if k < 0 || n < 1 || k+1 > n {
		return nil, nil, fmt.Errorf("thresh: invalid threshold k=%d n=%d", k, n)
	}
	N, e, lambda, err := d.keyMaterial(n)
	if err != nil {
		return nil, nil, err
	}
	dExp := new(big.Int).ModInverse(e, lambda)
	if dExp == nil {
		return nil, nil, fmt.Errorf("thresh: e not invertible mod lambda")
	}
	shares, err := shamir.Split(dExp, k, n, lambda, d.rand())
	if err != nil {
		return nil, nil, fmt.Errorf("thresh: share private exponent: %w", err)
	}
	gk := &rsaGroupKey{k: k, n: n, modulus: N, e: e, delta: factorial(n)}
	if err := gk.precompute(); err != nil {
		return nil, nil, err
	}
	if d.secrets == nil {
		d.secrets = make(map[*rsaGroupKey]*big.Int)
	}
	d.secrets[gk] = lambda
	signers := make([]Signer, n)
	for i, s := range shares {
		signers[i] = newRSASigner(gk, s.X, s.Y)
	}
	return gk, signers, nil
}

// keyMaterial generates a modulus N, public exponent e, and secret λ(N)
// suitable for an n-player key. Deal calls it as the trusted dealer; DKG
// calls it as the ideal functionality standing in for distributed modulus
// generation (see dkg.go).
func (d *RSADealer) keyMaterial(n int) (N, e, lambda *big.Int, err error) {
	bits := d.Bits
	if bits == 0 {
		bits = 1024
	}
	if bits < 128 {
		return nil, nil, nil, fmt.Errorf("thresh: modulus too small (%d bits)", bits)
	}
	one := big.NewInt(1)
	var p, q *big.Int
	for {
		p, err = rand.Prime(d.rand(), bits/2)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("thresh: generate prime: %w", err)
		}
		q, err = rand.Prime(d.rand(), bits-bits/2)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("thresh: generate prime: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		N = new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda = new(big.Int).Mul(pm1, qm1)
		lambda.Div(lambda, gcd)
		break
	}
	// Public exponent e must be a prime larger than n (so gcd(e, 4Δ²) = 1
	// with Δ = n!) and coprime to λ(N).
	e = big.NewInt(65537)
	for int(e.Int64()) <= n || new(big.Int).GCD(nil, nil, e, lambda).Cmp(one) != 0 {
		e.Add(e, big.NewInt(2))
		for !e.ProbablyPrime(32) {
			e.Add(e, big.NewInt(2))
		}
	}
	return N, e, lambda, nil
}

func factorial(n int) *big.Int {
	f := big.NewInt(1)
	for i := 2; i <= n; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	return f
}

// hashToModulus maps msg to an element of Z_N* via SHA-256 expansion.
func hashToModulus(msg []byte, modulus *big.Int) *big.Int {
	return hashToModulusInto(new(big.Int), msg, modulus)
}

// hashToModulusInto is hashToModulus writing into dst (scratch reuse).
func hashToModulusInto(dst *big.Int, msg []byte, modulus *big.Int) *big.Int {
	need := (modulus.BitLen() + 7) / 8
	var out []byte
	var ctr uint8
	for len(out) < need {
		h := sha256.New()
		_, _ = h.Write([]byte{ctr})
		_, _ = h.Write(msg)
		out = h.Sum(out)
		ctr++
	}
	dst.SetBytes(out[:need])
	dst.Mod(dst, modulus)
	if dst.Sign() == 0 {
		dst.SetInt64(1)
	}
	return dst
}

type rsaGroupKey struct {
	k, n    int
	modulus *big.Int
	e       *big.Int
	delta   *big.Int // n!
	epoch   uint64   // proactive-refresh epoch, diagnostics only

	// Key-dependent, message-independent context, computed at deal time
	// and rebuilt by reshare when (k, n) changes (Shoup's observation:
	// everything but H(m)^exp can be reused between messages).
	// aAbs/bAbs are stored as magnitudes plus sign flags so concurrent
	// Combine calls never mutate the shared big.Ints.
	fourDeltaSq *big.Int // 4Δ²
	aAbs, bAbs  *big.Int // |a|, |b| where a·4Δ² + b·e = 1
	aNeg, bNeg  bool
	mont        *montCtx // fixed-modulus Montgomery arithmetic

	// lag memoizes the 2λ^S_{0,i} Lagrange-coefficient vectors per
	// co-signer set: vote rounds reuse the same k+1 neighbours constantly.
	mu  sync.Mutex
	lag map[string]*lagEntry
}

var _ GroupKey = (*rsaGroupKey)(nil)

func (g *rsaGroupKey) Threshold() int { return g.k }
func (g *rsaGroupKey) Players() int   { return g.n }
func (g *rsaGroupKey) SigBytes() int  { return (g.modulus.BitLen() + 7) / 8 }

// Epoch reports the proactive-refresh epoch (see Refresher). Verification
// memos include it in their cache key so refreshed keys never serve stale
// entries.
func (g *rsaGroupKey) Epoch() uint64 { return g.epoch }

// precompute derives the per-key constants of Shoup's combination step:
// 4Δ², the extended-Euclid pair a·4Δ² + b·e = 1, and the Montgomery
// context for the fixed modulus. Dealt keys always satisfy
// gcd(4Δ², e) = 1 because e is a prime > n.
func (g *rsaGroupKey) precompute() error {
	g.fourDeltaSq = new(big.Int).Mul(g.delta, g.delta)
	g.fourDeltaSq.Lsh(g.fourDeltaSq, 2)
	a := new(big.Int)
	b := new(big.Int)
	gcd := new(big.Int).GCD(a, b, g.fourDeltaSq, g.e)
	if gcd.Cmp(big.NewInt(1)) != 0 {
		return fmt.Errorf("thresh: gcd(4Δ², e) != 1 (e too small for n)")
	}
	g.aNeg = a.Sign() < 0
	g.bNeg = b.Sign() < 0
	g.aAbs = a.Abs(a)
	g.bAbs = b.Abs(b)
	g.mont = newMontCtx(g.modulus)
	return nil
}

// reshare repoints the key at a new (k, n): Δ becomes n'!, the dependent
// Shoup constants (4Δ², the extended-Euclid pair) are rebuilt, the per-set
// Lagrange memo is dropped, and the epoch is bumped so verification memos
// roll over. The modulus — and with it the Montgomery context and every
// previously issued signature — is untouched. All new state is computed
// before any field is assigned, so a failed rebuild leaves the key as it
// was.
func (g *rsaGroupKey) reshare(newK, newN int) error {
	delta := factorial(newN)
	fds := new(big.Int).Mul(delta, delta)
	fds.Lsh(fds, 2)
	a := new(big.Int)
	b := new(big.Int)
	gcd := new(big.Int).GCD(a, b, fds, g.e)
	if gcd.Cmp(big.NewInt(1)) != 0 {
		return fmt.Errorf("thresh: gcd(4Δ², e) != 1 (e too small for n=%d)", newN)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.k, g.n, g.delta = newK, newN, delta
	g.fourDeltaSq = fds
	g.aNeg, g.bNeg = a.Sign() < 0, b.Sign() < 0
	g.aAbs, g.bAbs = a.Abs(a), b.Abs(b)
	g.lag = nil
	g.epoch++
	return nil
}

// lagEntry is the memoized coefficient vector for one co-signer set:
// |2λ^S_{0,i}| plus sign, aligned with the sorted index slice. Entries are
// immutable once published.
type lagEntry struct {
	idx []int
	abs []*big.Int
	neg []bool
}

// coeff returns |2λ^S_{0,i}| and its sign for share index i.
func (le *lagEntry) coeff(i int) (*big.Int, bool) {
	for j, v := range le.idx {
		if v == i {
			return le.abs[j], le.neg[j]
		}
	}
	panic("thresh: index not in lagrange entry")
}

// lagCacheCap bounds the per-key coefficient memo. A vote service sees a
// handful of co-signer sets; the cap only matters under adversarial churn,
// where the whole map is dropped and rebuilt on demand (deterministic and
// allocation-cheap at this size).
const lagCacheCap = 64

// lagrangeSet returns the memoized 2λ^S_{0,i} vector for the given
// co-signer set (order-insensitive).
func (g *rsaGroupKey) lagrangeSet(set []int) *lagEntry {
	sorted := make([]int, len(set))
	copy(sorted, set)
	for i := 1; i < len(sorted); i++ { // insertion sort; k+1 is tiny
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	key := make([]byte, 0, 4*len(sorted))
	for _, v := range sorted {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(v))
		key = append(key, b[:]...)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if e, ok := g.lag[string(key)]; ok {
		return e
	}
	le := &lagEntry{idx: sorted}
	for _, i := range sorted {
		lam := g.lagrangeNumerator(sorted, i)
		lam.Lsh(lam, 1) // 2λ
		neg := lam.Sign() < 0
		le.abs = append(le.abs, lam.Abs(lam))
		le.neg = append(le.neg, neg)
	}
	if g.lag == nil || len(g.lag) >= lagCacheCap {
		g.lag = make(map[string]*lagEntry)
	}
	g.lag[string(key)] = le
	return le
}

type rsaSigner struct {
	gk    *rsaGroupKey
	index int
	share *big.Int
	exp   *big.Int // 2Δ·s_i, the fixed PartialSign exponent
}

// newRSASigner precomputes the signer's fixed exponent 2Δ·s_i — it never
// changes between messages, so both Deal and Refresh hoist it here.
func newRSASigner(gk *rsaGroupKey, index int, share *big.Int) *rsaSigner {
	exp := new(big.Int).Lsh(gk.delta, 1) // 2Δ
	exp.Mul(exp, share)
	return &rsaSigner{gk: gk, index: index, share: share, exp: exp}
}

func (s *rsaSigner) Index() int { return s.index }

// PartialSign computes x_i = H(m)^(2Δ·s_i) mod N. The ~modulus-sized
// exponent keeps this in math/big's Exp (whose assembly inner loops win
// at that size); the precomputed exponent and in-place reuse of the
// hashed base trim the per-call overhead.
func (s *rsaSigner) PartialSign(msg []byte) (Partial, error) {
	x := hashToModulus(msg, s.gk.modulus)
	xi := x.Exp(x, s.exp, s.gk.modulus)
	return Partial{Index: s.index, Data: xi.Bytes()}, nil
}

// lagrangeNumerator computes λ^S_{0,i} = Δ · Π_{j∈S, j≠i} j / (j − i),
// which is an integer because Δ = n! absorbs every denominator.
func (g *rsaGroupKey) lagrangeNumerator(set []int, i int) *big.Int {
	num := new(big.Int).Set(g.delta)
	den := big.NewInt(1)
	for _, j := range set {
		if j == i {
			continue
		}
		num.Mul(num, big.NewInt(int64(j)))
		den.Mul(den, big.NewInt(int64(j-i)))
	}
	return num.Div(num, den) // exact by construction
}

// combineScratch pools the working set of Combine/Verify — big.Int
// temporaries plus the Montgomery limb arena — so the steady-state paths
// stop churning allocations.
type combineScratch struct {
	x, q, t big.Int
	xi      []big.Int
	posB    [][]big.Word
	negB    [][]big.Word
	posE    []*big.Int
	negE    []*big.Int
	mont    montScratch
}

var scratchPool = sync.Pool{New: func() any { return new(combineScratch) }}

// Combine implements Shoup's combination: w = Π x_i^(2λ_{0,i}) satisfies
// w^e = H(m)^(4Δ²); with a·4Δ² + b·e = 1 the signature is w^a · H(m)^b.
//
// The product is evaluated in the key's Montgomery context as a single
// fraction P/Q — numerator factors collect the positive signed exponents,
// denominator factors the negative ones, each side one interleaved
// square-and-multiply chain — so exactly one ModInverse runs per call
// (the seed code inverted once per negative exponent) and the Montgomery
// setup that math/big's Exp rebuilds per call is reused from deal time.
// The signature value is identical to the per-factor evaluation — only
// the operation count changes.
func (g *rsaGroupKey) Combine(msg []byte, partials []Partial) (Signature, error) {
	// Select k+1 distinct candidate partials.
	seen := make(map[int]bool)
	var use []Partial
	for _, p := range partials {
		if p.Index < 1 || p.Index > g.n || seen[p.Index] || len(p.Data) == 0 {
			continue
		}
		seen[p.Index] = true
		use = append(use, p)
		if len(use) == g.k+1 {
			break
		}
	}
	if len(use) < g.k+1 {
		return Signature{}, fmt.Errorf("%w: have %d, need %d", ErrTooFewPartials, len(use), g.k+1)
	}
	set := make([]int, len(use))
	for i, p := range use {
		set[i] = p.Index
	}
	lag := g.lagrangeSet(set)

	sc := scratchPool.Get().(*combineScratch)
	defer scratchPool.Put(sc)
	mc := g.mont
	ms := &sc.mont
	ms.reset(mc.k)
	if cap(sc.xi) < len(use) {
		sc.xi = make([]big.Int, len(use))
	}
	sc.xi = sc.xi[:len(use)]

	x := hashToModulusInto(&sc.x, msg, g.modulus)
	xm := mc.toMont(ms, x)

	// Split the partials by Lagrange-coefficient sign: w = num/den.
	posB, posE := sc.posB[:0], sc.posE[:0]
	negB, negE := sc.negB[:0], sc.negE[:0]
	for i, p := range use {
		xi := sc.xi[i].SetBytes(p.Data)
		if xi.Cmp(g.modulus) >= 0 {
			xi.Mod(xi, g.modulus)
		}
		xim := mc.toMont(ms, xi)
		abs, neg := lag.coeff(p.Index)
		if neg {
			negB, negE = append(negB, xim), append(negE, abs)
		} else {
			posB, posE = append(posB, xim), append(posE, abs)
		}
	}
	sc.posB, sc.posE = posB[:0], posE[:0]
	sc.negB, sc.negE = negB[:0], negE[:0]

	num := ms.alloc(mc.k)
	den := ms.alloc(mc.k)
	mc.expChain(ms, num, posB, posE)
	mc.expChain(ms, den, negB, negE)

	// sig = num^a · den^(−a) · x^b. Exactly one of a, b is negative
	// (a·4Δ² + b·e = 1 with both terms positive), so after inverting the
	// negative-exponent operands — both at once via Montgomery's batch-
	// inversion trick, one ModInverse total — the signature is a single
	// two-base chain u^|a| · y^|b| with all-positive exponents.
	sigm := ms.alloc(mc.k)
	u := ms.alloc(mc.k)
	if !g.aNeg { // a > 0, b < 0: sig = (num/den)^a · (x⁻¹)^|b|
		dx := ms.alloc(mc.k)
		mc.mul(dx, den, xm, ms.t)
		inv := sc.t.ModInverse(mc.fromMont(ms, &sc.q, dx), g.modulus)
		if inv == nil {
			return Signature{}, g.diagnoseCombine(sc, lag, use, set)
		}
		im := mc.toMont(ms, inv) // (den·x)⁻¹
		dinv := ms.alloc(mc.k)
		mc.mul(dinv, im, xm, ms.t) // den⁻¹
		xinv := ms.alloc(mc.k)
		mc.mul(xinv, im, den, ms.t) // x⁻¹
		mc.mul(u, num, dinv, ms.t)
		mc.expChain(ms, sigm, [][]big.Word{u, xinv}, []*big.Int{g.aAbs, g.bAbs})
	} else { // a < 0, b > 0: sig = (den/num)^|a| · x^b
		inv := sc.t.ModInverse(mc.fromMont(ms, &sc.q, num), g.modulus)
		if inv == nil {
			return Signature{}, g.diagnoseCombine(sc, lag, use, set)
		}
		im := mc.toMont(ms, inv)
		mc.mul(u, im, den, ms.t)
		mc.expChain(ms, sigm, [][]big.Word{u, xm}, []*big.Int{g.aAbs, g.bAbs})
	}
	// Verify in the Montgomery domain without rehashing: sig^e·R vs x·R.
	chk := ms.alloc(mc.k)
	mc.expChain(ms, chk, [][]big.Word{sigm}, []*big.Int{g.e})
	if !limbEq(chk, xm) {
		return Signature{}, fmt.Errorf("%w: combined signature invalid (corrupt partial among %v)", ErrBadPartial, set)
	}
	sig := mc.fromMont(ms, &sc.t, sigm)
	return Signature{Data: sig.Bytes()}, nil
}

// diagnoseCombine explains a failed inversion during Combine: a partial
// that is itself non-invertible mod N is reported by name; anything else
// surfaces as a failed combined signature over the whole co-signer set.
func (g *rsaGroupKey) diagnoseCombine(sc *combineScratch, lag *lagEntry, use []Partial, set []int) error {
	for i, p := range use {
		if new(big.Int).GCD(nil, nil, &sc.xi[i], g.modulus).Cmp(big.NewInt(1)) != 0 {
			return fmt.Errorf("%w: partial %d not invertible", ErrBadPartial, p.Index)
		}
	}
	return fmt.Errorf("%w: combined signature invalid (corrupt partial among %v)", ErrBadPartial, set)
}

// powSigned computes base^exp mod m for possibly negative exp. It inverts
// once, negates the exponent in place for the Exp call (restoring it
// before returning), and reports an error when base is not invertible —
// the seed code silently produced 0 there, which made bad inputs
// indistinguishable from corrupt partials. Combine evaluates its product
// as a single fraction in Montgomery form instead; this remains the
// reference implementation for the signed-exponent step and cross-checks
// the Montgomery chains in tests.
func powSigned(base, exp, m *big.Int) (*big.Int, error) {
	if exp.Sign() >= 0 {
		return new(big.Int).Exp(base, exp, m), nil
	}
	inv := new(big.Int).ModInverse(base, m)
	if inv == nil {
		return nil, fmt.Errorf("thresh: base not invertible modulo N")
	}
	exp.Neg(exp)
	inv.Exp(inv, exp, m)
	exp.Neg(exp)
	return inv, nil
}

// Verify checks sig^e == H(m) mod N — ordinary RSA verification, exactly
// what a remote recipient of an agreed message performs.
func (g *rsaGroupKey) Verify(msg []byte, sig Signature) error {
	if len(sig.Data) == 0 {
		return ErrBadSignature
	}
	sc := scratchPool.Get().(*combineScratch)
	defer scratchPool.Put(sc)
	s := sc.t.SetBytes(sig.Data)
	if s.Cmp(g.modulus) >= 0 {
		return ErrBadSignature
	}
	mc := g.mont
	ms := &sc.mont
	ms.reset(mc.k)
	x := hashToModulusInto(&sc.x, msg, g.modulus)
	sm := mc.toMont(ms, s)
	xm := mc.toMont(ms, x)
	chk := ms.alloc(mc.k)
	mc.expChain(ms, chk, [][]big.Word{sm}, []*big.Int{g.e})
	if !limbEq(chk, xm) {
		return ErrBadSignature
	}
	return nil
}
