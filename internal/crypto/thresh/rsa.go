package thresh

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"

	"innercircle/internal/crypto/shamir"
)

// RSADealer deals Shoup-style threshold RSA keys. The dealer retains the
// secret modulus totient of every key it deals so it can later run the
// proactive share refresh (see Refresher).
type RSADealer struct {
	// Bits is the modulus size; the paper uses 1024 (ad hoc) and 512
	// (sensor) bit keys.
	Bits int
	// Rand is the entropy source; nil means crypto/rand.Reader.
	Rand io.Reader

	// secrets maps dealt keys to λ(N), needed for Refresh.
	secrets map[*rsaGroupKey]*big.Int
}

func (d *RSADealer) rand() io.Reader {
	if d.Rand != nil {
		return d.Rand
	}
	return rand.Reader
}

// Deal implements Dealer. It generates a fresh RSA modulus, shares the
// private exponent with a degree-k polynomial, and returns the group key
// and n signers.
func (d *RSADealer) Deal(k, n int) (GroupKey, []Signer, error) {
	if k < 0 || n < 1 || k+1 > n {
		return nil, nil, fmt.Errorf("thresh: invalid threshold k=%d n=%d", k, n)
	}
	bits := d.Bits
	if bits == 0 {
		bits = 1024
	}
	if bits < 128 {
		return nil, nil, fmt.Errorf("thresh: modulus too small (%d bits)", bits)
	}
	one := big.NewInt(1)
	var p, q, N, lambda *big.Int
	for {
		var err error
		p, err = rand.Prime(d.rand(), bits/2)
		if err != nil {
			return nil, nil, fmt.Errorf("thresh: generate prime: %w", err)
		}
		q, err = rand.Prime(d.rand(), bits-bits/2)
		if err != nil {
			return nil, nil, fmt.Errorf("thresh: generate prime: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		N = new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda = new(big.Int).Mul(pm1, qm1)
		lambda.Div(lambda, gcd)
		break
	}
	// Public exponent e must be a prime larger than n (so gcd(e, 4Δ²) = 1
	// with Δ = n!) and coprime to λ(N).
	e := big.NewInt(65537)
	for int(e.Int64()) <= n || new(big.Int).GCD(nil, nil, e, lambda).Cmp(one) != 0 {
		e.Add(e, big.NewInt(2))
		for !e.ProbablyPrime(32) {
			e.Add(e, big.NewInt(2))
		}
	}
	dExp := new(big.Int).ModInverse(e, lambda)
	if dExp == nil {
		return nil, nil, fmt.Errorf("thresh: e not invertible mod lambda")
	}
	shares, err := shamir.Split(dExp, k, n, lambda, d.rand())
	if err != nil {
		return nil, nil, fmt.Errorf("thresh: share private exponent: %w", err)
	}
	gk := &rsaGroupKey{k: k, n: n, modulus: N, e: e, delta: factorial(n)}
	if d.secrets == nil {
		d.secrets = make(map[*rsaGroupKey]*big.Int)
	}
	d.secrets[gk] = lambda
	signers := make([]Signer, n)
	for i, s := range shares {
		signers[i] = &rsaSigner{gk: gk, index: s.X, share: s.Y}
	}
	return gk, signers, nil
}

func factorial(n int) *big.Int {
	f := big.NewInt(1)
	for i := 2; i <= n; i++ {
		f.Mul(f, big.NewInt(int64(i)))
	}
	return f
}

// hashToModulus maps msg to an element of Z_N* via SHA-256 expansion.
func hashToModulus(msg []byte, modulus *big.Int) *big.Int {
	need := (modulus.BitLen() + 7) / 8
	var out []byte
	var ctr uint8
	for len(out) < need {
		h := sha256.New()
		_, _ = h.Write([]byte{ctr})
		_, _ = h.Write(msg)
		out = h.Sum(out)
		ctr++
	}
	x := new(big.Int).SetBytes(out[:need])
	x.Mod(x, modulus)
	if x.Sign() == 0 {
		x.SetInt64(1)
	}
	return x
}

type rsaGroupKey struct {
	k, n    int
	modulus *big.Int
	e       *big.Int
	delta   *big.Int // n!
	epoch   uint64   // proactive-refresh epoch, diagnostics only
}

var _ GroupKey = (*rsaGroupKey)(nil)

func (g *rsaGroupKey) Threshold() int { return g.k }
func (g *rsaGroupKey) Players() int   { return g.n }
func (g *rsaGroupKey) SigBytes() int  { return (g.modulus.BitLen() + 7) / 8 }

type rsaSigner struct {
	gk    *rsaGroupKey
	index int
	share *big.Int
}

func (s *rsaSigner) Index() int { return s.index }

// PartialSign computes x_i = H(m)^(2Δ·s_i) mod N.
func (s *rsaSigner) PartialSign(msg []byte) (Partial, error) {
	x := hashToModulus(msg, s.gk.modulus)
	exp := new(big.Int).Lsh(s.gk.delta, 1) // 2Δ
	exp.Mul(exp, s.share)
	xi := new(big.Int).Exp(x, exp, s.gk.modulus)
	return Partial{Index: s.index, Data: xi.Bytes()}, nil
}

// lagrangeNumerator computes λ^S_{0,i} = Δ · Π_{j∈S, j≠i} j / (j − i),
// which is an integer because Δ = n! absorbs every denominator.
func (g *rsaGroupKey) lagrangeNumerator(set []int, i int) *big.Int {
	num := new(big.Int).Set(g.delta)
	den := big.NewInt(1)
	for _, j := range set {
		if j == i {
			continue
		}
		num.Mul(num, big.NewInt(int64(j)))
		den.Mul(den, big.NewInt(int64(j-i)))
	}
	return num.Div(num, den) // exact by construction
}

// Combine implements Shoup's combination: w = Π x_i^(2λ_{0,i}) satisfies
// w^e = H(m)^(4Δ²); with a·4Δ² + b·e = 1 the signature is w^a · H(m)^b.
func (g *rsaGroupKey) Combine(msg []byte, partials []Partial) (Signature, error) {
	// Select k+1 distinct candidate partials.
	seen := make(map[int]bool)
	var use []Partial
	for _, p := range partials {
		if p.Index < 1 || p.Index > g.n || seen[p.Index] || len(p.Data) == 0 {
			continue
		}
		seen[p.Index] = true
		use = append(use, p)
		if len(use) == g.k+1 {
			break
		}
	}
	if len(use) < g.k+1 {
		return Signature{}, fmt.Errorf("%w: have %d, need %d", ErrTooFewPartials, len(use), g.k+1)
	}
	set := make([]int, len(use))
	for i, p := range use {
		set[i] = p.Index
	}
	x := hashToModulus(msg, g.modulus)
	w := big.NewInt(1)
	for _, p := range use {
		xi := new(big.Int).SetBytes(p.Data)
		lam := g.lagrangeNumerator(set, p.Index)
		exp := new(big.Int).Lsh(lam, 1) // 2λ
		var t *big.Int
		if exp.Sign() < 0 {
			inv := new(big.Int).ModInverse(xi, g.modulus)
			if inv == nil {
				return Signature{}, fmt.Errorf("%w: partial %d not invertible", ErrBadPartial, p.Index)
			}
			t = new(big.Int).Exp(inv, new(big.Int).Neg(exp), g.modulus)
		} else {
			t = new(big.Int).Exp(xi, exp, g.modulus)
		}
		w.Mul(w, t)
		w.Mod(w, g.modulus)
	}
	// w^e = x^(4Δ²); find a, b with a·4Δ² + b·e = 1.
	fourDeltaSq := new(big.Int).Mul(g.delta, g.delta)
	fourDeltaSq.Lsh(fourDeltaSq, 2)
	a := new(big.Int)
	b := new(big.Int)
	gcd := new(big.Int).GCD(a, b, fourDeltaSq, g.e)
	if gcd.Cmp(big.NewInt(1)) != 0 {
		return Signature{}, fmt.Errorf("thresh: gcd(4Δ², e) != 1 (e too small for n)")
	}
	sig := new(big.Int).Mul(powSigned(w, a, g.modulus), powSigned(x, b, g.modulus))
	sig.Mod(sig, g.modulus)
	s := Signature{Data: sig.Bytes()}
	if err := g.Verify(msg, s); err != nil {
		return Signature{}, fmt.Errorf("%w: combined signature invalid (corrupt partial among %v)", ErrBadPartial, set)
	}
	return s, nil
}

// powSigned computes base^exp mod m for possibly negative exp.
func powSigned(base, exp, m *big.Int) *big.Int {
	if exp.Sign() >= 0 {
		return new(big.Int).Exp(base, exp, m)
	}
	inv := new(big.Int).ModInverse(base, m)
	if inv == nil {
		return big.NewInt(0)
	}
	return new(big.Int).Exp(inv, new(big.Int).Neg(exp), m)
}

// Verify checks sig^e == H(m) mod N — ordinary RSA verification, exactly
// what a remote recipient of an agreed message performs.
func (g *rsaGroupKey) Verify(msg []byte, sig Signature) error {
	if len(sig.Data) == 0 {
		return ErrBadSignature
	}
	s := new(big.Int).SetBytes(sig.Data)
	if s.Cmp(g.modulus) >= 0 {
		return ErrBadSignature
	}
	x := hashToModulus(msg, g.modulus)
	if new(big.Int).Exp(s, g.e, g.modulus).Cmp(x) != 0 {
		return ErrBadSignature
	}
	return nil
}
