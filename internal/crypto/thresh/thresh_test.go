package thresh

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// dealers returns both scheme dealers; RSA uses a small modulus so the test
// suite stays fast (the scheme is size-agnostic).
func dealers() map[string]Dealer {
	return map[string]Dealer{
		"sim": NewSimDealer([]byte("test-seed"), 128),
		"rsa": &RSADealer{Bits: 512},
	}
}

func TestSignCombineVerify(t *testing.T) {
	for name, d := range dealers() {
		t.Run(name, func(t *testing.T) {
			for _, kn := range []struct{ k, n int }{{1, 3}, {2, 5}, {3, 8}} {
				gk, signers, err := d.Deal(kn.k, kn.n)
				if err != nil {
					t.Fatalf("Deal(%d,%d): %v", kn.k, kn.n, err)
				}
				msg := []byte(fmt.Sprintf("agreed value k=%d", kn.k))
				partials := make([]Partial, 0, kn.k+1)
				for i := 0; i <= kn.k; i++ {
					p, err := signers[i].PartialSign(msg)
					if err != nil {
						t.Fatal(err)
					}
					partials = append(partials, p)
				}
				sig, err := gk.Combine(msg, partials)
				if err != nil {
					t.Fatalf("Combine: %v", err)
				}
				if err := gk.Verify(msg, sig); err != nil {
					t.Fatalf("Verify: %v", err)
				}
			}
		})
	}
}

func TestAnySubsetCombines(t *testing.T) {
	for name, d := range dealers() {
		t.Run(name, func(t *testing.T) {
			const k, n = 2, 6
			gk, signers, err := d.Deal(k, n)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("subset test")
			all := make([]Partial, n)
			for i, s := range signers {
				all[i], err = s.PartialSign(msg)
				if err != nil {
					t.Fatal(err)
				}
			}
			r := rand.New(rand.NewSource(7))
			for trial := 0; trial < 10; trial++ {
				perm := r.Perm(n)
				subset := []Partial{all[perm[0]], all[perm[1]], all[perm[2]]}
				sig, err := gk.Combine(msg, subset)
				if err != nil {
					t.Fatalf("subset %v: %v", perm[:3], err)
				}
				if err := gk.Verify(msg, sig); err != nil {
					t.Fatalf("subset %v verify: %v", perm[:3], err)
				}
			}
		})
	}
}

func TestTooFewPartials(t *testing.T) {
	for name, d := range dealers() {
		t.Run(name, func(t *testing.T) {
			const k, n = 2, 5
			gk, signers, err := d.Deal(k, n)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("m")
			p0, _ := signers[0].PartialSign(msg)
			p1, _ := signers[1].PartialSign(msg)
			if _, err := gk.Combine(msg, []Partial{p0, p1}); !errors.Is(err, ErrTooFewPartials) {
				t.Fatalf("Combine with k partials err = %v, want ErrTooFewPartials", err)
			}
			// Duplicates of the same index do not help.
			if _, err := gk.Combine(msg, []Partial{p0, p0, p0}); !errors.Is(err, ErrTooFewPartials) {
				t.Fatalf("Combine with duplicate partials err = %v, want ErrTooFewPartials", err)
			}
		})
	}
}

func TestSignatureBoundToMessage(t *testing.T) {
	for name, d := range dealers() {
		t.Run(name, func(t *testing.T) {
			gk, signers, err := d.Deal(1, 3)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("original")
			p0, _ := signers[0].PartialSign(msg)
			p1, _ := signers[1].PartialSign(msg)
			sig, err := gk.Combine(msg, []Partial{p0, p1})
			if err != nil {
				t.Fatal(err)
			}
			if err := gk.Verify([]byte("tampered"), sig); err == nil {
				t.Fatal("signature verified for a different message")
			}
		})
	}
}

func TestCorruptPartialRejected(t *testing.T) {
	for name, d := range dealers() {
		t.Run(name, func(t *testing.T) {
			gk, signers, err := d.Deal(1, 3)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("m")
			good, _ := signers[0].PartialSign(msg)
			bad, _ := signers[1].PartialSign([]byte("other message"))
			// The bad partial is for another message: combining must fail
			// (sim: partial check; rsa: final verification catches it).
			if _, err := gk.Combine(msg, []Partial{good, bad}); err == nil {
				t.Fatal("Combine accepted a corrupt partial")
			}
		})
	}
}

func TestCorruptSignatureRejected(t *testing.T) {
	for name, d := range dealers() {
		t.Run(name, func(t *testing.T) {
			gk, signers, err := d.Deal(1, 3)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("m")
			p0, _ := signers[0].PartialSign(msg)
			p1, _ := signers[1].PartialSign(msg)
			sig, err := gk.Combine(msg, []Partial{p0, p1})
			if err != nil {
				t.Fatal(err)
			}
			sig.Data[len(sig.Data)/2] ^= 0x40
			if err := gk.Verify(msg, sig); err == nil {
				t.Fatal("tampered signature verified")
			}
			if err := gk.Verify(msg, Signature{}); err == nil {
				t.Fatal("empty signature verified")
			}
		})
	}
}

func TestPartialsAreNodeSpecific(t *testing.T) {
	for name, d := range dealers() {
		t.Run(name, func(t *testing.T) {
			gk, signers, err := d.Deal(2, 5)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("m")
			// One node replaying its own partial under different claimed
			// indices must not reach the threshold.
			mine, _ := signers[0].PartialSign(msg)
			forged := []Partial{
				mine,
				{Index: 2, Data: mine.Data},
				{Index: 3, Data: mine.Data},
			}
			if _, err := gk.Combine(msg, forged); err == nil {
				t.Fatal("one share impersonated three co-signers")
			}
		})
	}
}

func TestGroupKeyAccessors(t *testing.T) {
	for name, d := range dealers() {
		t.Run(name, func(t *testing.T) {
			gk, signers, err := d.Deal(3, 7)
			if err != nil {
				t.Fatal(err)
			}
			if gk.Threshold() != 3 || gk.Players() != 7 {
				t.Fatalf("Threshold/Players = %d/%d, want 3/7", gk.Threshold(), gk.Players())
			}
			if gk.SigBytes() <= 0 {
				t.Fatal("SigBytes must be positive")
			}
			for i, s := range signers {
				if s.Index() != i+1 {
					t.Fatalf("signer %d has index %d", i, s.Index())
				}
			}
		})
	}
}

func TestInvalidDealParams(t *testing.T) {
	for name, d := range dealers() {
		t.Run(name, func(t *testing.T) {
			for _, kn := range []struct{ k, n int }{{-1, 2}, {3, 3}, {5, 1}} {
				if _, _, err := d.Deal(kn.k, kn.n); err == nil {
					t.Errorf("Deal(%d,%d) succeeded, want error", kn.k, kn.n)
				}
			}
		})
	}
}

func TestDistinctKeysPerDeal(t *testing.T) {
	d := NewSimDealer([]byte("seed"), 64)
	gk1, s1, err := d.Deal(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	gk2, _, err := d.Deal(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	p0, _ := s1[0].PartialSign(msg)
	p1, _ := s1[1].PartialSign(msg)
	sig, err := gk1.Combine(msg, []Partial{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	if err := gk2.Verify(msg, sig); err == nil {
		t.Fatal("signature under key 1 verified under key 2")
	}
}

func TestSimSchemeWireSize(t *testing.T) {
	d := NewSimDealer([]byte("s"), 256)
	gk, _, err := d.Deal(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if gk.SigBytes() != 256 {
		t.Fatalf("SigBytes = %d, want configured 256", gk.SigBytes())
	}
}
