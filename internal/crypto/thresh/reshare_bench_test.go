package thresh

import (
	"fmt"
	"testing"
)

// Reshare-cost benchmarks (recorded in BENCH_reshare.json): what a
// membership epoch transition spends inside the crypto layer — the
// dealerless keygen itself, a full reshare (new Shamir split + precompute
// rebuild + signer exponents), and the bare precompute rebuild the PR
// turned from a birth-time constant into a rebuildable context.

// BenchmarkDKG measures a full dealerless keygen, qualification round
// included, on the paper's sensor parameters (512-bit modulus, 2-of-5).
func BenchmarkDKG(b *testing.B) {
	for _, scheme := range []string{"rsa", "sim"} {
		b.Run(scheme, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var g KeyGenerator
				if scheme == "rsa" {
					g = &RSADealer{Bits: 512}
				} else {
					g = NewSimDealer([]byte(fmt.Sprintf("bench-%d", i)), 128)
				}
				if _, err := g.DKG(DKGConfig{K: 2, N: 5}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchReshareKey deals a private 1024-bit key for the reshare benches:
// they mutate the key in place, so the shared benchDeals cache must not
// see it.
func benchReshareKey(b *testing.B) (*RSADealer, GroupKey) {
	b.Helper()
	d := &RSADealer{Bits: 1024}
	gk, _, err := d.Deal(2, 5)
	if err != nil {
		b.Fatal(err)
	}
	return d, gk
}

// BenchmarkReshare measures moving a dealt key to a new signer set —
// alternating 2-of-5 ↔ 1-of-3 so both shrink and grow paths are timed —
// against the 1024-bit ad hoc key (the expensive case).
func BenchmarkReshare(b *testing.B) {
	d, gk := benchReshareKey(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if i%2 == 0 {
			_, err = d.Reshare(gk, 1, 3)
		} else {
			_, err = d.Reshare(gk, 2, 5)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrecomputeRebuild isolates the Shoup-context rebuild (Δ = n!,
// 4Δ², extended-Euclid pair, Lagrange memo drop) a reshare performs on
// the group key, without the Shamir resplit or signer construction.
func BenchmarkPrecomputeRebuild(b *testing.B) {
	_, gk := benchReshareKey(b)
	rk := gk.(*rsaGroupKey)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rk.reshare(2, 5); err != nil {
			b.Fatal(err)
		}
	}
}
