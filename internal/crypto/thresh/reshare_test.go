package thresh

import (
	"testing"
)

// resharers returns both dealers in their Resharer role.
func resharers() map[string]interface {
	Dealer
	Resharer
} {
	return map[string]interface {
		Dealer
		Resharer
	}{
		"sim": NewSimDealer([]byte("reshare-test"), 128),
		"rsa": &RSADealer{Bits: 512},
	}
}

// TestResharePreservesPublicKey pins the acceptance criterion: a reshare
// to a new (k, n) keeps the public key — for threshold RSA, signatures
// combined before the reshare still verify afterwards — while the new
// signer set signs through the same key object. The sim scheme's share
// keys *are* its verification state, so its old signatures expire with
// the epoch (the documented analogue of its refresh semantics).
func TestResharePreservesPublicKey(t *testing.T) {
	for name, d := range resharers() {
		t.Run(name, func(t *testing.T) {
			gk, old, err := d.Deal(2, 5)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("reshare test")
			oldSig := signWith(t, gk, old, []int{1, 2, 3}, msg)
			before := gk.(Epoched).Epoch()

			fresh, err := d.Reshare(gk, 1, 3)
			if err != nil {
				t.Fatal(err)
			}
			if gk.Threshold() != 1 || gk.Players() != 3 {
				t.Fatalf("key reports (%d, %d), want (1, 3)", gk.Threshold(), gk.Players())
			}
			if got := gk.(Epoched).Epoch(); got != before+1 {
				t.Fatalf("epoch %d after reshare, want %d", got, before+1)
			}
			if name == "rsa" {
				if err := gk.Verify(msg, oldSig); err != nil {
					t.Fatalf("pre-reshare signature invalidated: %v", err)
				}
			} else {
				if err := gk.Verify(msg, oldSig); err == nil {
					t.Fatal("sim signature survived a reshare epoch")
				}
			}
			signWith(t, gk, fresh, []int{1, 3}, msg)
		})
	}
}

// TestReshareGrowsQuorum: joins can raise both the player count and the
// threshold; share indices beyond the original n become valid.
func TestReshareGrowsQuorum(t *testing.T) {
	for name, d := range resharers() {
		t.Run(name, func(t *testing.T) {
			gk, _, err := d.Deal(1, 3)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := d.Reshare(gk, 2, 6)
			if err != nil {
				t.Fatal(err)
			}
			if len(fresh) != 6 {
				t.Fatalf("got %d signers, want 6", len(fresh))
			}
			signWith(t, gk, fresh, []int{4, 5, 6}, []byte("grown"))
		})
	}
}

// TestReshareStaleSharesRejected: shares from before the reshare must not
// combine with fresh ones — the share polynomial (and, when n changes,
// the Δ = n! the partial exponents bake in) has moved. A *complete* stale
// quorum is a different matter: under RSA it still interpolates to the
// unchanged private exponent (those nodes could already sign together
// before the reshare, so nothing is lost), while the sim scheme's rotated
// share keys reject stale partials outright.
func TestReshareStaleSharesRejected(t *testing.T) {
	for name, d := range resharers() {
		t.Run(name, func(t *testing.T) {
			gk, old, err := d.Deal(1, 4)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("stale")
			stale0, err := old[0].PartialSign(msg)
			if err != nil {
				t.Fatal(err)
			}
			stale1, err := old[1].PartialSign(msg)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := d.Reshare(gk, 1, 4)
			if err != nil {
				t.Fatal(err)
			}
			if name == "sim" {
				if _, err := gk.Combine(msg, []Partial{stale0, stale1}); err == nil {
					t.Fatal("stale sim shares combined after a reshare")
				}
			}
			p2, err := fresh[2].PartialSign(msg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := gk.Combine(msg, []Partial{stale0, p2}); err == nil {
				t.Fatal("stale share combined with a fresh one")
			}
			signWith(t, gk, fresh, []int{1, 2}, msg)
		})
	}
}

// TestRepeatedReshares drives the key through shrink/grow cycles,
// exercising the Lagrange-memo and Shoup-constant rebuild each time.
func TestRepeatedReshares(t *testing.T) {
	for name, d := range resharers() {
		t.Run(name, func(t *testing.T) {
			gk, signers, err := d.Deal(2, 5)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("cycles")
			signWith(t, gk, signers, []int{1, 2, 3}, msg)
			shapes := []struct{ k, n int }{{1, 3}, {3, 7}, {2, 5}, {1, 2}}
			for step, sh := range shapes {
				signers, err = d.Reshare(gk, sh.k, sh.n)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				quorum := make([]int, sh.k+1)
				for i := range quorum {
					quorum[i] = i + 1
				}
				signWith(t, gk, signers, quorum, msg)
				if got := gk.(Epoched).Epoch(); got != uint64(step+1) {
					t.Fatalf("step %d: epoch %d", step, got)
				}
			}
		})
	}
}

func TestReshareInvalidParams(t *testing.T) {
	for name, d := range resharers() {
		t.Run(name, func(t *testing.T) {
			gk, _, err := d.Deal(1, 3)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.Reshare(gk, 3, 3); err == nil {
				t.Fatal("accepted k+1 > n")
			}
			if _, err := d.Reshare(gk, 1, 0); err == nil {
				t.Fatal("accepted n=0")
			}
			if got := gk.(Epoched).Epoch(); got != 0 {
				t.Fatalf("failed reshare bumped the epoch to %d", got)
			}
		})
	}
}

func TestReshareForeignKeyRejected(t *testing.T) {
	rsa1 := &RSADealer{Bits: 512}
	rsa2 := &RSADealer{Bits: 512}
	gk, _, err := rsa1.Deal(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rsa2.Reshare(gk, 1, 3); err == nil {
		t.Fatal("dealer reshared a key it did not deal")
	}
	sim := NewSimDealer([]byte("x"), 64)
	if _, err := sim.Reshare(gk, 1, 3); err == nil {
		t.Fatal("sim dealer reshared an RSA key")
	}
}

// TestReshareThenRefresh: the two lifecycle operations compose — a
// proactive refresh keeps working at the post-reshare shape.
func TestReshareThenRefresh(t *testing.T) {
	d := &RSADealer{Bits: 512}
	gk, _, err := d.Deal(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := d.Reshare(gk, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	refreshed, err := d.Refresh(gk, fresh)
	if err != nil {
		t.Fatalf("refresh after reshare: %v", err)
	}
	signWith(t, gk, refreshed, []int{2, 3}, []byte("composed"))
	if got := gk.(Epoched).Epoch(); got != 2 {
		t.Fatalf("epoch %d after reshare+refresh, want 2", got)
	}
}
