package thresh

import (
	"errors"
	"math/big"
	"strings"
	"testing"
)

func dealRSA(t *testing.T, k, n int) (GroupKey, []Signer, *rsaGroupKey) {
	t.Helper()
	d := &RSADealer{Bits: 512}
	gk, signers, err := d.Deal(k, n)
	if err != nil {
		t.Fatal(err)
	}
	return gk, signers, gk.(*rsaGroupKey)
}

func signAll(t *testing.T, signers []Signer, msg []byte) []Partial {
	t.Helper()
	parts := make([]Partial, len(signers))
	for i, s := range signers {
		p, err := s.PartialSign(msg)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = p
	}
	return parts
}

// TestCombineSkipsDuplicateIndices feeds Combine repeated copies of the
// same partial alongside distinct ones: duplicates must not count toward
// the k+1 quorum, and the result must match the clean combination.
func TestCombineSkipsDuplicateIndices(t *testing.T) {
	gk, signers, _ := dealRSA(t, 2, 5)
	msg := []byte("dup-indices")
	parts := signAll(t, signers, msg)
	clean, err := gk.Combine(msg, parts[:3])
	if err != nil {
		t.Fatal(err)
	}
	// Two copies of partial 1 in front: selection must skip the duplicate
	// and still assemble {1, 2, 3}.
	padded := []Partial{parts[0], parts[0], parts[0], parts[1], parts[2]}
	got, err := gk.Combine(msg, padded)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data) != string(clean.Data) {
		t.Fatal("duplicate-laden combine differs from clean combine")
	}
	// Duplicates alone cannot reach the quorum.
	dupOnly := []Partial{parts[0], parts[0], parts[1], parts[1]}
	if _, err := gk.Combine(msg, dupOnly); !errors.Is(err, ErrTooFewPartials) {
		t.Fatalf("want ErrTooFewPartials for duplicate-only set, got %v", err)
	}
}

// TestCombineExactlyKPartials checks the boundary: k partials (one short
// of the k+1 quorum) must fail with ErrTooFewPartials, k+1 must succeed.
func TestCombineExactlyKPartials(t *testing.T) {
	gk, signers, _ := dealRSA(t, 2, 5)
	msg := []byte("quorum-boundary")
	parts := signAll(t, signers, msg)
	if _, err := gk.Combine(msg, parts[:2]); !errors.Is(err, ErrTooFewPartials) {
		t.Fatalf("k partials: want ErrTooFewPartials, got %v", err)
	}
	if _, err := gk.Combine(msg, parts[:3]); err != nil {
		t.Fatalf("k+1 partials: %v", err)
	}
}

// TestCombineCorruptPartialNamesSet corrupts one partial among k+1:
// Combine must fail with ErrBadPartial and its message must name the
// offending co-signer set so the caller's leave-one-out fallback (and a
// human reading the log) can localize the liar.
func TestCombineCorruptPartialNamesSet(t *testing.T) {
	gk, signers, _ := dealRSA(t, 2, 5)
	msg := []byte("corrupt-partial")
	parts := signAll(t, signers, msg)
	bad := append([]Partial(nil), parts[:3]...)
	bad[1].Data = append([]byte(nil), bad[1].Data...)
	bad[1].Data[0] ^= 0x40
	_, err := gk.Combine(msg, bad)
	if !errors.Is(err, ErrBadPartial) {
		t.Fatalf("want ErrBadPartial, got %v", err)
	}
	if !strings.Contains(err.Error(), "[1 2 3]") {
		t.Fatalf("error %q does not name the co-signer set [1 2 3]", err)
	}
	// A zeroed partial is not invertible mod N: the diagnosis must point
	// at the exact index rather than the whole set.
	zeroed := append([]Partial(nil), parts[:3]...)
	zeroed[2].Data = []byte{0}
	_, err = gk.Combine(msg, zeroed)
	if !errors.Is(err, ErrBadPartial) {
		t.Fatalf("want ErrBadPartial for zero partial, got %v", err)
	}
	if !strings.Contains(err.Error(), "partial 3 not invertible") {
		t.Fatalf("error %q does not localize the non-invertible partial", err)
	}
}

// TestVerifyPartialWrongMessage checks the individually checkable (keyed
// MAC) scheme: a partial over one message must not verify against another.
func TestVerifyPartialWrongMessage(t *testing.T) {
	gk, signers, err := NewSimDealer([]byte("edge"), 128).Deal(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	pv, ok := gk.(PartialVerifier)
	if !ok {
		t.Fatal("sim scheme must be a PartialVerifier")
	}
	p, err := signers[0].PartialSign([]byte("right message"))
	if err != nil {
		t.Fatal(err)
	}
	if !pv.VerifyPartial([]byte("right message"), p) {
		t.Fatal("genuine partial rejected")
	}
	if pv.VerifyPartial([]byte("wrong message"), p) {
		t.Fatal("partial verified against a different message")
	}
	if pv.VerifyPartial([]byte("right message"), Partial{Index: 99, Data: p.Data}) {
		t.Fatal("out-of-range index verified")
	}
}

// powSigned is the reference scalar helper behind the Montgomery fast
// path (and referenceCombine's workhorse): b^e mod m for signed e.
func TestPowSigned(t *testing.T) {
	m := big.NewInt(101) // prime modulus: everything nonzero is invertible
	base := big.NewInt(7)

	pos, err := powSigned(base, big.NewInt(4), m)
	if err != nil || pos.Int64() != 7*7*7*7%101 {
		t.Fatalf("positive exponent: got %v, %v", pos, err)
	}

	exp := big.NewInt(-3)
	neg, err := powSigned(base, exp, m)
	if err != nil {
		t.Fatal(err)
	}
	// b^-3 * b^3 == 1 (mod m).
	check := new(big.Int).Exp(base, big.NewInt(3), m)
	check.Mul(check, neg).Mod(check, m)
	if check.Int64() != 1 {
		t.Fatalf("b^-3 * b^3 = %v, want 1", check)
	}
	// The exponent is negated in place and must be restored on return.
	if exp.Int64() != -3 {
		t.Fatalf("caller's exponent mutated: %v", exp)
	}

	// Non-invertible base with a negative exponent is an error, not a
	// silent nil or zero result.
	mm := big.NewInt(100)
	if _, err := powSigned(big.NewInt(10), big.NewInt(-1), mm); err == nil {
		t.Fatal("non-invertible base accepted")
	}
	if exp.Int64() != -3 {
		t.Fatalf("exponent mutated on error path: %v", exp)
	}
}
