package traffic

import (
	"fmt"

	"innercircle/internal/sim"
)

// CBR is the paper's constant-bit-rate workload (Fig. 7 box): Connections
// point-to-point flows between endpoints drawn without replacement from
// the node population, each sending Rate packets/s of PacketBytes from a
// jittered start at From. Payloads are strings "c<conn>-<seq>" so sinks
// can attribute deliveries.
type CBR struct {
	Connections int      `json:"connections"`
	Rate        float64  `json:"rate"` // packets per second
	PacketBytes int      `json:"packet_bytes"`
	From        sim.Time `json:"from"` // earliest start; each flow adds a jitter of up to one interval
}

// Validate implements Program. CBR reserves its 2·Connections endpoints.
func (c *CBR) Validate(n int) (int, error) {
	if c.Connections < 0 {
		return 0, fmt.Errorf("traffic: cbr needs connections >= 0, got %d", c.Connections)
	}
	if c.Connections > 0 && c.Rate <= 0 {
		return 0, fmt.Errorf("traffic: cbr needs rate > 0, got %g", c.Rate)
	}
	if c.Connections > 0 && c.PacketBytes <= 0 {
		return 0, fmt.Errorf("traffic: cbr needs packet bytes > 0, got %d", c.PacketBytes)
	}
	reserved := 2 * c.Connections
	if reserved > n {
		return 0, fmt.Errorf("traffic: %d nodes cannot host %d cbr connections", n, c.Connections)
	}
	return reserved, nil
}

// Plan implements Program: it permutes the population and pairs off the
// head as connection endpoints. The permutation's tail is the plan's
// attacker-selection order.
func (c *CBR) Plan(deps Deps) (Plan, error) {
	if _, err := c.Validate(deps.N); err != nil {
		return nil, err
	}
	if c.Connections > 0 && deps.Unicast == nil {
		return nil, fmt.Errorf("traffic: cbr needs a unicast send path (no routing component registered one)")
	}
	perm := deps.RNG.Perm(deps.N)
	p := &cbrPlan{cfg: *c, deps: deps, order: perm[2*c.Connections:]}
	p.conns = make([]cbrConn, c.Connections)
	for i := range p.conns {
		p.conns[i] = cbrConn{src: perm[2*i], dst: perm[2*i+1]}
	}
	return p, nil
}

type cbrConn struct{ src, dst int }

type cbrPlan struct {
	cfg   CBR
	deps  Deps
	conns []cbrConn
	order []int
	sent  int
}

// Order implements Orderer: the population minus the reserved endpoints,
// in permutation order.
func (p *cbrPlan) Order() []int { return p.order }

// Sent implements Sender.
func (p *cbrPlan) Sent() int { return p.sent }

// Start schedules every flow's tick chain. Each tick re-checks the clock
// so no packet is generated at or past Deps.End, even if the kernel keeps
// running.
func (p *cbrPlan) Start() {
	interval := sim.Duration(1 / p.cfg.Rate)
	for ci, c := range p.conns {
		ci, c := ci, c
		start := p.cfg.From + p.deps.RNG.Jitter(interval)
		seq := 0
		var tick func()
		tick = func() {
			if p.deps.K.Now() >= p.deps.End {
				return
			}
			p.sent++
			seq++
			p.deps.Unicast(c.src, c.dst, fmt.Sprintf("c%d-%d", ci, seq), p.cfg.PacketBytes)
			p.deps.K.ScheduleFire(interval, tick)
		}
		p.deps.K.ScheduleFire(start, tick)
	}
}
