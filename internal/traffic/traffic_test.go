package traffic

import (
	"fmt"
	"reflect"
	"testing"

	"innercircle/internal/sim"
)

// record is one injected packet, captured with its generation time.
type record struct {
	at       sim.Time
	src, dst int
	payload  string
	size     int
}

// runCBR plans and runs a CBR program on a fresh kernel, returning the
// packet log, the plan's attacker order, and the sent count.
func runCBR(t *testing.T, seed int64, cfg CBR, n int, end sim.Time) ([]record, []int, int) {
	t.Helper()
	k := sim.NewKernel()
	var got []record
	deps := Deps{
		K:   k,
		RNG: sim.NewRNG(seed).Split("traffic"),
		N:   n,
		End: end,
		Unicast: func(src, dst int, payload any, size int) {
			got = append(got, record{k.Now(), src, dst, fmt.Sprint(payload), size})
		},
	}
	plan, err := cfg.Plan(deps)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	plan.Start()
	// Run well past End: the clock guard, not the kernel horizon, must
	// bound generation.
	if err := k.Run(end * 4); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return got, plan.(Orderer).Order(), plan.(Sender).Sent()
}

// Satellite 3a: two runs with the same seed must produce the identical
// packet schedule — same endpoints, same jittered start times, same
// payload sequence — while a different seed must not.
func TestCBRJitterDeterminism(t *testing.T) {
	cfg := CBR{Connections: 4, Rate: 2, PacketBytes: 512}
	a, orderA, sentA := runCBR(t, 42, cfg, 20, 10)
	b, orderB, sentB := runCBR(t, 42, cfg, 20, 10)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", a, b)
	}
	if !reflect.DeepEqual(orderA, orderB) || sentA != sentB {
		t.Fatalf("same seed diverged in order/sent: %v/%d vs %v/%d", orderA, sentA, orderB, sentB)
	}
	if sentA != len(a) || sentA == 0 {
		t.Fatalf("sent = %d, log = %d packets", sentA, len(a))
	}
	c, _, _ := runCBR(t, 43, cfg, 20, 10)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// Satellite 3b: generation stops strictly before End even though the
// kernel keeps running events past it.
func TestCBRStopsAtEnd(t *testing.T) {
	const end = sim.Time(5)
	got, _, sent := runCBR(t, 7, CBR{Connections: 3, Rate: 10, PacketBytes: 64}, 12, end)
	if len(got) == 0 {
		t.Fatal("no packets generated")
	}
	for _, r := range got {
		if r.at >= end {
			t.Fatalf("packet generated at %v, at/past end %v", r.at, end)
		}
	}
	if sent != len(got) {
		t.Fatalf("sent = %d, log = %d", sent, len(got))
	}
}

// The permutation's head is reserved for endpoints; Order is the tail and
// must exclude every endpoint.
func TestCBROrderExcludesEndpoints(t *testing.T) {
	const n = 16
	cfg := CBR{Connections: 5, Rate: 1, PacketBytes: 100}
	got, order, _ := runCBR(t, 11, cfg, n, 3)
	if want := n - 2*cfg.Connections; len(order) != want {
		t.Fatalf("order has %d nodes, want %d", len(order), want)
	}
	endpoints := map[int]bool{}
	for _, r := range got {
		endpoints[r.src] = true
		endpoints[r.dst] = true
	}
	for _, id := range order {
		if endpoints[id] {
			t.Fatalf("node %d is both endpoint and in attacker order", id)
		}
	}
}

func TestCBRValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  CBR
		n    int
		ok   bool
		res  int
	}{
		{"ok", CBR{Connections: 3, Rate: 4, PacketBytes: 512}, 10, true, 6},
		{"zero conns", CBR{}, 4, true, 0},
		{"negative conns", CBR{Connections: -1}, 10, false, 0},
		{"bad rate", CBR{Connections: 1, Rate: 0, PacketBytes: 10}, 10, false, 0},
		{"bad bytes", CBR{Connections: 1, Rate: 1, PacketBytes: 0}, 10, false, 0},
		{"too many conns", CBR{Connections: 6, Rate: 1, PacketBytes: 1}, 10, false, 0},
	}
	for _, tc := range cases {
		res, err := tc.cfg.Validate(tc.n)
		if tc.ok && (err != nil || res != tc.res) {
			t.Errorf("%s: got (%d, %v), want (%d, nil)", tc.name, res, err, tc.res)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestCBRNeedsUnicast(t *testing.T) {
	deps := Deps{K: sim.NewKernel(), RNG: sim.NewRNG(1), N: 10, End: 5}
	if _, err := (&CBR{Connections: 1, Rate: 1, PacketBytes: 1}).Plan(deps); err == nil {
		t.Fatal("expected error when Unicast is nil")
	}
}

// Epochs must fire 1..k strictly before End, at multiples of Period.
func TestEpochsSchedule(t *testing.T) {
	k := sim.NewKernel()
	var fired []int64
	var times []sim.Time
	e := &Epochs{Period: 2, OnEpoch: func(epoch int64, now sim.Time) {
		fired = append(fired, epoch)
		times = append(times, now)
	}}
	plan, err := e.Plan(Deps{K: k, RNG: sim.NewRNG(1), N: 5, End: 9})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	plan.Start()
	if err := k.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if want := []int64{1, 2, 3, 4}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("epochs fired %v, want %v", fired, want)
	}
	for i, at := range times {
		if want := sim.Time(2 * (i + 1)); at != want {
			t.Fatalf("epoch %d at %v, want %v", i+1, at, want)
		}
	}
}

func TestEpochsValidate(t *testing.T) {
	if _, err := (&Epochs{Period: 0, OnEpoch: func(int64, sim.Time) {}}).Validate(5); err == nil {
		t.Fatal("expected error for period 0")
	}
	if _, err := (&Epochs{Period: 1}).Validate(5); err == nil {
		t.Fatal("expected error for nil callback")
	}
}
