package traffic

import (
	"fmt"

	"innercircle/internal/sim"
)

// Epochs drives a synchronized duty-cycled workload (the Fig. 8 sensing
// pattern): OnEpoch fires at every multiple of Period — epoch 1 at
// Period, epoch 2 at 2·Period, ... — until the end of simulated time.
// The epoch callback draws nothing from the traffic stream; scenario
// components hook their per-epoch work (sampling, proposing) onto it.
type Epochs struct {
	Period  sim.Duration
	OnEpoch func(epoch int64, now sim.Time)
}

// Validate implements Program. Epochs reserves no nodes.
func (e *Epochs) Validate(int) (int, error) {
	if e.Period <= 0 {
		return 0, fmt.Errorf("traffic: epochs needs period > 0, got %v", e.Period)
	}
	if e.OnEpoch == nil {
		return 0, fmt.Errorf("traffic: epochs needs an OnEpoch callback")
	}
	return 0, nil
}

// Plan implements Program.
func (e *Epochs) Plan(deps Deps) (Plan, error) {
	if _, err := e.Validate(deps.N); err != nil {
		return nil, err
	}
	return &epochPlan{cfg: *e, deps: deps}, nil
}

type epochPlan struct {
	cfg  Epochs
	deps Deps
}

// Start schedules the epoch chain. Each firing re-checks the clock, so no
// epoch triggers at or past Deps.End.
func (p *epochPlan) Start() {
	epoch := int64(0)
	var fire func()
	fire = func() {
		now := p.deps.K.Now()
		if now >= p.deps.End {
			return
		}
		epoch++
		p.cfg.OnEpoch(epoch, now)
		p.deps.K.MustSchedule(p.cfg.Period, fire)
	}
	p.deps.K.MustSchedule(p.cfg.Period, fire)
}
