package traffic

import (
	"fmt"

	"innercircle/internal/sim"
)

// Epochs drives a synchronized duty-cycled workload (the Fig. 8 sensing
// pattern): OnEpoch fires at every multiple of Period — epoch 1 at
// Period, epoch 2 at 2·Period, ... — until the end of simulated time.
// The epoch callback draws nothing from the traffic stream; scenario
// components hook their per-epoch work (sampling, proposing) onto it.
type Epochs struct {
	Period  sim.Duration
	OnEpoch func(epoch int64, now sim.Time)
	// OnNode, when set, makes the program shard-capable: on a partitioned
	// replica every shard runs its own epoch chain, invoking OnNode for the
	// shard's nodes in ascending index order instead of one global OnEpoch.
	// The two hooks must be behaviorally equivalent — OnEpoch applied to
	// all nodes must equal OnNode applied per node — which holds whenever
	// the per-node work touches only that node's state. Single-kernel
	// replicas always use OnEpoch, preserving the exact legacy event
	// sequence.
	OnNode func(epoch int64, now sim.Time, node int)
}

// ShardCapable implements the traffic.ShardCapable marker.
func (e *Epochs) ShardCapable() bool { return e.OnNode != nil }

// Validate implements Program. Epochs reserves no nodes.
func (e *Epochs) Validate(int) (int, error) {
	if e.Period <= 0 {
		return 0, fmt.Errorf("traffic: epochs needs period > 0, got %v", e.Period)
	}
	if e.OnEpoch == nil {
		return 0, fmt.Errorf("traffic: epochs needs an OnEpoch callback")
	}
	return 0, nil
}

// Plan implements Program.
func (e *Epochs) Plan(deps Deps) (Plan, error) {
	if _, err := e.Validate(deps.N); err != nil {
		return nil, err
	}
	return &epochPlan{cfg: *e, deps: deps}, nil
}

type epochPlan struct {
	cfg  Epochs
	deps Deps
}

// Start schedules the epoch chain — one global chain on a single kernel,
// or one chain per shard on a partitioned replica. Each firing re-checks
// the clock, so no epoch triggers at or past Deps.End.
func (p *epochPlan) Start() {
	if p.deps.Set != nil && p.deps.Set.Shards() > 1 && p.cfg.OnNode != nil {
		p.startSharded()
		return
	}
	epoch := int64(0)
	var fire func()
	fire = func() {
		now := p.deps.K.Now()
		if now >= p.deps.End {
			return
		}
		epoch++
		p.cfg.OnEpoch(epoch, now)
		p.deps.K.ScheduleFire(p.cfg.Period, fire)
	}
	p.deps.K.ScheduleFire(p.cfg.Period, fire)
}

// startSharded runs one epoch chain per shard. All chains fire at the same
// virtual instants (multiples of Period), each invoking OnNode for its own
// shard's nodes in ascending index order — the same per-node call set as
// the global chain, partitioned by ownership so no shard touches another
// shard's state.
func (p *epochPlan) startSharded() {
	set := p.deps.Set
	nodes := make([][]int, set.Shards())
	for i := 0; i < p.deps.N; i++ {
		s := p.deps.NodeShard(i)
		nodes[s] = append(nodes[s], i)
	}
	for s := range nodes {
		s := s
		k := set.Kernel(s)
		epoch := int64(0)
		var fire func()
		fire = func() {
			now := k.Now()
			if now >= p.deps.End {
				return
			}
			epoch++
			for _, i := range nodes[s] {
				p.cfg.OnNode(epoch, now, i)
			}
			k.ScheduleFire(p.cfg.Period, fire)
		}
		k.ScheduleFire(p.cfg.Period, fire)
	}
}
