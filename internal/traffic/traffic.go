// Package traffic provides declarative application-workload programs for
// the scenario layer (internal/scenario). A Program describes *what*
// traffic a scenario carries — CBR connection sets, synchronized sensing
// epochs — independent of the node stack that carries it; the scenario
// runner instantiates the program into a Plan wired to one replica's
// kernel and RNG stream.
//
// Determinism contract: every random choice a program makes is drawn from
// Deps.RNG, the scenario seed's dedicated "traffic" stream, in a fixed
// order — endpoint selection at Plan time, per-flow jitters at Start time
// — so the same seed always reproduces the same packet schedule.
package traffic

import "innercircle/internal/sim"

// Deps is the substrate a Program drives. The scenario runner fills it;
// tests can construct one directly around a bare kernel.
type Deps struct {
	K *sim.Kernel
	// RNG is the scenario's dedicated traffic stream (seed split
	// "traffic"); all of a program's draws come from it.
	RNG *sim.RNG
	// N is the network size.
	N int
	// End is the end of simulated time: no payload is generated at or
	// past it.
	End sim.Time
	// Unicast injects one application packet from node src to node dst.
	// Programs generating point-to-point traffic require it; the scenario
	// runner wires it to the routing component's send path.
	Unicast func(src, dst int, payload any, sizeBytes int)

	// Set and NodeShard describe a partitioned replica (sim.ShardSet):
	// NodeShard maps a node index to its home shard. Both are nil on a
	// single-kernel replica. A shard-capable plan must drive each node's
	// work from its home shard's kernel; programs that cannot do so must
	// not report ShardCapable, and the scenario runner then falls back to
	// one shard.
	Set       *sim.ShardSet
	NodeShard func(i int) int
}

// Program is a declarative application workload.
type Program interface {
	// Validate checks static parameters against the network size n and
	// returns the number of nodes the program reserves exclusively
	// (adversary count-selectors must not target reserved nodes).
	Validate(n int) (reserved int, err error)
	// Plan draws the program's random choices (endpoints, phases) from
	// deps.RNG and returns the replica-bound plan. Plan must not schedule
	// kernel events; that happens in Plan.Start.
	Plan(deps Deps) (Plan, error)
}

// Plan is a Program instantiated for one replica.
type Plan interface {
	// Start schedules the workload's kernel events. The scenario runner
	// calls it after the adversary is wired and protocol services are
	// started, so the first packets see a converging network.
	Start()
}

// ShardCapable is implemented by programs that can drive a partitioned
// replica (per-node work on per-shard kernels). Programs that do not
// implement it — or report false — force the scenario runner back to a
// single shard.
type ShardCapable interface {
	ShardCapable() bool
}

// Orderer is implemented by plans that define the attacker-selection
// order for count-selected adversaries: the node population with the
// plan's reserved endpoints removed (an attacker that is itself a traffic
// endpoint would trivially zero its own flow).
type Orderer interface {
	Order() []int
}

// Sender is implemented by plans that count the packets they injected;
// the scenario harvest folds the count into the run's "sent" counter.
type Sender interface {
	Sent() int
}
