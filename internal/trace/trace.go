// Package trace provides wire-level event tracing for simulated networks:
// a bounded in-memory event log fed by link-layer observers, with
// per-message-type counters. It exists for debugging protocol runs and for
// the cmd tools' -trace flags; tracing off (a nil Tracer) costs nothing.
package trace

import (
	"fmt"
	"io"
	"sort"

	"innercircle/internal/link"
	"innercircle/internal/sim"
)

// Dir distinguishes transmitted from received events.
type Dir int

// Directions.
const (
	Out Dir = iota + 1
	In
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	switch d {
	case Out:
		return "tx"
	case In:
		return "rx"
	default:
		return "??"
	}
}

// Event is one observed message.
type Event struct {
	At    sim.Time
	Node  link.NodeID
	Dir   Dir
	Peer  link.NodeID // destination (tx) or source (rx)
	Type  string      // Go type name of the message
	Bytes int
}

// String renders one log line.
func (e Event) String() string {
	arrow := "->"
	if e.Dir == In {
		arrow = "<-"
	}
	return fmt.Sprintf("%12.6f node %3d %s %3d  %-24s %4d B", float64(e.At), e.Node, arrow, e.Peer, e.Type, e.Bytes)
}

// Tracer accumulates events up to a capacity (older events are dropped
// first) and counts every message type seen. Not safe for concurrent use —
// simulations are single-threaded, so a Tracer must be owned by exactly
// one replica. In particular, never put one Tracer into a sweep's base
// config: the parallel worker pool runs replicas concurrently, and a
// shared tracer's event and counter maps would race. The sweep entry
// points reject such configs; single-replica runs (RunBlackhole with a
// hand-built config, the cmd tools' -trace flags) are the intended users.
type Tracer struct {
	now    func() sim.Time
	cap    int
	events []Event
	counts map[string]uint64
	bytes  map[string]uint64
}

// New returns a tracer that keeps at most capacity events (0 means
// counters only). The clock is bound later (node.Build calls SetClock);
// until then events are stamped zero.
func New(capacity int) *Tracer {
	return &Tracer{
		now:    func() sim.Time { return 0 },
		cap:    capacity,
		counts: make(map[string]uint64),
		bytes:  make(map[string]uint64),
	}
}

// SetClock binds the virtual clock used to timestamp events.
func (t *Tracer) SetClock(now func() sim.Time) { t.now = now }

// record adds one event.
func (t *Tracer) record(node link.NodeID, dir Dir, peer link.NodeID, msg link.Message) {
	name := fmt.Sprintf("%T", msg)
	if dir == Out {
		t.counts[name]++
		t.bytes[name] += uint64(msg.Size())
	}
	if t.cap == 0 {
		return
	}
	if len(t.events) >= t.cap {
		copy(t.events, t.events[1:])
		t.events = t.events[:len(t.events)-1]
	}
	t.events = append(t.events, Event{
		At: t.now(), Node: node, Dir: dir, Peer: peer, Type: name, Bytes: msg.Size(),
	})
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event { return append([]Event(nil), t.events...) }

// Counts returns transmissions per message type.
func (t *Tracer) Counts() map[string]uint64 {
	out := make(map[string]uint64, len(t.counts))
	for k, v := range t.counts {
		out[k] = v
	}
	return out
}

// Bytes returns transmitted bytes per message type.
func (t *Tracer) Bytes() map[string]uint64 {
	out := make(map[string]uint64, len(t.bytes))
	for k, v := range t.bytes {
		out[k] = v
	}
	return out
}

// WriteSummary prints per-type transmission counts and bytes, largest
// byte-volume first — the traffic breakdown of a run.
func (t *Tracer) WriteSummary(w io.Writer) {
	type row struct {
		name  string
		n     uint64
		bytes uint64
	}
	rows := make([]row, 0, len(t.counts))
	for name, n := range t.counts {
		rows = append(rows, row{name: name, n: n, bytes: t.bytes[name]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].bytes != rows[j].bytes {
			return rows[i].bytes > rows[j].bytes
		}
		return rows[i].name < rows[j].name
	})
	fmt.Fprintf(w, "%-32s %10s %12s\n", "message type", "sent", "bytes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-32s %10d %12d\n", r.name, r.n, r.bytes)
	}
}

// WriteEvents prints the retained event log.
func (t *Tracer) WriteEvents(w io.Writer) {
	for _, e := range t.events {
		fmt.Fprintln(w, e)
	}
}

// Attach taps a node's link service: every transmission (including raw
// protocol traffic) and every radio delivery is recorded.
func (t *Tracer) Attach(l *link.Service) {
	node := l.ID()
	l.SetObserver(func(outbound bool, e link.Env) {
		if outbound {
			t.record(node, Out, e.To, e.Msg)
		} else {
			t.record(node, In, e.From, e.Msg)
		}
	})
}
