package trace

import (
	"strings"
	"testing"

	"innercircle/internal/geo"
	"innercircle/internal/link"
	"innercircle/internal/mac"
	"innercircle/internal/mobility"
	"innercircle/internal/radio"
	"innercircle/internal/sim"
)

type msg struct{ n int }

func (m msg) Size() int { return m.n }

func buildTraced(t *testing.T, capacity int) (*sim.Kernel, *Tracer, []*link.Service) {
	t.Helper()
	k := sim.NewKernel()
	ch := radio.NewChannel(k, radio.Default80211())
	rng := sim.NewRNG(1)
	tr := New(capacity)
	tr.SetClock(k.Now)
	var svcs []*link.Service
	for i := 0; i < 2; i++ {
		m := mac.New(k, ch, mobility.Static(geo.Point{X: float64(i) * 100}), nil, rng.SplitN("m", i), mac.Default80211())
		l := link.NewService(m)
		tr.Attach(l)
		svcs = append(svcs, l)
	}
	return k, tr, svcs
}

func TestTracerRecordsTxAndRx(t *testing.T) {
	k, tr, svcs := buildTraced(t, 100)
	if err := svcs[0].SendRaw(1, msg{64}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want tx + rx", len(events))
	}
	if events[0].Dir != Out || events[0].Node != 0 || events[0].Peer != 1 {
		t.Fatalf("tx event = %+v", events[0])
	}
	if events[1].Dir != In || events[1].Node != 1 || events[1].Peer != 0 {
		t.Fatalf("rx event = %+v", events[1])
	}
	if events[0].Bytes != 64 || !strings.Contains(events[0].Type, "msg") {
		t.Fatalf("event detail = %+v", events[0])
	}
}

func TestTracerCountsPerType(t *testing.T) {
	k, tr, svcs := buildTraced(t, 0) // counters only
	for i := 0; i < 5; i++ {
		_ = svcs[0].SendRaw(1, msg{10})
	}
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	counts := tr.Counts()
	if len(counts) != 1 {
		t.Fatalf("counts = %v", counts)
	}
	for _, v := range counts {
		if v != 5 {
			t.Fatalf("count = %d, want 5 transmissions", v)
		}
	}
	if len(tr.Events()) != 0 {
		t.Fatal("capacity 0 retained events")
	}
}

func TestTracerCapacityBound(t *testing.T) {
	k, tr, svcs := buildTraced(t, 3)
	for i := 0; i < 10; i++ {
		_ = svcs[0].SendRaw(link.BroadcastID, msg{8})
	}
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Events()); got != 3 {
		t.Fatalf("retained %d events, want capped 3", got)
	}
}

func TestSummaryAndEventOutput(t *testing.T) {
	k, tr, svcs := buildTraced(t, 10)
	_ = svcs[0].SendRaw(1, msg{100})
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tr.WriteSummary(&sb)
	if !strings.Contains(sb.String(), "trace.msg") {
		t.Fatalf("summary missing type:\n%s", sb.String())
	}
	sb.Reset()
	tr.WriteEvents(&sb)
	if !strings.Contains(sb.String(), "tx") && !strings.Contains(sb.String(), "->") {
		t.Fatalf("event log missing direction:\n%s", sb.String())
	}
}

func TestDirString(t *testing.T) {
	if Out.String() != "tx" || In.String() != "rx" || Dir(9).String() != "??" {
		t.Fatal("Dir strings wrong")
	}
}

func TestBytesAccessor(t *testing.T) {
	k, tr, svcs := buildTraced(t, 0)
	_ = svcs[0].SendRaw(1, msg{100})
	_ = svcs[0].SendRaw(1, msg{50})
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	for _, v := range tr.Bytes() {
		if v != 150 {
			t.Fatalf("bytes = %d, want 150", v)
		}
	}
}
