package experiment

import (
	"testing"

	"innercircle/internal/scenario"
)

// Smoke test for the demo Spec: it runs, carries traffic, injects both
// fault classes, and is deterministic for a fixed seed.
func TestRunMixedSmoke(t *testing.T) {
	run := func() *scenario.Result {
		res, err := RunMixed(30, 7, 60)
		if err != nil {
			t.Fatalf("RunMixed: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.Counter(scenario.CtrSent) == 0 {
		t.Fatal("no traffic sent")
	}
	if a.Counter(scenario.CtrFaultsInjected) == 0 {
		t.Fatal("composite campaign injected nothing")
	}
	if a.Counters.String() != b.Counters.String() || a.Gauges.String() != b.Gauges.String() {
		t.Fatalf("same seed diverged:\n%s | %s\nvs\n%s | %s",
			a.Counters, a.Gauges, b.Counters, b.Gauges)
	}
}
