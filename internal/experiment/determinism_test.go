package experiment

import (
	"testing"

	"innercircle/internal/sensor"
	"innercircle/internal/stats"
)

// TestBlackholeDeterministic pins DESIGN.md §7: two runs with the same
// seed produce identical results, and a different seed produces (almost
// surely) different ones.
func TestBlackholeDeterministic(t *testing.T) {
	cfg := smallBlackhole()
	cfg.Malicious = 2
	cfg.IC = true
	cfg.L = 1
	a, err := RunBlackhole(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBlackhole(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	cfg.Seed++
	c, err := RunBlackhole(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

// TestSweepWorkerCountInvariant pins the core determinism contract of the
// parallel replica engine: for a fixed seed, sweep tables are byte-
// identical no matter how many workers execute the replicas. Results must
// therefore fold into the tables in job-enumeration order — Welford
// accumulation is order-sensitive in floating point, so completion-order
// aggregation would already break this.
func TestSweepWorkerCountInvariant(t *testing.T) {
	blackhole := func(t *testing.T) []*stats.Table {
		cfg := smallBlackhole()
		cfg.SimTime = 30
		thr, eng, err := BlackholeSweep(cfg, []int{0, 2}, []int{1}, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		return []*stats.Table{thr, eng}
	}
	sensorSweep := func(t *testing.T) []*stats.Table {
		cfg := PaperSensorConfig()
		cfg.Seed = 5
		cfg.SimTime = 100
		tables, err := SensorSweep(cfg, []int{3}, []sensor.FaultKind{sensor.FaultNone, sensor.FaultInterference}, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		var out []*stats.Table
		for _, key := range []string{"miss", "false", "energyT", "energyNT", "latency", "locerr"} {
			out = append(out, tables[key])
		}
		return out
	}
	for _, tc := range []struct {
		name  string
		sweep func(t *testing.T) []*stats.Table
	}{
		{"blackhole", blackhole},
		{"sensor", sensorSweep},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t.Setenv("IC_WORKERS", "1")
			serial := tc.sweep(t)
			t.Setenv("IC_WORKERS", "8")
			parallel := tc.sweep(t)
			for i := range serial {
				got, want := parallel[i].StringWithCI(), serial[i].StringWithCI()
				if got != want {
					t.Errorf("table %q differs between IC_WORKERS=1 and 8:\n--- serial ---\n%s--- parallel ---\n%s",
						serial[i].Title, want, got)
				}
			}
		})
	}
}

// TestSensorDeterministic is the same pin for the sensor scenario,
// including the statistical-voting and fusion paths.
func TestSensorDeterministic(t *testing.T) {
	cfg := PaperSensorConfig()
	cfg.Seed = 9
	cfg.IC = true
	cfg.L = 4
	cfg.Fault = sensor.FaultInterference
	a, err := RunSensor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSensor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
