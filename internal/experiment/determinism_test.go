package experiment

import (
	"testing"

	"innercircle/internal/sensor"
)

// TestBlackholeDeterministic pins DESIGN.md §7: two runs with the same
// seed produce identical results, and a different seed produces (almost
// surely) different ones.
func TestBlackholeDeterministic(t *testing.T) {
	cfg := smallBlackhole()
	cfg.Malicious = 2
	cfg.IC = true
	cfg.L = 1
	a, err := RunBlackhole(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBlackhole(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	cfg.Seed++
	c, err := RunBlackhole(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

// TestSensorDeterministic is the same pin for the sensor scenario,
// including the statistical-voting and fusion paths.
func TestSensorDeterministic(t *testing.T) {
	cfg := PaperSensorConfig()
	cfg.Seed = 9
	cfg.IC = true
	cfg.L = 4
	cfg.Fault = sensor.FaultInterference
	a, err := RunSensor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSensor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
