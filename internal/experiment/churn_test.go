package experiment

import (
	"testing"

	"innercircle/internal/scenario"
	"innercircle/internal/stats"
)

// churnBase is a shortened Fig. 8 box for churn-sweep tests.
func churnBase() SensorConfig {
	cfg := PaperSensorConfig()
	cfg.Seed = 11
	cfg.SimTime = 60
	cfg.TargetStart = 20
	cfg.TargetPeriod = 40
	cfg.TargetDuration = 15
	return cfg
}

// TestChurnZeroColumnIsSeedReplica pins the sweep's control column: a
// churn=0 grid point is configured — and therefore runs — exactly like
// the plain IC sensor replica the pre-churn sweeps measured.
func TestChurnZeroColumnIsSeedReplica(t *testing.T) {
	base := churnBase()
	points := ChurnPoints(base, []int{3}, []int{0, 2}, 1)
	if len(points) != 2 {
		t.Fatalf("enumerated %d points, want 2", len(points))
	}
	zero := points[0]
	if zero.Col != "churn=0" || zero.Config.Churn != nil {
		t.Fatalf("churn=0 point carries a churn schedule: %+v", zero)
	}
	seed := base
	seed.IC = true
	seed.L = 3
	want, err := RunSensor(seed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSensor(zero.Config)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("churn=0 replica diverged from the seed replica:\n%+v\nvs\n%+v", got, want)
	}
	if got.ChurnEvents != 0 || got.MembershipEpoch != 0 {
		t.Fatalf("churn=0 replica reports lifecycle activity: %+v", got)
	}
}

// TestChurnSweepWorkerShardInvariant pins the determinism contract for
// the new axis: churn-sweep tables are byte-identical across worker
// counts and IC_SHARDS settings (active churn pins its replicas to one
// kernel; churn=0 replicas are shard-invariant by the kernel contract).
func TestChurnSweepWorkerShardInvariant(t *testing.T) {
	sweep := func(t *testing.T) *ChurnTables {
		tables, err := ChurnSweep(churnBase(), []int{3}, []int{0, 2}, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		return tables
	}
	t.Setenv("IC_WORKERS", "1")
	t.Setenv("IC_SHARDS", "1")
	serial := sweep(t)
	t.Setenv("IC_WORKERS", "8")
	t.Setenv("IC_SHARDS", "4")
	parallel := sweep(t)
	for _, pair := range []struct {
		name string
		a, b *stats.Table
	}{
		{"miss", serial.Miss, parallel.Miss},
		{"energy", serial.Energy, parallel.Energy},
		{"events", serial.Events, parallel.Events},
		{"reshares", serial.Reshares, parallel.Reshares},
		{"aborted", serial.Aborted, parallel.Aborted},
		{"epoch", serial.Epoch, parallel.Epoch},
	} {
		got, want := pair.b.StringWithCI(), pair.a.StringWithCI()
		if got != want {
			t.Errorf("table %q differs across workers x shards:\n--- serial ---\n%s--- parallel ---\n%s",
				pair.name, want, got)
		}
	}
	// The churn=2 column actually cycled the membership machinery.
	if serial.Events.Mean("IC, L=3", "churn=2") == 0 {
		t.Error("churn=2 column saw no membership transitions")
	}
	if serial.Reshares.Mean("IC, L=3", "churn=2") == 0 {
		t.Error("churn=2 column executed no reshares")
	}
	if serial.Epoch.Mean("IC, L=3", "churn=2") == 0 {
		t.Error("churn=2 column never advanced the key epoch")
	}
	if serial.Events.Mean("IC, L=3", "churn=0") != 0 {
		t.Error("churn=0 column saw membership transitions")
	}
}

// TestChurnSweepValidation covers the input checks.
func TestChurnSweepValidation(t *testing.T) {
	base := churnBase()
	if err := ValidateChurnSweep(base, nil, []int{1}); err == nil {
		t.Error("empty level axis accepted")
	}
	if err := ValidateChurnSweep(base, []int{3}, nil); err == nil {
		t.Error("empty churn axis accepted")
	}
	if err := ValidateChurnSweep(base, []int{3}, []int{-1}); err == nil {
		t.Error("negative churn rate accepted")
	}
	if err := ValidateChurnSweep(base, []int{3}, []int{0, 4}); err != nil {
		t.Errorf("valid axes rejected: %v", err)
	}
}

// TestChurnPointsTemplate: non-zero columns inherit the base schedule
// with only the rate overridden.
func TestChurnPointsTemplate(t *testing.T) {
	base := churnBase()
	base.Churn = &scenario.Churn{Downtime: 7, Reshare: scenario.ReshareOff, Protect: 2}
	points := ChurnPoints(base, []int{2, 3}, []int{0, 5}, 2)
	if len(points) != 8 {
		t.Fatalf("enumerated %d points, want 8", len(points))
	}
	for _, p := range points {
		switch p.Col {
		case "churn=0":
			if p.Config.Churn != nil {
				t.Fatalf("%s: churn=0 carries a schedule", p.Label)
			}
		case "churn=5":
			c := p.Config.Churn
			if c == nil || c.CrashRejoin != 5 || c.Downtime != 7 || c.Reshare != scenario.ReshareOff || c.Protect != 2 {
				t.Fatalf("%s: template not applied: %+v", p.Label, c)
			}
			if base.Churn.CrashRejoin != 0 {
				t.Fatal("point construction mutated the base template")
			}
		default:
			t.Fatalf("unexpected column %q", p.Col)
		}
	}
}
