package experiment

import (
	"testing"

	"innercircle/internal/crypto/sigcache"
)

func benchSensorReplica(b *testing.B) {
	cfg := PaperSensorConfig()
	cfg.Nodes = 60
	cfg.SimTime = 120
	cfg.TargetStart = 10 // three full target windows → ~36 voting rounds
	cfg.TargetPeriod = 40
	cfg.TargetDuration = 15
	cfg.Seed = 7
	cfg.IC = true
	cfg.L = 3
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSensor(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensorReplica measures one full Fig. 8-style IC replica — the
// per-point unit of work of SensorSweep — with statistical voting (real
// RSA value signatures and verification) over 60 nodes for 60 virtual
// seconds. This is the replica-level view of the crypto hot path: value
// signing, propose/ack verification, and agreed-message flooding. The
// verification memo runs at its default (on).
func BenchmarkSensorReplica(b *testing.B) {
	b.Setenv(sigcache.EnvVar, "")
	benchSensorReplica(b)
}

// BenchmarkSensorReplicaMemoOff is the same replica with the
// verification memo disabled: the A/B pair quantifies the memo's
// replica-level wall-clock win (tables are identical either way).
func BenchmarkSensorReplicaMemoOff(b *testing.B) {
	b.Setenv(sigcache.EnvVar, "off")
	benchSensorReplica(b)
}
