package experiment

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"innercircle/internal/sim"
)

// TestRunJobsCtxCancel pins the drain contract the experiment service
// leans on: cancelling mid-sweep lets in-flight replicas finish, skips
// the queued remainder, returns ctx's error — and leaks neither worker
// goroutines nor core-budget tokens.
func TestRunJobsCtxCancel(t *testing.T) {
	baseline := runtime.NumGoroutine()
	baseTokens := sim.CoresInUse()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	release := make(chan struct{})
	jobs := make([]Job, 32)
	for i := range jobs {
		idx := i
		jobs[i] = Job{
			Index: idx,
			Label: "replica",
			Run: func() (any, error) {
				if started.Add(1) == 2 {
					cancel() // cancel once the sweep is genuinely mid-flight
				}
				<-release
				return idx, nil
			},
		}
	}
	done := make(chan struct{})
	var results []any
	var err error
	go func() {
		defer close(done)
		results, err = RunJobsCtx(ctx, jobs, 4, nil)
	}()
	// Wait for the cancellation to have happened, then let the in-flight
	// replicas complete.
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunJobsCtx did not return after cancel")
	}

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	n := started.Load()
	if n >= int64(len(jobs)) {
		t.Fatalf("cancel had no effect: all %d replicas started", n)
	}
	// Every replica that ran landed its result in its slot.
	var landed int64
	for _, r := range results {
		if r != nil {
			landed++
		}
	}
	if landed == 0 || landed > n {
		t.Fatalf("landed %d results, started %d", landed, n)
	}

	// No core-budget tokens may remain held once the pool has returned.
	if got := sim.CoresInUse(); got != baseTokens {
		t.Fatalf("core tokens leaked: %d held, baseline %d", got, baseTokens)
	}
	// Worker goroutines must all have exited; allow the runtime a moment
	// to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	if InFlightReplicas() != 0 {
		t.Fatalf("in-flight counter stuck at %d", InFlightReplicas())
	}
}

// TestRunJobsCtxPreCancelled: a context cancelled before the call must
// still return promptly with no replicas started.
func TestRunJobsCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var started atomic.Int64
	jobs := []Job{{Index: 0, Label: "r", Run: func() (any, error) { started.Add(1); return nil, nil }}}
	_, err := RunJobsCtx(ctx, jobs, 2, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if started.Load() != 0 {
		t.Fatalf("pre-cancelled context still started %d replicas", started.Load())
	}
}

// TestRunJobsErrorStillWins: a replica failure takes precedence over the
// context error in the report, matching RunJobs's first-failure contract.
func TestRunJobsCtxErrorPrecedence(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	jobs := []Job{{Index: 0, Label: "r", Run: func() (any, error) {
		cancel()
		return nil, boom
	}}}
	_, err := RunJobsCtx(ctx, jobs, 1, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("want the replica error, got %v", err)
	}
}
