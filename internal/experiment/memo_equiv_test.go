package experiment

import (
	"testing"

	"innercircle/internal/crypto/sigcache"
	"innercircle/internal/faults"
)

// The signature-verification memo (internal/crypto/sigcache) caches
// verdicts only; modeled energy and delay are charged per check whether or
// not the memo answers it. These tests close the loop at the top of the
// stack: whole sweep tables must come out byte-identical with the memo on
// (default) and off (IC_CRYPTO_MEMO=off) — only the diagnostic
// verifications-avoided table may differ, and with the memo on it must
// actually show avoided work under an IC configuration.

func TestMemoEquivalenceBlackholeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep comparison")
	}
	t.Setenv(sigcache.EnvVar, "off")
	thrOff, engOff := blackholeSweepStrings(t)
	t.Setenv(sigcache.EnvVar, "")
	thrOn, engOn := blackholeSweepStrings(t)
	if thrOn != thrOff {
		t.Fatalf("throughput table diverges with memo on/off:\non:\n%s\noff:\n%s", thrOn, thrOff)
	}
	if engOn != engOff {
		t.Fatalf("energy table diverges with memo on/off:\non:\n%s\noff:\n%s", engOn, engOff)
	}
}

func campaignSweepTables(t *testing.T) *CampaignTables {
	t.Helper()
	base := PaperBlackholeConfig()
	base.Nodes = 25
	base.SimTime = 25
	base.Seed = 79
	tables, err := CampaignSweep(base, []faults.Campaign{faults.BlackholePreset(2)}, []int{1}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tables
}

func TestMemoEquivalenceCampaignSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep comparison")
	}
	t.Setenv(sigcache.EnvVar, "off")
	off := campaignSweepTables(t)
	t.Setenv(sigcache.EnvVar, "")
	on := campaignSweepTables(t)
	modeled := []struct {
		name     string
		on, off_ string
	}{
		{"throughput", on.Throughput.String(), off.Throughput.String()},
		{"energy", on.Energy.String(), off.Energy.String()},
		{"injected", on.Injected.String(), off.Injected.String()},
		{"suppressed", on.Suppressed.String(), off.Suppressed.String()},
		{"leaked", on.Leaked.String(), off.Leaked.String()},
	}
	for _, m := range modeled {
		if m.on != m.off_ {
			t.Fatalf("campaign table %q diverges with memo on/off:\non:\n%s\noff:\n%s", m.name, m.on, m.off_)
		}
	}
	// The diagnostic table is the one place the memo is allowed to show:
	// the off run must read all-zero, the on run must record avoided work
	// for the IC row (the "No IC" row runs no voting service).
	if got := off.VerifiesAvoided.String(); got != on.VerifiesAvoided.String() {
		sum := func(tb *CampaignTables) float64 {
			var s float64
			for _, row := range tb.VerifiesAvoided.Rows() {
				for _, col := range tb.VerifiesAvoided.Cols() {
					s += tb.VerifiesAvoided.Mean(row, col)
				}
			}
			return s
		}
		if sum(off) != 0 {
			t.Fatalf("memo off but verifications avoided:\n%s", off.VerifiesAvoided.String())
		}
		if sum(on) == 0 {
			t.Fatal("diagnostic tables differ yet memo-on run shows no avoided verifications")
		}
		return
	}
	// Identical diagnostic tables are only acceptable if both are zero —
	// meaning this workload performed no repeated verifications at all.
	for _, row := range on.VerifiesAvoided.Rows() {
		for _, col := range on.VerifiesAvoided.Cols() {
			if v := on.VerifiesAvoided.Mean(row, col); v != 0 {
				t.Fatalf("memo tables identical on/off with nonzero hits — off knob not honored: %s/%s=%g", row, col, v)
			}
		}
	}
}
