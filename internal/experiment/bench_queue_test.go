package experiment

import (
	"fmt"
	"runtime"
	"testing"

	"innercircle/internal/scenario"
)

// TestQueueKindEquivalence is the fast end-to-end check that the timer
// wheel and the binary heap produce identical results on a real scenario.
// The full byte-identical sweep matrix lives in TestSweepShardCountInvariant
// (which is skipped under -short); this one runs everywhere.
func TestQueueKindEquivalence(t *testing.T) {
	cfg := PaperSensorConfig()
	cfg.Seed = 3
	cfg.SimTime = 60
	t.Setenv("IC_KERNEL_QUEUE", "wheel")
	want, err := RunSensor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("IC_KERNEL_QUEUE", "heap")
	got, err := RunSensor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("heap result differs from wheel:\nheap  %+v\nwheel %+v", got, want)
	}
}

// BenchmarkQueueField measures the sensor-field replica under both event
// queues (BENCH_queue.json). Variant names pin the queue and executor
// explicitly; shard counts per size follow BenchmarkShardedFieldMC (the
// largest tie-free count at seed 1), shards=0 rows run the single-kernel
// path the wheel most directly accelerates.
func BenchmarkQueueField(b *testing.B) {
	variants := []struct {
		name string
		env  map[string]string
	}{
		{"heap-seq", map[string]string{"IC_KERNEL_QUEUE": "heap", "IC_SHARD_EXEC": "seq"}},
		{"wheel-seq", map[string]string{"IC_KERNEL_QUEUE": "wheel", "IC_SHARD_EXEC": "seq"}},
		{"heap-par", map[string]string{"IC_KERNEL_QUEUE": "heap", "IC_SHARD_EXEC": "par"}},
		{"wheel-par", map[string]string{"IC_KERNEL_QUEUE": "wheel", "IC_SHARD_EXEC": "par"}},
	}
	knobs := []string{"IC_KERNEL_QUEUE", "IC_SHARD_EXEC", "IC_SHARD_GROUPS", "IC_SHARD_PART", "IC_SHARD_MSGLA", "IC_WORKERS", "IC_CORE_BUDGET"}
	procs := runtime.GOMAXPROCS(0)
	for _, p := range []struct{ nodes, shards int }{
		{1000, 4}, {10000, 6}, {100000, 8},
	} {
		for _, v := range variants {
			b.Run(fmt.Sprintf("nodes=%d/procs=%d/%s", p.nodes, procs, v.name), func(b *testing.B) {
				for _, knob := range knobs {
					b.Setenv(knob, v.env[knob])
				}
				cfg := ScaledSensorConfig(p.nodes)
				cfg.Seed = 1
				cfg.Shards = p.shards
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					spec, err := sensorSpec(cfg)
					if err != nil {
						b.Fatal(err)
					}
					res, err := scenario.Run(spec)
					if err != nil {
						b.Fatal(err)
					}
					if res.Shards != p.shards {
						b.Fatalf("replica executed with %d shards, want %d (fallback or tie rerun — numbers would be mislabeled)", res.Shards, p.shards)
					}
				}
			})
		}
	}
}
