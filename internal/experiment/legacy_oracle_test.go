package experiment

// Frozen copies of the hand-wired RunBlackhole/RunSensor harnesses as
// they stood before the scenario-layer refactor. They are the oracle: the
// declarative Spec path must reproduce them result-for-result (exact
// float equality), and BenchmarkScenarioOverhead measures what the
// framework costs relative to them. Do not "improve" these — their value
// is that they never change.

import (
	"fmt"
	"testing"

	"innercircle/internal/aodv"
	"innercircle/internal/diffusion"
	"innercircle/internal/energy"
	"innercircle/internal/faults"
	"innercircle/internal/geo"
	"innercircle/internal/link"
	"innercircle/internal/mac"
	"innercircle/internal/mobility"
	"innercircle/internal/node"
	"innercircle/internal/radio"
	"innercircle/internal/sensor"
	"innercircle/internal/sim"
	"innercircle/internal/sts"
	"innercircle/internal/vote"

	"innercircle/internal/crypto/nsl"
)

func legacyRunBlackhole(cfg BlackholeConfig) (BlackholeResult, error) {
	if cfg.Nodes < 4 {
		return BlackholeResult{}, fmt.Errorf("experiment: need at least 4 nodes")
	}
	region := geo.Square(cfg.Region)
	seedRNG := sim.NewRNG(cfg.Seed)
	placeRNG := seedRNG.Split("placement")
	positions := mobility.UniformPlacement(region, cfg.Nodes, placeRNG)

	stsCfg := sts.Config{}
	voteCfg := vote.Config{}
	if cfg.IC {
		stsCfg = sts.Config{
			Period:          0.9,
			Delta:           2,
			Authenticate:    true,
			Handshake:       false,
			BeaconBaseBytes: 28,
		}
		voteCfg = vote.Config{Mode: vote.Deterministic, L: cfg.L, RoundTimeout: 0.15, Retries: 2}
	}

	routers := make([]*aodv.Router, cfg.Nodes)
	adapters := make([]*aodv.ICAdapter, cfg.Nodes)
	received := 0
	receivedCorrupt := 0

	ncfg := node.Config{
		N:      cfg.Nodes,
		Seed:   cfg.Seed,
		Radio:  radio.Default80211(),
		MAC:    mac.Default80211(),
		Energy: energy.NS2Default(),
		Mobility: func(i int, rng *sim.RNG) mobility.Model {
			return mobility.NewWaypoint(mobility.WaypointConfig{
				Region:   region,
				MinSpeed: cfg.Speed,
				MaxSpeed: cfg.Speed,
				Pause:    cfg.Pause,
			}, positions[i], rng)
		},
		IC:           cfg.IC,
		STS:          stsCfg,
		Vote:         voteCfg,
		MaxL:         max(2, cfg.L),
		SigWireBytes: 128,
		Tracer:       cfg.Tracer,
	}
	buildRouter := func(nd *node.Node) *aodv.Router {
		r, err := aodv.New(aodv.DefaultConfig(), aodv.Deps{
			ID: nd.ID, K: nd.K, Link: nd.Link, RNG: nd.RNG.Split("aodv"),
		})
		if err != nil {
			panic(err)
		}
		routers[nd.Index] = r
		r.OnDeliver(func(d aodv.Data) {
			if s, ok := d.Payload.(string); ok && len(s) >= len(corruptMark) && s[:len(corruptMark)] == corruptMark {
				receivedCorrupt++
				return
			}
			received++
		})
		nd.Handle(r.HandleEnv)
		return r
	}
	if cfg.IC {
		ncfg.Callbacks = func(nd *node.Node) vote.Callbacks {
			r := buildRouter(nd)
			adapter, cbs := aodv.NewICAdapter(nd.ID, r, nd.Intercept)
			adapters[nd.Index] = adapter
			return cbs
		}
	}

	net, err := node.Build(ncfg)
	if err != nil {
		return BlackholeResult{}, fmt.Errorf("experiment: build: %w", err)
	}
	if cfg.IC {
		for i, nd := range net.Nodes {
			adapters[i].Bind(nd.Vote)
			nd.Intercept.SetVerifier(adapters[i].Verifier())
		}
	} else {
		for _, nd := range net.Nodes {
			buildRouter(nd)
		}
	}
	trafRNG := seedRNG.Split("traffic")
	perm := trafRNG.Perm(cfg.Nodes)
	if cfg.Connections*2+cfg.Malicious > cfg.Nodes {
		return BlackholeResult{}, fmt.Errorf("experiment: %d nodes cannot host %d connections + %d attackers",
			cfg.Nodes, cfg.Connections, cfg.Malicious)
	}
	type conn struct{ src, dst int }
	conns := make([]conn, cfg.Connections)
	for i := range conns {
		conns[i] = conn{src: perm[2*i], dst: perm[2*i+1]}
	}

	camp := cfg.Campaign
	if camp == nil && cfg.Malicious > 0 {
		var c faults.Campaign
		if cfg.GrayProb > 0 {
			c = faults.GrayholePreset(cfg.Malicious, cfg.GrayProb)
		} else {
			c = faults.BlackholePreset(cfg.Malicious)
		}
		camp = &c
	}
	var applied *faults.Applied
	if camp != nil {
		applied, err = faults.Apply(faults.Fabric{
			K:     net.K,
			RNG:   seedRNG,
			N:     cfg.Nodes,
			Order: perm[cfg.Connections*2:],
			Link: func(i int) faults.LinkPort {
				return net.Nodes[i].Link
			},
			Router: func(i int) faults.RouterCtl {
				if routers[i] == nil {
					return nil
				}
				return routers[i]
			},
			Vote: func(i int) faults.VoteCtl {
				if net.Nodes[i].Vote == nil {
					return nil
				}
				return net.Nodes[i].Vote
			},
			Mutate: corruptPayload,
		}, camp)
		if err != nil {
			return BlackholeResult{}, fmt.Errorf("experiment: %w", err)
		}
	}

	net.StartSTS()

	sent := 0
	interval := sim.Duration(1 / cfg.Rate)
	for ci, c := range conns {
		c := c
		start := cfg.TrafficFrom + trafRNG.Jitter(interval)
		var tick func()
		seq := 0
		tick = func() {
			if net.K.Now() >= cfg.SimTime {
				return
			}
			sent++
			seq++
			_ = routers[c.src].Send(link.NodeID(c.dst), fmt.Sprintf("c%d-%d", ci, seq), cfg.PacketBytes)
			net.K.MustSchedule(interval, tick)
		}
		net.K.MustSchedule(start, tick)
	}

	if err := net.Run(cfg.SimTime); err != nil {
		return BlackholeResult{}, fmt.Errorf("experiment: run: %w", err)
	}

	res := BlackholeResult{Sent: sent, Received: received, ReceivedCorrupt: receivedCorrupt}
	if sent > 0 {
		res.Throughput = 100 * float64(received) / float64(sent)
	}
	res.EnergyPerNode = net.TotalEnergy() / float64(cfg.Nodes)
	if applied != nil {
		res.FaultsInjected = applied.Report().TotalInjected()
		res.FaultsLeaked = uint64(receivedCorrupt)
		for _, nd := range net.Nodes {
			if nd.Intercept != nil {
				res.FaultsSuppressed += nd.Intercept.Stats.SuppressedSuspect + nd.Intercept.Stats.SuppressedBadSig
			}
			if nd.STS != nil {
				res.FaultsSuppressed += nd.STS.Stats.BeaconsRejected
			}
			if nd.Vote != nil {
				res.FaultsSuppressed += nd.Vote.Stats.PartialsRejected + nd.Vote.Stats.AgreedInvalid
			}
		}
	}
	for _, nd := range net.Nodes {
		if nd.Vote != nil {
			res.VerifiesAvoided += nd.Vote.Stats.MemoHits
		}
	}
	return res, nil
}

func legacyRunSensor(cfg SensorConfig) (SensorResult, error) {
	if cfg.Nodes < 10 {
		return SensorResult{}, fmt.Errorf("experiment: need at least 10 nodes")
	}
	region := geo.Square(cfg.Region)
	seedRNG := sim.NewRNG(cfg.Seed)

	positions := make([]geo.Point, cfg.Nodes)
	positions[0] = region.Center()
	var sensorsPos []geo.Point
	if cfg.UniformPlacement {
		sensorsPos = mobility.UniformPlacement(region, cfg.Nodes-1, seedRNG.Split("placement"))
	} else {
		sensorsPos = mobility.GridPlacement(region, cfg.Nodes-1, cfg.Region/50, seedRNG.Split("placement"))
	}
	copy(positions[1:], sensorsPos)

	var targets []sensor.Target
	if !cfg.NoTarget {
		tgtRNG := seedRNG.Split("targets")
		for start := cfg.TargetStart; start+cfg.TargetDuration <= cfg.SimTime; start += cfg.TargetPeriod {
			onset := start + tgtRNG.Jitter(cfg.SensePeriod)
			targets = append(targets, sensor.Target{
				Pos: geo.Point{
					X: tgtRNG.Uniform(0.2*cfg.Region, 0.8*cfg.Region),
					Y: tgtRNG.Uniform(0.2*cfg.Region, 0.8*cfg.Region),
				},
				Start: onset,
				End:   onset + cfg.TargetDuration,
			})
		}
	}

	stsCfg := sts.Config{}
	voteCfg := vote.Config{}
	var keys []*nsl.KeyPair
	if cfg.IC {
		stsCfg = sts.Config{
			Period:          45,
			Delta:           100,
			Authenticate:    true,
			Handshake:       false,
			BeaconBaseBytes: 28,
		}
		voteCfg = vote.Config{Mode: vote.Statistical, L: cfg.L, RoundTimeout: 0.5, Retries: 1}
		var err error
		keys, err = cachedSensorKeys(cfg.Nodes)
		if err != nil {
			return SensorResult{}, err
		}
	}

	apps := make([]*sensorApp, cfg.Nodes)
	fuseFn := makeSensorFuse(cfg)

	ncfg := node.Config{
		N:      cfg.Nodes,
		Seed:   cfg.Seed,
		Radio:  radio.Params{Range: cfg.Range, Bitrate: 2e6, PropSpeed: 3e8},
		MAC:    mac.Default80211(),
		Energy: energy.NS2Default(),
		Mobility: func(i int, _ *sim.RNG) mobility.Model {
			return mobility.Static(positions[i])
		},
		IC:           cfg.IC,
		STS:          stsCfg,
		Vote:         voteCfg,
		MaxL:         max(cfg.L, 2),
		Keys:         keys,
		SigWireBytes: 64,
	}
	if cfg.IC {
		ncfg.Callbacks = func(nd *node.Node) vote.Callbacks {
			app := &sensorApp{nd: nd, cfg: &cfg, covered: make(map[int64]bool)}
			apps[nd.Index] = app
			return vote.Callbacks{
				LocalValue: app.localValue,
				Fuse:       fuseFn,
				OnAgreed:   app.onAgreed,
			}
		}
	}
	net, err := node.Build(ncfg)
	if err != nil {
		return SensorResult{}, fmt.Errorf("experiment: build: %w", err)
	}

	diffCfg := diffusion.Config{InterestPeriod: 20, GradientTimeout: 60, Unreliable: true, FloodData: true}
	base := struct {
		notifs    []baseNotif
		perTarget map[int][]baseNotif
	}{perTarget: make(map[int][]baseNotif)}

	for i, nd := range net.Nodes {
		ds, err := diffusion.New(diffCfg, diffusion.Deps{
			ID: nd.ID, K: nd.K, Link: nd.Link, RNG: nd.RNG.Split("diffusion"),
		})
		if err != nil {
			return SensorResult{}, err
		}
		nd.Handle(ds.HandleEnv)
		if apps[i] == nil {
			apps[i] = &sensorApp{nd: nd, cfg: &cfg, covered: make(map[int64]bool)}
		}
		apps[i].diff = ds
		if i == 0 {
			ds.SetSink(true)
		} else {
			apps[i].dev = sensor.NewDevice(cfg.Model, positions[i], cfg.Lambda, nd.RNG.Split("sensor"))
		}
	}

	faultRNG := seedRNG.Split("faults")
	if cfg.Fault != sensor.FaultNone {
		perm := faultRNG.Perm(cfg.Nodes - 1)
		for i := 0; i < cfg.Faulty && i < len(perm); i++ {
			apps[perm[i]+1].dev.InjectFault(cfg.Fault, cfg.FaultParams, region)
		}
	}

	classify := func(at sim.Time) int {
		const slack = 5
		for ti, tg := range targets {
			if at >= tg.Start && at < tg.End+slack {
				return ti
			}
		}
		return -1
	}
	baseNode := net.Nodes[0]
	baseDiff := apps[0].diff
	baseDiff.OnDeliver(func(src link.NodeID, hops int, payload link.Message) {
		now := net.K.Now()
		var n sensor.Notification
		switch m := payload.(type) {
		case notifMsg:
			if cfg.IC {
				return
			}
			d, err := sensor.DecodeNotification(m.Data)
			if err != nil {
				return
			}
			n = d
		case agreedWrap:
			if !cfg.IC {
				return
			}
			if baseNode.Vote.VerifyAgreed(m.M) != nil {
				return
			}
			d, err := sensor.DecodeNotification(m.M.Value)
			if err != nil {
				return
			}
			n = d
		default:
			return
		}
		bn := baseNotif{at: now, notif: n, target: classify(now)}
		base.notifs = append(base.notifs, bn)
		if bn.target >= 0 {
			base.perTarget[bn.target] = append(base.perTarget[bn.target], bn)
		}
	})

	startRNG := seedRNG.Split("starts")
	for _, nd := range net.Nodes {
		if nd.STS != nil {
			svc := nd.STS
			net.K.MustSchedule(startRNG.Jitter(2), svc.Start)
		}
	}
	net.K.MustSchedule(0.1, func() { baseDiff.Start() })

	activeTarget := func(at sim.Time) *geo.Point {
		for _, tg := range targets {
			if tg.ActiveAt(at) {
				return &tg.Pos
			}
		}
		return nil
	}
	var epochFn func()
	epochIdx := int64(0)
	epochFn = func() {
		now := net.K.Now()
		if now >= cfg.SimTime {
			return
		}
		epochIdx++
		tpos := activeTarget(now)
		for i := 1; i < cfg.Nodes; i++ {
			apps[i].sense(epochIdx, tpos)
		}
		net.K.MustSchedule(cfg.SensePeriod, epochFn)
	}
	net.K.MustSchedule(cfg.SensePeriod, epochFn)

	if err := net.Run(cfg.SimTime); err != nil {
		return SensorResult{}, fmt.Errorf("experiment: run: %w", err)
	}

	res := SensorResult{Targets: len(targets), Notifications: len(base.notifs)}
	var latSum, locSum float64
	detected := 0
	for ti, tg := range targets {
		ns := base.perTarget[ti]
		if len(ns) == 0 {
			res.Missed++
			continue
		}
		detected++
		latSum += float64(ns[0].at - tg.Start)
		var pts []geo.Point
		for _, bn := range ns {
			pts = append(pts, bn.notif.Pos)
		}
		locSum += geo.Centroid(pts).Dist(tg.Pos)
	}
	if len(targets) > 0 {
		res.MissAlarm = float64(res.Missed) / float64(len(targets))
	}
	if detected > 0 {
		res.DetectionLatency = latSum / float64(detected)
		res.LocalizationErr = locSum / float64(detected)
	}
	spurious := 0
	for _, bn := range base.notifs {
		if bn.target < 0 {
			spurious++
		}
	}
	noTargetEpochs := 0
	for e := int64(1); ; e++ {
		at := sim.Time(e) * cfg.SensePeriod
		if at >= cfg.SimTime {
			break
		}
		if activeTarget(at) == nil {
			noTargetEpochs++
		}
	}
	if noTargetEpochs > 0 {
		res.FalseAlarmProb = 100 * float64(spurious) / float64(noTargetEpochs*(cfg.Nodes-1))
	}
	res.EnergyPerNode = net.TotalEnergy() / float64(cfg.Nodes)
	res.TrafficEnergy = res.EnergyPerNode - energy.NS2Default().IdlePower*float64(cfg.SimTime)
	return res, nil
}

// TestScenarioMatchesLegacyBlackhole pins the refactor's hard constraint:
// the declarative Spec path reproduces the frozen hand-wired harness
// exactly — every field, exact float equality — across the adversary
// shapes the sweeps exercise.
func TestScenarioMatchesLegacyBlackhole(t *testing.T) {
	corrupt := faults.CorruptPreset(3, 0.5)
	cases := []struct {
		name string
		cfg  func() BlackholeConfig
	}{
		{"clean no-IC", func() BlackholeConfig { return smallBlackhole() }},
		{"blackhole attack no-IC", func() BlackholeConfig {
			cfg := smallBlackhole()
			cfg.Malicious = 3
			return cfg
		}},
		{"blackhole attack IC", func() BlackholeConfig {
			cfg := smallBlackhole()
			cfg.Malicious = 3
			cfg.IC = true
			cfg.L = 1
			return cfg
		}},
		{"grayhole IC L=2", func() BlackholeConfig {
			cfg := smallBlackhole()
			cfg.Malicious = 4
			cfg.GrayProb = 0.5
			cfg.IC = true
			cfg.L = 2
			return cfg
		}},
		{"corrupt campaign IC", func() BlackholeConfig {
			cfg := smallBlackhole()
			cfg.Campaign = &corrupt
			cfg.IC = true
			cfg.L = 1
			return cfg
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := legacyRunBlackhole(tc.cfg())
			if err != nil {
				t.Fatalf("legacy: %v", err)
			}
			got, err := RunBlackhole(tc.cfg())
			if err != nil {
				t.Fatalf("spec: %v", err)
			}
			if got != want {
				t.Fatalf("spec path diverged from legacy oracle:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestScenarioMatchesLegacySensor does the same for the Fig. 8 harness.
func TestScenarioMatchesLegacySensor(t *testing.T) {
	small := func() SensorConfig {
		cfg := PaperSensorConfig()
		cfg.Nodes = 60
		cfg.SimTime = 120
		cfg.Seed = 9
		return cfg
	}
	cases := []struct {
		name string
		cfg  func() SensorConfig
	}{
		{"centralized with interference", func() SensorConfig {
			cfg := small()
			cfg.Fault = sensor.FaultInterference
			return cfg
		}},
		{"IC L=3 with stuck faults", func() SensorConfig {
			cfg := small()
			cfg.IC = true
			cfg.L = 3
			cfg.Fault = sensor.FaultStuckAtZero
			return cfg
		}},
		{"no target, uniform placement", func() SensorConfig {
			cfg := small()
			cfg.NoTarget = true
			cfg.UniformPlacement = true
			return cfg
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := legacyRunSensor(tc.cfg())
			if err != nil {
				t.Fatalf("legacy: %v", err)
			}
			got, err := RunSensor(tc.cfg())
			if err != nil {
				t.Fatalf("spec: %v", err)
			}
			if got != want {
				t.Fatalf("spec path diverged from legacy oracle:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// BenchmarkScenarioOverhead compares the declarative Spec path against
// the frozen pre-refactor harness on the same replica. The framework's
// per-run cost (validation, interface dispatch, counter folding) must
// stay within noise of the hand-wired code — the replica itself is the
// work.
func BenchmarkScenarioOverhead(b *testing.B) {
	cfg := smallBlackhole()
	cfg.SimTime = 20
	cfg.Malicious = 2
	cfg.IC = true
	cfg.L = 1
	b.Run("spec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := RunBlackhole(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := legacyRunBlackhole(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
