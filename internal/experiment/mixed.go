package experiment

import (
	"fmt"

	"innercircle/internal/energy"
	"innercircle/internal/faults"
	"innercircle/internal/geo"
	"innercircle/internal/mac"
	"innercircle/internal/radio"
	"innercircle/internal/scenario"
	"innercircle/internal/sim"
	"innercircle/internal/sts"
	"innercircle/internal/traffic"
	"innercircle/internal/vote"
)

// RunMixed is the scenario framework's demo: a static grid carrying CBR
// traffic under a composite campaign mixing gray-hole droppers with
// payload corrupters — two fault classes the hand-wired harnesses could
// only exercise one at a time. The whole experiment is one declarative
// Spec; no bespoke wiring beyond the shared aodvRouting component.
func RunMixed(nodes int, seed int64, simTime sim.Time) (*scenario.Result, error) {
	camp := faults.Campaign{
		Name: "mixed-gray-corrupt",
		Entries: []faults.Entry{
			{Fault: faults.Grayhole, Params: faults.Params{P: 0.5}, Targets: faults.Selector{Count: 4}},
			{Fault: faults.Corrupt, Params: faults.Params{P: 0.3}, Targets: faults.Selector{Count: 2}},
		},
	}
	spec := &scenario.Spec{
		Name:    "mixed-grid",
		Nodes:   nodes,
		Seed:    seed,
		SimTime: simTime,
		Topology: scenario.BaseStationGrid{
			Region:     geo.Square(800),
			GridJitter: 16,
		},
		Stack: scenario.Stack{
			Radio:  radio.Default80211(),
			MAC:    mac.Default80211(),
			Energy: energy.NS2Default(),
			IC:     true,
			STS: sts.Config{
				Period:          0.9,
				Delta:           2,
				Authenticate:    true,
				BeaconBaseBytes: 28,
			},
			Vote:         vote.Config{Mode: vote.Deterministic, L: 1, RoundTimeout: 0.15, Retries: 2},
			MaxL:         2,
			SigWireBytes: 128,
			Components:   []scenario.Component{newAODVRouting(nodes)},
		},
		Traffic: &traffic.CBR{
			Connections: 6,
			Rate:        2,
			PacketBytes: 256,
			From:        5,
		},
		Adversary: scenario.CampaignAdversary{Campaign: &camp},
	}
	res, err := scenario.Run(spec)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	return res, nil
}
