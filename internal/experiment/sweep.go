package experiment

import (
	"fmt"
	"io"
)

// GridPoint is one replica of a sweep grid: the config to run, the
// progress/failure label, and the table cell the result folds into.
type GridPoint[C any] struct {
	Label    string
	Row, Col string
	Config   C
}

// configRow is one configuration row of the paper's sweeps: the No-IC
// baseline or the inner circle at a dependability level.
type configRow struct {
	label string
	ic    bool
	level int
}

// configRows enumerates {No IC} followed by {IC, L=l} for each level —
// the row axis every figure shares.
func configRows(levels []int) []configRow {
	rows := []configRow{{label: "No IC"}}
	for _, l := range levels {
		rows = append(rows, configRow{label: fmt.Sprintf("IC, L=%d", l), ic: true, level: l})
	}
	return rows
}

// SweepGrid is the generic sweep runner behind BlackholeSweep, SensorSweep
// and CampaignSweep: it fans every grid point over the replica pool,
// streams one progress line per completion, and folds results into the
// caller's tables strictly in enumeration order — so the tables are
// byte-identical for any worker count.
func SweepGrid[C, R any](points []GridPoint[C], run func(C) (R, error), progress io.Writer, line func(label string, r R) string, fold func(row, col string, r R)) error {
	jobs := make([]Job, len(points))
	for i := range points {
		p := points[i]
		jobs[i] = Job{
			Index: i,
			Label: p.Label,
			Run: func() (any, error) {
				r, err := run(p.Config)
				if err != nil {
					return nil, err
				}
				return r, nil
			},
		}
	}
	results, err := RunJobs(jobs, 0, progressWriter(progress, func(j Job, result any) string {
		return line(j.Label, result.(R))
	}))
	if err != nil {
		return err
	}
	for i, r := range results {
		fold(points[i].Row, points[i].Col, r.(R))
	}
	return nil
}
