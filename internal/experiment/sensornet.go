package experiment

import (
	"fmt"
	"io"
	"math"
	"sync"

	"innercircle/internal/diffusion"
	"innercircle/internal/energy"
	"innercircle/internal/fusion"
	"innercircle/internal/geo"
	"innercircle/internal/link"
	"innercircle/internal/mac"
	"innercircle/internal/node"
	"innercircle/internal/radio"
	"innercircle/internal/scenario"
	"innercircle/internal/sensor"
	"innercircle/internal/sim"
	"innercircle/internal/stats"
	"innercircle/internal/sts"
	"innercircle/internal/traffic"
	"innercircle/internal/vote"

	"innercircle/internal/crypto/nsl"
)

// SensorConfig parameterizes one Fig. 8 run. Node 0 is the base station at
// the region's centre; the remaining Nodes-1 sensors sit on a jittered
// grid.
// The JSON form is the experiment service's wire format (grid.go).
type SensorConfig struct {
	Nodes          int                `json:"nodes"`  // 100 (1 base + 99 sensors)
	Region         float64            `json:"region"` // 200 m square
	Range          float64            `json:"range"`  // 40 m
	SimTime        sim.Time           `json:"sim_time"`
	SensePeriod    sim.Duration       `json:"sense_period"` // 5 s, synchronized epochs
	Lambda         float64            `json:"lambda"`       // 6.635
	Model          sensor.SignalModel `json:"model"`
	TargetStart    sim.Time           `json:"target_start"`       // first target onset (50 s)
	TargetPeriod   sim.Duration       `json:"target_period"`      // 100 s
	TargetDuration sim.Duration       `json:"target_duration"`    // 25 s
	NoTarget       bool               `json:"no_target,omitempty"` // Fig. 8(d): run without any target
	Faulty         int                `json:"faulty"`
	Fault          sensor.FaultKind   `json:"fault"`
	FaultParams    sensor.FaultParams `json:"fault_params"`
	IC             bool               `json:"ic"`
	L              int                `json:"l"`
	Eta            float64            `json:"eta"` // FT-cluster threshold (5)
	// Fusion selects the statistical fusion algorithm (ablation A3 in
	// situ); default FusionCluster.
	Fusion FusionAlg `json:"fusion,omitempty"`
	// UniformPlacement scatters sensors uniformly instead of on the
	// default jittered grid. Uniform deployments have thin patches, which
	// matters for the weak-signal miss-alarm results (§5.2).
	UniformPlacement bool `json:"uniform_placement,omitempty"`
	// Shards partitions the replica across parallel kernels (see
	// scenario.Spec.Shards); 0 defers to IC_SHARDS.
	Shards int `json:"shards,omitempty"`
	// Churn schedules mid-run membership transitions over the inner
	// circle (see scenario.Churn); nil runs with fixed membership, so
	// churn-free configs hash identically to pre-churn artifacts.
	Churn *scenario.Churn `json:"churn,omitempty"`
	Seed  int64           `json:"seed"`
}

// FusionAlg selects the fault-tolerant fusion used by statistical voting.
type FusionAlg int

// Fusion algorithms.
const (
	// FusionCluster is the paper's FT-cluster algorithm (default).
	FusionCluster FusionAlg = iota
	// FusionMean is the Dolev-style fault-tolerant mean baseline.
	FusionMean
	// FusionNaive averages everything (no fault tolerance).
	FusionNaive
)

// PaperSensorConfig returns the Fig. 8 parameter box.
func PaperSensorConfig() SensorConfig {
	return SensorConfig{
		Nodes:          100,
		Region:         200,
		Range:          40,
		SimTime:        200,
		SensePeriod:    5,
		Lambda:         sensor.NeymanPearsonLambda,
		Model:          sensor.Paper(),
		TargetStart:    50,
		TargetPeriod:   100,
		TargetDuration: 25,
		Faulty:         10,
		Fault:          sensor.FaultNone,
		FaultParams:    sensor.PaperFaults(),
		L:              3,
		Eta:            5,
	}
}

// ScaledSensorConfig returns a density-preserving enlargement of the
// Fig. 8 deployment for scaling studies: the region grows with √nodes so
// the per-cell population (and hence MAC contention) matches the paper's
// 100-node field at any size. The detection threshold is raised well past
// the Neyman-Pearson working point to keep the false-alarm flood rate
// sub-critical at large populations, the run is short, and IC is off —
// per-node RSA key material for 10⁵ nodes is not a cost the scaling
// question needs.
func ScaledSensorConfig(nodes int) SensorConfig {
	cfg := PaperSensorConfig()
	cfg.Nodes = nodes
	cfg.Region = 200 * math.Sqrt(float64(nodes)/100)
	cfg.IC = false
	cfg.Lambda = 16
	cfg.SimTime = 30
	cfg.TargetStart = 10
	cfg.TargetPeriod = 50
	cfg.TargetDuration = 15
	cfg.Faulty = 0
	cfg.Fault = sensor.FaultNone
	return cfg
}

// SensorResult is the outcome of one run. The churn fields are zero (and
// absent from the JSON form) unless the run scheduled membership churn.
type SensorResult struct {
	Targets          int
	Missed           int
	MissAlarm        float64 // fraction of targets never reported at base
	FalseAlarmProb   float64 // spurious notifications per sensor-epoch, percent
	EnergyPerNode    float64 // joules over the whole run
	TrafficEnergy    float64 // joules minus the common idle floor
	DetectionLatency float64 // seconds, mean over detected targets
	LocalizationErr  float64 // metres, mean over detected targets
	Notifications    int     // total notifications the base accepted

	ChurnEvents     int `json:"churn_events,omitempty"`         // effective membership transitions
	ChurnReshares   int `json:"churn_reshares,omitempty"`       // reshares executed
	ChurnRefreshes  int `json:"churn_refreshes,omitempty"`      // proactive refreshes executed
	RoundsAborted   int `json:"churn_rounds_aborted,omitempty"` // vote rounds drained by transitions
	MembershipEpoch int `json:"membership_epoch,omitempty"`     // final key epoch
}

// Sensor-scenario metric names (on top of the runner's uniform set).
const (
	ctrTargets       = "targets"
	ctrMissed        = "missed"
	ctrNotifications = "notifications"
	gaugeMissAlarm   = "miss_alarm"
	gaugeFalseAlarm  = "false_alarm_pct"
	gaugeLatency     = "detection_latency_s"
	gaugeLocErr      = "localization_err_m"
	gaugeTrafficE    = "traffic_energy_j"
)

// notifMsg wraps an encoded notification for transport (the centralized
// solution's raw report).
type notifMsg struct {
	Data []byte
}

// Size implements link.Message.
func (m notifMsg) Size() int { return len(m.Data) }

// agreedWrap carries a voted agreed message through diffusion.
type agreedWrap struct {
	M vote.AgreedMsg
}

// Size implements link.Message.
func (w agreedWrap) Size() int { return w.M.Size() }

// sensorKeysOnce caches the 100-node RSA key set across runs: generating
// it dominates run setup otherwise. The set is derived from a fixed seed —
// modulus bit lengths feed beacon-signature wire sizes, so key material
// must be identical across processes for sweeps to reproduce exactly. The
// cache is concurrency-safe: sync.Once guards generation, and replicas on
// the parallel engine only ever read the finished key pairs.
var (
	sensorKeysOnce sync.Once
	sensorKeys     []*nsl.KeyPair
	sensorKeysErr  error
)

func cachedSensorKeys(n int) ([]*nsl.KeyPair, error) {
	sensorKeysOnce.Do(func() {
		sensorKeys, sensorKeysErr = node.GenerateKeySetSeeded(n, 512, 0x5EED0C)
	})
	if sensorKeysErr != nil {
		return nil, sensorKeysErr
	}
	if len(sensorKeys) < n {
		return nil, fmt.Errorf("experiment: cached key set has %d keys, need %d", len(sensorKeys), n)
	}
	return sensorKeys[:n], nil
}

// sensorApp is the per-node application state for the sensor scenario.
type sensorApp struct {
	nd      *node.Node
	dev     *sensor.Device
	diff    *diffusion.Service
	cfg     *SensorConfig
	epoch   int64 // current sensing epoch index
	reading sensor.Reading
	// covered marks epochs for which this node already participates in an
	// inner-circle agreement (as voter or member), suppressing its own
	// duplicate proposal.
	covered map[int64]bool
	propose *sim.Timer
}

// sensorNet is the Fig. 8 scenario component: sensing devices and
// directed-diffusion dissemination per node, base-station bookkeeping at
// node 0, and the epoch-driven sensing application.
type sensorNet struct {
	cfg       SensorConfig
	fuse      func(center link.NodeID, values [][]byte) []byte
	targets   []sensor.Target
	apps      []*sensorApp
	baseDiff  *diffusion.Service
	notifs    []baseNotif
	perTarget map[int][]baseNotif
}

func newSensorNet(cfg SensorConfig) *sensorNet {
	n := cfg.Nodes
	if n < 0 {
		n = 0
	}
	return &sensorNet{
		cfg:       cfg,
		fuse:      makeSensorFuse(cfg),
		apps:      make([]*sensorApp, n),
		perTarget: make(map[int][]baseNotif),
	}
}

// Reset implements scenario.Resetter: a sharded attempt that aborts on a
// timestamp tie is rerun on one kernel with the same component values, so
// every piece of replica state accumulated by the abandoned attempt —
// target schedule, app array, base-station log — must be dropped first.
func (sc *sensorNet) Reset() {
	n := len(sc.apps)
	sc.targets = nil
	sc.apps = make([]*sensorApp, n)
	sc.baseDiff = nil
	sc.notifs = nil
	sc.perTarget = make(map[int][]baseNotif)
}

// Validate implements scenario.Validator: the population floor and the
// parameter gaps that would wedge the run (a non-positive sense period
// stalls the epoch chain; a non-positive target period loops target
// generation forever).
func (sc *sensorNet) Validate(s *scenario.Spec) error {
	if s.Nodes < 10 {
		return fmt.Errorf("experiment: need at least 10 nodes")
	}
	c := &sc.cfg
	if c.Region <= 0 || c.Range <= 0 {
		return fmt.Errorf("experiment: sensor scenario needs positive region and radio range")
	}
	if c.SensePeriod <= 0 {
		return fmt.Errorf("experiment: sensor scenario needs positive sense period")
	}
	if !c.NoTarget && c.TargetPeriod <= 0 {
		return fmt.Errorf("experiment: sensor scenario needs positive target period")
	}
	return nil
}

// Wire implements scenario.Wirer: draw the target schedule. Onset is
// uniformly random within a sensing period, so the first post-onset
// sensing epoch lags the target by U(0, SensePeriod) — the sampling-phase
// component of detection latency.
func (sc *sensorNet) Wire(env *scenario.Env) {
	c := &sc.cfg
	if c.NoTarget {
		return
	}
	tgtRNG := env.SeedStream("targets")
	for start := c.TargetStart; start+c.TargetDuration <= c.SimTime; start += c.TargetPeriod {
		onset := start + tgtRNG.Jitter(c.SensePeriod)
		sc.targets = append(sc.targets, sensor.Target{
			Pos: geo.Point{
				X: tgtRNG.Uniform(0.2*c.Region, 0.8*c.Region),
				Y: tgtRNG.Uniform(0.2*c.Region, 0.8*c.Region),
			},
			Start: onset,
			End:   onset + c.TargetDuration,
		})
	}
}

// Register implements scenario.Registrar (IC mode): the app is created in
// node.Build's voting pass so its hooks become the vote callbacks.
func (sc *sensorNet) Register(_ *scenario.Env, nd *node.Node) vote.Callbacks {
	app := &sensorApp{nd: nd, cfg: &sc.cfg, covered: make(map[int64]bool)}
	sc.apps[nd.Index] = app
	return vote.Callbacks{
		LocalValue: app.localValue,
		Fuse:       sc.fuse,
		OnAgreed:   app.onAgreed,
	}
}

// Attach implements scenario.Component: diffusion dissemination on every
// node — exploratory-flood (classic directed diffusion's first phase)
// over an unacknowledged broadcast MAC; both configurations use the same
// substrate, the inner-circle solution simply injects far fewer messages
// into it — plus the sensing device (sensors) or sink bookkeeping (base).
func (sc *sensorNet) Attach(env *scenario.Env, nd *node.Node) {
	diffCfg := diffusion.Config{InterestPeriod: 20, GradientTimeout: 60, Unreliable: true, FloodData: true}
	ds, err := diffusion.New(diffCfg, diffusion.Deps{
		ID: nd.ID, K: nd.K, Link: nd.Link, RNG: nd.RNG.Split("diffusion"),
	})
	if err != nil {
		env.Fail(err)
		return
	}
	nd.Handle(ds.HandleEnv)
	i := nd.Index
	if sc.apps[i] == nil { // No-IC path (IC callbacks already made one)
		sc.apps[i] = &sensorApp{nd: nd, cfg: &sc.cfg, covered: make(map[int64]bool)}
	}
	sc.apps[i].diff = ds
	if i == 0 {
		ds.SetSink(true)
		sc.baseDiff = ds
		sc.attachBase(env, nd, ds)
		return
	}
	sc.apps[i].dev = sensor.NewDevice(sc.cfg.Model, env.Positions[i], sc.cfg.Lambda, nd.RNG.Split("sensor"))
}

// attachBase hooks the base station's delivery upcall: decode, verify in
// IC mode, classify against the target schedule, record.
func (sc *sensorNet) attachBase(env *scenario.Env, baseNode *node.Node, ds *diffusion.Service) {
	c := &sc.cfg
	ds.OnDeliver(func(src link.NodeID, hops int, payload link.Message) {
		// The base station's own kernel, not env.K(): under sharding the
		// delivery upcall runs on the base's home shard, whose clock is the
		// only one this callback may read.
		now := baseNode.K.Now()
		var n sensor.Notification
		switch m := payload.(type) {
		case notifMsg:
			if c.IC {
				return // raw notifications are not accepted in IC mode
			}
			d, err := sensor.DecodeNotification(m.Data)
			if err != nil {
				return
			}
			n = d
		case agreedWrap:
			if !c.IC {
				return
			}
			if baseNode.Vote.VerifyAgreed(m.M) != nil {
				return // remote signature check failed
			}
			d, err := sensor.DecodeNotification(m.M.Value)
			if err != nil {
				return
			}
			n = d
		default:
			return
		}
		bn := baseNotif{at: now, notif: n, target: sc.classify(now)}
		sc.notifs = append(sc.notifs, bn)
		if bn.target >= 0 {
			sc.perTarget[bn.target] = append(sc.perTarget[bn.target], bn)
		}
	})
}

// classify returns the target index whose window (plus in-flight slack)
// covers at, or -1 for a spurious notification.
func (sc *sensorNet) classify(at sim.Time) int {
	const slack = 5
	for ti, tg := range sc.targets {
		if at >= tg.Start && at < tg.End+slack {
			return ti
		}
	}
	return -1
}

// activeTarget returns the position of the target active at time at, or
// nil.
func (sc *sensorNet) activeTarget(at sim.Time) *geo.Point {
	for _, tg := range sc.targets {
		if tg.ActiveAt(at) {
			return &tg.Pos
		}
	}
	return nil
}

// Start implements scenario.Starter: bring up the base station's interest
// flooding shortly after t=0, on the base station's own kernel (its home
// shard's when the replica is partitioned).
func (sc *sensorNet) Start(env *scenario.Env) {
	sc.apps[0].nd.K.MustSchedule(0.1, func() { sc.baseDiff.Start() })
}

// onEpoch runs one synchronized sensing epoch across all sensors (the
// traffic program's epoch trigger on a single-kernel replica).
func (sc *sensorNet) onEpoch(epoch int64, now sim.Time) {
	tpos := sc.activeTarget(now)
	for i := 1; i < len(sc.apps); i++ {
		sc.apps[i].sense(epoch, tpos)
	}
}

// onEpochNode is the per-node epoch hook for partitioned replicas: the
// same sensing work as onEpoch, issued by each node's home shard. The
// target schedule is immutable during the run, so concurrent reads from
// every shard are safe.
func (sc *sensorNet) onEpochNode(epoch int64, now sim.Time, node int) {
	if node == 0 {
		return // the base station does not sense
	}
	sc.apps[node].sense(epoch, sc.activeTarget(now))
}

// Harvest implements scenario.Harvester: fold the base station's log into
// the paper's Fig. 8 metrics.
func (sc *sensorNet) Harvest(env *scenario.Env, res *scenario.Result) {
	c := &sc.cfg
	res.Counters.Add(ctrTargets, uint64(len(sc.targets)))
	var latSum, locSum float64
	detected, missed := 0, 0
	for ti, tg := range sc.targets {
		ns := sc.perTarget[ti]
		if len(ns) == 0 {
			missed++
			continue
		}
		detected++
		latSum += float64(ns[0].at - tg.Start)
		var pts []geo.Point
		for _, bn := range ns {
			pts = append(pts, bn.notif.Pos)
		}
		locSum += geo.Centroid(pts).Dist(tg.Pos)
	}
	res.Counters.Add(ctrMissed, uint64(missed))
	res.Counters.Add(ctrNotifications, uint64(len(sc.notifs)))
	if len(sc.targets) > 0 {
		res.Gauges.Set(gaugeMissAlarm, float64(missed)/float64(len(sc.targets)))
	}
	if detected > 0 {
		res.Gauges.Set(gaugeLatency, latSum/float64(detected))
		res.Gauges.Set(gaugeLocErr, locSum/float64(detected))
	}
	spurious := 0
	for _, bn := range sc.notifs {
		if bn.target < 0 {
			spurious++
		}
	}
	// Per sensor-epoch false alarm probability (percent): spurious
	// notifications accepted at the base over sensor-epochs without an
	// active target.
	noTargetEpochs := 0
	for e := int64(1); ; e++ {
		at := sim.Time(e) * c.SensePeriod
		if at >= c.SimTime {
			break
		}
		if sc.activeTarget(at) == nil {
			noTargetEpochs++
		}
	}
	if noTargetEpochs > 0 {
		res.Gauges.Set(gaugeFalseAlarm, 100*float64(spurious)/float64(noTargetEpochs*(env.Spec.Nodes-1)))
	}
	res.Gauges.Set(gaugeTrafficE,
		res.Gauges.Get(scenario.GaugeEnergyPerNodeJ)-energy.NS2Default().IdlePower*float64(c.SimTime))
}

// deviceFaults is the Fig. 8 adversary: Faulty sensing devices (chosen
// among indices 1..Nodes-1 from the "faults" stream) injected with the
// configured measurement fault.
type deviceFaults struct {
	sc *sensorNet
}

// Budget implements scenario.Adversary: device faults claim no
// attacker-order nodes (they corrupt measurements, not the population the
// traffic program reserves).
func (d deviceFaults) Budget(int) (int, error) { return 0, nil }

// ShardSafeAdversary implements scenario.ShardSafe: Apply only flips
// pre-run flags on sensing devices, and a faulty device's runtime effects
// stay on its own node's kernel.
func (d deviceFaults) ShardSafeAdversary() {}

// Apply implements scenario.Adversary.
func (d deviceFaults) Apply(env *scenario.Env, _ []int) (scenario.Harvester, error) {
	c := &d.sc.cfg
	faultRNG := env.SeedStream("faults")
	perm := faultRNG.Perm(env.Spec.Nodes - 1)
	region := geo.Square(c.Region)
	for i := 0; i < c.Faulty && i < len(perm); i++ {
		d.sc.apps[perm[i]+1].dev.InjectFault(c.Fault, c.FaultParams, region)
	}
	return nil, nil
}

// sensorSpec assembles the declarative Fig. 8 scenario.
func sensorSpec(cfg SensorConfig) (*scenario.Spec, error) {
	stsCfg := sts.Config{}
	voteCfg := vote.Config{}
	var keys []*nsl.KeyPair
	if cfg.IC {
		stsCfg = sts.Config{
			Period:          45, // τ < ∆STS/2 with ∆STS = 100 s (Fig. 8 box)
			Delta:           100,
			Authenticate:    true,
			Handshake:       false,
			BeaconBaseBytes: 28,
		}
		voteCfg = vote.Config{Mode: vote.Statistical, L: cfg.L, RoundTimeout: 0.5, Retries: 1}
		var err error
		keys, err = cachedSensorKeys(cfg.Nodes)
		if err != nil {
			return nil, err
		}
	}
	sc := newSensorNet(cfg)
	spec := &scenario.Spec{
		Name:    "sensornet",
		Nodes:   cfg.Nodes,
		Seed:    cfg.Seed,
		SimTime: cfg.SimTime,
		Shards:  cfg.Shards,
		Topology: scenario.BaseStationGrid{
			Region:     geo.Square(cfg.Region),
			GridJitter: cfg.Region / 50,
			Uniform:    cfg.UniformPlacement,
		},
		Stack: scenario.Stack{
			Radio:        radio.Params{Range: cfg.Range, Bitrate: 2e6, PropSpeed: 3e8},
			MAC:          mac.Default80211(),
			Energy:       energy.NS2Default(),
			IC:           cfg.IC,
			STS:          stsCfg,
			Vote:         voteCfg,
			MaxL:         max(cfg.L, 2),
			Keys:         keys,
			SigWireBytes: 64, // 512-bit keys per the Fig. 8 box
			// STS starts are jittered to avoid a synchronized beacon
			// collision storm at t=0.
			STSStart:   scenario.STSStart{Jitter: 2},
			Components: []scenario.Component{sc},
		},
		Traffic: &traffic.Epochs{Period: cfg.SensePeriod, OnEpoch: sc.onEpoch, OnNode: sc.onEpochNode},
		Churn:   cfg.Churn,
	}
	if cfg.Fault != sensor.FaultNone {
		spec.Adversary = deviceFaults{sc: sc}
	}
	return spec, nil
}

// RunSensor executes one Fig. 8 simulation run.
func RunSensor(cfg SensorConfig) (SensorResult, error) {
	out, _, err := runSensorShards(cfg)
	return out, err
}

// runSensorShards is RunSensor plus the shard count the replica actually
// executed with (provenance for the artifact manifests).
func runSensorShards(cfg SensorConfig) (SensorResult, int, error) {
	spec, err := sensorSpec(cfg)
	if err != nil {
		return SensorResult{}, 0, err
	}
	res, err := scenario.Run(spec)
	if err != nil {
		return SensorResult{}, 0, fmt.Errorf("experiment: %w", err)
	}
	return SensorResult{
		Targets:          int(res.Counter(ctrTargets)),
		Missed:           int(res.Counter(ctrMissed)),
		Notifications:    int(res.Counter(ctrNotifications)),
		MissAlarm:        res.Gauge(gaugeMissAlarm),
		FalseAlarmProb:   res.Gauge(gaugeFalseAlarm),
		DetectionLatency: res.Gauge(gaugeLatency),
		LocalizationErr:  res.Gauge(gaugeLocErr),
		EnergyPerNode:    res.Gauge(scenario.GaugeEnergyPerNodeJ),
		TrafficEnergy:    res.Gauge(gaugeTrafficE),
		ChurnEvents:      int(res.Counter(scenario.CtrChurnEvents)),
		ChurnReshares:    int(res.Counter(scenario.CtrChurnReshares)),
		ChurnRefreshes:   int(res.Counter(scenario.CtrChurnRefreshes)),
		RoundsAborted:    int(res.Counter(scenario.CtrChurnAborted)),
		MembershipEpoch:  int(res.Gauge(scenario.GaugeMembershipEpoch)),
	}, res.Shards, nil
}

// SensorPair is one Fig. 8 grid point's paired replicas: the with-target
// run (Figs. 8 a–c, e–f) and the no-target run (Fig. 8 d). The pair
// shares a seed and reports together, as in the paper's sweep.
type SensorPair struct {
	Target   SensorResult `json:"target"`
	NoTarget SensorResult `json:"no_target"`
}

// RunSensorPair executes one Fig. 8 grid point (both paired replicas).
func RunSensorPair(cfg SensorConfig) (SensorPair, error) {
	p, _, err := runSensorPairShards(cfg)
	return p, err
}

// runSensorPairShards is RunSensorPair plus the executed shard count (the
// maximum over the pair — provenance for the artifact manifests).
func runSensorPairShards(cfg SensorConfig) (SensorPair, int, error) {
	res, shards, err := runSensorShards(cfg)
	if err != nil {
		return SensorPair{}, 0, err
	}
	ntCfg := cfg
	ntCfg.NoTarget = true
	ntRes, ntShards, err := runSensorShards(ntCfg)
	if err != nil {
		return SensorPair{}, 0, err
	}
	return SensorPair{Target: res, NoTarget: ntRes}, max(shards, ntShards), nil
}

type baseNotif struct {
	at     sim.Time
	notif  sensor.Notification
	target int
}

// sense runs one sensing epoch at a sensor node.
func (a *sensorApp) sense(epoch int64, target *geo.Point) {
	a.epoch = epoch
	a.reading = a.dev.Sample(target)
	if !a.reading.Detected {
		return
	}
	n := sensor.Notification{
		Time:   a.nd.K.Now(),
		Energy: a.reading.Energy,
		Pos:    a.dev.ReportedPos(),
	}
	if !a.cfg.IC {
		// Centralized solution: raw notification straight to the base.
		_ = a.diff.Send(notifMsg{Data: n.Encode()})
		return
	}
	// Inner-circle solution: propose with a small jitter; drop the
	// proposal if a neighbouring circle covers this epoch first
	// (duplicate suppression).
	if a.covered[epoch] {
		return
	}
	e := epoch
	if a.propose == nil {
		a.propose = sim.NewTimer(a.nd.K, func() {})
	}
	a.propose.Stop()
	jitter := a.nd.RNG.Jitter(1.0)
	a.propose = sim.NewTimer(a.nd.K, func() {
		if a.covered[e] || a.epoch != e {
			return
		}
		_ = a.nd.Vote.Propose(n.Encode())
	})
	a.propose.Reset(jitter)
}

// localValue answers a statistical-voting solicit: contribute this node's
// reading when it detected a target in the current epoch.
func (a *sensorApp) localValue(center link.NodeID, meta []byte) ([]byte, bool) {
	if a.dev == nil || !a.reading.Detected {
		return nil, false
	}
	// Participating in a neighbour's round covers this epoch: suppress our
	// own duplicate proposal.
	a.covered[a.epoch] = true
	n := sensor.Notification{
		Time:   a.nd.K.Now(),
		Energy: a.reading.Energy,
		Pos:    a.dev.ReportedPos(),
	}
	return n.Encode(), true
}

// onAgreed runs at inner-circle members when a round completes: members
// suppress their own proposals, and the center forwards the agreed message
// to the base station.
func (a *sensorApp) onAgreed(m vote.AgreedMsg) {
	a.covered[a.epoch] = true
	if m.Center == a.nd.ID && a.diff != nil {
		_ = a.diff.Send(agreedWrap{M: m})
	}
}

// makeSensorFuse builds the statistical fusion function of §5.2: per-field
// FT-cluster fusion of the notifications, with the target position derived
// by trilateration over all anchor triples and filtered by the FT-cluster
// algorithm (η from the config).
func makeSensorFuse(cfg SensorConfig) func(center link.NodeID, values [][]byte) []byte {
	return func(center link.NodeID, values [][]byte) []byte {
		var times, energies []fusion.Vec
		var anchors []geo.Point
		var dists []float64
		for _, v := range values {
			n, err := sensor.DecodeNotification(v)
			if err != nil {
				continue
			}
			times = append(times, fusion.V1(float64(n.Time)))
			energies = append(energies, fusion.V1(n.Energy))
			if d, err := cfg.Model.DistanceFor(n.Energy); err == nil {
				anchors = append(anchors, n.Pos)
				dists = append(dists, d)
			}
		}
		if len(times) == 0 {
			return nil
		}
		fusedTime := fuse1(cfg.Fusion, times, 2*float64(cfg.SensePeriod))
		fusedEnergy := fuse1(cfg.Fusion, energies, 4*cfg.Model.SigmaN*cfg.Model.SigmaN*10)
		// Position: trilaterate all triples (capped at 3L estimates, per
		// the paper), apply the application-aware range check (estimates
		// must fall inside the deployment region — near-collinear anchor
		// triples produce wild solutions), then filter with the
		// FT-cluster algorithm.
		pos := geo.Centroid(anchors)
		region := geo.Square(cfg.Region)
		ests := fusion.TrilaterateAll(anchors, dists, 3*len(values))
		var obs []fusion.Vec
		for _, e := range ests {
			if region.Contains(e) {
				obs = append(obs, fusion.V2(e.X, e.Y))
			}
		}
		if len(obs) > 0 {
			if est := fuse2(cfg.Fusion, obs, cfg.Eta); est != nil {
				pos = geo.Point{X: est[0], Y: est[1]}
			}
		}
		out := sensor.Notification{Time: sim.Time(fusedTime), Energy: fusedEnergy, Pos: pos}
		return out.Encode()
	}
}

// fuse1 fuses scalar observations with the selected algorithm.
func fuse1(alg FusionAlg, obs []fusion.Vec, eta float64) float64 {
	est := fuse2(alg, obs, eta)
	if len(est) == 0 {
		return 0
	}
	return est[0]
}

// fuse2 fuses vector observations with the selected algorithm; nil on
// failure.
func fuse2(alg FusionAlg, obs []fusion.Vec, eta float64) fusion.Vec {
	switch alg {
	case FusionMean:
		// Tolerate up to a third faulty inputs, the paper's working point.
		f := (len(obs) - 1) / 3
		if v, err := fusion.FTMean(obs, f); err == nil {
			return v
		}
		return nil
	case FusionNaive:
		if v, err := fusion.Centroid(obs); err == nil {
			return v
		}
		return nil
	default:
		if r, err := fusion.FTCluster(obs, eta); err == nil {
			return r.Estimate
		}
		return nil
	}
}

// SensorTableKeys is the Fig. 8 table order — the order the sensornet
// CLI prints and the repro pipeline renders.
var SensorTableKeys = []string{"miss", "false", "energyT", "energyNT", "latency", "locerr"}

// NewSensorTables returns the six empty Fig. 8 tables.
func NewSensorTables() map[string]*stats.Table {
	return map[string]*stats.Table{
		"miss":     stats.NewTable("Fig. 8(a) Miss alarm probability [%]", "config \\ fault"),
		"false":    stats.NewTable("Fig. 8(b) False alarm probability [% per sensor-epoch]", "config \\ fault"),
		"energyT":  stats.NewTable("Fig. 8(c) Energy consumption with target [J/node]", "config \\ fault"),
		"energyNT": stats.NewTable("Fig. 8(d) Energy consumption with no target [J/node]", "config \\ fault"),
		"latency":  stats.NewTable("Fig. 8(e) Target detection latency [s]", "config \\ fault"),
		"locerr":   stats.NewTable("Fig. 8(f) Target localization error [m]", "config \\ fault"),
	}
}

// SensorPoints enumerates the Fig. 8 sweep grid: configurations {No IC,
// IC L=l...} × fault models × runs with the sweep's seed schedule
// (base.Seed + run). One point covers a replica's paired runs (with and
// without the target). Enumeration order is the folding contract shared
// with the experiment service.
func SensorPoints(base SensorConfig, levels []int, faults []sensor.FaultKind, runs int) []GridPoint[SensorConfig] {
	var points []GridPoint[SensorConfig]
	for _, row := range configRows(levels) {
		for _, fault := range faults {
			for run := 0; run < runs; run++ {
				cfg := base
				cfg.IC = row.ic
				if row.level > 0 {
					cfg.L = row.level
				}
				cfg.Fault = fault
				cfg.Seed = base.Seed + int64(run)
				points = append(points, GridPoint[SensorConfig]{
					Label:  fmt.Sprintf("%s fault=%s run=%d", row.label, fault, run),
					Row:    row.label,
					Col:    fault.String(),
					Config: cfg,
				})
			}
		}
	}
	return points
}

// FoldSensor folds one grid point's paired results into the Fig. 8
// tables. Latency and localization error only exist when at least one
// target was detected.
func FoldSensor(tables map[string]*stats.Table, row, col string, p SensorPair) {
	tables["miss"].Add(row, col, 100*p.Target.MissAlarm)
	tables["false"].Add(row, col, p.Target.FalseAlarmProb)
	tables["energyT"].Add(row, col, p.Target.EnergyPerNode)
	if p.Target.Targets > p.Target.Missed {
		tables["latency"].Add(row, col, p.Target.DetectionLatency)
		tables["locerr"].Add(row, col, p.Target.LocalizationErr)
	}
	tables["energyNT"].Add(row, col, p.NoTarget.EnergyPerNode)
}

// SensorSweep runs the Fig. 8 sweep: configurations {No IC, IC L=2..7} ×
// fault models, producing the six tables of Fig. 8 (a)–(f).
//
// Replicas run on the parallel replica engine (see pool.go); results fold
// into the tables in enumeration order, so the output is identical for any
// worker count (IC_WORKERS overrides the default of one worker per core).
func SensorSweep(base SensorConfig, levels []int, faults []sensor.FaultKind, runs int, progress io.Writer) (map[string]*stats.Table, error) {
	tables := NewSensorTables()
	err := SweepGrid(SensorPoints(base, levels, faults, runs), RunSensorPair,
		progress,
		func(label string, p SensorPair) string {
			return fmt.Sprintf("%s: miss=%.0f%% false=%.2f%% lat=%.2fs loc=%.1fm E=%.2fJ/%.2fJ\n",
				label, 100*p.Target.MissAlarm, p.Target.FalseAlarmProb,
				p.Target.DetectionLatency, p.Target.LocalizationErr, p.Target.EnergyPerNode, p.NoTarget.EnergyPerNode)
		},
		func(row, col string, p SensorPair) {
			FoldSensor(tables, row, col, p)
		})
	if err != nil {
		return nil, err
	}
	return tables, nil
}
