package experiment

import (
	"fmt"
	"io"
	"sync"

	"innercircle/internal/diffusion"
	"innercircle/internal/energy"
	"innercircle/internal/fusion"
	"innercircle/internal/geo"
	"innercircle/internal/link"
	"innercircle/internal/mac"
	"innercircle/internal/mobility"
	"innercircle/internal/node"
	"innercircle/internal/radio"
	"innercircle/internal/sensor"
	"innercircle/internal/sim"
	"innercircle/internal/stats"
	"innercircle/internal/sts"
	"innercircle/internal/vote"

	"innercircle/internal/crypto/nsl"
)

// SensorConfig parameterizes one Fig. 8 run. Node 0 is the base station at
// the region's centre; the remaining Nodes-1 sensors sit on a jittered
// grid.
type SensorConfig struct {
	Nodes          int     // 100 (1 base + 99 sensors)
	Region         float64 // 200 m square
	Range          float64 // 40 m
	SimTime        sim.Time
	SensePeriod    sim.Duration // 5 s, synchronized epochs
	Lambda         float64      // 6.635
	Model          sensor.SignalModel
	TargetStart    sim.Time     // first target onset (50 s)
	TargetPeriod   sim.Duration // 100 s
	TargetDuration sim.Duration // 25 s
	NoTarget       bool         // Fig. 8(d): run without any target
	Faulty         int
	Fault          sensor.FaultKind
	FaultParams    sensor.FaultParams
	IC             bool
	L              int
	Eta            float64 // FT-cluster threshold (5)
	// Fusion selects the statistical fusion algorithm (ablation A3 in
	// situ); default FusionCluster.
	Fusion FusionAlg
	// UniformPlacement scatters sensors uniformly instead of on the
	// default jittered grid. Uniform deployments have thin patches, which
	// matters for the weak-signal miss-alarm results (§5.2).
	UniformPlacement bool
	Seed             int64
}

// FusionAlg selects the fault-tolerant fusion used by statistical voting.
type FusionAlg int

// Fusion algorithms.
const (
	// FusionCluster is the paper's FT-cluster algorithm (default).
	FusionCluster FusionAlg = iota
	// FusionMean is the Dolev-style fault-tolerant mean baseline.
	FusionMean
	// FusionNaive averages everything (no fault tolerance).
	FusionNaive
)

// PaperSensorConfig returns the Fig. 8 parameter box.
func PaperSensorConfig() SensorConfig {
	return SensorConfig{
		Nodes:          100,
		Region:         200,
		Range:          40,
		SimTime:        200,
		SensePeriod:    5,
		Lambda:         sensor.NeymanPearsonLambda,
		Model:          sensor.Paper(),
		TargetStart:    50,
		TargetPeriod:   100,
		TargetDuration: 25,
		Faulty:         10,
		Fault:          sensor.FaultNone,
		FaultParams:    sensor.PaperFaults(),
		L:              3,
		Eta:            5,
	}
}

// SensorResult is the outcome of one run.
type SensorResult struct {
	Targets          int
	Missed           int
	MissAlarm        float64 // fraction of targets never reported at base
	FalseAlarmProb   float64 // spurious notifications per sensor-epoch, percent
	EnergyPerNode    float64 // joules over the whole run
	TrafficEnergy    float64 // joules minus the common idle floor
	DetectionLatency float64 // seconds, mean over detected targets
	LocalizationErr  float64 // metres, mean over detected targets
	Notifications    int     // total notifications the base accepted
}

// notifMsg wraps an encoded notification for transport (the centralized
// solution's raw report).
type notifMsg struct {
	Data []byte
}

// Size implements link.Message.
func (m notifMsg) Size() int { return len(m.Data) }

// agreedWrap carries a voted agreed message through diffusion.
type agreedWrap struct {
	M vote.AgreedMsg
}

// Size implements link.Message.
func (w agreedWrap) Size() int { return w.M.Size() }

// sensorKeysOnce caches the 100-node RSA key set across runs: generating
// it dominates run setup otherwise. The set is derived from a fixed seed —
// modulus bit lengths feed beacon-signature wire sizes, so key material
// must be identical across processes for sweeps to reproduce exactly. The
// cache is concurrency-safe: sync.Once guards generation, and replicas on
// the parallel engine only ever read the finished key pairs.
var (
	sensorKeysOnce sync.Once
	sensorKeys     []*nsl.KeyPair
	sensorKeysErr  error
)

func cachedSensorKeys(n int) ([]*nsl.KeyPair, error) {
	sensorKeysOnce.Do(func() {
		sensorKeys, sensorKeysErr = node.GenerateKeySetSeeded(n, 512, 0x5EED0C)
	})
	if sensorKeysErr != nil {
		return nil, sensorKeysErr
	}
	if len(sensorKeys) < n {
		return nil, fmt.Errorf("experiment: cached key set has %d keys, need %d", len(sensorKeys), n)
	}
	return sensorKeys[:n], nil
}

// sensorApp is the per-node application state for the sensor scenario.
type sensorApp struct {
	nd      *node.Node
	dev     *sensor.Device
	diff    *diffusion.Service
	cfg     *SensorConfig
	epoch   int64 // current sensing epoch index
	reading sensor.Reading
	// covered marks epochs for which this node already participates in an
	// inner-circle agreement (as voter or member), suppressing its own
	// duplicate proposal.
	covered map[int64]bool
	propose *sim.Timer
}

// RunSensor executes one Fig. 8 simulation run.
func RunSensor(cfg SensorConfig) (SensorResult, error) {
	if cfg.Nodes < 10 {
		return SensorResult{}, fmt.Errorf("experiment: need at least 10 nodes")
	}
	region := geo.Square(cfg.Region)
	seedRNG := sim.NewRNG(cfg.Seed)

	// Placement: base at the centre, sensors on a jittered grid (or
	// scattered uniformly).
	positions := make([]geo.Point, cfg.Nodes)
	positions[0] = region.Center()
	var sensorsPos []geo.Point
	if cfg.UniformPlacement {
		sensorsPos = mobility.UniformPlacement(region, cfg.Nodes-1, seedRNG.Split("placement"))
	} else {
		sensorsPos = mobility.GridPlacement(region, cfg.Nodes-1, cfg.Region/50, seedRNG.Split("placement"))
	}
	copy(positions[1:], sensorsPos)

	// Targets. Onset is uniformly random within a sensing period, so the
	// first post-onset sensing epoch lags the target by U(0, SensePeriod)
	// — the sampling-phase component of detection latency.
	var targets []sensor.Target
	if !cfg.NoTarget {
		tgtRNG := seedRNG.Split("targets")
		for start := cfg.TargetStart; start+cfg.TargetDuration <= cfg.SimTime; start += cfg.TargetPeriod {
			onset := start + tgtRNG.Jitter(cfg.SensePeriod)
			targets = append(targets, sensor.Target{
				Pos: geo.Point{
					X: tgtRNG.Uniform(0.2*cfg.Region, 0.8*cfg.Region),
					Y: tgtRNG.Uniform(0.2*cfg.Region, 0.8*cfg.Region),
				},
				Start: onset,
				End:   onset + cfg.TargetDuration,
			})
		}
	}

	stsCfg := sts.Config{}
	voteCfg := vote.Config{}
	var keys []*nsl.KeyPair
	if cfg.IC {
		stsCfg = sts.Config{
			Period:          45, // τ < ∆STS/2 with ∆STS = 100 s (Fig. 8 box)
			Delta:           100,
			Authenticate:    true,
			Handshake:       false,
			BeaconBaseBytes: 28,
		}
		voteCfg = vote.Config{Mode: vote.Statistical, L: cfg.L, RoundTimeout: 0.5, Retries: 1}
		var err error
		keys, err = cachedSensorKeys(cfg.Nodes)
		if err != nil {
			return SensorResult{}, err
		}
	}

	apps := make([]*sensorApp, cfg.Nodes)
	fuseFn := makeSensorFuse(cfg)

	ncfg := node.Config{
		N:      cfg.Nodes,
		Seed:   cfg.Seed,
		Radio:  radio.Params{Range: cfg.Range, Bitrate: 2e6, PropSpeed: 3e8},
		MAC:    mac.Default80211(),
		Energy: energy.NS2Default(),
		Mobility: func(i int, _ *sim.RNG) mobility.Model {
			return mobility.Static(positions[i])
		},
		IC:           cfg.IC,
		STS:          stsCfg,
		Vote:         voteCfg,
		MaxL:         max(cfg.L, 2),
		Keys:         keys,
		SigWireBytes: 64, // 512-bit keys per the Fig. 8 box
	}
	if cfg.IC {
		ncfg.Callbacks = func(nd *node.Node) vote.Callbacks {
			app := &sensorApp{nd: nd, cfg: &cfg, covered: make(map[int64]bool)}
			apps[nd.Index] = app
			return vote.Callbacks{
				LocalValue: app.localValue,
				Fuse:       fuseFn,
				OnAgreed:   app.onAgreed,
			}
		}
	}
	net, err := node.Build(ncfg)
	if err != nil {
		return SensorResult{}, fmt.Errorf("experiment: build: %w", err)
	}

	// Diffusion + sensing devices.
	// Exploratory-flood data dissemination (classic directed diffusion's
	// first phase) over an unacknowledged broadcast MAC: both
	// configurations use the same substrate; the inner-circle solution
	// simply injects far fewer messages into it.
	diffCfg := diffusion.Config{InterestPeriod: 20, GradientTimeout: 60, Unreliable: true, FloodData: true}
	base := struct {
		notifs    []baseNotif
		perTarget map[int][]baseNotif
	}{perTarget: make(map[int][]baseNotif)}

	for i, nd := range net.Nodes {
		ds, err := diffusion.New(diffCfg, diffusion.Deps{
			ID: nd.ID, K: nd.K, Link: nd.Link, RNG: nd.RNG.Split("diffusion"),
		})
		if err != nil {
			return SensorResult{}, err
		}
		nd.Handle(ds.HandleEnv)
		if apps[i] == nil { // No-IC path (IC callbacks already made one)
			apps[i] = &sensorApp{nd: nd, cfg: &cfg, covered: make(map[int64]bool)}
		}
		apps[i].diff = ds
		if i == 0 {
			ds.SetSink(true)
		} else {
			apps[i].dev = sensor.NewDevice(cfg.Model, positions[i], cfg.Lambda, nd.RNG.Split("sensor"))
		}
	}

	// Fault injection: Faulty sensors chosen among indices 1..Nodes-1.
	faultRNG := seedRNG.Split("faults")
	if cfg.Fault != sensor.FaultNone {
		perm := faultRNG.Perm(cfg.Nodes - 1)
		for i := 0; i < cfg.Faulty && i < len(perm); i++ {
			apps[perm[i]+1].dev.InjectFault(cfg.Fault, cfg.FaultParams, region)
		}
	}

	// Base-station bookkeeping.
	classify := func(at sim.Time) int {
		// Returns the target index whose window (plus in-flight slack)
		// covers at, or -1 for a spurious notification.
		const slack = 5
		for ti, tg := range targets {
			if at >= tg.Start && at < tg.End+slack {
				return ti
			}
		}
		return -1
	}
	baseNode := net.Nodes[0]
	baseDiff := apps[0].diff
	baseDiff.OnDeliver(func(src link.NodeID, hops int, payload link.Message) {
		now := net.K.Now()
		var n sensor.Notification
		switch m := payload.(type) {
		case notifMsg:
			if cfg.IC {
				return // raw notifications are not accepted in IC mode
			}
			d, err := sensor.DecodeNotification(m.Data)
			if err != nil {
				return
			}
			n = d
		case agreedWrap:
			if !cfg.IC {
				return
			}
			if baseNode.Vote.VerifyAgreed(m.M) != nil {
				return // remote signature check failed
			}
			d, err := sensor.DecodeNotification(m.M.Value)
			if err != nil {
				return
			}
			n = d
		default:
			return
		}
		bn := baseNotif{at: now, notif: n, target: classify(now)}
		base.notifs = append(base.notifs, bn)
		if bn.target >= 0 {
			base.perTarget[bn.target] = append(base.perTarget[bn.target], bn)
		}
	})

	// Start services. STS starts are jittered to avoid a synchronized
	// beacon collision storm at t=0.
	startRNG := seedRNG.Split("starts")
	for _, nd := range net.Nodes {
		if nd.STS != nil {
			svc := nd.STS
			net.K.MustSchedule(startRNG.Jitter(2), svc.Start)
		}
	}
	net.K.MustSchedule(0.1, func() { baseDiff.Start() })

	// Sensing epochs: synchronized at multiples of SensePeriod (duty-
	// cycled network).
	activeTarget := func(at sim.Time) *geo.Point {
		for _, tg := range targets {
			if tg.ActiveAt(at) {
				return &tg.Pos
			}
		}
		return nil
	}
	var epochFn func()
	epochIdx := int64(0)
	epochFn = func() {
		now := net.K.Now()
		if now >= cfg.SimTime {
			return
		}
		epochIdx++
		tpos := activeTarget(now)
		for i := 1; i < cfg.Nodes; i++ {
			apps[i].sense(epochIdx, tpos)
		}
		net.K.MustSchedule(cfg.SensePeriod, epochFn)
	}
	net.K.MustSchedule(cfg.SensePeriod, epochFn)

	if err := net.Run(cfg.SimTime); err != nil {
		return SensorResult{}, fmt.Errorf("experiment: run: %w", err)
	}

	// Metrics.
	res := SensorResult{Targets: len(targets), Notifications: len(base.notifs)}
	var latSum, locSum float64
	detected := 0
	for ti, tg := range targets {
		ns := base.perTarget[ti]
		if len(ns) == 0 {
			res.Missed++
			continue
		}
		detected++
		latSum += float64(ns[0].at - tg.Start)
		var pts []geo.Point
		for _, bn := range ns {
			pts = append(pts, bn.notif.Pos)
		}
		locSum += geo.Centroid(pts).Dist(tg.Pos)
	}
	if len(targets) > 0 {
		res.MissAlarm = float64(res.Missed) / float64(len(targets))
	}
	if detected > 0 {
		res.DetectionLatency = latSum / float64(detected)
		res.LocalizationErr = locSum / float64(detected)
	}
	spurious := 0
	for _, bn := range base.notifs {
		if bn.target < 0 {
			spurious++
		}
	}
	// Per sensor-epoch false alarm probability (percent): spurious
	// notifications accepted at the base over sensor-epochs without an
	// active target.
	noTargetEpochs := 0
	for e := int64(1); ; e++ {
		at := sim.Time(e) * cfg.SensePeriod
		if at >= cfg.SimTime {
			break
		}
		if activeTarget(at) == nil {
			noTargetEpochs++
		}
	}
	if noTargetEpochs > 0 {
		res.FalseAlarmProb = 100 * float64(spurious) / float64(noTargetEpochs*(cfg.Nodes-1))
	}
	res.EnergyPerNode = net.TotalEnergy() / float64(cfg.Nodes)
	res.TrafficEnergy = res.EnergyPerNode - energy.NS2Default().IdlePower*float64(cfg.SimTime)
	return res, nil
}

type baseNotif struct {
	at     sim.Time
	notif  sensor.Notification
	target int
}

// sense runs one sensing epoch at a sensor node.
func (a *sensorApp) sense(epoch int64, target *geo.Point) {
	a.epoch = epoch
	a.reading = a.dev.Sample(target)
	if !a.reading.Detected {
		return
	}
	n := sensor.Notification{
		Time:   a.nd.K.Now(),
		Energy: a.reading.Energy,
		Pos:    a.dev.ReportedPos(),
	}
	if !a.cfg.IC {
		// Centralized solution: raw notification straight to the base.
		_ = a.diff.Send(notifMsg{Data: n.Encode()})
		return
	}
	// Inner-circle solution: propose with a small jitter; drop the
	// proposal if a neighbouring circle covers this epoch first
	// (duplicate suppression).
	if a.covered[epoch] {
		return
	}
	e := epoch
	if a.propose == nil {
		a.propose = sim.NewTimer(a.nd.K, func() {})
	}
	a.propose.Stop()
	jitter := a.nd.RNG.Jitter(1.0)
	a.propose = sim.NewTimer(a.nd.K, func() {
		if a.covered[e] || a.epoch != e {
			return
		}
		_ = a.nd.Vote.Propose(n.Encode())
	})
	a.propose.Reset(jitter)
}

// localValue answers a statistical-voting solicit: contribute this node's
// reading when it detected a target in the current epoch.
func (a *sensorApp) localValue(center link.NodeID, meta []byte) ([]byte, bool) {
	if a.dev == nil || !a.reading.Detected {
		return nil, false
	}
	// Participating in a neighbour's round covers this epoch: suppress our
	// own duplicate proposal.
	a.covered[a.epoch] = true
	n := sensor.Notification{
		Time:   a.nd.K.Now(),
		Energy: a.reading.Energy,
		Pos:    a.dev.ReportedPos(),
	}
	return n.Encode(), true
}

// onAgreed runs at inner-circle members when a round completes: members
// suppress their own proposals, and the center forwards the agreed message
// to the base station.
func (a *sensorApp) onAgreed(m vote.AgreedMsg) {
	a.covered[a.epoch] = true
	if m.Center == a.nd.ID && a.diff != nil {
		_ = a.diff.Send(agreedWrap{M: m})
	}
}

// makeSensorFuse builds the statistical fusion function of §5.2: per-field
// FT-cluster fusion of the notifications, with the target position derived
// by trilateration over all anchor triples and filtered by the FT-cluster
// algorithm (η from the config).
func makeSensorFuse(cfg SensorConfig) func(center link.NodeID, values [][]byte) []byte {
	return func(center link.NodeID, values [][]byte) []byte {
		var times, energies []fusion.Vec
		var anchors []geo.Point
		var dists []float64
		for _, v := range values {
			n, err := sensor.DecodeNotification(v)
			if err != nil {
				continue
			}
			times = append(times, fusion.V1(float64(n.Time)))
			energies = append(energies, fusion.V1(n.Energy))
			if d, err := cfg.Model.DistanceFor(n.Energy); err == nil {
				anchors = append(anchors, n.Pos)
				dists = append(dists, d)
			}
		}
		if len(times) == 0 {
			return nil
		}
		fusedTime := fuse1(cfg.Fusion, times, 2*float64(cfg.SensePeriod))
		fusedEnergy := fuse1(cfg.Fusion, energies, 4*cfg.Model.SigmaN*cfg.Model.SigmaN*10)
		// Position: trilaterate all triples (capped at 3L estimates, per
		// the paper), apply the application-aware range check (estimates
		// must fall inside the deployment region — near-collinear anchor
		// triples produce wild solutions), then filter with the
		// FT-cluster algorithm.
		pos := geo.Centroid(anchors)
		region := geo.Square(cfg.Region)
		ests := fusion.TrilaterateAll(anchors, dists, 3*len(values))
		var obs []fusion.Vec
		for _, e := range ests {
			if region.Contains(e) {
				obs = append(obs, fusion.V2(e.X, e.Y))
			}
		}
		if len(obs) > 0 {
			if est := fuse2(cfg.Fusion, obs, cfg.Eta); est != nil {
				pos = geo.Point{X: est[0], Y: est[1]}
			}
		}
		out := sensor.Notification{Time: sim.Time(fusedTime), Energy: fusedEnergy, Pos: pos}
		return out.Encode()
	}
}

// fuse1 fuses scalar observations with the selected algorithm.
func fuse1(alg FusionAlg, obs []fusion.Vec, eta float64) float64 {
	est := fuse2(alg, obs, eta)
	if len(est) == 0 {
		return 0
	}
	return est[0]
}

// fuse2 fuses vector observations with the selected algorithm; nil on
// failure.
func fuse2(alg FusionAlg, obs []fusion.Vec, eta float64) fusion.Vec {
	switch alg {
	case FusionMean:
		// Tolerate up to a third faulty inputs, the paper's working point.
		f := (len(obs) - 1) / 3
		if v, err := fusion.FTMean(obs, f); err == nil {
			return v
		}
		return nil
	case FusionNaive:
		if v, err := fusion.Centroid(obs); err == nil {
			return v
		}
		return nil
	default:
		if r, err := fusion.FTCluster(obs, eta); err == nil {
			return r.Estimate
		}
		return nil
	}
}

// SensorSweep runs the Fig. 8 sweep: configurations {No IC, IC L=2..7} ×
// fault models, producing the six tables of Fig. 8 (a)–(f).
//
// Replicas run on the parallel replica engine (see pool.go); results fold
// into the tables in enumeration order, so the output is identical for any
// worker count (IC_WORKERS overrides the default of one worker per core).
func SensorSweep(base SensorConfig, levels []int, faults []sensor.FaultKind, runs int, progress io.Writer) (map[string]*stats.Table, error) {
	tables := map[string]*stats.Table{
		"miss":     stats.NewTable("Fig. 8(a) Miss alarm probability [%]", "config \\ fault"),
		"false":    stats.NewTable("Fig. 8(b) False alarm probability [% per sensor-epoch]", "config \\ fault"),
		"energyT":  stats.NewTable("Fig. 8(c) Energy consumption with target [J/node]", "config \\ fault"),
		"energyNT": stats.NewTable("Fig. 8(d) Energy consumption with no target [J/node]", "config \\ fault"),
		"latency":  stats.NewTable("Fig. 8(e) Target detection latency [s]", "config \\ fault"),
		"locerr":   stats.NewTable("Fig. 8(f) Target localization error [m]", "config \\ fault"),
	}
	type rowSpec struct {
		label string
		ic    bool
		level int
	}
	rows := []rowSpec{{label: "No IC"}}
	for _, l := range levels {
		rows = append(rows, rowSpec{label: fmt.Sprintf("IC, L=%d", l), ic: true, level: l})
	}
	// Enumerate every (config row × fault × run) replica up front. One job
	// covers a replica's paired runs: with the target (Figs. 8 a–c, e–f)
	// and without (Fig. 8 d) — as in the sequential sweep, the pair shares
	// a seed and reports together.
	type sensorPair struct {
		res, ntRes SensorResult
	}
	type cell struct {
		row, col string
	}
	var jobs []Job
	var cells []cell
	for _, row := range rows {
		for _, fault := range faults {
			for run := 0; run < runs; run++ {
				cfg := base
				cfg.IC = row.ic
				if row.level > 0 {
					cfg.L = row.level
				}
				cfg.Fault = fault
				cfg.Seed = base.Seed + int64(run)
				jobs = append(jobs, Job{
					Index: len(jobs),
					Label: fmt.Sprintf("%s fault=%s run=%d", row.label, fault, run),
					Run: func() (any, error) {
						res, err := RunSensor(cfg)
						if err != nil {
							return nil, err
						}
						ntCfg := cfg
						ntCfg.NoTarget = true
						ntRes, err := RunSensor(ntCfg)
						if err != nil {
							return nil, err
						}
						return sensorPair{res: res, ntRes: ntRes}, nil
					},
				})
				cells = append(cells, cell{row: row.label, col: fault.String()})
			}
		}
	}

	results, err := RunJobs(jobs, 0, progressWriter(progress, func(j Job, result any) string {
		p := result.(sensorPair)
		return fmt.Sprintf("%s: miss=%.0f%% false=%.2f%% lat=%.2fs loc=%.1fm E=%.2fJ/%.2fJ\n",
			j.Label, 100*p.res.MissAlarm, p.res.FalseAlarmProb,
			p.res.DetectionLatency, p.res.LocalizationErr, p.res.EnergyPerNode, p.ntRes.EnergyPerNode)
	}))
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		p := r.(sensorPair)
		row, col := cells[i].row, cells[i].col
		tables["miss"].Add(row, col, 100*p.res.MissAlarm)
		tables["false"].Add(row, col, p.res.FalseAlarmProb)
		tables["energyT"].Add(row, col, p.res.EnergyPerNode)
		if p.res.Targets > p.res.Missed {
			tables["latency"].Add(row, col, p.res.DetectionLatency)
			tables["locerr"].Add(row, col, p.res.LocalizationErr)
		}
		tables["energyNT"].Add(row, col, p.ntRes.EnergyPerNode)
	}
	return tables, nil
}
