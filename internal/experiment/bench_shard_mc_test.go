package experiment

import (
	"fmt"
	"runtime"
	"testing"

	"innercircle/internal/scenario"
	"innercircle/internal/sim"
)

// BenchmarkShardedFieldMC measures the sharded sensor-field replica under
// the multi-core executor variants (BENCH_shard_mc.json). The sub-benchmark
// name carries GOMAXPROCS so sweeping `GOMAXPROCS=1 2 4 8 go test -bench`
// produces distinguishable rows, and each variant pins the executor knobs
// explicitly so ambient environment cannot relabel a row:
//
//	seq           — sequential multi-queue executor (the PR-6 baseline path)
//	par           — one slot goroutine per shard; weighted partition and
//	                message lookahead on (the full feature set)
//	par-legacy    — par with IC_SHARD_PART=legacy: attribution row for the
//	                load-weighted partitioner
//	par-nomsgla   — par with IC_SHARD_MSGLA=off: attribution row for the
//	                tx-aware message-lookahead horizons
//	auto          — no knobs: the core-token-budgeted default, sized to
//	                spare GOMAXPROCS
//
// Shard counts per size follow BenchmarkShardedField (largest tie-free
// count at seed 1), and the executed-shard-count assertion keeps a silent
// fallback or tie rerun from mislabeling a row.
func BenchmarkShardedFieldMC(b *testing.B) {
	variants := []struct {
		name string
		env  map[string]string
	}{
		{"seq", map[string]string{"IC_SHARD_EXEC": "seq"}},
		{"par", map[string]string{"IC_SHARD_EXEC": "par"}},
		{"par-legacy", map[string]string{"IC_SHARD_EXEC": "par", "IC_SHARD_PART": "legacy"}},
		{"par-nomsgla", map[string]string{"IC_SHARD_EXEC": "par", "IC_SHARD_MSGLA": "off"}},
		{"auto", nil},
	}
	knobs := []string{"IC_SHARD_EXEC", "IC_SHARD_GROUPS", "IC_SHARD_PART", "IC_SHARD_MSGLA", "IC_WORKERS", "IC_CORE_BUDGET"}
	procs := runtime.GOMAXPROCS(0)
	for _, p := range []struct{ nodes, shards int }{
		{10000, 6}, {40000, 8}, {100000, 8},
	} {
		for _, v := range variants {
			b.Run(fmt.Sprintf("nodes=%d/procs=%d/exec=%s", p.nodes, procs, v.name), func(b *testing.B) {
				for _, knob := range knobs {
					b.Setenv(knob, v.env[knob])
				}
				cfg := ScaledSensorConfig(p.nodes)
				cfg.Seed = 1
				cfg.Shards = p.shards
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					spec, err := sensorSpec(cfg)
					if err != nil {
						b.Fatal(err)
					}
					res, err := scenario.Run(spec)
					if err != nil {
						b.Fatal(err)
					}
					if res.Shards != p.shards {
						b.Fatalf("replica executed with %d shards, want %d (fallback or tie rerun — numbers would be mislabeled)", res.Shards, p.shards)
					}
				}
			})
		}
	}
}

// BenchmarkStripePartition isolates the partitioner itself — the weighted
// boundary walk is a two-pass O(nodes + cols) scan and must stay invisible
// next to replica construction.
func BenchmarkStripePartition(b *testing.B) {
	for _, variant := range []string{"weighted", "legacy"} {
		b.Run(variant, func(b *testing.B) {
			if variant == "legacy" {
				b.Setenv("IC_SHARD_PART", "legacy")
			} else {
				b.Setenv("IC_SHARD_PART", "")
			}
			cfg := ScaledSensorConfig(40000)
			cfg.Seed = 1
			spec, err := sensorSpec(cfg)
			if err != nil {
				b.Fatal(err)
			}
			positions := spec.Topology.Place(spec.Nodes, sim.NewRNG(cfg.Seed).Split("placement"))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _, eff := scenario.StripePartition(positions, cfg.Range, 8)
				if eff != 8 {
					b.Fatalf("effective = %d, want 8", eff)
				}
			}
		})
	}
}
