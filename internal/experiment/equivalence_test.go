package experiment

import (
	"testing"

	"innercircle/internal/sensor"
)

// The spatial neighbor index (internal/radio/grid.go) must be behaviorally
// invisible at the top of the stack too: whole sweep tables — folded from
// replicas that each run the full node stack over the radio — must come out
// byte-identical with the index on (default) and off (IC_RADIO_INDEX=off).
// Radio-level equivalence is checked in internal/radio; these tests close
// the loop on the two paper scenarios: waypoint mobility (Fig. 7) and the
// static sensor grid (Fig. 8).

func blackholeSweepStrings(t *testing.T) (string, string) {
	t.Helper()
	base := PaperBlackholeConfig()
	base.Nodes = 25
	base.SimTime = 25
	base.Seed = 77
	thr, eng, err := BlackholeSweep(base, []int{0, 2}, []int{1}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return thr.String(), eng.String()
}

func TestIndexEquivalenceBlackholeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep comparison")
	}
	t.Setenv("IC_RADIO_INDEX", "off")
	thrOff, engOff := blackholeSweepStrings(t)
	t.Setenv("IC_RADIO_INDEX", "")
	thrOn, engOn := blackholeSweepStrings(t)
	if thrOn != thrOff {
		t.Fatalf("throughput table diverges with index on/off:\non:\n%s\noff:\n%s", thrOn, thrOff)
	}
	if engOn != engOff {
		t.Fatalf("energy table diverges with index on/off:\non:\n%s\noff:\n%s", engOn, engOff)
	}
}

func sensorSweepStrings(t *testing.T) map[string]string {
	t.Helper()
	base := PaperSensorConfig()
	base.Nodes = 40
	base.SimTime = 100
	base.Seed = 78
	tables, err := SensorSweep(base, []int{3}, []sensor.FaultKind{sensor.FaultNone}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for key, tb := range tables {
		out[key] = tb.String()
	}
	return out
}

func TestIndexEquivalenceSensorSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep comparison")
	}
	t.Setenv("IC_RADIO_INDEX", "off")
	off := sensorSweepStrings(t)
	t.Setenv("IC_RADIO_INDEX", "")
	on := sensorSweepStrings(t)
	for key := range on {
		if on[key] != off[key] {
			t.Fatalf("sensor table %q diverges with index on/off:\non:\n%s\noff:\n%s", key, on[key], off[key])
		}
	}
}
