package experiment

import (
	"fmt"
	"io"

	"innercircle/internal/scenario"
	"innercircle/internal/stats"
)

// ChurnTables bundles the outputs of a membership-churn sweep: what the
// paper's detection metrics cost under churn, plus the lifecycle
// accounting that shows the neutralization machinery actually cycling
// (reshares executed, rounds drained, final key epoch).
type ChurnTables struct {
	Miss     *stats.Table // miss alarm probability [%]
	Energy   *stats.Table // joules per node
	Events   *stats.Table // effective membership transitions per run
	Reshares *stats.Table // reshares executed per run
	Aborted  *stats.Table // vote rounds drained by transitions per run
	Epoch    *stats.Table // final membership epoch per run
}

// NewChurnTables returns the empty churn-sweep table bundle.
func NewChurnTables() *ChurnTables {
	return &ChurnTables{
		Miss:     stats.NewTable("Churn sweep: miss alarm probability [%]", "config \\ churn"),
		Energy:   stats.NewTable("Churn sweep: energy consumption [J/node]", "config \\ churn"),
		Events:   stats.NewTable("Churn sweep: membership transitions [#/run]", "config \\ churn"),
		Reshares: stats.NewTable("Churn sweep: reshares executed [#/run]", "config \\ churn"),
		Aborted:  stats.NewTable("Churn sweep: vote rounds aborted [#/run]", "config \\ churn"),
		Epoch:    stats.NewTable("Churn sweep: final key epoch [#]", "config \\ churn"),
	}
}

// ChurnPoints enumerates the churn sweep grid: IC configurations at each
// dependability level × crash-and-rejoin counts × runs, with per-replica
// seeds base.Seed + 1000*ci + run (ci = churn-rate index), mirroring
// CampaignPoints' schedule. The churn=0 column carries a nil Churn — it
// is exactly the seed sensor sweep's IC replica, which the determinism
// tests pin byte for byte. Non-zero columns copy base.Churn (or the
// default schedule) with CrashRejoin overridden, so a sweep can fix the
// window, downtime, and reshare policy while scaling the rate axis.
// There is no No-IC row: churn is a lifecycle of the inner circle.
func ChurnPoints(base SensorConfig, levels []int, churns []int, runs int) []GridPoint[SensorConfig] {
	var points []GridPoint[SensorConfig]
	for _, level := range levels {
		row := fmt.Sprintf("IC, L=%d", level)
		for ci, churn := range churns {
			for run := 0; run < runs; run++ {
				cfg := base
				cfg.IC = true
				cfg.L = level
				cfg.Seed = base.Seed + int64(1000*ci+run)
				cfg.Churn = nil
				if churn > 0 {
					var c scenario.Churn
					if base.Churn != nil {
						c = *base.Churn
					}
					c.CrashRejoin = churn
					cfg.Churn = &c
				}
				points = append(points, GridPoint[SensorConfig]{
					Label:  fmt.Sprintf("%s churn=%d run=%d", row, churn, run),
					Row:    row,
					Col:    fmt.Sprintf("churn=%d", churn),
					Config: cfg,
				})
			}
		}
	}
	return points
}

// FoldChurn folds one replica's result into the churn tables.
func FoldChurn(t *ChurnTables, row, col string, res SensorResult) {
	t.Miss.Add(row, col, 100*res.MissAlarm)
	t.Energy.Add(row, col, res.EnergyPerNode)
	t.Events.Add(row, col, float64(res.ChurnEvents))
	t.Reshares.Add(row, col, float64(res.ChurnReshares))
	t.Aborted.Add(row, col, float64(res.RoundsAborted))
	t.Epoch.Add(row, col, float64(res.MembershipEpoch))
}

// ValidateChurnSweep checks the inputs a churn sweep shares with the
// experiment service's grid layer.
func ValidateChurnSweep(base SensorConfig, levels, churns []int) error {
	if len(levels) == 0 || len(churns) == 0 {
		return fmt.Errorf("experiment: churn sweep needs at least one level and one churn rate")
	}
	for _, c := range churns {
		if c < 0 {
			return fmt.Errorf("experiment: negative churn rate %d", c)
		}
	}
	return nil
}

// ChurnSweep runs every (IC level × churn rate × run) replica on the
// parallel worker pool: rows are {IC, L=l}, columns the crash-and-rejoin
// counts. Results fold in enumeration order, so the tables are identical
// at any IC_WORKERS count — and since active churn pins every replica to
// one kernel while churn=0 replicas are shard-invariant by the kernel
// contract, at any IC_SHARDS setting too.
func ChurnSweep(base SensorConfig, levels, churns []int, runs int, progress io.Writer) (*ChurnTables, error) {
	if err := ValidateChurnSweep(base, levels, churns); err != nil {
		return nil, err
	}
	t := NewChurnTables()
	err := SweepGrid(ChurnPoints(base, levels, churns, runs), RunSensor, progress,
		func(label string, res SensorResult) string {
			return fmt.Sprintf("%s: miss=%.0f%% events=%d reshares=%d aborted=%d epoch=%d E=%.2fJ\n",
				label, 100*res.MissAlarm, res.ChurnEvents, res.ChurnReshares,
				res.RoundsAborted, res.MembershipEpoch, res.EnergyPerNode)
		},
		func(row, col string, res SensorResult) {
			FoldChurn(t, row, col, res)
		})
	if err != nil {
		return nil, err
	}
	return t, nil
}
