package experiment

import (
	"testing"

	"innercircle/internal/faults"
	"innercircle/internal/stats"
)

// tinyCampaign is a reduced configuration for campaign tests: small
// enough that each replica runs in well under a second, large enough that
// every fault class still fires.
func tinyCampaign() BlackholeConfig {
	cfg := PaperBlackholeConfig()
	cfg.Nodes = 20
	cfg.Connections = 5
	cfg.SimTime = 20
	cfg.Seed = 11
	return cfg
}

func runCampaign(t *testing.T, c faults.Campaign, ic bool, l int) BlackholeResult {
	t.Helper()
	cfg := tinyCampaign()
	cfg.IC = ic
	cfg.L = l
	cfg.Campaign = &c
	res, err := RunBlackhole(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCampaignBlackholePresetMatchesLegacy pins the preset-equivalence
// contract: Campaign=&BlackholePreset(m) is the same adversary as the
// legacy Malicious=m knob, down to every RNG draw.
func TestCampaignBlackholePresetMatchesLegacy(t *testing.T) {
	for _, ic := range []bool{false, true} {
		legacyCfg := tinyCampaign()
		legacyCfg.IC = ic
		legacyCfg.L = 1
		legacyCfg.Malicious = 2
		legacy, err := RunBlackhole(legacyCfg)
		if err != nil {
			t.Fatal(err)
		}
		preset := faults.BlackholePreset(2)
		presetCfg := tinyCampaign()
		presetCfg.IC = ic
		presetCfg.L = 1
		presetCfg.Campaign = &preset
		got, err := RunBlackhole(presetCfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != legacy {
			t.Errorf("ic=%v: preset result %+v != legacy %+v", ic, got, legacy)
		}
	}
}

func TestCampaignGrayholePresetMatchesLegacy(t *testing.T) {
	legacyCfg := tinyCampaign()
	legacyCfg.Malicious = 2
	legacyCfg.GrayProb = 0.5
	legacy, err := RunBlackhole(legacyCfg)
	if err != nil {
		t.Fatal(err)
	}
	preset := faults.GrayholePreset(2, 0.5)
	presetCfg := tinyCampaign()
	presetCfg.Campaign = &preset
	got, err := RunBlackhole(presetCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != legacy {
		t.Errorf("preset result %+v != legacy %+v", got, legacy)
	}
}

// TestCampaignSweepMatchesLegacySweep checks the seeding contract: a
// campaign sweep over {BlackholePreset(0), BlackholePreset(1)} lands on
// the same per-cell samples as the legacy sweep over malicious counts
// {0, 1}, because campaign index ci stands in for m in the seed formula.
func TestCampaignSweepMatchesLegacySweep(t *testing.T) {
	base := tinyCampaign()
	thr, eng, err := BlackholeSweep(base, []int{0, 1}, []int{1}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := CampaignSweep(base, []faults.Campaign{
		faults.BlackholePreset(0), faults.BlackholePreset(1),
	}, []int{1}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	check := func(legacy, campaign *stats.Table, legacyCol, campaignCol string) {
		t.Helper()
		for _, row := range legacy.Rows() {
			want := legacy.Mean(row, legacyCol)
			got := campaign.Mean(row, campaignCol)
			if got != want {
				t.Errorf("%s[%s,%s] = %v, legacy %v", campaign.Title, row, campaignCol, got, want)
			}
		}
	}
	check(thr, tables.Throughput, "0", "blackhole-0")
	check(thr, tables.Throughput, "1", "blackhole-1")
	check(eng, tables.Energy, "0", "blackhole-0")
	check(eng, tables.Energy, "1", "blackhole-1")
}

// TestCampaignSweepWorkerInvariant pins the determinism contract for the
// new sweep: same seed and campaign, byte-identical tables at any worker
// count.
func TestCampaignSweepWorkerInvariant(t *testing.T) {
	mixed := faults.Campaign{Name: "mixed", Entries: []faults.Entry{
		{Fault: faults.Corrupt, Params: faults.Params{P: 0.25}, Targets: faults.Selector{Count: 2}},
		{Fault: faults.Drop, Params: faults.Params{P: 0.5}, Targets: faults.Selector{Nodes: []int{3}}},
		{Fault: faults.Spoof, Targets: faults.Selector{Nodes: []int{4}}},
		{Fault: faults.Byzantine, Targets: faults.Selector{Nodes: []int{5}}},
	}}
	sweep := func() *CampaignTables {
		tables, err := CampaignSweep(tinyCampaign(), []faults.Campaign{mixed}, []int{1}, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		return tables
	}
	t.Setenv("IC_WORKERS", "1")
	serial := sweep()
	t.Setenv("IC_WORKERS", "8")
	parallel := sweep()
	for _, pair := range [][2]*stats.Table{
		{serial.Throughput, parallel.Throughput},
		{serial.Energy, parallel.Energy},
		{serial.Injected, parallel.Injected},
		{serial.Suppressed, parallel.Suppressed},
		{serial.Leaked, parallel.Leaked},
	} {
		want, got := pair[0].StringWithCI(), pair[1].StringWithCI()
		if got != want {
			t.Errorf("table %q differs between IC_WORKERS=1 and 8:\n--- serial ---\n%s--- parallel ---\n%s",
				pair[0].Title, want, got)
		}
	}
}

// The tests below are the neutralization acceptance matrix: for each fault
// class, the injection counter proves the fault fired and the
// suppression/leak counters prove the inner circle neutralized it where
// the paper predicts (§5).

func TestCampaignCorruptLeaksWithoutICSuppressedWithIC(t *testing.T) {
	noIC := runCampaign(t, faults.CorruptPreset(3, 0.25), false, 1)
	if noIC.FaultsInjected == 0 {
		t.Fatal("corrupt preset injected nothing")
	}
	if noIC.FaultsLeaked == 0 {
		t.Fatal("without IC, corrupted payloads should reach applications")
	}
	if noIC.FaultsSuppressed != 0 {
		t.Fatalf("no inner circle, yet %d faults suppressed", noIC.FaultsSuppressed)
	}
	// The inner circle verifies signature-bearing protocol traffic, so
	// corrupted beacons/votes are rejected (suppression counter). Corrupted
	// *application* payloads are not covered by those signatures and still
	// leak — the paper's guarantee is about the control plane.
	ic := runCampaign(t, faults.CorruptPreset(3, 0.25), true, 1)
	if ic.FaultsInjected == 0 {
		t.Fatal("corrupt preset injected nothing under IC")
	}
	if ic.FaultsSuppressed == 0 {
		t.Fatal("IC should reject corrupted signatures (suppression counter is zero)")
	}
}

func TestCampaignSpoofSuppressedByAuthenticatedBeacons(t *testing.T) {
	ic := runCampaign(t, faults.SpoofPreset(2), true, 1)
	if ic.FaultsInjected == 0 {
		t.Fatal("spoof preset forged no beacons")
	}
	if ic.FaultsSuppressed == 0 {
		t.Fatal("authenticated STS should reject forged beacons (suppression counter is zero)")
	}
}

func TestCampaignByzantineVotesSuppressed(t *testing.T) {
	// Voting activity depends on what the run's detections trigger, so this
	// uses a seed whose attacker draw participates in several rounds. (The
	// deterministic per-round demonstration lives in the vote package
	// tests; this checks the counters thread end to end.)
	cfg := tinyCampaign()
	cfg.Seed = 42
	cfg.IC = true
	cfg.L = 1
	c := faults.ByzantinePreset(2)
	cfg.Campaign = &c
	ic, err := RunBlackhole(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ic.FaultsInjected == 0 {
		t.Fatal("byzantine preset told no lies")
	}
	if ic.FaultsSuppressed == 0 {
		t.Fatal("corrupt partial signatures should be rejected (suppression counter is zero)")
	}
}

func TestCampaignDuplicateBeaconsRejectedAsReplays(t *testing.T) {
	dup := faults.Campaign{Name: "dup", Entries: []faults.Entry{
		{Fault: faults.Duplicate, Targets: faults.Selector{Count: 3}},
	}}
	ic := runCampaign(t, dup, true, 1)
	if ic.FaultsInjected == 0 {
		t.Fatal("duplicate preset duplicated nothing")
	}
	if ic.FaultsSuppressed == 0 {
		t.Fatal("replayed beacons should be rejected by the sequence check (suppression counter is zero)")
	}
}

func TestCampaignBlackholeNeutralized(t *testing.T) {
	noIC := runCampaign(t, faults.BlackholePreset(3), false, 1)
	ic := runCampaign(t, faults.BlackholePreset(3), true, 1)
	if noIC.FaultsInjected == 0 || ic.FaultsInjected == 0 {
		t.Fatalf("blackhole preset took no attack actions (%d / %d)", noIC.FaultsInjected, ic.FaultsInjected)
	}
	if ic.Throughput < 2*noIC.Throughput {
		t.Fatalf("IC throughput %.1f%% not clearly above attacked No-IC %.1f%%", ic.Throughput, noIC.Throughput)
	}
}

func TestCampaignChurnTolerated(t *testing.T) {
	// Crash/recovery churn is tolerated (routes re-form), not suppressed:
	// the run completes with traffic flowing and a positive injection count.
	ic := runCampaign(t, faults.ChurnPreset(2, 10, 4), true, 1)
	if ic.FaultsInjected == 0 {
		t.Fatal("churn preset swallowed nothing")
	}
	if ic.Throughput <= 0 {
		t.Fatal("network did not survive crash/recovery churn")
	}
}

func TestCampaignDropDegradesGracefully(t *testing.T) {
	ic := runCampaign(t, faults.DropPreset(2, 0.5), true, 1)
	if ic.FaultsInjected == 0 {
		t.Fatal("drop preset dropped nothing")
	}
	if ic.Throughput <= 0 {
		t.Fatal("network did not survive lossy nodes")
	}
}
