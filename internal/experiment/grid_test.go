package experiment

import (
	"bytes"
	"testing"

	"innercircle/internal/faults"
	"innercircle/internal/sensor"
	"innercircle/internal/stats"
)

// TestReplicaSpecCanonicalDeterministic pins the store-key contract:
// marshalling the same spec twice yields identical bytes, and running the
// same spec twice yields identical result bytes — the property that makes
// content addressing a dedup cache rather than a lottery.
func TestReplicaSpecCanonicalDeterministic(t *testing.T) {
	cfg := smallBlackhole()
	cfg.SimTime = 30
	cfg.Malicious = 2
	spec := ReplicaSpec{Kind: ReplicaBlackhole, Blackhole: &cfg}
	a, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical bytes differ:\n%s\n%s", a, b)
	}
	r1, _, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1, r2) {
		t.Fatalf("same spec produced different result bytes:\n%s\n%s", r1, r2)
	}
	res, err := DecodeReplicaResult(r1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blackhole == nil || res.Blackhole.Sent == 0 {
		t.Fatalf("decoded result lost its payload: %+v", res)
	}
}

// TestDecodeReplicaResultRejectsUnknown: store bytes written by a newer
// schema must fail loudly, not fold zeros into the tables.
func TestDecodeReplicaResultRejectsUnknown(t *testing.T) {
	if _, err := DecodeReplicaResult([]byte(`{"kind":"blackhole","blackhole":{"Sent":1},"extra":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

// TestReplicaSpecValidate covers the tagged union's error surface.
func TestReplicaSpecValidate(t *testing.T) {
	bh := smallBlackhole()
	sn := PaperSensorConfig()
	for _, tc := range []struct {
		name string
		spec ReplicaSpec
		ok   bool
	}{
		{"blackhole ok", ReplicaSpec{Kind: ReplicaBlackhole, Blackhole: &bh}, true},
		{"sensor ok", ReplicaSpec{Kind: ReplicaSensorPair, Sensor: &sn}, true},
		{"unknown kind", ReplicaSpec{Kind: "warp"}, false},
		{"missing config", ReplicaSpec{Kind: ReplicaBlackhole}, false},
		{"cross config", ReplicaSpec{Kind: ReplicaBlackhole, Blackhole: &bh, Sensor: &sn}, false},
	} {
		err := tc.spec.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: error expected", tc.name)
		}
	}
}

// runGrid evaluates a grid the service way: enumerate points, run each
// spec from its serialized form, fold the result bytes into tables.
func runGrid(t *testing.T, g *GridRequest) []*stats.Table {
	t.Helper()
	points, err := g.Points()
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]byte, len(points))
	for i, p := range points {
		b, _, err := p.Spec.Run()
		if err != nil {
			t.Fatalf("point %q: %v", p.Label, err)
		}
		results[i] = b
	}
	tables, err := g.Tables(results)
	if err != nil {
		t.Fatal(err)
	}
	return tables
}

// TestGridMatchesSweeps pins the acceptance criterion that matters most:
// the grid layer (replica specs run one by one, results folded from their
// wire bytes) renders tables byte-identical to the in-process sweeps the
// CLIs call. Float64 values survive a JSON round-trip exactly, and both
// paths share the Points/Fold helpers, so any divergence is a real bug.
func TestGridMatchesSweeps(t *testing.T) {
	t.Run("blackhole", func(t *testing.T) {
		base := smallBlackhole()
		base.SimTime = 30
		thr, eng, err := BlackholeSweep(base, []int{0, 2}, []int{1}, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		g := &GridRequest{Name: "t", Kind: GridBlackhole, Blackhole: &base,
			Malicious: []int{0, 2}, Levels: []int{1}, Runs: 2}
		tables := runGrid(t, g)
		want := thr.StringWithCI() + "\n" + eng.StringWithCI() + "\n"
		if got := g.Render(tables); got != want {
			t.Fatalf("grid tables differ from sweep tables:\n--- sweep ---\n%s--- grid ---\n%s", want, got)
		}
	})
	t.Run("sensor", func(t *testing.T) {
		base := PaperSensorConfig()
		base.Seed = 5
		base.SimTime = 100
		kinds := []sensor.FaultKind{sensor.FaultNone}
		sw, err := SensorSweep(base, []int{3}, kinds, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		g := &GridRequest{Name: "t", Kind: GridSensor, Sensor: &base,
			Levels: []int{3}, Faults: kinds, Runs: 1}
		tables := runGrid(t, g)
		var want bytes.Buffer
		for _, k := range SensorTableKeys {
			want.WriteString(sw[k].StringWithCI())
			want.WriteByte('\n')
		}
		if got := g.Render(tables); got != want.String() {
			t.Fatalf("grid tables differ from sweep tables:\n--- sweep ---\n%s--- grid ---\n%s", want.String(), got)
		}
	})
	t.Run("churn", func(t *testing.T) {
		base := churnBase()
		churns := []int{0, 2}
		ct, err := ChurnSweep(base, []int{3}, churns, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		g := &GridRequest{Name: "t", Kind: GridChurn, Sensor: &base,
			Levels: []int{3}, Churns: churns, Runs: 1}
		tables := runGrid(t, g)
		want := ct.Miss.StringWithCI() + "\n" + ct.Energy.StringWithCI() + "\n" +
			ct.Events.String() + "\n" + ct.Reshares.String() + "\n" +
			ct.Aborted.String() + "\n" + ct.Epoch.String() + "\n"
		if got := g.Render(tables); got != want {
			t.Fatalf("grid tables differ from sweep tables:\n--- sweep ---\n%s--- grid ---\n%s", want, got)
		}
	})
	t.Run("campaign", func(t *testing.T) {
		base := smallBlackhole()
		base.SimTime = 30
		campaigns := []faults.Campaign{faults.BlackholePreset(2)}
		ct, err := CampaignSweep(base, campaigns, []int{1}, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		g := &GridRequest{Name: "t", Kind: GridCampaign, Blackhole: &base,
			Campaigns: campaigns, Levels: []int{1}, Runs: 1}
		tables := runGrid(t, g)
		want := ct.Throughput.StringWithCI() + "\n" + ct.Energy.StringWithCI() + "\n" +
			ct.Injected.String() + "\n" + ct.Suppressed.String() + "\n" +
			ct.Leaked.String() + "\n" + ct.VerifiesAvoided.String() + "\n"
		if got := g.Render(tables); got != want {
			t.Fatalf("grid tables differ from sweep tables:\n--- sweep ---\n%s--- grid ---\n%s", want, got)
		}
	})
}

// TestGridRequestValidate covers the request error surface the service
// relies on to reject malformed submissions before queuing them.
func TestGridRequestValidate(t *testing.T) {
	bh := smallBlackhole()
	sn := PaperSensorConfig()
	for _, tc := range []struct {
		name string
		g    GridRequest
		ok   bool
	}{
		{"blackhole ok", GridRequest{Kind: GridBlackhole, Blackhole: &bh, Malicious: []int{0}, Runs: 1}, true},
		{"sensor ok", GridRequest{Kind: GridSensor, Sensor: &sn, Faults: []sensor.FaultKind{sensor.FaultNone}, Runs: 1}, true},
		{"campaign ok", GridRequest{Kind: GridCampaign, Blackhole: &bh, Campaigns: []faults.Campaign{faults.BlackholePreset(1)}, Runs: 1}, true},
		{"churn ok", GridRequest{Kind: GridChurn, Sensor: &sn, Levels: []int{3}, Churns: []int{0, 2}, Runs: 1}, true},
		{"churn without sensor", GridRequest{Kind: GridChurn, Levels: []int{3}, Churns: []int{0}, Runs: 1}, false},
		{"churn without rates", GridRequest{Kind: GridChurn, Sensor: &sn, Levels: []int{3}, Runs: 1}, false},
		{"churn with blackhole", GridRequest{Kind: GridChurn, Sensor: &sn, Blackhole: &bh, Levels: []int{3}, Churns: []int{0}, Runs: 1}, false},
		{"campaign with churn rates", GridRequest{Kind: GridCampaign, Blackhole: &bh, Campaigns: []faults.Campaign{faults.BlackholePreset(1)}, Churns: []int{1}, Runs: 1}, false},
		{"zero runs", GridRequest{Kind: GridBlackhole, Blackhole: &bh, Malicious: []int{0}}, false},
		{"unknown kind", GridRequest{Kind: "mystery", Runs: 1}, false},
		{"blackhole without config", GridRequest{Kind: GridBlackhole, Malicious: []int{0}, Runs: 1}, false},
		{"blackhole without malicious", GridRequest{Kind: GridBlackhole, Blackhole: &bh, Runs: 1}, false},
		{"sensor with campaign fields", GridRequest{Kind: GridSensor, Sensor: &sn, Faults: []sensor.FaultKind{sensor.FaultNone}, Campaigns: []faults.Campaign{faults.BlackholePreset(1)}, Runs: 1}, false},
		{"campaign without campaigns", GridRequest{Kind: GridCampaign, Blackhole: &bh, Runs: 1}, false},
	} {
		err := tc.g.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: error expected", tc.name)
		}
	}
}

// TestTableCSV pins the long-form CSV rendering the repro analyzer emits.
func TestTableCSV(t *testing.T) {
	tbl := stats.NewTable("T", "r")
	tbl.Add("a,x", "c1", 1)
	tbl.Add("a,x", "c1", 3)
	tbl.Add("b", "c2", 2)
	want := "row,col,n,mean,ci95\n\"a,x\",c1,2,2,1.9599999999999997\nb,c2,1,2,0\n"
	if got := tbl.CSV(); got != want {
		t.Fatalf("CSV mismatch:\ngot:  %q\nwant: %q", got, want)
	}
}
