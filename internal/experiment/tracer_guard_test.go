package experiment

import (
	"strings"
	"testing"

	"innercircle/internal/faults"
	"innercircle/internal/trace"
)

// TestSweepsRejectSharedTracer guards the tracer-ownership rule: a Tracer
// belongs to exactly one replica, so a sweep base config carrying one —
// which every parallel worker would copy by pointer and write into
// concurrently — is rejected up front rather than racing at runtime.
func TestSweepsRejectSharedTracer(t *testing.T) {
	base := tinyCampaign()
	base.Tracer = trace.New(0)

	_, _, err := BlackholeSweep(base, []int{0}, []int{1}, 1, nil)
	if err == nil || !strings.Contains(err.Error(), "Tracer") {
		t.Fatalf("BlackholeSweep accepted a shared tracer (err = %v)", err)
	}

	_, err = CampaignSweep(base, []faults.Campaign{faults.BlackholePreset(0)}, []int{1}, 1, nil)
	if err == nil || !strings.Contains(err.Error(), "Tracer") {
		t.Fatalf("CampaignSweep accepted a shared tracer (err = %v)", err)
	}
}

// TestPerReplicaTracerIsFine pins the supported pattern: each replica
// constructs and owns its own tracer.
func TestPerReplicaTracerIsFine(t *testing.T) {
	cfg := tinyCampaign()
	cfg.Tracer = trace.New(0)
	if _, err := RunBlackhole(cfg); err != nil {
		t.Fatal(err)
	}
	counts := cfg.Tracer.Counts()
	if len(counts) == 0 {
		t.Fatal("per-replica tracer recorded nothing")
	}
}
