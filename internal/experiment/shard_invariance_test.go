package experiment

import (
	"testing"

	"innercircle/internal/scenario"
	"innercircle/internal/sensor"
	"innercircle/internal/stats"
)

// shardSensorTables runs a small sensor sweep at the given shard count and
// renders its tables.
func shardSensorTables(t *testing.T, shards int) []string {
	t.Helper()
	cfg := PaperSensorConfig()
	cfg.Seed = 11
	cfg.SimTime = 100
	cfg.Shards = shards
	tables, err := SensorSweep(cfg, []int{3}, []sensor.FaultKind{sensor.FaultNone, sensor.FaultInterference}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, key := range []string{"miss", "false", "energyT", "energyNT", "latency", "locerr"} {
		out = append(out, tables[key].StringWithCI())
	}
	return out
}

// sweepKnobs is every environment knob that selects a sweep execution
// strategy. Each invariance subtest pins all of them so variants cannot
// leak into each other or inherit strategy from the ambient environment.
var sweepKnobs = []string{"IC_SHARD_EXEC", "IC_SHARD_GROUPS", "IC_SHARD_PART", "IC_WORKERS", "IC_CORE_BUDGET", "IC_SHARD_STATS", "IC_KERNEL_QUEUE"}

// TestSweepShardCountInvariant pins the sharded kernel's determinism
// contract end to end: sweep tables are byte-identical at every shard
// count, under every executor (sequential, goroutine-per-shard, grouped,
// and the core-budgeted default), at every (workers, shards) combination,
// and under both the weighted and legacy stripe partitions. Ambiguous
// cross-shard timestamp ties are allowed to occur — the runner then reruns
// the replica on one kernel — so the equality below holds unconditionally,
// not just on tie-free runs.
func TestSweepShardCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute sweep matrix")
	}
	variants := []struct {
		name   string
		shards int
		env    map[string]string
	}{
		{"seq/shards=2", 2, map[string]string{"IC_SHARD_EXEC": "seq"}},
		{"seq/shards=4", 4, map[string]string{"IC_SHARD_EXEC": "seq"}},
		{"seq/shards=8", 8, map[string]string{"IC_SHARD_EXEC": "seq"}},
		{"par/shards=2", 2, map[string]string{"IC_SHARD_EXEC": "par"}},
		{"par/shards=4", 4, map[string]string{"IC_SHARD_EXEC": "par"}},
		{"par/shards=8", 8, map[string]string{"IC_SHARD_EXEC": "par"}},
		{"budgeted/groups=2/shards=4", 4, map[string]string{"IC_SHARD_GROUPS": "2"}},
		{"budgeted/workers=1/shards=4", 4, map[string]string{"IC_WORKERS": "1"}},
		{"budgeted/workers=4/shards=4", 4, map[string]string{"IC_WORKERS": "4", "IC_CORE_BUDGET": "4"}},
		{"legacy-partition/par/shards=4", 4, map[string]string{"IC_SHARD_EXEC": "par", "IC_SHARD_PART": "legacy"}},
		{"shardstats/par/shards=4", 4, map[string]string{"IC_SHARD_EXEC": "par", "IC_SHARD_STATS": "1"}},
		// The queue axis: the binary heap must reproduce the timer wheel's
		// (default) tables byte-for-byte, unsharded and under both executors.
		{"heap/shards=1", 1, map[string]string{"IC_KERNEL_QUEUE": "heap"}},
		{"heap/seq/shards=4", 4, map[string]string{"IC_KERNEL_QUEUE": "heap", "IC_SHARD_EXEC": "seq"}},
		{"heap/par/shards=4", 4, map[string]string{"IC_KERNEL_QUEUE": "heap", "IC_SHARD_EXEC": "par"}},
		{"wheel/par/shards=4", 4, map[string]string{"IC_KERNEL_QUEUE": "wheel", "IC_SHARD_EXEC": "par"}},
	}
	for _, knob := range sweepKnobs {
		t.Setenv(knob, "")
	}
	want := shardSensorTables(t, 1)
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			for _, knob := range sweepKnobs {
				t.Setenv(knob, v.env[knob])
			}
			got := shardSensorTables(t, v.shards)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("table %d differs between 1 shard and %s:\n--- 1 shard ---\n%s--- %s ---\n%s",
						i, v.name, want[i], v.name, got[i])
				}
			}
		})
	}
}

// TestShardEnvKnob: IC_SHARDS is the environment route to the same
// contract — Spec.Shards == 0 defers to it.
func TestShardEnvKnob(t *testing.T) {
	cfg := PaperSensorConfig()
	cfg.Seed = 3
	cfg.SimTime = 60
	want, err := RunSensor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("IC_SHARDS", "4")
	got, err := RunSensor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("IC_SHARDS=4 result differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestSensorShardingEngages: the sensor field must actually run
// partitioned (not silently fall back) for the configuration the scaling
// benches use. A timestamp-tie rerun would report Shards == 1; ties are
// deterministic per seed, so this pins a seed that executes sharded.
func TestSensorShardingEngages(t *testing.T) {
	cfg := PaperSensorConfig()
	cfg.Seed = 3
	cfg.SimTime = 60
	cfg.Shards = 4
	spec, err := sensorSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 {
		t.Fatalf("replica executed with %d shards, want 4", res.Shards)
	}
}

// TestBlackholeShardFallback: the blackhole scenario cannot shard (mobile
// topology, CBR traffic, fault campaign — each alone rules it out) and
// must fall back to identical single-kernel results.
func TestBlackholeShardFallback(t *testing.T) {
	run := func(shards int) []*stats.Table {
		cfg := smallBlackhole()
		cfg.SimTime = 30
		cfg.Shards = shards
		thr, eng, err := BlackholeSweep(cfg, []int{0, 2}, []int{1}, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		return []*stats.Table{thr, eng}
	}
	want := run(1)
	got := run(4)
	for i := range want {
		if got[i].StringWithCI() != want[i].StringWithCI() {
			t.Errorf("blackhole table %q differs with Shards=4:\n--- 1 ---\n%s--- 4 ---\n%s",
				want[i].Title, want[i].StringWithCI(), got[i].StringWithCI())
		}
	}
}
