package experiment

import (
	"fmt"
	"testing"

	"innercircle/internal/scenario"
	"innercircle/internal/sensor"
	"innercircle/internal/stats"
)

// shardSensorTables runs a small sensor sweep at the given shard count and
// renders its tables.
func shardSensorTables(t *testing.T, shards int) []string {
	t.Helper()
	cfg := PaperSensorConfig()
	cfg.Seed = 11
	cfg.SimTime = 100
	cfg.Shards = shards
	tables, err := SensorSweep(cfg, []int{3}, []sensor.FaultKind{sensor.FaultNone, sensor.FaultInterference}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, key := range []string{"miss", "false", "energyT", "energyNT", "latency", "locerr"} {
		out = append(out, tables[key].StringWithCI())
	}
	return out
}

// TestSweepShardCountInvariant pins the sharded kernel's determinism
// contract end to end: sweep tables are byte-identical for IC_SHARDS ∈
// {1, 2, 4, 8}, under both shard executors. Ambiguous cross-shard
// timestamp ties are allowed to occur — the runner then reruns the replica
// on one kernel — so the equality below holds unconditionally, not just on
// tie-free runs.
func TestSweepShardCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute sweep matrix")
	}
	want := shardSensorTables(t, 1)
	for _, exec := range []string{"seq", "par"} {
		for _, shards := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s/shards=%d", exec, shards), func(t *testing.T) {
				t.Setenv("IC_SHARD_EXEC", exec)
				got := shardSensorTables(t, shards)
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("table %d differs between 1 and %d shards (%s executor):\n--- 1 shard ---\n%s--- %d shards ---\n%s",
							i, shards, exec, want[i], shards, got[i])
					}
				}
			})
		}
	}
}

// TestShardEnvKnob: IC_SHARDS is the environment route to the same
// contract — Spec.Shards == 0 defers to it.
func TestShardEnvKnob(t *testing.T) {
	cfg := PaperSensorConfig()
	cfg.Seed = 3
	cfg.SimTime = 60
	want, err := RunSensor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("IC_SHARDS", "4")
	got, err := RunSensor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("IC_SHARDS=4 result differs:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestSensorShardingEngages: the sensor field must actually run
// partitioned (not silently fall back) for the configuration the scaling
// benches use. A timestamp-tie rerun would report Shards == 1; ties are
// deterministic per seed, so this pins a seed that executes sharded.
func TestSensorShardingEngages(t *testing.T) {
	cfg := PaperSensorConfig()
	cfg.Seed = 3
	cfg.SimTime = 60
	cfg.Shards = 4
	spec, err := sensorSpec(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 {
		t.Fatalf("replica executed with %d shards, want 4", res.Shards)
	}
}

// TestBlackholeShardFallback: the blackhole scenario cannot shard (mobile
// topology, CBR traffic, fault campaign — each alone rules it out) and
// must fall back to identical single-kernel results.
func TestBlackholeShardFallback(t *testing.T) {
	run := func(shards int) []*stats.Table {
		cfg := smallBlackhole()
		cfg.SimTime = 30
		cfg.Shards = shards
		thr, eng, err := BlackholeSweep(cfg, []int{0, 2}, []int{1}, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		return []*stats.Table{thr, eng}
	}
	want := run(1)
	got := run(4)
	for i := range want {
		if got[i].StringWithCI() != want[i].StringWithCI() {
			t.Errorf("blackhole table %q differs with Shards=4:\n--- 1 ---\n%s--- 4 ---\n%s",
				want[i].Title, want[i].StringWithCI(), got[i].StringWithCI())
		}
	}
}
