// Grid layer: the serializable face of the parameter sweeps.
//
// The experiment service (internal/serve) and the repro driver
// (scripts/repro) do not call BlackholeSweep/SensorSweep/CampaignSweep
// directly — those fold results as replicas finish and keep nothing. The
// service instead needs three separable stages with a wire format at
// each seam:
//
//	GridRequest ──Points()──▶ []ReplicaPoint ──Spec.Run()──▶ result bytes
//	result bytes ──Tables()──▶ []*stats.Table ──Render()──▶ CLI text
//
// Every stage shares code with the in-process sweeps (the same
// *Points/Fold*/New*Tables helpers), so a grid evaluated replica-by-
// replica through the content-addressed store renders byte-identical
// tables to the corresponding CLI. The canonical spec bytes double as
// the store key: same spec + same seed → same result bytes → same
// digest, at any worker/shard setting (the kernel's determinism
// contract).
package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"

	"innercircle/internal/faults"
	"innercircle/internal/sensor"
	"innercircle/internal/stats"
)

// Replica spec kinds.
const (
	// ReplicaBlackhole runs one ad-hoc network replica (Fig. 7 / campaign).
	ReplicaBlackhole = "blackhole"
	// ReplicaSensorPair runs one sensor replica pair: the with-target run
	// and its NoTarget sibling under the same seed (Fig. 8's unit of work).
	ReplicaSensorPair = "sensorpair"
	// ReplicaSensor runs one with-target sensor replica — the churn sweep's
	// unit of work, which has no NoTarget sibling (membership lifecycle
	// metrics do not need the false-alarm baseline).
	ReplicaSensor = "sensor"
)

// ReplicaSpec is the wire form of one replica: a tagged union over the
// experiment configs. Its canonical JSON bytes are hashed into the
// content-addressed store's spec digest.
type ReplicaSpec struct {
	Kind      string           `json:"kind"`
	Blackhole *BlackholeConfig `json:"blackhole,omitempty"`
	Sensor    *SensorConfig    `json:"sensor,omitempty"`
}

// Validate checks the union discriminant and the config it selects.
func (s ReplicaSpec) Validate() error {
	switch s.Kind {
	case ReplicaBlackhole:
		if s.Blackhole == nil {
			return fmt.Errorf("experiment: replica spec kind %q without a blackhole config", s.Kind)
		}
		if s.Sensor != nil {
			return fmt.Errorf("experiment: replica spec kind %q carries a sensor config", s.Kind)
		}
		if s.Blackhole.Tracer != nil {
			return fmt.Errorf("experiment: replica spec must not carry a Tracer")
		}
		if s.Blackhole.Campaign != nil {
			if err := s.Blackhole.Campaign.Validate(); err != nil {
				return fmt.Errorf("experiment: %w", err)
			}
		}
	case ReplicaSensorPair, ReplicaSensor:
		if s.Sensor == nil {
			return fmt.Errorf("experiment: replica spec kind %q without a sensor config", s.Kind)
		}
		if s.Blackhole != nil {
			return fmt.Errorf("experiment: replica spec kind %q carries a blackhole config", s.Kind)
		}
	default:
		return fmt.Errorf("experiment: unknown replica spec kind %q", s.Kind)
	}
	return nil
}

// Canonical returns the spec's canonical JSON bytes: Go struct-order
// field emission with omitempty zero suppression, which is deterministic
// for a fixed value — the property the content-addressed store keys on.
func (s ReplicaSpec) Canonical() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s)
}

// Seed returns the replica's base seed (provenance for the manifest).
func (s ReplicaSpec) Seed() int64 {
	switch s.Kind {
	case ReplicaBlackhole:
		if s.Blackhole != nil {
			return s.Blackhole.Seed
		}
	case ReplicaSensorPair, ReplicaSensor:
		if s.Sensor != nil {
			return s.Sensor.Seed
		}
	}
	return 0
}

// ReplicaResult is the wire form of one replica's outcome — the bytes the
// content-addressed store holds. The executed shard count is deliberately
// NOT part of this struct: it depends on IC_SHARDS, and including it
// would break "same spec → same digest" across hosts; it travels in the
// run manifest instead (see ReplicaSpec.Run's second return).
type ReplicaResult struct {
	Kind       string           `json:"kind"`
	Blackhole  *BlackholeResult `json:"blackhole,omitempty"`
	SensorPair *SensorPair      `json:"sensor_pair,omitempty"`
	Sensor     *SensorResult    `json:"sensor,omitempty"`
}

// Run executes the replica and returns its canonical result bytes plus
// the shard count the kernel actually used (manifest provenance, not part
// of the hashed bytes).
func (s ReplicaSpec) Run() ([]byte, int, error) {
	if err := s.Validate(); err != nil {
		return nil, 0, err
	}
	var out ReplicaResult
	var shards int
	switch s.Kind {
	case ReplicaBlackhole:
		res, n, err := runBlackholeShards(*s.Blackhole)
		if err != nil {
			return nil, 0, err
		}
		out = ReplicaResult{Kind: s.Kind, Blackhole: &res}
		shards = n
	case ReplicaSensorPair:
		pair, n, err := runSensorPairShards(*s.Sensor)
		if err != nil {
			return nil, 0, err
		}
		out = ReplicaResult{Kind: s.Kind, SensorPair: &pair}
		shards = n
	case ReplicaSensor:
		res, n, err := runSensorShards(*s.Sensor)
		if err != nil {
			return nil, 0, err
		}
		out = ReplicaResult{Kind: s.Kind, Sensor: &res}
		shards = n
	}
	b, err := json.Marshal(out)
	if err != nil {
		return nil, 0, err
	}
	return b, shards, nil
}

// DecodeReplicaResult parses result bytes produced by ReplicaSpec.Run
// (directly or via the artifact store), rejecting unknown fields so a
// store populated by a newer schema fails loudly instead of folding
// zeros.
func DecodeReplicaResult(b []byte) (ReplicaResult, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var r ReplicaResult
	if err := dec.Decode(&r); err != nil {
		return ReplicaResult{}, fmt.Errorf("experiment: decoding replica result: %w", err)
	}
	return r, nil
}

// Grid kinds: which paper sweep a GridRequest describes.
const (
	// GridBlackhole is the Fig. 7 sweep (rows × malicious counts).
	GridBlackhole = "blackhole"
	// GridSensor is the Fig. 8 sweep (rows × fault kinds, paired runs).
	GridSensor = "sensor"
	// GridCampaign is the fault-campaign sweep (rows × campaigns).
	GridCampaign = "campaign"
	// GridChurn is the membership-churn sweep (IC levels × churn rates).
	GridChurn = "churn"
)

// GridRequest is the wire form of one full experiment grid — what a
// client POSTs to the experiment service and what the repro driver
// submits per paper figure. It carries exactly the arguments of the
// corresponding *Sweep entry point.
type GridRequest struct {
	// Name labels the grid in job listings and run manifests
	// (e.g. "fig7-blackhole").
	Name string `json:"name"`
	// Kind selects the sweep: GridBlackhole, GridSensor or GridCampaign.
	Kind string `json:"kind"`
	// Blackhole is the base config for blackhole and campaign grids.
	Blackhole *BlackholeConfig `json:"blackhole,omitempty"`
	// Sensor is the base config for sensor grids.
	Sensor *SensorConfig `json:"sensor,omitempty"`
	// Malicious lists the blackhole grid's column counts.
	Malicious []int `json:"malicious,omitempty"`
	// Levels lists the IC dependability levels (rows are {No IC} ∪ {IC,L=l}).
	Levels []int `json:"levels,omitempty"`
	// Faults lists the sensor grid's fault-kind columns.
	Faults []sensor.FaultKind `json:"faults,omitempty"`
	// Campaigns lists the campaign grid's columns.
	Campaigns []faults.Campaign `json:"campaigns,omitempty"`
	// Churns lists the churn grid's crash-and-rejoin column counts.
	Churns []int `json:"churns,omitempty"`
	// Runs is the replica count per grid point.
	Runs int `json:"runs"`
}

// Validate checks the request is a well-formed instance of its kind.
func (g *GridRequest) Validate() error {
	if g.Runs <= 0 {
		return fmt.Errorf("experiment: grid %q: runs must be positive, got %d", g.Name, g.Runs)
	}
	switch g.Kind {
	case GridBlackhole:
		if g.Blackhole == nil {
			return fmt.Errorf("experiment: grid %q: kind %q needs a blackhole config", g.Name, g.Kind)
		}
		if g.Sensor != nil || len(g.Faults) > 0 || len(g.Campaigns) > 0 || len(g.Churns) > 0 {
			return fmt.Errorf("experiment: grid %q: kind %q carries fields of another kind", g.Name, g.Kind)
		}
		if g.Blackhole.Tracer != nil {
			return fmt.Errorf("experiment: grid %q: config must not carry a Tracer", g.Name)
		}
		if len(g.Malicious) == 0 {
			return fmt.Errorf("experiment: grid %q: kind %q needs malicious counts", g.Name, g.Kind)
		}
	case GridSensor:
		if g.Sensor == nil {
			return fmt.Errorf("experiment: grid %q: kind %q needs a sensor config", g.Name, g.Kind)
		}
		if g.Blackhole != nil || len(g.Malicious) > 0 || len(g.Campaigns) > 0 || len(g.Churns) > 0 {
			return fmt.Errorf("experiment: grid %q: kind %q carries fields of another kind", g.Name, g.Kind)
		}
		if len(g.Faults) == 0 {
			return fmt.Errorf("experiment: grid %q: kind %q needs fault kinds", g.Name, g.Kind)
		}
	case GridCampaign:
		if g.Blackhole == nil {
			return fmt.Errorf("experiment: grid %q: kind %q needs a blackhole config", g.Name, g.Kind)
		}
		if g.Sensor != nil || len(g.Malicious) > 0 || len(g.Faults) > 0 || len(g.Churns) > 0 {
			return fmt.Errorf("experiment: grid %q: kind %q carries fields of another kind", g.Name, g.Kind)
		}
		if err := ValidateCampaignSweep(*g.Blackhole, g.Campaigns); err != nil {
			return fmt.Errorf("grid %q: %w", g.Name, err)
		}
	case GridChurn:
		if g.Sensor == nil {
			return fmt.Errorf("experiment: grid %q: kind %q needs a sensor config", g.Name, g.Kind)
		}
		if g.Blackhole != nil || len(g.Malicious) > 0 || len(g.Faults) > 0 || len(g.Campaigns) > 0 {
			return fmt.Errorf("experiment: grid %q: kind %q carries fields of another kind", g.Name, g.Kind)
		}
		if err := ValidateChurnSweep(*g.Sensor, g.Levels, g.Churns); err != nil {
			return fmt.Errorf("grid %q: %w", g.Name, err)
		}
	default:
		return fmt.Errorf("experiment: grid %q: unknown kind %q", g.Name, g.Kind)
	}
	return nil
}

// ReplicaPoint is one grid cell replica: its table coordinates plus the
// self-contained spec that computes it.
type ReplicaPoint struct {
	Label string
	Row   string
	Col   string
	Spec  ReplicaSpec
}

// BaseSeed returns the grid's base seed — the start of the per-replica
// seed schedule, recorded in run manifests.
func (g *GridRequest) BaseSeed() int64 {
	switch {
	case g.Blackhole != nil:
		return g.Blackhole.Seed
	case g.Sensor != nil:
		return g.Sensor.Seed
	}
	return 0
}

// Points enumerates the grid's replicas in the same order — and with the
// same seed schedule — as the corresponding in-process sweep. That order
// is the folding contract: Tables consumes results positionally.
func (g *GridRequest) Points() ([]ReplicaPoint, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	var out []ReplicaPoint
	switch g.Kind {
	case GridBlackhole:
		for _, p := range BlackholePoints(*g.Blackhole, g.Malicious, g.Levels, g.Runs) {
			cfg := p.Config
			out = append(out, ReplicaPoint{Label: p.Label, Row: p.Row, Col: p.Col,
				Spec: ReplicaSpec{Kind: ReplicaBlackhole, Blackhole: &cfg}})
		}
	case GridSensor:
		for _, p := range SensorPoints(*g.Sensor, g.Levels, g.Faults, g.Runs) {
			cfg := p.Config
			out = append(out, ReplicaPoint{Label: p.Label, Row: p.Row, Col: p.Col,
				Spec: ReplicaSpec{Kind: ReplicaSensorPair, Sensor: &cfg}})
		}
	case GridCampaign:
		for _, p := range CampaignPoints(*g.Blackhole, g.Campaigns, g.Levels, g.Runs) {
			cfg := p.Config
			out = append(out, ReplicaPoint{Label: p.Label, Row: p.Row, Col: p.Col,
				Spec: ReplicaSpec{Kind: ReplicaBlackhole, Blackhole: &cfg}})
		}
	case GridChurn:
		for _, p := range ChurnPoints(*g.Sensor, g.Levels, g.Churns, g.Runs) {
			cfg := p.Config
			out = append(out, ReplicaPoint{Label: p.Label, Row: p.Row, Col: p.Col,
				Spec: ReplicaSpec{Kind: ReplicaSensor, Sensor: &cfg}})
		}
	}
	return out, nil
}

// Tables folds result bytes (one per point, in Points order) into the
// grid's figure tables. Because folding happens here in enumeration order
// with the same Fold helpers the in-process sweeps use, a table rebuilt
// from the artifact store is byte-identical to the live sweep's.
func (g *GridRequest) Tables(results [][]byte) ([]*stats.Table, error) {
	points, err := g.Points()
	if err != nil {
		return nil, err
	}
	if len(results) != len(points) {
		return nil, fmt.Errorf("experiment: grid %q: %d results for %d points", g.Name, len(results), len(points))
	}
	decoded := make([]ReplicaResult, len(results))
	for i, b := range results {
		r, err := DecodeReplicaResult(b)
		if err != nil {
			return nil, fmt.Errorf("point %q: %w", points[i].Label, err)
		}
		decoded[i] = r
	}
	switch g.Kind {
	case GridBlackhole:
		throughput, energy := NewBlackholeTables()
		for i, p := range points {
			if decoded[i].Blackhole == nil {
				return nil, fmt.Errorf("experiment: point %q: result kind %q, want blackhole", p.Label, decoded[i].Kind)
			}
			FoldBlackhole(throughput, energy, p.Row, p.Col, *decoded[i].Blackhole)
		}
		return []*stats.Table{throughput, energy}, nil
	case GridSensor:
		tables := NewSensorTables()
		for i, p := range points {
			if decoded[i].SensorPair == nil {
				return nil, fmt.Errorf("experiment: point %q: result kind %q, want sensorpair", p.Label, decoded[i].Kind)
			}
			FoldSensor(tables, p.Row, p.Col, *decoded[i].SensorPair)
		}
		out := make([]*stats.Table, 0, len(SensorTableKeys))
		for _, k := range SensorTableKeys {
			out = append(out, tables[k])
		}
		return out, nil
	case GridCampaign:
		t := NewCampaignTables()
		for i, p := range points {
			if decoded[i].Blackhole == nil {
				return nil, fmt.Errorf("experiment: point %q: result kind %q, want blackhole", p.Label, decoded[i].Kind)
			}
			FoldCampaign(t, p.Row, p.Col, *decoded[i].Blackhole)
		}
		return []*stats.Table{t.Throughput, t.Energy, t.Injected, t.Suppressed, t.Leaked, t.VerifiesAvoided}, nil
	case GridChurn:
		t := NewChurnTables()
		for i, p := range points {
			if decoded[i].Sensor == nil {
				return nil, fmt.Errorf("experiment: point %q: result kind %q, want sensor", p.Label, decoded[i].Kind)
			}
			FoldChurn(t, p.Row, p.Col, *decoded[i].Sensor)
		}
		return []*stats.Table{t.Miss, t.Energy, t.Events, t.Reshares, t.Aborted, t.Epoch}, nil
	}
	return nil, fmt.Errorf("experiment: grid %q: unknown kind %q", g.Name, g.Kind)
}

// Render prints the grid's tables exactly as the corresponding CLI does
// (cmd/blackhole, cmd/sensornet, cmd/faultsweep, cmd/churnsweep):
// StringWithCI for the figure tables, compact String for the campaign
// coverage and churn lifecycle counters, one blank line after each — so
// service output is diffable against the drivers'.
func (g *GridRequest) Render(tables []*stats.Table) string {
	var b bytes.Buffer
	for i, t := range tables {
		if (g.Kind == GridCampaign || g.Kind == GridChurn) && i >= 2 {
			b.WriteString(t.String())
		} else {
			b.WriteString(t.StringWithCI())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the grid's tables in long CSV form, each preceded by a
// `# <title>` comment line, for the repro analyzer's machine-readable
// output.
func (g *GridRequest) CSV(tables []*stats.Table) string {
	var b bytes.Buffer
	for _, t := range tables {
		fmt.Fprintf(&b, "# %s\n", t.Title)
		b.WriteString(t.CSV())
	}
	return b.String()
}
