package experiment

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestRunJobsOrdersResultsByIndex pins the engine's core contract: results
// land in enumeration-order slots no matter how workers interleave.
func TestRunJobsOrdersResultsByIndex(t *testing.T) {
	const n = 100
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Index: i,
			Label: fmt.Sprintf("job-%d", i),
			Run:   func() (any, error) { return i * i, nil },
		}
	}
	for _, workers := range []int{1, 4, 16} {
		results, err := RunJobs(jobs, workers, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range results {
			if r.(int) != i*i {
				t.Fatalf("workers=%d: results[%d] = %v, want %d", workers, i, r, i*i)
			}
		}
	}
}

// TestRunJobsCapturesPanic pins that a panicking replica surfaces as an
// error naming the job, not a process crash.
func TestRunJobsCapturesPanic(t *testing.T) {
	jobs := []Job{
		{Index: 0, Label: "ok", Run: func() (any, error) { return 1, nil }},
		{Index: 1, Label: "boom", Run: func() (any, error) { panic("replica corrupted") }},
	}
	_, err := RunJobs(jobs, 2, nil)
	if err == nil {
		t.Fatal("panic not reported as error")
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "replica corrupted") {
		t.Fatalf("error does not identify the panicking job: %v", err)
	}
}

// TestRunJobsCancelsOnFirstFailure pins that a failure stops the engine
// from starting queued jobs (in-flight ones may finish).
func TestRunJobsCancelsOnFirstFailure(t *testing.T) {
	const n = 64
	var started atomic.Int64
	sentinel := errors.New("replica failed")
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Index: i,
			Label: fmt.Sprintf("job-%d", i),
			Run: func() (any, error) {
				started.Add(1)
				if i == 0 {
					return nil, sentinel
				}
				return i, nil
			},
		}
	}
	_, err := RunJobs(jobs, 1, nil)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	// With one worker the failure lands before any other job starts; the
	// engine must then skip the rest of the queue.
	if got := started.Load(); got != 1 {
		t.Fatalf("%d jobs started after first failure, want 1", got)
	}
}

// TestRunJobsReportsFirstErrorByIndex pins error selection: among the
// replicas that actually failed (cancellation may skip later ones before
// they run), the enumeration-order first error is returned. With a single
// worker the execution order is the enumeration order, so the selection is
// fully deterministic: the index-3 failure always wins over index-7's.
func TestRunJobsReportsFirstErrorByIndex(t *testing.T) {
	errA := errors.New("fail-3")
	errB := errors.New("fail-7")
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Index: i, Run: func() (any, error) {
			switch i {
			case 3:
				return nil, errA
			case 7:
				return nil, errB
			default:
				return i, nil
			}
		}}
	}
	for trial := 0; trial < 10; trial++ {
		_, err := RunJobs(jobs, 1, nil)
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: err = %v, want the index-3 failure", trial, err)
		}
		_, err = RunJobs(jobs, 8, nil)
		if !errors.Is(err, errA) && !errors.Is(err, errB) {
			t.Fatalf("trial %d: err = %v, want one of the injected failures", trial, err)
		}
	}
}

// TestRunJobsProgressSerialized pins that progress callbacks are
// serialized and count monotonically to the total.
func TestRunJobsProgressSerialized(t *testing.T) {
	const n = 32
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Index: i, Run: func() (any, error) { return i, nil }}
	}
	var calls []int
	_, err := RunJobs(jobs, 8, func(done, total int, j Job, result any) {
		// The engine holds its lock across this call: appending without
		// extra locking is part of the contract under test (go test -race
		// verifies it).
		calls = append(calls, done)
		if total != n {
			t.Errorf("total = %d, want %d", total, n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != n {
		t.Fatalf("progress called %d times, want %d", len(calls), n)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress done sequence %v not monotonic", calls)
		}
	}
}

// TestWorkersEnvOverride pins the IC_WORKERS knob.
func TestWorkersEnvOverride(t *testing.T) {
	t.Setenv("IC_WORKERS", "3")
	if w := Workers(); w != 3 {
		t.Fatalf("Workers() = %d with IC_WORKERS=3", w)
	}
	t.Setenv("IC_WORKERS", "bogus")
	if w := Workers(); w < 1 {
		t.Fatalf("Workers() = %d with bogus IC_WORKERS", w)
	}
}
