// Package experiment contains the per-figure harnesses that regenerate the
// paper's evaluation: workload generators, parameter sweeps, metric
// collection, and the row printers behind every benchmark in
// bench_test.go. See DESIGN.md §3 for the experiment index.
package experiment

import (
	"fmt"
	"io"
	"strings"

	"innercircle/internal/aodv"
	"innercircle/internal/energy"
	"innercircle/internal/faults"
	"innercircle/internal/geo"
	"innercircle/internal/link"
	"innercircle/internal/mac"
	"innercircle/internal/mobility"
	"innercircle/internal/node"
	"innercircle/internal/radio"
	"innercircle/internal/sim"
	"innercircle/internal/stats"
	"innercircle/internal/sts"
	"innercircle/internal/trace"
	"innercircle/internal/vote"
)

// BlackholeConfig parameterizes one Fig. 7 run. Defaults (via
// PaperBlackholeConfig) come from the Fig. 7 simulation-parameter box.
type BlackholeConfig struct {
	Nodes       int     // 50
	Region      float64 // 1000 m square
	Speed       float64 // 10 m/s random waypoint
	Pause       sim.Duration
	Connections int     // 10 CBR connections
	Rate        float64 // 4 packets/s
	PacketBytes int     // 512
	SimTime     sim.Time
	TrafficFrom sim.Time // CBR start (lets STS converge)
	Malicious   int
	// GrayProb, when positive, makes the malicious nodes gray holes that
	// misbehave with this probability per opportunity instead of always.
	GrayProb float64
	// Campaign, when non-nil, replaces the Malicious/GrayProb adversary
	// with an arbitrary fault campaign (internal/faults). The legacy
	// knobs are internally routed through the equivalent campaign preset,
	// so Malicious=m and Campaign=&BlackholePreset(m) produce identical
	// results. The campaign is read-only and may be shared by replicas.
	Campaign *faults.Campaign
	IC       bool
	L        int
	Seed     int64
	// Tracer, when non-nil, taps all wire traffic (slower; for debugging
	// and the icsim tool). A tracer belongs to exactly one replica: the
	// sweep entry points reject a config carrying one, because their
	// parallel workers would all write into it concurrently.
	Tracer *trace.Tracer
}

// PaperBlackholeConfig returns the Fig. 7 parameter box.
func PaperBlackholeConfig() BlackholeConfig {
	return BlackholeConfig{
		Nodes:       50,
		Region:      1000,
		Speed:       10,
		Pause:       0,
		Connections: 10,
		Rate:        4,
		PacketBytes: 512,
		SimTime:     300,
		TrafficFrom: 5,
		IC:          false,
		L:           1,
	}
}

// BlackholeResult is the outcome of one run. It must stay comparable
// with == (no slice/map fields): the determinism tests compare whole
// results across replicas.
type BlackholeResult struct {
	Sent            int
	Received        int     // delivered intact
	ReceivedCorrupt int     // delivered with a fault-corrupted payload
	Throughput      float64 // received/sent, in percent
	EnergyPerNode   float64 // joules

	// Fault-injection coverage (all zero without an adversary):
	// FaultsInjected counts attack/fault actions taken, FaultsSuppressed
	// counts protocol-level neutralizations (bad-signature and
	// suspected-sender suppressions, rejected beacons, corrupt partials
	// identified, invalid agreed messages), and FaultsLeaked counts
	// corrupted payloads that reached an application sink.
	FaultsInjected   uint64
	FaultsSuppressed uint64
	FaultsLeaked     uint64
}

// RunBlackhole executes one Fig. 7 simulation run.
func RunBlackhole(cfg BlackholeConfig) (BlackholeResult, error) {
	if cfg.Nodes < 4 {
		return BlackholeResult{}, fmt.Errorf("experiment: need at least 4 nodes")
	}
	region := geo.Square(cfg.Region)
	seedRNG := sim.NewRNG(cfg.Seed)
	placeRNG := seedRNG.Split("placement")
	positions := mobility.UniformPlacement(region, cfg.Nodes, placeRNG)

	stsCfg := sts.Config{}
	voteCfg := vote.Config{}
	if cfg.IC {
		stsCfg = sts.Config{
			Period:          0.9,
			Delta:           2, // ∆STS from the Fig. 7 box
			Authenticate:    true,
			Handshake:       false, // keyed-MAC beacons for sweep scale
			BeaconBaseBytes: 28,
		}
		voteCfg = vote.Config{Mode: vote.Deterministic, L: cfg.L, RoundTimeout: 0.15, Retries: 2}
	}

	routers := make([]*aodv.Router, cfg.Nodes)
	adapters := make([]*aodv.ICAdapter, cfg.Nodes)
	received := 0
	receivedCorrupt := 0

	ncfg := node.Config{
		N:      cfg.Nodes,
		Seed:   cfg.Seed,
		Radio:  radio.Default80211(),
		MAC:    mac.Default80211(),
		Energy: energy.NS2Default(),
		Mobility: func(i int, rng *sim.RNG) mobility.Model {
			return mobility.NewWaypoint(mobility.WaypointConfig{
				Region:   region,
				MinSpeed: cfg.Speed,
				MaxSpeed: cfg.Speed,
				Pause:    cfg.Pause,
			}, positions[i], rng)
		},
		IC:           cfg.IC,
		STS:          stsCfg,
		Vote:         voteCfg,
		MaxL:         max(2, cfg.L),
		SigWireBytes: 128, // 1024-bit keys per the Fig. 7 box
		Tracer:       cfg.Tracer,
	}
	buildRouter := func(nd *node.Node) *aodv.Router {
		r, err := aodv.New(aodv.DefaultConfig(), aodv.Deps{
			ID: nd.ID, K: nd.K, Link: nd.Link, RNG: nd.RNG.Split("aodv"),
		})
		if err != nil {
			panic(err) // static config; cannot fail
		}
		routers[nd.Index] = r
		r.OnDeliver(func(d aodv.Data) {
			if s, ok := d.Payload.(string); ok && strings.HasPrefix(s, corruptMark) {
				receivedCorrupt++ // a corrupt fault leaked through to the sink
				return
			}
			received++
		})
		nd.Handle(r.HandleEnv)
		return r
	}
	if cfg.IC {
		ncfg.Callbacks = func(nd *node.Node) vote.Callbacks {
			r := buildRouter(nd)
			adapter, cbs := aodv.NewICAdapter(nd.ID, r, nd.Intercept)
			adapters[nd.Index] = adapter
			return cbs
		}
	}

	net, err := node.Build(ncfg)
	if err != nil {
		return BlackholeResult{}, fmt.Errorf("experiment: build: %w", err)
	}
	if cfg.IC {
		for i, nd := range net.Nodes {
			adapters[i].Bind(nd.Vote)
			nd.Intercept.SetVerifier(adapters[i].Verifier())
		}
	} else {
		for _, nd := range net.Nodes {
			buildRouter(nd)
		}
	}
	// Traffic: pick connection endpoints, then attackers from the
	// remaining population (a black hole that is itself an endpoint would
	// trivially zero its own connection).
	trafRNG := seedRNG.Split("traffic")
	perm := trafRNG.Perm(cfg.Nodes)
	if cfg.Connections*2+cfg.Malicious > cfg.Nodes {
		return BlackholeResult{}, fmt.Errorf("experiment: %d nodes cannot host %d connections + %d attackers",
			cfg.Nodes, cfg.Connections, cfg.Malicious)
	}
	type conn struct{ src, dst int }
	conns := make([]conn, cfg.Connections)
	for i := range conns {
		conns[i] = conn{src: perm[2*i], dst: perm[2*i+1]}
	}

	// Adversary: an explicit campaign, or the legacy Malicious/GrayProb
	// knobs routed through the equivalent preset. Either way the campaign
	// draws Count-selected attackers from the permutation's tail, and
	// gray-hole RNG streams split off the seed exactly as the hand-wired
	// code did, so the legacy path is reproduced bit for bit.
	camp := cfg.Campaign
	if camp == nil && cfg.Malicious > 0 {
		var c faults.Campaign
		if cfg.GrayProb > 0 {
			c = faults.GrayholePreset(cfg.Malicious, cfg.GrayProb)
		} else {
			c = faults.BlackholePreset(cfg.Malicious)
		}
		camp = &c
	}
	var applied *faults.Applied
	if camp != nil {
		applied, err = faults.Apply(faults.Fabric{
			K:     net.K,
			RNG:   seedRNG,
			N:     cfg.Nodes,
			Order: perm[cfg.Connections*2:],
			Link: func(i int) faults.LinkPort {
				return net.Nodes[i].Link
			},
			Router: func(i int) faults.RouterCtl {
				if routers[i] == nil {
					return nil
				}
				return routers[i]
			},
			Vote: func(i int) faults.VoteCtl {
				if net.Nodes[i].Vote == nil {
					return nil
				}
				return net.Nodes[i].Vote
			},
			Mutate: corruptPayload,
		}, camp)
		if err != nil {
			return BlackholeResult{}, fmt.Errorf("experiment: %w", err)
		}
	}

	net.StartSTS()

	// CBR generators.
	sent := 0
	interval := sim.Duration(1 / cfg.Rate)
	for ci, c := range conns {
		c := c
		start := cfg.TrafficFrom + trafRNG.Jitter(interval)
		var tick func()
		seq := 0
		tick = func() {
			if net.K.Now() >= cfg.SimTime {
				return
			}
			sent++
			seq++
			_ = routers[c.src].Send(link.NodeID(c.dst), fmt.Sprintf("c%d-%d", ci, seq), cfg.PacketBytes)
			net.K.MustSchedule(interval, tick)
		}
		net.K.MustSchedule(start, tick)
	}

	if err := net.Run(cfg.SimTime); err != nil {
		return BlackholeResult{}, fmt.Errorf("experiment: run: %w", err)
	}

	res := BlackholeResult{Sent: sent, Received: received, ReceivedCorrupt: receivedCorrupt}
	if sent > 0 {
		res.Throughput = 100 * float64(received) / float64(sent)
	}
	res.EnergyPerNode = net.TotalEnergy() / float64(cfg.Nodes)
	if applied != nil {
		res.FaultsInjected = applied.Report().TotalInjected()
		res.FaultsLeaked = uint64(receivedCorrupt)
		for _, nd := range net.Nodes {
			if nd.Intercept != nil {
				res.FaultsSuppressed += nd.Intercept.Stats.SuppressedSuspect + nd.Intercept.Stats.SuppressedBadSig
			}
			if nd.STS != nil {
				res.FaultsSuppressed += nd.STS.Stats.BeaconsRejected
			}
			if nd.Vote != nil {
				res.FaultsSuppressed += nd.Vote.Stats.PartialsRejected + nd.Vote.Stats.AgreedInvalid
			}
		}
	}
	return res, nil
}

// corruptMark prefixes CBR payloads mangled by a corrupt fault, so the
// sink can tell leaked corruption from intact delivery.
const corruptMark = "\x00corrupt\x00"

// corruptPayload is the campaign fabric's Mutate hook: it extends the
// corrupt fault to AODV data payloads (the faults package itself only
// knows signature-bearing protocol messages). Copy-on-write — Data is a
// value and the string payload is immutable.
func corruptPayload(e link.Env, _ *sim.RNG) (link.Env, bool) {
	d, ok := e.Msg.(aodv.Data)
	if !ok {
		return e, false
	}
	s, ok := d.Payload.(string)
	if !ok || strings.HasPrefix(s, corruptMark) {
		return e, false
	}
	d.Payload = corruptMark + s
	e.Msg = d
	return e, true
}

// BlackholeSweep runs the full Fig. 7 sweep: configurations {No IC,
// IC L=1, IC L=2} across malicious-node counts, repeated runs times, and
// returns the throughput (Fig. 7a) and energy (Fig. 7b) tables.
//
// Replicas run on the parallel replica engine (see pool.go); results fold
// into the tables in enumeration order, so the output is identical for any
// worker count (IC_WORKERS overrides the default of one worker per core).
func BlackholeSweep(base BlackholeConfig, maliciousCounts []int, levels []int, runs int, progress io.Writer) (throughput, energyTbl *stats.Table, err error) {
	if base.Tracer != nil {
		return nil, nil, fmt.Errorf("experiment: sweep config must not carry a Tracer — each replica needs its own (a shared one races across workers)")
	}
	throughput = stats.NewTable("Fig. 7(a) Network throughput [%]", "config \\ #malicious")
	energyTbl = stats.NewTable("Fig. 7(b) Energy consumption [J/node]", "config \\ #malicious")

	type rowSpec struct {
		label string
		ic    bool
		level int
	}
	rows := []rowSpec{{label: "No IC"}}
	for _, l := range levels {
		rows = append(rows, rowSpec{label: fmt.Sprintf("IC, L=%d", l), ic: true, level: l})
	}

	// Enumerate every (config row × malicious count × run) replica up
	// front; cell remembers where each job's result belongs.
	type cell struct {
		row, col string
	}
	var jobs []Job
	var cells []cell
	for _, row := range rows {
		for _, m := range maliciousCounts {
			for run := 0; run < runs; run++ {
				cfg := base
				cfg.IC = row.ic
				cfg.L = row.level
				if cfg.L == 0 {
					cfg.L = 1
				}
				cfg.Malicious = m
				cfg.Seed = base.Seed + int64(1000*m+run)
				jobs = append(jobs, Job{
					Index: len(jobs),
					Label: fmt.Sprintf("%s malicious=%d run=%d", row.label, m, run),
					Run: func() (any, error) {
						res, err := RunBlackhole(cfg)
						if err != nil {
							return nil, err
						}
						return res, nil
					},
				})
				cells = append(cells, cell{row: row.label, col: fmt.Sprintf("%d", m)})
			}
		}
	}

	results, err := RunJobs(jobs, 0, progressWriter(progress, func(j Job, result any) string {
		res := result.(BlackholeResult)
		return fmt.Sprintf("%s: throughput=%.1f%% energy=%.2f J\n", j.Label, res.Throughput, res.EnergyPerNode)
	}))
	if err != nil {
		return nil, nil, err
	}
	for i, r := range results {
		res := r.(BlackholeResult)
		throughput.Add(cells[i].row, cells[i].col, res.Throughput)
		energyTbl.Add(cells[i].row, cells[i].col, res.EnergyPerNode)
	}
	return throughput, energyTbl, nil
}
