// Package experiment contains the per-figure harnesses that regenerate the
// paper's evaluation. Each harness is a thin declarative scenario.Spec —
// topology, stack, traffic program, adversary — handed to scenario.Run;
// the sweeps fan replicas over the parallel pool (pool.go) and fold the
// tables in enumeration order. See DESIGN.md §3 for the experiment index.
package experiment

import (
	"fmt"
	"io"
	"strings"

	"innercircle/internal/aodv"
	"innercircle/internal/energy"
	"innercircle/internal/faults"
	"innercircle/internal/geo"
	"innercircle/internal/link"
	"innercircle/internal/mac"
	"innercircle/internal/node"
	"innercircle/internal/radio"
	"innercircle/internal/scenario"
	"innercircle/internal/sim"
	"innercircle/internal/stats"
	"innercircle/internal/sts"
	"innercircle/internal/trace"
	"innercircle/internal/traffic"
	"innercircle/internal/vote"
)

// BlackholeConfig parameterizes one Fig. 7 run. Defaults (via
// PaperBlackholeConfig) come from the Fig. 7 simulation-parameter box.
// The JSON form is the experiment service's wire format (grid.go): every
// knob that shapes the replica is tagged, and the per-replica runtime
// Tracer is deliberately excluded — a config that reaches serialization
// must not carry one.
type BlackholeConfig struct {
	Nodes       int          `json:"nodes"`        // 50
	Region      float64      `json:"region"`       // 1000 m square
	Speed       float64      `json:"speed"`        // 10 m/s random waypoint
	Pause       sim.Duration `json:"pause"`        //
	Connections int          `json:"connections"`  // 10 CBR connections
	Rate        float64      `json:"rate"`         // 4 packets/s
	PacketBytes int          `json:"packet_bytes"` // 512
	SimTime     sim.Time     `json:"sim_time"`
	TrafficFrom sim.Time     `json:"traffic_from"` // CBR start (lets STS converge)
	Malicious   int          `json:"malicious"`
	// GrayProb, when positive, makes the malicious nodes gray holes that
	// misbehave with this probability per opportunity instead of always.
	GrayProb float64 `json:"gray_prob,omitempty"`
	// Campaign, when non-nil, replaces the Malicious/GrayProb adversary
	// with an arbitrary fault campaign (internal/faults). The legacy
	// knobs are internally routed through the equivalent campaign preset,
	// so Malicious=m and Campaign=&BlackholePreset(m) produce identical
	// results. The campaign is read-only and may be shared by replicas.
	Campaign *faults.Campaign `json:"campaign,omitempty"`
	IC       bool             `json:"ic"`
	L        int              `json:"l"`
	// Shards requests a partitioned replica (scenario.Spec.Shards). The
	// blackhole scenario always falls back to one shard — random-waypoint
	// mobility, CBR traffic and fault campaigns each rule sharding out —
	// so the knob only pins that the fallback is result-identical.
	Shards int   `json:"shards,omitempty"`
	Seed   int64 `json:"seed"`
	// Tracer, when non-nil, taps all wire traffic (slower; for debugging
	// and the icsim tool). A tracer belongs to exactly one replica: the
	// sweep entry points reject a config carrying one, because their
	// parallel workers would all write into it concurrently.
	Tracer *trace.Tracer `json:"-"`
}

// PaperBlackholeConfig returns the Fig. 7 parameter box.
func PaperBlackholeConfig() BlackholeConfig {
	return BlackholeConfig{
		Nodes:       50,
		Region:      1000,
		Speed:       10,
		Pause:       0,
		Connections: 10,
		Rate:        4,
		PacketBytes: 512,
		SimTime:     300,
		TrafficFrom: 5,
		IC:          false,
		L:           1,
	}
}

// BlackholeResult is the outcome of one run. It must stay comparable
// with == (no slice/map fields): the determinism tests compare whole
// results across replicas.
type BlackholeResult struct {
	Sent            int
	Received        int     // delivered intact
	ReceivedCorrupt int     // delivered with a fault-corrupted payload
	Throughput      float64 // received/sent, in percent
	EnergyPerNode   float64 // joules

	// Fault-injection coverage (all zero without an adversary):
	// FaultsInjected counts attack/fault actions taken, FaultsSuppressed
	// counts protocol-level neutralizations (bad-signature and
	// suspected-sender suppressions, rejected beacons, corrupt partials
	// identified, invalid agreed messages), and FaultsLeaked counts
	// corrupted payloads that reached an application sink.
	FaultsInjected   uint64
	FaultsSuppressed uint64
	FaultsLeaked     uint64

	// VerifiesAvoided counts signature verifications answered from the
	// replica's shared verification memo (zero with IC off or
	// IC_CRYPTO_MEMO=off). Pure wall-clock accounting: it feeds no modeled
	// metric, so every other field is identical with the memo on or off.
	VerifiesAvoided uint64
}

// aodvRouting is the Fig. 7 routing component: one AODV router per node,
// IC-adapted when the inner circle is on, delivering application payloads
// into the scenario sink tally.
type aodvRouting struct {
	routers  []*aodv.Router
	adapters []*aodv.ICAdapter
}

func newAODVRouting(n int) *aodvRouting {
	if n < 0 {
		n = 0
	}
	return &aodvRouting{
		routers:  make([]*aodv.Router, n),
		adapters: make([]*aodv.ICAdapter, n),
	}
}

// Validate implements scenario.Validator: AODV route discovery needs a
// minimum population to form multi-hop routes.
func (rt *aodvRouting) Validate(s *scenario.Spec) error {
	if s.Nodes < 4 {
		return fmt.Errorf("experiment: need at least 4 nodes")
	}
	return nil
}

// Wire implements scenario.Wirer: publish the unicast send path for the
// CBR program and the fault-campaign control surfaces.
func (rt *aodvRouting) Wire(env *scenario.Env) {
	env.SetUnicast(func(src, dst int, payload any, sizeBytes int) {
		_ = rt.routers[src].Send(link.NodeID(dst), payload, sizeBytes)
	})
	env.SetRouterCtl(func(i int) faults.RouterCtl {
		if rt.routers[i] == nil {
			return nil
		}
		return rt.routers[i]
	})
	env.SetMutate(corruptPayload)
}

// build assembles node nd's router and hooks its delivery upcall into the
// scenario sink.
func (rt *aodvRouting) build(env *scenario.Env, nd *node.Node) *aodv.Router {
	r, err := aodv.New(aodv.DefaultConfig(), aodv.Deps{
		ID: nd.ID, K: nd.K, Link: nd.Link, RNG: nd.RNG.Split("aodv"),
	})
	if err != nil {
		env.Fail(fmt.Errorf("aodv router %d: %w", nd.Index, err))
		return nil
	}
	rt.routers[nd.Index] = r
	sink := &env.Sink
	r.OnDeliver(func(d aodv.Data) { sink.Deliver(d.Payload) })
	nd.Handle(r.HandleEnv)
	return r
}

// Register implements scenario.Registrar (IC mode): the router is built
// inside node.Build's voting pass so the IC adapter's callbacks can be
// handed to the voting service.
func (rt *aodvRouting) Register(env *scenario.Env, nd *node.Node) vote.Callbacks {
	r := rt.build(env, nd)
	if r == nil {
		return vote.Callbacks{}
	}
	adapter, cbs := aodv.NewICAdapter(nd.ID, r, nd.Intercept)
	rt.adapters[nd.Index] = adapter
	return cbs
}

// Attach implements scenario.Component: IC mode binds the adapter to the
// now-built voting service; the No-IC baseline builds its router here.
func (rt *aodvRouting) Attach(env *scenario.Env, nd *node.Node) {
	if env.Spec.Stack.IC {
		rt.adapters[nd.Index].Bind(nd.Vote)
		nd.Intercept.SetVerifier(rt.adapters[nd.Index].Verifier())
		return
	}
	rt.build(env, nd)
}

// blackholeSpec assembles the declarative Fig. 7 scenario.
func blackholeSpec(cfg BlackholeConfig) *scenario.Spec {
	stsCfg := sts.Config{}
	voteCfg := vote.Config{}
	if cfg.IC {
		stsCfg = sts.Config{
			Period:          0.9,
			Delta:           2, // ∆STS from the Fig. 7 box
			Authenticate:    true,
			Handshake:       false, // keyed-MAC beacons for sweep scale
			BeaconBaseBytes: 28,
		}
		voteCfg = vote.Config{Mode: vote.Deterministic, L: cfg.L, RoundTimeout: 0.15, Retries: 2}
	}
	spec := &scenario.Spec{
		Name:    "blackhole",
		Nodes:   cfg.Nodes,
		Seed:    cfg.Seed,
		SimTime: cfg.SimTime,
		Shards:  cfg.Shards,
		Topology: scenario.RandomWaypoint{
			Region:   geo.Square(cfg.Region),
			MinSpeed: cfg.Speed,
			MaxSpeed: cfg.Speed,
			Pause:    cfg.Pause,
		},
		Stack: scenario.Stack{
			Radio:        radio.Default80211(),
			MAC:          mac.Default80211(),
			Energy:       energy.NS2Default(),
			IC:           cfg.IC,
			STS:          stsCfg,
			Vote:         voteCfg,
			MaxL:         max(2, cfg.L),
			SigWireBytes: 128, // 1024-bit keys per the Fig. 7 box
			Tracer:       cfg.Tracer,
			Components:   []scenario.Component{newAODVRouting(cfg.Nodes)},
		},
		Traffic: &traffic.CBR{
			Connections: cfg.Connections,
			Rate:        cfg.Rate,
			PacketBytes: cfg.PacketBytes,
			From:        cfg.TrafficFrom,
		},
	}
	// Adversary: an explicit campaign, or the legacy Malicious/GrayProb
	// knobs routed through the equivalent preset. Either way the campaign
	// draws Count-selected attackers from the traffic permutation's tail,
	// and fault RNG streams split off the seed exactly as the hand-wired
	// code did, so the legacy path is reproduced bit for bit.
	camp := cfg.Campaign
	if camp == nil && cfg.Malicious > 0 {
		var c faults.Campaign
		if cfg.GrayProb > 0 {
			c = faults.GrayholePreset(cfg.Malicious, cfg.GrayProb)
		} else {
			c = faults.BlackholePreset(cfg.Malicious)
		}
		camp = &c
	}
	if camp != nil {
		spec.Adversary = scenario.CampaignAdversary{Campaign: camp}
	}
	return spec
}

// RunBlackhole executes one Fig. 7 simulation run.
func RunBlackhole(cfg BlackholeConfig) (BlackholeResult, error) {
	out, _, err := runBlackholeShards(cfg)
	return out, err
}

// runBlackholeShards is RunBlackhole plus the shard count the replica
// actually executed with (scenario.Result.Shards) — provenance the
// artifact manifests record without widening the ==-comparable result.
func runBlackholeShards(cfg BlackholeConfig) (BlackholeResult, int, error) {
	spec := blackholeSpec(cfg)
	res, err := scenario.Run(spec)
	if err != nil {
		return BlackholeResult{}, 0, fmt.Errorf("experiment: %w", err)
	}
	out := BlackholeResult{
		Sent:            int(res.Counter(scenario.CtrSent)),
		Received:        int(res.Counter(scenario.CtrReceived)),
		ReceivedCorrupt: int(res.Counter(scenario.CtrReceivedCorrupt)),
		Throughput:      res.Gauge(scenario.GaugeThroughputPct),
		EnergyPerNode:   res.Gauge(scenario.GaugeEnergyPerNodeJ),
	}
	if spec.Adversary != nil {
		out.FaultsInjected = res.Counter(scenario.CtrFaultsInjected)
		out.FaultsSuppressed = res.Counter(scenario.CtrFaultsSuppressed)
		out.FaultsLeaked = res.Counter(scenario.CtrFaultsLeaked)
	}
	out.VerifiesAvoided = res.Counter(scenario.CtrVoteMemoHits)
	return out, res.Shards, nil
}

// corruptMark prefixes CBR payloads mangled by a corrupt fault, so the
// sink can tell leaked corruption from intact delivery.
const corruptMark = scenario.CorruptMark

// corruptPayload is the campaign fabric's Mutate hook: it extends the
// corrupt fault to AODV data payloads (the faults package itself only
// knows signature-bearing protocol messages). Copy-on-write — Data is a
// value and the string payload is immutable.
func corruptPayload(e link.Env, _ *sim.RNG) (link.Env, bool) {
	d, ok := e.Msg.(aodv.Data)
	if !ok {
		return e, false
	}
	s, ok := d.Payload.(string)
	if !ok || strings.HasPrefix(s, corruptMark) {
		return e, false
	}
	d.Payload = corruptMark + s
	e.Msg = d
	return e, true
}

// BlackholePoints enumerates the Fig. 7 sweep grid: configurations
// {No IC, IC L=l...} × malicious-node counts × runs, with the sweep's
// seed schedule (base.Seed + 1000·malicious + run). Enumeration order is
// the contract both the sweeps and the experiment service's artifact
// pipeline fold results in — tables are byte-identical either way.
func BlackholePoints(base BlackholeConfig, maliciousCounts []int, levels []int, runs int) []GridPoint[BlackholeConfig] {
	var points []GridPoint[BlackholeConfig]
	for _, row := range configRows(levels) {
		for _, m := range maliciousCounts {
			for run := 0; run < runs; run++ {
				cfg := base
				cfg.IC = row.ic
				cfg.L = row.level
				if cfg.L == 0 {
					cfg.L = 1
				}
				cfg.Malicious = m
				cfg.Seed = base.Seed + int64(1000*m+run)
				points = append(points, GridPoint[BlackholeConfig]{
					Label:  fmt.Sprintf("%s malicious=%d run=%d", row.label, m, run),
					Row:    row.label,
					Col:    fmt.Sprintf("%d", m),
					Config: cfg,
				})
			}
		}
	}
	return points
}

// NewBlackholeTables returns the empty Fig. 7 table pair.
func NewBlackholeTables() (throughput, energyTbl *stats.Table) {
	return stats.NewTable("Fig. 7(a) Network throughput [%]", "config \\ #malicious"),
		stats.NewTable("Fig. 7(b) Energy consumption [J/node]", "config \\ #malicious")
}

// FoldBlackhole folds one replica result into the Fig. 7 tables.
func FoldBlackhole(throughput, energyTbl *stats.Table, row, col string, res BlackholeResult) {
	throughput.Add(row, col, res.Throughput)
	energyTbl.Add(row, col, res.EnergyPerNode)
}

// BlackholeSweep runs the full Fig. 7 sweep: configurations {No IC,
// IC L=1, IC L=2} across malicious-node counts, repeated runs times, and
// returns the throughput (Fig. 7a) and energy (Fig. 7b) tables.
//
// Replicas run on the parallel replica engine (see pool.go); results fold
// into the tables in enumeration order, so the output is identical for any
// worker count (IC_WORKERS overrides the default of one worker per core).
func BlackholeSweep(base BlackholeConfig, maliciousCounts []int, levels []int, runs int, progress io.Writer) (throughput, energyTbl *stats.Table, err error) {
	if base.Tracer != nil {
		return nil, nil, fmt.Errorf("experiment: sweep config must not carry a Tracer — each replica needs its own (a shared one races across workers)")
	}
	throughput, energyTbl = NewBlackholeTables()
	err = SweepGrid(BlackholePoints(base, maliciousCounts, levels, runs), RunBlackhole, progress,
		func(label string, res BlackholeResult) string {
			return fmt.Sprintf("%s: throughput=%.1f%% energy=%.2f J\n", label, res.Throughput, res.EnergyPerNode)
		},
		func(row, col string, res BlackholeResult) {
			FoldBlackhole(throughput, energyTbl, row, col, res)
		})
	if err != nil {
		return nil, nil, err
	}
	return throughput, energyTbl, nil
}
