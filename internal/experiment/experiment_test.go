package experiment

import (
	"strings"
	"testing"

	"innercircle/internal/sensor"
)

// smallBlackhole is a reduced Fig. 7 configuration that keeps the test
// suite fast while preserving the qualitative behaviour.
func smallBlackhole() BlackholeConfig {
	cfg := PaperBlackholeConfig()
	cfg.Nodes = 30
	cfg.SimTime = 60
	cfg.Seed = 11
	return cfg
}

func TestBlackholeAttackCollapsesThroughput(t *testing.T) {
	clean := smallBlackhole()
	cleanRes, err := RunBlackhole(clean)
	if err != nil {
		t.Fatal(err)
	}
	attacked := smallBlackhole()
	attacked.Malicious = 3
	attRes, err := RunBlackhole(attacked)
	if err != nil {
		t.Fatal(err)
	}
	if cleanRes.Throughput < 40 {
		t.Fatalf("clean throughput = %.1f%%, want reasonable delivery", cleanRes.Throughput)
	}
	if attRes.Throughput > cleanRes.Throughput/2 {
		t.Fatalf("attack did not bite: %.1f%% vs clean %.1f%%", attRes.Throughput, cleanRes.Throughput)
	}
}

func TestBlackholeICNeutralizes(t *testing.T) {
	attackedNoIC := smallBlackhole()
	attackedNoIC.Malicious = 3
	noIC, err := RunBlackhole(attackedNoIC)
	if err != nil {
		t.Fatal(err)
	}
	attackedIC := attackedNoIC
	attackedIC.IC = true
	attackedIC.L = 1
	ic, err := RunBlackhole(attackedIC)
	if err != nil {
		t.Fatal(err)
	}
	if ic.Throughput < 2*noIC.Throughput {
		t.Fatalf("IC throughput %.1f%% not clearly above attacked No-IC %.1f%%",
			ic.Throughput, noIC.Throughput)
	}
}

func TestBlackholeEnergyDirections(t *testing.T) {
	clean := smallBlackhole()
	cleanRes, err := RunBlackhole(clean)
	if err != nil {
		t.Fatal(err)
	}
	ic := clean
	ic.IC = true
	ic.L = 1
	icRes, err := RunBlackhole(ic)
	if err != nil {
		t.Fatal(err)
	}
	// IC adds control traffic: energy strictly higher with no attack.
	if icRes.EnergyPerNode <= cleanRes.EnergyPerNode {
		t.Fatalf("IC energy %.2f J <= No-IC %.2f J", icRes.EnergyPerNode, cleanRes.EnergyPerNode)
	}
}

func TestBlackholeConfigValidation(t *testing.T) {
	cfg := smallBlackhole()
	cfg.Nodes = 2
	if _, err := RunBlackhole(cfg); err == nil {
		t.Error("2-node config accepted")
	}
	cfg = smallBlackhole()
	cfg.Malicious = cfg.Nodes // no room beside connections
	if _, err := RunBlackhole(cfg); err == nil {
		t.Error("over-subscribed node population accepted")
	}
}

func TestBlackholeSweepTables(t *testing.T) {
	cfg := smallBlackhole()
	cfg.SimTime = 30
	thr, eng, err := BlackholeSweep(cfg, []int{0, 2}, []int{1}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range []interface {
		Rows() []string
		Cols() []string
	}{thr, eng} {
		rows := tb.Rows()
		if len(rows) != 2 || rows[0] != "No IC" || rows[1] != "IC, L=1" {
			t.Fatalf("rows = %v", rows)
		}
		cols := tb.Cols()
		if len(cols) != 2 || cols[0] != "0" || cols[1] != "2" {
			t.Fatalf("cols = %v", cols)
		}
	}
	out := thr.String()
	if !strings.Contains(out, "Fig. 7(a)") {
		t.Fatalf("table title missing:\n%s", out)
	}
}

// smallSensor reduces the Fig. 8 configuration for test speed.
func smallSensor() SensorConfig {
	cfg := PaperSensorConfig()
	cfg.Seed = 5
	return cfg
}

func TestSensorCentralizedDetectsTargets(t *testing.T) {
	res, err := RunSensor(smallSensor())
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets != 2 {
		t.Fatalf("targets = %d, want 2 in a 200 s run", res.Targets)
	}
	if res.Missed != 0 {
		t.Fatalf("missed %d targets at K·T=20000 (paper: miss = 0)", res.Missed)
	}
	if res.Notifications == 0 {
		t.Fatal("no notifications reached the base")
	}
}

func TestSensorInterferenceRaisesFalseAlarms(t *testing.T) {
	clean := smallSensor()
	cleanRes, err := RunSensor(clean)
	if err != nil {
		t.Fatal(err)
	}
	intf := smallSensor()
	intf.Fault = sensor.FaultInterference
	intfRes, err := RunSensor(intf)
	if err != nil {
		t.Fatal(err)
	}
	if intfRes.FalseAlarmProb <= cleanRes.FalseAlarmProb {
		t.Fatalf("interference false alarms %.2f%% <= clean %.2f%%",
			intfRes.FalseAlarmProb, cleanRes.FalseAlarmProb)
	}
}

func TestSensorICSuppressesFalseAlarmsAndDuplicates(t *testing.T) {
	noIC := smallSensor()
	noIC.Fault = sensor.FaultInterference
	noICRes, err := RunSensor(noIC)
	if err != nil {
		t.Fatal(err)
	}
	ic := noIC
	ic.IC = true
	ic.L = 3
	icRes, err := RunSensor(ic)
	if err != nil {
		t.Fatal(err)
	}
	if icRes.Missed != 0 {
		t.Fatalf("IC missed %d targets", icRes.Missed)
	}
	if icRes.FalseAlarmProb >= noICRes.FalseAlarmProb/2 {
		t.Fatalf("IC false alarms %.2f%% not clearly below No-IC %.2f%%",
			icRes.FalseAlarmProb, noICRes.FalseAlarmProb)
	}
	if icRes.Notifications >= noICRes.Notifications/2 {
		t.Fatalf("IC notifications %d vs No-IC %d: duplicate suppression ineffective",
			icRes.Notifications, noICRes.Notifications)
	}
	if icRes.TrafficEnergy >= noICRes.TrafficEnergy {
		t.Fatalf("IC traffic energy %.3f J >= No-IC %.3f J", icRes.TrafficEnergy, noICRes.TrafficEnergy)
	}
}

func TestSensorICImprovesLocalization(t *testing.T) {
	noIC := smallSensor()
	noICRes, err := RunSensor(noIC)
	if err != nil {
		t.Fatal(err)
	}
	ic := noIC
	ic.IC = true
	ic.L = 5
	icRes, err := RunSensor(ic)
	if err != nil {
		t.Fatal(err)
	}
	if icRes.LocalizationErr >= noICRes.LocalizationErr/2 {
		t.Fatalf("IC localization %.1f m not clearly better than No-IC %.1f m (paper: 4-6x)",
			icRes.LocalizationErr, noICRes.LocalizationErr)
	}
}

func TestSensorNoTargetRun(t *testing.T) {
	cfg := smallSensor()
	cfg.NoTarget = true
	res, err := RunSensor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets != 0 || res.MissAlarm != 0 {
		t.Fatalf("no-target run reported targets: %+v", res)
	}
	if res.EnergyPerNode <= 0 {
		t.Fatal("no energy recorded")
	}
}

func TestSensorConfigValidation(t *testing.T) {
	cfg := smallSensor()
	cfg.Nodes = 3
	if _, err := RunSensor(cfg); err == nil {
		t.Error("tiny config accepted")
	}
}

func TestSensorSweepTables(t *testing.T) {
	cfg := smallSensor()
	cfg.SimTime = 100 // one target
	tables, err := SensorSweep(cfg, []int{3}, []sensor.FaultKind{sensor.FaultNone}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"miss", "false", "energyT", "energyNT", "latency", "locerr"} {
		tb, ok := tables[key]
		if !ok {
			t.Fatalf("missing table %q", key)
		}
		rows := tb.Rows()
		if len(rows) != 2 || rows[0] != "No IC" || rows[1] != "IC, L=3" {
			t.Fatalf("%s rows = %v", key, rows)
		}
	}
}

func TestGrayHoleICContainment(t *testing.T) {
	// The paper singles out gray holes as the variation network-wide
	// detectors cannot handle; the inner circle contains them the same way
	// (every forged RREP is suppressed regardless of how rarely it is
	// emitted).
	noIC := smallBlackhole()
	noIC.Malicious = 3
	noIC.GrayProb = 0.5
	noICRes, err := RunBlackhole(noIC)
	if err != nil {
		t.Fatal(err)
	}
	icCfg := noIC
	icCfg.IC = true
	icCfg.L = 1
	icRes, err := RunBlackhole(icCfg)
	if err != nil {
		t.Fatal(err)
	}
	if icRes.Throughput <= noICRes.Throughput {
		t.Fatalf("IC %.1f%% <= No-IC %.1f%% under gray-hole attack",
			icRes.Throughput, noICRes.Throughput)
	}
}

func TestWeakSignalMissesUnderUniformPlacement(t *testing.T) {
	// §5.2's weak-signal result: with K·T = 10000 and a uniform deployment,
	// large inner circles occasionally fail to gather L detecting
	// neighbours and miss the target; the dense grid does not show this.
	missed := 0
	for seed := int64(0); seed < 12; seed++ {
		cfg := PaperSensorConfig()
		cfg.UniformPlacement = true
		cfg.Model.KT = 10000
		cfg.Fault = sensor.FaultStuckAtZero
		cfg.IC = true
		cfg.L = 7
		cfg.Seed = seed
		res, err := RunSensor(cfg)
		if err != nil {
			t.Fatal(err)
		}
		missed += res.Missed
	}
	if missed == 0 {
		t.Fatal("no weak-signal misses at L=7 under uniform placement (expected a few percent)")
	}
	// The dense grid covers every target even with the weak signal.
	cfg := PaperSensorConfig()
	cfg.Model.KT = 10000
	cfg.Fault = sensor.FaultStuckAtZero
	cfg.IC = true
	cfg.L = 7
	cfg.Seed = 3
	res, err := RunSensor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed != 0 {
		t.Fatalf("grid deployment missed %d targets", res.Missed)
	}
}
