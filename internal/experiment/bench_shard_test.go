package experiment

import (
	"fmt"
	"testing"

	"innercircle/internal/scenario"
)

// BenchmarkShardedField measures one full sensor-field replica at the
// scaling sizes, single-kernel versus sharded. The honest caveat for the
// recorded numbers (BENCH_shard.json): on a single-core host the win is
// not parallel wall-clock — it is the sharded radio send path, which
// iterates a sorted 3×3-cell candidate set instead of the legacy indexed
// path's per-send mark/scan over every transceiver, plus the sequential
// multi-queue executor the runner auto-selects at GOMAXPROCS=1. That
// scan term grows with N per send, so the sharded win widens with size:
// per-event protocol work (MAC/link/diffusion), common to both paths,
// dominates at 10k and keeps the ratio there near 1.5×; the 2× crossover
// lands just under 30k on the recorded host.
//
// The shard count per size is the largest probed count that executes
// tie-free at the benchmark seed (cross-shard timestamp ties abort and
// rerun on one kernel — deterministic per seed — and the assertion below
// keeps a tie from silently mislabeling a single-kernel run).
//
// Each iteration builds and runs a whole replica, so memory benchmarks
// are dominated by network construction; the interesting number is ns/op.
func BenchmarkShardedField(b *testing.B) {
	for _, p := range []struct{ nodes, shards int }{
		{1000, 4}, {10000, 6}, {40000, 8}, {100000, 8},
	} {
		n := p.nodes
		for _, shards := range []int{1, p.shards} {
			b.Run(fmt.Sprintf("nodes=%d/shards=%d", n, shards), func(b *testing.B) {
				cfg := ScaledSensorConfig(n)
				cfg.Seed = 1
				cfg.Shards = shards
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					spec, err := sensorSpec(cfg)
					if err != nil {
						b.Fatal(err)
					}
					res, err := scenario.Run(spec)
					if err != nil {
						b.Fatal(err)
					}
					if res.Shards != shards {
						b.Fatalf("replica executed with %d shards, want %d (fallback or tie rerun — numbers would be mislabeled)", res.Shards, shards)
					}
				}
			})
		}
	}
}
