// Replica engine: a worker pool that fans the independent
// (config point × run) replicas of a parameter sweep across CPU cores.
//
// The paper's evaluation averages 50 ns-2 runs per data point; every replica
// is a deterministic, single-threaded simulation that owns its entire object
// graph, so a sweep is embarrassingly parallel. The engine preserves the
// sequential sweeps' reproducibility contract: results land in per-job slots
// indexed by enumeration order, and the caller folds them into tables in
// that order, so the output is bit-identical regardless of worker count or
// completion order. Only the progress stream (which reports completions as
// they happen) depends on scheduling.
package experiment

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"

	"innercircle/internal/sim"
)

// Job is one unit of sweep work: an independent simulation replica.
type Job struct {
	// Index is the job's position in the caller's enumeration order;
	// RunJobs writes the job's result into results[Index].
	Index int
	// Label identifies the job in progress lines and failure messages
	// (e.g. "IC, L=2 malicious=6 run=3").
	Label string
	// Run executes the replica and returns its result. It must not share
	// mutable state with any other job: RunJobs calls Run from multiple
	// goroutines concurrently.
	Run func() (any, error)
}

// ProgressFunc observes job completions. done is the number of jobs
// finished so far (including j), total the number submitted. Calls are
// serialized by the engine, so implementations need no locking of their
// own; they run in completion order, which varies with worker count.
type ProgressFunc func(done, total int, j Job, result any)

// Workers returns the worker count for a sweep: the IC_WORKERS environment
// variable when set to a positive integer, else runtime.GOMAXPROCS(0).
func Workers() int {
	if s := os.Getenv("IC_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// RunJobs executes jobs on a pool of workers and returns the results
// indexed by Job.Index. workers <= 0 selects Workers(). A job panic is
// captured and reported as that job's error. On the first failure the
// engine cancels: queued jobs are skipped (in-flight replicas finish and
// are discarded), and the enumeration-order first error among the replicas
// that failed is returned.
func RunJobs(jobs []Job, workers int, progress ProgressFunc) ([]any, error) {
	return RunJobsCtx(context.Background(), jobs, workers, progress)
}

// RunJobsCtx is RunJobs under a context: cancelling ctx mid-sweep stops
// feeding the queue, lets in-flight replicas finish (a replica cannot be
// aborted mid-event; its partial work is never observed), and returns
// ctx's error with the results completed so far in their slots. On return
// every worker goroutine has exited and every core-budget token taken by
// the pool has been released — the experiment service's drain path leans
// on both guarantees.
func RunJobsCtx(ctx context.Context, jobs []Job, workers int, progress ProgressFunc) ([]any, error) {
	results := make([]any, len(jobs))
	errs := make([]error, len(jobs))
	if len(jobs) == 0 {
		return results, ctx.Err()
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		mu        sync.Mutex // guards done, failed, progress calls
		done      int
		failed    bool
		wg        sync.WaitGroup
		jobCh     = make(chan Job)
		cancelled = make(chan struct{})
	)
	cancel := func() {
		// Callers hold mu; close once.
		if !failed {
			failed = true
			close(cancelled)
		}
	}

	worker := func() {
		defer wg.Done()
		for j := range jobCh {
			select {
			case <-cancelled:
				continue // drain the queue without starting more replicas
			case <-ctx.Done():
				continue
			default:
			}
			// Charge one core token per in-flight replica so sharded
			// replicas (sim.ShardSet.Run) size their executors to the
			// cores this pool is not already driving. Advisory: a worker
			// that gets no token still runs — the budget only stops a
			// saturated pool's replicas from spawning shards-per-replica
			// extra goroutines on top of the workers.
			got := sim.AcquireCores(1)
			trackInflight(1)
			res, err := runOne(j)
			trackInflight(-1)
			sim.ReleaseCores(got)
			mu.Lock()
			if err != nil {
				errs[j.Index] = err
				cancel()
				mu.Unlock()
				continue
			}
			results[j.Index] = res
			done++
			if progress != nil {
				progress(done, len(jobs), j, res)
			}
			mu.Unlock()
		}
	}
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go worker()
	}

feed:
	for _, j := range jobs {
		select {
		case jobCh <- j:
		case <-cancelled:
			break feed
		case <-ctx.Done():
			break feed
		}
	}
	close(jobCh)
	wg.Wait()

	// Report the first failure in enumeration order (deterministic even
	// when several in-flight replicas fail concurrently).
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, ctx.Err()
}

// inflight tracks replicas currently executing across every pool in the
// process; peakInflight is its resettable high-water mark. The experiment
// service's tests use the pair to assert that concurrent sweeps sized by
// the core-token budget never oversubscribe the machine.
var (
	inflight     atomic.Int64
	peakInflight atomic.Int64
)

func trackInflight(d int64) {
	n := inflight.Add(d)
	if d <= 0 {
		return
	}
	for {
		peak := peakInflight.Load()
		if n <= peak || peakInflight.CompareAndSwap(peak, n) {
			return
		}
	}
}

// InFlightReplicas returns the number of replicas executing right now.
func InFlightReplicas() int { return int(inflight.Load()) }

// PeakInFlightReplicas returns the high-water mark of concurrently
// executing replicas since the last ResetPeakInFlight.
func PeakInFlightReplicas() int { return int(peakInflight.Load()) }

// ResetPeakInFlight clears the in-flight high-water mark.
func ResetPeakInFlight() { peakInflight.Store(0) }

// runOne executes one job, converting a panic into an error so a corrupted
// replica cannot take down the whole sweep process.
func runOne(j Job) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiment: job %q panicked: %v\n%s", j.Label, r, debug.Stack())
		}
	}()
	res, err = j.Run()
	if err != nil {
		err = fmt.Errorf("experiment: job %q: %w", j.Label, err)
	}
	return res, err
}

// progressWriter adapts an io.Writer into a ProgressFunc using a per-job
// line formatter. The engine serializes progress calls, so lines never
// interleave; nil w yields a nil ProgressFunc.
func progressWriter(w io.Writer, line func(j Job, result any) string) ProgressFunc {
	if w == nil {
		return nil
	}
	return func(done, total int, j Job, result any) {
		fmt.Fprintf(w, "[%d/%d] %s", done, total, line(j, result))
	}
}
