package experiment

import (
	"fmt"
	"io"

	"innercircle/internal/faults"
	"innercircle/internal/stats"
)

// CampaignTables bundles the outputs of a fault-campaign sweep: the
// classic throughput/energy tables plus the neutralization-coverage
// tables that turn the paper's qualitative claim — errors and attacks are
// suppressed at the source — into a measurable regression surface.
type CampaignTables struct {
	Throughput *stats.Table // delivered intact / sent [%]
	Energy     *stats.Table // joules per node
	Injected   *stats.Table // fault actions taken per run
	Suppressed *stats.Table // neutralized by the inner circle per run
	Leaked     *stats.Table // corrupted payloads delivered per run
	// VerifiesAvoided is diagnostic, not modeled: signature checks served
	// by the per-replica verification memo. It is the one table allowed to
	// differ between IC_CRYPTO_MEMO settings (it reads zero with the memo
	// off); the five modeled tables above must stay byte-identical.
	VerifiesAvoided *stats.Table
}

// NewCampaignTables returns the empty campaign-sweep table bundle.
func NewCampaignTables() *CampaignTables {
	return &CampaignTables{
		Throughput: stats.NewTable("Campaign sweep: network throughput [%]", "config \\ campaign"),
		Energy:     stats.NewTable("Campaign sweep: energy consumption [J/node]", "config \\ campaign"),
		Injected:   stats.NewTable("Campaign sweep: faults injected [#/run]", "config \\ campaign"),
		Suppressed: stats.NewTable("Campaign sweep: faults suppressed by inner circle [#/run]", "config \\ campaign"),
		Leaked:     stats.NewTable("Campaign sweep: corrupted payloads leaked [#/run]", "config \\ campaign"),
		VerifiesAvoided: stats.NewTable(
			"Campaign sweep: signature verifications avoided by memo [#/run]", "config \\ campaign"),
	}
}

// CampaignPoints enumerates the campaign sweep grid: configurations
// {No IC, IC L=l...} × campaigns × runs with per-replica seeds
// base.Seed + 1000*ci + run (ci = campaign index), mirroring
// BlackholeSweep's 1000*m + run. Enumeration order is the folding
// contract shared with the experiment service.
func CampaignPoints(base BlackholeConfig, campaigns []faults.Campaign, levels []int, runs int) []GridPoint[BlackholeConfig] {
	var points []GridPoint[BlackholeConfig]
	for _, row := range configRows(levels) {
		for ci := range campaigns {
			for run := 0; run < runs; run++ {
				cfg := base
				cfg.IC = row.ic
				cfg.L = row.level
				if cfg.L == 0 {
					cfg.L = 1
				}
				cfg.Malicious = 0
				cfg.GrayProb = 0
				cfg.Campaign = &campaigns[ci]
				cfg.Seed = base.Seed + int64(1000*ci+run)
				points = append(points, GridPoint[BlackholeConfig]{
					Label:  fmt.Sprintf("%s campaign=%s run=%d", row.label, campaigns[ci].Name, run),
					Row:    row.label,
					Col:    campaigns[ci].Name,
					Config: cfg,
				})
			}
		}
	}
	return points
}

// FoldCampaign folds one replica's result into the campaign tables.
func FoldCampaign(t *CampaignTables, row, col string, res BlackholeResult) {
	t.Throughput.Add(row, col, res.Throughput)
	t.Energy.Add(row, col, res.EnergyPerNode)
	t.Injected.Add(row, col, float64(res.FaultsInjected))
	t.Suppressed.Add(row, col, float64(res.FaultsSuppressed))
	t.Leaked.Add(row, col, float64(res.FaultsLeaked))
	t.VerifiesAvoided.Add(row, col, float64(res.VerifiesAvoided))
}

// ValidateCampaignSweep checks the inputs a campaign sweep shares with
// the experiment service's grid layer: at least one valid campaign and
// no Tracer on the base config (a shared one races across workers).
func ValidateCampaignSweep(base BlackholeConfig, campaigns []faults.Campaign) error {
	if len(campaigns) == 0 {
		return fmt.Errorf("experiment: campaign sweep needs at least one campaign")
	}
	if base.Tracer != nil {
		return fmt.Errorf("experiment: sweep config must not carry a Tracer — each replica needs its own (a shared one races across workers)")
	}
	for i := range campaigns {
		if err := campaigns[i].Validate(); err != nil {
			return fmt.Errorf("experiment: %w", err)
		}
	}
	return nil
}

// CampaignSweep runs every (configuration row × campaign × run) replica
// on the parallel worker pool: rows are {No IC} plus {IC, L=l} for each
// level, columns are the campaign names. Per-replica seeds follow
// base.Seed + 1000*ci + run (ci = campaign index), mirroring
// BlackholeSweep's 1000*m + run, so a preset sweep whose campaign indices
// equal the legacy malicious counts reproduces the legacy tables byte for
// byte. Results fold in enumeration order, making the output identical at
// any IC_WORKERS count.
func CampaignSweep(base BlackholeConfig, campaigns []faults.Campaign, levels []int, runs int, progress io.Writer) (*CampaignTables, error) {
	if err := ValidateCampaignSweep(base, campaigns); err != nil {
		return nil, err
	}
	t := NewCampaignTables()
	err := SweepGrid(CampaignPoints(base, campaigns, levels, runs), RunBlackhole, progress,
		func(label string, res BlackholeResult) string {
			return fmt.Sprintf("%s: throughput=%.1f%% injected=%d suppressed=%d leaked=%d\n",
				label, res.Throughput, res.FaultsInjected, res.FaultsSuppressed, res.FaultsLeaked)
		},
		func(row, col string, res BlackholeResult) {
			FoldCampaign(t, row, col, res)
		})
	if err != nil {
		return nil, err
	}
	return t, nil
}
