package link

import (
	"testing"

	"innercircle/internal/geo"
	"innercircle/internal/mac"
	"innercircle/internal/mobility"
	"innercircle/internal/radio"
	"innercircle/internal/sim"
)

type testMsg struct {
	body string
	size int
}

func (m testMsg) Size() int { return m.size }

func buildLinks(k *sim.Kernel, positions []geo.Point) []*Service {
	ch := radio.NewChannel(k, radio.Default80211())
	rng := sim.NewRNG(1)
	svcs := make([]*Service, len(positions))
	for i, p := range positions {
		m := mac.New(k, ch, mobility.Static(p), nil, rng.SplitN("mac", i), mac.Default80211())
		svcs[i] = NewService(m)
	}
	return svcs
}

func TestUnicastAndBroadcast(t *testing.T) {
	k := sim.NewKernel()
	svcs := buildLinks(k, []geo.Point{{X: 0}, {X: 100}, {X: 200}})
	var got1, got2 []Env
	svcs[1].OnRecv(func(e Env) { got1 = append(got1, e) })
	svcs[2].OnRecv(func(e Env) { got2 = append(got2, e) })

	if err := svcs[0].Send(svcs[1].ID(), testMsg{"uni", 100}); err != nil {
		t.Fatal(err)
	}
	if err := svcs[0].Send(BroadcastID, testMsg{"bc", 50}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(got1) != 2 {
		t.Fatalf("node1 got %d messages, want unicast+broadcast", len(got1))
	}
	if len(got2) != 1 {
		t.Fatalf("node2 got %d messages, want broadcast only", len(got2))
	}
	if got2[0].To != BroadcastID || got2[0].From != svcs[0].ID() {
		t.Fatalf("broadcast envelope = %+v", got2[0])
	}
}

// swallowOut drops outbound messages whose body matches.
type swallowOut struct {
	body      string
	swallowed int
}

func (f *swallowOut) Outbound(e Env) bool {
	if m, ok := e.Msg.(testMsg); ok && m.body == f.body {
		f.swallowed++
		return false
	}
	return true
}
func (f *swallowOut) Inbound(Env) bool { return true }

// suppressIn drops inbound messages from a given node.
type suppressIn struct {
	from       NodeID
	suppressed int
}

func (f *suppressIn) Outbound(Env) bool { return true }
func (f *suppressIn) Inbound(e Env) bool {
	if e.From == f.from {
		f.suppressed++
		return false
	}
	return true
}

func TestOutboundFilterSwallows(t *testing.T) {
	k := sim.NewKernel()
	svcs := buildLinks(k, []geo.Point{{X: 0}, {X: 100}})
	var got []Env
	svcs[1].OnRecv(func(e Env) { got = append(got, e) })
	f := &swallowOut{body: "secret"}
	svcs[0].AddFilter(f)
	if err := svcs[0].Send(svcs[1].ID(), testMsg{"secret", 10}); err != nil {
		t.Fatal(err)
	}
	if err := svcs[0].Send(svcs[1].ID(), testMsg{"public", 10}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	if f.swallowed != 1 {
		t.Fatalf("swallowed = %d, want 1", f.swallowed)
	}
	if len(got) != 1 || got[0].Msg.(testMsg).body != "public" {
		t.Fatalf("got %v, want only 'public'", got)
	}
}

func TestSendRawBypassesFilters(t *testing.T) {
	k := sim.NewKernel()
	svcs := buildLinks(k, []geo.Point{{X: 0}, {X: 100}})
	var got []Env
	svcs[1].OnRecv(func(e Env) { got = append(got, e) })
	f := &swallowOut{body: "secret"}
	svcs[0].AddFilter(f)
	if err := svcs[0].SendRaw(svcs[1].ID(), testMsg{"secret", 10}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	if f.swallowed != 0 || len(got) != 1 {
		t.Fatalf("SendRaw was filtered: swallowed=%d got=%d", f.swallowed, len(got))
	}
}

func TestInboundFilterSuppresses(t *testing.T) {
	k := sim.NewKernel()
	svcs := buildLinks(k, []geo.Point{{X: 0}, {X: 100}, {X: 50, Y: 50}})
	var got []Env
	svcs[1].OnRecv(func(e Env) { got = append(got, e) })
	f := &suppressIn{from: svcs[2].ID()}
	svcs[1].AddFilter(f)
	if err := svcs[0].Send(svcs[1].ID(), testMsg{"ok", 10}); err != nil {
		t.Fatal(err)
	}
	if err := svcs[2].Send(svcs[1].ID(), testMsg{"bad", 10}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	if f.suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1", f.suppressed)
	}
	if len(got) != 1 || got[0].From != svcs[0].ID() {
		t.Fatalf("got %v, want only message from node0", got)
	}
}

func TestSendFailedUpcall(t *testing.T) {
	k := sim.NewKernel()
	svcs := buildLinks(k, []geo.Point{{X: 0}, {X: 10000}})
	var failed []Env
	svcs[0].OnSendFailed(func(e Env) { failed = append(failed, e) })
	if err := svcs[0].Send(svcs[1].ID(), testMsg{"gone", 100}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 {
		t.Fatalf("failed upcalls = %d, want 1", len(failed))
	}
	if failed[0].To != svcs[1].ID() {
		t.Fatalf("failed envelope = %+v", failed[0])
	}
}

func TestFilterChainOrder(t *testing.T) {
	k := sim.NewKernel()
	svcs := buildLinks(k, []geo.Point{{X: 0}, {X: 100}})
	first := &swallowOut{body: "x"}
	second := &swallowOut{body: "x"}
	svcs[0].AddFilter(first)
	svcs[0].AddFilter(second)
	if err := svcs[0].Send(svcs[1].ID(), testMsg{"x", 10}); err != nil {
		t.Fatal(err)
	}
	if first.swallowed != 1 || second.swallowed != 0 {
		t.Fatalf("chain order violated: first=%d second=%d", first.swallowed, second.swallowed)
	}
}
