package link

import (
	"testing"

	"innercircle/internal/geo"
	"innercircle/internal/sim"
)

// fnTap adapts two functions into a Tap.
type fnTap struct {
	out func(e Env, emit func(Env))
	in  func(e Env, emit func(Env))
}

func (t fnTap) Outbound(e Env, emit func(Env)) {
	if t.out == nil {
		emit(e)
		return
	}
	t.out(e, emit)
}

func (t fnTap) Inbound(e Env, emit func(Env)) {
	if t.in == nil {
		emit(e)
		return
	}
	t.in(e, emit)
}

func TestTapOutboundDropAndDuplicate(t *testing.T) {
	k := sim.NewKernel()
	svcs := buildLinks(k, []geo.Point{{X: 0}, {X: 100}})
	var got []Env
	svcs[1].OnRecv(func(e Env) { got = append(got, e) })

	svcs[0].SetTap(fnTap{out: func(e Env, emit func(Env)) {
		switch e.Msg.(testMsg).body {
		case "drop":
			// swallowed: zero emits
		case "dup":
			emit(e)
			emit(e)
		default:
			emit(e)
		}
	}})

	for _, body := range []string{"drop", "dup", "plain"} {
		if err := svcs[0].Send(svcs[1].ID(), testMsg{body, 50}); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	var bodies []string
	for _, e := range got {
		bodies = append(bodies, e.Msg.(testMsg).body)
	}
	want := []string{"dup", "dup", "plain"}
	if len(bodies) != len(want) {
		t.Fatalf("received %v, want %v", bodies, want)
	}
	for i := range want {
		if bodies[i] != want[i] {
			t.Fatalf("received %v, want %v", bodies, want)
		}
	}
}

func TestTapSeesRawTraffic(t *testing.T) {
	// The filter chain misses SendRaw traffic; the tap must not.
	k := sim.NewKernel()
	svcs := buildLinks(k, []geo.Point{{X: 0}, {X: 100}})
	tapped := 0
	svcs[0].SetTap(fnTap{out: func(e Env, emit func(Env)) {
		tapped++
		emit(e)
	}})
	if err := svcs[0].SendRaw(svcs[1].ID(), testMsg{"raw", 50}); err != nil {
		t.Fatal(err)
	}
	if tapped != 1 {
		t.Fatalf("tap saw %d raw messages, want 1", tapped)
	}
}

func TestTapInboundDeferredEmit(t *testing.T) {
	k := sim.NewKernel()
	svcs := buildLinks(k, []geo.Point{{X: 0}, {X: 100}})
	var at sim.Time
	svcs[1].OnRecv(func(e Env) { at = k.Now() })
	svcs[1].SetTap(fnTap{in: func(e Env, emit func(Env)) {
		// emit stays valid after Inbound returns: hold the message half a
		// second.
		k.MustSchedule(sim.Duration(0.5), func() { emit(e) })
	}})
	if err := svcs[0].Send(svcs[1].ID(), testMsg{"late", 50}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(2); err != nil {
		t.Fatal(err)
	}
	if at < 0.5 {
		t.Fatalf("delivery at %v, want >= 0.5s (tap-delayed)", at)
	}
}

func TestTapSpoofedSource(t *testing.T) {
	// A tap that rewrites Env.From sends with a forged MAC source; the
	// receiver's envelope names the victim, not the attacker.
	k := sim.NewKernel()
	svcs := buildLinks(k, []geo.Point{{X: 0}, {X: 100}, {X: 200}})
	victim := svcs[2].ID()
	var got []Env
	svcs[1].OnRecv(func(e Env) { got = append(got, e) })
	svcs[0].SetTap(fnTap{out: func(e Env, emit func(Env)) {
		e.From = victim
		emit(e)
	}})
	if err := svcs[0].Send(BroadcastID, testMsg{"spoofed", 50}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].From != victim {
		t.Fatalf("got %+v, want one envelope from victim %d", got, victim)
	}
}
