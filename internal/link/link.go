// Package link provides the paper's "Single-hop Communication Service": a
// best-effort unicast/broadcast message service over the MAC, plus the
// filter hook points through which the Inner-circle Interceptor (Fig. 1)
// observes and redirects traffic between the link layer and the services
// above it.
package link

import (
	"innercircle/internal/mac"
)

// NodeID identifies a node. It is numerically equal to the node's MAC
// address; correct nodes keep it for life (§2 of the paper).
type NodeID int

// BroadcastID is the destination for single-hop broadcasts.
const BroadcastID NodeID = NodeID(mac.Broadcast)

// Message is anything a protocol sends across one hop. Size is the wire
// size used to compute airtime and energy.
type Message interface {
	Size() int
}

// Env is a message envelope with its single-hop addressing.
type Env struct {
	From NodeID
	To   NodeID // BroadcastID for broadcasts
	Msg  Message
}

// Filter intercepts traffic. Outbound runs before a message is handed to
// the MAC (return false to swallow it); Inbound runs before a received
// message is delivered upward (return false to suppress it). This is the
// hook the Inner-circle Interceptor plugs into.
type Filter interface {
	Outbound(Env) bool
	Inbound(Env) bool
}

// Tap intercepts traffic at the link/MAC boundary — below the filters, so
// it sees every message, including the raw protocol traffic that bypasses
// them. It is the fault-injection hook (internal/faults). Outbound runs
// as a message is handed to the MAC; Inbound runs after the radio
// delivers one and before the filter chain. A tap forwards each envelope
// by calling emit: zero times to drop it, twice to duplicate it, later
// (via a kernel event) to delay it, or with a mutated copy to corrupt it.
// emit stays valid after the call returns, so deferred emission is safe.
type Tap interface {
	Outbound(e Env, emit func(Env))
	Inbound(e Env, emit func(Env))
}

// Service is one node's single-hop communication service.
type Service struct {
	mac      *mac.MAC
	id       NodeID
	filters  []Filter
	tap      Tap
	observer func(outbound bool, e Env)
	onRecv   func(Env)
	onFailed func(Env)
}

// NewService wraps m. The service installs itself as m's receive handler.
func NewService(m *mac.MAC) *Service {
	s := &Service{mac: m, id: NodeID(m.Addr())}
	m.OnRecv(s.recv)
	m.OnSendFailed(s.sendFailed)
	return s
}

// ID returns this node's identifier.
func (s *Service) ID() NodeID { return s.id }

// AddFilter appends a filter to the chain. Filters run in insertion order;
// the first to return false stops processing.
func (s *Service) AddFilter(f Filter) { s.filters = append(s.filters, f) }

// OnRecv registers the upward delivery handler.
func (s *Service) OnRecv(fn func(Env)) { s.onRecv = fn }

// SetObserver registers a tap that sees every message this node transmits
// (including raw protocol traffic that bypasses the filters) and every
// message the radio delivers, before filtering. Used by the tracer.
func (s *Service) SetObserver(fn func(outbound bool, e Env)) { s.observer = fn }

// OnSendFailed registers the handler invoked when a unicast exhausts MAC
// retries (the link-breakage signal).
func (s *Service) OnSendFailed(fn func(Env)) { s.onFailed = fn }

// SetTap installs the fault-injection tap; nil restores the direct path.
// With a tap installed, the outbound observer sees what actually reaches
// the MAC (post-fault), while the inbound observer still sees what the
// radio delivered (pre-fault).
func (s *Service) SetTap(t Tap) { s.tap = t }

// Send transmits msg to the given destination (BroadcastID for broadcast).
// Outbound filters may swallow the message, which is not an error: the
// interceptor redirecting a message into the voting service looks like
// this.
func (s *Service) Send(to NodeID, msg Message) error {
	env := Env{From: s.id, To: to, Msg: msg}
	for _, f := range s.filters {
		if !f.Outbound(env) {
			return nil
		}
	}
	return s.SendRaw(to, msg)
}

// SendRaw transmits without running outbound filters. Inner-circle services
// use it to emit their own protocol traffic (which must not be
// re-intercepted).
func (s *Service) SendRaw(to NodeID, msg Message) error {
	env := Env{From: s.id, To: to, Msg: msg}
	if s.tap == nil {
		return s.transmit(env)
	}
	s.tap.Outbound(env, s.emitOut)
	return nil
}

// emitOut is the tap's outbound continuation.
func (s *Service) emitOut(e Env) { _ = s.transmit(e) }

// transmit hands one envelope to the MAC. An envelope whose From differs
// from this node — identity spoofing injected by a tap — goes out with a
// forged link-layer source.
func (s *Service) transmit(e Env) error {
	if s.observer != nil {
		s.observer(true, e)
	}
	if e.From != s.id {
		return s.mac.SendAs(mac.Addr(e.From), mac.Addr(e.To), e.Msg, e.Msg.Size())
	}
	return s.mac.Send(mac.Addr(e.To), e.Msg, e.Msg.Size())
}

func (s *Service) recv(p mac.Packet) {
	msg, ok := p.Payload.(Message)
	if !ok {
		return
	}
	env := Env{From: NodeID(p.Src), To: NodeID(p.Dst), Msg: msg}
	if s.observer != nil {
		s.observer(false, env)
	}
	if s.tap == nil {
		s.deliver(env)
		return
	}
	s.tap.Inbound(env, s.deliver)
}

// deliver runs the inbound filter chain and the upward handler.
func (s *Service) deliver(e Env) {
	for _, f := range s.filters {
		if !f.Inbound(e) {
			return
		}
	}
	if s.onRecv != nil {
		s.onRecv(e)
	}
}

func (s *Service) sendFailed(p mac.Packet) {
	msg, ok := p.Payload.(Message)
	if !ok {
		return
	}
	if s.onFailed != nil {
		s.onFailed(Env{From: NodeID(p.Src), To: NodeID(p.Dst), Msg: msg})
	}
}
