package sts

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"

	"innercircle/internal/crypto/nsl"
	"innercircle/internal/link"
)

// BeaconAuth signs and verifies STS beacons. Two implementations exist,
// mirroring the two threshold-signature schemes: RSAAuth is the faithful
// public-key implementation, SimAuth is a keyed-MAC stand-in with the same
// wire size for large parameter sweeps (the figures depend on beacon
// *bytes*, which both produce identically).
type BeaconAuth interface {
	// Sign produces this node's signature over msg.
	Sign(msg []byte) []byte
	// Verify checks a signature allegedly produced by node id.
	Verify(id link.NodeID, msg, sig []byte) error
	// SigBytes is the wire size of signatures.
	SigBytes() int
}

// RSAAuth signs beacons with the node's RSA key pair and verifies against
// the shared directory.
type RSAAuth struct {
	kp  *nsl.KeyPair
	dir nsl.Directory
}

var _ BeaconAuth = (*RSAAuth)(nil)

// NewRSAAuth returns the public-key beacon authenticator.
func NewRSAAuth(kp *nsl.KeyPair, dir nsl.Directory) *RSAAuth {
	return &RSAAuth{kp: kp, dir: dir}
}

// Sign implements BeaconAuth.
func (a *RSAAuth) Sign(msg []byte) []byte { return a.kp.Sign(msg) }

// Verify implements BeaconAuth.
func (a *RSAAuth) Verify(id link.NodeID, msg, sig []byte) error {
	pk, err := a.dir.PublicKey(int64(id))
	if err != nil {
		return err
	}
	return nsl.Verify(pk, msg, sig)
}

// SigBytes implements BeaconAuth.
func (a *RSAAuth) SigBytes() int { return nsl.SigBytes(a.kp.Pub) }

// ErrSimAuthBadSig is returned by SimAuth.Verify for invalid signatures.
var ErrSimAuthBadSig = errors.New("sts: bad beacon MAC")

// SimAuth is the sweep-scale stand-in: per-node keys derive from a network
// seed, signatures are HMACs padded to the configured wire size. Like
// thresh.SimScheme, it preserves the protocol semantics (a node can only
// sign as itself, because the simulator hands each node only its own
// SimAuth instance) at a fraction of the CPU cost.
type SimAuth struct {
	seed     []byte
	self     link.NodeID
	key      []byte
	sigBytes int
}

var _ BeaconAuth = (*SimAuth)(nil)

// NewSimAuth returns the keyed-MAC beacon authenticator for node self.
// sigBytes sets the reported wire size (e.g. 64 to emulate 512-bit RSA).
func NewSimAuth(seed []byte, self link.NodeID, sigBytes int) *SimAuth {
	if sigBytes < sha256.Size {
		sigBytes = sha256.Size
	}
	return &SimAuth{seed: append([]byte(nil), seed...), self: self, key: simAuthKey(seed, self), sigBytes: sigBytes}
}

func simAuthKey(seed []byte, id link.NodeID) []byte {
	mac := hmac.New(sha256.New, seed)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	_, _ = mac.Write(b[:])
	return mac.Sum(nil)
}

// Sign implements BeaconAuth.
func (a *SimAuth) Sign(msg []byte) []byte {
	mac := hmac.New(sha256.New, a.key)
	_, _ = mac.Write(msg)
	sig := mac.Sum(nil)
	// Pad to the emulated wire size.
	out := make([]byte, a.sigBytes)
	copy(out, sig)
	return out
}

// Verify implements BeaconAuth.
func (a *SimAuth) Verify(id link.NodeID, msg, sig []byte) error {
	if len(sig) < sha256.Size {
		return ErrSimAuthBadSig
	}
	mac := hmac.New(sha256.New, simAuthKey(a.seed, id))
	_, _ = mac.Write(msg)
	if !hmac.Equal(mac.Sum(nil), sig[:sha256.Size]) {
		return ErrSimAuthBadSig
	}
	return nil
}

// SigBytes implements BeaconAuth.
func (a *SimAuth) SigBytes() int { return a.sigBytes }
