package sts

import (
	"testing"

	"innercircle/internal/crypto/nsl"
	"innercircle/internal/geo"
	"innercircle/internal/link"
	"innercircle/internal/mac"
	"innercircle/internal/mobility"
	"innercircle/internal/radio"
	"innercircle/internal/sim"
)

// harness bundles the per-node stack for STS tests.
type harness struct {
	k    *sim.Kernel
	svcs []*Service
	lnks []*link.Service
	mobs []mobility.Model
}

// buildSTS assembles n nodes with the given positions and starts their STS.
func buildSTS(t *testing.T, positions []geo.Point, cfg Config, mobs []mobility.Model) *harness {
	t.Helper()
	k := sim.NewKernel()
	ch := radio.NewChannel(k, radio.Default80211())
	rng := sim.NewRNG(1)
	dir := nsl.DirectoryMap{}
	keys := make([]*nsl.KeyPair, len(positions))
	for i := range positions {
		kp, err := nsl.GenerateKeyPair(512, nil)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = kp
		dir[int64(i)] = kp.Pub
	}
	h := &harness{k: k}
	for i, p := range positions {
		var mob mobility.Model = mobility.Static(p)
		if mobs != nil {
			mob = mobs[i]
		}
		h.mobs = append(h.mobs, mob)
		m := mac.New(k, ch, mob, nil, rng.SplitN("mac", i), mac.Default80211())
		l := link.NewService(m)
		party := nsl.NewParty(int64(i), keys[i], dir, nil)
		svc, err := New(cfg, Deps{
			ID:    l.ID(),
			K:     k,
			Link:  l,
			RNG:   rng.SplitN("sts", i),
			Auth:  NewRSAAuth(keys[i], dir),
			Party: party,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := svc
		l.OnRecv(func(e link.Env) { s.HandleEnv(e) })
		h.svcs = append(h.svcs, svc)
		h.lnks = append(h.lnks, l)
	}
	for _, s := range h.svcs {
		s.Start()
	}
	return h
}

// buildSTSWithSimAuth is buildSTS with keyed-MAC beacon auth and no
// handshake (the sweep configuration).
func buildSTSWithSimAuth(t *testing.T, positions []geo.Point, cfg Config) *harness {
	t.Helper()
	k := sim.NewKernel()
	ch := radio.NewChannel(k, radio.Default80211())
	rng := sim.NewRNG(1)
	h := &harness{k: k}
	for i, p := range positions {
		m := mac.New(k, ch, mobility.Static(p), nil, rng.SplitN("mac", i), mac.Default80211())
		l := link.NewService(m)
		svc, err := New(cfg, Deps{
			ID:   l.ID(),
			K:    k,
			Link: l,
			RNG:  rng.SplitN("sts", i),
			Auth: NewSimAuth([]byte("net"), l.ID(), 64),
		})
		if err != nil {
			t.Fatal(err)
		}
		s := svc
		l.OnRecv(func(e link.Env) { s.HandleEnv(e) })
		h.svcs = append(h.svcs, svc)
		h.lnks = append(h.lnks, l)
	}
	for _, s := range h.svcs {
		s.Start()
	}
	return h
}

// line returns positions spaced 200 m apart on the x axis (range 250 m, so
// only adjacent nodes hear each other).
func line(n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * 200}
	}
	return pts
}

func TestNeighborDiscoveryLineTopology(t *testing.T) {
	h := buildSTS(t, line(4), DefaultConfig(), nil)
	if err := h.k.Run(5); err != nil {
		t.Fatal(err)
	}
	wantDeg := []int{1, 2, 2, 1}
	for i, s := range h.svcs {
		if got := len(s.Neighbors()); got != wantDeg[i] {
			t.Fatalf("node %d has %d neighbours %v, want %d", i, got, s.Neighbors(), wantDeg[i])
		}
	}
	if !h.svcs[1].IsNeighbor(0) || !h.svcs[1].IsNeighbor(2) || h.svcs[1].IsNeighbor(3) {
		t.Fatalf("node 1 neighbours = %v", h.svcs[1].Neighbors())
	}
}

func TestTwoHopView(t *testing.T) {
	h := buildSTS(t, line(4), DefaultConfig(), nil)
	if err := h.k.Run(6); err != nil {
		t.Fatal(err)
	}
	// Node 0 should know node 1's neighbours {0, 2}.
	if !h.svcs[0].IsLink(1, 2) {
		t.Fatalf("node 0 two-hop view of 1 = %v, want to contain 2", h.svcs[0].NeighborsOf(1))
	}
	if h.svcs[0].IsLink(1, 3) {
		t.Fatal("node 0 believes a 1->3 link that does not exist")
	}
	// Inner circle of node 1 as seen by node 0: {0, 2} minus self = {2}.
	circ := h.svcs[0].InnerCircleOf(1)
	if len(circ) != 1 || circ[0] != 2 {
		t.Fatalf("InnerCircleOf(1) = %v, want [2]", circ)
	}
}

func TestCompletenessLinkExpiry(t *testing.T) {
	// Node 1 moves out of range at t=10; its links must disappear within
	// ∆STS of its last beacon.
	cfg := DefaultConfig()
	mobs := []mobility.Model{
		mobility.Static(geo.Point{X: 0}),
		&stepMove{at: 10, before: geo.Point{X: 200}, after: geo.Point{X: 5000}},
	}
	h := buildSTS(t, []geo.Point{{X: 0}, {X: 200}}, cfg, mobs)
	if err := h.k.Run(8); err != nil {
		t.Fatal(err)
	}
	if !h.svcs[0].IsNeighbor(1) {
		t.Fatal("nodes never became neighbours")
	}
	if err := h.k.Run(10 + cfg.Delta + 1); err != nil {
		t.Fatal(err)
	}
	if h.svcs[0].IsNeighbor(1) {
		t.Fatal("broken link still reported after ∆STS (Completeness violated)")
	}
}

// stepMove jumps between two positions at a given time.
type stepMove struct {
	at            sim.Time
	before, after geo.Point
}

func (m *stepMove) Pos(t sim.Time) geo.Point {
	if t < m.at {
		return m.before
	}
	return m.after
}

func TestAccuracyFreshLinkAppears(t *testing.T) {
	// Node 1 starts far away and arrives at t=10; the link must appear
	// within roughly a beacon period + handshake.
	mobs := []mobility.Model{
		mobility.Static(geo.Point{X: 0}),
		&stepMove{at: 10, before: geo.Point{X: 5000}, after: geo.Point{X: 200}},
	}
	h := buildSTS(t, []geo.Point{{X: 0}, {X: 5000}}, DefaultConfig(), mobs)
	if err := h.k.Run(9.9); err != nil {
		t.Fatal(err)
	}
	if h.svcs[0].IsNeighbor(1) {
		t.Fatal("distant node reported as neighbour")
	}
	if err := h.k.Run(14); err != nil {
		t.Fatal(err)
	}
	if !h.svcs[0].IsNeighbor(1) || !h.svcs[1].IsNeighbor(0) {
		t.Fatal("fresh link not discovered (One-Hop Accuracy violated)")
	}
}

func TestUnauthenticatedModeSkipsHandshake(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Authenticate = false
	cfg.Handshake = false
	h := buildSTS(t, line(2), cfg, nil)
	if err := h.k.Run(3); err != nil {
		t.Fatal(err)
	}
	if !h.svcs[0].IsNeighbor(1) {
		t.Fatal("unauthenticated mode did not discover neighbour")
	}
	if h.svcs[0].Stats.Handshakes != 0 {
		t.Fatal("handshake ran in unauthenticated mode")
	}
}

func TestForgedBeaconRejected(t *testing.T) {
	h := buildSTS(t, line(2), DefaultConfig(), nil)
	if err := h.k.Run(3); err != nil {
		t.Fatal(err)
	}
	before := h.svcs[1].Stats.BeaconsRejected
	// Node 0 forges a beacon claiming to be node 5 (not in range, key
	// mismatch): signature check must reject it.
	forged := BeaconMsg{From: 5, Seq: 99, Neighbors: []link.NodeID{0, 1}, Sig: []byte{1, 2, 3}, Base: 28}
	_ = h.lnks[0].SendRaw(link.BroadcastID, forged)
	if err := h.k.Run(4); err != nil {
		t.Fatal(err)
	}
	if h.svcs[1].Stats.BeaconsRejected <= before {
		t.Fatal("forged beacon was not rejected")
	}
	if h.svcs[1].IsNeighbor(5) {
		t.Fatal("forged identity became a neighbour")
	}
}

func TestReplayedBeaconRejected(t *testing.T) {
	h := buildSTS(t, line(2), DefaultConfig(), nil)
	if err := h.k.Run(3); err != nil {
		t.Fatal(err)
	}
	// Capture node 0's genuine beacon and replay it. The sequence number
	// check must reject the replay.
	genuine := BeaconMsg{
		From:      0,
		Seq:       1, // already seen: first beacon had seq 1
		Neighbors: nil,
		Base:      28,
	}
	// Reconstruct a validly signed old beacon is impossible without the
	// key, so replay the exact first beacon: sign with node 0's key via
	// its own service (simulate capture by signing the same digest).
	// Instead, verify the seq check directly with an unsigned config.
	cfg := DefaultConfig()
	cfg.Authenticate = false
	cfg.Handshake = false
	h2 := buildSTS(t, line(2), cfg, nil)
	if err := h2.k.Run(3); err != nil {
		t.Fatal(err)
	}
	before := h2.svcs[1].Stats.BeaconsRejected
	_ = h2.lnks[0].SendRaw(link.BroadcastID, genuine)
	if err := h2.k.Run(4); err != nil {
		t.Fatal(err)
	}
	if h2.svcs[1].Stats.BeaconsRejected <= before {
		t.Fatal("replayed (stale-seq) beacon was not rejected")
	}
	_ = h
}

func TestOnChangeFires(t *testing.T) {
	h := buildSTS(t, line(2), DefaultConfig(), nil)
	changed := 0
	h.svcs[0].OnChange(func() { changed++ })
	if err := h.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if changed == 0 {
		t.Fatal("OnChange never fired despite neighbour discovery")
	}
}

func TestConfigValidation(t *testing.T) {
	deps := Deps{}
	if _, err := New(Config{Period: 0, Delta: 2}, deps); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := New(Config{Period: 1.5, Delta: 2}, deps); err == nil {
		t.Error("period >= delta/2 accepted")
	}
	if _, err := New(Config{Period: 0.5, Delta: 2, Authenticate: true}, deps); err == nil {
		t.Error("authenticate without Auth accepted")
	}
	if _, err := New(Config{Period: 0.5, Delta: 2, Handshake: true}, deps); err == nil {
		t.Error("handshake without authenticate accepted")
	}
}

func TestDenseCliqueAllPairs(t *testing.T) {
	// Five nodes in a 100 m square: a full clique.
	pts := []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 0, Y: 100}, {X: 100, Y: 100}, {X: 50, Y: 50}}
	h := buildSTS(t, pts, DefaultConfig(), nil)
	if err := h.k.Run(6); err != nil {
		t.Fatal(err)
	}
	for i, s := range h.svcs {
		if got := len(s.Neighbors()); got != 4 {
			t.Fatalf("node %d has %d neighbours, want 4 (clique)", i, got)
		}
	}
}

func TestTwoHopAccuracy(t *testing.T) {
	// §4.1's Two-Hop Accuracy: after a fresh link forms, it appears in
	// two-hop views within a beacon period or two. Node 2 arrives next to
	// node 1 at t=10; node 0 (two hops away) must learn of the 1-2 link.
	mobs := []mobility.Model{
		mobility.Static(geo.Point{X: 0}),
		mobility.Static(geo.Point{X: 200}),
		&stepMove{at: 10, before: geo.Point{X: 5000}, after: geo.Point{X: 400}},
	}
	h := buildSTS(t, []geo.Point{{X: 0}, {X: 200}, {X: 5000}}, DefaultConfig(), mobs)
	if err := h.k.Run(9); err != nil {
		t.Fatal(err)
	}
	if h.svcs[0].IsLink(1, 2) {
		t.Fatal("phantom two-hop link before node 2 arrived")
	}
	if err := h.k.Run(14); err != nil {
		t.Fatal(err)
	}
	if !h.svcs[0].IsLink(1, 2) {
		t.Fatalf("two-hop view of node 0 missing the fresh 1-2 link: %v", h.svcs[0].NeighborsOf(1))
	}
	if !h.svcs[0].IsTwoHop(2) {
		t.Fatal("IsTwoHop(2) false despite the link being visible")
	}
	if h.svcs[0].TwoHopCount() != 1 {
		t.Fatalf("TwoHopCount = %d, want 1", h.svcs[0].TwoHopCount())
	}
}
