package sts

import (
	"testing"
)

func TestSimAuthSignVerify(t *testing.T) {
	seed := []byte("network-seed")
	a := NewSimAuth(seed, 3, 64)
	msg := []byte("beacon contents")
	sig := a.Sign(msg)
	if len(sig) != 64 {
		t.Fatalf("sig length = %d, want padded 64", len(sig))
	}
	if a.SigBytes() != 64 {
		t.Fatalf("SigBytes = %d", a.SigBytes())
	}
	// Any node's SimAuth can verify node 3's signature.
	b := NewSimAuth(seed, 7, 64)
	if err := b.Verify(3, msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestSimAuthRejectsForgery(t *testing.T) {
	seed := []byte("network-seed")
	a := NewSimAuth(seed, 3, 64)
	b := NewSimAuth(seed, 7, 64)
	msg := []byte("beacon")
	sig := a.Sign(msg)
	// Wrong claimed identity.
	if err := b.Verify(5, msg, sig); err == nil {
		t.Fatal("signature verified under wrong identity")
	}
	// Tampered message.
	if err := b.Verify(3, []byte("other"), sig); err == nil {
		t.Fatal("signature verified for tampered message")
	}
	// Truncated signature.
	if err := b.Verify(3, msg, sig[:8]); err == nil {
		t.Fatal("short signature accepted")
	}
}

func TestSimAuthMinimumSize(t *testing.T) {
	a := NewSimAuth([]byte("s"), 1, 4)
	if a.SigBytes() < 32 {
		t.Fatalf("SigBytes = %d, want >= 32 (HMAC must fit)", a.SigBytes())
	}
}

func TestRSAAndSimAuthInteropWithSTS(t *testing.T) {
	// SimAuth-configured networks behave like RSA ones at the protocol
	// level: discovery in a 3-clique.
	cfg := DefaultConfig()
	cfg.Handshake = false
	h := buildSTSWithSimAuth(t, line(2), cfg)
	if err := h.k.Run(4); err != nil {
		t.Fatal(err)
	}
	if !h.svcs[0].IsNeighbor(1) || !h.svcs[1].IsNeighbor(0) {
		t.Fatal("SimAuth network did not discover neighbours")
	}
	if h.svcs[0].Stats.BeaconsRejected != 0 {
		t.Fatalf("rejected %d beacons, want 0", h.svcs[0].Stats.BeaconsRejected)
	}
}
