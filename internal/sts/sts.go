// Package sts implements the Secure Topology Service of §4.1: periodic
// authenticated beacons discover bidirectional links up to two hops away
// and give each node a local topology view, so it can determine which
// inner-circles it should participate in.
//
// Authentication has two parts, per the paper: a Needham–Schroeder–Lowe
// handshake (package nsl) authenticates a newly discovered neighbour link,
// and every beacon is signed by its sender, so neighbour lists cannot be
// forged on behalf of other nodes. Links without a beacon in the last
// ∆STS are excluded (the Completeness property); fresh one- and two-hop
// links appear within a beacon period (the Accuracy properties).
package sts

import (
	"encoding/binary"
	"fmt"
	"sort"

	"innercircle/internal/crypto/nsl"
	"innercircle/internal/link"
	"innercircle/internal/sim"
)

// Config parameterizes the service.
type Config struct {
	// Period is the beacon period τ; the paper requires τ < ∆STS/2.
	Period sim.Duration `json:"period"`
	// Delta is ∆STS: links with no beacon for Delta are excluded.
	Delta sim.Duration `json:"delta"`
	// Authenticate enables beacon signatures. The "No IC" baselines run
	// with it off (plain hello beacons).
	Authenticate bool `json:"authenticate"`
	// Handshake additionally runs the NSL link-authentication handshake
	// before a neighbour is trusted. Large sweeps may disable it (beacons
	// remain signed); see DESIGN.md.
	Handshake bool `json:"handshake"`
	// BeaconBaseBytes is the fixed part of the beacon size.
	BeaconBaseBytes int `json:"beacon_base_bytes"`
}

// DefaultConfig returns the ad hoc scenario parameters (∆STS = 2 s).
func DefaultConfig() Config {
	return Config{Period: 0.9, Delta: 2, Authenticate: true, Handshake: true, BeaconBaseBytes: 28}
}

// Deps are the node-local services the STS builds on.
type Deps struct {
	ID   link.NodeID
	K    *sim.Kernel
	Link *link.Service
	RNG  *sim.RNG
	// Auth signs/verifies beacons; required when Config.Authenticate is
	// set.
	Auth BeaconAuth
	// Party runs the NSL handshake; required when Config.Handshake is set.
	Party *nsl.Party
}

// BeaconMsg is the periodic STS broadcast: the sender's identity and its
// current (authenticated, timely) neighbour list, signed by the sender.
type BeaconMsg struct {
	From      link.NodeID
	Seq       uint64
	Neighbors []link.NodeID
	Sig       []byte
	Base      int
}

// Size implements link.Message.
func (b BeaconMsg) Size() int { return b.Base + 8*len(b.Neighbors) + len(b.Sig) }

// HandshakeMsg carries one NSL protocol message between two nodes.
type HandshakeMsg struct {
	Phase  int // 1, 2 or 3
	Cipher []byte
}

// Size implements link.Message.
func (h HandshakeMsg) Size() int { return 4 + len(h.Cipher) }

// neighEntry is what this node knows about one neighbour.
type neighEntry struct {
	lastBeacon    sim.Time
	lastSeq       uint64
	authenticated bool
	theirNeigh    []link.NodeID
	theirNeighAt  sim.Time
	handshakeSent bool
}

// Stats counts STS activity.
type Stats struct {
	BeaconsSent     uint64
	BeaconsReceived uint64
	BeaconsRejected uint64 // bad signature or stale sequence
	Handshakes      uint64 // completed link authentications
}

// Service is one node's secure topology service. Not safe for concurrent
// use.
type Service struct {
	cfg     Config
	deps    Deps
	ticker  *sim.Ticker
	running bool
	seq     uint64
	neigh   map[link.NodeID]*neighEntry

	onChange func()

	// Stats exposes counters to the experiment harness.
	Stats Stats
}

// New creates a stopped service; call Start to begin beaconing.
func New(cfg Config, deps Deps) (*Service, error) {
	if cfg.Period <= 0 || cfg.Delta <= 0 {
		return nil, fmt.Errorf("sts: period and delta must be positive")
	}
	if cfg.Period >= cfg.Delta/2 {
		return nil, fmt.Errorf("sts: period %v must be < delta/2 = %v", cfg.Period, cfg.Delta/2)
	}
	if cfg.Authenticate && deps.Auth == nil {
		return nil, fmt.Errorf("sts: authentication requires Auth")
	}
	if cfg.Handshake && (!cfg.Authenticate || deps.Party == nil) {
		return nil, fmt.Errorf("sts: handshake requires Authenticate and Party")
	}
	return &Service{cfg: cfg, deps: deps, neigh: make(map[link.NodeID]*neighEntry)}, nil
}

// OnChange registers a callback invoked whenever the neighbour set may have
// changed.
func (s *Service) OnChange(fn func()) { s.onChange = fn }

// Start begins periodic beaconing; the first beacon goes out immediately
// (with a small jitter) so cold-started networks converge within one
// period.
func (s *Service) Start() {
	s.running = true
	s.sendBeacon()
	s.ticker = sim.NewTicker(s.deps.K, s.cfg.Period, func() sim.Duration {
		return s.deps.RNG.Jitter(s.cfg.Period / 10)
	}, s.sendBeacon)
}

// Stop halts beaconing.
func (s *Service) Stop() {
	s.running = false
	if s.ticker != nil {
		s.ticker.Stop()
	}
}

// Announce sends one immediate out-of-schedule beacon. Membership epoch
// transitions call it so the surviving circle re-announces its liveness
// (and freshly joined nodes are heard) without waiting out a beacon
// period. A no-op on a stopped service: a departed node must not beacon.
func (s *Service) Announce() {
	if s.running {
		s.sendBeacon()
	}
}

func (s *Service) sendBeacon() {
	s.seq++
	b := BeaconMsg{
		From:      s.deps.ID,
		Seq:       s.seq,
		Neighbors: s.Neighbors(),
		Base:      s.cfg.BeaconBaseBytes,
	}
	if s.cfg.Authenticate {
		b.Sig = s.deps.Auth.Sign(beaconDigest(b))
	}
	s.Stats.BeaconsSent++
	_ = s.deps.Link.SendRaw(link.BroadcastID, b)
}

// beaconDigest returns the canonical bytes covered by the beacon signature.
func beaconDigest(b BeaconMsg) []byte {
	buf := make([]byte, 0, 16+8*len(b.Neighbors))
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(b.From))
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], b.Seq)
	buf = append(buf, tmp[:]...)
	for _, n := range b.Neighbors {
		binary.BigEndian.PutUint64(tmp[:], uint64(n))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// HandleEnv processes STS traffic; it returns true when the envelope was an
// STS message (consumed), false otherwise.
func (s *Service) HandleEnv(e link.Env) bool {
	switch m := e.Msg.(type) {
	case BeaconMsg:
		s.onBeacon(e.From, m)
		return true
	case HandshakeMsg:
		s.onHandshake(e.From, m)
		return true
	default:
		return false
	}
}

func (s *Service) onBeacon(from link.NodeID, b BeaconMsg) {
	if from != b.From {
		s.Stats.BeaconsRejected++
		return // spoofed source
	}
	if s.cfg.Authenticate {
		if err := s.deps.Auth.Verify(b.From, beaconDigest(b), b.Sig); err != nil {
			s.Stats.BeaconsRejected++
			return
		}
	}
	now := s.deps.K.Now()
	ent, known := s.neigh[b.From]
	if !known {
		ent = &neighEntry{}
		s.neigh[b.From] = ent
	}
	if known && b.Seq <= ent.lastSeq {
		s.Stats.BeaconsRejected++
		return // replayed or reordered beacon
	}
	s.Stats.BeaconsReceived++
	ent.lastBeacon = now
	ent.lastSeq = b.Seq
	ent.theirNeigh = append([]link.NodeID(nil), b.Neighbors...)
	ent.theirNeighAt = now
	if !s.cfg.Handshake {
		ent.authenticated = true
	} else if !ent.authenticated && !ent.handshakeSent && s.deps.ID < b.From {
		// Deterministic initiator selection: lower ID initiates.
		m1, err := s.deps.Party.Initiate(int64(b.From))
		if err == nil {
			ent.handshakeSent = true
			_ = s.deps.Link.SendRaw(b.From, HandshakeMsg{Phase: 1, Cipher: m1.Cipher})
		}
	}
	s.changed()
}

func (s *Service) onHandshake(from link.NodeID, h HandshakeMsg) {
	if !s.cfg.Handshake {
		return
	}
	switch h.Phase {
	case 1:
		m2, err := s.deps.Party.OnMsg1(nsl.Msg1{To: int64(s.deps.ID), Cipher: h.Cipher})
		if err != nil {
			return
		}
		_ = s.deps.Link.SendRaw(from, HandshakeMsg{Phase: 2, Cipher: m2.Cipher})
	case 2:
		m3, _, err := s.deps.Party.OnMsg2(int64(from), nsl.Msg2{To: int64(s.deps.ID), Cipher: h.Cipher})
		if err != nil {
			return
		}
		_ = s.deps.Link.SendRaw(from, HandshakeMsg{Phase: 3, Cipher: m3.Cipher})
		s.markAuthenticated(from)
	case 3:
		if _, err := s.deps.Party.OnMsg3(int64(from), nsl.Msg3{To: int64(s.deps.ID), Cipher: h.Cipher}); err != nil {
			return
		}
		s.markAuthenticated(from)
	}
}

func (s *Service) markAuthenticated(id link.NodeID) {
	ent, ok := s.neigh[id]
	if !ok {
		ent = &neighEntry{}
		s.neigh[id] = ent
	}
	if !ent.authenticated {
		ent.authenticated = true
		s.Stats.Handshakes++
		s.changed()
	}
}

func (s *Service) changed() {
	if s.onChange != nil {
		s.onChange()
	}
}

// timely reports whether the entry's last beacon is within ∆STS.
func (s *Service) timely(ent *neighEntry) bool {
	return ent.lastBeacon > 0 && s.deps.K.Now()-ent.lastBeacon <= s.cfg.Delta
}

// IsNeighbor reports whether q is currently an authenticated, timely
// one-hop neighbour.
func (s *Service) IsNeighbor(q link.NodeID) bool {
	ent, ok := s.neigh[q]
	return ok && ent.authenticated && s.timely(ent)
}

// Neighbors returns the current one-hop view, sorted by ID.
func (s *Service) Neighbors() []link.NodeID {
	out := make([]link.NodeID, 0, len(s.neigh))
	for id, ent := range s.neigh {
		if ent.authenticated && s.timely(ent) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NeighborsOf returns the most recently reported neighbour list of
// one-hop neighbour p (the two-hop view), or nil if p is not a timely
// neighbour.
func (s *Service) NeighborsOf(p link.NodeID) []link.NodeID {
	ent, ok := s.neigh[p]
	if !ok || !ent.authenticated || !s.timely(ent) {
		return nil
	}
	return append([]link.NodeID(nil), ent.theirNeigh...)
}

// IsLink reports whether the two-hop view contains the directed link
// p -> q: p is a timely neighbour and p's last beacon listed q.
func (s *Service) IsLink(p, q link.NodeID) bool {
	for _, n := range s.NeighborsOf(p) {
		if n == q {
			return true
		}
	}
	return false
}

// IsTwoHop reports whether q is reachable through some timely neighbour
// but is not itself a neighbour (nor this node).
func (s *Service) IsTwoHop(q link.NodeID) bool {
	if q == s.deps.ID || s.IsNeighbor(q) {
		return false
	}
	for _, p := range s.Neighbors() {
		if s.IsLink(p, q) {
			return true
		}
	}
	return false
}

// TwoHopCount returns the number of distinct two-hop nodes in the current
// view.
func (s *Service) TwoHopCount() int {
	seen := make(map[link.NodeID]bool)
	for _, p := range s.Neighbors() {
		for _, q := range s.NeighborsOf(p) {
			if q == s.deps.ID || s.IsNeighbor(q) {
				continue
			}
			seen[q] = true
		}
	}
	return len(seen)
}

// InnerCircleOf returns the nodes this node believes form center's
// inner circle (center's neighbours per the two-hop view), excluding this
// node itself. When center is this node, its own neighbour list is
// returned.
func (s *Service) InnerCircleOf(center link.NodeID) []link.NodeID {
	if center == s.deps.ID {
		return s.Neighbors()
	}
	var out []link.NodeID
	for _, n := range s.NeighborsOf(center) {
		if n != s.deps.ID {
			out = append(out, n)
		}
	}
	return out
}
