// Package fusion implements the paper's fault-tolerant value-fusion
// machinery (§4.3): the proposed Fault-Tolerant Cluster algorithm (Fig. 4),
// the classic fault-tolerant mean baseline it is compared against (Dolev et
// al., approximate agreement), the trilateration step of the sensor
// localization pipeline (§5.2), and the worst-case error analysis of §4.3.
package fusion

import (
	"errors"
	"fmt"
	"math"
)

// Vec is an n-dimensional observation. The sensor scenario fuses scalar
// energies (dim 1), timestamps (dim 1), and positions (dim 2).
type Vec []float64

// ErrDimMismatch is returned when observations have inconsistent dimension.
var ErrDimMismatch = errors.New("fusion: dimension mismatch")

// V1 returns a 1-dimensional vector.
func V1(x float64) Vec { return Vec{x} }

// V2 returns a 2-dimensional vector.
func V2(x, y float64) Vec { return Vec{x, y} }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 {
	var sum float64
	for i := range v {
		d := v[i] - w[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// add accumulates w into v in place.
func (v Vec) add(w Vec) {
	for i := range v {
		v[i] += w[i]
	}
}

// sub removes w from v in place.
func (v Vec) sub(w Vec) {
	for i := range v {
		v[i] -= w[i]
	}
}

// scale multiplies v by s in place.
func (v Vec) scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Centroid returns the arithmetic mean of the observations.
func Centroid(points []Vec) (Vec, error) {
	if len(points) == 0 {
		return nil, errors.New("fusion: centroid of empty set")
	}
	dim := len(points[0])
	sum := make(Vec, dim)
	for _, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: %d vs %d", ErrDimMismatch, len(p), dim)
		}
		sum.add(p)
	}
	sum.scale(1 / float64(len(points)))
	return sum, nil
}
