package fusion

import (
	"errors"
	"testing"
	"testing/quick"

	"innercircle/internal/geo"
	"innercircle/internal/sim"
)

func TestTrilaterateExactRecovery(t *testing.T) {
	target := geo.Point{X: 37, Y: 91}
	a1 := geo.Point{X: 0, Y: 0}
	a2 := geo.Point{X: 100, Y: 0}
	a3 := geo.Point{X: 0, Y: 100}
	got, err := Trilaterate(a1, a2, a3, target.Dist(a1), target.Dist(a2), target.Dist(a3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(target) > 1e-6 {
		t.Fatalf("Trilaterate = %v, want %v", got, target)
	}
}

func TestTrilaterateCollinearAnchors(t *testing.T) {
	a1 := geo.Point{X: 0, Y: 0}
	a2 := geo.Point{X: 50, Y: 0}
	a3 := geo.Point{X: 100, Y: 0}
	if _, err := Trilaterate(a1, a2, a3, 10, 10, 10); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("collinear anchors err = %v, want ErrDegenerate", err)
	}
}

func TestTrilaterateNegativeDistance(t *testing.T) {
	a := geo.Point{}
	if _, err := Trilaterate(a, geo.Point{X: 1}, geo.Point{Y: 1}, -1, 1, 1); err == nil {
		t.Fatal("negative distance accepted")
	}
}

// Property: exact distances from non-collinear anchors recover the target.
func TestPropertyTrilaterateRecovery(t *testing.T) {
	rng := sim.NewRNG(3)
	f := func(tx, ty int16) bool {
		target := geo.Point{X: float64(tx % 200), Y: float64(ty % 200)}
		a1 := geo.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)}
		a2 := geo.Point{X: a1.X + rng.Uniform(20, 60), Y: a1.Y + rng.Uniform(-10, 10)}
		a3 := geo.Point{X: a1.X + rng.Uniform(-10, 10), Y: a1.Y + rng.Uniform(20, 60)}
		got, err := Trilaterate(a1, a2, a3, target.Dist(a1), target.Dist(a2), target.Dist(a3))
		if errors.Is(err, ErrDegenerate) {
			return true // randomly near-collinear draw; acceptable
		}
		if err != nil {
			return false
		}
		return got.Dist(target) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTrilaterateAll(t *testing.T) {
	target := geo.Point{X: 25, Y: 25}
	anchors := []geo.Point{
		{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 50}, {X: 50, Y: 50},
	}
	dists := make([]float64, len(anchors))
	for i, a := range anchors {
		dists[i] = target.Dist(a)
	}
	ests := TrilaterateAll(anchors, dists, 0)
	if len(ests) != 4 { // C(4,3) = 4 triples, all non-degenerate
		t.Fatalf("got %d estimates, want 4", len(ests))
	}
	for _, e := range ests {
		if e.Dist(target) > 1e-6 {
			t.Fatalf("estimate %v far from target %v", e, target)
		}
	}
}

func TestTrilaterateAllCap(t *testing.T) {
	anchors := make([]geo.Point, 10)
	dists := make([]float64, 10)
	target := geo.Point{X: 5, Y: 5}
	rng := sim.NewRNG(8)
	for i := range anchors {
		anchors[i] = geo.Point{X: rng.Uniform(0, 100), Y: rng.Uniform(0, 100)}
		dists[i] = target.Dist(anchors[i])
	}
	capped := TrilaterateAll(anchors, dists, 7)
	if len(capped) > 7 {
		t.Fatalf("cap violated: %d estimates", len(capped))
	}
}

func TestTrilaterateAllBadInput(t *testing.T) {
	if got := TrilaterateAll(make([]geo.Point, 2), make([]float64, 2), 0); got != nil {
		t.Fatal("fewer than 3 anchors should return nil")
	}
	if got := TrilaterateAll(make([]geo.Point, 3), make([]float64, 2), 0); got != nil {
		t.Fatal("mismatched lengths should return nil")
	}
}

// TestNoisyPipelineWithFTCluster exercises the full §5.2 local
// localization pipeline: noisy distances -> all-triple trilateration ->
// FT-cluster filtering, with one anchor reporting a wildly wrong position
// (positioning fault).
func TestNoisyPipelineWithFTCluster(t *testing.T) {
	rng := sim.NewRNG(21)
	target := geo.Point{X: 60, Y: 40}
	anchors := []geo.Point{
		{X: 40, Y: 40}, {X: 80, Y: 40}, {X: 60, Y: 60},
		{X: 50, Y: 20}, {X: 70, Y: 20},
	}
	dists := make([]float64, len(anchors))
	for i, a := range anchors {
		dists[i] = target.Dist(a) * (1 + 0.02*rng.NormFloat64())
	}
	// Positioning fault: anchor 4 thinks it is somewhere random.
	faulty := append([]geo.Point(nil), anchors...)
	faulty[4] = geo.Point{X: 190, Y: 5}
	ests := TrilaterateAll(faulty, dists, 0)
	if len(ests) < 5 {
		t.Fatalf("only %d estimates", len(ests))
	}
	obs := make([]Vec, len(ests))
	for i, e := range ests {
		obs[i] = V2(e.X, e.Y)
	}
	res, err := FTCluster(obs, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := geo.Point{X: res.Estimate[0], Y: res.Estimate[1]}
	if got.Dist(target) > 8 {
		t.Fatalf("fused estimate %v too far from target %v (err %.1f m)", got, target, got.Dist(target))
	}
}
