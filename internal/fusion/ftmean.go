package fusion

import (
	"errors"
	"fmt"
	"sort"
)

// FTMean implements the fault-tolerant mean of Dolev et al. (approximate
// agreement, JACM 1986), the baseline §4.3 compares the cluster algorithm
// against: per coordinate, discard the f smallest and f largest
// observations and average the rest. It always discards 2f observations
// even when none are faulty — the accuracy limitation that motivates the
// FT-cluster algorithm.
func FTMean(points []Vec, f int) (Vec, error) {
	if len(points) == 0 {
		return nil, errors.New("fusion: no observations")
	}
	if f < 0 {
		return nil, fmt.Errorf("fusion: negative fault bound %d", f)
	}
	if len(points) <= 2*f {
		return nil, fmt.Errorf("fusion: need > 2f observations (have %d, f=%d)", len(points), f)
	}
	dim := len(points[0])
	out := make(Vec, dim)
	col := make([]float64, len(points))
	for d := 0; d < dim; d++ {
		for i, p := range points {
			if len(p) != dim {
				return nil, fmt.Errorf("%w: point %d", ErrDimMismatch, i)
			}
			col[i] = p[d]
		}
		sort.Float64s(col)
		trimmed := col[f : len(col)-f]
		var sum float64
		for _, v := range trimmed {
			sum += v
		}
		out[d] = sum / float64(len(trimmed))
	}
	return out, nil
}
