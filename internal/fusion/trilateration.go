package fusion

import (
	"errors"
	"math"

	"innercircle/internal/geo"
)

// ErrDegenerate is returned when the three anchors are (nearly) collinear,
// which makes the trilateration system singular.
var ErrDegenerate = errors.New("fusion: degenerate anchor geometry")

// Trilaterate estimates the position of a target from three anchor
// positions and the measured distances to the target, by linearizing the
// three circle equations (subtracting the first from the other two) and
// solving the resulting 2×2 system. This is step (2) of the paper's local
// localization pipeline (§5.2): each inner-circle triple (u_i, d_i)
// produces one candidate target estimate, which the FT-cluster algorithm
// then filters.
func Trilaterate(a1, a2, a3 geo.Point, d1, d2, d3 float64) (geo.Point, error) {
	if d1 < 0 || d2 < 0 || d3 < 0 {
		return geo.Point{}, errors.New("fusion: negative distance")
	}
	// ‖x−a1‖² = d1², ‖x−a2‖² = d2², ‖x−a3‖² = d3².
	// (2) − (1):  2(a1−a2)·x = d2² − d1² + ‖a1‖² − ‖a2‖²
	// (3) − (1):  2(a1−a3)·x = d3² − d1² + ‖a1‖² − ‖a3‖²
	ax := 2 * (a1.X - a2.X)
	ay := 2 * (a1.Y - a2.Y)
	b1 := d2*d2 - d1*d1 + a1.X*a1.X + a1.Y*a1.Y - a2.X*a2.X - a2.Y*a2.Y
	cx := 2 * (a1.X - a3.X)
	cy := 2 * (a1.Y - a3.Y)
	b2 := d3*d3 - d1*d1 + a1.X*a1.X + a1.Y*a1.Y - a3.X*a3.X - a3.Y*a3.Y

	det := ax*cy - ay*cx
	// Scale-aware singularity test: compare the determinant against the
	// magnitude of the coefficients.
	norm := math.Max(math.Abs(ax)+math.Abs(ay), math.Abs(cx)+math.Abs(cy))
	if math.Abs(det) <= 1e-9*norm*norm+1e-12 {
		return geo.Point{}, ErrDegenerate
	}
	return geo.Point{
		X: (b1*cy - b2*ay) / det,
		Y: (ax*b2 - cx*b1) / det,
	}, nil
}

// TrilaterateAll enumerates anchor triples and returns every candidate
// estimate that has non-degenerate geometry. anchors and dists must have
// equal length >= 3. maxTriples caps the enumeration (0 = no cap); the
// paper filters "3L estimates", i.e. a small multiple of the circle size.
func TrilaterateAll(anchors []geo.Point, dists []float64, maxTriples int) []geo.Point {
	n := len(anchors)
	if len(dists) != n || n < 3 {
		return nil
	}
	var out []geo.Point
	count := 0
	for i := 0; i < n-2; i++ {
		for j := i + 1; j < n-1; j++ {
			for k := j + 1; k < n; k++ {
				if maxTriples > 0 && count >= maxTriples {
					return out
				}
				count++
				p, err := Trilaterate(anchors[i], anchors[j], anchors[k], dists[i], dists[j], dists[k])
				if err != nil {
					continue
				}
				out = append(out, p)
			}
		}
	}
	return out
}
