package fusion

import (
	"math"
	"testing"
	"testing/quick"

	"innercircle/internal/sim"
)

func TestFTMeanKnownValues(t *testing.T) {
	points := []Vec{V1(1), V1(2), V1(3), V1(4), V1(100)}
	got, err := FTMean(points, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Discard min (1) and max (100): mean(2,3,4) = 3.
	if math.Abs(got[0]-3) > 1e-9 {
		t.Fatalf("FTMean = %v, want 3", got[0])
	}
}

func TestFTMeanZeroFaultsIsMean(t *testing.T) {
	points := []Vec{V1(1), V1(2), V1(3)}
	got, err := FTMean(points, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-2) > 1e-9 {
		t.Fatalf("FTMean(f=0) = %v, want plain mean 2", got[0])
	}
}

func TestFTMeanVectorPerCoordinate(t *testing.T) {
	points := []Vec{V2(0, 10), V2(1, 20), V2(2, 30), V2(100, -100)}
	got, err := FTMean(points, 1)
	if err != nil {
		t.Fatal(err)
	}
	// x: drop 0 and 100 -> mean(1,2) = 1.5; y: drop -100 and 30 -> mean(10,20) = 15.
	if math.Abs(got[0]-1.5) > 1e-9 || math.Abs(got[1]-15) > 1e-9 {
		t.Fatalf("FTMean = %v, want (1.5, 15)", got)
	}
}

func TestFTMeanErrors(t *testing.T) {
	if _, err := FTMean(nil, 0); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := FTMean([]Vec{V1(1), V1(2)}, 1); err == nil {
		t.Error("n <= 2f accepted")
	}
	if _, err := FTMean([]Vec{V1(1), V1(2), V1(3)}, -1); err == nil {
		t.Error("negative f accepted")
	}
	if _, err := FTMean([]Vec{V1(1), V2(1, 2), V1(3)}, 0); err == nil {
		t.Error("mixed dimensions accepted")
	}
}

// Property: the FT-mean is bounded by the range of the correct values when
// at most f values are faulty (validity of approximate agreement).
func TestPropertyFTMeanValidity(t *testing.T) {
	rng := sim.NewRNG(17)
	f := func(nRaw, fRaw uint8) bool {
		numF := int(fRaw % 3)
		n := 2*numF + 1 + int(nRaw%8)
		correct := n - numF
		lo, hi := math.Inf(1), math.Inf(-1)
		points := make([]Vec, 0, n)
		for i := 0; i < correct; i++ {
			v := rng.Uniform(10, 20)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
			points = append(points, V1(v))
		}
		for i := 0; i < numF; i++ {
			points = append(points, V1(rng.Uniform(-1e6, 1e6)))
		}
		got, err := FTMean(points, numF)
		if err != nil {
			return false
		}
		return got[0] >= lo-1e-9 && got[0] <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestClusterBeatsMeanAtZeroFaults demonstrates the paper's motivation for
// the FT-cluster algorithm: with no faults, FT-mean still discards 2f
// observations and is (in expectation) less accurate than the FT-cluster
// estimate, which keeps everything.
func TestClusterBeatsMeanAtZeroFaults(t *testing.T) {
	rng := sim.NewRNG(99)
	const trials = 300
	const n, f = 10, 3
	var errCluster, errMean float64
	for trial := 0; trial < trials; trial++ {
		theta := 5.0
		points := make([]Vec, n)
		for i := range points {
			points[i] = V1(theta + rng.NormFloat64())
		}
		res, err := FTCluster(points, 4) // eta = 4 sigma
		if err != nil {
			t.Fatal(err)
		}
		m, err := FTMean(points, f)
		if err != nil {
			t.Fatal(err)
		}
		errCluster += math.Abs(res.Estimate[0] - theta)
		errMean += math.Abs(m[0] - theta)
	}
	if errCluster >= errMean {
		t.Fatalf("mean |err|: cluster %v >= ftmean %v; cluster should be more accurate with no faults",
			errCluster/trials, errMean/trials)
	}
}
