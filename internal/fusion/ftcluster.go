package fusion

import (
	"errors"
	"fmt"
)

// FTClusterResult reports the outcome of the fault-tolerant cluster
// algorithm.
type FTClusterResult struct {
	// Estimate is Θ̂_FT, the centroid of the fault-tolerant cluster.
	Estimate Vec
	// Kept holds the indices (into the input slice) of the observations in
	// the fault-tolerant cluster C*_P.
	Kept []int
	// Removed holds the indices excluded as likely faulty/malicious, in
	// removal order.
	Removed []int
}

// FTCluster runs the paper's Fault-Tolerant Cluster algorithm (Fig. 4).
// Starting from all L observations, it repeatedly computes each point's
// leave-one-out distance d_i = ‖p_i − centroid(C \ p_i)‖ and removes the
// farthest point whose distance exceeds the threshold eta, stopping when no
// point exceeds eta or only two points remain (the |C| > 2 guard of the
// pseudocode). The estimate is the centroid of the surviving cluster.
//
// eta must be chosen so that two correct observations are farther apart
// than eta only with negligible probability (the paper sets it from the
// noise standard deviation).
func FTCluster(points []Vec, eta float64) (FTClusterResult, error) {
	if len(points) == 0 {
		return FTClusterResult{}, errors.New("fusion: no observations")
	}
	if eta < 0 {
		return FTClusterResult{}, fmt.Errorf("fusion: negative threshold %v", eta)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return FTClusterResult{}, fmt.Errorf("%w: point %d has dim %d, want %d", ErrDimMismatch, i, len(p), dim)
		}
	}

	kept := make([]int, len(points))
	for i := range kept {
		kept[i] = i
	}
	var removed []int

	// Maintain the running coordinate sum so each leave-one-out centroid
	// is O(dim) instead of O(n·dim).
	sum := make(Vec, dim)
	for _, p := range points {
		sum.add(p)
	}

	change := len(kept) > 2
	for change {
		change = false
		// Find the point with maximal leave-one-out distance.
		worst := -1
		var worstDist float64
		for pos, idx := range kept {
			p := points[idx]
			loo := sum.Clone()
			loo.sub(p)
			loo.scale(1 / float64(len(kept)-1))
			d := p.Dist(loo)
			if worst == -1 || d > worstDist {
				worst, worstDist = pos, d
			}
		}
		if worst >= 0 && worstDist > eta {
			idx := kept[worst]
			sum.sub(points[idx])
			kept = append(kept[:worst], kept[worst+1:]...)
			removed = append(removed, idx)
			change = len(kept) > 2
		}
	}

	est := sum.Clone()
	est.scale(1 / float64(len(kept)))
	return FTClusterResult{Estimate: est, Kept: kept, Removed: removed}, nil
}

// WorstCaseRemovalSeparation returns the minimum ratio δF/δC that
// guarantees FTCluster removes only faulty points, per §4.3 result (1):
// with F faulty among N total, only faulty points are removed when
// δF > δC / (1 − 2F/N), where δC and δF are the maximum distances of
// correct and faulty points from the correct-only centroid.
func WorstCaseRemovalSeparation(f, n int) float64 {
	if n <= 0 || 2*f >= n {
		return 0 // the guarantee does not apply (F >= N/2)
	}
	return 1 / (1 - 2*float64(f)/float64(n))
}

// WorstCaseError returns E*, the maximum estimation error adversarial
// observations can add (per §4.3 result (2)): all F faulty points cluster
// at distance δF* = δC/(1−2F/N) from the correct centroid, contributing
// E* = (F/N)·δF*.
func WorstCaseError(f, n int, deltaC float64) float64 {
	if n <= 0 || 2*f >= n {
		return 0
	}
	deltaFStar := deltaC / (1 - 2*float64(f)/float64(n))
	return float64(f) / float64(n) * deltaFStar
}
