package fusion

import (
	"math"
	"testing"
	"testing/quick"

	"innercircle/internal/sim"
)

func TestFig5OutlierRemoved(t *testing.T) {
	// The Fig. 5 scenario: three observations near the true value Θ ≈ (1,1)
	// and one stuck-at-high outlier p4 ≈ (4,4.5) from a damaged sensor.
	points := []Vec{
		V2(0.4, 1.6), // p1
		V2(0.3, 0.2), // p2
		V2(1.9, 0.6), // p3
		V2(4.0, 4.5), // p4, faulty
	}
	res, err := FTCluster(points, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 || res.Removed[0] != 3 {
		t.Fatalf("Removed = %v, want [3] (the stuck-at-high point)", res.Removed)
	}
	want, err := Centroid(points[:3])
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Dist(want) > 1e-9 {
		t.Fatalf("Estimate = %v, want centroid of correct points %v", res.Estimate, want)
	}
	// The naive all-points centroid is much worse.
	naive, err := Centroid(points)
	if err != nil {
		t.Fatal(err)
	}
	theta := V2(1, 1)
	if res.Estimate.Dist(theta) >= naive.Dist(theta) {
		t.Fatal("FT-cluster estimate is not better than the naive centroid")
	}
}

func TestNoRemovalWhenAllCorrect(t *testing.T) {
	points := []Vec{V2(1, 1), V2(1.2, 0.9), V2(0.8, 1.1), V2(1.05, 1.02)}
	res, err := FTCluster(points, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 0 {
		t.Fatalf("Removed = %v, want none (all points within eta)", res.Removed)
	}
	if len(res.Kept) != 4 {
		t.Fatalf("Kept = %v, want all 4", res.Kept)
	}
}

func TestStopsAtTwoPoints(t *testing.T) {
	// Pathological input: points spread far apart with a tiny threshold.
	// The |C| > 2 guard must keep at least two points.
	points := []Vec{V1(0), V1(100), V1(200), V1(300)}
	res, err := FTCluster(points, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) < 2 {
		t.Fatalf("Kept %d points, the |C|>2 guard requires >= 2", len(res.Kept))
	}
}

func TestSinglePointAndPair(t *testing.T) {
	res, err := FTCluster([]Vec{V1(5)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate[0] != 5 || len(res.Kept) != 1 {
		t.Fatalf("single point: %+v", res)
	}
	// Two points: guard prevents any removal regardless of distance.
	res, err = FTCluster([]Vec{V1(0), V1(1000)}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 0 {
		t.Fatalf("pair: removed %v, want none", res.Removed)
	}
	if math.Abs(res.Estimate[0]-500) > 1e-9 {
		t.Fatalf("pair estimate = %v, want 500", res.Estimate)
	}
}

func TestMultipleOutliersRemovedFarthestFirst(t *testing.T) {
	points := []Vec{
		V1(1), V1(1.1), V1(0.9), V1(1.05), V1(0.95), // correct cluster at ~1
		V1(50), V1(80), // two faulty
	}
	res, err := FTCluster(points, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 2 {
		t.Fatalf("Removed = %v, want both outliers", res.Removed)
	}
	if res.Removed[0] != 6 {
		t.Fatalf("first removal = index %d, want 6 (the farthest, at 80)", res.Removed[0])
	}
	if res.Removed[1] != 5 {
		t.Fatalf("second removal = index %d, want 5", res.Removed[1])
	}
	if math.Abs(res.Estimate[0]-1.0) > 0.1 {
		t.Fatalf("estimate = %v, want ~1.0", res.Estimate[0])
	}
}

func TestErrors(t *testing.T) {
	if _, err := FTCluster(nil, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := FTCluster([]Vec{V1(1)}, -1); err == nil {
		t.Error("negative eta accepted")
	}
	if _, err := FTCluster([]Vec{V1(1), V2(1, 2)}, 1); err == nil {
		t.Error("mixed dimensions accepted")
	}
}

// Property (§4.3 result 1): with F < N/2 faulty points placed farther than
// δC/(1−2F/N) from the correct centroid, FT-cluster removes only faulty
// points.
func TestPropertyOnlyFaultyRemoved(t *testing.T) {
	rng := sim.NewRNG(42)
	f := func(nRaw, fRaw uint8, spread uint8) bool {
		n := 6 + int(nRaw%10)       // 6..15 total, matching inner-circle sizes
		numF := int(fRaw) % (n / 2) // F < N/2
		correct := n - numF
		// Correct points: uniform in a ball of radius deltaC around theta.
		theta := V2(rng.Uniform(-10, 10), rng.Uniform(-10, 10))
		deltaC := 1.0
		points := make([]Vec, 0, n)
		for i := 0; i < correct; i++ {
			ang := rng.Uniform(0, 2*math.Pi)
			r := rng.Uniform(0, deltaC)
			points = append(points, V2(theta[0]+r*math.Cos(ang), theta[1]+r*math.Sin(ang)))
		}
		// Faulty points: far beyond the separation bound.
		sep := WorstCaseRemovalSeparation(numF, n)
		far := deltaC*sep*3 + float64(spread)
		for i := 0; i < numF; i++ {
			ang := rng.Uniform(0, 2*math.Pi)
			points = append(points, V2(theta[0]+far*math.Cos(ang), theta[1]+far*math.Sin(ang)))
		}
		// eta: two correct observations are at most 2·deltaC apart.
		res, err := FTCluster(points, 2*deltaC)
		if err != nil {
			return false
		}
		for _, idx := range res.Removed {
			if idx < correct {
				return false // a correct point was removed
			}
		}
		// All faulty points must be gone.
		for _, idx := range res.Kept {
			if idx >= correct {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property (§4.3 result 2): colluding faulty points that stay *inside* the
// removal bound add at most E* = (F/N)·δF* of estimation error.
func TestPropertyWorstCaseErrorBound(t *testing.T) {
	rng := sim.NewRNG(43)
	f := func(nRaw, fRaw uint8) bool {
		n := 9 + int(nRaw%7) // 9..15
		numF := 1 + int(fRaw)%(n/3)
		correct := n - numF
		theta := V2(0, 0)
		deltaC := 1.0
		points := make([]Vec, 0, n)
		maxDC := 0.0
		for i := 0; i < correct; i++ {
			ang := rng.Uniform(0, 2*math.Pi)
			r := rng.Uniform(0.5, deltaC)
			p := V2(r*math.Cos(ang), r*math.Sin(ang))
			points = append(points, p)
			if d := p.Dist(theta); d > maxDC {
				maxDC = d
			}
		}
		correctCentroid, err := Centroid(points)
		if err != nil {
			return false
		}
		// Adversary: all faulty points collude at distance δF* from the
		// correct centroid (the §4.3 worst case: stay just inside the
		// removal radius so the algorithm keeps them, maximizing the pull
		// on the centroid without being excluded).
		deltaFStar := maxDC / (1 - 2*float64(numF)/float64(n))
		adv := V2(correctCentroid[0]+deltaFStar*0.999, correctCentroid[1])
		for i := 0; i < numF; i++ {
			points = append(points, adv.Clone())
		}
		// η is a free parameter; the adversary's strategy targets whatever
		// η is in force. Model the evasion case by choosing η above the
		// adversary's leave-one-out distance, so nothing is removed.
		res, err := FTCluster(points, 2*deltaFStar)
		if err != nil {
			return false
		}
		if len(res.Removed) != 0 {
			return false // by construction the adversary evades removal
		}
		eStar := WorstCaseError(numF, n, maxDC)
		return res.Estimate.Dist(correctCentroid) <= eStar*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestOneThirdFaultyCase verifies the paper's worked example: F = N/3
// yields δF* = 3δC and E* = δC, i.e. the estimate stays within the range of
// the correct observations.
func TestOneThirdFaultyCase(t *testing.T) {
	const n, f = 9, 3
	deltaC := 2.5
	sep := WorstCaseRemovalSeparation(f, n)
	if math.Abs(sep-3.0) > 1e-9 {
		t.Fatalf("separation = %v, want 3 (δF* = 3δC)", sep)
	}
	if got := WorstCaseError(f, n, deltaC); math.Abs(got-deltaC) > 1e-9 {
		t.Fatalf("E* = %v, want δC = %v", got, deltaC)
	}
}

func TestWorstCaseBoundsDegenerate(t *testing.T) {
	if WorstCaseError(3, 6, 1) != 0 {
		t.Error("F >= N/2 should yield 0 (no guarantee)")
	}
	if WorstCaseRemovalSeparation(0, 0) != 0 {
		t.Error("n = 0 should yield 0")
	}
	if got := WorstCaseError(0, 10, 5); got != 0 {
		t.Errorf("no faults should yield 0 error, got %v", got)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	// Two symmetric outliers equidistant from the core: removal order must
	// be deterministic across runs.
	points := []Vec{V1(0), V1(0), V1(0), V1(-50), V1(50)}
	r1, err := FTCluster(points, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r2, err := FTCluster(points, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Removed) != len(r2.Removed) {
			t.Fatal("nondeterministic removal count")
		}
		for j := range r1.Removed {
			if r1.Removed[j] != r2.Removed[j] {
				t.Fatal("nondeterministic removal order")
			}
		}
	}
}
