package stats

import "testing"

func TestCountersAddGet(t *testing.T) {
	c := NewCounters()
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("absent counter = %d, want 0", got)
	}
	c.Add("drop", 3)
	c.Add("drop", 2)
	c.Add("corrupt", 1)
	if got := c.Get("drop"); got != 5 {
		t.Fatalf("drop = %d, want 5", got)
	}
	if got := c.Get("corrupt"); got != 1 {
		t.Fatalf("corrupt = %d, want 1", got)
	}
}

func TestCountersOrderIsInsertion(t *testing.T) {
	c := NewCounters()
	c.Add("z", 1)
	c.Add("a", 2)
	c.Add("m", 3)
	c.Add("z", 1) // re-touch must not move it
	want := []string{"z", "a", "m"}
	got := c.Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
	if s := c.String(); s != "z=2 a=2 m=3" {
		t.Fatalf("String() = %q", s)
	}
}

func TestCountersMerge(t *testing.T) {
	a := NewCounters()
	a.Add("drop", 1)
	a.Add("delay", 2)
	b := NewCounters()
	b.Add("delay", 3)
	b.Add("spoof", 4)
	a.Merge(b)
	if s := a.String(); s != "drop=1 delay=5 spoof=4" {
		t.Fatalf("merged String() = %q", s)
	}
	// Merge must not disturb the source.
	if s := b.String(); s != "delay=3 spoof=4" {
		t.Fatalf("source mutated by merge: %q", s)
	}
}
