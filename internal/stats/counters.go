package stats

import (
	"fmt"
	"strings"
)

// Counters is an ordered set of named uint64 event counters — the
// aggregation vehicle for the fault-injection coverage numbers (injected
// / suppressed / leaked). Insertion order is preserved so String and
// Merge are deterministic; a plain map would scramble output between
// runs. The zero value is not ready: use NewCounters.
type Counters struct {
	names []string
	idx   map[string]int
	vals  []uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{idx: make(map[string]int)}
}

// Add increments the named counter by n, creating it on first use.
func (c *Counters) Add(name string, n uint64) {
	i, ok := c.idx[name]
	if !ok {
		i = len(c.names)
		c.idx[name] = i
		c.names = append(c.names, name)
		c.vals = append(c.vals, 0)
	}
	c.vals[i] += n
}

// Get returns the named counter's value (0 if absent).
func (c *Counters) Get(name string) uint64 {
	if i, ok := c.idx[name]; ok {
		return c.vals[i]
	}
	return 0
}

// Names returns the counter names in insertion order.
func (c *Counters) Names() []string { return append([]string(nil), c.names...) }

// Merge adds every counter of o into c, preserving o's order for names c
// has not seen yet.
func (c *Counters) Merge(o *Counters) {
	for i, name := range o.names {
		c.Add(name, o.vals[i])
	}
}

// String renders "name=value" pairs in insertion order.
func (c *Counters) String() string {
	var b strings.Builder
	for i, name := range c.names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", name, c.vals[i])
	}
	return b.String()
}
