package stats

import (
	"fmt"
	"strings"
)

// Counters is an ordered set of named uint64 event counters — the
// aggregation vehicle for the fault-injection coverage numbers (injected
// / suppressed / leaked). Insertion order is preserved so String and
// Merge are deterministic; a plain map would scramble output between
// runs. The zero value is not ready: use NewCounters.
type Counters struct {
	names []string
	idx   map[string]int
	vals  []uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{idx: make(map[string]int)}
}

// Add increments the named counter by n, creating it on first use.
func (c *Counters) Add(name string, n uint64) {
	i, ok := c.idx[name]
	if !ok {
		i = len(c.names)
		c.idx[name] = i
		c.names = append(c.names, name)
		c.vals = append(c.vals, 0)
	}
	c.vals[i] += n
}

// Get returns the named counter's value (0 if absent).
func (c *Counters) Get(name string) uint64 {
	if i, ok := c.idx[name]; ok {
		return c.vals[i]
	}
	return 0
}

// Names returns the counter names in insertion order.
func (c *Counters) Names() []string { return append([]string(nil), c.names...) }

// Merge adds every counter of o into c, preserving o's order for names c
// has not seen yet.
func (c *Counters) Merge(o *Counters) {
	for i, name := range o.names {
		c.Add(name, o.vals[i])
	}
}

// String renders "name=value" pairs in insertion order.
func (c *Counters) String() string {
	var b strings.Builder
	for i, name := range c.names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", name, c.vals[i])
	}
	return b.String()
}

// Gauges is the float64 sibling of Counters: an ordered set of named
// metrics (throughput, energy per node, latency, ...) — the uniform
// harvest vehicle of the scenario layer. Insertion order is preserved so
// String is deterministic. The zero value is not ready: use NewGauges.
type Gauges struct {
	names []string
	idx   map[string]int
	vals  []float64
}

// NewGauges returns an empty gauge set.
func NewGauges() *Gauges {
	return &Gauges{idx: make(map[string]int)}
}

// Set stores the named gauge's value, creating it on first use.
func (g *Gauges) Set(name string, v float64) {
	i, ok := g.idx[name]
	if !ok {
		i = len(g.names)
		g.idx[name] = i
		g.names = append(g.names, name)
		g.vals = append(g.vals, 0)
	}
	g.vals[i] = v
}

// Get returns the named gauge's value (0 if absent).
func (g *Gauges) Get(name string) float64 {
	if i, ok := g.idx[name]; ok {
		return g.vals[i]
	}
	return 0
}

// Has reports whether the named gauge has been set.
func (g *Gauges) Has(name string) bool {
	_, ok := g.idx[name]
	return ok
}

// Names returns the gauge names in insertion order.
func (g *Gauges) Names() []string { return append([]string(nil), g.names...) }

// String renders "name=value" pairs in insertion order.
func (g *Gauges) String() string {
	var b strings.Builder
	for i, name := range g.names {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%g", name, g.vals[i])
	}
	return b.String()
}
