package stats

import (
	"reflect"
	"testing"
)

func TestGaugesOrderAndValues(t *testing.T) {
	g := NewGauges()
	g.Set("throughput_pct", 87.5)
	g.Set("energy_per_node_j", 1.25)
	g.Set("throughput_pct", 90) // overwrite, keeps position
	if got := g.Get("throughput_pct"); got != 90 {
		t.Fatalf("Get = %v, want 90", got)
	}
	if g.Get("absent") != 0 {
		t.Fatal("absent gauge should read 0")
	}
	if g.Has("absent") || !g.Has("energy_per_node_j") {
		t.Fatal("Has misreports")
	}
	want := []string{"throughput_pct", "energy_per_node_j"}
	if !reflect.DeepEqual(g.Names(), want) {
		t.Fatalf("Names = %v, want %v", g.Names(), want)
	}
	if s := g.String(); s != "throughput_pct=90 energy_per_node_j=1.25" {
		t.Fatalf("String = %q", s)
	}
}
