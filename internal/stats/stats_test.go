package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleMoments(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-9 {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; unbiased sample variance = 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-9 {
		t.Fatalf("Var = %v, want %v", s.Var(), 32.0/7)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Var() != 0 || s.CI95() != 0 {
		t.Fatal("empty sample should be all zeros")
	}
	s.Add(42)
	if s.Mean() != 42 || s.Var() != 0 || s.CI95() != 0 {
		t.Fatalf("single observation: mean=%v var=%v", s.Mean(), s.Var())
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	mk := func(n int) float64 {
		var s Sample
		for i := 0; i < n; i++ {
			s.Add(float64(i % 10))
		}
		return s.CI95()
	}
	if !(mk(1000) < mk(100) && mk(100) < mk(20)) {
		t.Fatal("CI95 does not shrink with sample size")
	}
}

// Property: mean lies within [min, max] of the added values.
func TestPropertyMeanBounded(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		var s Sample
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // skip pathological magnitudes (fp error dominates)
			}
			s.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return s.Mean() >= lo-1e-6 && s.Mean() <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableAccumulation(t *testing.T) {
	tb := NewTable("Fig X", "config")
	tb.Add("No IC", "0", 98)
	tb.Add("No IC", "0", 96)
	tb.Add("No IC", "1", 9)
	tb.Add("IC L=1", "0", 88)
	if got := tb.Mean("No IC", "0"); math.Abs(got-97) > 1e-9 {
		t.Fatalf("Mean = %v, want 97", got)
	}
	if !math.IsNaN(tb.Mean("IC L=1", "1")) {
		t.Fatal("empty cell should be NaN")
	}
	if rows := tb.Rows(); len(rows) != 2 || rows[0] != "No IC" {
		t.Fatalf("rows = %v", rows)
	}
	if cols := tb.Cols(); len(cols) != 2 || cols[0] != "0" {
		t.Fatalf("cols = %v", cols)
	}
	out := tb.String()
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "No IC") {
		t.Fatalf("render missing labels:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatal("empty cell should render as -")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestSampleString(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	if got := s.String(); !strings.Contains(got, "±") {
		t.Fatalf("String = %q", got)
	}
}
