// Package stats provides the metric accumulators the experiment harness
// uses to aggregate repeated simulation runs: running mean/variance
// (Welford), 95% confidence intervals, and labelled series for table
// printing.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations with Welford's online algorithm. The
// zero value is ready to use.
type Sample struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Sample) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 { return math.Sqrt(s.Var()) }

// CI95 returns the half-width of the 95% confidence interval of the mean,
// using the normal approximation (z = 1.96); adequate for the >= 10 run
// repetitions the harness performs.
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(s.n))
}

// String formats mean ± CI95.
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean(), s.CI95())
}

// Table accumulates labelled samples laid out as rows × columns, and
// prints itself in the fixed-width format the benchmark harness emits for
// every reproduced figure.
type Table struct {
	Title    string
	RowName  string
	cols     []string
	rows     []string
	cells    map[string]*Sample
	rowIndex map[string]bool
	colIndex map[string]bool
}

// NewTable creates an empty table.
func NewTable(title, rowName string) *Table {
	return &Table{
		Title:    title,
		RowName:  rowName,
		cells:    make(map[string]*Sample),
		rowIndex: make(map[string]bool),
		colIndex: make(map[string]bool),
	}
}

func key(row, col string) string { return row + "\x00" + col }

// Add records an observation in cell (row, col), creating the row/column
// on first use (order of first use is preserved).
func (t *Table) Add(row, col string, x float64) {
	if !t.rowIndex[row] {
		t.rowIndex[row] = true
		t.rows = append(t.rows, row)
	}
	if !t.colIndex[col] {
		t.colIndex[col] = true
		t.cols = append(t.cols, col)
	}
	k := key(row, col)
	s, ok := t.cells[k]
	if !ok {
		s = &Sample{}
		t.cells[k] = s
	}
	s.Add(x)
}

// Cell returns the sample at (row, col), or nil.
func (t *Table) Cell(row, col string) *Sample { return t.cells[key(row, col)] }

// Mean returns the cell mean, or NaN when the cell is empty.
func (t *Table) Mean(row, col string) float64 {
	s := t.Cell(row, col)
	if s == nil || s.N() == 0 {
		return math.NaN()
	}
	return s.Mean()
}

// Rows returns the row labels in insertion order.
func (t *Table) Rows() []string { return append([]string(nil), t.rows...) }

// Cols returns the column labels in insertion order.
func (t *Table) Cols() []string { return append([]string(nil), t.cols...) }

// String renders the table with one line per row: mean values, column-
// aligned, CI95 in parentheses when meaningful.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	fmt.Fprintf(&b, "%-24s", t.RowName)
	for _, c := range t.cols {
		fmt.Fprintf(&b, "%16s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-24s", r)
		for _, c := range t.cols {
			s := t.Cell(r, c)
			if s == nil || s.N() == 0 {
				fmt.Fprintf(&b, "%16s", "-")
				continue
			}
			fmt.Fprintf(&b, "%16.4g", s.Mean())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// StringWithCI renders the table with mean ± 95% CI per cell (wider; the
// cmd drivers use it, benchmarks print the compact String form).
func (t *Table) StringWithCI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	fmt.Fprintf(&b, "%-24s", t.RowName)
	for _, c := range t.cols {
		fmt.Fprintf(&b, "%22s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "%-24s", r)
		for _, c := range t.cols {
			s := t.Cell(r, c)
			if s == nil || s.N() == 0 {
				fmt.Fprintf(&b, "%22s", "-")
				continue
			}
			fmt.Fprintf(&b, "%22s", fmt.Sprintf("%.4g ± %.2g", s.Mean(), s.CI95()))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table in long form — one `row,col,n,mean,ci95` line
// per populated cell, preceded by a header — for the repro pipeline's
// machine-readable output. Cell order follows row-major insertion order,
// so CSV output inherits the same determinism contract as String.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("row,col,n,mean,ci95\n")
	for _, r := range t.rows {
		for _, c := range t.cols {
			s := t.Cell(r, c)
			if s == nil || s.N() == 0 {
				continue
			}
			fmt.Fprintf(&b, "%s,%s,%d,%g,%g\n", csvField(r), csvField(c), s.N(), s.Mean(), s.CI95())
		}
	}
	return b.String()
}

// csvField quotes a field when it contains a comma, quote, or newline.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of xs; it sorts a copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
