package vote

import (
	"fmt"
	"testing"

	"innercircle/internal/crypto/thresh"
	"innercircle/internal/link"
	"innercircle/internal/sim"
)

// TestPropertiesRandomizedScenarios is a randomized end-to-end check of
// the §4.2 service properties. For each trial it draws a circle size, a
// failure budget (crashes + Byzantine voters), sets L by the paper's
// formula L = N − F − 1, runs a deterministic round over the real
// radio/MAC stack, and asserts:
//
//   - Termination: every started round ends (agreed or failed) once the
//     event queue drains;
//   - Agreement/Integrity: if the round completes, the agreed message
//     verifies under K_L and carries the proposed value, even though the
//     Byzantine voters contributed garbage partials;
//   - Safety under infeasibility: if more voters misbehave than the
//     budget allows, the round must fail rather than deliver a forged
//     agreement.
func TestPropertiesRandomizedScenarios(t *testing.T) {
	rng := sim.NewRNG(2026)
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		n := 4 + rng.Intn(6)         // 4..9 nodes (center + voters)
		crashes := rng.Intn(2)       // 0..1 crashed voters
		byz := rng.Intn(2)           // 0..1 Byzantine voters
		extraByz := rng.Intn(2) == 0 // sometimes exceed the budget
		l, err := LevelFor(n, byz, crashes, 0)
		if err != nil {
			continue // infeasible draw
		}
		name := fmt.Sprintf("trial%02d_n%d_c%d_b%d_extra%v", trial, n, crashes, byz, extraByz)
		t.Run(name, func(t *testing.T) {
			agreed := 0
			failed := 0
			var delivered []AgreedMsg
			net := buildVote(t, n, detConfig(l), func(i int) Callbacks {
				return Callbacks{
					Check: func(link.NodeID, []byte) bool { return true },
					OnAgreed: func(m AgreedMsg) {
						agreed++
						delivered = append(delivered, m)
					},
					OnRoundFailed: func([]byte, string) { failed++ },
				}
			})
			// Assign failures among voters 1..n-1 (node 0 is the correct
			// center).
			victims := make([]int, 0, n-1)
			for i := 1; i < n; i++ {
				victims = append(victims, i)
			}
			rng.Shuffle(len(victims), func(i, j int) {
				victims[i], victims[j] = victims[j], victims[i]
			})
			idx := 0
			for c := 0; c < crashes; c++ {
				net.macs[victims[idx]].Transceiver().SetDown(true)
				idx++
			}
			byzCount := byz
			if extraByz && idx+byzCount < len(victims) {
				byzCount++ // one more Byzantine voter than budgeted
			}
			for bz := 0; bz < byzCount && idx < len(victims); bz++ {
				v := victims[idx]
				idx++
				makeByzantine(net, v)
			}

			if err := net.svcs[0].Propose([]byte("prop")); err != nil {
				t.Fatal(err)
			}
			if err := net.k.Run(20); err != nil {
				t.Fatal(err)
			}

			// Termination: the round resolved one way or the other.
			st := net.svcs[0].Stats
			if st.RoundsStarted != st.RoundsAgreed+st.RoundsFailed {
				t.Fatalf("unresolved round: %+v", st)
			}
			// Integrity: every delivered agreed message verifies and
			// carries the proposed value.
			for _, m := range delivered {
				if err := net.svcs[0].VerifyAgreed(m); err != nil {
					t.Fatalf("delivered agreed message fails verification: %v", err)
				}
				if string(m.Value) != "prop" {
					t.Fatalf("agreed value corrupted: %q", m.Value)
				}
				if m.L != l {
					t.Fatalf("agreed level = %d, want %d", m.L, l)
				}
			}
			// Within budget the round must succeed (correct voters
			// suffice: N-1-crashes-byzCount >= L means enough correct
			// acks).
			correctVoters := n - 1 - crashes - byzCount
			if correctVoters >= l && agreed == 0 {
				t.Fatalf("round failed with %d correct voters >= L=%d", correctVoters, l)
			}
		})
	}
}

// makeByzantine rewires a voter to respond to every proposal with a
// garbage partial signature.
func makeByzantine(net *voteNet, i int) {
	svc := net.svcs[i]
	net.links[i].OnRecv(func(e link.Env) {
		if p, ok := e.Msg.(ProposeMsg); ok {
			garbage := thresh.Partial{Index: i + 1, Data: []byte("byzantine!")}
			_ = net.links[i].SendRaw(p.Center, AckMsg{
				Center: p.Center, Seq: p.Seq, Voter: link.NodeID(i), Partial: garbage,
			})
			return
		}
		svc.HandleEnv(e)
	})
}
