package vote

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"innercircle/internal/crypto/nsl"
	"innercircle/internal/crypto/sigcache"
	"innercircle/internal/crypto/thresh"
	"innercircle/internal/icnet"
	"innercircle/internal/link"
	"innercircle/internal/sim"
)

// Topology is the slice of the Secure Topology Service the voting service
// consumes.
type Topology interface {
	// IsNeighbor reports whether q is an authenticated timely neighbour.
	IsNeighbor(q link.NodeID) bool
	// Neighbors returns the current one-hop view.
	Neighbors() []link.NodeID
	// IsLink reports whether the two-hop view shows p listing q as its
	// neighbour.
	IsLink(p, q link.NodeID) bool
	// IsTwoHop reports whether q is reachable through some neighbour but
	// is not itself a neighbour.
	IsTwoHop(q link.NodeID) bool
	// TwoHopCount returns the number of distinct two-hop nodes.
	TwoHopCount() int
}

// Callbacks are the application-provided Inner-circle Callbacks of Fig. 1.
// Unused entries may be nil.
type Callbacks struct {
	// Check validates the center's proposed value (deterministic voting's
	// application-aware check f). Nil means accept everything.
	Check func(center link.NodeID, value []byte) bool
	// LocalValue returns this node's own observation matching the
	// center's solicitation, or false if it has none (statistical voting).
	LocalValue func(center link.NodeID, meta []byte) ([]byte, bool)
	// Fuse combines the participating values (values[0] is the center's)
	// into the agreed value. It must be deterministic: voters recompute it
	// and require byte equality (statistical voting's fusion function f).
	Fuse func(center link.NodeID, values [][]byte) []byte
	// OnAgreed runs at every inner-circle member (including the center)
	// when a round completes with a valid agreed message.
	OnAgreed func(a AgreedMsg)
	// OnRoundFailed runs at the center when a round times out or cannot
	// combine a signature.
	OnRoundFailed func(value []byte, reason string)
}

// Config parameterizes the service.
type Config struct {
	Mode Mode `json:"mode"`
	// L is the dependability level: L neighbour approvals (plus the
	// center's own share) are required.
	L int `json:"l"`
	// RoundTimeout bounds one protocol attempt at the center.
	RoundTimeout sim.Duration `json:"round_timeout"`
	// Retries is how many times the center re-solicits/re-proposes before
	// declaring failure.
	Retries int `json:"retries"`
	// TwoHop widens the inner circle to all nodes within two hops (§3's
	// larger-circle extension): first-ring members relay the round's
	// messages outward and the replies back, trading extra local traffic
	// for a larger approval pool.
	TwoHop bool `json:"two_hop"`
}

// Deps wires the service into a node.
type Deps struct {
	ID   link.NodeID
	K    *sim.Kernel
	Link *link.Service
	Topo Topology
	Ring PublicRing
	Keys NodeKeys
	Susp *icnet.SuspicionManager
	// SignKP and Dir provide the voters' individual signatures on
	// statistical value messages.
	SignKP *nsl.KeyPair
	Dir    nsl.Directory
	// Crypto models signing/verification latency and energy (zero value:
	// instantaneous and free). Energy receives the per-operation charges;
	// may be nil.
	Crypto CryptoProfile
	Energy EnergySink
	// Memo, when non-nil, memoizes verification verdicts (a pure function
	// of key, message, and signature). It is shared by all nodes of one
	// replica — an agreed message flooded to m nodes is verified once —
	// and never crosses replicas. Modeled verification energy and delay
	// are still charged per node on every check, so experiment tables are
	// identical with the memo on or off; only wall-clock time changes.
	Memo *sigcache.Cache
}

// Stats counts voting activity.
type Stats struct {
	RoundsStarted   uint64
	RoundsAgreed    uint64
	RoundsFailed    uint64
	AcksSent        uint64
	ValuesSent      uint64
	ChecksRejected  uint64
	AgreedDelivered uint64
	AgreedInvalid   uint64
	// PartialsRejected counts acks the center's leave-one-out combine
	// identified as corrupt (a Byzantine voter neutralized).
	PartialsRejected uint64
	// MemoHits counts signature verifications answered from the shared
	// verification memo (each one is a modular exponentiation avoided);
	// MemoMisses counts verifications actually performed and memoized.
	// Both stay zero when Deps.Memo is nil.
	MemoHits   uint64
	MemoMisses uint64
}

// roundState is the center's per-round bookkeeping.
type roundState struct {
	seq     uint64
	value   []byte // current value (original, or fused once computed)
	acks    map[link.NodeID]thresh.Partial
	values  []SignedValue // statistical: collected voter inputs
	from    map[link.NodeID]bool
	timer   *sim.Timer
	retries int
	// proposing is false while a statistical round is still collecting
	// values; deterministic rounds start in the proposing phase.
	proposing bool
	done      bool
}

// Service is one node's inner-circle voting service.
type Service struct {
	cfg  Config
	deps Deps

	nextSeq uint64
	rounds  map[uint64]*roundState
	// voter-side dedup: latest seq acked per center.
	ackedSeq map[link.NodeID]uint64
	// two-hop relay dedup.
	relayed map[relayKey]bool
	// agreed messages already delivered (center+seq), to suppress
	// duplicates from re-broadcasts.
	delivered map[agreedKey]bool

	cbs Callbacks

	// byz, when non-nil, makes this node lie (fault injection).
	byz *Byzantine

	// Stats exposes counters to the experiment harness.
	Stats Stats
}

type agreedKey struct {
	center link.NodeID
	seq    uint64
}

// relayKey deduplicates two-hop relaying of acks and value messages.
type relayKey struct {
	center link.NodeID
	seq    uint64
	voter  link.NodeID
	kind   byte
}

// Common service errors.
var (
	ErrNoLevelKey  = errors.New("vote: no key for dependability level")
	ErrNotNeighbor = errors.New("vote: sender is not an authenticated neighbour")
)

// New validates configuration and returns a service.
func New(cfg Config, deps Deps, cbs Callbacks) (*Service, error) {
	if cfg.Mode != Deterministic && cfg.Mode != Statistical {
		return nil, fmt.Errorf("vote: invalid mode %d", cfg.Mode)
	}
	if cfg.L < 1 {
		return nil, fmt.Errorf("vote: dependability level must be >= 1, got %d", cfg.L)
	}
	if cfg.RoundTimeout <= 0 {
		return nil, fmt.Errorf("vote: round timeout must be positive")
	}
	if deps.Ring == nil || deps.Keys == nil {
		return nil, fmt.Errorf("vote: key ring and node keys are required")
	}
	if _, ok := deps.Ring[cfg.L]; !ok {
		return nil, fmt.Errorf("%w: L=%d", ErrNoLevelKey, cfg.L)
	}
	if cfg.Mode == Statistical && (deps.SignKP == nil || deps.Dir == nil) {
		return nil, fmt.Errorf("vote: statistical mode requires SignKP and Dir")
	}
	return &Service{
		cfg:       cfg,
		deps:      deps,
		cbs:       cbs,
		rounds:    make(map[uint64]*roundState),
		ackedSeq:  make(map[link.NodeID]uint64),
		relayed:   make(map[relayKey]bool),
		delivered: make(map[agreedKey]bool),
	}, nil
}

// Propose starts a voting round with this node as center, to get value
// agreed by L inner-circle neighbours. In deterministic mode the value is
// proposed as-is; in statistical mode the round first solicits the inner
// circle's own observations and fuses them.
func (s *Service) Propose(value []byte) error {
	circle := len(s.deps.Topo.Neighbors())
	if s.cfg.TwoHop {
		circle += s.deps.Topo.TwoHopCount()
	}
	if circle < s.cfg.L {
		s.Stats.RoundsFailed++
		s.failRound(value, "fewer neighbours than dependability level")
		return nil
	}
	s.nextSeq++
	r := &roundState{
		seq:       s.nextSeq,
		value:     append([]byte(nil), value...),
		acks:      make(map[link.NodeID]thresh.Partial),
		from:      make(map[link.NodeID]bool),
		proposing: s.cfg.Mode == Deterministic,
	}
	s.rounds[r.seq] = r
	s.Stats.RoundsStarted++
	r.timer = sim.NewTimer(s.deps.K, func() { s.onRoundTimeout(r) })
	r.timer.Reset(s.cfg.RoundTimeout)
	s.kickRound(r)
	return nil
}

// kickRound (re)transmits the round's opening message.
func (s *Service) kickRound(r *roundState) {
	switch s.cfg.Mode {
	case Deterministic:
		_ = s.deps.Link.SendRaw(link.BroadcastID, ProposeMsg{
			Center: s.deps.ID, Seq: r.seq, L: s.cfg.L, Mode: Deterministic, Value: r.value,
		})
	case Statistical:
		if !r.proposing {
			_ = s.deps.Link.SendRaw(link.BroadcastID, SolicitMsg{
				Center: s.deps.ID, Seq: r.seq, L: s.cfg.L, Meta: r.value,
			})
		} else {
			s.sendStatPropose(r)
		}
	}
}

func (s *Service) onRoundTimeout(r *roundState) {
	if r.done {
		return
	}
	if r.retries < s.cfg.Retries {
		r.retries++
		r.timer.Reset(s.cfg.RoundTimeout)
		s.kickRound(r)
		return
	}
	r.done = true
	delete(s.rounds, r.seq)
	s.Stats.RoundsFailed++
	s.failRound(r.value, "timeout waiting for inner-circle approval")
}

func (s *Service) failRound(value []byte, reason string) {
	if s.cbs.OnRoundFailed != nil {
		s.cbs.OnRoundFailed(value, reason)
	}
}

// HandleEnv processes voting traffic; it reports whether the envelope was
// consumed.
func (s *Service) HandleEnv(e link.Env) bool {
	switch m := e.Msg.(type) {
	case ProposeMsg:
		s.onPropose(e.From, m)
	case AckMsg:
		s.onAck(e.From, m)
	case SolicitMsg:
		s.onSolicit(e.From, m)
	case ValueMsg:
		s.onValue(e.From, m)
	case AgreedMsg:
		s.onAgreed(e.From, m)
	default:
		return false
	}
	return true
}

// ---- voter side ---------------------------------------------------------

func (s *Service) onPropose(from link.NodeID, m ProposeMsg) {
	if m.Center == s.deps.ID {
		return
	}
	if m.Relayed {
		// Two-hop participation: the relayer must be our neighbour and
		// must (per our two-hop view) be a neighbour of the center.
		if !s.cfg.TwoHop || from != m.Relayer {
			return
		}
		if s.deps.Topo.IsNeighbor(m.Center) {
			return // first-ring nodes act on the direct copy
		}
		if !s.deps.Topo.IsLink(m.Relayer, m.Center) {
			return
		}
	} else {
		if from != m.Center {
			return
		}
		// Only vote in inner circles we belong to: the center must be an
		// authenticated, timely neighbour.
		if !s.deps.Topo.IsNeighbor(m.Center) {
			return
		}
		if s.cfg.TwoHop {
			// Relay the proposal outward once, marking ourselves.
			relay := m
			relay.Relayed = true
			relay.Relayer = s.deps.ID
			_ = s.deps.Link.SendRaw(link.BroadcastID, relay)
		}
	}
	if s.ackedSeq[m.Center] >= m.Seq {
		// Re-proposal of an already-acked round: re-send the ack (the
		// original may have been lost).
		if s.ackedSeq[m.Center] == m.Seq {
			s.sendAck(m)
		}
		return
	}
	signer, ok := s.deps.Keys[m.L]
	if !ok {
		return
	}
	_ = signer
	switch m.Mode {
	// A failed check means this voter declines to approve — it is not by
	// itself provable misbehaviour (the voter may simply lack the local
	// context the check needs, e.g. the fw state of Fig. 6 before the
	// corresponding agreed message arrives), so no suspicion is raised
	// here; suppression of genuinely unsigned/invalid traffic is the
	// interceptor's job.
	case Deterministic:
		if s.cbs.Check != nil && !s.cbs.Check(m.Center, m.Value) {
			if s.byz == nil || !s.byz.AckAll {
				s.Stats.ChecksRejected++
				return
			}
			s.byz.lie() // colluding voter: approve what the check rejected
		}
	case Statistical:
		if !s.verifyStatPropose(m) {
			s.Stats.ChecksRejected++
			return
		}
	default:
		return
	}
	s.ackedSeq[m.Center] = m.Seq
	s.sendAck(m)
}

// verifyStatPropose re-derives the fused value from the signed inputs.
func (s *Service) verifyStatPropose(m ProposeMsg) bool {
	if s.cbs.Fuse == nil || s.deps.Dir == nil {
		return false
	}
	if len(m.Values) < m.L+1 {
		return false // must include center's value plus >= L voters
	}
	vals := make([][]byte, 0, len(m.Values))
	seen := make(map[link.NodeID]bool, len(m.Values))
	for i, sv := range m.Values {
		if seen[sv.Voter] {
			return false
		}
		seen[sv.Voter] = true
		// The first entry is the center's own value; the rest must carry
		// valid individual signatures from distinct voters.
		if i == 0 {
			if sv.Voter != m.Center {
				return false
			}
		} else {
			pk, err := s.deps.Dir.PublicKey(int64(sv.Voter))
			if err != nil {
				return false
			}
			if s.verifyNSL(pk, valueDigest(m.Center, m.Seq, sv.Voter, sv.Value), sv.Sig) != nil {
				return false
			}
		}
		vals = append(vals, sv.Value)
	}
	fused := s.cbs.Fuse(m.Center, vals)
	return bytes.Equal(fused, m.Value)
}

func (s *Service) sendAck(m ProposeMsg) {
	signer, ok := s.deps.Keys[m.L]
	if !ok {
		return
	}
	p, err := signer.PartialSign(digest(m.Center, m.Seq, m.L, m.Value))
	if err != nil {
		return
	}
	if s.byz != nil && s.byz.CorruptAcks {
		p.Data = flipOneBit(p.Data, s.byz.RNG)
		s.byz.lie()
	}
	s.Stats.AcksSent++
	dst := m.Center
	if m.Relayed {
		dst = m.Relayer // the relayer forwards it inward
	}
	ack := AckMsg{Center: m.Center, Seq: m.Seq, Voter: s.deps.ID, Partial: p}
	s.afterCrypto(s.deps.Crypto.SignDelay, s.deps.Crypto.SignEnergy, func() {
		_ = s.deps.Link.SendRaw(dst, ack)
	})
}

// afterCrypto charges a crypto operation's energy and runs fn after its
// processing delay (immediately under the Instant profile).
func (s *Service) afterCrypto(delay sim.Duration, joules float64, fn func()) {
	if s.deps.Energy != nil && joules > 0 {
		s.deps.Energy.AddEnergy(joules)
	}
	if delay <= 0 {
		fn()
		return
	}
	s.deps.K.ScheduleFire(delay, fn)
}

func (s *Service) onSolicit(from link.NodeID, m SolicitMsg) {
	if m.Center == s.deps.ID {
		return
	}
	if m.Relayed {
		if !s.cfg.TwoHop || from != m.Relayer {
			return
		}
		if s.deps.Topo.IsNeighbor(m.Center) || !s.deps.Topo.IsLink(m.Relayer, m.Center) {
			return
		}
	} else {
		if from != m.Center {
			return
		}
		if !s.deps.Topo.IsNeighbor(m.Center) {
			return
		}
		if s.cfg.TwoHop {
			relay := m
			relay.Relayed = true
			relay.Relayer = s.deps.ID
			_ = s.deps.Link.SendRaw(link.BroadcastID, relay)
		}
	}
	if s.cbs.LocalValue == nil || s.deps.SignKP == nil {
		return
	}
	val, ok := s.cbs.LocalValue(m.Center, m.Meta)
	if !ok {
		return
	}
	if s.byz != nil && s.byz.LieValue != nil {
		val = s.byz.LieValue(m.Center, m.Meta, val)
		s.byz.lie()
	}
	sig := s.deps.SignKP.Sign(valueDigest(m.Center, m.Seq, s.deps.ID, val))
	s.Stats.ValuesSent++
	dst := m.Center
	if m.Relayed {
		dst = m.Relayer
	}
	_ = s.deps.Link.SendRaw(dst, ValueMsg{
		Center: m.Center, Seq: m.Seq, Voter: s.deps.ID, Value: val, Sig: sig,
	})
}

// ---- center side --------------------------------------------------------

func (s *Service) onValue(from link.NodeID, m ValueMsg) {
	if m.Center != s.deps.ID {
		s.maybeRelayValue(from, m)
		return
	}
	if from != m.Voter && !s.cfg.TwoHop {
		return
	}
	r, ok := s.rounds[m.Seq]
	if !ok || r.done || r.proposing {
		return
	}
	if !s.inCircle(m.Voter) || r.from[m.Voter] {
		return
	}
	// Verify the voter's individual signature before accepting its value.
	pk, err := s.deps.Dir.PublicKey(int64(m.Voter))
	if err != nil {
		return
	}
	if s.verifyNSL(pk, valueDigest(m.Center, m.Seq, m.Voter, m.Value), m.Sig) != nil {
		if s.deps.Susp != nil {
			s.deps.Susp.SuspectTemporary(m.Voter, "bad signature on value message")
		}
		return
	}
	r.from[m.Voter] = true
	r.values = append(r.values, SignedValue{Voter: m.Voter, Value: m.Value, Sig: m.Sig})
	if len(r.values) >= s.cfg.L {
		s.buildStatPropose(r)
	}
}

// buildStatPropose fuses the collected values and moves the round into the
// propose phase.
func (s *Service) buildStatPropose(r *roundState) {
	all := make([]SignedValue, 0, len(r.values)+1)
	all = append(all, SignedValue{Voter: s.deps.ID, Value: r.value})
	all = append(all, r.values...)
	vals := make([][]byte, len(all))
	for i, sv := range all {
		vals[i] = sv.Value
	}
	fused := s.cbs.Fuse(s.deps.ID, vals)
	r.value = fused
	r.values = all
	r.proposing = true
	s.sendStatPropose(r)
}

func (s *Service) sendStatPropose(r *roundState) {
	_ = s.deps.Link.SendRaw(link.BroadcastID, ProposeMsg{
		Center: s.deps.ID, Seq: r.seq, L: s.cfg.L, Mode: Statistical,
		Value: r.value, Values: r.values,
	})
}

func (s *Service) onAck(from link.NodeID, m AckMsg) {
	if m.Center != s.deps.ID {
		s.maybeRelayAck(from, m)
		return
	}
	if from != m.Voter && !s.cfg.TwoHop {
		return
	}
	r, ok := s.rounds[m.Seq]
	if !ok || r.done || !r.proposing {
		return
	}
	if !s.inCircle(m.Voter) {
		return
	}
	if _, dup := r.acks[m.Voter]; dup {
		return
	}
	// Schemes with individually checkable partials (keyed MAC) identify a
	// corrupt share on arrival: the lie is rejected at the source and the
	// liar permanently suspected. Threshold RSA lacks this capability and
	// relies on tryComplete's leave-one-out fallback instead.
	if pv, ok := s.deps.Ring[s.cfg.L].(thresh.PartialVerifier); ok {
		if !s.verifyPartial(pv, digest(s.deps.ID, r.seq, s.cfg.L, r.value), m.Partial) {
			s.Stats.PartialsRejected++
			if s.deps.Susp != nil {
				s.deps.Susp.SuspectPermanent(m.Voter, "corrupt partial signature")
			}
			return
		}
	}
	r.acks[m.Voter] = m.Partial
	if len(r.acks) >= s.cfg.L {
		s.tryComplete(r)
	}
}

// tryComplete combines the collected partials with the center's own share.
// On a combine failure (a corrupt partial poisoning the batch) it retries
// leaving out one ack at a time, so a single Byzantine voter cannot block
// an otherwise complete round.
func (s *Service) tryComplete(r *roundState) {
	signer, ok := s.deps.Keys[s.cfg.L]
	if !ok {
		return
	}
	gk := s.deps.Ring[s.cfg.L]
	dig := digest(s.deps.ID, r.seq, s.cfg.L, r.value)
	own, err := signer.PartialSign(dig)
	if err != nil {
		return
	}
	// Deterministic voter order (map iteration would vary the chosen
	// partial subset — and therefore the trace — between identical runs).
	voters := make([]link.NodeID, 0, len(r.acks))
	for v := range r.acks {
		voters = append(voters, v)
	}
	sort.Slice(voters, func(i, j int) bool { return voters[i] < voters[j] })
	partials := make([]thresh.Partial, 0, len(r.acks)+1)
	partials = append(partials, own)
	for _, v := range voters {
		partials = append(partials, r.acks[v])
	}
	sig, err := gk.Combine(dig, partials)
	if err != nil && len(r.acks) > s.cfg.L {
		// Leave-one-out: drop each suspect ack in turn.
		for skip := range voters {
			subset := []thresh.Partial{own}
			for i, v := range voters {
				if i == skip {
					continue
				}
				subset = append(subset, r.acks[v])
			}
			if sig, err = gk.Combine(dig, subset); err == nil {
				s.Stats.PartialsRejected++
				if s.deps.Susp != nil {
					s.deps.Susp.SuspectPermanent(voters[skip], "corrupt partial signature")
				}
				break
			}
		}
	}
	if err != nil {
		// Not combinable yet; wait for more acks or the timeout.
		return
	}
	r.done = true
	r.timer.Stop()
	delete(s.rounds, r.seq)
	s.Stats.RoundsAgreed++
	agreed := AgreedMsg{Center: s.deps.ID, Seq: r.seq, L: s.cfg.L, Value: r.value, Sig: sig}
	// Fig. 6: the center sends the agreed message to all its inner-circle
	// nodes, then delivers it locally. The center paid one partial
	// signature plus the combination.
	cost := s.deps.Crypto.SignDelay + s.deps.Crypto.CombineDelay
	joules := s.deps.Crypto.SignEnergy + s.deps.Crypto.CombineEnergy
	s.afterCrypto(cost, joules, func() {
		_ = s.deps.Link.SendRaw(link.BroadcastID, agreed)
		s.deliverAgreed(agreed)
	})
}

// ---- agreed handling ----------------------------------------------------

func (s *Service) onAgreed(from link.NodeID, m AgreedMsg) {
	if s.deps.Energy != nil && s.deps.Crypto.VerifyEnergy > 0 {
		s.deps.Energy.AddEnergy(s.deps.Crypto.VerifyEnergy)
	}
	if err := s.VerifyAgreed(m); err != nil {
		s.Stats.AgreedInvalid++
		if s.deps.Susp != nil {
			s.deps.Susp.SuspectPermanent(from, "relayed invalid agreed message")
		}
		return
	}
	// Two-hop circles: first-ring members relay the center's agreed
	// message outward once (before the dedup marks it delivered).
	if s.cfg.TwoHop && from == m.Center && s.deps.Topo.IsNeighbor(m.Center) {
		if !s.delivered[agreedKey{center: m.Center, seq: m.Seq}] {
			_ = s.deps.Link.SendRaw(link.BroadcastID, m)
		}
	}
	s.deliverAgreed(m)
}

// inCircle reports whether a voter belongs to this center's inner circle
// under the current configuration.
func (s *Service) inCircle(voter link.NodeID) bool {
	if s.deps.Topo.IsNeighbor(voter) {
		return true
	}
	return s.cfg.TwoHop && s.deps.Topo.IsTwoHop(voter)
}

// maybeRelayAck forwards a two-hop voter's ack toward its center, once.
func (s *Service) maybeRelayAck(from link.NodeID, m AckMsg) {
	if !s.cfg.TwoHop || from != m.Voter {
		return
	}
	if !s.deps.Topo.IsNeighbor(m.Center) {
		return
	}
	key := relayKey{center: m.Center, seq: m.Seq, voter: m.Voter, kind: 'a'}
	if s.relayed[key] {
		return
	}
	s.relayed[key] = true
	_ = s.deps.Link.SendRaw(m.Center, m)
}

// maybeRelayValue forwards a two-hop voter's value message toward its
// center, once.
func (s *Service) maybeRelayValue(from link.NodeID, m ValueMsg) {
	if !s.cfg.TwoHop || from != m.Voter {
		return
	}
	if !s.deps.Topo.IsNeighbor(m.Center) {
		return
	}
	key := relayKey{center: m.Center, seq: m.Seq, voter: m.Voter, kind: 'v'}
	if s.relayed[key] {
		return
	}
	s.relayed[key] = true
	_ = s.deps.Link.SendRaw(m.Center, m)
}

func (s *Service) deliverAgreed(m AgreedMsg) {
	key := agreedKey{center: m.Center, seq: m.Seq}
	if s.delivered[key] {
		return
	}
	s.delivered[key] = true
	s.Stats.AgreedDelivered++
	if s.cbs.OnAgreed != nil {
		s.cbs.OnAgreed(m)
	}
}

// VerifyAgreed checks an agreed message's threshold signature against the
// level key it names — the check any remote recipient performs (§3).
func (s *Service) VerifyAgreed(m AgreedMsg) error {
	gk, ok := s.deps.Ring[m.L]
	if !ok {
		return fmt.Errorf("%w: L=%d", ErrNoLevelKey, m.L)
	}
	dig := digest(m.Center, m.Seq, m.L, m.Value)
	memo := s.deps.Memo
	if memo == nil {
		return gk.Verify(dig, m.Sig)
	}
	k := sigcache.Key{Kind: sigcache.KindThresh, Scope: gk, Epoch: keyEpoch(gk), Sum: sigcache.HashParts(dig, m.Sig.Data)}
	if e, ok := memo.Get(k); ok {
		s.Stats.MemoHits++
		return e.Err
	}
	s.Stats.MemoMisses++
	err := gk.Verify(dig, m.Sig)
	memo.Put(k, sigcache.Entry{Err: err})
	return err
}

// verifyNSL checks an individual RSA signature through the verification
// memo (when configured).
func (s *Service) verifyNSL(pk nsl.PublicKey, dig, sig []byte) error {
	memo := s.deps.Memo
	if memo == nil {
		return nsl.Verify(pk, dig, sig)
	}
	k := sigcache.Key{Kind: sigcache.KindNSL, Scope: pk, Sum: sigcache.HashParts(dig, sig)}
	if e, ok := memo.Get(k); ok {
		s.Stats.MemoHits++
		return e.Err
	}
	s.Stats.MemoMisses++
	err := nsl.Verify(pk, dig, sig)
	memo.Put(k, sigcache.Entry{Err: err})
	return err
}

// errBadPartialMemo is the memoized verdict for a rejected partial.
var errBadPartialMemo = errors.New("vote: partial rejected")

// verifyPartial checks one partial signature through the verification
// memo. The partial's share index participates in the key: two voters'
// partials over the same digest are distinct verifications.
func (s *Service) verifyPartial(pv thresh.PartialVerifier, dig []byte, p thresh.Partial) bool {
	memo := s.deps.Memo
	if memo == nil {
		return pv.VerifyPartial(dig, p)
	}
	var idx [4]byte
	binary.BigEndian.PutUint32(idx[:], uint32(p.Index))
	k := sigcache.Key{Kind: sigcache.KindPartial, Scope: pv, Epoch: keyEpoch(pv), Sum: sigcache.HashParts(dig, p.Data, idx[:])}
	if e, ok := memo.Get(k); ok {
		s.Stats.MemoHits++
		return e.Err == nil
	}
	s.Stats.MemoMisses++
	ok := pv.VerifyPartial(dig, p)
	e := sigcache.Entry{}
	if !ok {
		e.Err = errBadPartialMemo
	}
	memo.Put(k, e)
	return ok
}

// keyEpoch reads a group key's key-material epoch through the first-class
// thresh.Epoched capability, so memo entries die with the share epoch that
// produced them — a refresh or reshare bumps the epoch and every cached
// verdict keyed under the old one stops being served.
func keyEpoch(gk any) uint64 {
	if e, ok := gk.(thresh.Epoched); ok {
		return e.Epoch()
	}
	return 0
}

// SetKeys replaces this node's signer set, the per-node half of a
// membership epoch transition: the public ring object is mutated in place
// by the dealer's refresh/reshare, while each member installs its new
// signers here. A node expelled from (or not yet admitted to) the circle
// installs an empty map and silently declines to ack until re-admitted.
func (s *Service) SetKeys(nk NodeKeys) {
	if nk == nil {
		nk = NodeKeys{}
	}
	s.deps.Keys = nk
}

// AbortInFlight fails every round this node is currently centering, in
// ascending sequence order (map order would make failure callbacks — and
// therefore traces — vary between identical runs). The membership layer
// calls it to drain in-flight votes before swapping signer sets: a round
// straddling a reshare would otherwise try to combine partials from two
// incompatible share polynomials. Returns the number of rounds aborted.
func (s *Service) AbortInFlight(reason string) int {
	if len(s.rounds) == 0 {
		return 0
	}
	seqs := make([]uint64, 0, len(s.rounds))
	for seq := range s.rounds {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		r := s.rounds[seq]
		r.done = true
		r.timer.Stop()
		delete(s.rounds, seq)
		s.Stats.RoundsFailed++
		s.failRound(r.value, reason)
	}
	return len(seqs)
}

// VerifierFor adapts the service into an interceptor signature check: it
// recognizes AgreedMsg envelopes and validates their signatures.
func (s *Service) VerifierFor() icnet.Verifier {
	return func(e link.Env) (bool, bool) {
		m, ok := e.Msg.(AgreedMsg)
		if !ok {
			return false, false
		}
		return true, s.VerifyAgreed(m) == nil
	}
}
