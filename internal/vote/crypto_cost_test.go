package vote

import (
	"testing"

	"innercircle/internal/link"
	"innercircle/internal/sim"
)

// jouleCounter is a test EnergySink.
type jouleCounter struct{ j float64 }

func (c *jouleCounter) AddEnergy(j float64) { c.j += j }

func TestCryptoProfilesOrdering(t *testing.T) {
	sw, hw := SoftwareCrypto(), HardwareCrypto()
	if !(hw.SignDelay < sw.SignDelay && hw.VerifyDelay < sw.VerifyDelay) {
		t.Fatal("hardware crypto should be faster than software")
	}
	if !(hw.SignEnergy < sw.SignEnergy/50) {
		t.Fatalf("hardware sign energy %.6f J not ~100x below software %.6f J",
			hw.SignEnergy, sw.SignEnergy)
	}
	if !Instant().zero() {
		t.Fatal("Instant() is not the zero profile")
	}
	if sw.zero() {
		t.Fatal("software profile reads as zero")
	}
}

// cryptoNet builds the clique harness with a crypto profile installed on
// every service.
func cryptoNet(t *testing.T, profile CryptoProfile) (*voteNet, []*jouleCounter, *int) {
	t.Helper()
	agreed := new(int)
	net := buildVote(t, 4, detConfig(2), func(i int) Callbacks {
		return Callbacks{
			Check:    func(link.NodeID, []byte) bool { return true },
			OnAgreed: func(AgreedMsg) { *agreed++ },
		}
	})
	sinks := make([]*jouleCounter, len(net.svcs))
	for i, svc := range net.svcs {
		sinks[i] = &jouleCounter{}
		svc.deps.Crypto = profile
		svc.deps.Energy = sinks[i]
	}
	return net, sinks, agreed
}

func TestCryptoDelaySlowsRoundButCompletes(t *testing.T) {
	fast, _, fastAgreed := cryptoNet(t, Instant())
	if err := fast.svcs[0].Propose([]byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := fast.k.RunAll(); err != nil {
		t.Fatal(err)
	}
	fastDone := fast.k.Now()

	slow, _, slowAgreed := cryptoNet(t, SoftwareCrypto())
	if err := slow.svcs[0].Propose([]byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := slow.k.RunAll(); err != nil {
		t.Fatal(err)
	}
	slowDone := slow.k.Now()

	if *fastAgreed == 0 || *slowAgreed == 0 {
		t.Fatalf("agreement missing: fast=%d slow=%d", *fastAgreed, *slowAgreed)
	}
	// Software crypto adds at least SignDelay (voter) + Sign+Combine
	// (center) ≈ 120 ms to the round.
	if slowDone < fastDone+0.1 {
		t.Fatalf("software crypto round finished at %v vs instant %v — no modeled latency", slowDone, fastDone)
	}
}

func TestCryptoEnergyCharged(t *testing.T) {
	net, sinks, agreed := cryptoNet(t, SoftwareCrypto())
	if err := net.svcs[0].Propose([]byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := net.k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if *agreed == 0 {
		t.Fatal("no agreement")
	}
	// The center paid sign + combine.
	want := SoftwareCrypto().SignEnergy + SoftwareCrypto().CombineEnergy
	if sinks[0].j < want {
		t.Fatalf("center charged %.6f J, want >= %.6f", sinks[0].j, want)
	}
	// Voters paid at least one signature (ack) and one verification
	// (agreed message).
	voterMin := SoftwareCrypto().SignEnergy
	voters := 0
	for i := 1; i < len(sinks); i++ {
		if sinks[i].j >= voterMin {
			voters++
		}
	}
	if voters < 2 {
		t.Fatalf("only %d voters were charged signing energy", voters)
	}
}

func TestInstantProfileChargesNothing(t *testing.T) {
	net, sinks, agreed := cryptoNet(t, Instant())
	if err := net.svcs[0].Propose([]byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := net.k.RunAll(); err != nil {
		t.Fatal(err)
	}
	if *agreed == 0 {
		t.Fatal("no agreement")
	}
	for i, s := range sinks {
		if s.j != 0 {
			t.Fatalf("node %d charged %.6f J under the Instant profile", i, s.j)
		}
	}
}

func TestRoundTimeoutAccommodatesCryptoDelay(t *testing.T) {
	// A timeout shorter than the crypto path still succeeds thanks to the
	// retry budget — but verify the interaction is sane: with generous
	// timeout there is exactly one round.
	net, _, agreed := cryptoNet(t, HardwareCrypto())
	if err := net.svcs[0].Propose([]byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(sim.Time(5)); err != nil {
		t.Fatal(err)
	}
	if *agreed == 0 {
		t.Fatal("hardware-crypto round failed")
	}
	if net.svcs[0].Stats.RoundsFailed != 0 {
		t.Fatalf("stats = %+v", net.svcs[0].Stats)
	}
}
