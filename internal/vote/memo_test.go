package vote

import (
	"bytes"
	"testing"

	"innercircle/internal/crypto/sigcache"
	"innercircle/internal/link"
)

// runAgreementRound drives one deterministic round over n nodes, with an
// optional shared verification memo, and returns each node's agreed
// message plus the summed memo counters.
func runAgreementRound(t *testing.T, memo *sigcache.Cache) ([]AgreedMsg, uint64, uint64) {
	t.Helper()
	agreed := make([]AgreedMsg, 5)
	net := buildVote(t, 5, detConfig(2), func(i int) Callbacks {
		return Callbacks{
			Check:    func(link.NodeID, []byte) bool { return true },
			OnAgreed: func(a AgreedMsg) { agreed[i] = a },
		}
	})
	for _, svc := range net.svcs {
		svc.deps.Memo = memo
	}
	if err := net.svcs[0].Propose([]byte("route-to-D")); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(2); err != nil {
		t.Fatal(err)
	}
	var hits, misses uint64
	for i, svc := range net.svcs {
		if err := svc.VerifyAgreed(agreed[i]); err != nil {
			t.Fatalf("node %d verify: %v", i, err)
		}
		hits += svc.Stats.MemoHits
		misses += svc.Stats.MemoMisses
	}
	return agreed, hits, misses
}

// TestMemoDoesNotChangeOutcomes runs the same round with and without the
// verification memo: identical agreed messages, and with the memo shared
// across a replica's nodes the repeated checks of the same flooded
// signatures must produce hits.
func TestMemoDoesNotChangeOutcomes(t *testing.T) {
	plain, hits0, misses0 := runAgreementRound(t, nil)
	if hits0 != 0 || misses0 != 0 {
		t.Fatalf("nil memo counted hits=%d misses=%d", hits0, misses0)
	}
	memo := sigcache.New(0)
	cached, hits1, misses1 := runAgreementRound(t, memo)
	for i := range plain {
		if plain[i].Center != cached[i].Center || plain[i].Seq != cached[i].Seq ||
			plain[i].L != cached[i].L || !bytes.Equal(plain[i].Value, cached[i].Value) {
			t.Fatalf("node %d: memo changed outcome: %+v vs %+v", i, plain[i], cached[i])
		}
		if !bytes.Equal(plain[i].Sig.Data, cached[i].Sig.Data) {
			t.Fatalf("node %d: memo changed signature bytes", i)
		}
	}
	if misses1 == 0 {
		t.Fatal("memo run performed no real verifications")
	}
	if hits1 == 0 {
		t.Fatal("shared memo saw no repeated verifications in a flooded round")
	}
	if memo.Len() == 0 {
		t.Fatal("memo is empty after the round")
	}
}

// TestMemoCachesRejections checks that a failing verdict is memoized too:
// a tampered agreed message is rejected from the cache on re-check.
func TestMemoCachesRejections(t *testing.T) {
	memo := sigcache.New(0)
	agreed, _, _ := runAgreementRound(t, memo)
	net := buildVote(t, 5, detConfig(2), func(int) Callbacks { return Callbacks{} })
	svc := net.svcs[1]
	svc.deps.Memo = memo
	bad := agreed[0]
	bad.Value = append([]byte(nil), bad.Value...)
	bad.Value[0] ^= 1
	if err := svc.VerifyAgreed(bad); err == nil {
		t.Fatal("tampered message verified")
	}
	before := svc.Stats.MemoHits
	if err := svc.VerifyAgreed(bad); err == nil {
		t.Fatal("tampered message verified from memo")
	}
	if svc.Stats.MemoHits != before+1 {
		t.Fatalf("second rejection not served from memo: hits %d -> %d", before, svc.Stats.MemoHits)
	}
}
