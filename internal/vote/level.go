package vote

import "fmt"

// LevelFor computes the dependability level of §4.2: given an inner circle
// of n nodes (including the center) and a failure budget of fb Byzantine
// nodes, fc crashes, and fl broken links, setting
//
//	L = N − F − 1,  F = fb + fc + fl
//
// guarantees the Agreement, Integrity and Termination properties with at
// least T = L − fb non-Byzantine participants in every round that
// completes.
func LevelFor(n, fb, fc, fl int) (int, error) {
	if n < 2 {
		return 0, fmt.Errorf("vote: inner circle of %d nodes cannot vote", n)
	}
	if fb < 0 || fc < 0 || fl < 0 {
		return 0, fmt.Errorf("vote: negative failure budget")
	}
	f := fb + fc + fl
	l := n - f - 1
	if l < 1 {
		return 0, fmt.Errorf("vote: %d nodes cannot tolerate %d failures (L = %d < 1)", n, f, l)
	}
	return l, nil
}

// MinNonByzantine returns T, the guaranteed number of non-Byzantine
// participants in a completed round at level l with fb Byzantine members.
func MinNonByzantine(l, fb int) int {
	t := l - fb
	if t < 0 {
		return 0
	}
	return t
}

// ByzantineLevel returns the §4.2 special case: the level L with
// L + 1 = ⌈2N/3⌉, which (ignoring crashes and link failures) tolerates
// N/3 − 1 Byzantine members and guarantees that a majority of correct
// nodes must approve — the standard Byzantine-agreement configuration.
func ByzantineLevel(n int) (int, error) {
	if n < 4 {
		return 0, fmt.Errorf("vote: Byzantine agreement needs at least 4 nodes, got %d", n)
	}
	l := (2*n+2)/3 - 1 // ceil(2n/3) - 1
	if l < 1 {
		l = 1
	}
	return l, nil
}
