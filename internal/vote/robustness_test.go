package vote

import (
	"testing"

	"innercircle/internal/crypto/thresh"
	"innercircle/internal/link"
)

// TestRobustnessRandomEnvelopes storms one voting service with randomized,
// malformed and adversarial protocol messages. The service must neither
// panic nor deliver an agreed message whose signature it cannot verify.
func TestRobustnessRandomEnvelopes(t *testing.T) {
	agreedCount := 0
	net := buildVote(t, 4, detConfig(1), func(i int) Callbacks {
		return Callbacks{
			Check:    func(link.NodeID, []byte) bool { return true },
			OnAgreed: func(AgreedMsg) { agreedCount++ },
		}
	})
	target := net.svcs[1]
	rng := net.k // unused; deterministic inputs below
	_ = rng

	junkValues := [][]byte{nil, {}, {0}, []byte("x"), make([]byte, 4096)}
	partials := []thresh.Partial{
		{},
		{Index: -1, Data: []byte("neg")},
		{Index: 999, Data: nil},
		{Index: 2, Data: make([]byte, 1000)},
	}
	var envs []link.Env
	for _, v := range junkValues {
		for _, from := range []link.NodeID{0, 1, 2, 3, 99, -5} {
			envs = append(envs,
				link.Env{From: from, To: 1, Msg: ProposeMsg{Center: from, Seq: 1, L: 1, Mode: Deterministic, Value: v}},
				link.Env{From: from, To: 1, Msg: ProposeMsg{Center: from, Seq: 2, L: 99, Mode: Statistical, Value: v}},
				link.Env{From: from, To: 1, Msg: ProposeMsg{Center: 0, Seq: 3, L: 0, Mode: Mode(7), Value: v, Relayed: true, Relayer: from}},
				link.Env{From: from, To: 1, Msg: SolicitMsg{Center: from, Seq: 4, L: -1, Meta: v}},
				link.Env{From: from, To: 1, Msg: ValueMsg{Center: 1, Seq: 5, Voter: from, Value: v, Sig: v}},
				link.Env{From: from, To: 1, Msg: AgreedMsg{Center: from, Seq: 6, L: 1, Value: v, Sig: thresh.Signature{Data: v}}},
				link.Env{From: from, To: 1, Msg: AgreedMsg{Center: from, Seq: 7, L: -3, Value: v}},
			)
		}
	}
	for _, p := range partials {
		envs = append(envs, link.Env{From: 2, To: 1, Msg: AckMsg{Center: 1, Seq: 1, Voter: 2, Partial: p}})
		envs = append(envs, link.Env{From: 0, To: 1, Msg: AckMsg{Center: 0, Seq: 1, Voter: 3, Partial: p}})
	}
	for _, e := range envs {
		target.HandleEnv(e) // must not panic
	}
	if agreedCount != 0 {
		t.Fatalf("adversarial traffic produced %d agreed deliveries", agreedCount)
	}
	if target.Stats.AgreedInvalid == 0 {
		t.Fatal("no invalid agreed messages recorded despite forgeries")
	}
}

// TestRobustnessForgedAckCannotCompleteRound floods a center with acks
// from identities that are not its neighbours and with partials for the
// wrong message; the round must not complete.
func TestRobustnessForgedAckCannotCompleteRound(t *testing.T) {
	agreed := 0
	net := buildVote(t, 4, detConfig(3), func(i int) Callbacks {
		return Callbacks{
			Check:    func(link.NodeID, []byte) bool { return i == 0 }, // only the center approves
			OnAgreed: func(AgreedMsg) { agreed++ },
		}
	})
	if err := net.svcs[0].Propose([]byte("needs 3")); err != nil {
		t.Fatal(err)
	}
	// Forge acks from non-members and duplicates before voters respond.
	forged := thresh.Partial{Index: 2, Data: []byte("junk")}
	for _, voter := range []link.NodeID{50, 51, 52, 1, 1, 1} {
		net.svcs[0].HandleEnv(link.Env{From: voter, To: 0, Msg: AckMsg{
			Center: 0, Seq: 1, Voter: voter, Partial: forged,
		}})
	}
	if err := net.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if agreed != 0 {
		t.Fatal("forged acks completed a round")
	}
}
