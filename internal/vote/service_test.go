package vote

import (
	"bytes"
	"fmt"
	"testing"

	"innercircle/internal/crypto/nsl"
	"innercircle/internal/crypto/thresh"
	"innercircle/internal/geo"
	"innercircle/internal/icnet"
	"innercircle/internal/link"
	"innercircle/internal/mac"
	"innercircle/internal/mobility"
	"innercircle/internal/radio"
	"innercircle/internal/sim"
)

// clique is a fake Topology in which every node neighbours every other.
type clique struct {
	self link.NodeID
	n    int
}

func (c clique) IsNeighbor(q link.NodeID) bool {
	return q != c.self && int(q) >= 0 && int(q) < c.n
}

func (c clique) Neighbors() []link.NodeID {
	var out []link.NodeID
	for i := 0; i < c.n; i++ {
		if link.NodeID(i) != c.self {
			out = append(out, link.NodeID(i))
		}
	}
	return out
}

func (c clique) IsLink(p, q link.NodeID) bool { return p != q }

func (c clique) IsTwoHop(link.NodeID) bool { return false }

func (c clique) TwoHopCount() int { return 0 }

// voteNet is the test harness: n nodes in radio range, all running a voting
// service over a clique topology.
type voteNet struct {
	k     *sim.Kernel
	svcs  []*Service
	links []*link.Service
	macs  []*mac.MAC
	susp  []*icnet.SuspicionManager
	// Key lifecycle handles, retained so epoch-transition tests can
	// refresh/reshare mid-run.
	dealer *thresh.SimDealer
	ring   PublicRing
	keys   []NodeKeys
}

// buildVote assembles the harness. cbs is instantiated per node via mkCbs.
func buildVote(t *testing.T, n int, cfg Config, mkCbs func(i int) Callbacks) *voteNet {
	t.Helper()
	k := sim.NewKernel()
	ch := radio.NewChannel(k, radio.Default80211())
	rng := sim.NewRNG(1)
	dealer := thresh.NewSimDealer([]byte("vote-test"), 128)
	ring, keys, err := DealRing(dealer, 10, n)
	if err != nil {
		t.Fatal(err)
	}
	dir := nsl.DirectoryMap{}
	kps := make([]*nsl.KeyPair, n)
	for i := 0; i < n; i++ {
		kp, err := nsl.GenerateKeyPair(512, nil)
		if err != nil {
			t.Fatal(err)
		}
		kps[i] = kp
		dir[int64(i)] = kp.Pub
	}
	net := &voteNet{k: k, dealer: dealer, ring: ring, keys: keys}
	for i := 0; i < n; i++ {
		// All nodes within 100 m: single collision domain.
		pos := geo.Point{X: float64(i%5) * 40, Y: float64(i/5) * 40}
		m := mac.New(k, ch, mobility.Static(pos), nil, rng.SplitN("mac", i), mac.Default80211())
		l := link.NewService(m)
		susp := icnet.NewSuspicionManager(k, 120)
		svc, err := New(cfg, Deps{
			ID:     l.ID(),
			K:      k,
			Link:   l,
			Topo:   clique{self: l.ID(), n: n},
			Ring:   ring,
			Keys:   keys[i],
			Susp:   susp,
			SignKP: kps[i],
			Dir:    dir,
		}, mkCbs(i))
		if err != nil {
			t.Fatal(err)
		}
		s := svc
		l.OnRecv(func(e link.Env) { s.HandleEnv(e) })
		net.svcs = append(net.svcs, svc)
		net.links = append(net.links, l)
		net.macs = append(net.macs, m)
		net.susp = append(net.susp, susp)
	}
	return net
}

func detConfig(l int) Config {
	return Config{Mode: Deterministic, L: l, RoundTimeout: 0.5, Retries: 2}
}

func statConfig(l int) Config {
	return Config{Mode: Statistical, L: l, RoundTimeout: 0.5, Retries: 2}
}

func TestDeterministicAgreementHappyPath(t *testing.T) {
	agreed := make([][]AgreedMsg, 5)
	net := buildVote(t, 5, detConfig(2), func(i int) Callbacks {
		return Callbacks{
			Check:    func(center link.NodeID, value []byte) bool { return true },
			OnAgreed: func(a AgreedMsg) { agreed[i] = append(agreed[i], a) },
		}
	})
	if err := net.svcs[0].Propose([]byte("route-to-D")); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(2); err != nil {
		t.Fatal(err)
	}
	for i := range agreed {
		if len(agreed[i]) != 1 {
			t.Fatalf("node %d saw %d agreed messages, want 1", i, len(agreed[i]))
		}
		a := agreed[i][0]
		if a.Center != 0 || a.L != 2 || string(a.Value) != "route-to-D" {
			t.Fatalf("node %d agreed = %+v", i, a)
		}
		// Every node, including remote ones, can verify it.
		if err := net.svcs[i].VerifyAgreed(a); err != nil {
			t.Fatalf("node %d verify: %v", i, err)
		}
	}
	if net.svcs[0].Stats.RoundsAgreed != 1 {
		t.Fatalf("center stats = %+v", net.svcs[0].Stats)
	}
}

func TestDeterministicCheckRejectsInvalidValue(t *testing.T) {
	var failures []string
	agreedCount := 0
	net := buildVote(t, 4, detConfig(1), func(i int) Callbacks {
		return Callbacks{
			Check: func(center link.NodeID, value []byte) bool {
				return !bytes.Equal(value, []byte("malicious"))
			},
			OnAgreed:      func(AgreedMsg) { agreedCount++ },
			OnRoundFailed: func(v []byte, reason string) { failures = append(failures, reason) },
		}
	})
	if err := net.svcs[0].Propose([]byte("malicious")); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if agreedCount != 0 {
		t.Fatal("malicious value achieved agreement")
	}
	if len(failures) != 1 {
		t.Fatalf("round failures = %v, want 1 timeout", failures)
	}
	if net.svcs[1].Stats.ChecksRejected == 0 {
		t.Fatal("voters did not record check rejections")
	}
	// A failed check alone is not provable misbehaviour: no suspicion.
	if net.susp[1].Suspected(0) {
		t.Fatal("center suspected on mere check failure")
	}
}

func TestProposeWithTooFewNeighbors(t *testing.T) {
	var failed bool
	net := buildVote(t, 4, detConfig(2), func(i int) Callbacks {
		return Callbacks{OnRoundFailed: func([]byte, string) { failed = true }}
	})
	// Shrink node 0's view to a single neighbour: fewer than L=2.
	net.svcs[0].deps.Topo = clique{self: 0, n: 2}
	if err := net.svcs[0].Propose([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("round with L > |neighbours| did not fail immediately")
	}
	if net.svcs[0].Stats.RoundsFailed != 1 {
		t.Fatalf("stats = %+v", net.svcs[0].Stats)
	}
}

func TestStatisticalVotingFusesValues(t *testing.T) {
	// Values are single bytes; fusion is the max (deterministic and easy
	// to reason about).
	fuse := func(center link.NodeID, values [][]byte) []byte {
		var max byte
		for _, v := range values {
			if len(v) == 1 && v[0] > max {
				max = v[0]
			}
		}
		return []byte{max}
	}
	agreed := make([][]AgreedMsg, 5)
	net := buildVote(t, 5, statConfig(3), func(i int) Callbacks {
		return Callbacks{
			LocalValue: func(center link.NodeID, meta []byte) ([]byte, bool) {
				return []byte{byte(10 * (i + 1))}, true
			},
			Fuse:     fuse,
			OnAgreed: func(a AgreedMsg) { agreed[i] = append(agreed[i], a) },
		}
	})
	if err := net.svcs[0].Propose([]byte{5}); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(3); err != nil {
		t.Fatal(err)
	}
	if len(agreed[0]) != 1 {
		t.Fatalf("center saw %d agreed messages, want 1", len(agreed[0]))
	}
	got := agreed[0][0].Value
	// The fused max must come from one of the voters (10..50), not the
	// center's low 5; exactly which depends on which L voters answered
	// first, but it is at least 20.
	if len(got) != 1 || got[0] < 20 {
		t.Fatalf("fused value = %v, want max >= 20", got)
	}
	for i := range agreed {
		if len(agreed[i]) != 1 {
			t.Fatalf("node %d saw %d agreed, want 1", i, len(agreed[i]))
		}
	}
}

func TestStatisticalForgedProposeRejected(t *testing.T) {
	agreedCount := 0
	net := buildVote(t, 4, statConfig(2), func(i int) Callbacks {
		return Callbacks{
			LocalValue: func(link.NodeID, []byte) ([]byte, bool) { return []byte{1}, true },
			Fuse: func(_ link.NodeID, values [][]byte) []byte {
				return []byte{1}
			},
			OnAgreed: func(AgreedMsg) { agreedCount++ },
		}
	})
	// Node 0 skips the solicit phase and directly broadcasts a propose
	// with no supporting signed values: voters must reject it.
	forged := ProposeMsg{Center: 0, Seq: 9, L: 2, Mode: Statistical, Value: []byte{99}}
	_ = net.links[0].SendRaw(link.BroadcastID, forged)
	if err := net.k.Run(2); err != nil {
		t.Fatal(err)
	}
	if agreedCount != 0 {
		t.Fatal("forged statistical propose achieved agreement")
	}
	if net.svcs[1].Stats.ChecksRejected == 0 {
		t.Fatal("voters did not reject the forged propose")
	}
}

func TestByzantinePartialDoesNotBlockAgreement(t *testing.T) {
	agreed := 0
	net := buildVote(t, 6, detConfig(2), func(i int) Callbacks {
		return Callbacks{
			Check:    func(link.NodeID, []byte) bool { return true },
			OnAgreed: func(AgreedMsg) { agreed++ },
		}
	})
	// Node 3 is Byzantine: it acks with garbage partials. Intercept by
	// replacing its service handler with a corrupting one.
	byz := net.svcs[3]
	net.links[3].OnRecv(func(e link.Env) {
		if p, ok := e.Msg.(ProposeMsg); ok {
			// Send a corrupted ack directly.
			garbage := thresh.Partial{Index: 4, Data: []byte("garbage")}
			_ = net.links[3].SendRaw(p.Center, AckMsg{
				Center: p.Center, Seq: p.Seq, Voter: 3, Partial: garbage,
			})
			return
		}
		byz.HandleEnv(e)
	})
	if err := net.svcs[0].Propose([]byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(3); err != nil {
		t.Fatal(err)
	}
	if net.svcs[0].Stats.RoundsAgreed != 1 {
		t.Fatalf("center stats = %+v; Byzantine partial blocked agreement", net.svcs[0].Stats)
	}
	if agreed == 0 {
		t.Fatal("no agreed messages delivered")
	}
}

func TestVerifyAgreedRejectsTampering(t *testing.T) {
	var captured *AgreedMsg
	net := buildVote(t, 4, detConfig(1), func(i int) Callbacks {
		return Callbacks{
			Check:    func(link.NodeID, []byte) bool { return true },
			OnAgreed: func(a AgreedMsg) { captured = &a },
		}
	})
	if err := net.svcs[0].Propose([]byte("genuine")); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(2); err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("no agreed message")
	}
	bad := *captured
	bad.Value = []byte("tampered")
	if err := net.svcs[1].VerifyAgreed(bad); err == nil {
		t.Fatal("tampered agreed message verified")
	}
	badL := *captured
	badL.L = 3
	if err := net.svcs[1].VerifyAgreed(badL); err == nil {
		t.Fatal("level-swapped agreed message verified")
	}
	// VerifierFor adapts for the interceptor.
	v := net.svcs[1].VerifierFor()
	if claims, valid := v(link.Env{From: 0, Msg: *captured}); !claims || !valid {
		t.Fatal("genuine agreed message rejected by verifier")
	}
	if claims, valid := v(link.Env{From: 0, Msg: bad}); !claims || valid {
		t.Fatal("tampered agreed message accepted by verifier")
	}
	if claims, _ := v(link.Env{From: 0, Msg: SolicitMsg{}}); claims {
		t.Fatal("non-agreed message claimed agreement")
	}
}

func TestAgreedDeliveredOnce(t *testing.T) {
	count := 0
	var captured *AgreedMsg
	net := buildVote(t, 4, detConfig(1), func(i int) Callbacks {
		cb := Callbacks{Check: func(link.NodeID, []byte) bool { return true }}
		if i == 1 {
			cb.OnAgreed = func(a AgreedMsg) { count++; captured = &a }
		}
		return cb
	})
	if err := net.svcs[0].Propose([]byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(2); err != nil {
		t.Fatal(err)
	}
	if count != 1 || captured == nil {
		t.Fatalf("delivered %d times, want 1", count)
	}
	// Replay the same agreed message: dedup must swallow it.
	_ = net.links[0].SendRaw(link.BroadcastID, *captured)
	if err := net.k.Run(3); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("replayed agreed message redelivered (count=%d)", count)
	}
}

func TestRetryRecoversFromLoss(t *testing.T) {
	// With only center+2 nodes and L=2, every ack matters. The round
	// should still complete despite MAC-level contention, possibly via
	// retries.
	agreed := 0
	net := buildVote(t, 3, detConfig(2), func(i int) Callbacks {
		return Callbacks{
			Check:    func(link.NodeID, []byte) bool { return true },
			OnAgreed: func(AgreedMsg) { agreed++ },
		}
	})
	if err := net.svcs[0].Propose([]byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(3); err != nil {
		t.Fatal(err)
	}
	if agreed == 0 {
		t.Fatal("round never completed")
	}
}

func TestConfigValidation(t *testing.T) {
	dealer := thresh.NewSimDealer([]byte("x"), 64)
	ring, keys, err := DealRing(dealer, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	valid := Deps{Ring: ring, Keys: keys[0]}
	cases := []struct {
		name string
		cfg  Config
		deps Deps
	}{
		{"bad mode", Config{Mode: 0, L: 1, RoundTimeout: 1}, valid},
		{"bad level", Config{Mode: Deterministic, L: 0, RoundTimeout: 1}, valid},
		{"no timeout", Config{Mode: Deterministic, L: 1}, valid},
		{"missing keys", Config{Mode: Deterministic, L: 1, RoundTimeout: 1}, Deps{}},
		{"level not dealt", Config{Mode: Deterministic, L: 9, RoundTimeout: 1}, valid},
		{"stat without signer", Config{Mode: Statistical, L: 1, RoundTimeout: 1}, valid},
	}
	for _, c := range cases {
		if _, err := New(c.cfg, c.deps, Callbacks{}); err == nil {
			t.Errorf("%s: New succeeded, want error", c.name)
		}
	}
}

func TestDealRingValidation(t *testing.T) {
	dealer := thresh.NewSimDealer([]byte("x"), 64)
	if _, _, err := DealRing(dealer, 0, 5); err == nil {
		t.Error("maxL=0 accepted")
	}
	if _, _, err := DealRing(dealer, 3, 1); err == nil {
		t.Error("n=1 accepted")
	}
	// Levels above n-1 are skipped, not dealt.
	ring, keys, err := DealRing(dealer, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ring[3]; !ok {
		t.Error("level 3 missing (needs 4 players, have 4)")
	}
	if _, ok := ring[4]; ok {
		t.Error("level 4 dealt with only 4 players (needs 5)")
	}
	if len(keys) != 4 {
		t.Errorf("got %d node key sets, want 4", len(keys))
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{Deterministic: "deterministic", Statistical: "statistical", Mode(9): "unknown"} {
		if got := fmt.Sprint(m); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}
