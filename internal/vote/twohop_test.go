package vote

import (
	"testing"

	"innercircle/internal/link"
)

// lineTopo models a 3-node line 0 - 1 - 2: nodes 0 and 2 are two hops
// apart and only node 1 neighbours both.
type lineTopo struct {
	self link.NodeID
}

func (t lineTopo) IsNeighbor(q link.NodeID) bool {
	switch t.self {
	case 0:
		return q == 1
	case 1:
		return q == 0 || q == 2
	case 2:
		return q == 1
	}
	return false
}

func (t lineTopo) Neighbors() []link.NodeID {
	switch t.self {
	case 0:
		return []link.NodeID{1}
	case 1:
		return []link.NodeID{0, 2}
	case 2:
		return []link.NodeID{1}
	}
	return nil
}

func (t lineTopo) IsLink(p, q link.NodeID) bool {
	return (p == 1 && (q == 0 || q == 2)) || ((p == 0 || p == 2) && q == 1)
}

func (t lineTopo) IsTwoHop(q link.NodeID) bool {
	return (t.self == 0 && q == 2) || (t.self == 2 && q == 0)
}

func (t lineTopo) TwoHopCount() int {
	if t.self == 1 {
		return 0
	}
	return 1
}

// buildLine assembles a 3-node radio line (0 and 2 out of mutual range)
// with the given vote config, using the lineTopo fake.
func buildLine(t *testing.T, cfg Config, mkCbs func(i int) Callbacks) *voteNet {
	t.Helper()
	net := buildVote(t, 3, cfg, mkCbs)
	for i, svc := range net.svcs {
		svc.deps.Topo = lineTopo{self: link.NodeID(i)}
	}
	// Physically separate nodes 0 and 2: rebuild positions is overkill;
	// instead rely on lineTopo membership checks — radio still delivers
	// broadcasts to everyone, but a correct two-hop implementation must
	// not depend on that (the relay path is exercised by unicast acks).
	return net
}

func TestTwoHopAgreementSucceeds(t *testing.T) {
	// L=2 with only one physical neighbour: impossible with one-hop
	// circles, possible with the two-hop extension (voter 2 joins via
	// relayer 1).
	cfg := detConfig(2)
	cfg.TwoHop = true
	agreed := make([]int, 3)
	net := buildLine(t, cfg, func(i int) Callbacks {
		return Callbacks{
			Check:    func(link.NodeID, []byte) bool { return true },
			OnAgreed: func(AgreedMsg) { agreed[i]++ },
		}
	})
	if err := net.svcs[0].Propose([]byte("wide circle")); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(3); err != nil {
		t.Fatal(err)
	}
	if net.svcs[0].Stats.RoundsAgreed != 1 {
		t.Fatalf("center stats = %+v; two-hop round did not complete", net.svcs[0].Stats)
	}
	for i, n := range agreed {
		if n != 1 {
			t.Fatalf("node %d delivered %d agreed messages, want 1 (two-hop relay)", i, n)
		}
	}
}

func TestOneHopCircleCannotReachLevelTwo(t *testing.T) {
	cfg := detConfig(2) // TwoHop off
	failed := 0
	net := buildLine(t, cfg, func(i int) Callbacks {
		return Callbacks{
			Check:         func(link.NodeID, []byte) bool { return true },
			OnRoundFailed: func([]byte, string) { failed++ },
		}
	})
	if err := net.svcs[0].Propose([]byte("too narrow")); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if failed != 1 {
		t.Fatalf("failures = %d, want 1 (|neighbours| = 1 < L = 2)", failed)
	}
}

func TestTwoHopStatisticalVoting(t *testing.T) {
	cfg := statConfig(2)
	cfg.TwoHop = true
	fuse := func(_ link.NodeID, values [][]byte) []byte {
		var sum byte
		for _, v := range values {
			if len(v) == 1 {
				sum += v[0]
			}
		}
		return []byte{sum}
	}
	var got []byte
	net := buildLine(t, cfg, func(i int) Callbacks {
		return Callbacks{
			LocalValue: func(link.NodeID, []byte) ([]byte, bool) {
				return []byte{byte(10 * (i + 1))}, true
			},
			Fuse: fuse,
			OnAgreed: func(m AgreedMsg) {
				if i == 0 {
					got = m.Value
				}
			},
		}
	})
	if err := net.svcs[0].Propose([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(3); err != nil {
		t.Fatal(err)
	}
	if net.svcs[0].Stats.RoundsAgreed != 1 {
		t.Fatalf("two-hop statistical round did not complete: %+v", net.svcs[0].Stats)
	}
	// Fused value = 1 (center) + 20 (node 1) + 30 (node 2) = 51.
	if len(got) != 1 || got[0] != 51 {
		t.Fatalf("fused value = %v, want [51] (both rings contributed)", got)
	}
}

func TestTwoHopVerifyAgreedStillBindsLevel(t *testing.T) {
	cfg := detConfig(2)
	cfg.TwoHop = true
	var captured *AgreedMsg
	net := buildLine(t, cfg, func(i int) Callbacks {
		return Callbacks{
			Check:    func(link.NodeID, []byte) bool { return true },
			OnAgreed: func(m AgreedMsg) { captured = &m },
		}
	})
	if err := net.svcs[0].Propose([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(3); err != nil {
		t.Fatal(err)
	}
	if captured == nil {
		t.Fatal("no agreed message")
	}
	bad := *captured
	bad.Value = []byte("y")
	if err := net.svcs[2].VerifyAgreed(bad); err == nil {
		t.Fatal("tampered two-hop agreed message verified")
	}
}
