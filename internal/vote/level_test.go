package vote

import (
	"testing"
	"testing/quick"

	"innercircle/internal/link"
)

func TestLevelForKnownCases(t *testing.T) {
	tests := []struct {
		n, fb, fc, fl int
		want          int
	}{
		{10, 0, 0, 0, 9}, // no failures: everyone must agree
		{10, 2, 1, 1, 5}, // F = 4: L = 10 - 4 - 1
		{4, 1, 0, 0, 2},
		{2, 0, 0, 0, 1}, // minimum viable circle
	}
	for _, tt := range tests {
		got, err := LevelFor(tt.n, tt.fb, tt.fc, tt.fl)
		if err != nil {
			t.Fatalf("LevelFor(%d,%d,%d,%d): %v", tt.n, tt.fb, tt.fc, tt.fl, err)
		}
		if got != tt.want {
			t.Errorf("LevelFor(%d,%d,%d,%d) = %d, want %d", tt.n, tt.fb, tt.fc, tt.fl, got, tt.want)
		}
	}
}

func TestLevelForErrors(t *testing.T) {
	if _, err := LevelFor(1, 0, 0, 0); err == nil {
		t.Error("1-node circle accepted")
	}
	if _, err := LevelFor(5, -1, 0, 0); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := LevelFor(5, 2, 2, 1); err == nil {
		t.Error("over-budget failures accepted (L would be < 1)")
	}
}

// Property: a completed round always has T = L − fb >= 1 non-Byzantine
// approvals when the failure budget leaves any slack.
func TestPropertyNonByzantineFloor(t *testing.T) {
	f := func(nRaw, fbRaw, fcRaw uint8) bool {
		n := 3 + int(nRaw%15)
		fb := int(fbRaw) % n
		fc := int(fcRaw) % n
		l, err := LevelFor(n, fb, fc, 0)
		if err != nil {
			return true // infeasible budget; nothing to check
		}
		tMin := MinNonByzantine(l, fb)
		// T = L - fb = n - 2fb - fc - 1; must be consistent.
		return tMin == max(0, n-2*fb-fc-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestByzantineLevel(t *testing.T) {
	tests := []struct {
		n    int
		want int // L+1 = ceil(2n/3)
	}{
		{4, 2},  // ceil(8/3)=3 -> L=2; tolerates 4/3-1 = 0... minimum config
		{6, 3},  // ceil(4) -> L=3
		{9, 5},  // ceil(6) -> L=5
		{10, 6}, // ceil(20/3)=7 -> L=6
		{12, 7},
	}
	for _, tt := range tests {
		got, err := ByzantineLevel(tt.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("ByzantineLevel(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
	if _, err := ByzantineLevel(3); err == nil {
		t.Error("n=3 accepted for Byzantine agreement")
	}
}

// TestCrashToleranceEndToEnd injects crashes into a live voting round:
// with L = N − F − 1, the round still completes when F voters are dead.
func TestCrashToleranceEndToEnd(t *testing.T) {
	const n = 6
	const crashes = 2
	l, err := LevelFor(n, 0, crashes, 0)
	if err != nil {
		t.Fatal(err)
	}
	agreed := 0
	net := buildVote(t, n, detConfig(l), func(i int) Callbacks {
		return Callbacks{
			Check:    func(link.NodeID, []byte) bool { return true },
			OnAgreed: func(AgreedMsg) { agreed++ },
		}
	})
	// Crash two voters before the round starts.
	for _, idx := range []int{4, 5} {
		net.macs[idx].Transceiver().SetDown(true)
	}
	if err := net.svcs[0].Propose([]byte("survives crashes")); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if agreed == 0 {
		t.Fatalf("round failed despite L=%d sized for %d crashes", l, crashes)
	}
}

// TestTerminationOnTooManyCrashes verifies the Termination property's
// failure side: when more voters crash than the level tolerates, the
// center's round fails cleanly by timeout instead of hanging.
func TestTerminationOnTooManyCrashes(t *testing.T) {
	const n = 5
	var failed int
	net := buildVote(t, n, detConfig(4), func(i int) Callbacks {
		return Callbacks{
			Check:         func(link.NodeID, []byte) bool { return true },
			OnRoundFailed: func([]byte, string) { failed++ },
		}
	})
	for _, idx := range []int{2, 3, 4} {
		net.macs[idx].Transceiver().SetDown(true)
	}
	if err := net.svcs[0].Propose([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(10); err != nil {
		t.Fatal(err)
	}
	if failed != 1 {
		t.Fatalf("round failures = %d, want exactly 1 (clean termination)", failed)
	}
}
