// Package vote implements the Inner-circle Voting Service of §4.2: the
// deterministic voting algorithm (Fig. 3a), which prevents illegitimate
// values from propagating, and the statistical voting algorithm (Fig. 3b),
// which improves a proposed value's accuracy by fusing it with the
// inner-circle's own observations. Both are parameterized by a
// dependability level L: agreement requires L neighbours to co-sign with
// their shares of the level key K_L, and the resulting agreed message is
// self-checking — any remote recipient verifies the threshold signature to
// confirm L+1 nodes cooperated.
package vote

import (
	"fmt"

	"innercircle/internal/crypto/thresh"
)

// PublicRing maps each dependability level L to its group key (threshold
// L, so L+1 partial signatures combine). Every node holds the ring; it is
// public material.
type PublicRing map[int]thresh.GroupKey

// NodeKeys maps each dependability level to this node's signer (its share
// of K_L). Only the owning node holds these.
type NodeKeys map[int]thresh.Signer

// DealRing uses dealer to create one group key per dependability level
// 1..maxL, each with threshold L shared among n nodes, and returns the
// public ring plus per-node key sets. Node i (0-based) receives share
// index i+1 of every level key — matching the paper's trusted-dealer
// initialization (§2).
func DealRing(dealer thresh.Dealer, maxL, n int) (PublicRing, []NodeKeys, error) {
	if maxL < 1 {
		return nil, nil, fmt.Errorf("vote: maxL must be >= 1, got %d", maxL)
	}
	if n < 2 {
		return nil, nil, fmt.Errorf("vote: need at least 2 nodes, got %d", n)
	}
	ring := make(PublicRing, maxL)
	nodeKeys := make([]NodeKeys, n)
	for i := range nodeKeys {
		nodeKeys[i] = make(NodeKeys, maxL)
	}
	for level := 1; level <= maxL; level++ {
		if level+1 > n {
			break // not enough players to ever reach this level
		}
		gk, signers, err := dealer.Deal(level, n)
		if err != nil {
			return nil, nil, fmt.Errorf("vote: deal level %d: %w", level, err)
		}
		ring[level] = gk
		for i, s := range signers {
			nodeKeys[i][level] = s
		}
	}
	return ring, nodeKeys, nil
}

// DKGRing is DealRing's dealerless counterpart: the n nodes establish
// every level key among themselves (thresh.KeyGenerator), with faults
// scripting misbehaviour by node ID (0-based). The returned blamed slice
// lists nodes disqualified with proof during any level's qualification
// round — callers feed these to the suspicion machinery as permanent
// suspects, the same verdict a corrupt partial signature earns — and
// silent lists nodes that dropped out without proof of malice. Excluded
// nodes end up with no signer for the affected levels, so they can hold
// the public ring and verify but never co-sign.
func DKGRing(gen thresh.KeyGenerator, maxL, n int, faults map[int]thresh.DKGFault) (PublicRing, []NodeKeys, []int, []int, error) {
	if maxL < 1 {
		return nil, nil, nil, nil, fmt.Errorf("vote: maxL must be >= 1, got %d", maxL)
	}
	if n < 2 {
		return nil, nil, nil, nil, fmt.Errorf("vote: need at least 2 nodes, got %d", n)
	}
	// Shift the 0-based node fault map to the 1-based participant indices
	// the DKG speaks.
	var pf map[int]thresh.DKGFault
	if len(faults) > 0 {
		pf = make(map[int]thresh.DKGFault, len(faults))
		for id, f := range faults {
			pf[id+1] = f
		}
	}
	ring := make(PublicRing, maxL)
	nodeKeys := make([]NodeKeys, n)
	for i := range nodeKeys {
		nodeKeys[i] = make(NodeKeys, maxL)
	}
	blamedSet := make(map[int]bool)
	silentSet := make(map[int]bool)
	for level := 1; level <= maxL; level++ {
		if level+1 > n {
			break
		}
		res, err := gen.DKG(thresh.DKGConfig{K: level, N: n, Faults: pf})
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("vote: dkg level %d: %w", level, err)
		}
		ring[level] = res.Key
		for i, s := range res.Signers {
			if s != nil {
				nodeKeys[i][level] = s
			}
		}
		for _, p := range res.Blamed {
			blamedSet[p-1] = true
		}
		for _, p := range res.Silent {
			silentSet[p-1] = true
		}
	}
	blamed := sortedIDs(blamedSet)
	silent := sortedIDs(silentSet)
	return ring, nodeKeys, blamed, silent, nil
}

// sortedIDs flattens an ID set into ascending order.
func sortedIDs(set map[int]bool) []int {
	if len(set) == 0 {
		return nil
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ { // insertion sort; blamed sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
