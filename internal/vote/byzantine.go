package vote

import (
	"innercircle/internal/link"
	"innercircle/internal/sim"
)

// Byzantine makes a voting service lie. It is the fault-injection hook
// (internal/faults) for the paper's Byzantine-voter class of attacks:
// instead of dropping or mangling traffic on the wire, the node runs the
// protocol but feeds it false inputs. The inner circle is supposed to
// neutralize all three lies — corrupt partials through the center's
// leave-one-out combine (Stats.PartialsRejected plus permanent
// suspicion), colluding acks because a single voter below the threshold
// cannot complete a signature alone, and false observations through the
// fusion function's outlier tolerance.
type Byzantine struct {
	// CorruptAcks flips one bit of the partial signature in every ack the
	// node sends, poisoning the center's combine step.
	CorruptAcks bool
	// AckAll approves deterministic proposals even when the application
	// check rejects them (a colluding voter).
	AckAll bool
	// LieValue replaces the node's statistical observation before it is
	// signed and returned to the soliciting center.
	LieValue func(center link.NodeID, meta, value []byte) []byte
	// RNG picks the bits CorruptAcks flips. Required with CorruptAcks.
	RNG *sim.RNG
	// OnLie, if set, is called once per lie told (the injection counter).
	OnLie func()
}

func (b *Byzantine) lie() {
	if b.OnLie != nil {
		b.OnLie()
	}
}

// SetByzantine installs (or, with nil, removes) Byzantine behaviour.
func (s *Service) SetByzantine(b *Byzantine) { s.byz = b }

// flipOneBit returns a copy of data with one RNG-chosen bit inverted.
func flipOneBit(data []byte, rng *sim.RNG) []byte {
	if len(data) == 0 {
		return data
	}
	out := append([]byte(nil), data...)
	bit := rng.Intn(len(out) * 8)
	out[bit/8] ^= 1 << (bit % 8)
	return out
}
