package vote

import (
	"testing"

	"innercircle/internal/crypto/sigcache"
	"innercircle/internal/crypto/thresh"
	"innercircle/internal/link"
)

// TestKeyEpochUsesEpochedInterface pins the keyEpoch promotion: group keys
// expose their epoch through thresh.Epoched, and anything else (legacy or
// foreign key types) reads as epoch 0.
func TestKeyEpochUsesEpochedInterface(t *testing.T) {
	d := thresh.NewSimDealer([]byte("epoched"), 64)
	gk, signers, err := d.Deal(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := gk.(thresh.Epoched); !ok {
		t.Fatal("sim group key does not implement thresh.Epoched")
	}
	if got := keyEpoch(gk); got != 0 {
		t.Fatalf("fresh key epoch = %d, want 0", got)
	}
	if _, err := d.Refresh(gk, signers); err != nil {
		t.Fatal(err)
	}
	if got := keyEpoch(gk); got != 1 {
		t.Fatalf("post-refresh epoch = %d, want 1", got)
	}
	if got := keyEpoch(struct{}{}); got != 0 {
		t.Fatalf("non-epoched value read epoch %d, want 0", got)
	}
}

// transitionLevel applies fresh signers for one level to every node: the
// per-node half of a membership epoch transition (drain, then SetKeys).
func (n *voteNet) transitionLevel(t *testing.T, level int, fresh []thresh.Signer) {
	t.Helper()
	for i, svc := range n.svcs {
		svc.AbortInFlight("membership epoch transition")
		nk := make(NodeKeys, len(n.keys[i]))
		for l, s := range n.keys[i] {
			nk[l] = s
		}
		if i < len(fresh) && fresh[i] != nil {
			nk[level] = fresh[i]
		} else {
			delete(nk, level)
		}
		n.keys[i] = nk
		svc.SetKeys(nk)
	}
}

// levelSigners collects the nodes' current signers for one level, in node
// order (the alignment Refresh expects).
func (n *voteNet) levelSigners(level int) []thresh.Signer {
	out := make([]thresh.Signer, len(n.keys))
	for i, nk := range n.keys {
		out[i] = nk[level]
	}
	return out
}

// runRound proposes from node 0 and returns each node's agreed message.
func runRound(t *testing.T, net *voteNet, value []byte, agreed []AgreedMsg) {
	t.Helper()
	for i := range agreed {
		agreed[i] = AgreedMsg{}
	}
	if err := net.svcs[0].Propose(value); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(net.k.Now() + 2); err != nil {
		t.Fatal(err)
	}
	for i := range agreed {
		if agreed[i].Value == nil {
			t.Fatalf("node %d saw no agreed message for %q", i, value)
		}
	}
}

// TestMemoNeverCrossesEpochBoundary is the end-to-end pin for "epoch bumps
// drive sigcache invalidation": memo entries recorded before a refresh or
// reshare must never serve verdicts afterwards. Observable via the
// vote_memo_hits/misses counters — the first post-transition verification
// of an old message is a miss (and, under the sim scheme whose share keys
// rotate, a rejection), never a stale cached OK.
func TestMemoNeverCrossesEpochBoundary(t *testing.T) {
	const n, level = 5, 2
	memo := sigcache.New(0)
	agreed := make([]AgreedMsg, n)
	net := buildVote(t, n, detConfig(level), func(i int) Callbacks {
		return Callbacks{
			Check:    func(link.NodeID, []byte) bool { return true },
			OnAgreed: func(a AgreedMsg) { agreed[i] = a },
		}
	})
	for _, svc := range net.svcs {
		svc.deps.Memo = memo
	}
	runRound(t, net, []byte("epoch-0 value"), agreed)
	svc := net.svcs[1]
	old := agreed[1]
	if err := svc.VerifyAgreed(old); err != nil {
		t.Fatalf("epoch-0 verify: %v", err)
	}
	hits := svc.Stats.MemoHits
	if err := svc.VerifyAgreed(old); err != nil {
		t.Fatal(err)
	}
	if svc.Stats.MemoHits != hits+1 {
		t.Fatal("repeat verification within an epoch did not hit the memo")
	}

	// --- refresh boundary -------------------------------------------------
	fresh, err := net.dealer.Refresh(net.ring[level], net.levelSigners(level))
	if err != nil {
		t.Fatal(err)
	}
	net.transitionLevel(t, level, fresh)
	hits, misses := svc.Stats.MemoHits, svc.Stats.MemoMisses
	// The old agreed message no longer verifies under the rotated share
	// keys — and the memoized epoch-0 OK must not be served for it.
	if err := svc.VerifyAgreed(old); err == nil {
		t.Fatal("pre-refresh signature verified after the refresh")
	}
	if svc.Stats.MemoHits != hits {
		t.Fatal("memo served a verdict across a refresh boundary")
	}
	if svc.Stats.MemoMisses != misses+1 {
		t.Fatal("post-refresh verification did not re-verify")
	}
	// A fresh round under the new shares agrees and verifies.
	runRound(t, net, []byte("epoch-1 value"), agreed)

	// --- reshare boundary -------------------------------------------------
	fromRefresh := agreed[1]
	fresh, err = net.dealer.Reshare(net.ring[level], level, n)
	if err != nil {
		t.Fatal(err)
	}
	net.transitionLevel(t, level, fresh)
	hits, misses = svc.Stats.MemoHits, svc.Stats.MemoMisses
	if err := svc.VerifyAgreed(fromRefresh); err == nil {
		t.Fatal("pre-reshare signature verified after the reshare")
	}
	if svc.Stats.MemoHits != hits {
		t.Fatal("memo served a verdict across a reshare boundary")
	}
	if svc.Stats.MemoMisses != misses+1 {
		t.Fatal("post-reshare verification did not re-verify")
	}
	runRound(t, net, []byte("epoch-2 value"), agreed)
}

// TestAbortInFlightDrainsRounds: the drain half of an epoch transition
// fails open rounds deterministically and reports them to the
// application.
func TestAbortInFlightDrainsRounds(t *testing.T) {
	var failed []string
	net := buildVote(t, 4, detConfig(2), func(i int) Callbacks {
		if i != 0 {
			// Voters decline every proposal, so the center's rounds stay
			// open until they time out — or are aborted.
			return Callbacks{Check: func(link.NodeID, []byte) bool { return false }}
		}
		return Callbacks{
			Check:         func(link.NodeID, []byte) bool { return true },
			OnRoundFailed: func(_ []byte, reason string) { failed = append(failed, reason) },
		}
	})
	svc := net.svcs[0]
	if err := svc.Propose([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := svc.Propose([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if got := svc.AbortInFlight("membership epoch transition"); got != 2 {
		t.Fatalf("aborted %d rounds, want 2", got)
	}
	if svc.Stats.RoundsFailed != 2 {
		t.Fatalf("RoundsFailed = %d, want 2", svc.Stats.RoundsFailed)
	}
	if len(failed) != 2 || failed[0] != "membership epoch transition" {
		t.Fatalf("failure callbacks = %v", failed)
	}
	if got := svc.AbortInFlight("again"); got != 0 {
		t.Fatalf("second drain aborted %d rounds", got)
	}
	// The aborted rounds' timers must not fire afterwards.
	if err := net.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if svc.Stats.RoundsFailed != 2 {
		t.Fatalf("timers re-failed aborted rounds: RoundsFailed = %d", svc.Stats.RoundsFailed)
	}
}
