package vote

import (
	"testing"

	"innercircle/internal/link"
	"innercircle/internal/sim"
)

// TestByzantineCorruptAcksNeutralized is the voting-layer neutralization
// demonstration: one voter corrupts the partial signature in its acks. The
// round must still agree (enough honest partials exist), the lie must be
// counted (PartialsRejected) and the liar permanently suspected — provable
// misbehaviour per §4 of the paper.
func TestByzantineCorruptAcksNeutralized(t *testing.T) {
	agreed := 0
	net := buildVote(t, 6, detConfig(2), func(i int) Callbacks {
		return Callbacks{
			Check:    func(center link.NodeID, value []byte) bool { return true },
			OnAgreed: func(AgreedMsg) { agreed++ },
		}
	})
	lies := 0
	// Node 2's ack reaches the center before the round completes with this
	// seed, so the corrupt partial is actually examined (acks arriving
	// after completion are ignored unexamined).
	liar := link.NodeID(2)
	net.svcs[liar].SetByzantine(&Byzantine{
		CorruptAcks: true,
		RNG:         sim.NewRNG(7),
		OnLie:       func() { lies++ },
	})
	if err := net.svcs[0].Propose([]byte("route-to-D")); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if lies == 0 {
		t.Fatal("byzantine voter told no lies")
	}
	if agreed == 0 {
		t.Fatal("one liar among 5 honest voters blocked agreement at L=2")
	}
	if net.svcs[0].Stats.PartialsRejected == 0 {
		t.Fatal("center accepted a corrupt partial signature")
	}
	if !net.susp[0].Suspected(liar) {
		t.Fatal("liar not suspected despite provable bad partial")
	}
}

// TestByzantineAckAllAcceptsBadValue shows the complementary lie: a voter
// that acks values its Check rejects. With only one such voter the round
// for a bad value still fails (L honest rejections starve it), so the lie
// is observable purely through the counter.
func TestByzantineAckAllAcceptsBadValue(t *testing.T) {
	agreed := 0
	net := buildVote(t, 5, detConfig(2), func(i int) Callbacks {
		return Callbacks{
			Check:    func(center link.NodeID, value []byte) bool { return string(value) != "bad" },
			OnAgreed: func(AgreedMsg) { agreed++ },
		}
	})
	lies := 0
	net.svcs[2].SetByzantine(&Byzantine{
		AckAll: true,
		OnLie:  func() { lies++ },
	})
	if err := net.svcs[0].Propose([]byte("bad")); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if lies == 0 {
		t.Fatal("AckAll voter never lied about the bad value")
	}
	if agreed != 0 {
		t.Fatal("a single lying voter pushed a bad value through L=2 agreement")
	}
}
