package vote

import "innercircle/internal/sim"

// CryptoProfile models where a node runs its threshold-signature
// operations: the paper's node architecture (Fig. 1–2) includes a
// dedicated Crypto-Processor precisely because software signing on
// embedded CPUs is slow and energy-hungry ("up to two orders of magnitude
// less energy than in software implementations"). A profile adds
// processing delay before partial signatures, combinations and
// verifications, and charges the per-operation energy to the node's
// meter via the EnergySink.
//
// The zero profile (Instant) models infinitely fast, free crypto — the
// default, appropriate when the experiment under study is not about
// crypto cost.
type CryptoProfile struct {
	// SignDelay is the latency of one partial signature.
	SignDelay sim.Duration
	// CombineDelay is the latency of assembling a combined signature.
	CombineDelay sim.Duration
	// VerifyDelay is the latency of one verification.
	VerifyDelay sim.Duration
	// SignEnergy, CombineEnergy and VerifyEnergy are joules per operation.
	SignEnergy    float64
	CombineEnergy float64
	VerifyEnergy  float64
}

// Instant returns the zero-cost profile.
func Instant() CryptoProfile { return CryptoProfile{} }

// SoftwareCrypto models 1024-bit threshold RSA on a ~200 MHz embedded CPU
// (order-of-magnitude figures from contemporaneous measurements: tens of
// milliseconds per private-key operation at ~100 mW active draw).
func SoftwareCrypto() CryptoProfile {
	return CryptoProfile{
		SignDelay:    50 * sim.Millisecond,
		CombineDelay: 20 * sim.Millisecond,
		VerifyDelay:  3 * sim.Millisecond,
		// 100 mW CPU draw over the operation.
		SignEnergy:    0.005,
		CombineEnergy: 0.002,
		VerifyEnergy:  0.0003,
	}
}

// HardwareCrypto models the paper's Crypto-Processor: roughly 10× faster
// and 100× more energy-efficient than the software path.
func HardwareCrypto() CryptoProfile {
	return CryptoProfile{
		SignDelay:     5 * sim.Millisecond,
		CombineDelay:  2 * sim.Millisecond,
		VerifyDelay:   0.3 * sim.Millisecond,
		SignEnergy:    0.00005,
		CombineEnergy: 0.00002,
		VerifyEnergy:  0.000003,
	}
}

// zero reports whether the profile is the free Instant profile.
func (p CryptoProfile) zero() bool {
	return p == CryptoProfile{}
}

// EnergySink receives the crypto energy charges (the node's meter exposes
// a compatible method through an adapter in package node).
type EnergySink interface {
	// AddEnergy charges joules of processing energy.
	AddEnergy(j float64)
}
