package vote

import (
	"encoding/binary"

	"innercircle/internal/crypto/thresh"
	"innercircle/internal/link"
)

// Mode selects the voting algorithm.
type Mode int

// Voting modes (Fig. 3).
const (
	Deterministic Mode = iota + 1
	Statistical
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Deterministic:
		return "deterministic"
	case Statistical:
		return "statistical"
	default:
		return "unknown"
	}
}

// headerBytes is the fixed envelope cost assumed for each voting message.
const headerBytes = 20

// SignedValue is one voter's observation, individually signed so the
// center cannot fabricate inner-circle inputs when it assembles the
// statistical propose message.
type SignedValue struct {
	Voter link.NodeID
	Value []byte
	Sig   []byte
}

func (v SignedValue) wireSize() int { return 8 + len(v.Value) + len(v.Sig) }

// SolicitMsg opens a statistical round: the center announces it has a value
// to diffuse and solicits inner-circle observations. Meta carries the
// center's proposed value v_c (application-encoded).
type SolicitMsg struct {
	Center link.NodeID
	Seq    uint64
	L      int
	Meta   []byte
	// Relayed/Relayer support two-hop inner circles: first-ring members
	// re-broadcast the solicitation once, marking themselves as relayer.
	Relayed bool
	Relayer link.NodeID
}

// Size implements link.Message.
func (m SolicitMsg) Size() int { return headerBytes + len(m.Meta) }

// ValueMsg is a voter's reply to a solicit, carrying its signed
// observation.
type ValueMsg struct {
	Center link.NodeID
	Seq    uint64
	Voter  link.NodeID
	Value  []byte
	Sig    []byte
}

// Size implements link.Message.
func (m ValueMsg) Size() int { return headerBytes + len(m.Value) + len(m.Sig) }

// ProposeMsg asks the inner circle to approve a value. In deterministic
// mode Value is the center's original value; in statistical mode Value is
// the fused result and Values carries the signed inputs that justify it.
type ProposeMsg struct {
	Center link.NodeID
	Seq    uint64
	L      int
	Mode   Mode
	Value  []byte
	Values []SignedValue
	// Relayed/Relayer support two-hop inner circles (§3's larger-circle
	// extension): first-ring members re-broadcast the proposal once.
	Relayed bool
	Relayer link.NodeID
}

// Size implements link.Message.
func (m ProposeMsg) Size() int {
	s := headerBytes + len(m.Value)
	for _, v := range m.Values {
		s += v.wireSize()
	}
	return s
}

// AckMsg is a voter's approval: its partial signature over the round
// digest with its share of K_L.
type AckMsg struct {
	Center  link.NodeID
	Seq     uint64
	Voter   link.NodeID
	Partial thresh.Partial
}

// Size implements link.Message.
func (m AckMsg) Size() int { return headerBytes + 8 + len(m.Partial.Data) }

// AgreedMsg is the self-checking output of a completed round: value v,
// dependability level L, and the combined threshold signature σ_KL. Any
// recipient can verify that L+1 nodes of the center's inner circle
// co-signed (§3).
type AgreedMsg struct {
	Center link.NodeID
	Seq    uint64
	L      int
	Value  []byte
	Sig    thresh.Signature
}

// Size implements link.Message.
func (m AgreedMsg) Size() int { return headerBytes + len(m.Value) + m.Sig.WireSize() }

// digest returns the canonical byte string covered by the threshold
// signature: (center, seq, L, value). Including seq prevents cross-round
// replay of signatures on equal values.
func digest(center link.NodeID, seq uint64, level int, value []byte) []byte {
	buf := make([]byte, 0, 20+len(value))
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(center))
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], seq)
	buf = append(buf, tmp[:]...)
	var l4 [4]byte
	binary.BigEndian.PutUint32(l4[:], uint32(level))
	buf = append(buf, l4[:]...)
	buf = append(buf, value...)
	return buf
}

// valueDigest is the byte string covered by a voter's individual signature
// on a statistical value message.
func valueDigest(center link.NodeID, seq uint64, voter link.NodeID, value []byte) []byte {
	buf := make([]byte, 0, 24+len(value))
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(center))
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], seq)
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(voter))
	buf = append(buf, tmp[:]...)
	buf = append(buf, value...)
	return buf
}
