package aodv

import (
	"testing"

	"innercircle/internal/geo"
	"innercircle/internal/link"
	"innercircle/internal/mac"
	"innercircle/internal/mobility"
	"innercircle/internal/radio"
	"innercircle/internal/sim"
)

// plainNet is a harness of routers without any inner-circle machinery.
type plainNet struct {
	k       *sim.Kernel
	routers []*Router
	links   []*link.Service
	macs    []*mac.MAC
	got     [][]Data
}

func buildPlain(t *testing.T, positions []geo.Point) *plainNet {
	t.Helper()
	k := sim.NewKernel()
	ch := radio.NewChannel(k, radio.Default80211())
	rng := sim.NewRNG(1)
	net := &plainNet{k: k, got: make([][]Data, len(positions))}
	for i, p := range positions {
		m := mac.New(k, ch, mobility.Static(p), nil, rng.SplitN("mac", i), mac.Default80211())
		l := link.NewService(m)
		r, err := New(DefaultConfig(), Deps{ID: l.ID(), K: k, Link: l, RNG: rng.SplitN("aodv", i)})
		if err != nil {
			t.Fatal(err)
		}
		i := i
		r.OnDeliver(func(d Data) { net.got[i] = append(net.got[i], d) })
		rr := r
		l.OnRecv(func(e link.Env) { rr.HandleEnv(e) })
		net.routers = append(net.routers, r)
		net.links = append(net.links, l)
		net.macs = append(net.macs, m)
	}
	return net
}

// linePts spaces nodes 200 m apart (250 m radio range).
func linePts(n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * 200}
	}
	return pts
}

func TestRouteDiscoveryAndDelivery(t *testing.T) {
	net := buildPlain(t, linePts(4))
	if err := net.routers[0].Send(3, "payload", 512); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(net.got[3]) != 1 {
		t.Fatalf("destination received %d packets, want 1", len(net.got[3]))
	}
	d := net.got[3][0]
	if d.Src != 0 || d.Payload != "payload" || d.Hops != 2 {
		t.Fatalf("delivered = %+v, want src=0 hops=2", d)
	}
	if !net.routers[0].HasRoute(3) {
		t.Fatal("originator has no route after delivery")
	}
	if nh, ok := net.routers[0].NextHop(3); !ok || nh != 1 {
		t.Fatalf("next hop = %v, want 1", nh)
	}
	// Reverse route at the destination (toward the originator).
	if !net.routers[3].HasRoute(0) {
		t.Fatal("destination has no reverse route")
	}
}

func TestSubsequentPacketsUseCachedRoute(t *testing.T) {
	net := buildPlain(t, linePts(3))
	if err := net.routers[0].Send(2, 0, 512); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(3); err != nil {
		t.Fatal(err)
	}
	rreqsAfterFirst := net.routers[0].Stats.RreqOriginated
	for i := 1; i <= 5; i++ {
		if err := net.routers[0].Send(2, i, 512); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.k.Run(6); err != nil {
		t.Fatal(err)
	}
	if len(net.got[2]) != 6 {
		t.Fatalf("delivered %d, want 6", len(net.got[2]))
	}
	if net.routers[0].Stats.RreqOriginated != rreqsAfterFirst {
		t.Fatal("cached route not used: extra RREQs originated")
	}
}

func TestDeliveryToSelf(t *testing.T) {
	net := buildPlain(t, linePts(2))
	if err := net.routers[0].Send(0, "loop", 100); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(1); err != nil {
		t.Fatal(err)
	}
	if len(net.got[0]) != 1 {
		t.Fatalf("self delivery = %d, want 1", len(net.got[0]))
	}
}

func TestUnreachableDestinationDropsAfterRetries(t *testing.T) {
	net := buildPlain(t, linePts(2))
	if err := net.routers[0].Send(99, "void", 100); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(10); err != nil {
		t.Fatal(err)
	}
	if net.routers[0].Stats.DataDropped != 1 {
		t.Fatalf("dropped = %d, want 1", net.routers[0].Stats.DataDropped)
	}
	wantReqs := uint64(DefaultConfig().RreqRetries + 1)
	if net.routers[0].Stats.RreqOriginated != wantReqs {
		t.Fatalf("RREQs = %d, want %d", net.routers[0].Stats.RreqOriginated, wantReqs)
	}
}

func TestSequenceNumbersIncrease(t *testing.T) {
	net := buildPlain(t, linePts(3))
	s0 := net.routers[2].Seq()
	if err := net.routers[0].Send(2, 1, 100); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(3); err != nil {
		t.Fatal(err)
	}
	if net.routers[2].Seq() <= s0 {
		t.Fatal("destination sequence number did not increase on reply")
	}
}

func TestBlackHoleAttractsAndDropsTraffic(t *testing.T) {
	// S(0) - N(1) - D(2) in a line; attacker M(3) near S. M forges a
	// high-sequence RREP, so S routes via M, which drops everything.
	pts := append(linePts(3), geo.Point{X: 50, Y: 150})
	net := buildPlain(t, pts)
	net.routers[3].SetBlackHole(true)
	for i := 0; i < 10; i++ {
		if err := net.routers[0].Send(2, i, 512); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.k.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(net.got[2]) != 0 {
		t.Fatalf("destination received %d packets despite black hole, want 0", len(net.got[2]))
	}
	if net.routers[3].Stats.BlackHoleDrops == 0 {
		t.Fatal("attacker dropped nothing — attack did not attract traffic")
	}
	if nh, ok := net.routers[0].NextHop(2); !ok || nh != 3 {
		t.Fatalf("source next hop = %v, want the attacker (3)", nh)
	}
}

func TestBrokenLinkTriggersRerrAndRediscovery(t *testing.T) {
	net := buildPlain(t, linePts(3))
	if err := net.routers[0].Send(2, "first", 256); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(3); err != nil {
		t.Fatal(err)
	}
	if len(net.got[2]) != 1 {
		t.Fatalf("first packet not delivered")
	}
	// Kill the middle node's radio: the 0->1 link breaks.
	net.macs[1].Transceiver().SetDown(true)
	if err := net.routers[0].Send(2, "second", 256); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(15); err != nil {
		t.Fatal(err)
	}
	// The packet cannot be delivered (node 1 was the only path), but the
	// route must have been invalidated via the MAC failure signal.
	if net.routers[0].HasRoute(2) {
		t.Fatal("stale route survived link breakage")
	}
}

func TestRERRInvalidatesRoute(t *testing.T) {
	net := buildPlain(t, linePts(3))
	if err := net.routers[0].Send(2, "x", 128); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(3); err != nil {
		t.Fatal(err)
	}
	if !net.routers[0].HasRoute(2) {
		t.Fatal("no route established")
	}
	// Node 1 announces that 2 became unreachable with a fresher sequence.
	_ = net.links[1].SendRaw(link.BroadcastID, RERR{Dst: 2, DstSeq: 1 << 30, SeqKnown: true})
	if err := net.k.Run(4); err != nil {
		t.Fatal(err)
	}
	if net.routers[0].HasRoute(2) {
		t.Fatal("RERR did not invalidate the route")
	}
}

func TestEncodeDecodeRREP(t *testing.T) {
	in := RREP{Orig: 5, Dst: 9, DstSeq: 12345, HopCount: 3, NextHop: 7}
	out, err := DecodeRREP(EncodeRREP(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	if _, err := DecodeRREP([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}, Deps{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

// TestRobustnessMalformedTraffic storms a router with adversarial and
// malformed protocol messages: no panics, no phantom routes.
func TestRobustnessMalformedTraffic(t *testing.T) {
	net := buildPlain(t, linePts(2))
	r := net.routers[0]
	envs := []link.Env{
		{From: 99, Msg: RREQ{Orig: 99, Dst: 0, ID: 1, HopCount: -5}},
		{From: -1, Msg: RREQ{Orig: -1, Dst: -1, ID: 0}},
		{From: 5, Msg: RREP{Orig: 0, Dst: 5, DstSeq: ^uint32(0), HopCount: 1 << 30, NextHop: 0}},
		{From: 5, Msg: RREP{}},
		{From: 5, Msg: RERR{Dst: 77, DstSeq: 12, SeqKnown: true}},
		{From: 5, Msg: RERR{}},
		{From: 5, Msg: Data{Src: 5, Dst: 42, Bytes: -1}},
		{From: 5, Msg: Data{Src: 5, Dst: 0, Payload: nil}},
	}
	for _, e := range envs {
		r.HandleEnv(e) // must not panic
	}
	// The forged high-seq RREP from node 5 installs a route (that is
	// AODV's inherent trust model, the very weakness the inner circle
	// fixes); but the malformed ones must not corrupt state further.
	if err := net.k.Run(1); err != nil {
		t.Fatal(err)
	}
	if net.routers[0].Stats.DataDelivered != 1 {
		t.Fatalf("local delivery miscounted: %+v", net.routers[0].Stats)
	}
}
