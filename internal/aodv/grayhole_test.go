package aodv

import (
	"testing"

	"innercircle/internal/faults"
	"innercircle/internal/geo"
	"innercircle/internal/sim"
)

// applyGrayhole wires the faults-package gray-hole preset into the test
// network — the same path production campaigns take — targeting the given
// node via the fabric's attacker order.
func applyGrayhole(t *testing.T, net *plainNet, node int, p float64) *faults.Applied {
	t.Helper()
	c := faults.GrayholePreset(1, p)
	a, err := faults.Apply(faults.Fabric{
		K:      net.k,
		RNG:    sim.NewRNG(5),
		N:      len(net.routers),
		Order:  []int{node},
		Router: func(i int) faults.RouterCtl { return net.routers[i] },
	}, &c)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGrayHoleIntermittentAttack(t *testing.T) {
	// A gray hole with p=0.5 misbehaves roughly half the time: across many
	// discoveries some forged RREPs and some genuine forwards occur.
	pts := append(linePts(3), geo.Point{X: 50, Y: 150})
	net := buildPlain(t, pts)
	a := applyGrayhole(t, net, 3, 0.5)
	for i := 0; i < 40; i++ {
		i := i
		net.k.MustSchedule(sim.Duration(i)+1, func() {
			_ = net.routers[0].Send(2, i, 256)
		})
	}
	if err := net.k.Run(60); err != nil {
		t.Fatal(err)
	}
	delivered := len(net.got[2])
	if delivered == 0 {
		t.Fatal("gray hole at p=0.5 blocked everything (should be intermittent)")
	}
	if delivered == 40 {
		t.Fatal("gray hole at p=0.5 never attacked")
	}
	if a.Report().TotalInjected() == 0 {
		t.Fatal("campaign report shows no attack actions")
	}
}

func TestGrayHoleZeroProbabilityIsCorrect(t *testing.T) {
	net := buildPlain(t, linePts(3))
	net.routers[1].SetGrayHole(0, sim.NewRNG(1))
	if err := net.routers[0].Send(2, "x", 256); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(net.got[2]) != 1 {
		t.Fatal("p=0 gray hole dropped traffic")
	}
}

func TestGrayHoleFullProbabilityIsBlackHole(t *testing.T) {
	pts := append(linePts(3), geo.Point{X: 50, Y: 150})
	net := buildPlain(t, pts)
	applyGrayhole(t, net, 3, 1)
	for i := 0; i < 10; i++ {
		if err := net.routers[0].Send(2, i, 256); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.k.Run(20); err != nil {
		t.Fatal(err)
	}
	if len(net.got[2]) != 0 {
		t.Fatalf("p=1 gray hole delivered %d packets, want 0", len(net.got[2]))
	}
}
