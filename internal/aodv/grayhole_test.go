package aodv

import (
	"testing"

	"innercircle/internal/geo"
	"innercircle/internal/sim"
)

func TestGrayHoleIntermittentAttack(t *testing.T) {
	// A gray hole with p=0.5 misbehaves roughly half the time: across many
	// discoveries some forged RREPs and some genuine forwards occur.
	pts := append(linePts(3), geo.Point{X: 50, Y: 150})
	net := buildPlain(t, pts)
	net.routers[3].SetGrayHole(0.5, sim.NewRNG(9))
	for i := 0; i < 40; i++ {
		i := i
		net.k.MustSchedule(sim.Duration(i)+1, func() {
			_ = net.routers[0].Send(2, i, 256)
		})
	}
	if err := net.k.Run(60); err != nil {
		t.Fatal(err)
	}
	delivered := len(net.got[2])
	if delivered == 0 {
		t.Fatal("gray hole at p=0.5 blocked everything (should be intermittent)")
	}
	if delivered == 40 {
		t.Fatal("gray hole at p=0.5 never attacked")
	}
}

func TestGrayHoleZeroProbabilityIsCorrect(t *testing.T) {
	net := buildPlain(t, linePts(3))
	net.routers[1].SetGrayHole(0, sim.NewRNG(1))
	if err := net.routers[0].Send(2, "x", 256); err != nil {
		t.Fatal(err)
	}
	if err := net.k.Run(5); err != nil {
		t.Fatal(err)
	}
	if len(net.got[2]) != 1 {
		t.Fatal("p=0 gray hole dropped traffic")
	}
}

func TestGrayHoleFullProbabilityIsBlackHole(t *testing.T) {
	pts := append(linePts(3), geo.Point{X: 50, Y: 150})
	net := buildPlain(t, pts)
	net.routers[3].SetGrayHole(1, sim.NewRNG(2))
	for i := 0; i < 10; i++ {
		if err := net.routers[0].Send(2, i, 256); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.k.Run(20); err != nil {
		t.Fatal(err)
	}
	if len(net.got[2]) != 0 {
		t.Fatalf("p=1 gray hole delivered %d packets, want 0", len(net.got[2]))
	}
}
