package aodv

import (
	"innercircle/internal/icnet"
	"innercircle/internal/link"
	"innercircle/internal/vote"
)

// ICAdapter wires a Router into the inner-circle framework, implementing
// the black-hole defense of Fig. 6:
//
//   - outgoing RREPs are intercepted and proposed to the sender's inner
//     circle (deterministic voting);
//   - a voter approves a proposed RREP only if the proposer is the route
//     destination itself or a node the voter already accepted as a
//     forwarder for that (destination, sequence-number) pair;
//   - when agreement is reached, every inner-circle member records the
//     proposer and the designated next hop in its forwarding map fw, and
//     the next hop injects the RREP into its local AODV — whose own
//     forwarding is intercepted in turn, repeating the vote hop by hop
//     back to the requester;
//   - raw (un-voted) incoming RREPs are suppressed by the interceptor as
//     unsigned, so a malicious node's forged reply never enters a correct
//     node's routing table.
type ICAdapter struct {
	id     link.NodeID
	router *Router
	vs     *vote.Service

	// fw maps (route destination, destination sequence number) to the set
	// of nodes allowed to forward RREPs for that route — the mapping
	// maintained by the Inner-circle Callbacks in Fig. 6.
	fw map[fwKey]map[link.NodeID]bool

	// Stats counts defense activity.
	Stats ICStats
}

type fwKey struct {
	dst    link.NodeID
	dstSeq uint32
}

// ICStats counts adapter activity.
type ICStats struct {
	RrepsProposed  uint64
	ChecksAccepted uint64
	ChecksRejected uint64
	RrepsInjected  uint64
}

// NewICAdapter installs the adapter: it registers the RREP template with
// the interceptor and returns the vote callbacks to use when constructing
// the node's voting service. Call Bind afterwards to connect the
// constructed service.
func NewICAdapter(id link.NodeID, router *Router, ic *icnet.Interceptor) (*ICAdapter, vote.Callbacks) {
	a := &ICAdapter{
		id:     id,
		router: router,
		fw:     make(map[fwKey]map[link.NodeID]bool),
	}
	// Intercept outgoing RREPs: redirect into the voting service.
	ic.Register(func(e link.Env) bool {
		_, isRREP := e.Msg.(RREP)
		return isRREP
	}, func(e link.Env) {
		rep, ok := e.Msg.(RREP)
		if !ok || a.vs == nil {
			return
		}
		a.Stats.RrepsProposed++
		_ = a.vs.Propose(EncodeRREP(rep))
	})
	cbs := vote.Callbacks{
		Check:    a.check,
		OnAgreed: a.onAgreed,
	}
	return a, cbs
}

// Bind connects the voting service (constructed after the callbacks).
func (a *ICAdapter) Bind(vs *vote.Service) { a.vs = vs }

// Verifier returns the interceptor signature check for this node: raw
// RREPs claim inner-circle protection but carry no signature (always
// invalid); agreed messages are checked against the level key.
func (a *ICAdapter) Verifier() icnet.Verifier {
	return func(e link.Env) (bool, bool) {
		switch m := e.Msg.(type) {
		case RREP:
			return true, false // un-voted RREP: suppress
		case vote.AgreedMsg:
			if a.vs == nil {
				return true, false
			}
			return true, a.vs.VerifyAgreed(m) == nil
		default:
			_ = m
			return false, false
		}
	}
}

// check is the Inner-circle Callbacks' check method (Fig. 6): approve
// center c's proposed RREP only if c is the route destination or a known
// legitimate forwarder for that route generation.
func (a *ICAdapter) check(center link.NodeID, value []byte) bool {
	rep, err := DecodeRREP(value)
	if err != nil {
		a.Stats.ChecksRejected++
		return false
	}
	if center == rep.Dst {
		a.Stats.ChecksAccepted++
		return true
	}
	if set, ok := a.fw[fwKey{dst: rep.Dst, dstSeq: rep.DstSeq}]; ok && set[center] {
		a.Stats.ChecksAccepted++
		return true
	}
	a.Stats.ChecksRejected++
	return false
}

// onAgreed is the Inner-circle Callbacks' onAgreed method: record the
// approved forwarders and, if this node is the designated next hop, hand
// the RREP to the local AODV service.
func (a *ICAdapter) onAgreed(m vote.AgreedMsg) {
	rep, err := DecodeRREP(m.Value)
	if err != nil {
		return
	}
	key := fwKey{dst: rep.Dst, dstSeq: rep.DstSeq}
	set, ok := a.fw[key]
	if !ok {
		set = make(map[link.NodeID]bool)
		a.fw[key] = set
	}
	set[m.Center] = true
	set[rep.NextHop] = true
	if rep.NextHop == a.id {
		a.Stats.RrepsInjected++
		a.router.AcceptRREP(m.Center, rep)
	}
}

// AllowedForwarders returns the fw set for a route generation (for tests).
func (a *ICAdapter) AllowedForwarders(dst link.NodeID, dstSeq uint32) []link.NodeID {
	var out []link.NodeID
	for id := range a.fw[fwKey{dst: dst, dstSeq: dstSeq}] {
		out = append(out, id)
	}
	return out
}
