package aodv_test

import (
	"testing"

	"innercircle/internal/aodv"
	"innercircle/internal/energy"
	"innercircle/internal/geo"
	"innercircle/internal/link"
	"innercircle/internal/mac"
	"innercircle/internal/mobility"
	"innercircle/internal/node"
	"innercircle/internal/radio"
	"innercircle/internal/sim"
	"innercircle/internal/sts"
	"innercircle/internal/vote"
)

// icNet is the full inner-circle AODV stack over the node assembly.
type icNet struct {
	net      *node.Network
	routers  []*aodv.Router
	adapters []*aodv.ICAdapter
	got      [][]aodv.Data
}

// buildICNet assembles an IC-protected AODV network at the given positions.
func buildICNet(t *testing.T, positions []geo.Point, level int) *icNet {
	t.Helper()
	out := &icNet{
		routers:  make([]*aodv.Router, len(positions)),
		adapters: make([]*aodv.ICAdapter, len(positions)),
		got:      make([][]aodv.Data, len(positions)),
	}
	stsCfg := sts.DefaultConfig()
	stsCfg.Handshake = false // keyed-MAC beacons; see DESIGN.md
	cfg := node.Config{
		N:      len(positions),
		Seed:   7,
		Radio:  radio.Default80211(),
		MAC:    mac.Default80211(),
		Energy: energy.NS2Default(),
		Mobility: func(i int, _ *sim.RNG) mobility.Model {
			return mobility.Static(positions[i])
		},
		IC:   true,
		STS:  stsCfg,
		Vote: vote.Config{Mode: vote.Deterministic, L: level, RoundTimeout: 0.3, Retries: 2},
		Callbacks: func(nd *node.Node) vote.Callbacks {
			r, err := aodv.New(aodv.DefaultConfig(), aodv.Deps{
				ID: nd.ID, K: nd.K, Link: nd.Link, RNG: nd.RNG.Split("aodv"),
			})
			if err != nil {
				t.Fatal(err)
			}
			adapter, cbs := aodv.NewICAdapter(nd.ID, r, nd.Intercept)
			out.routers[nd.Index] = r
			out.adapters[nd.Index] = adapter
			i := nd.Index
			r.OnDeliver(func(d aodv.Data) { out.got[i] = append(out.got[i], d) })
			nd.Handle(r.HandleEnv)
			return cbs
		},
	}
	net, err := node.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out.net = net
	for i, nd := range net.Nodes {
		out.adapters[i].Bind(nd.Vote)
		nd.Intercept.SetVerifier(out.adapters[i].Verifier())
	}
	net.StartSTS()
	return out
}

func lineWithAttacker() []geo.Point {
	// S(0) - N1(1) - N2(2) - D(3) line, attacker M(4) near S and N1.
	return []geo.Point{
		{X: 0}, {X: 200}, {X: 400}, {X: 600},
		{X: 100, Y: 150},
	}
}

func TestICRouteEstablishedThroughVoting(t *testing.T) {
	// Dense square so every hop has enough voters for L=1.
	pts := []geo.Point{
		{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 400, Y: 0},
		{X: 100, Y: 150}, {X: 300, Y: 150},
	}
	n := buildICNet(t, pts, 1)
	// Let STS converge, then send.
	if err := n.net.Run(5); err != nil {
		t.Fatal(err)
	}
	if err := n.routers[0].Send(2, "guarded", 512); err != nil {
		t.Fatal(err)
	}
	if err := n.net.Run(15); err != nil {
		t.Fatal(err)
	}
	if len(n.got[2]) != 1 {
		t.Fatalf("destination got %d packets, want 1 (IC voting should establish the route)", len(n.got[2]))
	}
	// Voting actually happened: the destination proposed its RREP.
	if n.adapters[2].Stats.RrepsProposed == 0 {
		t.Fatal("no RREP was proposed to the inner circle")
	}
	if n.net.Nodes[2].Vote.Stats.RoundsAgreed == 0 {
		t.Fatal("no voting round completed at the destination")
	}
}

func TestICNeutralizesBlackHole(t *testing.T) {
	n := buildICNet(t, lineWithAttacker(), 1)
	n.routers[4].SetBlackHole(true)
	if err := n.net.Run(5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := n.routers[0].Send(3, i, 512); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.net.Run(25); err != nil {
		t.Fatal(err)
	}
	if len(n.got[3]) == 0 {
		t.Fatal("no packets delivered: IC failed to establish the honest route")
	}
	// The attacker must not be on the path.
	if nh, ok := n.routers[0].NextHop(3); ok && nh == 4 {
		t.Fatal("source still routes through the black hole")
	}
	if n.routers[4].Stats.BlackHoleDrops > 0 {
		t.Fatalf("attacker absorbed %d packets; the forged RREP was accepted somewhere",
			n.routers[4].Stats.BlackHoleDrops)
	}
	// The forged raw RREP was suppressed and the attacker suspected.
	suppressed := false
	for i, nd := range n.net.Nodes {
		if i == 4 {
			continue
		}
		if nd.Intercept.Stats.SuppressedBadSig > 0 {
			suppressed = true
		}
	}
	if !suppressed {
		t.Fatal("no node suppressed the attacker's raw RREP")
	}
}

func TestICForwardingSetsGrow(t *testing.T) {
	pts := []geo.Point{
		{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 400, Y: 0},
		{X: 100, Y: 150}, {X: 300, Y: 150},
	}
	n := buildICNet(t, pts, 1)
	if err := n.net.Run(5); err != nil {
		t.Fatal(err)
	}
	if err := n.routers[0].Send(2, "x", 256); err != nil {
		t.Fatal(err)
	}
	if err := n.net.Run(15); err != nil {
		t.Fatal(err)
	}
	if len(n.got[2]) != 1 {
		t.Fatalf("delivery failed (%d packets)", len(n.got[2]))
	}
	// Some node must have recorded forwarders for destination 2.
	seq := n.routers[2].Seq()
	found := false
	for _, a := range n.adapters {
		if len(a.AllowedForwarders(2, seq)) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no fw entries recorded for dst=2 seq=%d", seq)
	}
}

func TestICAttackerCannotVoteItselfARoute(t *testing.T) {
	// The attacker initiates its own voting round proposing a forged RREP
	// for destination D (node 3). Its neighbours must refuse to ack.
	n := buildICNet(t, lineWithAttacker(), 1)
	if err := n.net.Run(5); err != nil {
		t.Fatal(err)
	}
	forged := aodv.RREP{Orig: 0, Dst: 3, DstSeq: 10000, HopCount: 1, NextHop: 0}
	if err := n.net.Nodes[4].Vote.Propose(aodv.EncodeRREP(forged)); err != nil {
		t.Fatal(err)
	}
	if err := n.net.Run(15); err != nil {
		t.Fatal(err)
	}
	if n.net.Nodes[4].Vote.Stats.RoundsAgreed != 0 {
		t.Fatal("inner circle approved the attacker's forged RREP")
	}
	// And the voters recorded the rejected check.
	rejected := false
	for i, a := range n.adapters {
		if i != 4 && a.Stats.ChecksRejected > 0 {
			rejected = true
		}
	}
	if !rejected {
		t.Fatal("no voter rejected the forged proposal")
	}
}

// TestICOverheadExists sanity-checks the trade-off the paper reports: the
// IC configuration sends more control bytes than plain AODV.
func TestICOverheadExists(t *testing.T) {
	pts := lineWithAttacker()
	n := buildICNet(t, pts, 1)
	if err := n.net.Run(10); err != nil {
		t.Fatal(err)
	}
	e := n.net.TotalEnergy()
	// Plain network, same layout, no STS/IC.
	k := sim.NewKernel()
	ch := radio.NewChannel(k, radio.Default80211())
	rng := sim.NewRNG(7)
	var meters []*energy.Meter
	for i, p := range pts {
		meter := energy.NewMeter(energy.NS2Default())
		meters = append(meters, meter)
		m := mac.New(k, ch, mobility.Static(p), meter, rng.SplitN("mac", i), mac.Default80211())
		l := link.NewService(m)
		r, err := aodv.New(aodv.DefaultConfig(), aodv.Deps{ID: l.ID(), K: k, Link: l, RNG: rng.SplitN("a", i)})
		if err != nil {
			t.Fatal(err)
		}
		rr := r
		l.OnRecv(func(e link.Env) { rr.HandleEnv(e) })
	}
	if err := k.Run(10); err != nil {
		t.Fatal(err)
	}
	var plain float64
	for _, m := range meters {
		plain += m.Consumed(k.Now())
	}
	if e <= plain {
		t.Fatalf("IC energy %.3f J <= plain %.3f J; STS beacons should cost something", e, plain)
	}
}
