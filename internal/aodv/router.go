package aodv

import (
	"errors"
	"fmt"
	"sort"

	"innercircle/internal/link"
	"innercircle/internal/sim"
)

// Config parameterizes the router.
type Config struct {
	// ActiveRouteTimeout is how long an unused route stays valid.
	ActiveRouteTimeout sim.Duration
	// RouteDiscoveryTimeout bounds one RREQ attempt.
	RouteDiscoveryTimeout sim.Duration
	// RreqRetries is how many times a discovery is re-flooded.
	RreqRetries int
	// MaxQueuedPerDst bounds the packets buffered while discovering.
	MaxQueuedPerDst int
}

// DefaultConfig returns AODV-typical timing.
func DefaultConfig() Config {
	return Config{
		ActiveRouteTimeout:    10,
		RouteDiscoveryTimeout: 1,
		RreqRetries:           2,
		MaxQueuedPerDst:       16,
	}
}

// Deps wires the router into a node.
type Deps struct {
	ID   link.NodeID
	K    *sim.Kernel
	Link *link.Service
	RNG  *sim.RNG
}

// route is one forwarding-table entry. Invalidated entries are kept (with
// valid = false) so their sequence numbers survive into RERRs and route
// requests, as RFC 3561 requires.
type route struct {
	nextHop  link.NodeID
	dstSeq   uint32
	seqKnown bool
	hops     int
	expires  sim.Time
	valid    bool
}

// discovery tracks an in-progress route request.
type discovery struct {
	dst     link.NodeID
	retries int
	timer   *sim.Timer
	queue   []Data
}

// Stats counts routing activity.
type Stats struct {
	DataOriginated uint64
	DataDelivered  uint64 // delivered locally (this node is destination)
	DataForwarded  uint64
	DataDropped    uint64
	RreqOriginated uint64
	RreqForwarded  uint64
	RrepOriginated uint64
	RrepForwarded  uint64
	RerrSent       uint64
	BlackHoleDrops uint64 // data maliciously dropped (attacker only)
	ForgedRreps    uint64 // fabricated route replies sent (attacker only)
}

// Router is one node's AODV entity. Not safe for concurrent use.
type Router struct {
	cfg  Config
	deps Deps

	seq     uint32
	rreqID  uint32
	routes  map[link.NodeID]*route
	seen    map[rreqKey]bool
	pending map[link.NodeID]*discovery
	dataSeq uint64

	onDeliver func(Data)

	// blackHole marks this router as the §5.1 adversary: it answers every
	// RREQ with a forged high-sequence RREP and silently drops all transit
	// data.
	blackHole bool
	// grayProb, when positive, makes the router a gray hole: it behaves
	// maliciously only with this probability per opportunity (§5.1 calls
	// this the attack variation network-wide detectors cannot catch).
	grayProb float64
	grayRNG  *sim.RNG

	// Stats exposes counters to the experiment harness.
	Stats Stats
}

type rreqKey struct {
	orig link.NodeID
	id   uint32
}

// ErrNoRoute is reported (via drop counters) when discovery fails;
// exported for tests that assert on wrapped errors in callbacks.
var ErrNoRoute = errors.New("aodv: no route to destination")

// New returns a router.
func New(cfg Config, deps Deps) (*Router, error) {
	if cfg.ActiveRouteTimeout <= 0 || cfg.RouteDiscoveryTimeout <= 0 {
		return nil, fmt.Errorf("aodv: timeouts must be positive")
	}
	r := &Router{
		cfg:     cfg,
		deps:    deps,
		routes:  make(map[link.NodeID]*route),
		seen:    make(map[rreqKey]bool),
		pending: make(map[link.NodeID]*discovery),
	}
	deps.Link.OnSendFailed(r.onSendFailed)
	return r, nil
}

// OnDeliver registers the upcall for data addressed to this node.
func (r *Router) OnDeliver(fn func(Data)) { r.onDeliver = fn }

// SetBlackHole switches the router into (or out of) black-hole mode.
func (r *Router) SetBlackHole(on bool) { r.blackHole = on }

// SetGrayHole makes the router misbehave with probability p per
// opportunity (forged RREP per route request, silent drop per transit
// packet) and behave correctly otherwise. p = 0 restores correct
// behaviour.
func (r *Router) SetGrayHole(p float64, rng *sim.RNG) {
	r.grayProb = p
	r.grayRNG = rng
}

// MisbehaviorCount reports how many attack actions this router has taken
// (forged route replies plus maliciously dropped packets). It satisfies
// the fault-injection subsystem's RouterCtl interface and feeds its
// coverage counters.
func (r *Router) MisbehaviorCount() uint64 {
	return r.Stats.ForgedRreps + r.Stats.BlackHoleDrops
}

// misbehaving samples whether this opportunity is attacked.
func (r *Router) misbehaving() bool {
	if r.blackHole {
		return true
	}
	if r.grayProb > 0 && r.grayRNG != nil {
		return r.grayRNG.Float64() < r.grayProb
	}
	return false
}

// Seq returns the router's current sequence number (for tests).
func (r *Router) Seq() uint32 { return r.seq }

// HasRoute reports whether a valid route to dst exists (for tests).
func (r *Router) HasRoute(dst link.NodeID) bool {
	rt, ok := r.routes[dst]
	return ok && rt.valid && r.deps.K.Now() < rt.expires
}

// NextHop returns the current next hop toward dst, if a valid route exists.
func (r *Router) NextHop(dst link.NodeID) (link.NodeID, bool) {
	rt, ok := r.routes[dst]
	if !ok || !rt.valid || r.deps.K.Now() >= rt.expires {
		return 0, false
	}
	return rt.nextHop, true
}

// Send routes an application payload toward dst, triggering route
// discovery if needed.
func (r *Router) Send(dst link.NodeID, payload any, bytes int) error {
	r.dataSeq++
	r.Stats.DataOriginated++
	d := Data{Src: r.deps.ID, Dst: dst, Seq: r.dataSeq, Payload: payload, Bytes: bytes}
	r.routeOrQueue(d)
	return nil
}

func (r *Router) routeOrQueue(d Data) {
	if d.Dst == r.deps.ID {
		r.deliver(d)
		return
	}
	if rt, ok := r.routes[d.Dst]; ok && rt.valid && r.deps.K.Now() < rt.expires {
		rt.expires = r.deps.K.Now() + r.cfg.ActiveRouteTimeout
		_ = r.deps.Link.SendRaw(rt.nextHop, d)
		return
	}
	r.queueAndDiscover(d)
}

func (r *Router) queueAndDiscover(d Data) {
	disc, ok := r.pending[d.Dst]
	if !ok {
		disc = &discovery{dst: d.Dst}
		disc.timer = sim.NewTimer(r.deps.K, func() { r.onDiscoveryTimeout(disc) })
		r.pending[d.Dst] = disc
		r.floodRREQ(d.Dst)
		disc.timer.Reset(r.cfg.RouteDiscoveryTimeout)
	}
	if len(disc.queue) >= r.cfg.MaxQueuedPerDst {
		r.Stats.DataDropped++
		return
	}
	disc.queue = append(disc.queue, d)
}

func (r *Router) floodRREQ(dst link.NodeID) {
	r.seq++
	r.rreqID++
	r.Stats.RreqOriginated++
	req := RREQ{
		Orig:    r.deps.ID,
		OrigSeq: r.seq,
		Dst:     dst,
		ID:      r.rreqID,
	}
	if rt, ok := r.routes[dst]; ok && rt.seqKnown {
		req.DstSeq = rt.dstSeq
		req.SeqKnown = true
	}
	r.seen[rreqKey{orig: r.deps.ID, id: r.rreqID}] = true
	_ = r.deps.Link.SendRaw(link.BroadcastID, req)
}

func (r *Router) onDiscoveryTimeout(disc *discovery) {
	if _, still := r.pending[disc.dst]; !still {
		return
	}
	if r.HasRoute(disc.dst) {
		r.flushPending(disc.dst)
		return
	}
	if disc.retries < r.cfg.RreqRetries {
		disc.retries++
		r.rreqID++
		r.Stats.RreqOriginated++
		req := RREQ{Orig: r.deps.ID, OrigSeq: r.seq, Dst: disc.dst, ID: r.rreqID}
		r.seen[rreqKey{orig: r.deps.ID, id: r.rreqID}] = true
		_ = r.deps.Link.SendRaw(link.BroadcastID, req)
		disc.timer.Reset(r.cfg.RouteDiscoveryTimeout)
		return
	}
	// Give up: drop the queue.
	r.Stats.DataDropped += uint64(len(disc.queue))
	disc.timer.Stop()
	delete(r.pending, disc.dst)
}

func (r *Router) deliver(d Data) {
	r.Stats.DataDelivered++
	if r.onDeliver != nil {
		r.onDeliver(d)
	}
}

// HandleEnv processes AODV traffic; it reports whether the envelope was
// consumed.
func (r *Router) HandleEnv(e link.Env) bool {
	switch m := e.Msg.(type) {
	case RREQ:
		r.onRREQ(e.From, m)
	case RREP:
		r.onRREP(e.From, m)
	case RERR:
		r.onRERR(e.From, m)
	case Data:
		r.onData(e.From, m)
	default:
		return false
	}
	return true
}

// updateRoute installs or refreshes a table entry if the new information is
// fresher (higher sequence) or equally fresh but shorter.
func (r *Router) updateRoute(dst, nextHop link.NodeID, dstSeq uint32, seqKnown bool, hops int) {
	now := r.deps.K.Now()
	rt, ok := r.routes[dst]
	if ok && rt.valid && now < rt.expires && rt.seqKnown && seqKnown {
		if dstSeq < rt.dstSeq || (dstSeq == rt.dstSeq && hops >= rt.hops) {
			return // stale or no better
		}
	}
	r.routes[dst] = &route{
		nextHop:  nextHop,
		dstSeq:   dstSeq,
		seqKnown: seqKnown,
		hops:     hops,
		expires:  now + r.cfg.ActiveRouteTimeout,
		valid:    true,
	}
}

func (r *Router) onRREQ(from link.NodeID, m RREQ) {
	key := rreqKey{orig: m.Orig, id: m.ID}
	if r.seen[key] {
		return
	}
	r.seen[key] = true

	if r.misbehaving() {
		// §5.1: the attacker replies immediately, advertising a fresher
		// route (large destination sequence number) one hop away. The
		// forged RREP goes out raw — a compromised node bypasses its own
		// interceptor — so in the inner-circle configuration receivers
		// will suppress it.
		forged := RREP{
			Orig:     m.Orig,
			Dst:      m.Dst,
			DstSeq:   m.DstSeq + 1000,
			HopCount: 1,
			NextHop:  from,
		}
		r.Stats.RrepOriginated++
		r.Stats.ForgedRreps++
		_ = r.deps.Link.SendRaw(from, forged)
		return
	}

	// Reverse route toward the originator.
	r.updateRoute(m.Orig, from, m.OrigSeq, true, m.HopCount+1)

	if m.Dst == r.deps.ID {
		// Destination-only replies: bump our sequence number and answer.
		if m.SeqKnown && m.DstSeq > r.seq {
			r.seq = m.DstSeq
		}
		r.seq++
		r.sendRREP(RREP{
			Orig:     m.Orig,
			Dst:      r.deps.ID,
			DstSeq:   r.seq,
			HopCount: 0,
			NextHop:  from,
		})
		return
	}
	// Re-flood.
	m.HopCount++
	r.Stats.RreqForwarded++
	_ = r.deps.Link.SendRaw(link.BroadcastID, m)
}

// sendRREP emits an RREP through the filtered link path, so the
// inner-circle interceptor (when installed) redirects it into the voting
// service. Without an interceptor it goes straight to the radio.
func (r *Router) sendRREP(rep RREP) {
	r.Stats.RrepOriginated++
	_ = r.deps.Link.Send(rep.NextHop, rep)
}

// onRREP handles a reply arriving from the downstream node.
func (r *Router) onRREP(from link.NodeID, m RREP) {
	r.AcceptRREP(from, m)
}

// AcceptRREP installs the forward route carried by an RREP and, when this
// node is not the requester, forwards the reply toward the originator. It
// is exported because in the inner-circle configuration the voting
// adapter — not the raw link — delivers approved RREPs.
func (r *Router) AcceptRREP(from link.NodeID, m RREP) {
	// Forward route to the destination via the node that handed us the
	// RREP.
	r.updateRoute(m.Dst, from, m.DstSeq, true, m.HopCount+1)
	if m.Orig == r.deps.ID {
		r.flushPending(m.Dst)
		return
	}
	// Forward along the reverse route toward the originator.
	rt, ok := r.routes[m.Orig]
	if !ok || !rt.valid || r.deps.K.Now() >= rt.expires {
		return
	}
	m.HopCount++
	m.NextHop = rt.nextHop
	r.Stats.RrepForwarded++
	_ = r.deps.Link.Send(rt.nextHop, m)
}

func (r *Router) flushPending(dst link.NodeID) {
	disc, ok := r.pending[dst]
	if !ok {
		return
	}
	disc.timer.Stop()
	delete(r.pending, dst)
	for _, d := range disc.queue {
		r.routeOrQueue(d)
	}
}

func (r *Router) onData(from link.NodeID, d Data) {
	if d.Dst == r.deps.ID {
		r.deliver(d)
		return
	}
	if r.misbehaving() {
		// Transit traffic is silently absorbed.
		r.Stats.BlackHoleDrops++
		return
	}
	rt, ok := r.routes[d.Dst]
	if !ok || !rt.valid || r.deps.K.Now() >= rt.expires {
		r.Stats.DataDropped++
		r.sendRERR(d.Dst)
		return
	}
	rt.expires = r.deps.K.Now() + r.cfg.ActiveRouteTimeout
	d.Hops++
	r.Stats.DataForwarded++
	_ = r.deps.Link.SendRaw(rt.nextHop, d)
}

// onRERR invalidates the route through the reporting neighbour and
// propagates the error upstream (one re-broadcast per invalidation), so
// the breakage reaches traffic sources in a single wave — the RFC 3561
// precursor mechanism, approximated by broadcast.
func (r *Router) onRERR(from link.NodeID, m RERR) {
	rt, ok := r.routes[m.Dst]
	if !ok || !rt.valid {
		return
	}
	if rt.nextHop != from {
		return // our path does not go through the reporter
	}
	if m.SeqKnown && rt.seqKnown && m.DstSeq < rt.dstSeq {
		return // we already know of a fresher route
	}
	seq := m.DstSeq
	if !m.SeqKnown {
		seq = rt.dstSeq + 1
	}
	r.invalidate(m.Dst, seq)
	r.Stats.RerrSent++
	_ = r.deps.Link.SendRaw(link.BroadcastID, m)
}

// invalidate marks the route to dst broken, remembering the (possibly
// bumped) destination sequence number for future RERRs/RREQs.
func (r *Router) invalidate(dst link.NodeID, seq uint32) {
	rt, ok := r.routes[dst]
	if !ok {
		r.routes[dst] = &route{dstSeq: seq, seqKnown: true}
		return
	}
	rt.valid = false
	if seq > rt.dstSeq {
		rt.dstSeq = seq
	}
	rt.seqKnown = true
}

// sendRERR notifies neighbours that dst became unreachable here, with a
// sequence number one past the freshest we knew (or flagged unknown).
func (r *Router) sendRERR(dst link.NodeID) {
	var seq uint32
	known := false
	if rt, ok := r.routes[dst]; ok && rt.seqKnown {
		seq = rt.dstSeq + 1
		known = true
	}
	r.invalidate(dst, seq)
	r.Stats.RerrSent++
	_ = r.deps.Link.SendRaw(link.BroadcastID, RERR{Dst: dst, DstSeq: seq, SeqKnown: known})
}

// onSendFailed reacts to MAC-level delivery failure: the link to the next
// hop broke, so every route through it is invalidated and reported.
func (r *Router) onSendFailed(e link.Env) {
	broken := e.To
	// Deterministic order: map iteration would make the RERR emission
	// sequence (and thus the whole simulation trace) seed-unstable.
	var dsts []link.NodeID
	for dst, rt := range r.routes {
		if rt.valid && rt.nextHop == broken {
			dsts = append(dsts, dst)
		}
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	for _, dst := range dsts {
		r.sendRERR(dst)
	}
	if _, ok := e.Msg.(Data); ok {
		r.Stats.DataDropped++
	}
}
